module mlfair

go 1.24
