package netmodel

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

// quickNet builds a deterministic small network whose receivers' rates
// are set from the fuzzer's input.
func quickNet(numLinks, numReceivers int) *Network {
	b := NewBuilder()
	links := make([]int, numLinks)
	for i := range links {
		links[i] = b.AddLink(1000) // ample; feasibility not under test here
	}
	s := b.AddSession(MultiRate, NoRateCap, numReceivers)
	rng := rand.New(rand.NewPCG(uint64(numLinks), uint64(numReceivers)))
	for k := 0; k < numReceivers; k++ {
		var p []int
		for _, l := range links {
			if rng.IntN(2) == 0 {
				p = append(p, l)
			}
		}
		if len(p) == 0 {
			p = []int{links[0]}
		}
		b.SetPath(s, k, p...)
	}
	return b.MustBuild()
}

func sanitize(raw []float64) []float64 {
	out := make([]float64, len(raw))
	for i, r := range raw {
		if r < 0 {
			r = -r
		}
		for r > 100 {
			r /= 16
		}
		if r != r { // NaN
			r = 1
		}
		out[i] = r
	}
	return out
}

// TestQuickLinkRateIsSumOfSessionRates: u_j = Σ_i u_{i,j} for arbitrary
// rate assignments.
func TestQuickLinkRateIsSumOfSessionRates(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		rates := sanitize(raw)
		if len(rates) > 6 {
			rates = rates[:6]
		}
		net := quickNet(3, len(rates))
		a := NewAllocation(net)
		for k, r := range rates {
			a.SetRate(0, k, r)
		}
		for j := 0; j < net.NumLinks(); j++ {
			sum := 0.0
			for i := 0; i < net.NumSessions(); i++ {
				sum += a.SessionLinkRate(i, j)
			}
			if !Eq(sum, a.LinkRate(j)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOrderedVectorIsSortedPermutation: OrderedVector sorts without
// losing or inventing rates.
func TestQuickOrderedVectorIsSortedPermutation(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		rates := sanitize(raw)
		if len(rates) > 8 {
			rates = rates[:8]
		}
		net := quickNet(2, len(rates))
		a := NewAllocation(net)
		for k, r := range rates {
			a.SetRate(0, k, r)
		}
		v := a.OrderedVector()
		if !sort.Float64sAreSorted(v) {
			return false
		}
		want := append([]float64{}, rates...)
		sort.Float64s(want)
		for i := range want {
			if v[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSessionLinkRateDominatesReceivers: u_{i,j} >= every crossing
// receiver's rate, for the default and scaled link-rate functions.
func TestQuickSessionLinkRateDominatesReceivers(t *testing.T) {
	f := func(raw []float64, scaleRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		rates := sanitize(raw)
		if len(rates) > 6 {
			rates = rates[:6]
		}
		scale := 1 + float64(scaleRaw%4)
		net := quickNet(3, len(rates))
		net, err := net.WithLinkRates([]LinkRateFunc{ScaledMax(scale)})
		if err != nil {
			return false
		}
		a := NewAllocation(net)
		for k, r := range rates {
			a.SetRate(0, k, r)
		}
		for j := 0; j < net.NumLinks(); j++ {
			u := a.SessionLinkRate(0, j)
			for _, sr := range net.OnLink(j) {
				for _, k := range sr.Receivers {
					if Greater(a.Rate(0, k), u) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
