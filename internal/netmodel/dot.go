package netmodel

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the network as a Graphviz graph: nodes, capacitated
// links (edge labels "l<j>: c=<cap>"), and one colored box per session
// member. Abstract (Builder-built) networks render their placeholder
// topology, which still shows link sharing. Optionally pass an
// allocation to annotate links with their utilization.
func WriteDOT(w io.Writer, n *Network, a *Allocation) error {
	var b strings.Builder
	b.WriteString("graph mlfair {\n  node [shape=circle];\n")
	for node := 0; node < n.graph.NumNodes(); node++ {
		labels := memberLabels(n, node)
		if len(labels) > 0 {
			fmt.Fprintf(&b, "  n%d [shape=box, label=\"n%d\\n%s\"];\n",
				node, node, strings.Join(labels, " "))
		} else {
			fmt.Fprintf(&b, "  n%d;\n", node)
		}
	}
	for j := 0; j < n.graph.NumLinks(); j++ {
		l := n.graph.Link(j)
		label := fmt.Sprintf("l%d: c=%.4g", j+1, l.Capacity)
		attrs := ""
		if a != nil {
			label += fmt.Sprintf("\\nu=%.4g", a.LinkRate(j))
			if a.FullyUtilized(j) {
				attrs = ", color=red, penwidth=2"
			}
		}
		fmt.Fprintf(&b, "  n%d -- n%d [label=\"%s\"%s];\n", l.From, l.To, label, attrs)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// memberLabels lists the session members placed at a node ("X1",
// "r2,1", ...).
func memberLabels(n *Network, node int) []string {
	var out []string
	for i, s := range n.sessions {
		if s.Sender == node {
			out = append(out, fmt.Sprintf("X%d", i+1))
		}
		for k, rn := range s.Receivers {
			if rn == node {
				out = append(out, ReceiverID{Session: i, Receiver: k}.String())
			}
		}
	}
	return out
}
