package netmodel

import (
	"errors"
	"fmt"
)

// Network is the paper's N = (G, {S_1..S_m}, τ, Γ): a graph, sessions
// mapped onto it, and per-receiver data-paths. The zero value is not
// usable; construct with NewNetwork or Builder.Build.
//
// A Network is immutable after construction; all per-link incidence sets
// (R_{i,j}, R_j) are precomputed.
type Network struct {
	graph    *Graph
	sessions []*Session
	// paths[i][k] lists the link indices on r_{i,k}'s data-path,
	// in sender-to-receiver order.
	paths [][][]int

	// onLink[j] groups, per session with receivers crossing l_j, the
	// receiver indices within that session (the paper's R_{i,j}).
	onLink [][]SessionReceivers
	// crossing[j] = |R_j|, the total receiver count on l_j.
	crossing []int
}

// SessionReceivers is one session's receiver set on a particular link:
// R_{i,j} for a fixed link j.
type SessionReceivers struct {
	Session   int   // i
	Receivers []int // k values: receivers of S_i crossing the link
}

// NewNetwork assembles a network from a graph, sessions, and explicit
// per-receiver data-paths. paths[i][k] must be a contiguous link walk from
// sessions[i].Sender to sessions[i].Receivers[k]. Use the routing package
// to compute paths automatically.
func NewNetwork(g *Graph, sessions []*Session, paths [][][]int) (*Network, error) {
	if g == nil {
		return nil, errors.New("netmodel: nil graph")
	}
	if len(paths) != len(sessions) {
		return nil, fmt.Errorf("netmodel: %d path groups for %d sessions", len(paths), len(sessions))
	}
	n := &Network{graph: g, sessions: sessions, paths: paths}
	for i, s := range sessions {
		if err := validateSession(i, s); err != nil {
			return nil, err
		}
		if len(paths[i]) != len(s.Receivers) {
			return nil, fmt.Errorf("netmodel: session %d has %d paths for %d receivers", i, len(paths[i]), len(s.Receivers))
		}
		froms := append([]int{s.Sender}, s.ExtraSenders...)
		for k, p := range paths[i] {
			if err := validateWalkFromAny(g, froms, s.Receivers[k], p); err != nil {
				return nil, fmt.Errorf("netmodel: session %d receiver %d: %w", i, k, err)
			}
		}
	}
	n.index()
	return n, nil
}

func validateSession(i int, s *Session) error {
	if s == nil {
		return fmt.Errorf("netmodel: session %d is nil", i)
	}
	if len(s.Receivers) == 0 {
		return fmt.Errorf("netmodel: session %d has no receivers", i)
	}
	if !(s.MaxRate > 0) {
		return fmt.Errorf("netmodel: session %d has non-positive max rate %v", i, s.MaxRate)
	}
	return nil
}

// validateWalkFromAny accepts a data-path starting at any of the
// candidate sender nodes (multi-sender sessions route each receiver from
// one of the session's sources).
func validateWalkFromAny(g *Graph, froms []int, to int, p []int) error {
	var err error
	for _, from := range froms {
		if err = validateWalk(g, from, to, p); err == nil {
			return nil
		}
	}
	return err
}

// validateWalk checks that p is a contiguous link walk from "from" to "to"
// and visits no link twice. Data-paths need not be globally shortest —
// routing is the network operator's business — but they must be loop-free
// walks so link usage is well defined.
func validateWalk(g *Graph, from, to int, p []int) error {
	if from < 0 || to < 0 {
		// Abstract networks (Builder) use -1 nodes and skip walk checks.
		return nil
	}
	cur := from
	// Loop-freedom check: short walks (the overwhelming case — tree
	// depths, not graph diameters) are checked pairwise without
	// allocating, so million-receiver networks validate without a map
	// per receiver; long walks fall back to a set.
	var seen map[int]bool
	if len(p) > 32 {
		seen = make(map[int]bool, len(p))
	}
	for idx, j := range p {
		if j < 0 || j >= g.NumLinks() {
			return fmt.Errorf("link %d out of range", j)
		}
		if seen != nil {
			if seen[j] {
				return fmt.Errorf("link %d repeated in data-path", j)
			}
			seen[j] = true
		} else {
			for _, q := range p[:idx] {
				if q == j {
					return fmt.Errorf("link %d repeated in data-path", j)
				}
			}
		}
		l := g.Link(j)
		switch cur {
		case l.From:
			cur = l.To
		case l.To:
			cur = l.From
		default:
			return fmt.Errorf("link %d (%d-%d) does not continue walk at node %d", j, l.From, l.To, cur)
		}
	}
	if cur != to {
		return fmt.Errorf("data-path ends at node %d, receiver at %d", cur, to)
	}
	return nil
}

// index precomputes R_{i,j} and |R_j| from the data-paths.
//
// The construction is linear in the total path footprint (sum of path
// lengths over all receivers) rather than links x sessions x receivers:
// a per-session sweep discovers each (session, link) segment once via an
// epoch-stamped scratch row, segments are counting-sorted by link (the
// sweep emits them session-ascending, and counting sort is stable, so
// each link's segment list stays session-ascending exactly as before),
// and a second sweep scatters receiver indices k-ascending into one flat
// backing. Output is byte-for-byte the historical shape: everything
// lives in two backing arrays instead of per-link append chains.
func (n *Network) index() {
	nl := n.graph.NumLinks()
	n.onLink = make([][]SessionReceivers, nl)
	n.crossing = make([]int, nl)
	// Sweep 1: enumerate segments (distinct (session, link) pairs with
	// at least one crossing receiver) in session-major order, counting
	// each segment's receivers. stamp/linkSeg are epoch-cleared per
	// session: linkSeg[j] names the session's segment on link j.
	stamp := make([]int32, nl)
	linkSeg := make([]int32, nl)
	var segLink, segCnt []int32
	sessSegEnd := make([]int32, len(n.sessions)+1)
	totKs := 0
	for i := range n.sessions {
		epoch := int32(i + 1)
		for _, p := range n.paths[i] {
			for _, j := range p {
				if stamp[j] != epoch {
					stamp[j] = epoch
					linkSeg[j] = int32(len(segLink))
					segLink = append(segLink, int32(j))
					segCnt = append(segCnt, 0)
				}
				segCnt[linkSeg[j]]++
				totKs++
			}
		}
		sessSegEnd[i+1] = int32(len(segLink))
	}
	// Counting sort of segments by link: segStart[j] is link j's block
	// in the sorted order; slot[s] the segment's position in it.
	segStart := make([]int32, nl+1)
	for _, j := range segLink {
		segStart[j+1]++
	}
	for j := 0; j < nl; j++ {
		segStart[j+1] += segStart[j]
	}
	slot := make([]int32, len(segLink))
	fill := append([]int32(nil), segStart[:nl]...)
	for s, j := range segLink {
		slot[s] = fill[j]
		fill[j]++
	}
	// Flat backings: one SessionReceivers record per segment (in sorted
	// order, so each link's block is a subslice) and one shared receiver
	// array carved by segment.
	flat := make([]SessionReceivers, len(segLink))
	ks := make([]int, totKs)
	ksOff := make([]int32, len(segLink)+1)
	for s := range segLink {
		ksOff[s+1] = ksOff[s] + segCnt[s]
	}
	for i := range n.sessions {
		// Re-stamp this session's links from its own segment block (the
		// sweep-1 stamps are long gone), then scatter its receivers:
		// the outer loop is k-ascending, so each segment's Receivers
		// list is ascending — the historical order.
		for s := sessSegEnd[i]; s < sessSegEnd[i+1]; s++ {
			linkSeg[segLink[s]] = s
			flat[slot[s]] = SessionReceivers{Session: i, Receivers: ks[ksOff[s]:ksOff[s]:ksOff[s+1]]}
		}
		for k, p := range n.paths[i] {
			for _, j := range p {
				s := linkSeg[j]
				at := slot[s]
				rs := flat[at].Receivers
				if len(rs) > 0 && rs[len(rs)-1] == k {
					// A link repeated within one path (possible only on
					// abstract networks, which skip walk validation)
					// still counts the receiver once.
					continue
				}
				flat[at].Receivers = append(rs, k)
			}
		}
	}
	for j := 0; j < nl; j++ {
		if segStart[j] == segStart[j+1] {
			continue
		}
		n.onLink[j] = flat[segStart[j]:segStart[j+1]:segStart[j+1]]
		c := 0
		for _, sr := range n.onLink[j] {
			c += len(sr.Receivers)
		}
		n.crossing[j] = c
	}
}

// Graph returns the underlying graph.
func (n *Network) Graph() *Graph { return n.graph }

// NumSessions returns m, the session count.
func (n *Network) NumSessions() int { return len(n.sessions) }

// Session returns session i.
func (n *Network) Session(i int) *Session { return n.sessions[i] }

// Sessions returns the session slice; callers must not modify it.
func (n *Network) Sessions() []*Session { return n.sessions }

// NumLinks returns the link count of the underlying graph.
func (n *Network) NumLinks() int { return n.graph.NumLinks() }

// Capacity returns c_j.
func (n *Network) Capacity(j int) float64 { return n.graph.Capacity(j) }

// Path returns r_{i,k}'s data-path as link indices. Callers must not
// modify the returned slice.
func (n *Network) Path(i, k int) []int { return n.paths[i][k] }

// OnLink returns R_{i,j} for all sessions i with receivers crossing link
// j. Callers must not modify the returned structures.
func (n *Network) OnLink(j int) []SessionReceivers { return n.onLink[j] }

// ReceiversCrossing returns |R_j|.
func (n *Network) ReceiversCrossing(j int) int { return n.crossing[j] }

// Crosses reports whether r_{i,k}'s data-path traverses link j.
func (n *Network) Crosses(i, k, j int) bool {
	for _, pj := range n.paths[i][k] {
		if pj == j {
			return true
		}
	}
	return false
}

// NumReceivers returns the total receiver count over all sessions.
func (n *Network) NumReceivers() int {
	t := 0
	for _, s := range n.sessions {
		t += len(s.Receivers)
	}
	return t
}

// ReceiverIDs returns every receiver in session order.
func (n *Network) ReceiverIDs() []ReceiverID {
	ids := make([]ReceiverID, 0, n.NumReceivers())
	for i, s := range n.sessions {
		for k := range s.Receivers {
			ids = append(ids, ReceiverID{Session: i, Receiver: k})
		}
	}
	return ids
}

// SamePath reports whether two receivers' data-paths traverse exactly the
// same set of links (the hypothesis of same-path-receiver-fairness). Order
// is irrelevant; paths are sets for this purpose.
func (n *Network) SamePath(a, b ReceiverID) bool {
	pa := n.paths[a.Session][a.Receiver]
	pb := n.paths[b.Session][b.Receiver]
	if len(pa) != len(pb) {
		return false
	}
	set := make(map[int]bool, len(pa))
	for _, j := range pa {
		set[j] = true
	}
	for _, j := range pb {
		if !set[j] {
			return false
		}
	}
	return true
}

// WithSessionTypes returns a copy of the network in which session i has
// type types[i]. Everything else (graph, paths, caps, link-rate functions)
// is shared. It is the "replacement" operation of Lemma 3: same members,
// same topology, different Γ.
func (n *Network) WithSessionTypes(types []SessionType) (*Network, error) {
	if len(types) != len(n.sessions) {
		return nil, fmt.Errorf("netmodel: %d types for %d sessions", len(types), len(n.sessions))
	}
	sessions := make([]*Session, len(n.sessions))
	for i, s := range n.sessions {
		c := *s
		c.Type = types[i]
		sessions[i] = &c
	}
	return NewNetwork(n.graph, sessions, n.paths)
}

// WithLinkRates returns a copy of the network in which session i uses
// link-rate function fns[i] (nil entries keep the original). It is the
// "replacement" operation of Lemma 4.
func (n *Network) WithLinkRates(fns []LinkRateFunc) (*Network, error) {
	if len(fns) != len(n.sessions) {
		return nil, fmt.Errorf("netmodel: %d link-rate functions for %d sessions", len(fns), len(n.sessions))
	}
	sessions := make([]*Session, len(n.sessions))
	for i, s := range n.sessions {
		c := *s
		if fns[i] != nil {
			c.LinkRate = fns[i]
		}
		sessions[i] = &c
	}
	return NewNetwork(n.graph, sessions, n.paths)
}

// RemoveReceiver returns a copy of the network with receiver r_{i,k}
// deleted from its session (the Section 2.5 experiment). The session must
// retain at least one receiver.
func (n *Network) RemoveReceiver(id ReceiverID) (*Network, error) {
	i, k := id.Session, id.Receiver
	if i < 0 || i >= len(n.sessions) {
		return nil, fmt.Errorf("netmodel: session %d out of range", i)
	}
	s := n.sessions[i]
	if k < 0 || k >= len(s.Receivers) {
		return nil, fmt.Errorf("netmodel: receiver %d out of range in session %d", k, i)
	}
	if len(s.Receivers) == 1 {
		return nil, fmt.Errorf("netmodel: cannot remove the only receiver of session %d", i)
	}
	sessions := make([]*Session, len(n.sessions))
	paths := make([][][]int, len(n.sessions))
	for si, ss := range n.sessions {
		if si != i {
			sessions[si] = ss
			paths[si] = n.paths[si]
			continue
		}
		c := *ss
		c.Receivers = append(append([]int{}, ss.Receivers[:k]...), ss.Receivers[k+1:]...)
		sessions[si] = &c
		paths[si] = append(append([][]int{}, n.paths[si][:k]...), n.paths[si][k+1:]...)
	}
	return NewNetwork(n.graph, sessions, paths)
}
