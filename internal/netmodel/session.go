package netmodel

import (
	"fmt"
	"math"
)

// SessionType is the paper's Γ mapping value: single-rate sessions must
// deliver the same rate to every receiver; multi-rate sessions may deliver
// arbitrary per-receiver rates (achievable with layering).
type SessionType int

const (
	// SingleRate marks a session whose receivers must all share one rate
	// (Γ(S_i) = S in the paper).
	SingleRate SessionType = iota
	// MultiRate marks a session whose receivers may have independent
	// rates (Γ(S_i) = M).
	MultiRate
)

// String returns the paper's one-letter name for the type.
func (t SessionType) String() string {
	switch t {
	case SingleRate:
		return "S"
	case MultiRate:
		return "M"
	}
	return fmt.Sprintf("SessionType(%d)", int(t))
}

// LinkRateFunc is a session link-rate ("redundancy") function v_i: it maps
// the set of rates of the session's receivers downstream of a link to the
// bandwidth the session consumes on that link. Any implementation must
// dominate max (v(X) >= max(X)): every byte received must have crossed the
// receiver's data-path. The function must be monotone in each rate and
// continuous; the allocator relies on both.
type LinkRateFunc func(rates []float64) float64

// MaxLinkRate is the efficient link-rate function v(X) = max(X): the
// session sends exactly the layers its fastest downstream receiver needs.
// This is the paper's Section 2 assumption for multi-rate sessions, and is
// exact for single-rate and unicast sessions. A nil LinkRateFunc on a
// Session means MaxLinkRate.
func MaxLinkRate(rates []float64) float64 { return maxFloat(rates) }

// ScaledMax returns v(X) = factor*max(X) for factor >= 1, modeling a
// session with uniform redundancy "factor" on every link (Definition 3
// redundancy equals factor wherever the session has downstream receivers).
func ScaledMax(factor float64) LinkRateFunc {
	if factor < 1 {
		panic("netmodel: ScaledMax factor must be >= 1")
	}
	return func(rates []float64) float64 { return factor * maxFloat(rates) }
}

// SharedScaledMax returns v(X) = factor*max(X) when the link serves two or
// more of the session's receivers and max(X) otherwise. It models
// uncoordinated joins: redundancy appears only on links shared by multiple
// receivers of the session (the situation in the paper's Figure 4).
func SharedScaledMax(factor float64) LinkRateFunc {
	if factor < 1 {
		panic("netmodel: SharedScaledMax factor must be >= 1")
	}
	return func(rates []float64) float64 {
		m := maxFloat(rates)
		if len(rates) > 1 {
			return factor * m
		}
		return m
	}
}

// Session describes one multicast session: a sender node, receiver nodes,
// the session type, the maximum desired rate κ (use math.Inf(1) or
// NoRateCap for "unbounded"), and an optional link-rate function.
//
// A unicast session is simply a session with one receiver; the paper notes
// it behaves identically whether typed single- or multi-rate.
type Session struct {
	// Sender is the graph node hosting X_i. For abstract (incidence-built)
	// networks it is -1.
	Sender int
	// ExtraSenders lists additional sender nodes for multi-sender
	// sessions — the Section 5 extension in which several co-located
	// sources (e.g. server replicas) serve one logical session and each
	// receiver is fed from one of them. Fairness definitions are
	// unchanged: they are receiver-oriented, and R_{i,j} is determined
	// by whichever sender serves each receiver. Empty for the paper's
	// single-sender model.
	ExtraSenders []int
	// Receivers are the graph nodes hosting r_{i,1}.. r_{i,k_i}. For
	// abstract networks the entries are -1.
	Receivers []int
	// Type is Γ(S_i).
	Type SessionType
	// MaxRate is κ_i, the maximum desired rate (0 < κ_i <= +Inf).
	MaxRate float64
	// LinkRate is v_i; nil means MaxLinkRate.
	LinkRate LinkRateFunc
}

// NoRateCap is a convenience κ value for sessions with no maximum desired
// rate.
var NoRateCap = math.Inf(1)

// NumReceivers returns k_i.
func (s *Session) NumReceivers() int { return len(s.Receivers) }

// EffectiveLinkRate applies the session's link-rate function (MaxLinkRate
// when nil) to the given downstream receiver rates.
func (s *Session) EffectiveLinkRate(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	if s.LinkRate == nil {
		return maxFloat(rates)
	}
	return s.LinkRate(rates)
}

// ReceiverID identifies receiver r_{i,k} as the pair (session index i,
// receiver index k), both 0-based. It is comparable and usable as a map
// key.
type ReceiverID struct {
	Session  int
	Receiver int
}

// String returns the paper's r_{i,k} notation (1-based, as printed there).
func (r ReceiverID) String() string {
	return fmt.Sprintf("r%d,%d", r.Session+1, r.Receiver+1)
}
