package netmodel

import (
	"math"
	"testing"
)

// chainNet builds a 3-node chain A -l0- B -l1- C with one multicast
// session: sender at A, receivers at B and C.
func chainNet(t *testing.T) *Network {
	t.Helper()
	g := NewGraph(3)
	g.AddLink(0, 1, 10)
	g.AddLink(1, 2, 4)
	s := &Session{Sender: 0, Receivers: []int{1, 2}, Type: MultiRate, MaxRate: NoRateCap}
	n, err := NewNetwork(g, []*Session{s}, [][][]int{{{0}, {0, 1}}})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return n
}

func TestNetworkIncidence(t *testing.T) {
	n := chainNet(t)
	if n.ReceiversCrossing(0) != 2 {
		t.Fatalf("R_0 size = %d, want 2", n.ReceiversCrossing(0))
	}
	if n.ReceiversCrossing(1) != 1 {
		t.Fatalf("R_1 size = %d, want 1", n.ReceiversCrossing(1))
	}
	on0 := n.OnLink(0)
	if len(on0) != 1 || on0[0].Session != 0 || len(on0[0].Receivers) != 2 {
		t.Fatalf("OnLink(0) = %+v", on0)
	}
	on1 := n.OnLink(1)
	if len(on1) != 1 || len(on1[0].Receivers) != 1 || on1[0].Receivers[0] != 1 {
		t.Fatalf("OnLink(1) = %+v", on1)
	}
}

func TestCrosses(t *testing.T) {
	n := chainNet(t)
	if !n.Crosses(0, 0, 0) || n.Crosses(0, 0, 1) {
		t.Fatal("receiver 0 path wrong")
	}
	if !n.Crosses(0, 1, 0) || !n.Crosses(0, 1, 1) {
		t.Fatal("receiver 1 path wrong")
	}
}

func TestWalkValidation(t *testing.T) {
	g := NewGraph(3)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	s := &Session{Sender: 0, Receivers: []int{2}, Type: MultiRate, MaxRate: NoRateCap}

	// Non-contiguous walk.
	if _, err := NewNetwork(g, []*Session{s}, [][][]int{{{1}}}); err == nil {
		t.Fatal("accepted walk not starting at sender")
	}
	// Ends at wrong node.
	if _, err := NewNetwork(g, []*Session{s}, [][][]int{{{0}}}); err == nil {
		t.Fatal("accepted walk ending at wrong node")
	}
	// Repeated link.
	if _, err := NewNetwork(g, []*Session{s}, [][][]int{{{0, 0, 1}}}); err == nil {
		t.Fatal("accepted walk with repeated link")
	}
	// Correct walk.
	if _, err := NewNetwork(g, []*Session{s}, [][][]int{{{0, 1}}}); err != nil {
		t.Fatalf("rejected valid walk: %v", err)
	}
}

func TestSessionValidation(t *testing.T) {
	g := NewGraph(2)
	g.AddLink(0, 1, 1)
	if _, err := NewNetwork(g, []*Session{{Sender: 0, Receivers: nil, MaxRate: 1}}, [][][]int{{}}); err == nil {
		t.Fatal("accepted session with no receivers")
	}
	if _, err := NewNetwork(g, []*Session{{Sender: 0, Receivers: []int{1}, MaxRate: 0}}, [][][]int{{{0}}}); err == nil {
		t.Fatal("accepted session with κ=0")
	}
	if _, err := NewNetwork(g, []*Session{nil}, [][][]int{{}}); err == nil {
		t.Fatal("accepted nil session")
	}
	if _, err := NewNetwork(nil, nil, nil); err == nil {
		t.Fatal("accepted nil graph")
	}
	if _, err := NewNetwork(g, []*Session{{Sender: 0, Receivers: []int{1}, MaxRate: 1}}, nil); err == nil {
		t.Fatal("accepted mismatched path groups")
	}
}

func TestSamePath(t *testing.T) {
	b := NewBuilder()
	l0 := b.AddLink(5)
	l1 := b.AddLink(5)
	s1 := b.AddSession(MultiRate, NoRateCap, 1)
	s2 := b.AddSession(MultiRate, NoRateCap, 2)
	b.SetPath(s1, 0, l0, l1)
	b.SetPath(s2, 0, l1, l0) // same set, different order
	b.SetPath(s2, 1, l0)
	n := b.MustBuild()

	if !n.SamePath(ReceiverID{0, 0}, ReceiverID{1, 0}) {
		t.Fatal("same link sets not detected")
	}
	if n.SamePath(ReceiverID{0, 0}, ReceiverID{1, 1}) {
		t.Fatal("different paths reported as same")
	}
}

func TestWithSessionTypes(t *testing.T) {
	n := chainNet(t)
	n2, err := n.WithSessionTypes([]SessionType{SingleRate})
	if err != nil {
		t.Fatalf("WithSessionTypes: %v", err)
	}
	if n2.Session(0).Type != SingleRate {
		t.Fatal("type not changed")
	}
	if n.Session(0).Type != MultiRate {
		t.Fatal("original mutated")
	}
	if _, err := n.WithSessionTypes(nil); err == nil {
		t.Fatal("accepted wrong-length type slice")
	}
}

func TestWithLinkRates(t *testing.T) {
	n := chainNet(t)
	n2, err := n.WithLinkRates([]LinkRateFunc{ScaledMax(2)})
	if err != nil {
		t.Fatalf("WithLinkRates: %v", err)
	}
	a := NewAllocation(n2)
	a.SetRate(0, 0, 1)
	a.SetRate(0, 1, 3)
	if got := a.SessionLinkRate(0, 0); !Eq(got, 6) {
		t.Fatalf("scaled link rate = %v, want 6", got)
	}
	// Original unchanged: v = max.
	a0 := NewAllocation(n)
	a0.SetRate(0, 0, 1)
	a0.SetRate(0, 1, 3)
	if got := a0.SessionLinkRate(0, 0); !Eq(got, 3) {
		t.Fatalf("original link rate = %v, want 3", got)
	}
}

func TestRemoveReceiver(t *testing.T) {
	n := chainNet(t)
	n2, err := n.RemoveReceiver(ReceiverID{0, 1})
	if err != nil {
		t.Fatalf("RemoveReceiver: %v", err)
	}
	if n2.Session(0).NumReceivers() != 1 {
		t.Fatalf("receiver not removed: %d left", n2.Session(0).NumReceivers())
	}
	if n2.ReceiversCrossing(1) != 0 {
		t.Fatal("incidence not rebuilt after removal")
	}
	if n.Session(0).NumReceivers() != 2 {
		t.Fatal("original network mutated")
	}
	if _, err := n2.RemoveReceiver(ReceiverID{0, 0}); err == nil {
		t.Fatal("allowed removing the only receiver")
	}
	if _, err := n.RemoveReceiver(ReceiverID{5, 0}); err == nil {
		t.Fatal("allowed out-of-range session")
	}
	if _, err := n.RemoveReceiver(ReceiverID{0, 9}); err == nil {
		t.Fatal("allowed out-of-range receiver")
	}
}

func TestReceiverIDs(t *testing.T) {
	b := NewBuilder()
	l := b.AddLink(1)
	s1 := b.AddSession(MultiRate, NoRateCap, 2)
	s2 := b.AddSession(SingleRate, NoRateCap, 1)
	b.SetPath(s1, 0, l)
	b.SetPath(s1, 1, l)
	b.SetPath(s2, 0, l)
	n := b.MustBuild()
	ids := n.ReceiverIDs()
	want := []ReceiverID{{0, 0}, {0, 1}, {1, 0}}
	if len(ids) != len(want) {
		t.Fatalf("got %d ids, want %d", len(ids), len(want))
	}
	for x := range want {
		if ids[x] != want[x] {
			t.Fatalf("ids[%d] = %v, want %v", x, ids[x], want[x])
		}
	}
	if n.NumReceivers() != 3 {
		t.Fatalf("NumReceivers = %d, want 3", n.NumReceivers())
	}
}

func TestReceiverIDString(t *testing.T) {
	if s := (ReceiverID{0, 1}).String(); s != "r1,2" {
		t.Fatalf("String = %q, want r1,2", s)
	}
}

func TestSessionTypeString(t *testing.T) {
	if SingleRate.String() != "S" || MultiRate.String() != "M" {
		t.Fatal("SessionType strings wrong")
	}
	if SessionType(9).String() == "" {
		t.Fatal("unknown type produced empty string")
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	l := b.AddLink(1)
	s := b.AddSession(MultiRate, NoRateCap, 2)
	b.SetPath(s, 0, l)
	// Receiver 1 has no path.
	if _, err := b.Build(); err == nil {
		t.Fatal("accepted receiver with no path")
	}
	b.SetPath(s, 1, l)
	if _, err := b.Build(); err != nil {
		t.Fatalf("valid build failed: %v", err)
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative capacity accepted")
			}
		}()
		b.AddLink(-1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero receivers accepted")
			}
		}()
		b.AddSession(MultiRate, NoRateCap, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range link accepted in SetPath")
			}
		}()
		l := b.AddLink(1)
		s := b.AddSession(MultiRate, NoRateCap, 1)
		b.SetPath(s, 0, l+7)
	}()
}

func TestEffectiveLinkRateDefaults(t *testing.T) {
	s := &Session{MaxRate: 1, Receivers: []int{-1}}
	if got := s.EffectiveLinkRate(nil); got != 0 {
		t.Fatalf("empty rate set -> %v, want 0", got)
	}
	if got := s.EffectiveLinkRate([]float64{1, 3, 2}); got != 3 {
		t.Fatalf("default max -> %v, want 3", got)
	}
}

func TestLinkRateFuncs(t *testing.T) {
	if got := MaxLinkRate([]float64{1, 5, 2}); got != 5 {
		t.Fatalf("MaxLinkRate = %v", got)
	}
	if got := ScaledMax(2)([]float64{3}); got != 6 {
		t.Fatalf("ScaledMax(2) = %v", got)
	}
	sm := SharedScaledMax(2)
	if got := sm([]float64{3}); got != 3 {
		t.Fatalf("SharedScaledMax single = %v, want 3", got)
	}
	if got := sm([]float64{3, 1}); got != 6 {
		t.Fatalf("SharedScaledMax shared = %v, want 6", got)
	}
	for _, f := range []func(){func() { ScaledMax(0.5) }, func() { SharedScaledMax(0.9) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("factor < 1 accepted")
				}
			}()
			f()
		}()
	}
}

func TestFloatHelpers(t *testing.T) {
	if !Eq(1, 1+Eps/2) || Eq(1, 1+3*Eps) {
		t.Fatal("Eq tolerance wrong")
	}
	if !Leq(1, 1) || !Leq(1, 1+Eps/2) || Leq(1+3*Eps, 1) {
		t.Fatal("Leq tolerance wrong")
	}
	if !Less(1, 2) || Less(1, 1+Eps/2) {
		t.Fatal("Less tolerance wrong")
	}
	if !Geq(1, 1) || Geq(1, 1+3*Eps) {
		t.Fatal("Geq tolerance wrong")
	}
	if !Greater(2, 1) || Greater(1+Eps/2, 1) {
		t.Fatal("Greater tolerance wrong")
	}
	if math.IsInf(maxFloat(nil), 0) || maxFloat(nil) != 0 {
		t.Fatal("maxFloat(nil) != 0")
	}
}

func TestWithLinkRatesValidation(t *testing.T) {
	n := chainNet(t)
	if _, err := n.WithLinkRates(nil); err == nil {
		t.Fatal("wrong-length link-rate slice accepted")
	}
	// nil entries keep the original function.
	n2, err := n.WithLinkRates([]LinkRateFunc{nil})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocation(n2)
	a.SetRate(0, 0, 2)
	a.SetRate(0, 1, 1)
	if got := a.SessionLinkRate(0, 0); !Eq(got, 2) {
		t.Fatalf("nil entry changed the link rate: %v", got)
	}
}

func TestMultiSenderWalkValidation(t *testing.T) {
	// A walk valid only from the extra sender must be accepted; a walk
	// valid from neither must be rejected.
	g := NewGraph(3)
	g.AddLink(0, 1, 5) // l0
	g.AddLink(2, 1, 5) // l1
	s := &Session{Sender: 0, ExtraSenders: []int{2}, Receivers: []int{1},
		Type: MultiRate, MaxRate: NoRateCap}
	if _, err := NewNetwork(g, []*Session{s}, [][][]int{{{1}}}); err != nil {
		t.Fatalf("extra-sender walk rejected: %v", err)
	}
	bad := &Session{Sender: 0, ExtraSenders: []int{1}, Receivers: []int{2},
		Type: MultiRate, MaxRate: NoRateCap}
	if _, err := NewNetwork(g, []*Session{bad}, [][][]int{{{0}}}); err == nil {
		t.Fatal("invalid walk accepted")
	}
}
