// Package netmodel defines the network model of Rubenstein, Kurose and
// Towsley, "The Impact of Multicast Layering on Network Fairness"
// (SIGCOMM '99): a capacitated link graph, multicast sessions with a single
// sender and one or more receivers, per-receiver data-paths, and rate
// allocations.
//
// The model follows Table 1 of the paper:
//
//   - A network N = (G, {S_1..S_m}, τ, Γ) is a graph G with n links,
//     a set of sessions, a topology mapping τ of session members onto
//     graph nodes, and a type mapping Γ marking each session single-rate
//     or multi-rate.
//   - Each session S_i has one sender X_i, receivers r_{i,k}, and a
//     maximum desired rate κ_i (possibly +Inf).
//   - Each receiver has a data-path: the sequence of links carrying data
//     from X_i to r_{i,k}. R_{i,j} is the set of receivers of S_i whose
//     data-path traverses link l_j; R_j is the union over sessions.
//   - An allocation assigns a rate a_{i,k} to every receiver. Session S_i
//     consumes u_{i,j} = v_i({a_{i,k} : r_{i,k} ∈ R_{i,j}}) on link l_j,
//     where v_i is the session's link-rate (redundancy) function. The
//     efficient choice — and the paper's Section 2 assumption — is
//     v_i = max. Section 3 generalizes v_i to model layering redundancy.
//
// Networks can be built two ways:
//
//   - From an explicit graph with per-receiver routed paths (see
//     NewNetwork and the routing package), which models a real topology.
//   - From bare link/receiver incidence (see Builder), which is the
//     abstract form used throughout the paper's proofs: only the sets
//     R_{i,j} and capacities matter for fairness analysis.
//
// All floating-point comparisons in this module tree go through the
// tolerance helpers in this package (Eq, Leq, Less) so that every package
// agrees on what "fully utilized" means.
package netmodel
