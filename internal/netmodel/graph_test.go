package netmodel

import "testing"

func TestNewGraphEmpty(t *testing.T) {
	g := NewGraph(3)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumLinks() != 0 {
		t.Fatalf("NumLinks = %d, want 0", g.NumLinks())
	}
}

func TestAddLinkIndices(t *testing.T) {
	g := NewGraph(4)
	j0 := g.AddLink(0, 1, 5)
	j1 := g.AddLink(1, 2, 7)
	j2 := g.AddLink(1, 3, 3)
	if j0 != 0 || j1 != 1 || j2 != 2 {
		t.Fatalf("link indices = %d,%d,%d; want 0,1,2", j0, j1, j2)
	}
	if g.NumLinks() != 3 {
		t.Fatalf("NumLinks = %d, want 3", g.NumLinks())
	}
	if c := g.Capacity(1); c != 7 {
		t.Fatalf("Capacity(1) = %v, want 7", c)
	}
	l := g.Link(2)
	if l.From != 1 || l.To != 3 || l.Capacity != 3 {
		t.Fatalf("Link(2) = %+v", l)
	}
}

func TestParallelLinks(t *testing.T) {
	g := NewGraph(2)
	g.AddLink(0, 1, 1)
	g.AddLink(0, 1, 2)
	if g.NumLinks() != 2 {
		t.Fatalf("parallel links not kept: NumLinks = %d", g.NumLinks())
	}
	if got := g.Incident(0); len(got) != 2 {
		t.Fatalf("Incident(0) = %v, want 2 entries", got)
	}
}

func TestIncident(t *testing.T) {
	g := NewGraph(3)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	inc := g.Incident(1)
	if len(inc) != 2 || inc[0] != 0 || inc[1] != 1 {
		t.Fatalf("Incident(1) = %v, want [0 1]", inc)
	}
	if len(g.Incident(0)) != 1 || len(g.Incident(2)) != 1 {
		t.Fatalf("leaf incidence wrong: %v %v", g.Incident(0), g.Incident(2))
	}
}

func TestOther(t *testing.T) {
	g := NewGraph(3)
	j := g.AddLink(0, 2, 1)
	if got := g.Other(j, 0); got != 2 {
		t.Fatalf("Other(j,0) = %d, want 2", got)
	}
	if got := g.Other(j, 2); got != 0 {
		t.Fatalf("Other(j,2) = %d, want 0", got)
	}
}

func TestOtherPanicsOnNonEndpoint(t *testing.T) {
	g := NewGraph(3)
	j := g.AddLink(0, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	g.Other(j, 1)
}

func TestAddLinkPanics(t *testing.T) {
	cases := []struct {
		name     string
		from, to int
		cap      float64
	}{
		{"self-loop", 1, 1, 1},
		{"negative capacity", 0, 1, -2},
		{"from out of range", -1, 1, 1},
		{"to out of range", 0, 9, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := NewGraph(2)
			defer func() {
				if recover() == nil {
					t.Fatalf("AddLink(%d,%d,%v) did not panic", c.from, c.to, c.cap)
				}
			}()
			g.AddLink(c.from, c.to, c.cap)
		})
	}
}

func TestCapacities(t *testing.T) {
	g := NewGraph(3)
	g.AddLink(0, 1, 5)
	g.AddLink(1, 2, 7)
	cs := g.Capacities()
	if len(cs) != 2 || cs[0] != 5 || cs[1] != 7 {
		t.Fatalf("Capacities = %v", cs)
	}
	cs[0] = 99
	if g.Capacity(0) != 5 {
		t.Fatal("Capacities did not return a copy")
	}
}

func TestZeroCapacityLinkAllowed(t *testing.T) {
	g := NewGraph(2)
	j := g.AddLink(0, 1, 0)
	if g.Capacity(j) != 0 {
		t.Fatalf("zero-capacity link rejected")
	}
}
