package netmodel

import "fmt"

// Builder constructs "abstract" networks directly from link/receiver
// incidence, without a routable graph. This is the form the paper's proofs
// operate on: fairness depends only on capacities c_j and the sets R_{i,j}.
//
// Internally the builder synthesizes a star-shaped placeholder graph (one
// node, plus two nodes per link) so that the rest of the library — which
// reads capacities and incidence — works unchanged; node identities and
// walk validation are bypassed via sentinel -1 member nodes.
//
//	b := netmodel.NewBuilder()
//	lA := b.AddLink(4)
//	lB := b.AddLink(10)
//	s := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
//	b.SetPath(s, 0, lA)      // receiver 0 crosses link A
//	b.SetPath(s, 1, lA, lB)  // receiver 1 crosses links A and B
//	net, err := b.Build()
type Builder struct {
	caps     []float64
	sessions []*Session
	paths    [][][]int
}

// NewBuilder returns an empty abstract-network builder.
func NewBuilder() *Builder { return &Builder{} }

// AddLink adds a link with the given capacity and returns its index.
func (b *Builder) AddLink(capacity float64) int {
	if capacity < 0 {
		panic("netmodel: negative capacity")
	}
	b.caps = append(b.caps, capacity)
	return len(b.caps) - 1
}

// AddSession adds a session with the given type, maximum desired rate and
// receiver count, and returns its index. Paths start empty; set them with
// SetPath.
func (b *Builder) AddSession(t SessionType, maxRate float64, numReceivers int) int {
	if numReceivers < 1 {
		panic("netmodel: session needs at least one receiver")
	}
	recv := make([]int, numReceivers)
	for k := range recv {
		recv[k] = -1
	}
	b.sessions = append(b.sessions, &Session{
		Sender:    -1,
		Receivers: recv,
		Type:      t,
		MaxRate:   maxRate,
	})
	b.paths = append(b.paths, make([][]int, numReceivers))
	return len(b.sessions) - 1
}

// SetLinkRate sets session i's link-rate (redundancy) function.
func (b *Builder) SetLinkRate(i int, fn LinkRateFunc) {
	b.sessions[i].LinkRate = fn
}

// SetPath declares the set of links receiver k of session i crosses.
func (b *Builder) SetPath(i, k int, links ...int) {
	for _, j := range links {
		if j < 0 || j >= len(b.caps) {
			panic(fmt.Sprintf("netmodel: link %d out of range", j))
		}
	}
	b.paths[i][k] = append([]int{}, links...)
}

// Build assembles the network. Every receiver must have been given a
// non-empty path.
func (b *Builder) Build() (*Network, error) {
	g := NewGraph(1 + 2*len(b.caps))
	for j, c := range b.caps {
		g.AddLink(1+2*j, 2+2*j, c)
	}
	for i, ps := range b.paths {
		for k, p := range ps {
			if len(p) == 0 {
				return nil, fmt.Errorf("netmodel: session %d receiver %d has no path", i, k)
			}
		}
	}
	return NewNetwork(g, b.sessions, b.paths)
}

// MustBuild is Build that panics on error, for tests and fixed examples.
func (b *Builder) MustBuild() *Network {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}
