package netmodel

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := NewGraph(3)
	g.AddLink(0, 1, 5)
	g.AddLink(1, 2, 2)
	s := &Session{Sender: 0, Receivers: []int{1, 2}, Type: MultiRate, MaxRate: NoRateCap}
	n, err := NewNetwork(g, []*Session{s}, [][][]int{{{0}, {0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteDOT(&b, n, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"graph mlfair", "X1", "r1,1", "r1,2", "l1: c=5", "l2: c=2", "n0 -- n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "color=red") {
		t.Error("no allocation given, but saturation color present")
	}
}

func TestWriteDOTWithAllocation(t *testing.T) {
	g := NewGraph(2)
	g.AddLink(0, 1, 4)
	s := &Session{Sender: 0, Receivers: []int{1}, Type: MultiRate, MaxRate: NoRateCap}
	n, err := NewNetwork(g, []*Session{s}, [][][]int{{{0}}})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocation(n)
	a.SetRate(0, 0, 4)
	var b strings.Builder
	if err := WriteDOT(&b, n, a); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "u=4") || !strings.Contains(out, "color=red") {
		t.Fatalf("utilization annotation missing:\n%s", out)
	}
}
