package netmodel

import (
	"strings"
	"testing"
)

// twoSessionNet: one shared link (c=6) crossed by a 2-receiver multi-rate
// session and a unicast session, plus a private tail link (c=2) for the
// multicast session's second receiver.
func twoSessionNet(t *testing.T) *Network {
	t.Helper()
	b := NewBuilder()
	shared := b.AddLink(6)
	tail := b.AddLink(2)
	m := b.AddSession(MultiRate, NoRateCap, 2)
	u := b.AddSession(SingleRate, 5, 1)
	b.SetPath(m, 0, shared)
	b.SetPath(m, 1, shared, tail)
	b.SetPath(u, 0, shared)
	return b.MustBuild()
}

func TestAllocationZero(t *testing.T) {
	n := twoSessionNet(t)
	a := NewAllocation(n)
	if a.Rate(0, 0) != 0 || a.Rate(1, 0) != 0 {
		t.Fatal("fresh allocation not zero")
	}
	if err := a.Feasible(); err != nil {
		t.Fatalf("zero allocation infeasible: %v", err)
	}
	if a.TotalRate() != 0 || a.MinRate() != 0 {
		t.Fatal("zero summary stats wrong")
	}
}

func TestSessionLinkRateMax(t *testing.T) {
	n := twoSessionNet(t)
	a := NewAllocation(n)
	a.SetRate(0, 0, 4)
	a.SetRate(0, 1, 1.5)
	a.SetRate(1, 0, 2)
	// u_{1,shared} = max(4, 1.5) = 4; u_{2,shared} = 2.
	if got := a.SessionLinkRate(0, 0); !Eq(got, 4) {
		t.Fatalf("u_{1,0} = %v, want 4", got)
	}
	if got := a.SessionLinkRate(1, 0); !Eq(got, 2) {
		t.Fatalf("u_{2,0} = %v, want 2", got)
	}
	if got := a.LinkRate(0); !Eq(got, 6) {
		t.Fatalf("u_0 = %v, want 6", got)
	}
	if !a.FullyUtilized(0) {
		t.Fatal("link 0 should be fully utilized")
	}
	// Tail carries only receiver (0,1).
	if got := a.LinkRate(1); !Eq(got, 1.5) {
		t.Fatalf("u_1 = %v, want 1.5", got)
	}
	if a.FullyUtilized(1) {
		t.Fatal("link 1 should not be fully utilized")
	}
	// Session 1 has nobody on the tail link.
	if got := a.SessionLinkRate(1, 1); got != 0 {
		t.Fatalf("u_{2,1} = %v, want 0", got)
	}
}

func TestFeasibleViolations(t *testing.T) {
	n := twoSessionNet(t)

	a := NewAllocation(n)
	a.SetRate(0, 0, -1)
	if err := a.Feasible(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative rate not caught: %v", err)
	}

	a = NewAllocation(n)
	a.SetRate(1, 0, 5.5) // κ_2 = 5
	if err := a.Feasible(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("κ violation not caught: %v", err)
	}

	a = NewAllocation(n)
	a.SetRate(0, 0, 5)
	a.SetRate(1, 0, 5)
	if err := a.Feasible(); err == nil || !strings.Contains(err.Error(), "overutilized") {
		t.Fatalf("capacity violation not caught: %v", err)
	}
}

func TestFeasibleSingleRateEquality(t *testing.T) {
	b := NewBuilder()
	l := b.AddLink(10)
	s := b.AddSession(SingleRate, NoRateCap, 2)
	b.SetPath(s, 0, l)
	b.SetPath(s, 1, l)
	n := b.MustBuild()
	a := NewAllocation(n)
	a.SetRate(0, 0, 1)
	a.SetRate(0, 1, 2)
	if err := a.Feasible(); err == nil || !strings.Contains(err.Error(), "unequal") {
		t.Fatalf("single-rate inequality not caught: %v", err)
	}
}

func TestAllocationFromRates(t *testing.T) {
	n := twoSessionNet(t)
	a, err := AllocationFromRates(n, [][]float64{{1, 2}, {3}})
	if err != nil {
		t.Fatalf("AllocationFromRates: %v", err)
	}
	if a.Rate(0, 1) != 2 || a.Rate(1, 0) != 3 {
		t.Fatal("rates not copied")
	}
	if _, err := AllocationFromRates(n, [][]float64{{1, 2}}); err == nil {
		t.Fatal("wrong session count accepted")
	}
	if _, err := AllocationFromRates(n, [][]float64{{1}, {3}}); err == nil {
		t.Fatal("wrong receiver count accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := twoSessionNet(t)
	a, _ := AllocationFromRates(n, [][]float64{{1, 2}, {3}})
	c := a.Clone()
	c.SetRate(0, 0, 9)
	if a.Rate(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	if c.Network() != a.Network() {
		t.Fatal("Clone should share the network")
	}
}

func TestOrderedVector(t *testing.T) {
	n := twoSessionNet(t)
	a, _ := AllocationFromRates(n, [][]float64{{3, 1}, {2}})
	v := a.OrderedVector()
	want := []float64{1, 2, 3}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("OrderedVector = %v, want %v", v, want)
		}
	}
}

func TestRateOf(t *testing.T) {
	n := twoSessionNet(t)
	a, _ := AllocationFromRates(n, [][]float64{{3, 1}, {2}})
	if got := a.RateOf(ReceiverID{0, 1}); got != 1 {
		t.Fatalf("RateOf = %v, want 1", got)
	}
	if got := a.MinRate(); got != 1 {
		t.Fatalf("MinRate = %v, want 1", got)
	}
	if got := a.TotalRate(); got != 6 {
		t.Fatalf("TotalRate = %v, want 6", got)
	}
}

func TestAllocationString(t *testing.T) {
	n := twoSessionNet(t)
	a, _ := AllocationFromRates(n, [][]float64{{3, 1}, {2}})
	s := a.String()
	if !strings.Contains(s, "S1[M]") || !strings.Contains(s, "S2[S]") {
		t.Fatalf("String = %q", s)
	}
}
