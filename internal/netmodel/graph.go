package netmodel

import "fmt"

// Link is an undirected capacitated edge between two nodes. Capacity limits
// the aggregate rate of flow crossing the link in either direction
// (the paper's c_j; a per-direction capacity is modeled by using two links).
type Link struct {
	From, To int
	Capacity float64
}

// Graph is an undirected multigraph of capacitated links. Links are
// identified by their index (the paper's j, 0-based here). Parallel links
// and self-avoiding arbitrary topologies are allowed.
type Graph struct {
	numNodes int
	links    []Link
	incident [][]int // incident[n] = indices of links touching node n
}

// NewGraph returns an empty graph with n nodes and no links.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("netmodel: negative node count")
	}
	return &Graph{numNodes: n, incident: make([][]int, n)}
}

// AddLink appends an undirected link between from and to with the given
// capacity and returns its index. Capacity must be non-negative; from and
// to must be distinct valid nodes.
func (g *Graph) AddLink(from, to int, capacity float64) int {
	if from < 0 || from >= g.numNodes || to < 0 || to >= g.numNodes {
		panic(fmt.Sprintf("netmodel: link endpoint out of range [%d,%d) : %d-%d", 0, g.numNodes, from, to))
	}
	if from == to {
		panic("netmodel: self-loop links are not allowed")
	}
	if capacity < 0 {
		panic("netmodel: negative link capacity")
	}
	j := len(g.links)
	g.links = append(g.links, Link{From: from, To: to, Capacity: capacity})
	g.incident[from] = append(g.incident[from], j)
	g.incident[to] = append(g.incident[to], j)
	return j
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.numNodes }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Link returns the link with index j.
func (g *Graph) Link(j int) Link { return g.links[j] }

// Capacity returns the capacity of link j.
func (g *Graph) Capacity(j int) float64 { return g.links[j].Capacity }

// Incident returns the indices of links touching node n. The returned slice
// must not be modified.
func (g *Graph) Incident(n int) []int { return g.incident[n] }

// Other returns the endpoint of link j that is not n. It panics if n is not
// an endpoint of j.
func (g *Graph) Other(j, n int) int {
	l := g.links[j]
	switch n {
	case l.From:
		return l.To
	case l.To:
		return l.From
	}
	panic(fmt.Sprintf("netmodel: node %d is not an endpoint of link %d", n, j))
}

// Capacities returns a copy of all link capacities indexed by link.
func (g *Graph) Capacities() []float64 {
	cs := make([]float64, len(g.links))
	for j, l := range g.links {
		cs[j] = l.Capacity
	}
	return cs
}
