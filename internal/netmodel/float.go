package netmodel

import "math"

// Eps is the tolerance used for all rate and capacity comparisons.
// Allocations are built by iterative filling; accumulated error stays many
// orders of magnitude below this for the network sizes this library targets.
const Eps = 1e-9

// Eq reports whether a and b are equal within Eps.
func Eq(a, b float64) bool {
	return math.Abs(a-b) <= Eps
}

// Leq reports whether a <= b within Eps.
func Leq(a, b float64) bool {
	return a <= b+Eps
}

// Less reports whether a < b by more than Eps.
func Less(a, b float64) bool {
	return a < b-Eps
}

// Geq reports whether a >= b within Eps.
func Geq(a, b float64) bool {
	return a >= b-Eps
}

// Greater reports whether a > b by more than Eps.
func Greater(a, b float64) bool {
	return a > b+Eps
}

// maxFloat returns the maximum of a non-empty slice, or 0 for an empty one.
func maxFloat(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
