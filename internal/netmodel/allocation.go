package netmodel

import (
	"fmt"
	"sort"
	"strings"
)

// Allocation assigns a rate a_{i,k} to every receiver of a network. It
// carries a reference to its network so link rates u_{i,j} and u_j can be
// derived on demand.
type Allocation struct {
	net *Network
	// rates[i][k] is a_{i,k}.
	rates [][]float64
}

// NewAllocation returns an all-zero allocation for net.
func NewAllocation(net *Network) *Allocation {
	r := make([][]float64, net.NumSessions())
	for i, s := range net.Sessions() {
		r[i] = make([]float64, s.NumReceivers())
	}
	return &Allocation{net: net, rates: r}
}

// AllocationFromRates wraps explicit per-session rate slices. The shape
// must match the network. The slices are copied.
func AllocationFromRates(net *Network, rates [][]float64) (*Allocation, error) {
	if len(rates) != net.NumSessions() {
		return nil, fmt.Errorf("netmodel: %d rate groups for %d sessions", len(rates), net.NumSessions())
	}
	a := NewAllocation(net)
	for i, rs := range rates {
		if len(rs) != net.Session(i).NumReceivers() {
			return nil, fmt.Errorf("netmodel: session %d: %d rates for %d receivers", i, len(rs), net.Session(i).NumReceivers())
		}
		copy(a.rates[i], rs)
	}
	return a, nil
}

// Network returns the network this allocation belongs to.
func (a *Allocation) Network() *Network { return a.net }

// Rate returns a_{i,k}.
func (a *Allocation) Rate(i, k int) float64 { return a.rates[i][k] }

// RateOf returns the rate of the identified receiver.
func (a *Allocation) RateOf(id ReceiverID) float64 { return a.rates[id.Session][id.Receiver] }

// SetRate sets a_{i,k}.
func (a *Allocation) SetRate(i, k int, r float64) { a.rates[i][k] = r }

// SessionRates returns the rates of session i's receivers. Callers must
// not modify the returned slice.
func (a *Allocation) SessionRates(i int) []float64 { return a.rates[i] }

// Clone returns a deep copy sharing the network.
func (a *Allocation) Clone() *Allocation {
	c := NewAllocation(a.net)
	for i := range a.rates {
		copy(c.rates[i], a.rates[i])
	}
	return c
}

// SessionLinkRate returns u_{i,j} = v_i({a_{i,k} : r_{i,k} in R_{i,j}}),
// the bandwidth session i consumes on link j (0 when no receiver of the
// session crosses the link).
func (a *Allocation) SessionLinkRate(i, j int) float64 {
	for _, sr := range a.net.OnLink(j) {
		if sr.Session != i {
			continue
		}
		return a.sessionLinkRate(sr)
	}
	return 0
}

func (a *Allocation) sessionLinkRate(sr SessionReceivers) float64 {
	rs := make([]float64, len(sr.Receivers))
	for x, k := range sr.Receivers {
		rs[x] = a.rates[sr.Session][k]
	}
	return a.net.Session(sr.Session).EffectiveLinkRate(rs)
}

// LinkRate returns u_j, the total bandwidth consumed on link j.
func (a *Allocation) LinkRate(j int) float64 {
	u := 0.0
	for _, sr := range a.net.OnLink(j) {
		u += a.sessionLinkRate(sr)
	}
	return u
}

// FullyUtilized reports whether u_j = c_j within tolerance.
func (a *Allocation) FullyUtilized(j int) bool {
	return Geq(a.LinkRate(j), a.net.Capacity(j))
}

// Feasible verifies the paper's feasibility conditions: 0 <= a_{i,k} <=
// κ_i for every receiver, equal rates within single-rate sessions, and
// u_j <= c_j on every link. It returns nil if all hold (within Eps).
func (a *Allocation) Feasible() error {
	for i, s := range a.net.Sessions() {
		for k, r := range a.rates[i] {
			if Less(r, 0) {
				return fmt.Errorf("receiver r%d,%d has negative rate %v", i+1, k+1, r)
			}
			if Greater(r, s.MaxRate) {
				return fmt.Errorf("receiver r%d,%d rate %v exceeds κ=%v", i+1, k+1, r, s.MaxRate)
			}
			if s.Type == SingleRate && !Eq(r, a.rates[i][0]) {
				return fmt.Errorf("single-rate session %d has unequal rates %v and %v", i+1, a.rates[i][0], r)
			}
		}
	}
	for j := 0; j < a.net.NumLinks(); j++ {
		if u, c := a.LinkRate(j), a.net.Capacity(j); Greater(u, c) {
			return fmt.Errorf("link l%d overutilized: u=%v > c=%v", j+1, u, c)
		}
	}
	return nil
}

// OrderedVector returns all receiver rates sorted ascending — the vectors
// compared by the min-unfavorable relation (Definition 2).
func (a *Allocation) OrderedVector() []float64 {
	v := make([]float64, 0, a.net.NumReceivers())
	for i := range a.rates {
		v = append(v, a.rates[i]...)
	}
	sort.Float64s(v)
	return v
}

// TotalRate returns the sum of all receiver rates (a throughput summary,
// not part of the paper's model).
func (a *Allocation) TotalRate() float64 {
	t := 0.0
	for i := range a.rates {
		for _, r := range a.rates[i] {
			t += r
		}
	}
	return t
}

// MinRate returns the smallest receiver rate.
func (a *Allocation) MinRate() float64 {
	first := true
	m := 0.0
	for i := range a.rates {
		for _, r := range a.rates[i] {
			if first || r < m {
				m, first = r, false
			}
		}
	}
	return m
}

// String renders the allocation in the paper's per-session style:
// "S1[M]: 1.00 2.00 | S2[S]: 3.00".
func (a *Allocation) String() string {
	var b strings.Builder
	for i, s := range a.net.Sessions() {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "S%d[%s]:", i+1, s.Type)
		for _, r := range a.rates[i] {
			fmt.Fprintf(&b, " %.4g", r)
		}
	}
	return b.String()
}
