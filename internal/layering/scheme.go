// Package layering models layered multicast transmission as in Section 3
// of the paper: data split across M ordered layers (multicast groups),
// receivers subscribing to prefixes of the layer stack, restricted rate
// sets, and quantum-timed join/leave plans that realize fractional
// average rates.
//
// The package provides three things:
//
//   - Scheme: a layer-rate configuration, including the paper's Section 4
//     exponential scheme (cumulative rate of layers 1..i equal to 2^(i-1)).
//   - Fixed-layer analysis: enumeration of the feasible allocations when
//     every receiver must sit at a subscription level for the whole
//     session, and a Definition-1 max-min search over that finite set —
//     which demonstrates the paper's Section 3 example where no max-min
//     fair allocation exists.
//   - Quantum plans: the floor/ceil carry scheme of footnote 7 by which a
//     receiver achieves a long-term average rate between levels, and a
//     quantum-level usage simulator contrasting coordinated (prefix)
//     with uncoordinated (random) packet choices.
package layering

import (
	"fmt"
	"math"
)

// Scheme is an ordered set of layer rates. Layer l (0-based) adds
// rates[l] to a subscriber's aggregate rate; a receiver joined "up to
// level v" (v in 0..NumLayers) receives the sum of layers 0..v-1.
type Scheme struct {
	rates []float64
	cum   []float64 // cum[v] = aggregate rate at level v; cum[0] = 0
}

// NewScheme builds a scheme from per-layer rates, all of which must be
// positive.
func NewScheme(rates ...float64) Scheme {
	if len(rates) == 0 {
		panic("layering: scheme needs at least one layer")
	}
	cum := make([]float64, len(rates)+1)
	for l, r := range rates {
		if r <= 0 {
			panic(fmt.Sprintf("layering: layer %d has non-positive rate %v", l, r))
		}
		cum[l+1] = cum[l] + r
	}
	return Scheme{rates: append([]float64{}, rates...), cum: cum}
}

// Exponential returns the paper's Section 4 scheme with m layers: the
// aggregate rate of layers 1..i equals 2^(i-1) (so per-layer rates are
// 1, 1, 2, 4, ..., 2^(m-2)).
func Exponential(m int) Scheme {
	if m < 1 {
		panic("layering: need at least one layer")
	}
	rates := make([]float64, m)
	rates[0] = 1
	for l := 1; l < m; l++ {
		rates[l] = math.Exp2(float64(l - 1))
	}
	return NewScheme(rates...)
}

// Uniform returns m layers of equal rate.
func Uniform(m int, rate float64) Scheme {
	rates := make([]float64, m)
	for l := range rates {
		rates[l] = rate
	}
	return NewScheme(rates...)
}

// NumLayers returns M.
func (s Scheme) NumLayers() int { return len(s.rates) }

// LayerRate returns the rate of layer l (0-based).
func (s Scheme) LayerRate(l int) float64 { return s.rates[l] }

// CumulativeRate returns the aggregate rate at subscription level v
// (0 <= v <= NumLayers); level 0 is 0.
func (s Scheme) CumulativeRate(v int) float64 { return s.cum[v] }

// Levels returns all achievable aggregate rates, 0 through the full
// stack, as a fresh slice.
func (s Scheme) Levels() []float64 { return append([]float64{}, s.cum...) }

// TotalRate returns the aggregate rate with all layers joined.
func (s Scheme) TotalRate() float64 { return s.cum[len(s.cum)-1] }

// LevelFor returns the highest subscription level whose aggregate rate
// does not exceed rate (the best sustained approximation from below).
func (s Scheme) LevelFor(rate float64) int {
	v := 0
	for v < s.NumLayers() && s.cum[v+1] <= rate+1e-12 {
		v++
	}
	return v
}

// String renders the scheme as its per-layer rates.
func (s Scheme) String() string { return fmt.Sprintf("layers%v", s.rates) }
