package layering

import (
	"math"
	"testing"
)

func TestSubscriptionPlanExactLevel(t *testing.T) {
	s := Exponential(4) // levels 0,1,2,4,8
	p := NewSubscriptionPlan(2, s, 100)
	if p.FullLayers() != 2 {
		t.Fatalf("FullLayers = %d, want 2", p.FullLayers())
	}
	if _, ok := p.PartialLayer(); ok {
		t.Fatal("exact level should have no partial layer")
	}
	for q := 0; q < 100; q++ {
		p.NextQuantum()
	}
	if avg := p.AverageRate(); math.Abs(avg-2) > 0.05 {
		t.Fatalf("average rate = %v, want 2", avg)
	}
}

func TestSubscriptionPlanFractional(t *testing.T) {
	s := Exponential(4)
	for _, target := range []float64{0.5, 1.5, 2.7, 3, 5.25, 7.9} {
		p := NewSubscriptionPlan(target, s, 64)
		for q := 0; q < 4000; q++ {
			p.NextQuantum()
		}
		if avg := p.AverageRate(); math.Abs(avg-target)/target > 0.02 {
			t.Errorf("target %v: average %v", target, avg)
		}
	}
}

func TestSubscriptionPlanClamp(t *testing.T) {
	s := Exponential(3) // total 4
	p := NewSubscriptionPlan(100, s, 10)
	if p.Target() != 4 {
		t.Fatalf("target not clamped: %v", p.Target())
	}
	if p.FullLayers() != 3 {
		t.Fatalf("FullLayers = %d", p.FullLayers())
	}
	for q := 0; q < 50; q++ {
		p.NextQuantum()
	}
	if avg := p.AverageRate(); math.Abs(avg-4) > 0.1 {
		t.Fatalf("average = %v, want 4", avg)
	}
}

func TestSubscriptionPlanZero(t *testing.T) {
	s := Exponential(3)
	p := NewSubscriptionPlan(0, s, 10)
	if p.FullLayers() != 0 {
		t.Fatal("zero rate should join nothing")
	}
	p.NextQuantum()
	if p.AverageRate() != 0 {
		t.Fatal("zero rate received packets")
	}
}

func TestSubscriptionPlanPartialCounts(t *testing.T) {
	s := NewScheme(1, 1, 2)
	p := NewSubscriptionPlan(2.5, s, 100)
	if p.FullLayers() != 2 {
		t.Fatalf("FullLayers = %d", p.FullLayers())
	}
	l, ok := p.PartialLayer()
	if !ok || l != 2 {
		t.Fatalf("PartialLayer = %d, %v", l, ok)
	}
	counts := p.NextQuantum()
	// Partial layer rate 2, 100 packets per quantum; full layers rate 1
	// each -> 50 packets per quantum.
	if counts[0] != 50 || counts[1] != 50 {
		t.Fatalf("full layer counts = %v", counts)
	}
	// 0.5/2 = 25% of the partial layer per quantum.
	if counts[2] < 20 || counts[2] > 30 {
		t.Fatalf("partial count = %d, want ~25", counts[2])
	}
	if p.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSubscriptionPlanPanics(t *testing.T) {
	s := Exponential(2)
	for name, f := range map[string]func(){
		"negative rate": func() { NewSubscriptionPlan(-1, s, 10) },
		"zero quantum":  func() { NewSubscriptionPlan(1, s, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}
