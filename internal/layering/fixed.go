package layering

import (
	"fmt"

	"mlfair/internal/netmodel"
)

// FixedLayerAllocations enumerates every feasible allocation of a network
// when each receiver of session i must sit at one of schemes[i]'s
// subscription levels for the whole session (no joins/leaves). The
// network's κ and single-rate constraints apply as usual. The result can
// be exponentially large; this is an analysis tool for small examples
// like the paper's Section 3 network.
func FixedLayerAllocations(net *netmodel.Network, schemes []Scheme) ([]*netmodel.Allocation, error) {
	if len(schemes) != net.NumSessions() {
		return nil, fmt.Errorf("layering: %d schemes for %d sessions", len(schemes), net.NumSessions())
	}
	ids := net.ReceiverIDs()
	var out []*netmodel.Allocation
	alloc := netmodel.NewAllocation(net)
	var rec func(x int)
	rec = func(x int) {
		if x == len(ids) {
			if alloc.Feasible() == nil {
				out = append(out, alloc.Clone())
			}
			return
		}
		id := ids[x]
		for _, level := range schemes[id.Session].Levels() {
			alloc.SetRate(id.Session, id.Receiver, level)
			rec(x + 1)
		}
		alloc.SetRate(id.Session, id.Receiver, 0)
	}
	rec(0)
	return out, nil
}

// IsMaxMinOver checks Definition 1 restricted to a finite candidate set:
// a is max-min fair over feasible iff for every alternative b and every
// receiver r with b_r > a_r there is another receiver r' with
// a_{r'} <= a_r whose rate decreased (b_{r'} < a_{r'}).
func IsMaxMinOver(a *netmodel.Allocation, feasible []*netmodel.Allocation) bool {
	ids := a.Network().ReceiverIDs()
	for _, b := range feasible {
		for _, r := range ids {
			ar, br := a.RateOf(r), b.RateOf(r)
			if !netmodel.Greater(br, ar) {
				continue
			}
			// Some receiver with a_{r'} <= a_r must lose.
			compensated := false
			for _, rp := range ids {
				if rp == r {
					continue
				}
				if netmodel.Leq(a.RateOf(rp), ar) && netmodel.Less(b.RateOf(rp), a.RateOf(rp)) {
					compensated = true
					break
				}
			}
			if !compensated {
				return false
			}
		}
	}
	return true
}

// FindMaxMinFixed searches the fixed-layer feasible set for a max-min
// fair allocation. It returns (nil, false, nil) when none exists — the
// situation the paper demonstrates for the Section 3 single-link example.
func FindMaxMinFixed(net *netmodel.Network, schemes []Scheme) (*netmodel.Allocation, bool, error) {
	feasible, err := FixedLayerAllocations(net, schemes)
	if err != nil {
		return nil, false, err
	}
	for _, a := range feasible {
		if IsMaxMinOver(a, feasible) {
			return a, true, nil
		}
	}
	return nil, false, nil
}
