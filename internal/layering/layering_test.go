package layering

import (
	"math"
	"math/rand/v2"
	"testing"

	"mlfair/internal/netmodel"
	"mlfair/internal/redundancy"
	"mlfair/internal/topology"
)

func TestExponentialScheme(t *testing.T) {
	s := Exponential(8)
	if s.NumLayers() != 8 {
		t.Fatalf("NumLayers = %d", s.NumLayers())
	}
	// Cumulative rate of layers 1..i must be 2^(i-1).
	for i := 1; i <= 8; i++ {
		want := math.Exp2(float64(i - 1))
		if got := s.CumulativeRate(i); got != want {
			t.Fatalf("CumulativeRate(%d) = %v, want %v", i, got, want)
		}
	}
	if s.CumulativeRate(0) != 0 {
		t.Fatal("level 0 must be rate 0")
	}
	if s.TotalRate() != 128 {
		t.Fatalf("TotalRate = %v", s.TotalRate())
	}
}

func TestUniformScheme(t *testing.T) {
	s := Uniform(3, 2)
	for l := 0; l < 3; l++ {
		if s.LayerRate(l) != 2 {
			t.Fatalf("LayerRate(%d) = %v", l, s.LayerRate(l))
		}
	}
	levels := s.Levels()
	want := []float64{0, 2, 4, 6}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("Levels = %v", levels)
		}
	}
	// Levels returns a copy.
	levels[0] = 99
	if s.CumulativeRate(0) != 0 {
		t.Fatal("Levels aliased internal state")
	}
}

func TestLevelFor(t *testing.T) {
	s := NewScheme(1, 1, 2) // levels 0,1,2,4
	cases := []struct {
		rate float64
		want int
	}{{0, 0}, {0.5, 0}, {1, 1}, {1.5, 1}, {2, 2}, {3.9, 2}, {4, 3}, {100, 3}}
	for _, c := range cases {
		if got := s.LevelFor(c.rate); got != c.want {
			t.Errorf("LevelFor(%v) = %d, want %d", c.rate, got, c.want)
		}
	}
}

func TestSchemePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":       func() { NewScheme() },
		"zero layer":  func() { NewScheme(1, 0) },
		"exp zero":    func() { Exponential(0) },
		"neg quantum": func() { NewQuantumPlan(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

// TestSection3NoMaxMinExists reproduces the paper's Section 3 example:
// one link of capacity c, S1 with three layers of c/3, S2 with two
// layers of c/2. The feasible fixed-layer set is exactly the seven
// allocations listed in the paper and none of them is max-min fair.
func TestSection3NoMaxMinExists(t *testing.T) {
	const c = 6.0
	net := topology.SingleLink(c).Network
	schemes := []Scheme{Uniform(3, c/3), Uniform(2, c/2)}

	feasible, err := FixedLayerAllocations(net, schemes)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]float64]bool{
		{0, 0}: true, {0, c / 2}: true, {0, c}: true,
		{c / 3, 0}: true, {c / 3, c / 2}: true,
		{2 * c / 3, 0}: true, {c, 0}: true,
	}
	if len(feasible) != len(want) {
		t.Fatalf("got %d feasible allocations, want %d", len(feasible), len(want))
	}
	for _, a := range feasible {
		key := [2]float64{a.Rate(0, 0), a.Rate(1, 0)}
		if !want[key] {
			t.Fatalf("unexpected feasible allocation %v", key)
		}
	}

	// The paper's argument: (c/3, c/2) is not max-min fair because
	// (2c/3, 0) raises r1 without compensating anyone at or below r1.
	var a13 *netmodel.Allocation
	for _, a := range feasible {
		if netmodel.Eq(a.Rate(0, 0), c/3) && netmodel.Eq(a.Rate(1, 0), c/2) {
			a13 = a
		}
	}
	if a13 == nil {
		t.Fatal("(c/3, c/2) not found")
	}
	if IsMaxMinOver(a13, feasible) {
		t.Fatal("(c/3, c/2) should not be max-min fair")
	}

	// And no feasible allocation is.
	if _, ok, err := FindMaxMinFixed(net, schemes); err != nil || ok {
		t.Fatalf("max-min fair fixed-layer allocation should not exist (ok=%v err=%v)", ok, err)
	}
}

// TestFixedMaxMinExistsWhenAligned: when the schemes can express the
// fluid max-min rates, the fixed-layer max-min allocation exists and
// matches.
func TestFixedMaxMinExistsWhenAligned(t *testing.T) {
	const c = 6.0
	net := topology.SingleLink(c).Network
	schemes := []Scheme{Uniform(3, 1), Uniform(3, 1)} // levels 0..3 each
	a, ok, err := FindMaxMinFixed(net, schemes)
	if err != nil || !ok {
		t.Fatalf("expected existence (ok=%v err=%v)", ok, err)
	}
	if !netmodel.Eq(a.Rate(0, 0), 3) || !netmodel.Eq(a.Rate(1, 0), 3) {
		t.Fatalf("fixed max-min = (%v, %v), want (3, 3)", a.Rate(0, 0), a.Rate(1, 0))
	}
}

func TestFixedLayerSchemesLengthChecked(t *testing.T) {
	net := topology.SingleLink(1).Network
	if _, err := FixedLayerAllocations(net, nil); err == nil {
		t.Fatal("scheme length mismatch accepted")
	}
}

func TestQuantumPlanAverageConverges(t *testing.T) {
	for _, target := range []float64{0.25, 1.5, 2.999, 7} {
		p := NewQuantumPlan(target)
		for q := 0; q < 10000; q++ {
			n := p.Next()
			if f := math.Floor(target); float64(n) != f && float64(n) != f+1 {
				t.Fatalf("Next() = %d for target %v", n, target)
			}
		}
		if avg := p.Average(); math.Abs(avg-target) > 1e-3 {
			t.Fatalf("average %v, want %v", avg, target)
		}
	}
	if NewQuantumPlan(1).Average() != 0 {
		t.Fatal("average before quanta should be 0")
	}
}

// TestPrefixStrategyEfficient: coordinated (prefix) joins make the link
// carry exactly the maximum demand — redundancy 1.
func TestPrefixStrategyEfficient(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	res := SimulateQuantumUsage([]float64{0.2, 0.5, 0.8}, 1, Prefix, 100, 500, rng)
	if math.Abs(res.Redundancy-1) > 0.02 {
		t.Fatalf("prefix redundancy = %v, want ~1", res.Redundancy)
	}
	for i, want := range []float64{0.2, 0.5, 0.8} {
		if math.Abs(res.ReceiverRates[i]-want) > 0.02 {
			t.Fatalf("receiver %d rate %v, want %v", i, res.ReceiverRates[i], want)
		}
	}
}

// TestRandomStrategyMatchesAppendixB: uncoordinated joins match the
// closed-form expectation.
func TestRandomStrategyMatchesAppendixB(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 64))
	rates := []float64{0.3, 0.3, 0.3, 0.3}
	res := SimulateQuantumUsage(rates, 1, Random, 200, 400, rng)
	want := redundancy.ExpectedLinkRate(rates, 1)
	if math.Abs(res.LinkRate-want) > 0.03 {
		t.Fatalf("random link rate = %v, closed form %v", res.LinkRate, want)
	}
	if res.Redundancy <= 1.5 {
		t.Fatalf("random redundancy = %v, expected well above 1", res.Redundancy)
	}
}

func TestSimulatePanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for name, f := range map[string]func(){
		"zero quanta": func() { SimulateQuantumUsage([]float64{0.1}, 1, Prefix, 10, 0, rng) },
		"rate > Λ":    func() { SimulateQuantumUsage([]float64{2}, 1, Prefix, 10, 10, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestSchemeString(t *testing.T) {
	if NewScheme(1, 2).String() == "" {
		t.Fatal("empty String()")
	}
}
