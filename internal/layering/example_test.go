package layering_test

import (
	"fmt"

	"mlfair/internal/layering"
)

// ExampleExponential shows the paper's Section 4 scheme: the aggregate
// rate of layers 1..i is 2^(i-1).
func ExampleExponential() {
	s := layering.Exponential(4)
	fmt.Println(s.Levels())
	// Output: [0 1 2 4 8]
}

// ExampleScheme_LevelFor maps a max-min fair rate to a sustainable layer
// subscription.
func ExampleScheme_LevelFor() {
	s := layering.Exponential(8)
	fmt.Println(s.LevelFor(5.3)) // between cumulative 4 (level 3) and 8 (level 4)
	// Output: 3
}
