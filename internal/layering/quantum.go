package layering

import (
	"math"
	"math/rand/v2"
)

// QuantumPlan realizes a fractional long-term average rate on a single
// layer by per-quantum packet counts, using the floor/ceil carry scheme
// of the paper's footnote 7: a receiver with target a·Δt packets per
// quantum takes ⌊a·Δt⌋ most quanta and ⌈a·Δt⌉ periodically, so the
// running average approaches a·Δt from below within one packet.
type QuantumPlan struct {
	target float64 // packets per quantum (a·Δt)
	carry  float64
	taken  int64
	quanta int64
}

// NewQuantumPlan creates a plan for target packets per quantum
// (target >= 0).
func NewQuantumPlan(target float64) *QuantumPlan {
	if target < 0 {
		panic("layering: negative quantum target")
	}
	return &QuantumPlan{target: target}
}

// Next returns the packet count to receive in the next quantum.
func (p *QuantumPlan) Next() int {
	p.carry += p.target
	n := int(math.Floor(p.carry + 1e-12))
	p.carry -= float64(n)
	p.taken += int64(n)
	p.quanta++
	return n
}

// Average returns the running packets-per-quantum average so far
// (0 before any quantum).
func (p *QuantumPlan) Average() float64 {
	if p.quanta == 0 {
		return 0
	}
	return float64(p.taken) / float64(p.quanta)
}

// Strategy selects which packets within a quantum a receiver takes.
type Strategy int

const (
	// Prefix receives the first n packets of the quantum — the paper's
	// coordinated construction ("receiver joins the single layer so that
	// it receives the first a·Δt packets, then leaves"). Receivers with
	// nested counts then consume nested packet sets, so link usage equals
	// the maximum demand: redundancy 1.
	Prefix Strategy = iota
	// Random receives n uniformly random packets of the quantum — the
	// uncoordinated behaviour analyzed in Appendix B.
	Random
)

// UsageResult summarizes a quantum-level usage simulation.
type UsageResult struct {
	// LinkRate is the average per-quantum fraction of layer packets that
	// crossed the shared link, scaled by the layer rate.
	LinkRate float64
	// Redundancy is LinkRate over the largest receiver rate.
	Redundancy float64
	// ReceiverRates are the measured long-run average rates.
	ReceiverRates []float64
}

// SimulateQuantumUsage runs receivers with the given per-quantum packet
// targets (rates, in layer-rate units where the layer carries
// packetsPerQuantum packets per quantum) over a number of quanta,
// measuring shared-link usage under the chosen strategy. It demonstrates
// the coordination result of Section 3: Prefix yields redundancy 1 while
// Random matches the Appendix B expectation.
func SimulateQuantumUsage(rates []float64, layerRate float64, strategy Strategy,
	packetsPerQuantum, quanta int, rng *rand.Rand) UsageResult {
	if packetsPerQuantum <= 0 || quanta <= 0 {
		panic("layering: non-positive simulation size")
	}
	plans := make([]*QuantumPlan, len(rates))
	for i, a := range rates {
		if a < 0 || a > layerRate {
			panic("layering: rate outside [0, layer rate]")
		}
		plans[i] = NewQuantumPlan(a / layerRate * float64(packetsPerQuantum))
	}
	crossed := 0
	picked := make([]bool, packetsPerQuantum)
	perm := make([]int, packetsPerQuantum)
	for q := 0; q < quanta; q++ {
		for i := range picked {
			picked[i] = false
		}
		for _, p := range plans {
			n := p.Next()
			switch strategy {
			case Prefix:
				for i := 0; i < n; i++ {
					picked[i] = true
				}
			case Random:
				for i := range perm {
					perm[i] = i
				}
				for i := 0; i < n; i++ {
					j := i + rng.IntN(packetsPerQuantum-i)
					perm[i], perm[j] = perm[j], perm[i]
					picked[perm[i]] = true
				}
			}
		}
		for _, pk := range picked {
			if pk {
				crossed++
			}
		}
	}
	res := UsageResult{
		LinkRate:      layerRate * float64(crossed) / float64(packetsPerQuantum*quanta),
		ReceiverRates: make([]float64, len(rates)),
	}
	maxAvg := 0.0
	for i, p := range plans {
		avg := p.Average() / float64(packetsPerQuantum) * layerRate
		res.ReceiverRates[i] = avg
		if avg > maxAvg {
			maxAvg = avg
		}
	}
	if maxAvg > 0 {
		res.Redundancy = res.LinkRate / maxAvg
	}
	return res
}
