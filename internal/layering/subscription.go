package layering

import "fmt"

// SubscriptionPlan realizes an arbitrary target rate over a layer scheme
// by the paper's Section 3 construction generalized to multiple layers:
// the receiver stays joined to every layer fully below its target and
// runs a footnote-7 quantum join/leave plan on the first partial layer.
// Over time the average aggregate rate converges to the target (clamped
// to the scheme's total rate).
type SubscriptionPlan struct {
	scheme Scheme
	target float64
	// fullLayers are always joined (indices 0..fullLayers-1).
	fullLayers int
	// partial is the quantum plan on layer fullLayers, nil when the
	// target is exactly a subscription level.
	partial           *QuantumPlan
	packetsPerQuantum int
	quanta            int64
	received          int64
}

// NewSubscriptionPlan plans a receiver's joins for the given target
// rate. packetsPerQuantum scales the quantum resolution of the partial
// layer (packets transmitted on that layer per quantum).
func NewSubscriptionPlan(target float64, scheme Scheme, packetsPerQuantum int) *SubscriptionPlan {
	if target < 0 {
		panic("layering: negative target rate")
	}
	if packetsPerQuantum <= 0 {
		panic("layering: non-positive quantum size")
	}
	if target > scheme.TotalRate() {
		target = scheme.TotalRate()
	}
	p := &SubscriptionPlan{scheme: scheme, target: target, packetsPerQuantum: packetsPerQuantum}
	for p.fullLayers < scheme.NumLayers() &&
		scheme.CumulativeRate(p.fullLayers+1) <= target+1e-12 {
		p.fullLayers++
	}
	rest := target - scheme.CumulativeRate(p.fullLayers)
	if rest > 1e-12 && p.fullLayers < scheme.NumLayers() {
		frac := rest / scheme.LayerRate(p.fullLayers)
		p.partial = NewQuantumPlan(frac * float64(packetsPerQuantum))
	}
	return p
}

// Target returns the (possibly clamped) target rate.
func (p *SubscriptionPlan) Target() float64 { return p.target }

// FullLayers returns how many layers are permanently joined.
func (p *SubscriptionPlan) FullLayers() int { return p.fullLayers }

// PartialLayer returns the index of the quantum-shared layer and whether
// one exists.
func (p *SubscriptionPlan) PartialLayer() (int, bool) {
	if p.partial == nil {
		return 0, false
	}
	return p.fullLayers, true
}

// NextQuantum advances one quantum and returns the packet counts the
// receiver takes per layer this quantum (length NumLayers). Full layers
// contribute their whole quantum share; the partial layer contributes
// its plan's count.
func (p *SubscriptionPlan) NextQuantum() []int {
	counts := make([]int, p.scheme.NumLayers())
	for l := 0; l < p.fullLayers; l++ {
		// A full layer delivers rate·(quantum length) packets; the
		// quantum length is packetsPerQuantum / rate of the partial
		// layer... to keep units uniform we express every layer in its
		// own per-quantum packet budget, scaled by relative rate.
		counts[l] = int(float64(p.packetsPerQuantum) * p.scheme.LayerRate(l) / p.partialLayerRate())
	}
	if p.partial != nil {
		n := p.partial.Next()
		counts[p.fullLayers] = n
		p.received += int64(n)
	}
	for l := 0; l < p.fullLayers; l++ {
		p.received += int64(counts[l])
	}
	p.quanta++
	return counts
}

func (p *SubscriptionPlan) partialLayerRate() float64 {
	if p.fullLayers < p.scheme.NumLayers() {
		return p.scheme.LayerRate(p.fullLayers)
	}
	return p.scheme.LayerRate(p.scheme.NumLayers() - 1)
}

// AverageRate returns the achieved long-run rate so far, in scheme rate
// units.
func (p *SubscriptionPlan) AverageRate() float64 {
	if p.quanta == 0 {
		return 0
	}
	perQuantum := float64(p.received) / float64(p.quanta)
	// packetsPerQuantum packets on the partial layer correspond to its
	// full rate; convert back to rate units.
	return perQuantum / float64(p.packetsPerQuantum) * p.partialLayerRate()
}

// String describes the plan.
func (p *SubscriptionPlan) String() string {
	if p.partial == nil {
		return fmt.Sprintf("subscribe[0..%d)", p.fullLayers)
	}
	return fmt.Sprintf("subscribe[0..%d)+quantum(l%d)", p.fullLayers, p.fullLayers)
}
