// Package dynamics studies max-min fairness under session churn — the
// Section 5 question of how fair allocations behave "in networks like
// the Internet, where a session's fair allocation may vary due to
// startup and/or termination of other sessions", and the Section 2.5
// observation that membership changes move other receivers' fair rates
// in non-obvious directions.
//
// A Timeline is a sequence of events (session joins/leaves, receiver
// removals) over a fixed graph. Replaying it recomputes the max-min
// fair allocation after every event and reports churn metrics: how much
// surviving receivers' rates moved, in which directions, and how the
// minimum rate evolved. The Figure 3 networks show single events moving
// rates both ways; this package quantifies the effect at scale.
package dynamics

import (
	"fmt"
	"math"

	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
)

// EventKind says what changed.
type EventKind int

const (
	// SessionArrival activates a (pre-declared) session.
	SessionArrival EventKind = iota
	// SessionDeparture deactivates a session.
	SessionDeparture
	// ReceiverRemoval removes one receiver from an active session (the
	// Section 2.5 operation); the session must keep >= 1 receiver.
	ReceiverRemoval
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case SessionArrival:
		return "arrival"
	case SessionDeparture:
		return "departure"
	case ReceiverRemoval:
		return "receiver-removal"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one timeline step.
type Event struct {
	Kind EventKind
	// Session indexes the full session population.
	Session int
	// Receiver is the receiver index for ReceiverRemoval.
	Receiver int
}

// Timeline couples a session population (over one graph, with routed
// paths) with an event sequence. Sessions all start inactive; arrivals
// activate them.
type Timeline struct {
	// Population is the full network containing every session that may
	// ever be active.
	Population *netmodel.Network
	Events     []Event
}

// StepReport describes the allocation after one event.
type StepReport struct {
	Event Event
	// ActiveSessions counts sessions active after the event.
	ActiveSessions int
	// MinRate and TotalRate summarize the new allocation (over active
	// receivers).
	MinRate, TotalRate float64
	// Winners / Losers count surviving receivers whose rate rose/fell
	// versus the previous step (receivers present in both).
	Winners, Losers int
	// MaxSwing is the largest absolute per-receiver rate change among
	// survivors.
	MaxSwing float64
}

// Replay runs the timeline, recomputing the max-min fair allocation
// after every event.
func Replay(tl *Timeline) ([]StepReport, error) {
	if tl == nil || tl.Population == nil {
		return nil, fmt.Errorf("dynamics: nil timeline")
	}
	pop := tl.Population
	active := make([]bool, pop.NumSessions())
	// removed[i] marks receiver indices (of the population) removed from
	// session i.
	removed := make([]map[int]bool, pop.NumSessions())
	for i := range removed {
		removed[i] = map[int]bool{}
	}

	prev := map[netmodel.ReceiverID]float64{}
	var out []StepReport
	for _, ev := range tl.Events {
		if ev.Session < 0 || ev.Session >= pop.NumSessions() {
			return nil, fmt.Errorf("dynamics: event session %d out of range", ev.Session)
		}
		switch ev.Kind {
		case SessionArrival:
			if active[ev.Session] {
				return nil, fmt.Errorf("dynamics: session %d already active", ev.Session)
			}
			active[ev.Session] = true
		case SessionDeparture:
			if !active[ev.Session] {
				return nil, fmt.Errorf("dynamics: session %d not active", ev.Session)
			}
			active[ev.Session] = false
			// A departing session's removals are forgotten; a re-arrival
			// starts fresh.
			removed[ev.Session] = map[int]bool{}
		case ReceiverRemoval:
			if !active[ev.Session] {
				return nil, fmt.Errorf("dynamics: removal from inactive session %d", ev.Session)
			}
			if removed[ev.Session][ev.Receiver] {
				return nil, fmt.Errorf("dynamics: receiver %d already removed", ev.Receiver)
			}
			left := pop.Session(ev.Session).NumReceivers() - len(removed[ev.Session])
			if left <= 1 {
				return nil, fmt.Errorf("dynamics: session %d cannot lose its last receiver", ev.Session)
			}
			removed[ev.Session][ev.Receiver] = true
		default:
			return nil, fmt.Errorf("dynamics: unknown event kind %v", ev.Kind)
		}

		net, idmap, err := restrict(pop, active, removed)
		rep := StepReport{Event: ev, ActiveSessions: countTrue(active)}
		cur := map[netmodel.ReceiverID]float64{}
		if err == nil && net != nil {
			res, aerr := maxmin.Allocate(net)
			if aerr != nil {
				return nil, aerr
			}
			rep.MinRate = res.Alloc.MinRate()
			rep.TotalRate = res.Alloc.TotalRate()
			for sub, orig := range idmap {
				cur[orig] = res.Alloc.RateOf(sub)
			}
		} else if err != nil {
			return nil, err
		}
		for id, r := range cur {
			if p, ok := prev[id]; ok {
				d := r - p
				if d > netmodel.Eps {
					rep.Winners++
				} else if d < -netmodel.Eps {
					rep.Losers++
				}
				if a := math.Abs(d); a > rep.MaxSwing {
					rep.MaxSwing = a
				}
			}
		}
		prev = cur
		out = append(out, rep)
	}
	return out, nil
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// restrict builds the active sub-network. idmap maps sub-network
// receiver IDs back to population IDs. Returns (nil, nil, nil) when no
// session is active.
func restrict(pop *netmodel.Network, active []bool, removed []map[int]bool) (*netmodel.Network, map[netmodel.ReceiverID]netmodel.ReceiverID, error) {
	var sessions []*netmodel.Session
	var paths [][][]int
	idmap := map[netmodel.ReceiverID]netmodel.ReceiverID{}
	for i := 0; i < pop.NumSessions(); i++ {
		if !active[i] {
			continue
		}
		src := pop.Session(i)
		c := *src
		c.Receivers = nil
		var ps [][]int
		for k := range src.Receivers {
			if removed[i][k] {
				continue
			}
			idmap[netmodel.ReceiverID{Session: len(sessions), Receiver: len(c.Receivers)}] =
				netmodel.ReceiverID{Session: i, Receiver: k}
			c.Receivers = append(c.Receivers, src.Receivers[k])
			ps = append(ps, pop.Path(i, k))
		}
		sessions = append(sessions, &c)
		paths = append(paths, ps)
	}
	if len(sessions) == 0 {
		return nil, nil, nil
	}
	net, err := netmodel.NewNetwork(pop.Graph(), sessions, paths)
	if err != nil {
		return nil, nil, err
	}
	return net, idmap, nil
}
