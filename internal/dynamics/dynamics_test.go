package dynamics

import (
	"math/rand/v2"
	"testing"

	"mlfair/internal/netmodel"
	"mlfair/internal/topology"
)

// figure3aTimeline rebuilds the Figure 3(a) experiment as a timeline:
// all three sessions arrive, then r3,2 is removed.
func figure3aTimeline() *Timeline {
	return &Timeline{
		Population: topology.Figure3a().Network,
		Events: []Event{
			{Kind: SessionArrival, Session: 0},
			{Kind: SessionArrival, Session: 1},
			{Kind: SessionArrival, Session: 2},
			{Kind: ReceiverRemoval, Session: 2, Receiver: 1},
		},
	}
}

func TestReplayFigure3a(t *testing.T) {
	reps, err := Replay(figure3aTimeline())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 {
		t.Fatalf("got %d reports", len(reps))
	}
	final := reps[3]
	if final.Event.Kind != ReceiverRemoval {
		t.Fatal("wrong final event")
	}
	// Figure 3(a): the removal raises r1,1 (3->5) and r2,1 (2->4) but
	// lowers r3,1 (8->6): two winners, one loser, max swing 2.
	if final.Winners != 2 || final.Losers != 1 {
		t.Fatalf("winners=%d losers=%d, want 2/1", final.Winners, final.Losers)
	}
	if !netmodel.Eq(final.MaxSwing, 2) {
		t.Fatalf("MaxSwing = %v, want 2", final.MaxSwing)
	}
	if !netmodel.Eq(final.MinRate, 4) {
		t.Fatalf("MinRate = %v, want 4", final.MinRate)
	}
	if final.ActiveSessions != 3 {
		t.Fatalf("ActiveSessions = %d", final.ActiveSessions)
	}
}

func TestArrivalsSqueezeIncumbents(t *testing.T) {
	// Two unicast sessions on one link: the second arrival halves the
	// first's rate.
	b := netmodel.NewBuilder()
	l := b.AddLink(10)
	s1 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	s2 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	b.SetPath(s1, 0, l)
	b.SetPath(s2, 0, l)
	tl := &Timeline{
		Population: b.MustBuild(),
		Events: []Event{
			{Kind: SessionArrival, Session: 0},
			{Kind: SessionArrival, Session: 1},
			{Kind: SessionDeparture, Session: 1},
		},
	}
	reps, err := Replay(tl)
	if err != nil {
		t.Fatal(err)
	}
	if !netmodel.Eq(reps[0].MinRate, 10) {
		t.Fatalf("solo rate = %v", reps[0].MinRate)
	}
	if reps[1].Losers != 1 || !netmodel.Eq(reps[1].MinRate, 5) {
		t.Fatalf("arrival: %+v", reps[1])
	}
	if reps[2].Winners != 1 || !netmodel.Eq(reps[2].MinRate, 10) {
		t.Fatalf("departure: %+v", reps[2])
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := Replay(nil); err == nil {
		t.Fatal("nil timeline accepted")
	}
	pop := topology.Figure3a().Network
	cases := [][]Event{
		{{Kind: SessionArrival, Session: 99}},
		{{Kind: SessionDeparture, Session: 0}},                                                 // not active
		{{Kind: SessionArrival, Session: 0}, {Kind: SessionArrival, Session: 0}},               // double arrival
		{{Kind: ReceiverRemoval, Session: 0}},                                                  // removal from inactive
		{{Kind: SessionArrival, Session: 0}, {Kind: ReceiverRemoval, Session: 0, Receiver: 0}}, // last receiver
		{{Kind: SessionArrival, Session: 2}, {Kind: ReceiverRemoval, Session: 2, Receiver: 1},
			{Kind: ReceiverRemoval, Session: 2, Receiver: 1}}, // double removal
		{{Kind: EventKind(9), Session: 0}},
	}
	for i, evs := range cases {
		if _, err := Replay(&Timeline{Population: pop, Events: evs}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDepartureResetsRemovals(t *testing.T) {
	pop := topology.Figure3a().Network
	tl := &Timeline{
		Population: pop,
		Events: []Event{
			{Kind: SessionArrival, Session: 2},
			{Kind: ReceiverRemoval, Session: 2, Receiver: 1},
			{Kind: SessionDeparture, Session: 2},
			{Kind: SessionArrival, Session: 2},
			// Fresh arrival restored both receivers: removal legal again.
			{Kind: ReceiverRemoval, Session: 2, Receiver: 1},
		},
	}
	if _, err := Replay(tl); err != nil {
		t.Fatal(err)
	}
}

// TestChurnStressRandom: long random timelines over a random population
// replay without error and keep allocations feasible at every step.
func TestChurnStressRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(301, 302))
	opts := topology.DefaultRandomOptions()
	opts.Sessions = 6
	pop := topology.RandomNetwork(rng, opts)

	active := make([]bool, pop.NumSessions())
	removedCount := make([]int, pop.NumSessions())
	var events []Event
	for step := 0; step < 60; step++ {
		i := rng.IntN(pop.NumSessions())
		switch {
		case !active[i]:
			events = append(events, Event{Kind: SessionArrival, Session: i})
			active[i] = true
			removedCount[i] = 0
		case rng.IntN(3) == 0:
			events = append(events, Event{Kind: SessionDeparture, Session: i})
			active[i] = false
		case pop.Session(i).NumReceivers()-removedCount[i] > 1:
			events = append(events, Event{
				Kind: ReceiverRemoval, Session: i,
				Receiver: pop.Session(i).NumReceivers() - 1 - removedCount[i],
			})
			removedCount[i]++
		default:
			events = append(events, Event{Kind: SessionDeparture, Session: i})
			active[i] = false
		}
	}
	reps, err := Replay(&Timeline{Population: pop, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(events) {
		t.Fatalf("reports %d for %d events", len(reps), len(events))
	}
	for _, r := range reps {
		if r.MinRate < 0 || r.TotalRate < 0 {
			t.Fatalf("negative rates in %+v", r)
		}
	}
}

func TestEventKindString(t *testing.T) {
	if SessionArrival.String() != "arrival" || SessionDeparture.String() != "departure" ||
		ReceiverRemoval.String() != "receiver-removal" {
		t.Fatal("kind strings wrong")
	}
	if EventKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}
