package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// sweepBase is a small star spec suitable as a sweep template.
func sweepBase() Spec {
	return Spec{
		Topology:     TopologySpec{Kind: "star", Receivers: 5},
		Sessions:     []SessionSpec{{Protocol: "deterministic", Layers: 6}},
		DefaultLink:  &LinkSpec{Kind: "bernoulli", Loss: 0.02},
		Links:        []LinkOverride{{Link: 0, LinkSpec: LinkSpec{Kind: "bernoulli", Loss: 0.0001}}},
		Packets:      3000,
		Seed:         77,
		Replications: ReplicationSpec{N: 3, Workers: 2},
	}
}

func TestSweepValidateRejects(t *testing.T) {
	base := sweepBase()
	cases := []struct {
		name string
		mut  func(*Sweep)
	}{
		{"no axes", func(sw *Sweep) { sw.Axes = nil }},
		{"empty grid", func(sw *Sweep) { sw.Axes = []Axis{{Field: "packets", Values: []any{}}} }},
		{"no value source", func(sw *Sweep) { sw.Axes = []Axis{{Field: "packets"}} }},
		{"two value sources", func(sw *Sweep) {
			sw.Axes = []Axis{{Field: "packets", Values: []any{1000.0}, Range: &RangeSpec{From: 1, To: 2, Step: 1}}}
		}},
		{"bad field name", func(sw *Sweep) { sw.Axes = []Axis{{Field: "topology.warp", Values: []any{1.0}}} }},
		{"bad top-level field", func(sw *Sweep) { sw.Axes = []Axis{{Field: "wormholes", Values: []any{1.0}}} }},
		{"conflicting axes", func(sw *Sweep) {
			sw.Axes = []Axis{
				{Field: "defaultLink.loss", Values: []any{0.01}},
				{Field: "defaultLink.loss", Values: []any{0.02}},
			}
		}},
		{"conflicting sessions axes", func(sw *Sweep) {
			sw.Axes = []Axis{
				{Field: "sessions.layers", Values: []any{4.0}},
				{Field: "sessions[0].layers", Values: []any{6.0}},
			}
		}},
		{"duplicate axis values", func(sw *Sweep) { sw.Axes = []Axis{{Field: "defaultLink.loss", Values: []any{0.01, 0.01}}} }},
		{"string for numeric field", func(sw *Sweep) { sw.Axes = []Axis{{Field: "packets", Values: []any{"many"}}} }},
		{"fraction for integer field", func(sw *Sweep) { sw.Axes = []Axis{{Field: "topology.receivers", Values: []any{2.5}}} }},
		{"number for string field", func(sw *Sweep) { sw.Axes = []Axis{{Field: "sessions.protocol", Values: []any{3.0}}} }},
		{"defaultLink axis without base model", func(sw *Sweep) {
			sw.Base.DefaultLink = nil
			sw.Axes = []Axis{{Field: "defaultLink.loss", Values: []any{0.01}}}
		}},
		{"links axis without base override", func(sw *Sweep) {
			sw.Axes = []Axis{{Field: "links[3].loss", Values: []any{0.01}}}
		}},
		{"malformed links axis", func(sw *Sweep) { sw.Axes = []Axis{{Field: "links[x].loss", Values: []any{0.01}}} }},
		{"session slot out of range", func(sw *Sweep) { sw.Axes = []Axis{{Field: "sessions[4].layers", Values: []any{4.0}}} }},
		{"bad range step", func(sw *Sweep) {
			sw.Axes = []Axis{{Field: "defaultLink.loss", Range: &RangeSpec{From: 0, To: 1, Step: 0}}}
		}},
		{"inverted range", func(sw *Sweep) {
			sw.Axes = []Axis{{Field: "defaultLink.loss", Range: &RangeSpec{From: 1, To: 0, Step: 0.1}}}
		}},
		{"bad logRange", func(sw *Sweep) {
			sw.Axes = []Axis{{Field: "defaultLink.loss", LogRange: &LogRangeSpec{From: 0, To: 1, Points: 3}}}
		}},
		{"one-point logRange", func(sw *Sweep) {
			sw.Axes = []Axis{{Field: "defaultLink.loss", LogRange: &LogRangeSpec{From: 0.1, To: 1, Points: 1}}}
		}},
		{"unknown output", func(sw *Sweep) { sw.Outputs = []string{"latency"} }},
		{"duplicate output", func(sw *Sweep) { sw.Outputs = []string{"goodput", "goodput"} }},
		{"analytic base", func(sw *Sweep) { sw.Base.Replications.N = 0 }},
		{"invalid base", func(sw *Sweep) { sw.Base.Packets = 0 }},
		{"grid explosion", func(sw *Sweep) {
			// 2100^2 points exceeds the 1<<22 overflow guard (the old
			// 4096 cap is gone: points expand lazily, so merely large
			// grids are legal).
			sw.Axes = []Axis{
				{Field: "packets", Range: &RangeSpec{From: 1, To: 2100, Step: 1}},
				{Field: "seed", Range: &RangeSpec{From: 1, To: 2100, Step: 1}},
			}
		}},
		{"axis value breaking point validation", func(sw *Sweep) {
			sw.Axes = []Axis{{Field: "sessions.protocol", Values: []any{"tcp"}}}
		}},
	}
	for _, c := range cases {
		sw := &Sweep{Base: base, Axes: []Axis{{Field: "defaultLink.loss", Values: []any{0.01, 0.02}}}}
		c.mut(sw)
		if _, err := sw.Expand(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Distinct indexed session slots do NOT conflict: a per-slot
	// cross-product is a legitimate sweep.
	twoSlots := sweepBase()
	twoSlots.Topology = TopologySpec{Kind: "mesh", Sessions: 2, Receivers: 2}
	twoSlots.Sessions = []SessionSpec{{Protocol: "deterministic"}, {Protocol: "deterministic"}}
	sw := &Sweep{Base: twoSlots, Axes: []Axis{
		{Field: "sessions[0].layers", Values: []any{4.0, 6.0}},
		{Field: "sessions[1].layers", Values: []any{4.0, 8.0}},
	}}
	pts, err := sw.Expand()
	if err != nil {
		t.Fatalf("per-slot axes rejected: %v", err)
	}
	if len(pts) != 4 {
		t.Fatalf("per-slot cross product expanded to %d points", len(pts))
	}
	if pts[1].Spec.Sessions[0].Layers != 4 || pts[1].Spec.Sessions[1].Layers != 8 {
		t.Fatalf("per-slot overrides misapplied: %+v", pts[1].Spec.Sessions)
	}
}

func TestSweepExpand(t *testing.T) {
	sw := &Sweep{
		Base: sweepBase(),
		Axes: []Axis{
			{Field: "sessions.protocol", Values: []any{"Coordinated", "Deterministic"}},
			{Field: "defaultLink.loss", Range: &RangeSpec{From: 0.01, To: 0.03, Step: 0.01}},
		},
	}
	pts, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("expanded %d points, want 6", len(pts))
	}
	// Row-major: first axis slowest.
	wantCoords := [][]string{
		{"Coordinated", "0.01"}, {"Coordinated", "0.02"}, {"Coordinated", "0.03"},
		{"Deterministic", "0.01"}, {"Deterministic", "0.02"}, {"Deterministic", "0.03"},
	}
	for i, p := range pts {
		if p.ID != i {
			t.Fatalf("point %d has id %d", i, p.ID)
		}
		if strings.Join(p.Coords, "|") != strings.Join(wantCoords[i], "|") {
			t.Fatalf("point %d coords %v, want %v", i, p.Coords, wantCoords[i])
		}
		if p.Spec.Sessions[0].Protocol != wantCoords[i][0] {
			t.Fatalf("point %d protocol %q", i, p.Spec.Sessions[0].Protocol)
		}
		if got := p.Spec.DefaultLink.Loss; formatAxisValue(got) != wantCoords[i][1] {
			t.Fatalf("point %d loss %v", i, got)
		}
		// The base must not be aliased.
		if p.Spec == &sw.Base {
			t.Fatal("point spec aliases the base")
		}
	}
	if sw.Base.DefaultLink.Loss != 0.02 || sw.Base.Sessions[0].Protocol != "deterministic" {
		t.Fatalf("expansion mutated the base: %+v", sw.Base)
	}
}

func TestSweepFieldSetters(t *testing.T) {
	s := sweepBase()
	for field, v := range map[string]any{
		"packets":             6000.0,
		"seed":                99.0,
		"leaveLatency":        2.0,
		"signalPeriod":        0.5,
		"replications.n":      5.0,
		"topology.receivers":  9.0,
		"topology.seed":       4.0,
		"churn.interval":      3.0,
		"churn.downtime":      1.0,
		"churn.horizon":       30.0,
		"defaultLink.loss":    0.5,
		"defaultLink.buffer":  8.0,
		"links[0].loss":       0.25,
		"sessions[0].layers":  4.0,
		"sessions.maxRate":    7.0,
		"sessions.type":       "single",
		"sessions.redundancy": 1.5,
	} {
		if err := setSpecField(&s, field, v); err != nil {
			t.Fatalf("%s: %v", field, err)
		}
	}
	if s.Packets != 6000 || s.Seed != 99 || s.LeaveLatency != 2 || s.Replications.N != 5 {
		t.Fatalf("scalar fields not applied: %+v", s)
	}
	if s.Topology.Receivers != 9 || s.Topology.Seed != 4 {
		t.Fatalf("topology fields not applied: %+v", s.Topology)
	}
	if s.Churn == nil || s.Churn.Interval != 3 || s.Churn.Downtime != 1 || s.Churn.Horizon != 30 {
		t.Fatalf("churn fields not applied: %+v", s.Churn)
	}
	if s.DefaultLink.Loss != 0.5 || s.DefaultLink.Buffer != 8 || s.Links[0].Loss != 0.25 {
		t.Fatalf("link fields not applied: %+v %+v", s.DefaultLink, s.Links)
	}
	ss := s.Sessions[0]
	if ss.Layers != 4 || ss.MaxRate != 7 || ss.Type != "single" || ss.Redundancy != 1.5 {
		t.Fatalf("session fields not applied: %+v", ss)
	}
	// "sessions.X" materializes a slot when the base has none.
	empty := sweepBase()
	empty.Sessions = nil
	if err := setSpecField(&empty, "sessions.protocol", "Coordinated"); err != nil {
		t.Fatal(err)
	}
	if len(empty.Sessions) != 1 || empty.Sessions[0].Protocol != "Coordinated" {
		t.Fatalf("sessions slot not materialized: %+v", empty.Sessions)
	}
}

// TestSweepTopologyCache: points varying only non-topology fields
// share one built network; points varying topology inputs do not.
func TestSweepTopologyCache(t *testing.T) {
	base := sweepBase()
	base.Topology = TopologySpec{Kind: "scalefree", Nodes: 30, Sessions: 3}
	sw := &Sweep{Base: base, Axes: []Axis{{Field: "defaultLink.loss", Values: []any{0.01, 0.02, 0.03}}}}
	_, compiled, err := sw.CompilePoints()
	if err != nil {
		t.Fatal(err)
	}
	if compiled[0].Net != compiled[1].Net || compiled[1].Net != compiled[2].Net {
		t.Fatal("points with identical topology inputs did not share the built network")
	}
	sw2 := &Sweep{Base: base, Axes: []Axis{{Field: "topology.nodes", Values: []any{30.0, 40.0}}}}
	_, compiled2, err := sw2.CompilePoints()
	if err != nil {
		t.Fatal(err)
	}
	if compiled2[0].Net == compiled2[1].Net {
		t.Fatal("points with different topology inputs shared a network")
	}
	if compiled2[0].Net.Graph().NumNodes() == compiled2[1].Net.Graph().NumNodes() {
		t.Fatal("topology axis had no effect")
	}
}

// TestRunSweepDeterminism: the whole sweep — CSV and JSON bytes — is
// invariant under the worker budget, the scheduler's point/replication
// split, and repeated runs.
func TestRunSweepDeterminism(t *testing.T) {
	build := func(workers int) *Sweep {
		base := sweepBase()
		base.Replications.Workers = workers
		return &Sweep{
			Base: base,
			Axes: []Axis{
				{Field: "sessions.protocol", Values: []any{"Coordinated", "Deterministic"}},
				{Field: "defaultLink.loss", Values: []any{0.01, 0.05}},
			},
			Outputs:   []string{"goodput", "shared_redundancy", "best_rate"},
			Benchmark: true,
		}
	}
	render := func(workers int) string {
		res, err := RunSweep(build(workers))
		if err != nil {
			t.Fatal(err)
		}
		var csv, js bytes.Buffer
		if err := res.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return csv.String() + js.String()
	}
	want := render(1)
	for _, workers := range []int{2, 4, 7} {
		if got := render(workers); got != want {
			t.Fatalf("sweep output differs between 1 and %d workers:\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, want)
		}
	}
	if got := render(1); got != want {
		t.Fatal("repeated run not deterministic")
	}
}

// TestRunSweepAgainstScenarioRun: a sweep point's cell reproduces a
// direct scenario.Run of the same spec bit for bit — the sweep layer
// adds scheduling, never different numbers.
func TestRunSweepAgainstScenarioRun(t *testing.T) {
	sw := &Sweep{
		Base:    sweepBase(),
		Axes:    []Axis{{Field: "defaultLink.loss", Values: []any{0.01, 0.04}}},
		Outputs: []string{"goodput", "root_redundancy"},
	}
	res, err := RunSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	for i, loss := range []float64{0.01, 0.04} {
		spec := sweepBase()
		spec.DefaultLink.Loss = loss
		direct, err := Run(&spec)
		if err != nil {
			t.Fatal(err)
		}
		cell, err := res.Cell(i, "goodput")
		if err != nil {
			t.Fatal(err)
		}
		if cell.Mean != direct.Goodput.Mean || cell.CI95() != direct.Goodput.CI95 {
			t.Fatalf("point %d goodput %v±%v, direct run %v±%v",
				i, cell.Mean, cell.CI95(), direct.Goodput.Mean, direct.Goodput.CI95)
		}
		red, err := res.Cell(i, "root_redundancy")
		if err != nil {
			t.Fatal(err)
		}
		if red.Mean != direct.RootRedundancy.Mean {
			t.Fatalf("point %d redundancy %v, direct %v", i, red.Mean, direct.RootRedundancy.Mean)
		}
	}
}

// TestSweepBenchmarkStage: the compare columns join per point and the
// fairness gap lands in a sane band on a capacity star.
func TestSweepBenchmarkStage(t *testing.T) {
	base := Spec{
		Topology:     TopologySpec{Kind: "star", SharedCapacity: 12, FanoutCapacities: []float64{2, 8, 32}},
		Sessions:     []SessionSpec{{Protocol: "Coordinated", Layers: 8}},
		DefaultLink:  &LinkSpec{Kind: "capacity"},
		Packets:      20000,
		Seed:         7,
		Replications: ReplicationSpec{N: 2, Workers: 2},
	}
	sw := &Sweep{
		Base:      base,
		Axes:      []Axis{{Field: "topology.sharedCapacity", Values: []any{12.0, 24.0}}},
		Outputs:   []string{"goodput", "best_rate"},
		Benchmark: true,
	}
	res, err := RunSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bench == nil {
		t.Fatal("benchmark store missing")
	}
	var b bytes.Buffer
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows:\n%s", b.String())
	}
	if !strings.HasSuffix(lines[0], ",fair_rate,fair_min,gap_mean,gap_min") {
		t.Fatalf("missing benchmark columns: %s", lines[0])
	}
	for _, id := range []int{0, 1} {
		fr, err := res.Bench.Cell(id, "fair_rate")
		if err != nil {
			t.Fatal(err)
		}
		if fr.Mean <= 0 {
			t.Fatalf("point %d fair_rate %v", id, fr.Mean)
		}
		gap, err := res.Bench.Cell(id, "gap_mean")
		if err != nil {
			t.Fatal(err)
		}
		if gap.Mean <= 0 || gap.Mean > 1.5 {
			t.Fatalf("point %d gap_mean %v outside (0, 1.5]", id, gap.Mean)
		}
	}
	// The two points' fair rates differ: the topology axis reached the
	// benchmark side too.
	a, _ := res.Bench.Cell(0, "fair_rate")
	c, _ := res.Bench.Cell(1, "fair_rate")
	if a.Mean == c.Mean {
		t.Fatal("sharedCapacity axis did not move the benchmark allocation")
	}
}

// TestSweepRoundTrip: decode → validate → encode is byte-stable for a
// canonical sweep document.
func TestSweepRoundTrip(t *testing.T) {
	sw := &Sweep{
		Name: "round trip",
		Base: sweepBase(),
		Axes: []Axis{
			{Field: "defaultLink.loss", Values: []any{0.0, 0.01, 0.02}},
			{Field: "sessions.protocol", Values: []any{"Coordinated", "Uncoordinated"}},
		},
		Outputs:   []string{"goodput"},
		Benchmark: true,
	}
	var a bytes.Buffer
	if err := sw.Encode(&a); err != nil {
		t.Fatal(err)
	}
	sw2, err := DecodeSweep(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := sw2.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("sweep round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", a.String(), b.String())
	}
	// Unknown fields rejected.
	if _, err := DecodeSweep(strings.NewReader(`{"base": {}, "axes": [], "warp": 9}`)); err == nil {
		t.Fatal("unknown sweep field accepted")
	}
}

func TestAxisLogRange(t *testing.T) {
	ax := Axis{Field: "defaultLink.loss", LogRange: &LogRangeSpec{From: 0.001, To: 0.1, Points: 3}}
	vals, err := ax.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 {
		t.Fatalf("%d values", len(vals))
	}
	if vals[0].(float64) != 0.001 || vals[2].(float64) != 0.1 {
		t.Fatalf("endpoints %v", vals)
	}
	mid := vals[1].(float64)
	if mid < 0.0099 || mid > 0.0101 {
		t.Fatalf("geometric midpoint %v, want ~0.01", mid)
	}
}
