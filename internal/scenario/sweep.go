package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
	"strconv"
	"strings"

	"mlfair/internal/netsim"
)

// Sweep declares a whole parameter study: a base Spec plus axes that
// vary overridable fields over a grid. The cartesian product of the
// axes expands into one compiled scenario per point (sharing generated
// topologies between points whose topology inputs agree), and RunSweep
// executes the points through a parallel point×replication scheduler
// that streams per-replication metric rows into a results.Store —
// every figure of the paper is one of these.
type Sweep struct {
	// Name titles reports; empty synthesizes one from the base.
	Name string `json:"name,omitempty"`
	// Base is the template Spec every point starts from. It must be a
	// valid simulating spec on its own (replications.n >= 1).
	Base Spec `json:"base"`
	// Axes are the swept dimensions, first axis slowest (row-major
	// expansion order). Two axes must not address the same field.
	Axes []Axis `json:"axes"`
	// Outputs selects the per-replication metric columns (see
	// SweepOutputs). Empty means ["goodput", "root_redundancy"].
	Outputs []string `json:"outputs,omitempty"`
	// Benchmark adds the per-point analytic stage: the max-min fair
	// benchmark allocation of each point's compiled network, reported as
	// fair_rate/fair_min columns plus gap_mean/gap_min fairness-gap
	// indices (simulated mean rate / fair rate, per receiver) joined
	// onto the CSV — the sweep-level "compare against the paper's fair
	// allocation" stage.
	Benchmark bool `json:"benchmark,omitempty"`
}

// Axis is one swept dimension: a field path and its value set, given
// either explicitly (values), as a linear range (from/to/step,
// inclusive), or as a geometric log-range (from/to/points).
//
// Field paths: "packets", "seed", "signalPeriod", "leaveLatency",
// "topology.<field>", "churn.<interval|downtime|horizon>",
// "defaultLink.<loss|capacity|background|buffer|delay>",
// "links[J].<same>" (J must be an override link index present in the
// base), "sessions.<protocol|type|layers|maxRate|redundancy>" (every
// slot) or "sessions[I].<same>" (slot I of the base).
type Axis struct {
	Field    string        `json:"field"`
	Values   []any         `json:"values,omitempty"`
	Range    *RangeSpec    `json:"range,omitempty"`
	LogRange *LogRangeSpec `json:"logRange,omitempty"`
}

// RangeSpec is an inclusive linear range from From to To in steps of
// Step (> 0).
type RangeSpec struct {
	From float64 `json:"from"`
	To   float64 `json:"to"`
	Step float64 `json:"step"`
}

// LogRangeSpec is a geometric range: Points values from From to To
// (both > 0) with a constant ratio.
type LogRangeSpec struct {
	From   float64 `json:"from"`
	To     float64 `json:"to"`
	Points int     `json:"points"`
}

// maxSweepPoints caps a sweep's expansion. The point scheduler streams
// points (internal/sweepexec materializes one point at a time), so the
// historical 4096-point cap is gone; what remains is an overflow guard
// that makes a typo'd grid — billions of points from a fat-fingered
// range step — fail fast at validation instead of scheduling a sweep
// that could never finish.
const maxSweepPoints = 1 << 22

// SweepOutputs lists the per-replication metric columns a sweep can
// select, in the order they appear in docs/SWEEPS.md.
//
//	goodput             mean receiver goodput over all receivers
//	root_redundancy     mean per-session root-link redundancy
//	max_link_redundancy max Definition-3 redundancy over (link, session)
//	best_rate           fastest receiver's goodput
//	shared_redundancy   session 0's Definition-3 redundancy on link 0
//	                    (the shared link of the star topologies)
//	time_to_fair        mean time until the windowed rate stays within
//	                    ε of the epoch max-min fair rate (probe needed)
//	frac_time_fair      duration-weighted fraction of the run inside
//	                    the ε band (probe needed)
//	oscillation         post-convergence peak-to-peak rate amplitude
//	                    over the fair rate (probe needed)
func SweepOutputs() []string {
	return append([]string{"goodput", "root_redundancy", "max_link_redundancy", "best_rate", "shared_redundancy"},
		convergenceOutputs...)
}

// convergenceOutputs are the sweep columns computed from the probe's
// time series against the epoch-incremental fair-rate timeline rather
// than from the end-of-run Result; they require base.probe.
var convergenceOutputs = []string{"time_to_fair", "frac_time_fair", "oscillation"}

func isConvergenceOutput(name string) bool {
	return slices.Contains(convergenceOutputs, name)
}

// hasConvergenceOutput reports whether any selected output needs the
// probe + timeline machinery.
func (sw *Sweep) hasConvergenceOutput() bool {
	for _, o := range sw.outputSet() {
		if isConvergenceOutput(o) {
			return true
		}
	}
	return false
}

// DefaultSweepOutputs is the selection used when Sweep.Outputs is
// empty.
var DefaultSweepOutputs = []string{"goodput", "root_redundancy"}

var sweepMetrics = map[string]func(*netsim.Result) float64{
	"goodput": netsim.MeanReceiverRateMetric(),
	"root_redundancy": func(r *netsim.Result) float64 {
		if len(r.ReceiverRates) == 0 {
			return 0
		}
		sum := 0.0
		for i := range r.ReceiverRates {
			sum += r.SessionRedundancy(i)
		}
		return sum / float64(len(r.ReceiverRates))
	},
	"max_link_redundancy": func(r *netsim.Result) float64 {
		m := 0.0
		for _, ls := range r.Links {
			if ls.Redundancy > m {
				m = ls.Redundancy
			}
		}
		return m
	},
	"best_rate":         func(r *netsim.Result) float64 { return r.MaxReceiverRate() },
	"shared_redundancy": func(r *netsim.Result) float64 { return r.LinkRedundancy(0, 0) },
}

// outputSet resolves the effective output selection.
func (sw *Sweep) outputSet() []string {
	if len(sw.Outputs) == 0 {
		return append([]string(nil), DefaultSweepOutputs...)
	}
	return append([]string(nil), sw.Outputs...)
}

// OutputColumns returns the effective per-replication metric columns
// (the explicit Outputs, or DefaultSweepOutputs).
func (sw *Sweep) OutputColumns() []string { return sw.outputSet() }

// AxisFields returns the swept field paths — the result stores'
// coordinate axes — in axis order.
func (sw *Sweep) AxisFields() []string {
	fields := make([]string, len(sw.Axes))
	for i, a := range sw.Axes {
		fields[i] = a.Field
	}
	return fields
}

// Title resolves the sweep's report title.
func (sw *Sweep) Title() string {
	if sw.Name != "" {
		return sw.Name
	}
	fields := make([]string, len(sw.Axes))
	for i, a := range sw.Axes {
		fields[i] = a.Field
	}
	return fmt.Sprintf("sweep over %s (%s topology)", strings.Join(fields, " × "), sw.Base.Topology.Kind)
}

// Validate checks the sweep's shape: a valid simulating base, at least
// one well-formed axis, no two axes addressing the same field, every
// axis value applicable to the base, known outputs, and a bounded
// point count.
func (sw *Sweep) Validate() error {
	if err := sw.Base.Validate(); err != nil {
		return fmt.Errorf("scenario: sweep base: %w", err)
	}
	if sw.Base.Replications.N < 1 {
		return fmt.Errorf("scenario: sweep base must simulate (replications.n >= 1)")
	}
	if len(sw.Axes) == 0 {
		return fmt.Errorf("scenario: sweep has no axes")
	}
	total := 1
	for i, ax := range sw.Axes {
		vals, err := ax.expand()
		if err != nil {
			return fmt.Errorf("scenario: axis %d (%s): %w", i, ax.Field, err)
		}
		for j := 0; j < i; j++ {
			if axesConflict(sw.Axes[j].Field, ax.Field) {
				return fmt.Errorf("scenario: axes %q and %q conflict: they override overlapping fields", sw.Axes[j].Field, ax.Field)
			}
		}
		// Probe-apply every value to a scratch copy of the base, so bad
		// field paths and value types surface at validation time.
		probe, err := cloneSpec(&sw.Base)
		if err != nil {
			return err
		}
		for _, v := range vals {
			if err := setSpecField(probe, ax.Field, v); err != nil {
				return err
			}
		}
		total *= len(vals)
		if total > maxSweepPoints {
			return fmt.Errorf("scenario: sweep expands to more than %d points", maxSweepPoints)
		}
	}
	for i, o := range sw.outputSet() {
		if _, ok := sweepMetrics[o]; !ok && !isConvergenceOutput(o) {
			return fmt.Errorf("scenario: unknown sweep output %q (have %s)", o, strings.Join(SweepOutputs(), ", "))
		}
		for j, p := range sw.outputSet() {
			if j < i && p == o {
				return fmt.Errorf("scenario: duplicate sweep output %q", o)
			}
		}
	}
	if sw.hasConvergenceOutput() && sw.Base.Probe == nil {
		return fmt.Errorf("scenario: the %s outputs need base.probe to be set", strings.Join(convergenceOutputs, "/"))
	}
	return nil
}

// axesConflict reports whether two axis field paths address
// overlapping state: the same path, or the every-slot "sessions.X"
// form against any "sessions[I].X" of the same suffix. Two different
// indexed slots ("sessions[0].layers" vs "sessions[1].layers") do not
// conflict.
func axesConflict(a, b string) bool {
	if a == b {
		return true
	}
	na, nb := normalizeFieldKey(a), normalizeFieldKey(b)
	if na != nb {
		return false
	}
	return a == na || b == na // one side is the every-slot wildcard
}

// normalizeFieldKey strips a sessions[I] index down to the every-slot
// form ("sessions[2].layers" → "sessions.layers").
func normalizeFieldKey(field string) string {
	if i := strings.IndexByte(field, '['); i >= 0 {
		if j := strings.IndexByte(field, ']'); j > i && field[:i] == "sessions" {
			return "sessions" + field[j+1:]
		}
	}
	return field
}

// expand materializes an axis's value list.
func (a *Axis) expand() ([]any, error) {
	sources := 0
	if a.Values != nil {
		sources++
	}
	if a.Range != nil {
		sources++
	}
	if a.LogRange != nil {
		sources++
	}
	if sources != 1 {
		return nil, fmt.Errorf("need exactly one of values, range, logRange")
	}
	switch {
	case a.Values != nil:
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("empty value list")
		}
		seen := map[string]bool{}
		for _, v := range a.Values {
			c := formatAxisValue(v)
			if seen[c] {
				return nil, fmt.Errorf("duplicate value %s", c)
			}
			seen[c] = true
		}
		return a.Values, nil
	case a.Range != nil:
		r := a.Range
		if r.Step <= 0 || math.IsNaN(r.Step) || math.IsInf(r.Step, 0) {
			return nil, fmt.Errorf("range step %v", r.Step)
		}
		if r.To < r.From || math.IsNaN(r.From) || math.IsInf(r.To, 0) {
			return nil, fmt.Errorf("range [%v, %v]", r.From, r.To)
		}
		var out []any
		// The epsilon keeps To itself in the grid despite float
		// accumulation (0 + 11×0.01 overshooting 0.1 by one ulp).
		for i := 0; ; i++ {
			v := r.From + float64(i)*r.Step
			if v > r.To+r.Step*1e-9 {
				break
			}
			out = append(out, v)
			if len(out) > maxSweepPoints {
				return nil, fmt.Errorf("range expands past %d values", maxSweepPoints)
			}
		}
		return out, nil
	default:
		lr := a.LogRange
		if lr.From <= 0 || lr.To < lr.From || math.IsNaN(lr.From) || math.IsInf(lr.To, 0) {
			return nil, fmt.Errorf("logRange [%v, %v]", lr.From, lr.To)
		}
		if lr.Points < 2 || lr.Points > maxSweepPoints {
			return nil, fmt.Errorf("logRange points %d", lr.Points)
		}
		out := make([]any, lr.Points)
		ratio := lr.To / lr.From
		for i := 0; i < lr.Points; i++ {
			out[i] = lr.From * math.Pow(ratio, float64(i)/float64(lr.Points-1))
		}
		out[lr.Points-1] = lr.To // exact endpoint regardless of rounding
		return out, nil
	}
}

// Point is one expanded sweep point: its row id (expansion order), its
// coordinate values (one per axis, formatted), and its fully resolved
// Spec.
type Point struct {
	ID     int
	Coords []string
	Spec   *Spec
}

// Expander streams a validated sweep's points without materializing
// the cartesian product: PointAt resolves any single point by id, so a
// scheduler can walk a grid far larger than memory would allow for the
// full []Point slice. The expansion order (and therefore every point
// id) is identical to Expand's: first axis slowest, last axis fastest.
type Expander struct {
	sw   *Sweep
	vals [][]any
}

// Expander validates the sweep and prepares lazy point expansion.
func (sw *Sweep) Expander() (*Expander, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	vals := make([][]any, len(sw.Axes))
	for i, ax := range sw.Axes {
		v, err := ax.expand()
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return &Expander{sw: sw, vals: vals}, nil
}

// Len returns the sweep's total point count.
func (e *Expander) Len() int {
	total := 1
	for _, v := range e.vals {
		total *= len(v)
	}
	return total
}

// Sweep returns the expanded sweep.
func (e *Expander) Sweep() *Sweep { return e.sw }

// RepsAt returns point id's replication count without materializing
// its spec: the replications.n axis value when that field is swept,
// the base count otherwise. Invalid axis values are left for PointAt
// to reject — RepsAt is a sizing estimate for progress accounting.
func (e *Expander) RepsAt(id int) (int, error) {
	if id < 0 || id >= e.Len() {
		return 0, fmt.Errorf("scenario: sweep point %d out of range [0, %d)", id, e.Len())
	}
	n := e.sw.Base.Replications.N
	rem := id
	for a := len(e.vals) - 1; a >= 0; a-- {
		v := e.vals[a][rem%len(e.vals[a])]
		rem /= len(e.vals[a])
		if e.sw.Axes[a].Field == "replications.n" {
			if f, ok := toFloatValue(v); ok && f == float64(int(f)) {
				n = int(f)
			}
		}
	}
	return n, nil
}

// PointAt materializes point id: the base spec with the id's row-major
// axis values applied, fully validated. Each call builds a fresh Spec,
// so callers may mutate or discard points independently.
func (e *Expander) PointAt(id int) (*Point, error) {
	if id < 0 || id >= e.Len() {
		return nil, fmt.Errorf("scenario: sweep point %d out of range [0, %d)", id, e.Len())
	}
	spec, err := cloneSpec(&e.sw.Base)
	if err != nil {
		return nil, err
	}
	coords := make([]string, len(e.vals))
	// Decode the row-major id: first axis slowest.
	rem := id
	for a := len(e.vals) - 1; a >= 0; a-- {
		v := e.vals[a][rem%len(e.vals[a])]
		rem /= len(e.vals[a])
		if err := setSpecField(spec, e.sw.Axes[a].Field, v); err != nil {
			return nil, err
		}
		coords[a] = formatAxisValue(v)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: sweep point %d (%s): %w", id, strings.Join(coords, ","), err)
	}
	return &Point{ID: id, Coords: coords, Spec: spec}, nil
}

// Expand validates the sweep and materializes the cartesian product of
// its axes, first axis slowest. Every point's Spec passes the same
// validation a hand-written spec would. For large grids prefer
// Expander, which resolves points one at a time.
func (sw *Sweep) Expand() ([]Point, error) {
	e, err := sw.Expander()
	if err != nil {
		return nil, err
	}
	points := make([]Point, 0, e.Len())
	for id := 0; id < e.Len(); id++ {
		p, err := e.PointAt(id)
		if err != nil {
			return nil, err
		}
		points = append(points, *p)
	}
	return points, nil
}

// cloneSpec deep-copies a Spec through its JSON form.
func cloneSpec(s *Spec) (*Spec, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// formatAxisValue renders an axis value as a coordinate string (the
// CSV cell), using the shortest exact float form.
func formatAxisValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case int:
		return strconv.Itoa(x)
	}
	return fmt.Sprintf("%v", v)
}

// --- field setters ---

func toFloatValue(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	}
	return 0, false
}

func setFloatField(dst *float64, field string, v any) error {
	f, ok := toFloatValue(v)
	if !ok || math.IsNaN(f) || math.IsInf(f, 0) {
		return fmt.Errorf("scenario: axis %q: value %v is not a finite number", field, v)
	}
	*dst = f
	return nil
}

func setIntField(dst *int, field string, v any) error {
	f, ok := toFloatValue(v)
	if !ok || f != math.Trunc(f) || math.Abs(f) > 1e15 {
		return fmt.Errorf("scenario: axis %q: value %v is not an integer", field, v)
	}
	*dst = int(f)
	return nil
}

func setUintField(dst *uint64, field string, v any) error {
	f, ok := toFloatValue(v)
	if !ok || f != math.Trunc(f) || f < 0 || f > 1e15 {
		return fmt.Errorf("scenario: axis %q: value %v is not a non-negative integer", field, v)
	}
	*dst = uint64(f)
	return nil
}

func setStringField(dst *string, field string, v any) error {
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("scenario: axis %q: value %v is not a string", field, v)
	}
	*dst = s
	return nil
}

// setSpecField applies one axis value to its field path on a Spec.
func setSpecField(s *Spec, field string, v any) error {
	switch field {
	case "packets":
		return setIntField(&s.Packets, field, v)
	case "seed":
		return setUintField(&s.Seed, field, v)
	case "signalPeriod":
		return setFloatField(&s.SignalPeriod, field, v)
	case "leaveLatency":
		return setFloatField(&s.LeaveLatency, field, v)
	case "replications.n":
		return setIntField(&s.Replications.N, field, v)
	}
	if rest, ok := strings.CutPrefix(field, "topology."); ok {
		return setTopologyField(&s.Topology, rest, field, v)
	}
	if rest, ok := strings.CutPrefix(field, "churn."); ok {
		if s.Churn == nil {
			s.Churn = &ChurnSpec{}
		}
		switch rest {
		case "interval":
			return setFloatField(&s.Churn.Interval, field, v)
		case "downtime":
			return setFloatField(&s.Churn.Downtime, field, v)
		case "horizon":
			return setFloatField(&s.Churn.Horizon, field, v)
		}
		return fmt.Errorf("scenario: unknown sweep axis field %q", field)
	}
	if rest, ok := strings.CutPrefix(field, "defaultLink."); ok {
		if s.DefaultLink == nil {
			return fmt.Errorf("scenario: axis %q needs base.defaultLink to be set", field)
		}
		return setLinkField(s.DefaultLink, rest, field, v)
	}
	if strings.HasPrefix(field, "links[") {
		idx, rest, err := parseIndexedField(field, "links")
		if err != nil {
			return err
		}
		for i := range s.Links {
			if s.Links[i].Link == idx {
				return setLinkField(&s.Links[i].LinkSpec, rest, field, v)
			}
		}
		return fmt.Errorf("scenario: axis %q: base has no override for link %d (add one to base.links)", field, idx)
	}
	if rest, ok := strings.CutPrefix(field, "sessions."); ok {
		if len(s.Sessions) == 0 {
			s.Sessions = []SessionSpec{{}}
		}
		for i := range s.Sessions {
			if err := setSessionField(&s.Sessions[i], rest, field, v); err != nil {
				return err
			}
		}
		return nil
	}
	if strings.HasPrefix(field, "sessions[") {
		idx, rest, err := parseIndexedField(field, "sessions")
		if err != nil {
			return err
		}
		if idx < 0 || idx >= len(s.Sessions) {
			return fmt.Errorf("scenario: axis %q: base has %d session slots", field, len(s.Sessions))
		}
		return setSessionField(&s.Sessions[idx], rest, field, v)
	}
	return fmt.Errorf("scenario: unknown sweep axis field %q", field)
}

// parseIndexedField splits "name[3].rest" into (3, "rest").
func parseIndexedField(field, name string) (int, string, error) {
	body := field[len(name)+1:]
	j := strings.IndexByte(body, ']')
	if j < 0 || j+1 >= len(body) || body[j+1] != '.' {
		return 0, "", fmt.Errorf("scenario: malformed axis field %q (want %s[index].field)", field, name)
	}
	idx, err := strconv.Atoi(body[:j])
	if err != nil || idx < 0 {
		return 0, "", fmt.Errorf("scenario: malformed axis field %q: bad index %q", field, body[:j])
	}
	return idx, body[j+2:], nil
}

func setTopologyField(t *TopologySpec, rest, field string, v any) error {
	switch rest {
	case "receivers":
		return setIntField(&t.Receivers, field, v)
	case "sessions":
		return setIntField(&t.Sessions, field, v)
	case "nodes":
		return setIntField(&t.Nodes, field, v)
	case "depth":
		return setIntField(&t.Depth, field, v)
	case "k":
		return setIntField(&t.K, field, v)
	case "attach":
		return setIntField(&t.Attach, field, v)
	case "maxReceivers":
		return setIntField(&t.MaxReceivers, field, v)
	case "extraLinks":
		return setIntField(&t.ExtraLinks, field, v)
	case "seed":
		return setUintField(&t.Seed, field, v)
	case "sharedCapacity":
		return setFloatField(&t.SharedCapacity, field, v)
	case "capMin":
		return setFloatField(&t.CapMin, field, v)
	case "capMax":
		return setFloatField(&t.CapMax, field, v)
	case "hostCap":
		return setFloatField(&t.HostCap, field, v)
	case "edgeAggCap":
		return setFloatField(&t.EdgeAggCap, field, v)
	case "aggCoreCap":
		return setFloatField(&t.AggCoreCap, field, v)
	case "kappaMax":
		return setFloatField(&t.KappaMax, field, v)
	case "singleRateProb":
		return setFloatField(&t.SingleRateProb, field, v)
	case "kappaProb":
		return setFloatField(&t.KappaProb, field, v)
	}
	return fmt.Errorf("scenario: unknown sweep axis field %q", field)
}

func setLinkField(l *LinkSpec, rest, field string, v any) error {
	switch rest {
	case "loss":
		return setFloatField(&l.Loss, field, v)
	case "capacity":
		return setFloatField(&l.Capacity, field, v)
	case "background":
		return setFloatField(&l.Background, field, v)
	case "delay":
		return setFloatField(&l.Delay, field, v)
	case "buffer":
		return setIntField(&l.Buffer, field, v)
	}
	return fmt.Errorf("scenario: unknown sweep axis field %q", field)
}

func setSessionField(ss *SessionSpec, rest, field string, v any) error {
	switch rest {
	case "protocol":
		return setStringField(&ss.Protocol, field, v)
	case "type":
		return setStringField(&ss.Type, field, v)
	case "layers":
		return setIntField(&ss.Layers, field, v)
	case "maxRate":
		return setFloatField(&ss.MaxRate, field, v)
	case "redundancy":
		return setFloatField(&ss.Redundancy, field, v)
	}
	return fmt.Errorf("scenario: unknown sweep axis field %q", field)
}

// DecodeSweep reads and validates a Sweep from JSON.
func DecodeSweep(r io.Reader) (*Sweep, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sw Sweep
	if err := dec.Decode(&sw); err != nil {
		return nil, fmt.Errorf("scenario: decode sweep: %w", err)
	}
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	return &sw, nil
}

// Encode writes the Sweep's canonical JSON form (two-space indented,
// trailing newline), the same stability contract as Spec.Encode.
func (sw *Sweep) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(sw, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// LoadSweepFile reads and validates a Sweep from a JSON file. Parse
// and validation errors name the offending file; JSON errors that
// carry a byte offset are reported as path:line:col.
func LoadSweepFile(path string) (*Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sw, err := DecodeSweep(bytes.NewReader(data))
	if err != nil {
		return nil, locateError(path, data, err)
	}
	return sw, nil
}
