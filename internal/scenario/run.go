package scenario

import (
	"fmt"
	"io"

	"mlfair/internal/fairness"
	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
	"mlfair/internal/netsim"
	"mlfair/internal/stats"
	"mlfair/internal/trace"
)

// Result is one scenario run: replication-aggregated simulation metrics
// (when Replications.N > 0) next to the analytic max-min benchmark and
// the fairness-property audits of both sides.
type Result struct {
	Spec     *Spec
	Compiled *Compiled
	// Simulated reports whether the simulation stages ran.
	Simulated bool
	// Goodput is the mean receiver goodput across all receivers
	// ("goodput" stage).
	Goodput stats.Summary
	// RootRedundancy / MaxLinkRedundancy are the "redundancy" stage:
	// mean per-session root redundancy and the maximum Definition 3
	// redundancy over all (link, session) pairs.
	RootRedundancy    stats.Summary
	MaxLinkRedundancy stats.Summary
	// Rates[i][k] summarizes receiver r_{i,k}'s goodput across
	// replications; MeanRates is the means alone (the simulated
	// allocation the audits run on).
	Rates     [][]stats.Summary
	MeanRates [][]float64
	// FairRates[i][k] is the max-min benchmark ("maxmin" stage),
	// computed on the Compiled.Benchmark network.
	FairRates [][]float64
	// Gap[i][k] = achieved mean / fair rate ("gap" stage; 0 when the
	// fair rate is 0).
	Gap [][]float64
	// Timeline is the epoch-incremental max-min fair-rate timeline over
	// the membership schedule ("timeseries"/"convergence" stages).
	Timeline []maxmin.TimelineEpoch
	// TimeSeries joins the probe's replication-mean windows against the
	// timeline ("timeseries" stage).
	TimeSeries *TimeSeries
	// Convergence summarizes the per-replication convergence scalars
	// ("convergence" stage).
	Convergence *ConvergenceReport
	// BenchmarkFairness audits the four Section 2.1 properties on the
	// benchmark allocation (a sanity check: the paper's Theorem 1 says
	// all four hold when every session is multi-rate).
	BenchmarkFairness *fairness.Report
	// SimulatedFairness audits the same four properties on the
	// simulated mean-rate allocation — the paper's "do the protocols
	// come close to max-min fairness" question as a verdict.
	SimulatedFairness *fairness.Report
}

// ConvergenceReport is the "convergence" stage output: the
// per-replication convergence scalars (each already averaged over
// receivers) summarized across replications.
type ConvergenceReport struct {
	// Epsilon is the relative fair-rate band the scalars are defined
	// against.
	Epsilon float64
	// TimeToFair is the earliest time after which every probe window
	// stays within ε of the epoch fair rate (run duration = censored,
	// never converged).
	TimeToFair stats.Summary
	// FracTimeFair is the duration-weighted fraction of the run inside
	// the ε band.
	FracTimeFair stats.Summary
	// Oscillation is the post-convergence peak-to-peak windowed-rate
	// amplitude over the mean fair rate.
	Oscillation stats.Summary
}

// Run compiles and executes a Spec.
func Run(spec *Spec) (*Result, error) {
	return RunObserved(spec, nil)
}

// RunObserved is Run with an optional observability attachment: the
// scenario reports as a one-point sweep (see Observe). A nil ob is
// exactly Run — results are bit-identical either way.
func RunObserved(spec *Spec, ob *Observe) (*Result, error) {
	c, err := Compile(spec)
	if err != nil {
		return nil, err
	}
	return RunCompiledObserved(c, ob)
}

// RunCompiled executes an already-compiled scenario: a streaming
// replication pass (bounded memory, replication-order determinism —
// aggregates are bit-identical for any worker count) followed by the
// analytic stages.
func RunCompiled(c *Compiled) (*Result, error) {
	return RunCompiledObserved(c, nil)
}

// RunCompiledObserved is RunCompiled with an optional observability
// attachment.
func RunCompiledObserved(c *Compiled, ob *Observe) (*Result, error) {
	s := c.Spec
	sel := s.metricSet()
	res := &Result{Spec: s, Compiled: c}
	needRates := sel[MetricRates] || sel[MetricGap] || sel[MetricFairness]
	needTime := sel[MetricTimeseries] || sel[MetricConvergence]

	if needTime {
		if !c.Simulable {
			return nil, fmt.Errorf("scenario: topology %q is not simulable", s.Topology.Kind)
		}
		epochs, err := FairTimeline(c)
		if err != nil {
			return nil, fmt.Errorf("scenario: fair-rate timeline: %w", err)
		}
		res.Timeline = epochs
	}

	if s.Replications.N > 0 {
		if !c.Simulable {
			return nil, fmt.Errorf("scenario: topology %q is not simulable", s.Topology.Kind)
		}
		res.Simulated = true
		net := c.Net
		var goodAcc, rootAcc, maxAcc stats.Accumulator
		var timeToFairAcc, fracFairAcc, oscAcc stats.Accumulator
		var tsAcc timeSeriesAcc
		var convEval *convergenceEval
		if sel[MetricConvergence] {
			convEval = &convergenceEval{epochs: res.Timeline, eps: s.convergenceEpsilon()}
		}
		rateAccs := make([][]stats.Accumulator, net.NumSessions())
		for i := range rateAccs {
			rateAccs[i] = make([]stats.Accumulator, net.Session(i).NumReceivers())
		}
		goodput := netsim.MeanReceiverRateMetric()
		cfg := c.Cfg
		if ob != nil && ob.Stats != nil {
			cfg.Stats = ob.Stats
		}
		tr := NewTracker(ob, 1, s.Replications.N, 1)
		tr.PointStart(0)
		err := netsim.StreamReplications(cfg, s.Replications.N, s.Replications.Workers,
			func(_ int, r *netsim.Result) error {
				if needTime && r.Probe == nil {
					return fmt.Errorf("scenario: timeseries/convergence stages ran without probe output")
				}
				if sel[MetricGoodput] {
					goodAcc.Add(goodput(r))
				}
				if sel[MetricRedundancy] {
					sum := 0.0
					for i := range r.ReceiverRates {
						sum += r.SessionRedundancy(i)
					}
					rootAcc.Add(sum / float64(len(r.ReceiverRates)))
					m := 0.0
					for _, ls := range r.Links {
						if ls.Redundancy > m {
							m = ls.Redundancy
						}
					}
					maxAcc.Add(m)
				}
				if needRates {
					for i := range r.ReceiverRates {
						for k, v := range r.ReceiverRates[i] {
							rateAccs[i][k].Add(v)
						}
					}
				}
				if sel[MetricTimeseries] {
					if err := tsAcc.add(r); err != nil {
						return err
					}
				}
				if convEval != nil {
					if err := convEval.checkComplete(r.Probe); err != nil {
						return err
					}
					cs := convEval.scalars(r.Probe)
					timeToFairAcc.Add(cs.TimeToFair)
					fracFairAcc.Add(cs.FracTimeFair)
					oscAcc.Add(cs.Oscillation)
				}
				tr.Cell(r.Events)
				return nil
			})
		tr.PointEnd(0)
		tr.Finish()
		if err != nil {
			return nil, err
		}
		sum := func(a *stats.Accumulator) stats.Summary {
			return stats.Summary{Mean: a.Mean(), CI95: a.CI95(), N: a.N(), StdEv: a.StdDev()}
		}
		res.Goodput = sum(&goodAcc)
		res.RootRedundancy = sum(&rootAcc)
		res.MaxLinkRedundancy = sum(&maxAcc)
		if sel[MetricTimeseries] {
			res.TimeSeries = tsAcc.finish(res.Timeline)
		}
		if convEval != nil {
			res.Convergence = &ConvergenceReport{
				Epsilon:      convEval.eps,
				TimeToFair:   sum(&timeToFairAcc),
				FracTimeFair: sum(&fracFairAcc),
				Oscillation:  sum(&oscAcc),
			}
		}
		if needRates {
			res.Rates = make([][]stats.Summary, len(rateAccs))
			res.MeanRates = make([][]float64, len(rateAccs))
			for i := range rateAccs {
				res.Rates[i] = make([]stats.Summary, len(rateAccs[i]))
				res.MeanRates[i] = make([]float64, len(rateAccs[i]))
				for k := range rateAccs[i] {
					res.Rates[i][k] = sum(&rateAccs[i][k])
					res.MeanRates[i][k] = rateAccs[i][k].Mean()
				}
			}
		}
	}

	if sel[MetricMaxMin] || sel[MetricGap] || sel[MetricFairness] {
		fair, err := maxmin.Allocate(c.Benchmark)
		if err != nil {
			return nil, fmt.Errorf("scenario: max-min benchmark: %w", err)
		}
		res.FairRates = make([][]float64, c.Benchmark.NumSessions())
		for i := range res.FairRates {
			res.FairRates[i] = append([]float64(nil), fair.Alloc.SessionRates(i)...)
		}
		if sel[MetricFairness] {
			res.BenchmarkFairness = fairness.Check(fair.Alloc)
		}
	}
	if res.Simulated && res.MeanRates != nil {
		if sel[MetricFairness] {
			simAlloc, err := netmodel.AllocationFromRates(c.Benchmark, res.MeanRates)
			if err != nil {
				return nil, fmt.Errorf("scenario: simulated allocation: %w", err)
			}
			res.SimulatedFairness = fairness.Check(simAlloc)
		}
		if sel[MetricGap] && res.FairRates != nil {
			res.Gap = make([][]float64, len(res.MeanRates))
			for i := range res.MeanRates {
				res.Gap[i] = make([]float64, len(res.MeanRates[i]))
				for k := range res.MeanRates[i] {
					if f := res.FairRates[i][k]; f > 0 {
						res.Gap[i][k] = res.MeanRates[i][k] / f
					}
				}
			}
		}
	}
	return res, nil
}

// Title resolves the report title: the Spec's Name, or one synthesized
// from the compiled topology.
func (r *Result) Title() string {
	if r.Spec.Name != "" {
		return r.Spec.Name
	}
	net := r.Compiled.Net
	return fmt.Sprintf("scenario %s: %d nodes, %d links, %d sessions, %d receivers",
		r.Spec.Topology.Kind, net.Graph().NumNodes(), net.NumLinks(),
		net.NumSessions(), net.NumReceivers())
}

// WriteReport renders the selected stages as trace tables and verdict
// lines. With the default "goodput"+"redundancy" selection the output
// is exactly one summary table (the byte format the large-topology
// golden pins).
func (r *Result) WriteReport(w io.Writer) error {
	sel := r.Spec.metricSet()
	titled := false
	if r.Simulated && (sel[MetricGoodput] || sel[MetricRedundancy]) {
		t := trace.NewTable(r.Title(), "metric", "mean", "ci95")
		titled = true
		if sel[MetricGoodput] {
			t.AddRow("receiver goodput", trace.Float(r.Goodput.Mean), trace.Float(r.Goodput.CI95))
		}
		if sel[MetricRedundancy] {
			t.AddRow("session root redundancy", trace.Float(r.RootRedundancy.Mean), trace.Float(r.RootRedundancy.CI95))
			t.AddRow("max link redundancy", trace.Float(r.MaxLinkRedundancy.Mean), trace.Float(r.MaxLinkRedundancy.CI95))
		}
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
	}
	if !titled {
		if _, err := fmt.Fprintf(w, "## %s\n", r.Title()); err != nil {
			return err
		}
	}
	if r.Simulated && sel[MetricRates] {
		t := trace.NewTable("", "receiver", "mean rate", "ci95")
		for i := range r.Rates {
			for k := range r.Rates[i] {
				t.AddRow(fmt.Sprintf("r%d,%d", i+1, k+1),
					trace.Float(r.Rates[i][k].Mean), trace.Float(r.Rates[i][k].CI95))
			}
		}
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
	}
	if r.FairRates != nil && (sel[MetricMaxMin] || sel[MetricGap]) {
		headers := []string{"receiver", "max-min fair rate"}
		if r.Simulated {
			headers = append(headers, "achieved mean", "fairness gap")
		}
		t := trace.NewTable("", headers...)
		for i := range r.FairRates {
			for k := range r.FairRates[i] {
				row := []string{fmt.Sprintf("r%d,%d", i+1, k+1), trace.Float(r.FairRates[i][k])}
				if r.Simulated {
					achieved, gap := "-", "-"
					if r.MeanRates != nil {
						achieved = trace.Float(r.MeanRates[i][k])
					}
					if r.Gap != nil {
						gap = trace.Float(r.Gap[i][k])
					}
					row = append(row, achieved, gap)
				}
				t.AddRow(row...)
			}
		}
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
	}
	if sel[MetricConvergence] && r.Convergence != nil {
		cv := r.Convergence
		t := trace.NewTable(
			fmt.Sprintf("convergence vs max-min fair (ε = %s, %d epoch(s))", trace.Float(cv.Epsilon), len(r.Timeline)),
			"metric", "mean", "ci95")
		t.AddRow("time to fair", trace.Float(cv.TimeToFair.Mean), trace.Float(cv.TimeToFair.CI95))
		t.AddRow("fraction of time fair", trace.Float(cv.FracTimeFair.Mean), trace.Float(cv.FracTimeFair.CI95))
		t.AddRow("oscillation amplitude", trace.Float(cv.Oscillation.Mean), trace.Float(cv.Oscillation.CI95))
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
	}
	if sel[MetricTimeseries] && r.TimeSeries != nil {
		if _, err := fmt.Fprintf(w, "time series: %d windows x %d replications over %d fair-rate epoch(s)\n",
			len(r.TimeSeries.Times), r.TimeSeries.Reps, len(r.Timeline)); err != nil {
			return err
		}
	}
	if sel[MetricFairness] {
		if r.BenchmarkFairness != nil {
			if _, err := fmt.Fprintf(w, "max-min benchmark properties: %s\n", r.BenchmarkFairness.Summary()); err != nil {
				return err
			}
		}
		if r.SimulatedFairness != nil {
			if _, err := fmt.Fprintf(w, "simulated-rate properties:    %s\n", r.SimulatedFairness.Summary()); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunFile loads a Spec from a JSON file, runs it, and writes the report
// — the shared implementation behind every cmd binary's -spec flag.
func RunFile(w io.Writer, path string) error {
	return RunFileObserved(w, path, nil)
}

// RunFileObserved is RunFile with an optional observability attachment
// (see RunObserved).
func RunFileObserved(w io.Writer, path string, ob *Observe) error {
	spec, err := LoadFile(path)
	if err != nil {
		return err
	}
	res, err := RunObserved(spec, ob)
	if err != nil {
		return err
	}
	return res.WriteReport(w)
}
