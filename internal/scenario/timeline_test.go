package scenario

import (
	"reflect"
	"strings"
	"testing"

	"mlfair/internal/maxmin"
	"mlfair/internal/netsim"
	"mlfair/internal/protocol"
)

// timeSpec is a capacity-coupled star with probe windows — the shape
// the timeseries/convergence stages target.
func timeSpec(metrics ...string) *Spec {
	return &Spec{
		Topology: TopologySpec{
			Kind:             "star",
			SharedCapacity:   24,
			FanoutCapacities: []float64{2, 8, 32, 64},
		},
		Sessions:     []SessionSpec{{Protocol: "Coordinated", Layers: 8}},
		DefaultLink:  &LinkSpec{Kind: "capacity"},
		Packets:      8000,
		Seed:         11,
		Probe:        &ProbeSpec{PacketWindow: 400},
		Replications: ReplicationSpec{N: 3, Workers: 2},
		Metrics:      metrics,
	}
}

// TestTimeseriesStage: the joined time series exists, its windows tile
// the run, fair rates come from the (single) epoch, and gaps are
// rate/fair.
func TestTimeseriesStage(t *testing.T) {
	res, err := Run(timeSpec(MetricTimeseries))
	if err != nil {
		t.Fatal(err)
	}
	ts := res.TimeSeries
	if ts == nil {
		t.Fatal("no time series")
	}
	if len(res.Timeline) != 1 {
		t.Fatalf("churn-free run has %d epochs, want 1", len(res.Timeline))
	}
	if ts.Reps != 3 {
		t.Fatalf("time series averaged %d replications, want 3", ts.Reps)
	}
	if len(ts.Times) < 5 {
		t.Fatalf("only %d windows", len(ts.Times))
	}
	for s := 1; s < len(ts.Times); s++ {
		if ts.Starts[s] != ts.Times[s-1] {
			t.Fatalf("window %d not contiguous", s)
		}
	}
	for i := range ts.Rate {
		for k := range ts.Rate[i] {
			for s := range ts.Times {
				if ts.Fair[i][k][s] != res.Timeline[0].Rates[i][k] {
					t.Fatalf("fair rate at window %d differs from the epoch allocation", s)
				}
				f := ts.Fair[i][k][s]
				if f > 0 {
					want := ts.Rate[i][k][s] / f
					if ts.Gap[i][k][s] != want {
						t.Fatalf("gap at window %d: %v, want %v", s, ts.Gap[i][k][s], want)
					}
				}
			}
		}
	}
}

// TestConvergenceStage: the scalar report is present and sane.
func TestConvergenceStage(t *testing.T) {
	res, err := Run(timeSpec(MetricConvergence))
	if err != nil {
		t.Fatal(err)
	}
	cv := res.Convergence
	if cv == nil {
		t.Fatal("no convergence report")
	}
	if cv.Epsilon != DefaultConvergenceEpsilon {
		t.Fatalf("epsilon %v, want default %v", cv.Epsilon, DefaultConvergenceEpsilon)
	}
	if cv.FracTimeFair.Mean < 0 || cv.FracTimeFair.Mean > 1 {
		t.Fatalf("fraction of time fair %v outside [0,1]", cv.FracTimeFair.Mean)
	}
	if cv.TimeToFair.Mean < 0 {
		t.Fatalf("negative time to fair %v", cv.TimeToFair.Mean)
	}
	if cv.Oscillation.Mean < 0 {
		t.Fatalf("negative oscillation %v", cv.Oscillation.Mean)
	}
	if cv.TimeToFair.N != 3 {
		t.Fatalf("convergence summarized %d replications, want 3", cv.TimeToFair.N)
	}
}

// TestTimeseriesChurnEpochs: churn events open fair-rate epochs and the
// joined fair column switches with them.
func TestTimeseriesChurnEpochs(t *testing.T) {
	spec := timeSpec(MetricTimeseries, MetricConvergence)
	spec.Churn = &ChurnSpec{Events: []ChurnEvent{
		{Time: 30, Session: 0, Receiver: 3, Join: false},
		{Time: 60, Session: 0, Receiver: 3, Join: true},
	}}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 3 {
		t.Fatalf("%d epochs, want 3", len(res.Timeline))
	}
	if r := res.Timeline[1].Rates[0][3]; r != 0 {
		t.Fatalf("departed receiver has fair rate %v in epoch 1", r)
	}
	ts := res.TimeSeries
	sawZero := false
	for s := range ts.Times {
		if ts.Times[s] > 30 && ts.Times[s] <= 60 && ts.Fair[0][3][s] == 0 {
			sawZero = true
		}
	}
	if !sawZero {
		t.Fatal("fair-rate column never reflected the churn departure")
	}
	if res.Convergence == nil {
		t.Fatal("convergence stage missing")
	}
}

// TestMembershipEventsLeaveShift: slow leaves release benchmark
// bandwidth at leave time + latency, and a rejoin inside the linger
// window voids the removal.
func TestMembershipEventsLeaveShift(t *testing.T) {
	churn := []netsim.ChurnEvent{
		{Time: 10, Session: 0, Receiver: 1, Join: false},
		{Time: 40, Session: 0, Receiver: 2, Join: false},
		{Time: 44, Session: 0, Receiver: 2, Join: true},
	}
	// Latency 0: events map through unshifted.
	got := membershipEvents(churn, 0)
	if len(got) != 3 || got[0].Time != 10 || got[1].Time != 40 || !got[2].Join {
		t.Fatalf("latency-0 mapping wrong: %+v", got)
	}
	// Latency 8: the first leave fires at 18; the second is voided by
	// the rejoin at 44 <= 48, and the rejoin itself stays (a no-op join).
	got = membershipEvents(churn, 8)
	if len(got) != 2 {
		t.Fatalf("latency-8 mapping has %d events, want 2: %+v", len(got), got)
	}
	if got[0].Time != 18 || got[0].Join || got[0].Receiver != 1 {
		t.Fatalf("shifted leave wrong: %+v", got[0])
	}
	if !got[1].Join || got[1].Time != 44 {
		t.Fatalf("surviving rejoin wrong: %+v", got[1])
	}
}

// TestTimeseriesWorkerInvariance: the joined time series is
// bit-identical for any worker count (the runner's replication-order
// contract extended to the windowed path).
func TestTimeseriesWorkerInvariance(t *testing.T) {
	one := timeSpec(MetricTimeseries, MetricConvergence)
	one.Replications.Workers = 1
	many := timeSpec(MetricTimeseries, MetricConvergence)
	many.Replications.Workers = 4
	r1, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(many)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.TimeSeries, r2.TimeSeries) {
		t.Fatal("time series depends on worker count")
	}
	if !reflect.DeepEqual(r1.Convergence, r2.Convergence) {
		t.Fatal("convergence report depends on worker count")
	}
}

// TestTimeseriesCSV: the -timeseries CSV has the documented header and
// one row per (window, receiver).
func TestTimeseriesCSV(t *testing.T) {
	res, err := Run(timeSpec(MetricTimeseries))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteTimeseriesCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if lines[0] != "time,window_start,session,receiver,rate_mean,level_mean,fair_rate,gap" {
		t.Fatalf("header %q", lines[0])
	}
	want := len(res.TimeSeries.Times)*4 + 1
	if len(lines) != want {
		t.Fatalf("%d rows, want %d", len(lines), want)
	}
	// No time series selected -> error.
	plain, err := Run(timeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.WriteTimeseriesCSV(&b); err == nil {
		t.Fatal("CSV written without a time series")
	}
}

// TestProbeSpecValidation: malformed probe/convergence blocks and
// stage selections are rejected at validation time.
func TestProbeSpecValidation(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.Probe = &ProbeSpec{} },
		func(s *Spec) { s.Probe = &ProbeSpec{Window: 2, PacketWindow: 5} },
		func(s *Spec) { s.Probe = &ProbeSpec{Window: -1} },
		func(s *Spec) { s.Probe = &ProbeSpec{PacketWindow: -2} },
		func(s *Spec) { s.Probe = &ProbeSpec{Window: 1, MaxSamples: -1} },
		func(s *Spec) { s.Probe = nil; s.Metrics = []string{MetricTimeseries} },
		func(s *Spec) { s.Probe = nil; s.Metrics = []string{MetricConvergence} },
		func(s *Spec) { s.Replications.N = 0; s.Packets = 0; s.Metrics = []string{MetricConvergence} },
		func(s *Spec) { s.Convergence = &ConvergenceSpec{Epsilon: 1.5} },
		func(s *Spec) { s.Convergence = &ConvergenceSpec{Epsilon: -0.1} },
	}
	for x, mutate := range cases {
		s := timeSpec(MetricTimeseries)
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", x)
		}
	}
}

// TestConvergenceRejectsRingOverflow: a probe ring that dropped its
// oldest windows would silently erase the unfair transient, so the
// convergence stage must fail loudly; the timeseries stage still runs
// and surfaces the drop count.
func TestConvergenceRejectsRingOverflow(t *testing.T) {
	spec := timeSpec(MetricConvergence)
	spec.Probe.MaxSamples = 4
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("overflowed convergence run not rejected: %v", err)
	}
	tsOnly := timeSpec(MetricTimeseries)
	tsOnly.Probe.MaxSamples = 4
	res, err := Run(tsOnly)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeSeries.Dropped == 0 {
		t.Fatal("timeseries did not surface the ring overflow")
	}
}

// TestConvergenceSkipsZeroWidthWindows: packetWindow 1 on a
// multi-layer session produces several same-instant (zero-width)
// windows per tick; they define no rate and must not count as ε
// violations. On a lossless star the one positive-width window per
// tick carries exactly one packet at the base-layer rate, so with
// fair pinned to that rate the receiver converges as soon as joins
// settle — far before the run end.
func TestConvergenceSkipsZeroWidthWindows(t *testing.T) {
	cfg, err := netsim.Star(2, 0, 0,
		netsim.SessionConfig{Protocol: protocol.Deterministic, Layers: 4}, 4000, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Probe = &netsim.ProbeConfig{PacketWindow: 1, MaxSamples: 1 << 14}
	res, err := netsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Probe
	zero := 0
	for s := 0; s < p.NumSamples(); s++ {
		if p.Times[s] <= p.Starts[s] {
			zero++
		}
	}
	if zero == 0 {
		t.Fatal("expected zero-width windows with packetWindow 1")
	}
	// Base layer (the first packet of each tick) fires at the finest
	// tick rate: layer M-1 of the 4-layer scheme runs at rate 4.
	eval := &convergenceEval{
		epochs: []maxmin.TimelineEpoch{{Time: 0, Rates: [][]float64{{4, 4}}}},
		eps:    0.5,
	}
	cs := eval.scalars(p)
	if cs.TimeToFair >= res.Duration/2 {
		t.Fatalf("time to fair %v censored toward run end %v — zero-width windows counted as violations",
			cs.TimeToFair, res.Duration)
	}
	if cs.FracTimeFair < 0.5 {
		t.Fatalf("fraction of time fair %v implausibly low", cs.FracTimeFair)
	}
}

// TestSweepConvergenceOutputs: convergence columns flow through the
// sweep scheduler into the store, and a probe-less base is rejected.
func TestSweepConvergenceOutputs(t *testing.T) {
	sw := &Sweep{
		Base: *timeSpec(),
		Axes: []Axis{{Field: "sessions.protocol", Values: []any{"Coordinated", "Deterministic"}}},
		Outputs: []string{
			"goodput", "time_to_fair", "frac_time_fair", "oscillation",
		},
	}
	res, err := RunSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Sim.Points() {
		for _, m := range []string{"time_to_fair", "frac_time_fair", "oscillation"} {
			c, err := res.Sim.Cell(id, m)
			if err != nil {
				t.Fatal(err)
			}
			if c.N != sw.Base.Replications.N {
				t.Fatalf("point %d %s has %d observations, want %d", id, m, c.N, sw.Base.Replications.N)
			}
		}
		frac, err := res.Sim.Cell(id, "frac_time_fair")
		if err != nil {
			t.Fatal(err)
		}
		if frac.Mean < 0 || frac.Mean > 1 {
			t.Fatalf("point %d frac_time_fair %v outside [0,1]", id, frac.Mean)
		}
	}
	noProbe := *sw
	noProbe.Base.Probe = nil
	if err := noProbe.Validate(); err == nil {
		t.Fatal("probe-less convergence sweep accepted")
	}
	bad := *sw
	bad.Outputs = []string{"zigzag"}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown output accepted")
	}
}
