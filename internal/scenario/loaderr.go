package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
)

// locateError decorates a Decode/Validate error from a file with the
// offending path, and — when the JSON decoder reported a byte offset
// (syntax errors, type mismatches) — the 1-based line:column, so a
// broken -spec/-sweep file is a jump-to-location diagnostic instead of
// a bare decoder message.
func locateError(path string, data []byte, err error) error {
	var off int64 = -1
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	switch {
	case errors.As(err, &syn):
		off = syn.Offset
	case errors.As(err, &typ):
		off = typ.Offset
	}
	if off < 0 {
		return fmt.Errorf("%s: %w", path, err)
	}
	line, col := lineCol(data, off)
	return fmt.Errorf("%s:%d:%d: %w", path, line, col, err)
}

// lineCol converts a byte offset into 1-based line and column.
func lineCol(data []byte, off int64) (line, col int) {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	line, col = 1, 1
	for _, b := range data[:off] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}
