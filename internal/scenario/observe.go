package scenario

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mlfair/internal/netsim"
	"mlfair/internal/obs"
)

// Observe is the optional observability attachment for scenario and
// sweep execution: an engine-stats sink shared by every replication
// and a streaming progress callback. A nil *Observe (or zero fields)
// is fully inert — execution paths and outputs are bit-identical with
// observation on or off; the layer only ever reads what the engine
// already computes.
type Observe struct {
	// Stats, when non-nil, is injected as netsim.Config.Stats into
	// every compiled point, so one sink accumulates engine counters
	// across all points and replications.
	Stats *netsim.EngineStats
	// Progress, when non-nil, receives throttled SweepProgress
	// snapshots from a reporter goroutine while the run executes, and
	// one final snapshot with Done set after the last cell merges. It
	// must be safe to call from one goroutine at a time.
	Progress func(SweepProgress)
	// Interval is the minimum delay between Progress calls; zero means
	// 200ms.
	Interval time.Duration
	// Manifest, when non-nil, receives run-shape provenance from
	// drivers that compute a memory plan — the shard-group count, the
	// intra-session subtree count, and the cut-frontier size — via its
	// nil-safe setters.
	Manifest *obs.Manifest
}

// SweepProgress is one snapshot of a running sweep (or single
// scenario, which reports as a one-point sweep): completed work,
// replication throughput, and the worker pool's utilization.
type SweepProgress struct {
	// DoneCells / TotalCells count (point, replication) cells;
	// DonePoints / TotalPoints count fully merged points.
	DoneCells   int
	TotalCells  int
	DonePoints  int
	TotalPoints int
	// Events is the cumulative engine event count over finished cells;
	// EventsPerSec is that divided by Elapsed.
	Events       int64
	EventsPerSec float64
	// Elapsed is wall seconds since the run started; ETA is the
	// remaining-seconds estimate from the mean cell rate (0 until the
	// first cell finishes, and 0 once Done).
	Elapsed float64
	ETA     float64
	// Workers is the point-worker pool size; Utilization is the
	// fraction of worker-seconds spent inside point execution.
	Workers     int
	Utilization float64
	// SkippedCells counts cells a resumed run restored from its
	// checkpoint instead of re-simulating; SpilledShards counts shard
	// files committed to the checkpoint directory; CheckpointedCells
	// counts cells recorded durable in the checkpoint file. All three
	// stay zero outside checkpointed (sweepexec) runs.
	SkippedCells      int
	SpilledShards     int
	CheckpointedCells int
	// Done marks the final snapshot.
	Done bool
}

// String renders the snapshot as the single status line the -progress
// CLI flag shows.
func (p SweepProgress) String() string {
	s := fmt.Sprintf("cells %d/%d points %d/%d | %s events",
		p.DoneCells, p.TotalCells, p.DonePoints, p.TotalPoints, fmtCount(p.Events))
	if p.EventsPerSec > 0 {
		s += fmt.Sprintf(" | %s ev/s", fmtCount(int64(p.EventsPerSec)))
	}
	if p.Workers > 0 {
		s += fmt.Sprintf(" | %d workers %d%% busy", p.Workers, int(p.Utilization*100+0.5))
	}
	if p.SkippedCells > 0 {
		s += fmt.Sprintf(" | %d resumed", p.SkippedCells)
	}
	if p.SpilledShards > 0 || p.CheckpointedCells > 0 {
		s += fmt.Sprintf(" | ckpt %d cells/%d shards", p.CheckpointedCells, p.SpilledShards)
	}
	if p.Done {
		s += fmt.Sprintf(" | done in %s", fmtSeconds(p.Elapsed))
	} else if p.ETA > 0 {
		s += fmt.Sprintf(" | ETA %s", fmtSeconds(p.ETA))
	}
	return s
}

// fmtCount renders a count with k/M/G suffixes (3 significant-ish
// digits, enough for a status line).
func fmtCount(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// fmtSeconds renders a duration estimate as 12s / 3m05s / 2h04m.
func fmtSeconds(s float64) string {
	if s < 0 {
		s = 0
	}
	d := time.Duration(s * float64(time.Second)).Round(time.Second)
	h := int(d.Hours())
	m := int(d.Minutes()) % 60
	sec := int(d.Seconds()) % 60
	switch {
	case h > 0:
		return fmt.Sprintf("%dh%02dm", h, m)
	case m > 0:
		return fmt.Sprintf("%dm%02ds", m, sec)
	default:
		return fmt.Sprintf("%ds", sec)
	}
}

// Tracker drives an Observe's Progress callback: atomic tallies fed
// from worker goroutines plus one reporter goroutine that snapshots
// them on a ticker. All methods are nil-receiver safe so execution
// code never branches on whether observation is attached.
type Tracker struct {
	ob          *Observe
	start       time.Time
	totalPoints int
	totalCells  int
	workers     int
	doneCells   atomic.Int64
	donePoints  atomic.Int64
	events      atomic.Int64
	busyNanos   atomic.Int64
	skipped     atomic.Int64
	spills      atomic.Int64
	ckptCells   atomic.Int64
	// inflight[w] holds worker w's current point-start time in unix
	// nanos (0 = idle), so utilization counts in-progress work too.
	inflight []atomic.Int64
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewTracker starts the reporter, or returns nil (a valid no-op
// Tracker) when ob carries no Progress callback.
func NewTracker(ob *Observe, totalPoints, totalCells, workers int) *Tracker {
	if ob == nil || ob.Progress == nil {
		return nil
	}
	tr := &Tracker{
		ob:          ob,
		start:       time.Now(),
		totalPoints: totalPoints,
		totalCells:  totalCells,
		workers:     workers,
		inflight:    make([]atomic.Int64, workers),
		stop:        make(chan struct{}),
	}
	tr.wg.Add(1)
	go tr.loop()
	return tr
}

func (tr *Tracker) loop() {
	defer tr.wg.Done()
	iv := tr.ob.Interval
	if iv <= 0 {
		iv = 200 * time.Millisecond
	}
	tick := time.NewTicker(iv)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			tr.ob.Progress(tr.snapshot(false))
		case <-tr.stop:
			return
		}
	}
}

// Cell records one finished replication and its engine event count.
func (tr *Tracker) Cell(events int64) {
	if tr == nil {
		return
	}
	tr.doneCells.Add(1)
	tr.events.Add(events)
}

// PointStart / PointEnd bracket worker w's execution of one point.
func (tr *Tracker) PointStart(w int) {
	if tr == nil {
		return
	}
	tr.inflight[w].Store(time.Now().UnixNano())
}

func (tr *Tracker) PointEnd(w int) {
	if tr == nil {
		return
	}
	if t0 := tr.inflight[w].Swap(0); t0 != 0 {
		tr.busyNanos.Add(time.Now().UnixNano() - t0)
	}
	tr.donePoints.Add(1)
}

// SkipCells records n cells restored from a checkpoint (a resumed
// run's already-complete work) rather than simulated.
func (tr *Tracker) SkipCells(n int) {
	if tr == nil {
		return
	}
	tr.skipped.Add(int64(n))
}

// Spill records one shard file committed to the checkpoint directory.
func (tr *Tracker) Spill() {
	if tr == nil {
		return
	}
	tr.spills.Add(1)
}

// Checkpointed records the cumulative cell count the checkpoint file
// currently covers.
func (tr *Tracker) Checkpointed(cells int) {
	if tr == nil {
		return
	}
	tr.ckptCells.Store(int64(cells))
}

// Finish stops the reporter and delivers the final Done snapshot.
func (tr *Tracker) Finish() {
	if tr == nil {
		return
	}
	close(tr.stop)
	tr.wg.Wait()
	tr.ob.Progress(tr.snapshot(true))
}

func (tr *Tracker) snapshot(done bool) SweepProgress {
	elapsed := time.Since(tr.start).Seconds()
	cells := int(tr.doneCells.Load())
	p := SweepProgress{
		DoneCells:   cells,
		TotalCells:  tr.totalCells,
		DonePoints:  int(tr.donePoints.Load()),
		TotalPoints: tr.totalPoints,
		Events:      tr.events.Load(),
		Elapsed:     elapsed,
		Workers:     tr.workers,
		Done:        done,

		SkippedCells:      int(tr.skipped.Load()),
		SpilledShards:     int(tr.spills.Load()),
		CheckpointedCells: int(tr.ckptCells.Load()),
	}
	if elapsed > 0 {
		p.EventsPerSec = float64(p.Events) / elapsed
		busy := tr.busyNanos.Load()
		now := time.Now().UnixNano()
		for w := range tr.inflight {
			if t0 := tr.inflight[w].Load(); t0 != 0 && now > t0 {
				busy += now - t0
			}
		}
		util := float64(busy) / (float64(tr.workers) * elapsed * float64(time.Second))
		if util > 1 {
			util = 1
		}
		p.Utilization = util
	}
	if !done && cells > 0 && cells < tr.totalCells {
		p.ETA = elapsed / float64(cells) * float64(tr.totalCells-cells)
	}
	return p
}
