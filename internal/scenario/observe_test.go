package scenario

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"mlfair/internal/netsim"
)

func observeSweep(workers int) *Sweep {
	base := sweepBase()
	base.Replications.Workers = workers
	return &Sweep{
		Base:    base,
		Axes:    []Axis{{Field: "defaultLink.loss", Values: []any{0.01, 0.05}}},
		Outputs: []string{"goodput", "best_rate"},
	}
}

// TestRunSweepObservedBitIdentical: attaching stats + progress changes
// no output byte relative to the plain path, for any worker count —
// the observability layer is pure measurement.
func TestRunSweepObservedBitIdentical(t *testing.T) {
	render := func(res *SweepResult) string {
		var csv, js bytes.Buffer
		if err := res.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return csv.String() + js.String()
	}
	plain, err := RunSweep(observeSweep(1))
	if err != nil {
		t.Fatal(err)
	}
	want := render(plain)
	for _, workers := range []int{1, 3} {
		ob := &Observe{
			Stats:    &netsim.EngineStats{},
			Progress: func(SweepProgress) {},
			Interval: time.Millisecond,
		}
		res, err := RunSweepObserved(observeSweep(workers), ob)
		if err != nil {
			t.Fatal(err)
		}
		if got := render(res); got != want {
			t.Fatalf("observed sweep (workers=%d) differs from plain run:\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, want)
		}
	}
}

// TestRunSweepObservedProgressAndStats: the final snapshot accounts
// for every cell and point, and the shared stats sink saw exactly the
// sweep's runs and events.
func TestRunSweepObservedProgressAndStats(t *testing.T) {
	var mu sync.Mutex
	var snaps []SweepProgress
	st := &netsim.EngineStats{}
	ob := &Observe{
		Stats: st,
		Progress: func(p SweepProgress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		},
		Interval: time.Millisecond,
	}
	if _, err := RunSweepObserved(observeSweep(2), ob); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	final := snaps[len(snaps)-1]
	if !final.Done {
		t.Fatalf("last snapshot not Done: %+v", final)
	}
	// 2 points x 3 replications.
	if final.TotalCells != 6 || final.DoneCells != 6 {
		t.Fatalf("cells = %d/%d, want 6/6", final.DoneCells, final.TotalCells)
	}
	if final.TotalPoints != 2 || final.DonePoints != 2 {
		t.Fatalf("points = %d/%d, want 2/2", final.DonePoints, final.TotalPoints)
	}
	if final.ETA != 0 {
		t.Fatalf("final ETA = %v, want 0", final.ETA)
	}
	if st.Runs.Load() != 6 {
		t.Fatalf("stats runs = %d, want 6", st.Runs.Load())
	}
	if final.Events != st.Events.Load() || final.Events <= 0 {
		t.Fatalf("progress events = %d, stats events = %d", final.Events, st.Events.Load())
	}
	for _, p := range snaps[:len(snaps)-1] {
		if p.Done {
			t.Fatal("Done snapshot delivered before the final one")
		}
		if p.DoneCells > p.TotalCells || p.DonePoints > p.TotalPoints {
			t.Fatalf("overcounted snapshot %+v", p)
		}
	}
}

// TestRunObservedSingleScenario: a plain scenario run reports as a
// one-point sweep and feeds the same stats sink.
func TestRunObservedSingleScenario(t *testing.T) {
	spec := sweepBase()
	var mu sync.Mutex
	var final SweepProgress
	st := &netsim.EngineStats{}
	ob := &Observe{
		Stats: st,
		Progress: func(p SweepProgress) {
			mu.Lock()
			if p.Done {
				final = p
			}
			mu.Unlock()
		},
	}
	res, err := RunObserved(&spec, ob)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Simulated {
		t.Fatal("scenario did not simulate")
	}
	if !final.Done || final.DoneCells != 3 || final.TotalCells != 3 || final.TotalPoints != 1 {
		t.Fatalf("final snapshot = %+v", final)
	}
	if st.Runs.Load() != 3 {
		t.Fatalf("stats runs = %d, want 3", st.Runs.Load())
	}
}

func TestSweepProgressString(t *testing.T) {
	p := SweepProgress{
		DoneCells: 4, TotalCells: 20, DonePoints: 1, TotalPoints: 5,
		Events: 1_250_000, EventsPerSec: 500_000,
		Elapsed: 2.5, ETA: 10, Workers: 4, Utilization: 0.87,
	}
	s := p.String()
	for _, want := range []string{"cells 4/20", "points 1/5", "1.25M events", "500.0k ev/s", "4 workers 87% busy", "ETA 10s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("progress line missing %q: %s", want, s)
		}
	}
	p.Done, p.ETA = true, 0
	p.Elapsed = 125
	if s := p.String(); !strings.Contains(s, "done in 2m05s") {
		t.Fatalf("done line = %s", s)
	}
}

func TestFmtHelpers(t *testing.T) {
	cases := map[int64]string{999: "999", 1500: "1.5k", 2_500_000: "2.50M", 3_000_000_000: "3.00G"}
	for n, want := range cases {
		if got := fmtCount(n); got != want {
			t.Fatalf("fmtCount(%d) = %q, want %q", n, got, want)
		}
	}
	secs := map[float64]string{5: "5s", 65: "1m05s", 3700: "1h01m", -2: "0s"}
	for s, want := range secs {
		if got := fmtSeconds(s); got != want {
			t.Fatalf("fmtSeconds(%v) = %q, want %q", s, got, want)
		}
	}
}
