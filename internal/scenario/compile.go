package scenario

import (
	"fmt"
	"math"
	"math/rand/v2"

	"mlfair/internal/netmodel"
	"mlfair/internal/netsim"
	"mlfair/internal/routing"
	"mlfair/internal/topology"
)

// Compiled is a Spec resolved against real structures: the simulation
// network plus netsim config (when the topology is concrete), and the
// analytic benchmark network whose capacities are the links' effective
// constraints (spec capacity minus background cross-traffic for
// capacity/droptail links, the topology capacity otherwise) and whose
// sessions carry the Spec's Γ, κ and redundancy functions — the network
// the "maxmin", "fairness" and "gap" stages audit against.
type Compiled struct {
	Spec *Spec
	// Net is the simulation network (equal to Benchmark for paths).
	Net *netmodel.Network
	// Benchmark is the analytic-side network.
	Benchmark *netmodel.Network
	// Cfg is the ready netsim configuration; only valid when Simulable.
	Cfg netsim.Config
	// Simulable is false for the abstract paths topology.
	Simulable bool
}

// Topology-seed stream constants, per kind, kept stable so published
// spec files reproduce byte-identical topologies (the scale-free and
// fat-tree values predate this package: they are the experiment
// drivers' historical constants, which the largetopo golden pins).
const (
	seedScaleFree  = 0xd1b54a32d192ed03
	seedFatTree    = 0x9e6c63d0876a9a47
	seedBinaryTree = 0x94d049bb133111eb
	seedRandom     = 0xda942042e4dd58b5
)

func (s *Spec) topologySeed() uint64 {
	if s.Topology.Seed != 0 {
		return s.Topology.Seed
	}
	return s.Seed
}

func (s *Spec) topologyRNG(mix uint64) *rand.Rand {
	t := s.topologySeed()
	return rand.New(rand.NewPCG(t, t^mix))
}

// sessionSlot returns the cycled SessionSpec for network session i.
func (s *Spec) sessionSlot(i int) SessionSpec {
	if len(s.Sessions) == 0 {
		return SessionSpec{}
	}
	return s.Sessions[i%len(s.Sessions)]
}

func defInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func defFloat(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}

// sessionGamma maps a SessionSpec's Γ/κ onto netmodel values.
func sessionGamma(ss SessionSpec) (netmodel.SessionType, float64) {
	t := netmodel.MultiRate
	if ss.Type == "single" {
		t = netmodel.SingleRate
	}
	kappa := netmodel.NoRateCap
	if ss.MaxRate > 0 {
		kappa = ss.MaxRate
	}
	return t, kappa
}

// buildTopology constructs the simulation network for a concrete kind,
// or the abstract network for paths.
func (s *Spec) buildTopology() (*netmodel.Network, bool, error) {
	t := &s.Topology
	switch t.Kind {
	case "star":
		fan := t.FanoutCapacities
		n := t.Receivers
		if len(fan) > 0 {
			n = len(fan)
		}
		if n < 1 {
			return nil, false, fmt.Errorf("scenario: star needs receivers or fanoutCapacities")
		}
		g := netmodel.NewGraph(2 + n)
		g.AddLink(0, 1, defFloat(t.SharedCapacity, 1))
		receivers := make([]int, n)
		for k := 0; k < n; k++ {
			c := 1.0
			if len(fan) > 0 {
				c = fan[k]
			}
			g.AddLink(1, 2+k, c)
			receivers[k] = 2 + k
		}
		ty, kappa := sessionGamma(s.sessionSlot(0))
		sess := &netmodel.Session{Sender: 0, Receivers: receivers, Type: ty, MaxRate: kappa}
		net, err := routing.BuildNetwork(g, []*netmodel.Session{sess})
		return net, true, err
	case "chain":
		caps := t.Capacities
		if len(caps) == 0 {
			return nil, false, fmt.Errorf("scenario: chain needs capacities")
		}
		g := netmodel.NewGraph(len(caps) + 1)
		receivers := make([]int, len(caps))
		for k, c := range caps {
			g.AddLink(k, k+1, c)
			receivers[k] = k + 1
		}
		ty, kappa := sessionGamma(s.sessionSlot(0))
		sess := &netmodel.Session{Sender: 0, Receivers: receivers, Type: ty, MaxRate: kappa}
		net, err := routing.BuildNetwork(g, []*netmodel.Session{sess})
		return net, true, err
	case "binarytree":
		if t.Depth < 1 {
			return nil, false, fmt.Errorf("scenario: binarytree needs depth >= 1")
		}
		rng := s.topologyRNG(seedBinaryTree)
		capMin := defFloat(t.CapMin, 1)
		capMax := defFloat(t.CapMax, capMin)
		numNodes := 1<<(t.Depth+1) - 1
		g := netmodel.NewGraph(numNodes)
		for child := 1; child < numNodes; child++ {
			g.AddLink((child-1)/2, child, capMin+(capMax-capMin)*rng.Float64())
		}
		receivers := make([]int, 0, 1<<t.Depth)
		for n := 1<<t.Depth - 1; n < numNodes; n++ {
			receivers = append(receivers, n)
		}
		ty, kappa := sessionGamma(s.sessionSlot(0))
		sess := &netmodel.Session{Sender: 0, Receivers: receivers, Type: ty, MaxRate: kappa}
		net, err := routing.BuildNetwork(g, []*netmodel.Session{sess})
		return net, true, err
	case "tree":
		n := len(t.Parent)
		if n < 2 {
			return nil, false, fmt.Errorf("scenario: tree needs a parent array of >= 2 nodes")
		}
		if len(t.Capacities) != 0 && len(t.Capacities) != n {
			return nil, false, fmt.Errorf("scenario: tree has %d capacities for %d nodes", len(t.Capacities), n)
		}
		if len(t.ReceiverNodes) == 0 {
			return nil, false, fmt.Errorf("scenario: tree needs receiverNodes")
		}
		g := netmodel.NewGraph(n)
		for i := 1; i < n; i++ {
			if t.Parent[i] < 0 || t.Parent[i] >= i {
				return nil, false, fmt.Errorf("scenario: tree node %d has parent %d (need topological order)", i, t.Parent[i])
			}
			c := 1.0
			if len(t.Capacities) == n {
				c = t.Capacities[i]
			}
			g.AddLink(t.Parent[i], i, c)
		}
		ty, kappa := sessionGamma(s.sessionSlot(0))
		sess := &netmodel.Session{Sender: 0, Receivers: append([]int{}, t.ReceiverNodes...), Type: ty, MaxRate: kappa}
		net, err := routing.BuildNetwork(g, []*netmodel.Session{sess})
		return net, true, err
	case "mesh":
		ns := defInt(t.Sessions, 1)
		nr := defInt(t.Receivers, 1)
		g := netmodel.NewGraph(ns + 2 + ns*nr)
		left, right := ns, ns+1
		for i := 0; i < ns; i++ {
			g.AddLink(i, left, 1)
		}
		g.AddLink(left, right, defFloat(t.SharedCapacity, 1))
		sessions := make([]*netmodel.Session, ns)
		node := ns + 2
		for i := 0; i < ns; i++ {
			receivers := make([]int, nr)
			for k := 0; k < nr; k++ {
				g.AddLink(right, node, 1)
				receivers[k] = node
				node++
			}
			ty, kappa := sessionGamma(s.sessionSlot(i))
			sessions[i] = &netmodel.Session{Sender: i, Receivers: receivers, Type: ty, MaxRate: kappa}
		}
		net, err := routing.BuildNetwork(g, sessions)
		return net, true, err
	case "scalefree":
		opts := topology.ScaleFreeOptions{
			Nodes:        defInt(t.Nodes, 150),
			Attach:       defInt(t.Attach, 2),
			Sessions:     defInt(t.Sessions, 24),
			MaxReceivers: defInt(t.MaxReceivers, 8),
			CapMin:       defFloat(t.CapMin, 4),
			CapMax:       defFloat(t.CapMax, 64),
		}
		net, err := topology.ScaleFree(s.topologyRNG(seedScaleFree), opts)
		return net, true, err
	case "fattree":
		opts := topology.FatTreeOptions{
			K:            defInt(t.K, 6),
			Sessions:     defInt(t.Sessions, 24),
			MaxReceivers: defInt(t.MaxReceivers, 8),
			HostCap:      defFloat(t.HostCap, 16),
			EdgeAggCap:   defFloat(t.EdgeAggCap, 16),
			AggCoreCap:   defFloat(t.AggCoreCap, 12),
		}
		net, err := topology.FatTree(s.topologyRNG(seedFatTree), opts)
		return net, true, err
	case "random":
		def := topology.DefaultRandomOptions()
		opts := topology.RandomOptions{
			Nodes:          defInt(t.Nodes, def.Nodes),
			ExtraLinks:     defInt(t.ExtraLinks, def.ExtraLinks),
			Sessions:       defInt(t.Sessions, def.Sessions),
			MaxReceivers:   defInt(t.MaxReceivers, def.MaxReceivers),
			CapMin:         defFloat(t.CapMin, def.CapMin),
			CapMax:         defFloat(t.CapMax, def.CapMax),
			SingleRateProb: t.SingleRateProb,
			KappaProb:      t.KappaProb,
			KappaMax:       defFloat(t.KappaMax, def.KappaMax),
		}
		// RandomNetwork panics on invalid options; turn the cases a spec
		// can reach into errors.
		if opts.Nodes < 2 || opts.Sessions < 1 || opts.MaxReceivers < 1 {
			return nil, false, fmt.Errorf("scenario: random topology needs nodes >= 2, sessions >= 1, maxReceivers >= 1 (have %d/%d/%d)",
				opts.Nodes, opts.Sessions, opts.MaxReceivers)
		}
		return topology.RandomNetwork(s.topologyRNG(seedRandom), opts), true, nil
	case "paths":
		if len(t.LinkCapacities) == 0 {
			return nil, false, fmt.Errorf("scenario: paths needs linkCapacities")
		}
		if len(s.Sessions) == 0 {
			return nil, false, fmt.Errorf("scenario: paths needs explicit sessions")
		}
		b := netmodel.NewBuilder()
		for _, c := range t.LinkCapacities {
			b.AddLink(c)
		}
		for i, ss := range s.Sessions {
			if len(ss.Paths) == 0 {
				return nil, false, fmt.Errorf("scenario: paths session %d has no paths", i)
			}
			ty, kappa := sessionGamma(ss)
			si := b.AddSession(ty, kappa, len(ss.Paths))
			for k, p := range ss.Paths {
				b.SetPath(si, k, p...)
			}
			if ss.Redundancy > 1 {
				b.SetLinkRate(si, netmodel.SharedScaledMax(ss.Redundancy))
			}
		}
		net, err := b.Build()
		return net, false, err
	}
	return nil, false, fmt.Errorf("scenario: unknown topology kind %q", t.Kind)
}

// linkSpec resolves the netsim link model of link j from DefaultLink
// and overrides (later overrides win).
func (s *Spec) linkSpec(j int) (netsim.LinkSpec, error) {
	spec := LinkSpec{Kind: "perfect"}
	if s.DefaultLink != nil {
		spec = *s.DefaultLink
	}
	for _, ov := range s.Links {
		if ov.Link == j {
			spec = ov.LinkSpec
		}
	}
	return spec.toNetsim(j)
}

func (l LinkSpec) toNetsim(j int) (netsim.LinkSpec, error) {
	out := netsim.LinkSpec{
		Loss:       l.Loss,
		LayerLoss:  l.LayerLoss,
		Capacity:   l.Capacity,
		Buffer:     l.Buffer,
		Delay:      l.Delay,
		Background: l.Background,
	}
	switch l.Kind {
	case "perfect", "":
		out.Kind = netsim.Perfect
	case "bernoulli":
		out.Kind = netsim.Bernoulli
	case "capacity":
		out.Kind = netsim.Capacity
	case "droptail":
		out.Kind = netsim.DropTail
	default:
		return out, fmt.Errorf("scenario: link %d: unknown link kind %q", j, l.Kind)
	}
	return out, nil
}

// Compile resolves the Spec into networks and a netsim configuration.
func Compile(s *Spec) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	net, simulable, err := s.buildTopology()
	if err != nil {
		return nil, err
	}
	return compileBuilt(s, net, simulable)
}

// compileBuilt finishes compilation against an already-built topology —
// the seam the sweep compiler uses to share one generated network
// across every point whose topology inputs agree (the network is
// read-only to the engine, so sharing is safe across parallel points).
func compileBuilt(s *Spec, net *netmodel.Network, simulable bool) (*Compiled, error) {
	var err error
	c := &Compiled{Spec: s, Net: net, Simulable: simulable}
	for _, ov := range s.Links {
		if ov.Link < 0 || ov.Link >= net.NumLinks() {
			return nil, fmt.Errorf("scenario: link override %d out of range (topology has %d links)", ov.Link, net.NumLinks())
		}
	}
	if !simulable {
		c.Benchmark = net
		return c, nil
	}

	// netsim link models.
	specs := make([]netsim.LinkSpec, net.NumLinks())
	for j := range specs {
		if specs[j], err = s.linkSpec(j); err != nil {
			return nil, err
		}
	}
	// Session configs, cycled.
	sessCfgs := make([]netsim.SessionConfig, net.NumSessions())
	for i := range sessCfgs {
		ss := s.sessionSlot(i)
		kind, err := parseProtocol(ss.Protocol)
		if err != nil {
			return nil, err
		}
		sessCfgs[i] = netsim.SessionConfig{Protocol: kind, Layers: defInt(ss.Layers, 8)}
	}
	// Churn.
	var churn []netsim.ChurnEvent
	if s.Churn != nil {
		if s.Churn.Interval > 0 && s.Churn.Downtime > 0 && s.Churn.Horizon > 0 {
			churn = netsim.UniformChurn(net, s.Churn.Interval, s.Churn.Downtime, s.Churn.Horizon)
		}
		for _, ev := range s.Churn.Events {
			churn = append(churn, netsim.ChurnEvent{Time: ev.Time, Session: ev.Session, Receiver: ev.Receiver, Join: ev.Join})
		}
	}
	var probe *netsim.ProbeConfig
	if s.Probe != nil {
		probe = &netsim.ProbeConfig{
			Window:       s.Probe.Window,
			PacketWindow: s.Probe.PacketWindow,
			MaxSamples:   s.Probe.MaxSamples,
		}
	}
	c.Cfg = netsim.Config{
		Network:      net,
		Links:        specs,
		Sessions:     sessCfgs,
		Packets:      s.Packets,
		SignalPeriod: s.SignalPeriod,
		Churn:        churn,
		Probe:        probe,
		LeaveLatency: s.LeaveLatency,
		Seed:         s.Seed,
	}

	// Analytic benchmark: same graph and paths, effective capacities,
	// the Spec's Γ/κ/redundancy on the sessions.
	g := net.Graph()
	g2 := netmodel.NewGraph(g.NumNodes())
	for j := 0; j < g.NumLinks(); j++ {
		l := g.Link(j)
		cap_ := g.Capacity(j)
		switch specs[j].Kind {
		case netsim.Capacity, netsim.DropTail:
			if specs[j].Capacity > 0 {
				cap_ = specs[j].Capacity
			}
			cap_ = math.Max(cap_-specs[j].Background, 1e-9)
		}
		g2.AddLink(l.From, l.To, cap_)
	}
	sessions := make([]*netmodel.Session, net.NumSessions())
	paths := make([][][]int, net.NumSessions())
	for i := 0; i < net.NumSessions(); i++ {
		cp := *net.Session(i)
		ss := s.sessionSlot(i)
		// Only explicit settings override: the random generator assigns
		// its own Γ/κ mix, which empty spec fields must not wipe.
		if ss.Type != "" {
			cp.Type, _ = sessionGamma(ss)
		}
		if ss.MaxRate > 0 {
			cp.MaxRate = ss.MaxRate
		}
		if ss.Redundancy > 1 {
			cp.LinkRate = netmodel.SharedScaledMax(ss.Redundancy)
		}
		sessions[i] = &cp
		paths[i] = make([][]int, cp.NumReceivers())
		for k := range paths[i] {
			paths[i][k] = net.Path(i, k)
		}
	}
	c.Benchmark, err = netmodel.NewNetwork(g2, sessions, paths)
	if err != nil {
		return nil, fmt.Errorf("scenario: benchmark network: %w", err)
	}
	return c, nil
}
