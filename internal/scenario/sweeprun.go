package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
	"mlfair/internal/netsim"
	"mlfair/internal/results"
	"mlfair/internal/stats"
)

// BenchmarkColumns are the per-point analytic columns the Benchmark
// stage produces: the mean and minimum max-min fair receiver rate of
// the point's benchmark network, and the mean and minimum per-receiver
// fairness-gap index (simulated mean rate / fair rate, over receivers
// with a positive fair rate).
var BenchmarkColumns = []string{"fair_rate", "fair_min", "gap_mean", "gap_min"}

// SweepResult is one executed sweep: the expanded points, their
// compiled scenarios, the replication-level simulated store, and the
// per-point analytic benchmark store (nil unless Sweep.Benchmark).
type SweepResult struct {
	Sweep    *Sweep
	Points   []Point
	Compiled []*Compiled
	// Sim holds one row per (point, replication) of the selected output
	// metrics; summaries are bit-identical for any worker count and any
	// point completion order.
	Sim *results.Store
	// Bench holds one row per point of BenchmarkColumns.
	Bench *results.Store
}

// topoCacheKey captures exactly the inputs buildTopology consumes, so
// sweep points that vary only non-topology fields (loss rates, packet
// budgets, protocols, churn...) share one generated network.
func topoCacheKey(s *Spec) (string, error) {
	type sessKey struct {
		Type       string
		MaxRate    float64
		Redundancy float64
		Paths      [][]int
	}
	key := struct {
		Topology TopologySpec
		Seed     uint64
		Sessions []sessKey
	}{Topology: s.Topology, Seed: s.topologySeed()}
	for _, ss := range s.Sessions {
		key.Sessions = append(key.Sessions, sessKey{ss.Type, ss.MaxRate, ss.Redundancy, ss.Paths})
	}
	b, err := json.Marshal(key)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// CompilePoints expands the sweep and compiles every point, building
// each distinct topology exactly once (shared-topology caching).
func (sw *Sweep) CompilePoints() ([]Point, []*Compiled, error) {
	pts, err := sw.Expand()
	if err != nil {
		return nil, nil, err
	}
	x, err := NewPointExecutor(sw)
	if err != nil {
		return nil, nil, err
	}
	compiled := make([]*Compiled, len(pts))
	for i := range pts {
		c, err := x.Compile(&pts[i])
		if err != nil {
			return nil, nil, err
		}
		compiled[i] = c
	}
	return pts, compiled, nil
}

// PointExecutor compiles and executes individual sweep points — the
// shared core under both RunSweep's in-process scheduler and the
// distributed checkpoint/resume scheduler in internal/sweepexec.
// Compile shares generated topologies across points (thread-safe), and
// ExecutePoint streams one point's replication rows to a callback in
// replication order, so any scheduler layered on top inherits the
// bit-identical-output guarantee.
type PointExecutor struct {
	sw       *Sweep
	axes     []string
	outputs  []string
	bench    bool
	stats    *netsim.EngineStats
	mu       sync.Mutex
	topoMemo map[string]cachedTopo
}

type cachedTopo struct {
	net       *netmodel.Network
	simulable bool
}

// NewPointExecutor validates the sweep and prepares an executor.
func NewPointExecutor(sw *Sweep) (*PointExecutor, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	return &PointExecutor{
		sw:       sw,
		axes:     sw.AxisFields(),
		outputs:  sw.outputSet(),
		bench:    sw.Benchmark,
		topoMemo: map[string]cachedTopo{},
	}, nil
}

// SetStats attaches an engine-stats sink, injected into every
// subsequently compiled point's config.
func (x *PointExecutor) SetStats(st *netsim.EngineStats) { x.stats = st }

// Axes returns the coordinate axes (the swept field paths).
func (x *PointExecutor) Axes() []string { return append([]string(nil), x.axes...) }

// Outputs returns the per-replication metric columns.
func (x *PointExecutor) Outputs() []string { return append([]string(nil), x.outputs...) }

// Benchmark reports whether the per-point analytic benchmark stage is
// on (ExecutePoint then returns a BenchmarkColumns row).
func (x *PointExecutor) Benchmark() bool { return x.bench }

// Compile compiles one point, reusing generated topologies across
// calls with equal topology inputs. Safe for concurrent use.
func (x *PointExecutor) Compile(p *Point) (*Compiled, error) {
	key, err := topoCacheKey(p.Spec)
	if err != nil {
		return nil, err
	}
	x.mu.Lock()
	ent, ok := x.topoMemo[key]
	x.mu.Unlock()
	if !ok {
		net, simulable, err := p.Spec.buildTopology()
		if err != nil {
			return nil, fmt.Errorf("scenario: sweep point %d: %w", p.ID, err)
		}
		ent = cachedTopo{net: net, simulable: simulable}
		x.mu.Lock()
		x.topoMemo[key] = ent
		x.mu.Unlock()
	}
	c, err := compileBuilt(p.Spec, ent.net, ent.simulable)
	if err != nil {
		return nil, fmt.Errorf("scenario: sweep point %d: %w", p.ID, err)
	}
	if !c.Simulable {
		return nil, fmt.Errorf("scenario: sweep point %d: topology %q is not simulable", p.ID, p.Spec.Topology.Kind)
	}
	if x.stats != nil {
		c.Cfg.Stats = x.stats
	}
	return c, nil
}

// ExecutePoint runs point p's replications on inner parallel workers
// and hands each non-skipped replication's metric row to onCell, in
// ascending replication order on the calling goroutine (the row slice
// is reused across calls — copy to retain). skip marks replications
// whose rows are already known (a resume); nil skips nothing. Because
// every replication is a pure function of (spec, replication index),
// the rows delivered are bit-identical whether a point runs fresh, in
// parts across crashes, or with any worker count.
//
// When the sweep's Benchmark stage is on, the returned row holds the
// point's BenchmarkColumns values. The fairness-gap columns average
// simulated receiver rates over every replication, so skipped
// replications are re-simulated (their rows are simply not re-emitted);
// without the benchmark stage only missing replications run.
func (x *PointExecutor) ExecutePoint(p *Point, c *Compiled, skip []bool, inner int,
	onCell func(rep int, row []float64, events int64) error) ([]float64, error) {
	n := p.Spec.Replications.N
	if skip != nil && len(skip) != n {
		return nil, fmt.Errorf("scenario: sweep point %d: skip mask has %d slots for %d replications", p.ID, len(skip), n)
	}
	missing := 0
	for rep := 0; rep < n; rep++ {
		if skip == nil || !skip[rep] {
			missing++
		}
	}
	if missing == 0 && !x.bench {
		return nil, nil
	}

	var convEval *convergenceEval
	if missing > 0 {
		for _, o := range x.outputs {
			if isConvergenceOutput(o) {
				epochs, err := FairTimeline(c)
				if err != nil {
					return nil, fmt.Errorf("scenario: sweep point %d: fair-rate timeline: %w", p.ID, err)
				}
				convEval = &convergenceEval{epochs: epochs, eps: p.Spec.convergenceEpsilon()}
				break
			}
		}
	}
	var rateAccs [][]stats.Accumulator
	if x.bench {
		rateAccs = make([][]stats.Accumulator, c.Net.NumSessions())
		for i := range rateAccs {
			rateAccs[i] = make([]stats.Accumulator, c.Net.Session(i).NumReceivers())
		}
	}

	row := make([]float64, len(x.outputs))
	consume := func(rep int, r *netsim.Result) error {
		if rateAccs != nil {
			for i := range r.ReceiverRates {
				for k, v := range r.ReceiverRates[i] {
					rateAccs[i][k].Add(v)
				}
			}
		}
		if skip != nil && skip[rep] {
			return nil
		}
		var cs convScalars
		csDone := false
		for m, name := range x.outputs {
			if fn, ok := sweepMetrics[name]; ok {
				row[m] = fn(r)
				continue
			}
			if !csDone {
				if r.Probe == nil {
					return fmt.Errorf("scenario: sweep point %d: output %q needs probe output", p.ID, name)
				}
				if err := convEval.checkComplete(r.Probe); err != nil {
					return fmt.Errorf("scenario: sweep point %d: %w", p.ID, err)
				}
				cs = convEval.scalars(r.Probe)
				csDone = true
			}
			switch name {
			case "time_to_fair":
				row[m] = cs.TimeToFair
			case "frac_time_fair":
				row[m] = cs.FracTimeFair
			case "oscillation":
				row[m] = cs.Oscillation
			}
		}
		return onCell(rep, row, r.Events)
	}

	// The benchmark's rate accumulators consume every replication in
	// order, so the stream must cover 0..n-1 whenever the stage is on;
	// otherwise a resumed point only runs the replications it is
	// missing.
	var err error
	if x.bench || missing == n {
		err = netsim.StreamReplications(c.Cfg, n, inner, consume)
	} else {
		err = x.runSelected(c.Cfg, skip, inner, consume)
	}
	if err != nil {
		return nil, fmt.Errorf("scenario: sweep point %d: %w", p.ID, err)
	}

	var benchRow []float64
	if x.bench {
		fair, err := maxmin.Allocate(c.Benchmark)
		if err != nil {
			return nil, fmt.Errorf("scenario: sweep point %d: max-min benchmark: %w", p.ID, err)
		}
		var fairAcc stats.Accumulator
		fairMin := math.Inf(1)
		gapMin := math.Inf(1)
		var gapAcc stats.Accumulator
		for i := 0; i < c.Benchmark.NumSessions(); i++ {
			rates := fair.Alloc.SessionRates(i)
			for k, f := range rates {
				fairAcc.Add(f)
				if f < fairMin {
					fairMin = f
				}
				if f > 0 {
					gap := rateAccs[i][k].Mean() / f
					gapAcc.Add(gap)
					if gap < gapMin {
						gapMin = gap
					}
				}
			}
		}
		if math.IsInf(fairMin, 1) {
			fairMin = 0
		}
		if math.IsInf(gapMin, 1) {
			gapMin = 0
		}
		benchRow = []float64{fairAcc.Mean(), fairMin, gapAcc.Mean(), gapMin}
	}
	return benchRow, nil
}

// runSelected runs only the replications whose skip slot is false, in
// parallel up to inner workers, and consumes them in ascending
// replication order — the resume path's runner. Unlike
// StreamReplications the selected set is sparse, so results are held
// until consumption; the set is bounded by one point's replication
// count.
func (x *PointExecutor) runSelected(cfg netsim.Config, skip []bool, inner int,
	consume func(rep int, r *netsim.Result) error) error {
	var reps []int
	for rep, s := range skip {
		if !s {
			reps = append(reps, rep)
		}
	}
	if inner < 1 {
		inner = runtime.GOMAXPROCS(0)
	}
	res := make([]*netsim.Result, len(reps))
	errs := make([]error, len(reps))
	sem := make(chan struct{}, inner)
	var wg sync.WaitGroup
	for j, rep := range reps {
		wg.Add(1)
		go func(j, rep int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := cfg
			c.Seed = netsim.ReplicationSeed(cfg.Seed, rep)
			res[j], errs[j] = netsim.Run(c)
		}(j, rep)
	}
	wg.Wait()
	for j, rep := range reps {
		if errs[j] != nil {
			return errs[j]
		}
		if err := consume(rep, res[j]); err != nil {
			return err
		}
	}
	return nil
}

// RunSweep expands, compiles and executes a sweep on a parallel
// point×replication scheduler: points are dispatched to a worker pool,
// each point streams its replications through netsim.StreamReplications
// (which parallelizes the inner level), and every finished point's
// result shard merges into the shared columnar store. Because the
// store is merge-order invariant and each replication row is a pure
// function of its point spec and replication index, the returned
// stores are bit-identical for any worker split and any point
// completion order.
func RunSweep(sw *Sweep) (*SweepResult, error) {
	return RunSweepObserved(sw, nil)
}

// RunSweepObserved is RunSweep with an optional observability
// attachment: ob.Stats is injected into every point's engine config,
// and ob.Progress receives streaming SweepProgress snapshots. A nil ob
// is exactly RunSweep — results are bit-identical either way.
func RunSweepObserved(sw *Sweep, ob *Observe) (*SweepResult, error) {
	exec, err := NewPointExecutor(sw)
	if err != nil {
		return nil, err
	}
	if ob != nil && ob.Stats != nil {
		exec.SetStats(ob.Stats)
	}
	pts, err := sw.Expand()
	if err != nil {
		return nil, err
	}
	compiled := make([]*Compiled, len(pts))
	for i := range pts {
		if compiled[i], err = exec.Compile(&pts[i]); err != nil {
			return nil, err
		}
	}
	sim, err := results.New(exec.axes, exec.outputs)
	if err != nil {
		return nil, err
	}
	var bench *results.Store
	if sw.Benchmark {
		if bench, err = results.New(exec.axes, BenchmarkColumns); err != nil {
			return nil, err
		}
	}
	for i := range pts {
		if err := sim.AddPoint(pts[i].ID, pts[i].Coords, pts[i].Spec.Replications.N); err != nil {
			return nil, err
		}
		if bench != nil {
			if err := bench.AddPoint(pts[i].ID, pts[i].Coords, 1); err != nil {
				return nil, err
			}
		}
	}

	pointWorkers, inner := SweepWorkerSplit(sw.Base.Replications.Workers, len(pts))

	totalCells := 0
	for i := range pts {
		totalCells += pts[i].Spec.Replications.N
	}
	tr := NewTracker(ob, len(pts), totalCells, pointWorkers)

	var mu sync.Mutex // guards sim/bench merges and errs
	errs := make([]error, len(pts))
	failed := false
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pointWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idxCh {
				tr.PointStart(w)
				err := runSweepPoint(exec, &pts[i], compiled[i], inner, sim, bench, &mu, tr)
				tr.PointEnd(w)
				if err != nil {
					mu.Lock()
					errs[i] = err
					failed = true
					mu.Unlock()
				}
			}
		}(w)
	}
	for i := range pts {
		mu.Lock()
		stop := failed
		mu.Unlock()
		if stop {
			break
		}
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	tr.Finish()
	for _, err := range errs { // first error in point order, deterministically
		if err != nil {
			return nil, err
		}
	}
	return &SweepResult{Sweep: sw, Points: pts, Compiled: compiled, Sim: sim, Bench: bench}, nil
}

// SweepWorkerSplit divides a worker budget (0 = GOMAXPROCS) between
// point-level parallelism and the replication workers each point hands
// to its inner runner — the split both sweep schedulers use.
func SweepWorkerSplit(budget, points int) (pointWorkers, inner int) {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	pointWorkers = budget
	if pointWorkers > points {
		pointWorkers = points
	}
	if pointWorkers < 1 {
		pointWorkers = 1
	}
	inner = budget / pointWorkers
	if inner < 1 {
		inner = 1
	}
	return pointWorkers, inner
}

// runSweepPoint executes one point: replications stream into a
// single-point shard, the analytic benchmark runs once, and both merge
// into the shared stores under the lock.
func runSweepPoint(exec *PointExecutor, p *Point, c *Compiled, inner int,
	sim, bench *results.Store, mu *sync.Mutex, tr *Tracker) error {
	shard, err := results.New(exec.axes, exec.outputs)
	if err != nil {
		return err
	}
	if err := shard.AddPoint(p.ID, p.Coords, p.Spec.Replications.N); err != nil {
		return err
	}
	benchRow, err := exec.ExecutePoint(p, c, nil, inner, func(rep int, row []float64, events int64) error {
		if err := shard.Observe(p.ID, rep, row...); err != nil {
			return err
		}
		tr.Cell(events)
		return nil
	})
	if err != nil {
		return err
	}

	mu.Lock()
	defer mu.Unlock()
	if err := sim.Merge(shard); err != nil {
		return err
	}
	if bench != nil {
		if err := bench.Observe(p.ID, 0, benchRow...); err != nil {
			return err
		}
	}
	return nil
}

// Cell returns the simulated summary of one (point, output metric)
// cell — the accessor the table-rendering drivers read.
func (r *SweepResult) Cell(id int, metric string) (results.Cell, error) {
	return r.Sim.Cell(id, metric)
}

// WriteCSV renders the sweep as one deterministic CSV table: the
// simulated statistics per point, joined with the benchmark columns
// when the Benchmark stage ran (the compare output).
func (r *SweepResult) WriteCSV(w io.Writer) error {
	if r.Bench != nil {
		return results.WriteJoinedCSV(w, r.Sim, r.Bench)
	}
	return r.Sim.WriteCSV(w)
}

// WriteJSON renders the sweep as one JSON document embedding the
// simulated store and, when present, the benchmark store.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	var simBuf, benchBuf bytes.Buffer
	if err := r.Sim.WriteJSON(&simBuf); err != nil {
		return err
	}
	doc := struct {
		Name      string          `json:"name"`
		Simulated json.RawMessage `json:"simulated"`
		Benchmark json.RawMessage `json:"benchmark,omitempty"`
	}{Name: r.Sweep.Title(), Simulated: bytes.TrimRight(simBuf.Bytes(), "\n")}
	if r.Bench != nil {
		if err := r.Bench.WriteJSON(&benchBuf); err != nil {
			return err
		}
		doc.Benchmark = bytes.TrimRight(benchBuf.Bytes(), "\n")
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// RunSweepFile loads a Sweep from a JSON file, runs it, and writes the
// result table — the shared implementation behind every cmd binary's
// -sweep flag. format selects "csv" (default) or "json".
func RunSweepFile(w io.Writer, path, format string) error {
	return RunSweepFileObserved(w, path, format, nil)
}

// RunSweepFileObserved is RunSweepFile with an optional observability
// attachment (see RunSweepObserved).
func RunSweepFileObserved(w io.Writer, path, format string, ob *Observe) error {
	switch format {
	case "", "csv", "json":
	default:
		return fmt.Errorf("scenario: unknown sweep output format %q (want csv or json)", format)
	}
	sw, err := LoadSweepFile(path)
	if err != nil {
		return err
	}
	res, err := RunSweepObserved(sw, ob)
	if err != nil {
		return err
	}
	if format == "json" {
		return res.WriteJSON(w)
	}
	return res.WriteCSV(w)
}
