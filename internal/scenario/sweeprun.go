package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
	"mlfair/internal/netsim"
	"mlfair/internal/results"
	"mlfair/internal/stats"
)

// BenchmarkColumns are the per-point analytic columns the Benchmark
// stage produces: the mean and minimum max-min fair receiver rate of
// the point's benchmark network, and the mean and minimum per-receiver
// fairness-gap index (simulated mean rate / fair rate, over receivers
// with a positive fair rate).
var BenchmarkColumns = []string{"fair_rate", "fair_min", "gap_mean", "gap_min"}

// SweepResult is one executed sweep: the expanded points, their
// compiled scenarios, the replication-level simulated store, and the
// per-point analytic benchmark store (nil unless Sweep.Benchmark).
type SweepResult struct {
	Sweep    *Sweep
	Points   []Point
	Compiled []*Compiled
	// Sim holds one row per (point, replication) of the selected output
	// metrics; summaries are bit-identical for any worker count and any
	// point completion order.
	Sim *results.Store
	// Bench holds one row per point of BenchmarkColumns.
	Bench *results.Store
}

// topoCacheKey captures exactly the inputs buildTopology consumes, so
// sweep points that vary only non-topology fields (loss rates, packet
// budgets, protocols, churn...) share one generated network.
func topoCacheKey(s *Spec) (string, error) {
	type sessKey struct {
		Type       string
		MaxRate    float64
		Redundancy float64
		Paths      [][]int
	}
	key := struct {
		Topology TopologySpec
		Seed     uint64
		Sessions []sessKey
	}{Topology: s.Topology, Seed: s.topologySeed()}
	for _, ss := range s.Sessions {
		key.Sessions = append(key.Sessions, sessKey{ss.Type, ss.MaxRate, ss.Redundancy, ss.Paths})
	}
	b, err := json.Marshal(key)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// CompilePoints expands the sweep and compiles every point, building
// each distinct topology exactly once (shared-topology caching).
func (sw *Sweep) CompilePoints() ([]Point, []*Compiled, error) {
	pts, err := sw.Expand()
	if err != nil {
		return nil, nil, err
	}
	type topo struct {
		net       *netmodel.Network
		simulable bool
	}
	cache := map[string]topo{}
	compiled := make([]*Compiled, len(pts))
	for i := range pts {
		p := &pts[i]
		key, err := topoCacheKey(p.Spec)
		if err != nil {
			return nil, nil, err
		}
		ent, ok := cache[key]
		if !ok {
			net, simulable, err := p.Spec.buildTopology()
			if err != nil {
				return nil, nil, fmt.Errorf("scenario: sweep point %d: %w", p.ID, err)
			}
			ent = topo{net: net, simulable: simulable}
			cache[key] = ent
		}
		c, err := compileBuilt(p.Spec, ent.net, ent.simulable)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: sweep point %d: %w", p.ID, err)
		}
		if !c.Simulable {
			return nil, nil, fmt.Errorf("scenario: sweep point %d: topology %q is not simulable", p.ID, p.Spec.Topology.Kind)
		}
		compiled[i] = c
	}
	return pts, compiled, nil
}

// RunSweep expands, compiles and executes a sweep on a parallel
// point×replication scheduler: points are dispatched to a worker pool,
// each point streams its replications through netsim.StreamReplications
// (which parallelizes the inner level), and every finished point's
// result shard merges into the shared columnar store. Because the
// store is merge-order invariant and each replication row is a pure
// function of its point spec and replication index, the returned
// stores are bit-identical for any worker split and any point
// completion order.
func RunSweep(sw *Sweep) (*SweepResult, error) {
	return RunSweepObserved(sw, nil)
}

// RunSweepObserved is RunSweep with an optional observability
// attachment: ob.Stats is injected into every point's engine config,
// and ob.Progress receives streaming SweepProgress snapshots. A nil ob
// is exactly RunSweep — results are bit-identical either way.
func RunSweepObserved(sw *Sweep, ob *Observe) (*SweepResult, error) {
	pts, compiled, err := sw.CompilePoints()
	if err != nil {
		return nil, err
	}
	if ob != nil && ob.Stats != nil {
		for _, c := range compiled {
			c.Cfg.Stats = ob.Stats
		}
	}
	axes := make([]string, len(sw.Axes))
	for i, a := range sw.Axes {
		axes[i] = a.Field
	}
	outputs := sw.outputSet()
	sim, err := results.New(axes, outputs)
	if err != nil {
		return nil, err
	}
	var bench *results.Store
	if sw.Benchmark {
		if bench, err = results.New(axes, BenchmarkColumns); err != nil {
			return nil, err
		}
	}
	for i := range pts {
		if err := sim.AddPoint(pts[i].ID, pts[i].Coords, pts[i].Spec.Replications.N); err != nil {
			return nil, err
		}
		if bench != nil {
			if err := bench.AddPoint(pts[i].ID, pts[i].Coords, 1); err != nil {
				return nil, err
			}
		}
	}

	// Worker budget: point-level parallelism times the replication
	// workers each point hands to StreamReplications.
	budget := sw.Base.Replications.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	pointWorkers := budget
	if pointWorkers > len(pts) {
		pointWorkers = len(pts)
	}
	inner := budget / pointWorkers
	if inner < 1 {
		inner = 1
	}

	totalCells := 0
	for i := range pts {
		totalCells += pts[i].Spec.Replications.N
	}
	tr := newTracker(ob, len(pts), totalCells, pointWorkers)

	var mu sync.Mutex // guards sim/bench merges and errs
	errs := make([]error, len(pts))
	failed := false
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pointWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idxCh {
				tr.pointStart(w)
				err := runSweepPoint(&pts[i], compiled[i], inner, axes, outputs, bench != nil, sim, bench, &mu, tr)
				tr.pointEnd(w)
				if err != nil {
					mu.Lock()
					errs[i] = err
					failed = true
					mu.Unlock()
				}
			}
		}(w)
	}
	for i := range pts {
		mu.Lock()
		stop := failed
		mu.Unlock()
		if stop {
			break
		}
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	tr.finish()
	for _, err := range errs { // first error in point order, deterministically
		if err != nil {
			return nil, err
		}
	}
	return &SweepResult{Sweep: sw, Points: pts, Compiled: compiled, Sim: sim, Bench: bench}, nil
}

// runSweepPoint executes one point: replications stream into a
// single-point shard, the analytic benchmark runs once, and both merge
// into the shared stores under the lock. Convergence outputs resolve
// against the point's own fair-rate timeline, computed once per point.
func runSweepPoint(p *Point, c *Compiled, inner int, axes, outputs []string,
	wantBench bool, sim, bench *results.Store, mu *sync.Mutex, tr *tracker) error {
	n := p.Spec.Replications.N
	shard, err := results.New(axes, outputs)
	if err != nil {
		return err
	}
	if err := shard.AddPoint(p.ID, p.Coords, n); err != nil {
		return err
	}
	var convEval *convergenceEval
	for _, o := range outputs {
		if isConvergenceOutput(o) {
			epochs, err := FairTimeline(c)
			if err != nil {
				return fmt.Errorf("scenario: sweep point %d: fair-rate timeline: %w", p.ID, err)
			}
			convEval = &convergenceEval{epochs: epochs, eps: p.Spec.convergenceEpsilon()}
			break
		}
	}
	var rateAccs [][]stats.Accumulator
	if wantBench {
		rateAccs = make([][]stats.Accumulator, c.Net.NumSessions())
		for i := range rateAccs {
			rateAccs[i] = make([]stats.Accumulator, c.Net.Session(i).NumReceivers())
		}
	}
	row := make([]float64, len(outputs))
	err = netsim.StreamReplications(c.Cfg, n, inner, func(rep int, r *netsim.Result) error {
		var cs convScalars
		csDone := false
		for m, name := range outputs {
			if fn, ok := sweepMetrics[name]; ok {
				row[m] = fn(r)
				continue
			}
			if !csDone {
				if r.Probe == nil {
					return fmt.Errorf("scenario: sweep point %d: output %q needs probe output", p.ID, name)
				}
				if err := convEval.checkComplete(r.Probe); err != nil {
					return fmt.Errorf("scenario: sweep point %d: %w", p.ID, err)
				}
				cs = convEval.scalars(r.Probe)
				csDone = true
			}
			switch name {
			case "time_to_fair":
				row[m] = cs.TimeToFair
			case "frac_time_fair":
				row[m] = cs.FracTimeFair
			case "oscillation":
				row[m] = cs.Oscillation
			}
		}
		if err := shard.Observe(p.ID, rep, row...); err != nil {
			return err
		}
		if rateAccs != nil {
			for i := range r.ReceiverRates {
				for k, v := range r.ReceiverRates[i] {
					rateAccs[i][k].Add(v)
				}
			}
		}
		tr.cell(r.Events)
		return nil
	})
	if err != nil {
		return fmt.Errorf("scenario: sweep point %d: %w", p.ID, err)
	}

	var benchRow []float64
	if wantBench {
		fair, err := maxmin.Allocate(c.Benchmark)
		if err != nil {
			return fmt.Errorf("scenario: sweep point %d: max-min benchmark: %w", p.ID, err)
		}
		var fairAcc stats.Accumulator
		fairMin := math.Inf(1)
		gapMin := math.Inf(1)
		var gapAcc stats.Accumulator
		for i := 0; i < c.Benchmark.NumSessions(); i++ {
			rates := fair.Alloc.SessionRates(i)
			for k, f := range rates {
				fairAcc.Add(f)
				if f < fairMin {
					fairMin = f
				}
				if f > 0 {
					gap := rateAccs[i][k].Mean() / f
					gapAcc.Add(gap)
					if gap < gapMin {
						gapMin = gap
					}
				}
			}
		}
		if math.IsInf(fairMin, 1) {
			fairMin = 0
		}
		if math.IsInf(gapMin, 1) {
			gapMin = 0
		}
		benchRow = []float64{fairAcc.Mean(), fairMin, gapAcc.Mean(), gapMin}
	}

	mu.Lock()
	defer mu.Unlock()
	if err := sim.Merge(shard); err != nil {
		return err
	}
	if wantBench {
		if err := bench.Observe(p.ID, 0, benchRow...); err != nil {
			return err
		}
	}
	return nil
}

// Cell returns the simulated summary of one (point, output metric)
// cell — the accessor the table-rendering drivers read.
func (r *SweepResult) Cell(id int, metric string) (results.Cell, error) {
	return r.Sim.Cell(id, metric)
}

// WriteCSV renders the sweep as one deterministic CSV table: the
// simulated statistics per point, joined with the benchmark columns
// when the Benchmark stage ran (the compare output).
func (r *SweepResult) WriteCSV(w io.Writer) error {
	if r.Bench != nil {
		return results.WriteJoinedCSV(w, r.Sim, r.Bench)
	}
	return r.Sim.WriteCSV(w)
}

// WriteJSON renders the sweep as one JSON document embedding the
// simulated store and, when present, the benchmark store.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	var simBuf, benchBuf bytes.Buffer
	if err := r.Sim.WriteJSON(&simBuf); err != nil {
		return err
	}
	doc := struct {
		Name      string          `json:"name"`
		Simulated json.RawMessage `json:"simulated"`
		Benchmark json.RawMessage `json:"benchmark,omitempty"`
	}{Name: r.Sweep.Title(), Simulated: bytes.TrimRight(simBuf.Bytes(), "\n")}
	if r.Bench != nil {
		if err := r.Bench.WriteJSON(&benchBuf); err != nil {
			return err
		}
		doc.Benchmark = bytes.TrimRight(benchBuf.Bytes(), "\n")
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// RunSweepFile loads a Sweep from a JSON file, runs it, and writes the
// result table — the shared implementation behind every cmd binary's
// -sweep flag. format selects "csv" (default) or "json".
func RunSweepFile(w io.Writer, path, format string) error {
	return RunSweepFileObserved(w, path, format, nil)
}

// RunSweepFileObserved is RunSweepFile with an optional observability
// attachment (see RunSweepObserved).
func RunSweepFileObserved(w io.Writer, path, format string, ob *Observe) error {
	switch format {
	case "", "csv", "json":
	default:
		return fmt.Errorf("scenario: unknown sweep output format %q (want csv or json)", format)
	}
	sw, err := LoadSweepFile(path)
	if err != nil {
		return err
	}
	res, err := RunSweepObserved(sw, ob)
	if err != nil {
		return err
	}
	if format == "json" {
		return res.WriteJSON(w)
	}
	return res.WriteCSV(w)
}
