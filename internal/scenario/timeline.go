package scenario

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"

	"mlfair/internal/maxmin"
	"mlfair/internal/netsim"
)

// This file is the time axis of the pipeline: the compiled churn
// schedule becomes a membership-epoch sequence, the epoch-incremental
// max-min allocator turns that into a fair-rate timeline, and the
// probe's windowed observations join against it — per-window fairness
// gaps ("timeseries") and scalar convergence metrics ("convergence").

// FairTimeline computes the epoch-incremental max-min fair allocation
// over the compiled scenario's membership schedule: one epoch at t=0
// plus one per distinct membership-change time. With LeaveLatency > 0
// a leave releases its bandwidth only when the slow-leave linger
// expires, so the benchmark removes the receiver at leave time +
// latency (a rejoin inside the linger window voids the removal) —
// joins always take effect at their own time.
func FairTimeline(c *Compiled) ([]maxmin.TimelineEpoch, error) {
	events := membershipEvents(c.Cfg.Churn, c.Spec.LeaveLatency)
	return maxmin.Timeline(c.Benchmark, events)
}

// membershipEvents maps the engine churn schedule onto benchmark
// membership events, shifting leaves by the slow-leave latency.
func membershipEvents(churn []netsim.ChurnEvent, leaveLatency float64) []maxmin.MembershipEvent {
	sorted := slices.Clone(churn)
	slices.SortStableFunc(sorted, func(a, b netsim.ChurnEvent) int {
		switch {
		case a.Time < b.Time:
			return -1
		case a.Time > b.Time:
			return 1
		}
		return 0
	})
	out := make([]maxmin.MembershipEvent, 0, len(sorted))
	for x, ev := range sorted {
		if ev.Join {
			out = append(out, maxmin.MembershipEvent{Time: ev.Time, Session: ev.Session, Receiver: ev.Receiver, Join: true})
			continue
		}
		fire := ev.Time + leaveLatency
		if leaveLatency > 0 {
			// A rejoin inside the linger window means the link never
			// freed the layers: the delayed removal is void.
			void := false
			for _, later := range sorted[x+1:] {
				if later.Time > fire {
					break
				}
				if later.Join && later.Session == ev.Session && later.Receiver == ev.Receiver && later.Time > ev.Time {
					void = true
					break
				}
			}
			if void {
				continue
			}
		}
		out = append(out, maxmin.MembershipEvent{Time: fire, Session: ev.Session, Receiver: ev.Receiver, Join: false})
	}
	return out
}

// epochFairRate returns the fair rate of r_{i,k} under the epoch in
// effect at time t (the latest epoch opening at or before t).
func epochFairRate(epochs []maxmin.TimelineEpoch, i, k int, t float64) float64 {
	// Epochs are few; a linear scan from the back is cheap and exact.
	for x := len(epochs) - 1; x >= 0; x-- {
		if epochs[x].Time <= t {
			return epochs[x].Rates[i][k]
		}
	}
	return epochs[0].Rates[i][k]
}

// TimeSeries is the "timeseries" stage output: the probe's observation
// windows (identical across replications — window boundaries are a
// pure function of the transmit calendar), carrying per-receiver
// replication-mean windowed goodput and subscription level joined
// against the epoch fair rate in effect at each window close.
type TimeSeries struct {
	// Times[s] / Starts[s] bound window s.
	Times  []float64
	Starts []float64
	// Rate[i][k][s] is r_{i,k}'s mean windowed goodput; Level its mean
	// subscription level; Fair the epoch fair rate at the window close;
	// Gap = Rate/Fair (0 when Fair is 0, i.e. while departed).
	Rate  [][][]float64
	Level [][][]float64
	Fair  [][][]float64
	Gap   [][][]float64
	// Reps is the replication count averaged over; Dropped the ring
	// overflow of a single replication (0 unless MaxSamples was hit).
	Reps    int
	Dropped int
}

// timeSeriesAcc accumulates windowed sums across replications.
type timeSeriesAcc struct {
	ts   *TimeSeries
	reps int
}

// add folds one replication's probe series in; the first replication
// fixes the window grid, later ones must land on it exactly.
func (a *timeSeriesAcc) add(r *netsim.Result) error {
	p := r.Probe
	if p == nil {
		return fmt.Errorf("scenario: timeseries stage ran without probe output")
	}
	n := p.NumSamples()
	if a.ts == nil {
		ts := &TimeSeries{
			Times:   slices.Clone(p.Times),
			Starts:  slices.Clone(p.Starts),
			Dropped: p.Dropped,
			Rate:    make([][][]float64, len(r.ReceiverRates)),
			Level:   make([][][]float64, len(r.ReceiverRates)),
		}
		for i := range r.ReceiverRates {
			ts.Rate[i] = make([][]float64, len(r.ReceiverRates[i]))
			ts.Level[i] = make([][]float64, len(r.ReceiverRates[i]))
			for k := range r.ReceiverRates[i] {
				ts.Rate[i][k] = make([]float64, n)
				ts.Level[i][k] = make([]float64, n)
			}
		}
		a.ts = ts
	} else if !slices.Equal(a.ts.Times, p.Times) {
		return fmt.Errorf("scenario: probe windows diverged across replications (%d vs %d samples)", len(a.ts.Times), n)
	}
	for i := range a.ts.Rate {
		for k := range a.ts.Rate[i] {
			for s := 0; s < n; s++ {
				a.ts.Rate[i][k][s] += p.ReceiverRate(i, k, s)
				a.ts.Level[i][k][s] += float64(p.Level(i, k, s))
			}
		}
	}
	a.reps++
	return nil
}

// finish divides the sums into means and joins the fair-rate timeline.
func (a *timeSeriesAcc) finish(epochs []maxmin.TimelineEpoch) *TimeSeries {
	ts := a.ts
	if ts == nil {
		return nil
	}
	ts.Reps = a.reps
	inv := 1 / float64(a.reps)
	ts.Fair = make([][][]float64, len(ts.Rate))
	ts.Gap = make([][][]float64, len(ts.Rate))
	for i := range ts.Rate {
		ts.Fair[i] = make([][]float64, len(ts.Rate[i]))
		ts.Gap[i] = make([][]float64, len(ts.Rate[i]))
		for k := range ts.Rate[i] {
			n := len(ts.Times)
			ts.Fair[i][k] = make([]float64, n)
			ts.Gap[i][k] = make([]float64, n)
			for s := 0; s < n; s++ {
				ts.Rate[i][k][s] *= inv
				ts.Level[i][k][s] *= inv
				f := epochFairRate(epochs, i, k, ts.Times[s])
				ts.Fair[i][k][s] = f
				if f > 0 {
					ts.Gap[i][k][s] = ts.Rate[i][k][s] / f
				}
			}
		}
	}
	return ts
}

// convScalars are one replication's convergence metrics, averaged over
// receivers (those with a positive fair rate in at least one window).
type convScalars struct {
	// TimeToFair is the earliest time after which every window stays
	// within ε of the epoch fair rate — 0 when fair from the start, the
	// run duration when never converged (censored).
	TimeToFair float64
	// FracTimeFair is the window-duration-weighted fraction of the run
	// spent within the ε band.
	FracTimeFair float64
	// Oscillation is the post-convergence peak-to-peak windowed-rate
	// amplitude, normalized by the mean fair rate over those windows
	// (0 with fewer than two post-convergence windows).
	Oscillation float64
}

// convergenceEval reduces one probe series against the fair-rate
// timeline.
type convergenceEval struct {
	epochs []maxmin.TimelineEpoch
	eps    float64
}

// checkComplete rejects probe series whose ring dropped the oldest
// windows: with the early transient gone, time_to_fair and
// frac_time_fair would silently read as "fair from the start". The
// convergence stage demands the whole run.
func (e *convergenceEval) checkComplete(p *netsim.ProbeSeries) error {
	if p.Dropped > 0 {
		return fmt.Errorf("scenario: convergence needs the full window series but the probe ring dropped the oldest %d windows — raise probe.maxSamples or widen the window", p.Dropped)
	}
	return nil
}

func (e *convergenceEval) scalars(p *netsim.ProbeSeries) convScalars {
	var agg convScalars
	counted := 0
	n := p.NumSamples()
	for i := 0; i < p.NumSessions(); i++ {
		for k := 0; k < p.NumReceivers(i); k++ {
			// Pass 1: last ε-violating window and the fair-time weights.
			lastBad := -1
			anyFair := false
			fairDur, totDur := 0.0, 0.0
			for s := 0; s < n; s++ {
				if p.Times[s] <= p.Starts[s] {
					continue // degenerate zero-width window: no rate defined
				}
				f := epochFairRate(e.epochs, i, k, p.Times[s])
				if f <= 0 {
					continue // departed: neither fair nor unfair
				}
				anyFair = true
				w := p.Times[s] - p.Starts[s]
				totDur += w
				rel := math.Abs(p.ReceiverRate(i, k, s)-f) / f
				if rel <= e.eps {
					fairDur += w
				} else {
					lastBad = s
				}
			}
			if !anyFair {
				continue
			}
			counted++
			var tConv float64
			switch {
			case lastBad < 0:
				tConv = 0 // inside the band from the first window
			case lastBad == n-1 || p.Times[lastBad] >= p.Times[n-1]:
				tConv = p.Times[n-1] // never converged: censor at the run end
			default:
				tConv = p.Times[lastBad]
			}
			agg.TimeToFair += tConv
			if totDur > 0 {
				agg.FracTimeFair += fairDur / totDur
			}
			// Pass 2: post-convergence oscillation amplitude.
			if lastBad < n-1 {
				lo, hi := math.Inf(1), math.Inf(-1)
				fairSum, m := 0.0, 0
				for s := lastBad + 1; s < n; s++ {
					if p.Times[s] <= p.Starts[s] {
						continue
					}
					f := epochFairRate(e.epochs, i, k, p.Times[s])
					if f <= 0 {
						continue
					}
					r := p.ReceiverRate(i, k, s)
					lo = math.Min(lo, r)
					hi = math.Max(hi, r)
					fairSum += f
					m++
				}
				if m >= 2 && fairSum > 0 {
					agg.Oscillation += (hi - lo) / (fairSum / float64(m))
				}
			}
		}
	}
	if counted > 0 {
		agg.TimeToFair /= float64(counted)
		agg.FracTimeFair /= float64(counted)
		agg.Oscillation /= float64(counted)
	}
	return agg
}

// convergenceEpsilon resolves the spec's ε band.
func (s *Spec) convergenceEpsilon() float64 {
	if s.Convergence != nil && s.Convergence.Epsilon > 0 {
		return s.Convergence.Epsilon
	}
	return DefaultConvergenceEpsilon
}

// WriteTimeseriesCSV renders the joined time series as one long-format
// CSV: a row per (window, receiver) with the replication-mean windowed
// rate and level, the epoch fair rate and the fairness gap — the
// `cmd/netsim -timeseries` output.
func (r *Result) WriteTimeseriesCSV(w io.Writer) error {
	ts := r.TimeSeries
	if ts == nil {
		return fmt.Errorf("scenario: no time series (select the %q metric and a probe)", MetricTimeseries)
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("time,window_start,session,receiver,rate_mean,level_mean,fair_rate,gap\n")
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for s := range ts.Times {
		for i := range ts.Rate {
			for k := range ts.Rate[i] {
				bw.WriteString(f(ts.Times[s]))
				bw.WriteByte(',')
				bw.WriteString(f(ts.Starts[s]))
				fmt.Fprintf(bw, ",%d,%d,", i, k)
				bw.WriteString(f(ts.Rate[i][k][s]))
				bw.WriteByte(',')
				bw.WriteString(f(ts.Level[i][k][s]))
				bw.WriteByte(',')
				bw.WriteString(f(ts.Fair[i][k][s]))
				bw.WriteByte(',')
				bw.WriteString(f(ts.Gap[i][k][s]))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}
