// Package scenario is the declarative layer over the whole pipeline:
// one Spec names a topology (generated or explicit), the sessions
// riding it (protocol kind, layer count, session type Γ, κ, redundancy
// function), the per-link loss/queue models, churn, the packet budget
// and replication plan, and the metric stages to evaluate. A Spec
// round-trips through JSON (Encode/Decode), validates, compiles to a
// netsim.Config plus an analytic benchmark network (Compile), and runs
// through a streaming replication Runner (Run) whose built-in stages
// include the paper's max-min fair benchmark ("maxmin"), the four
// Section 2.1 fairness-property audits ("fairness"), and per-receiver
// fairness-gap indices ("gap") — "simulate, then audit against the
// paper's fair allocation" as one call.
//
// The experiment drivers, the cmd binaries' shared -spec flag, and the
// examples all program against this package; docs/SCENARIOS.md is the
// format reference.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"mlfair/internal/protocol"
)

// Spec declares one scenario end to end.
type Spec struct {
	// Name is the report title; empty synthesizes one from the topology.
	Name string `json:"name,omitempty"`
	// Topology selects and parameterizes the network.
	Topology TopologySpec `json:"topology"`
	// Sessions configures the network's sessions. For generated
	// topologies the entries are cycled (session i takes Sessions[i %
	// len]); for the abstract "paths" topology each entry IS one session
	// and must carry Paths. Empty defaults to one Deterministic 8-layer
	// session spec.
	Sessions []SessionSpec `json:"sessions,omitempty"`
	// DefaultLink is the loss/queue model applied to every link not
	// overridden in Links. Nil means Perfect.
	DefaultLink *LinkSpec `json:"defaultLink,omitempty"`
	// Links overrides individual links by index (see each topology
	// kind's link-numbering contract in docs/SCENARIOS.md).
	Links []LinkOverride `json:"links,omitempty"`
	// Packets is the per-replication sender budget (required when
	// Replications.N > 0).
	Packets int `json:"packets,omitempty"`
	// SignalPeriod is the Coordinated base signal period (0 = 1.0).
	SignalPeriod float64 `json:"signalPeriod,omitempty"`
	// LeaveLatency is netsim's IGMP-style slow-leave model.
	LeaveLatency float64 `json:"leaveLatency,omitempty"`
	// Churn schedules membership changes.
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Probe turns on netsim's streaming observation windows — required
	// by the "timeseries" and "convergence" stages.
	Probe *ProbeSpec `json:"probe,omitempty"`
	// Convergence parameterizes the "convergence" stage.
	Convergence *ConvergenceSpec `json:"convergence,omitempty"`
	// Replications plans the simulation; N = 0 runs the analytic stages
	// only (no simulation), which is the only mode the abstract "paths"
	// topology supports.
	Replications ReplicationSpec `json:"replications"`
	// Seed drives everything: topology generation (unless
	// Topology.Seed overrides), and the replication seed chain.
	Seed uint64 `json:"seed"`
	// Metrics selects the report stages: "goodput", "redundancy",
	// "rates", "maxmin", "fairness", "gap", "timeseries",
	// "convergence". Empty means ["goodput", "redundancy"].
	Metrics []string `json:"metrics,omitempty"`
}

// ProbeSpec is the JSON form of netsim.ProbeConfig: windowed streaming
// observation of per-receiver throughput and subscription levels plus
// per-link utilization. Exactly one of Window (virtual time) and
// PacketWindow (sender transmissions) must be positive.
type ProbeSpec struct {
	Window       float64 `json:"window,omitempty"`
	PacketWindow int     `json:"packetWindow,omitempty"`
	// MaxSamples caps retained windows (0 = netsim's default ring).
	MaxSamples int `json:"maxSamples,omitempty"`
}

// DefaultConvergenceEpsilon is the relative fair-rate band used when
// ConvergenceSpec.Epsilon is zero: a receiver's window counts as fair
// when its rate is within 50% of its epoch fair rate (the exponential
// layer scheme quantizes achievable rates to powers of two, so bands
// much tighter than a factor of two are unreachable by construction).
const DefaultConvergenceEpsilon = 0.5

// ConvergenceSpec parameterizes the "convergence" stage.
type ConvergenceSpec struct {
	// Epsilon is the relative band around the epoch fair rate within
	// which a window counts as fair (0 = DefaultConvergenceEpsilon).
	Epsilon float64 `json:"epsilon,omitempty"`
}

// TopologySpec selects a topology generator or an explicit layout.
// Only the fields of the chosen Kind apply; Validate rejects stray ones
// lazily (unknown knobs for a kind are simply unused).
type TopologySpec struct {
	// Kind is one of: star, chain, binarytree, tree, mesh, scalefree,
	// fattree, random, paths.
	Kind string `json:"kind"`
	// Seed overrides the topology RNG seed (0 = derive from Spec.Seed).
	Seed uint64 `json:"seed,omitempty"`

	// star: Receivers fanout links of capacity 1 (or FanoutCapacities)
	// behind one shared link of SharedCapacity (default 1). Link 0 is
	// the shared link; link k+1 is receiver k's fanout.
	// mesh: Receivers receivers per session, Sessions sessions, one
	// backbone of SharedCapacity (default 1); links number senders'
	// access 0..S-1, backbone S, then receiver access links.
	Receivers        int       `json:"receivers,omitempty"`
	Sessions         int       `json:"sessions,omitempty"`
	SharedCapacity   float64   `json:"sharedCapacity,omitempty"`
	FanoutCapacities []float64 `json:"fanoutCapacities,omitempty"`

	// chain: link k (capacity Capacities[k]) leads to receiver k.
	// tree: Capacities[i] is node i's parent-link capacity (default 1).
	Capacities []float64 `json:"capacities,omitempty"`

	// binarytree: complete binary tree of Depth with receivers at the
	// leaves and uniform-random capacities in [CapMin, CapMax]
	// (defaults 1..1); node i's parent link is link i-1.
	Depth int `json:"depth,omitempty"`

	// tree: explicit rooted tree in treesim numbering — Parent[i] is
	// node i's parent (Parent[0] ignored), ReceiverNodes the receiver
	// placements; node i's parent link is link i-1.
	Parent        []int `json:"parent,omitempty"`
	ReceiverNodes []int `json:"receiverNodes,omitempty"`

	// scalefree / random: graph size and session placement.
	Nodes        int     `json:"nodes,omitempty"`
	Attach       int     `json:"attach,omitempty"`
	MaxReceivers int     `json:"maxReceivers,omitempty"`
	CapMin       float64 `json:"capMin,omitempty"`
	CapMax       float64 `json:"capMax,omitempty"`

	// fattree: arity and layer capacities.
	K          int     `json:"k,omitempty"`
	HostCap    float64 `json:"hostCap,omitempty"`
	EdgeAggCap float64 `json:"edgeAggCap,omitempty"`
	AggCoreCap float64 `json:"aggCoreCap,omitempty"`

	// random: extra chords and session-type mix.
	ExtraLinks     int     `json:"extraLinks,omitempty"`
	SingleRateProb float64 `json:"singleRateProb,omitempty"`
	KappaProb      float64 `json:"kappaProb,omitempty"`
	KappaMax       float64 `json:"kappaMax,omitempty"`

	// paths: abstract link-capacity list; sessions give their receivers'
	// data-paths explicitly (analytic stages only).
	LinkCapacities []float64 `json:"linkCapacities,omitempty"`
}

// SessionSpec configures one session (or one cycled slot).
type SessionSpec struct {
	// Protocol is coordinated, uncoordinated or deterministic
	// (case-insensitive); empty defaults to deterministic.
	Protocol string `json:"protocol,omitempty"`
	// Layers is M (default 8).
	Layers int `json:"layers,omitempty"`
	// Type is the paper's Γ for the analytic benchmark: "multi"
	// (default) or "single". Only star, chain, binarytree, tree and
	// paths topologies honor it (the large-topology generators place
	// multi-rate sessions).
	Type string `json:"type,omitempty"`
	// MaxRate is κ (0 = unbounded). Same applicability as Type.
	MaxRate float64 `json:"maxRate,omitempty"`
	// Redundancy v >= 1 applies the paper's Section 3.1 link-rate
	// function v·max on shared links of the analytic benchmark
	// (netmodel.SharedScaledMax); 0 or 1 means the efficient max.
	Redundancy float64 `json:"redundancy,omitempty"`
	// Paths lists per-receiver data-paths (paths topology only).
	Paths [][]int `json:"paths,omitempty"`
}

// LinkSpec is the JSON form of a netsim link model.
type LinkSpec struct {
	// Kind is perfect, bernoulli, capacity or droptail.
	Kind string `json:"kind"`
	// Loss is the Bernoulli drop probability.
	Loss float64 `json:"loss,omitempty"`
	// LayerLoss gives layer-dependent Bernoulli drop probabilities
	// (overrides Loss; the priority-dropping lever).
	LayerLoss []float64 `json:"layerLoss,omitempty"`
	// Capacity is the service/fluid rate (capacity, droptail); 0 uses
	// the topology's link capacity.
	Capacity float64 `json:"capacity,omitempty"`
	// Buffer is the droptail waiting room (0 = 16).
	Buffer int `json:"buffer,omitempty"`
	// Delay is the droptail propagation delay.
	Delay float64 `json:"delay,omitempty"`
	// Background is constant competing cross-traffic.
	Background float64 `json:"background,omitempty"`
}

// LinkOverride applies a LinkSpec to one link index.
type LinkOverride struct {
	Link int `json:"link"`
	LinkSpec
}

// ChurnSpec schedules membership changes: a periodic round-robin
// leave/rejoin process (Interval/Downtime/Horizon, netsim.UniformChurn)
// and/or explicit events.
type ChurnSpec struct {
	Interval float64      `json:"interval,omitempty"`
	Downtime float64      `json:"downtime,omitempty"`
	Horizon  float64      `json:"horizon,omitempty"`
	Events   []ChurnEvent `json:"events,omitempty"`
}

// ChurnEvent toggles one receiver's membership at a given time.
type ChurnEvent struct {
	Time     float64 `json:"time"`
	Session  int     `json:"session"`
	Receiver int     `json:"receiver"`
	Join     bool    `json:"join"`
}

// ReplicationSpec plans the simulation half of a run.
type ReplicationSpec struct {
	// N is the independent replication count (0 = analytic only).
	N int `json:"n"`
	// Workers bounds the replication pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// Metric stage names.
const (
	MetricGoodput    = "goodput"
	MetricRedundancy = "redundancy"
	MetricRates      = "rates"
	MetricMaxMin     = "maxmin"
	MetricFairness   = "fairness"
	MetricGap        = "gap"
	// MetricTimeseries joins the probe's windowed receiver rates and
	// levels against the epoch-incremental fair-rate timeline.
	MetricTimeseries = "timeseries"
	// MetricConvergence reduces the joined time series to scalar
	// convergence metrics (time-to-within-ε-of-fair, post-convergence
	// oscillation amplitude, fraction-of-time-fair).
	MetricConvergence = "convergence"
)

var knownMetrics = map[string]bool{
	MetricGoodput: true, MetricRedundancy: true, MetricRates: true,
	MetricMaxMin: true, MetricFairness: true, MetricGap: true,
	MetricTimeseries: true, MetricConvergence: true,
}

// DefaultMetrics is the selection used when Spec.Metrics is empty.
var DefaultMetrics = []string{MetricGoodput, MetricRedundancy}

// metricSet resolves the effective stage selection.
func (s *Spec) metricSet() map[string]bool {
	ms := s.Metrics
	if len(ms) == 0 {
		ms = DefaultMetrics
	}
	set := map[string]bool{}
	for _, m := range ms {
		set[m] = true
	}
	return set
}

var topologyKinds = map[string]bool{
	"star": true, "chain": true, "binarytree": true, "tree": true,
	"mesh": true, "scalefree": true, "fattree": true, "random": true,
	"paths": true,
}

// parseProtocol resolves a SessionSpec protocol name.
func parseProtocol(name string) (protocol.Kind, error) {
	switch name {
	case "", "deterministic", "Deterministic":
		return protocol.Deterministic, nil
	case "coordinated", "Coordinated":
		return protocol.Coordinated, nil
	case "uncoordinated", "Uncoordinated":
		return protocol.Uncoordinated, nil
	}
	return 0, fmt.Errorf("scenario: unknown protocol %q (want coordinated, uncoordinated or deterministic)", name)
}

// Validate checks the Spec's shape (everything that does not require
// building the topology; Compile finishes the job, e.g. link-override
// index ranges).
func (s *Spec) Validate() error {
	if !topologyKinds[s.Topology.Kind] {
		return fmt.Errorf("scenario: unknown topology kind %q", s.Topology.Kind)
	}
	if s.Replications.N < 0 {
		return fmt.Errorf("scenario: replications.n = %d", s.Replications.N)
	}
	if s.Replications.N > 0 {
		if s.Packets < 1 {
			return fmt.Errorf("scenario: packets = %d with %d replications", s.Packets, s.Replications.N)
		}
		if s.Topology.Kind == "paths" {
			return fmt.Errorf("scenario: the abstract paths topology supports analytic stages only (replications.n must be 0)")
		}
	}
	if s.SignalPeriod < 0 || math.IsNaN(s.SignalPeriod) || math.IsInf(s.SignalPeriod, 0) {
		return fmt.Errorf("scenario: signalPeriod = %v", s.SignalPeriod)
	}
	if s.LeaveLatency < 0 || math.IsNaN(s.LeaveLatency) || math.IsInf(s.LeaveLatency, 0) {
		return fmt.Errorf("scenario: leaveLatency = %v", s.LeaveLatency)
	}
	for _, m := range s.Metrics {
		if !knownMetrics[m] {
			return fmt.Errorf("scenario: unknown metric %q", m)
		}
	}
	if s.Probe != nil {
		p := s.Probe
		if p.Window < 0 || math.IsNaN(p.Window) || math.IsInf(p.Window, 0) {
			return fmt.Errorf("scenario: probe window = %v", p.Window)
		}
		if p.PacketWindow < 0 || p.MaxSamples < 0 {
			return fmt.Errorf("scenario: probe packetWindow = %d, maxSamples = %d", p.PacketWindow, p.MaxSamples)
		}
		if (p.Window > 0) == (p.PacketWindow > 0) {
			return fmt.Errorf("scenario: probe needs exactly one of window (%v) and packetWindow (%d) positive", p.Window, p.PacketWindow)
		}
	}
	if s.Convergence != nil {
		if e := s.Convergence.Epsilon; e < 0 || e >= 1 || math.IsNaN(e) {
			return fmt.Errorf("scenario: convergence epsilon = %v outside [0, 1)", e)
		}
	}
	sel := s.metricSet()
	if sel[MetricTimeseries] || sel[MetricConvergence] {
		if s.Probe == nil {
			return fmt.Errorf("scenario: the timeseries/convergence stages need a probe block")
		}
		if s.Replications.N < 1 {
			return fmt.Errorf("scenario: the timeseries/convergence stages need replications.n >= 1")
		}
	}
	for i, ss := range s.Sessions {
		if _, err := parseProtocol(ss.Protocol); err != nil {
			return fmt.Errorf("scenario: session %d: %w", i, err)
		}
		if ss.Layers < 0 || ss.Layers > 32 {
			return fmt.Errorf("scenario: session %d: layers = %d", i, ss.Layers)
		}
		switch ss.Type {
		case "", "multi", "single":
		default:
			return fmt.Errorf("scenario: session %d: unknown type %q (want multi or single)", i, ss.Type)
		}
		if ss.MaxRate < 0 || math.IsNaN(ss.MaxRate) {
			return fmt.Errorf("scenario: session %d: maxRate = %v", i, ss.MaxRate)
		}
		if ss.Redundancy != 0 && ss.Redundancy < 1 {
			return fmt.Errorf("scenario: session %d: redundancy %v below 1", i, ss.Redundancy)
		}
		if len(ss.Paths) > 0 && s.Topology.Kind != "paths" {
			return fmt.Errorf("scenario: session %d sets paths on topology kind %q", i, s.Topology.Kind)
		}
	}
	if s.Churn != nil {
		c := s.Churn
		if c.Interval < 0 || c.Downtime < 0 || c.Horizon < 0 {
			return fmt.Errorf("scenario: negative churn parameters %+v", *c)
		}
		for i, ev := range c.Events {
			if ev.Time < 0 || math.IsNaN(ev.Time) {
				return fmt.Errorf("scenario: churn event %d at time %v", i, ev.Time)
			}
		}
	}
	checkKind := func(where, kind string) error {
		switch kind {
		case "", "perfect", "bernoulli", "capacity", "droptail":
			return nil // empty means perfect, matching a nil DefaultLink
		}
		return fmt.Errorf("scenario: %s: unknown link kind %q", where, kind)
	}
	if s.DefaultLink != nil {
		if err := checkKind("defaultLink", s.DefaultLink.Kind); err != nil {
			return err
		}
	}
	for i, ov := range s.Links {
		if err := checkKind(fmt.Sprintf("links[%d] (link %d)", i, ov.Link), ov.Kind); err != nil {
			return err
		}
	}
	if s.Topology.Kind == "paths" && (s.DefaultLink != nil || len(s.Links) > 0) {
		return fmt.Errorf("scenario: the paths topology takes link capacities directly; defaultLink/links models are not supported")
	}
	return s.Topology.validateNumbers()
}

// validateNumbers rejects degenerate numeric topology fields up front,
// so Compile returns errors instead of panicking inside the graph
// builders on malformed -spec input.
func (t *TopologySpec) validateNumbers() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"receivers", t.Receivers}, {"sessions", t.Sessions}, {"depth", t.Depth},
		{"nodes", t.Nodes}, {"attach", t.Attach}, {"maxReceivers", t.MaxReceivers},
		{"k", t.K}, {"extraLinks", t.ExtraLinks},
	} {
		if f.v < 0 {
			return fmt.Errorf("scenario: topology %s = %d", f.name, f.v)
		}
	}
	if t.Depth > 24 {
		return fmt.Errorf("scenario: topology depth %d unreasonably large", t.Depth)
	}
	bad := func(v float64) bool { return v < 0 || math.IsNaN(v) || math.IsInf(v, 0) }
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"sharedCapacity", t.SharedCapacity}, {"capMin", t.CapMin}, {"capMax", t.CapMax},
		{"hostCap", t.HostCap}, {"edgeAggCap", t.EdgeAggCap}, {"aggCoreCap", t.AggCoreCap},
		{"kappaMax", t.KappaMax},
	} {
		if bad(f.v) {
			return fmt.Errorf("scenario: topology %s = %v", f.name, f.v)
		}
	}
	if t.CapMax != 0 && t.CapMax < t.CapMin {
		return fmt.Errorf("scenario: topology capMax %v below capMin %v", t.CapMax, t.CapMin)
	}
	for _, f := range []struct {
		name string
		v    []float64
	}{
		{"fanoutCapacities", t.FanoutCapacities}, {"capacities", t.Capacities},
		{"linkCapacities", t.LinkCapacities},
	} {
		for i, v := range f.v {
			if bad(v) {
				return fmt.Errorf("scenario: topology %s[%d] = %v", f.name, i, v)
			}
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"singleRateProb", t.SingleRateProb}, {"kappaProb", t.KappaProb},
	} {
		if bad(f.v) || f.v > 1 {
			return fmt.Errorf("scenario: topology %s = %v outside [0,1]", f.name, f.v)
		}
	}
	return nil
}

// Decode reads and validates a Spec from JSON.
func Decode(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Encode writes the Spec's canonical JSON form (two-space indented,
// trailing newline). Decode of an Encode round-trips bit-exactly, and
// Encode of a Decode is stable — the golden-test contract.
func (s *Spec) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// LoadFile reads and validates a Spec from a JSON file. Parse and
// validation errors name the offending file; JSON errors that carry a
// byte offset are reported as path:line:col.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(bytes.NewReader(data))
	if err != nil {
		return nil, locateError(path, data, err)
	}
	return s, nil
}
