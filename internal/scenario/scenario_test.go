package scenario

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlfair/internal/netsim"
)

// TestSpecRoundTrip pins the JSON contract: decode → validate → encode
// reproduces every committed spec file byte for byte (the testdata here
// and the cmd/netsim -spec corpus).
func TestSpecRoundTrip(t *testing.T) {
	var files []string
	for _, dir := range []string{"testdata", filepath.Join("..", "..", "cmd", "netsim", "testdata")} {
		fs, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, fs...)
	}
	if len(files) < 5 {
		t.Fatalf("expected a spec corpus, found %d files", len(files))
	}
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := Decode(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var out bytes.Buffer
		if err := spec.Encode(&out); err != nil {
			t.Fatalf("%s: encode: %v", path, err)
		}
		if !bytes.Equal(out.Bytes(), raw) {
			t.Errorf("%s: decode→encode not stable:\n--- file ---\n%s\n--- re-encoded ---\n%s",
				path, raw, out.String())
		}
		// Second round trip is a fixed point.
		spec2, err := Decode(&out)
		if err != nil {
			t.Fatalf("%s: second decode: %v", path, err)
		}
		var out2 bytes.Buffer
		if err := spec2.Encode(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out2.Bytes(), raw) {
			t.Errorf("%s: second round trip diverged", path)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Topology:     TopologySpec{Kind: "star", Receivers: 3},
			Packets:      100,
			Replications: ReplicationSpec{N: 1},
		}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"unknown kind", func(s *Spec) { s.Topology.Kind = "torus" }},
		{"negative reps", func(s *Spec) { s.Replications.N = -1 }},
		{"no packets", func(s *Spec) { s.Packets = 0 }},
		{"paths simulated", func(s *Spec) { s.Topology.Kind = "paths" }},
		{"bad metric", func(s *Spec) { s.Metrics = []string{"latency"} }},
		{"bad protocol", func(s *Spec) { s.Sessions = []SessionSpec{{Protocol: "tcp"}} }},
		{"bad type", func(s *Spec) { s.Sessions = []SessionSpec{{Type: "dual"}} }},
		{"redundancy below 1", func(s *Spec) { s.Sessions = []SessionSpec{{Redundancy: 0.5}} }},
		{"paths on concrete kind", func(s *Spec) { s.Sessions = []SessionSpec{{Paths: [][]int{{0}}}} }},
		{"bad link kind", func(s *Spec) { s.DefaultLink = &LinkSpec{Kind: "wormhole"} }},
		{"negative topology sessions", func(s *Spec) { s.Topology.Kind = "mesh"; s.Topology.Sessions = -1 }},
		{"negative fanout capacity", func(s *Spec) { s.Topology.FanoutCapacities = []float64{-1} }},
		{"NaN shared capacity", func(s *Spec) { s.Topology.SharedCapacity = math.NaN() }},
		{"capMax below capMin", func(s *Spec) {
			s.Topology.Kind = "binarytree"
			s.Topology.Depth = 2
			s.Topology.CapMin = 4
			s.Topology.CapMax = 2
		}},
		{"probability above 1", func(s *Spec) { s.Topology.Kind = "random"; s.Topology.SingleRateProb = 2 }},
		{"links on paths topology", func(s *Spec) {
			s.Topology = TopologySpec{Kind: "paths", LinkCapacities: []float64{1}}
			s.Replications.N = 0
			s.Sessions = []SessionSpec{{Paths: [][]int{{0}}}}
			s.DefaultLink = &LinkSpec{Kind: "capacity"}
		}},
		{"negative signal period", func(s *Spec) { s.SignalPeriod = -1 }},
		{"negative leave latency", func(s *Spec) { s.LeaveLatency = -1 }},
		{"negative churn", func(s *Spec) { s.Churn = &ChurnSpec{Interval: -1} }},
	}
	for _, c := range cases {
		s := base()
		c.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
	// An empty link kind means perfect (matching a nil DefaultLink),
	// both in validation and in the compiled config.
	s := base()
	s.DefaultLink = &LinkSpec{}
	c, err := Compile(s)
	if err != nil {
		t.Fatalf("empty link kind rejected: %v", err)
	}
	if c.Cfg.Links[0].Kind != netsim.Perfect {
		t.Fatalf("empty link kind compiled to %v", c.Cfg.Links[0].Kind)
	}
	// Degenerate generator parameters come back as errors, not panics.
	s = base()
	s.Topology = TopologySpec{Kind: "random", Nodes: 1}
	if _, err := Compile(s); err == nil {
		t.Fatal("random topology with one node accepted")
	}
}

// TestCompileStarShape pins the star contract: link 0 shared, link k+1
// receiver k's fanout, overrides applied, and the benchmark network
// using effective capacities (spec capacity minus background).
func TestCompileStarShape(t *testing.T) {
	s := &Spec{
		Topology: TopologySpec{Kind: "star", SharedCapacity: 24, FanoutCapacities: []float64{2, 8}},
		Sessions: []SessionSpec{{Protocol: "coordinated", Layers: 4, Type: "single", MaxRate: 10}},
		Links: []LinkOverride{
			{Link: 0, LinkSpec: LinkSpec{Kind: "droptail", Capacity: 20, Background: 4}},
		},
		DefaultLink:  &LinkSpec{Kind: "capacity"},
		Packets:      100,
		Replications: ReplicationSpec{N: 1},
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Net.NumLinks() != 3 || c.Net.NumSessions() != 1 {
		t.Fatalf("star shape: %d links, %d sessions", c.Net.NumLinks(), c.Net.NumSessions())
	}
	if c.Cfg.Links[0].Kind != netsim.DropTail || c.Cfg.Links[1].Kind != netsim.Capacity {
		t.Fatalf("link specs not resolved: %+v", c.Cfg.Links)
	}
	if got := c.Benchmark.Capacity(0); math.Abs(got-16) > 1e-12 {
		t.Fatalf("benchmark shared capacity %v, want 20-4=16", got)
	}
	if got := c.Benchmark.Capacity(1); got != 2 {
		t.Fatalf("benchmark fanout capacity %v, want 2", got)
	}
	bs := c.Benchmark.Session(0)
	if bs.MaxRate != 10 || bs.Type.String() != "S" {
		t.Fatalf("benchmark Γ/κ not applied: type %v κ %v", bs.Type, bs.MaxRate)
	}
	if c.Cfg.Sessions[0].Layers != 4 {
		t.Fatalf("session layers %d", c.Cfg.Sessions[0].Layers)
	}
	// Out-of-range override rejected.
	s.Links[0].Link = 99
	if _, err := Compile(s); err == nil {
		t.Fatal("out-of-range link override accepted")
	}
}

// TestRunAuditPipeline is the tentpole acceptance path in miniature:
// one spec drives simulation + max-min benchmark + fairness audits +
// per-receiver gaps, on an explicit capacity tree with a hand-checked
// fair allocation.
func TestRunAuditPipeline(t *testing.T) {
	spec, err := LoadFile(filepath.Join("testdata", "tree-audit.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Simulated {
		t.Fatal("simulation stage did not run")
	}
	// Hand computation: receiver paths bottleneck at 4, 8, 2.
	want := []float64{4, 8, 2}
	for k, w := range want {
		if got := res.FairRates[0][k]; math.Abs(got-w) > 1e-9 {
			t.Fatalf("fair rate r1,%d = %v, want %v (all: %v)", k+1, got, w, res.FairRates)
		}
	}
	if res.BenchmarkFairness == nil || !res.BenchmarkFairness.AllHold() {
		t.Fatalf("benchmark audit should hold all four properties: %+v", res.BenchmarkFairness)
	}
	if res.SimulatedFairness == nil {
		t.Fatal("simulated-rate audit missing")
	}
	for k := range want {
		gap := res.Gap[0][k]
		if gap <= 0 || gap > 1.3 {
			t.Fatalf("gap r1,%d = %v outside (0, 1.3]", k+1, gap)
		}
	}
	var b strings.Builder
	if err := res.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, wantStr := range []string{"max-min fair rate", "fairness gap", "benchmark properties", "simulated-rate properties"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("report missing %q:\n%s", wantStr, out)
		}
	}
}

// TestAnalyticOnly: the abstract paths topology runs the analytic
// stages without simulation, honoring Γ, κ and redundancy functions.
func TestAnalyticOnly(t *testing.T) {
	spec, err := LoadFile(filepath.Join("testdata", "paths-analytic.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Simulated {
		t.Fatal("analytic-only spec simulated")
	}
	if len(res.FairRates) != 2 || len(res.FairRates[0]) != 3 {
		t.Fatalf("fair rate shape wrong: %v", res.FairRates)
	}
	if res.BenchmarkFairness == nil {
		t.Fatal("benchmark audit missing")
	}
	var b strings.Builder
	if err := res.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "max-min benchmark properties") {
		t.Errorf("report missing verdicts:\n%s", b.String())
	}
	// Simulation must be explicitly rejected for abstract topologies.
	spec.Replications.N = 1
	spec.Packets = 100
	if _, err := Run(spec); err == nil {
		t.Fatal("abstract topology accepted a simulation run")
	}
}

// TestRunnerWorkerIndependence: aggregates are bit-identical for any
// worker count (the streaming runner's determinism contract).
func TestRunnerWorkerIndependence(t *testing.T) {
	base := &Spec{
		Topology:     TopologySpec{Kind: "star", Receivers: 8},
		Sessions:     []SessionSpec{{Protocol: "deterministic", Layers: 6}},
		DefaultLink:  &LinkSpec{Kind: "bernoulli", Loss: 0.03},
		Packets:      5000,
		Seed:         13,
		Replications: ReplicationSpec{N: 6, Workers: 1},
		Metrics:      []string{MetricGoodput, MetricRedundancy, MetricRates},
	}
	run := func(workers int) *Result {
		s := *base
		s.Replications.Workers = workers
		res, err := Run(&s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(3)
	if a.Goodput != b.Goodput || a.RootRedundancy != b.RootRedundancy || a.MaxLinkRedundancy != b.MaxLinkRedundancy {
		t.Fatalf("aggregates differ across worker counts:\n1: %+v\n3: %+v", a, b)
	}
	for k := range a.Rates[0] {
		if a.Rates[0][k] != b.Rates[0][k] {
			t.Fatalf("receiver %d summary differs across worker counts", k)
		}
	}
}

// TestChurnCompilation: a ChurnSpec yields both the periodic schedule
// and the explicit events in the compiled config.
func TestChurnCompilation(t *testing.T) {
	spec, err := LoadFile(filepath.Join("testdata", "star-churn.json"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Cfg.Churn) < 3 {
		t.Fatalf("churn schedule too small: %d events", len(c.Cfg.Churn))
	}
	last := c.Cfg.Churn[len(c.Cfg.Churn)-1]
	if last.Time != 10 || last.Receiver != 3 || last.Join {
		t.Fatalf("explicit churn event not appended: %+v", last)
	}
	if _, err := Run(spec); err != nil {
		t.Fatalf("churn spec run: %v", err)
	}
}
