package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadFileReportsLineAndColumn: a syntactically broken spec file
// fails with path:line:col pointing at the offending byte.
func TestLoadFileReportsLineAndColumn(t *testing.T) {
	path := writeTemp(t, "broken.json", "{\n  \"topology\": {\"kind\": \"star\"},\n  \"packets\": oops\n}\n")
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("broken spec accepted")
	}
	if want := path + ":3:15:"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q missing location %q", err, want)
	}
}

// TestLoadFileReportsTypeErrorLocation: type mismatches (well-formed
// JSON, wrong shape) also carry the file location.
func TestLoadFileReportsTypeErrorLocation(t *testing.T) {
	path := writeTemp(t, "badtype.json", "{\n  \"packets\": \"lots\"\n}\n")
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("mistyped spec accepted")
	}
	if !strings.Contains(err.Error(), path+":2:") {
		t.Fatalf("error %q missing %s:2: location", err, path)
	}
}

// TestLoadFileNamesFileOnValidationError: offset-less failures
// (validation, unknown fields) still name the offending file.
func TestLoadFileNamesFileOnValidationError(t *testing.T) {
	path := writeTemp(t, "invalid.json", "{\n  \"nonsenseField\": 1\n}\n")
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !strings.Contains(err.Error(), path+": ") {
		t.Fatalf("error %q does not name the file", err)
	}
}

// TestLoadSweepFileReportsLocation: the sweep loader shares the
// located-error contract.
func TestLoadSweepFileReportsLocation(t *testing.T) {
	path := writeTemp(t, "sweep.json", "{\n  \"axes\": [\n    nope\n  ]\n}\n")
	_, err := LoadSweepFile(path)
	if err == nil {
		t.Fatal("broken sweep accepted")
	}
	if want := path + ":3:"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q missing location %q", err, want)
	}
}

func TestLineCol(t *testing.T) {
	data := []byte("ab\ncde\nf")
	cases := []struct {
		off       int64
		line, col int
	}{{0, 1, 1}, {1, 1, 2}, {3, 2, 1}, {6, 2, 4}, {7, 3, 1}, {99, 3, 2}}
	for _, c := range cases {
		if l, col := lineCol(data, c.off); l != c.line || col != c.col {
			t.Fatalf("lineCol(%d) = %d:%d, want %d:%d", c.off, l, col, c.line, c.col)
		}
	}
}
