package results

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strconv"
)

// statColumns are the per-metric statistics a CSV row carries, in
// order. p50 is the sketch's median probe; the full sketch is in the
// JSON form.
var statColumns = []string{"mean", "ci95", "min", "max", "p50"}

func cellStats(c Cell) []float64 {
	return []float64{c.Mean, c.CI95(), c.Min, c.Max, c.Quantile(0.5)}
}

// fmtFloat renders a value with the shortest representation that
// round-trips exactly — the formatting the CSV goldens pin.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV renders the store as a deterministic CSV table: one row per
// point in canonical id order, coordinate columns first, then
// mean/ci95/min/max/p50 per metric. Bytes depend only on the store's
// logical observation set, never on merge or worker order.
func (s *Store) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, a := range s.axes {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(a)
	}
	for _, m := range s.metrics {
		for _, st := range statColumns {
			fmt.Fprintf(bw, ",%s_%s", m, st)
		}
	}
	bw.WriteByte('\n')
	for _, id := range s.ids {
		p := s.points[id]
		for i, c := range p.coords {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(c)
		}
		for _, m := range s.metrics {
			c, err := s.Cell(id, m)
			if err != nil {
				return err
			}
			for _, v := range cellStats(c) {
				bw.WriteByte(',')
				bw.WriteString(fmtFloat(v))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// jsonCell is a cell's JSON form.
type jsonCell struct {
	Metric string  `json:"metric"`
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	CI95   float64 `json:"ci95"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Sketch Sketch  `json:"sketch"`
}

type jsonPoint struct {
	ID     int        `json:"id"`
	Coords []string   `json:"coords"`
	Reps   int        `json:"reps"`
	Cells  []jsonCell `json:"cells"`
}

type jsonDoc struct {
	Axes    []string    `json:"axes"`
	Metrics []string    `json:"metrics"`
	Points  []jsonPoint `json:"points"`
}

// WriteJSON renders the store as one JSON document (two-space
// indented, trailing newline), points in canonical id order and cells
// in schema order.
func (s *Store) WriteJSON(w io.Writer) error {
	doc := jsonDoc{Axes: s.Axes(), Metrics: s.Metrics()}
	for _, id := range s.ids {
		p := s.points[id]
		jp := jsonPoint{ID: id, Coords: append([]string(nil), p.coords...), Reps: p.reps}
		for _, m := range s.metrics {
			c, err := s.Cell(id, m)
			if err != nil {
				return err
			}
			jp.Cells = append(jp.Cells, jsonCell{
				Metric: m, N: c.N, Mean: c.Mean, CI95: c.CI95(), StdDev: c.StdDev(),
				Min: c.Min, Max: c.Max, Sketch: c.Sketch(),
			})
		}
		doc.Points = append(doc.Points, jp)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJoinedCSV joins two result sets over the same sweep points —
// typically a replicated simulation store and a per-point analytic
// benchmark store — and writes one CSV: coordinates, then the full
// statistics of every sim metric, then the benchmark columns as plain
// values (their per-point means). The stores must share axes and have
// identical point sets with identical coordinates; this is the
// "compare" stage's output format.
func WriteJoinedCSV(w io.Writer, sim, bench *Store) error {
	if !slices.Equal(sim.axes, bench.axes) {
		return fmt.Errorf("results: join across different axes %v vs %v", sim.axes, bench.axes)
	}
	if !slices.Equal(sim.ids, bench.ids) {
		return fmt.Errorf("results: join across different point sets (%d vs %d points)", len(sim.ids), len(bench.ids))
	}
	bw := bufio.NewWriter(w)
	for i, a := range sim.axes {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(a)
	}
	for _, m := range sim.metrics {
		for _, st := range statColumns {
			fmt.Fprintf(bw, ",%s_%s", m, st)
		}
	}
	for _, m := range bench.metrics {
		fmt.Fprintf(bw, ",%s", m)
	}
	bw.WriteByte('\n')
	for _, id := range sim.ids {
		p, bp := sim.points[id], bench.points[id]
		if !slices.Equal(p.coords, bp.coords) {
			return fmt.Errorf("results: join point %d coordinates %v vs %v", id, p.coords, bp.coords)
		}
		for i, c := range p.coords {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(c)
		}
		for _, m := range sim.metrics {
			c, err := sim.Cell(id, m)
			if err != nil {
				return err
			}
			for _, v := range cellStats(c) {
				bw.WriteByte(',')
				bw.WriteString(fmtFloat(v))
			}
		}
		for _, m := range bench.metrics {
			c, err := bench.Cell(id, m)
			if err != nil {
				return err
			}
			bw.WriteByte(',')
			bw.WriteString(fmtFloat(c.Mean))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
