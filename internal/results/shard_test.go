package results

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"
)

// shardStore builds a small store with one fully observed point, one
// partially observed point, and one defined-but-empty point — the
// shapes a mid-sweep spill actually contains.
func shardStore(t *testing.T) *Store {
	t.Helper()
	s, err := New([]string{"loss", "layers"}, []string{"goodput", "best_rate"})
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddPoint(0, []string{"0.01", "2"}, 2))
	must(s.AddPoint(3, []string{"0.05", "4"}, 3))
	must(s.AddPoint(7, []string{"0.1", "8"}, 2))
	must(s.Observe(0, 0, 1.5, 2.25))
	must(s.Observe(0, 1, 1.25, 2.5))
	must(s.Observe(3, 2, 0.5, 0.75))
	return s
}

// encodeShard serializes a store to bytes.
func encodeShard(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteShard(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardRoundTrip: write → read reconstructs the exact logical
// store (same serialization, same CSV).
func TestShardRoundTrip(t *testing.T) {
	s := shardStore(t)
	raw := encodeShard(t, s)
	got, err := ReadShard(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeShard(t, got), raw) {
		t.Fatal("round-tripped shard serializes differently")
	}
	var a, b bytes.Buffer
	if err := s.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("CSV differs after round trip:\n%s\nvs\n%s", a.String(), b.String())
	}
	if got.SchemaHash() != s.SchemaHash() {
		t.Fatal("schema hash changed")
	}
	if got.NumObservations() != 3 {
		t.Fatalf("round trip lost observations: %d", got.NumObservations())
	}
}

// TestShardSectionsConcatenate: two sections back to back read out as
// two stores — the shard-file layout (sim section + bench section).
func TestShardSectionsConcatenate(t *testing.T) {
	s := shardStore(t)
	other, err := New([]string{"loss", "layers"}, []string{"fair_rate"})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.AddPoint(0, []string{"0.01", "2"}, 1); err != nil {
		t.Fatal(err)
	}
	if err := other.Observe(0, 0, 4.5); err != nil {
		t.Fatal(err)
	}
	raw := append(encodeShard(t, s), encodeShard(t, other)...)
	r := bytes.NewReader(raw)
	first, err := ReadShard(r)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ReadShard(r)
	if err != nil {
		t.Fatal(err)
	}
	if first.NumObservations() != 3 || second.NumObservations() != 1 {
		t.Fatalf("sections read %d/%d observations", first.NumObservations(), second.NumObservations())
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left unread", r.Len())
	}
}

// reseal recomputes a mutated shard's trailing checksum, so tests can
// prove the *structural* validations fire even when the CRC is
// consistent with the corruption.
func reseal(raw []byte) []byte {
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], crc32.ChecksumIEEE(raw[:len(raw)-4]))
	return raw
}

// TestShardRejectsCorruption: every byte-level corruption — truncation
// at any boundary, any flipped byte, a resealed schema-hash mismatch,
// duplicate records — errors, never panics, never half-merges.
func TestShardRejectsCorruption(t *testing.T) {
	raw := encodeShard(t, shardStore(t))

	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(raw); n++ {
			if _, err := ReadShard(bytes.NewReader(raw[:n])); err == nil {
				t.Fatalf("accepted %d of %d bytes", n, len(raw))
			}
		}
	})
	t.Run("flipped byte", func(t *testing.T) {
		for i := range raw {
			mut := bytes.Clone(raw)
			mut[i] ^= 0x40
			if _, err := ReadShard(bytes.NewReader(mut)); err == nil {
				t.Fatalf("accepted flipped byte %d", i)
			}
		}
	})
	t.Run("schema hash mismatch", func(t *testing.T) {
		mut := bytes.Clone(raw)
		binary.LittleEndian.PutUint64(mut[16:], binary.LittleEndian.Uint64(mut[16:])^1)
		if _, err := ReadShard(bytes.NewReader(reseal(mut))); err == nil {
			t.Fatal("accepted wrong schema hash under a valid checksum")
		}
	})
	t.Run("duplicate record", func(t *testing.T) {
		// Duplicate the final record (point 3, rep 2: 4+4+2*8 = 24
		// bytes before the checksum) and bump the record count.
		rec := raw[len(raw)-4-24 : len(raw)-4]
		mut := bytes.Clone(raw[:len(raw)-4])
		countOff := len(mut) - 3*24 - 4 // three records precede it
		binary.LittleEndian.PutUint32(mut[countOff:], 4)
		mut = append(mut, rec...)
		mut = append(mut, 0, 0, 0, 0)
		binary.LittleEndian.PutUint64(mut[8:], uint64(len(mut)))
		if _, err := ReadShard(bytes.NewReader(reseal(mut))); err == nil {
			t.Fatal("accepted duplicate (point, replication) record")
		}
	})
	t.Run("trailing garbage inside section", func(t *testing.T) {
		mut := bytes.Clone(raw[:len(raw)-4])
		mut = append(mut, 0xAB, 0xCD)
		mut = append(mut, 0, 0, 0, 0)
		binary.LittleEndian.PutUint64(mut[8:], uint64(len(mut)))
		if _, err := ReadShard(bytes.NewReader(reseal(mut))); err == nil {
			t.Fatal("accepted trailing bytes inside the section")
		}
	})
	t.Run("non-finite value", func(t *testing.T) {
		// Overwrite the first record's first metric with NaN: the store
		// rejects non-finite observations even when the CRC is resealed.
		mut := bytes.Clone(raw)
		off := len(mut) - 4 - 3*24 + 8
		binary.LittleEndian.PutUint64(mut[off:], math.Float64bits(math.NaN()))
		if _, err := ReadShard(bytes.NewReader(reseal(mut))); err == nil {
			t.Fatal("accepted NaN observation")
		}
	})
}

// FuzzReadShard: no input may panic the reader, and any accepted input
// must decode to a store whose canonical serialization round-trips.
func FuzzReadShard(f *testing.F) {
	valid := func() []byte {
		s, _ := New([]string{"a"}, []string{"m"})
		s.AddPoint(0, []string{"1"}, 1)
		s.Observe(0, 0, 2.5)
		var buf bytes.Buffer
		WriteShard(&buf, s)
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	f.Add([]byte("MLFSHRD1"))
	f.Add([]byte{})
	mut := bytes.Clone(valid)
	mut[20] ^= 0xFF
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadShard(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteShard(&buf, s); err != nil {
			t.Fatalf("accepted shard fails to re-serialize: %v", err)
		}
		again, err := ReadShard(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical re-serialization no longer reads: %v", err)
		}
		var buf2 bytes.Buffer
		if err := WriteShard(&buf2, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("canonical serialization not a fixed point")
		}
	})
}
