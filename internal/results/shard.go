package results

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"slices"
)

// The binary shard format serializes a Store's logical state — schema,
// point definitions, and the observation set — so sweep workers can
// spill partial results to disk and a coordinator can re-merge them
// into a byte-identical store. One shard is one self-delimiting
// section, so several stores (e.g. a simulated store followed by its
// benchmark twin) can be concatenated in a single file.
//
// Layout (all integers little-endian):
//
//	magic      [8]byte  "MLFSHRD1"
//	length     uint64   whole-section byte count, magic through checksum
//	schemaHash uint64   SchemaHash(axes, metrics); must match the body
//	nAxes      uint32   then per axis:   len uint32 + name bytes
//	nMetrics   uint32   then per metric: len uint32 + name bytes
//	nPoints    uint32   then per point:  id uint32, reps uint32,
//	                    nAxes coordinates (len uint32 + bytes)
//	nRecords   uint32   then per record: pointID uint32, rep uint32,
//	                    nMetrics float64 bit patterns (uint64)
//	checksum   uint32   CRC-32 (IEEE) of every preceding section byte
//
// ReadShard rejects — with an error, never a panic or a silent partial
// store — truncated sections, checksum mismatches (flipped bytes),
// schema hashes that disagree with the body, duplicate point
// definitions, duplicate (point, replication) records, and any record
// referencing an undefined point or out-of-range replication.

// shardMagic identifies (and versions) the shard section format.
var shardMagic = [8]byte{'M', 'L', 'F', 'S', 'H', 'R', 'D', '1'}

// maxShardSection bounds a section's declared length, so a corrupt
// header cannot demand an absurd read.
const maxShardSection = 1 << 31

// maxShardName bounds one axis/metric/coordinate string.
const maxShardName = 1 << 20

// SchemaHash fingerprints a result schema: FNV-1a over the
// length-prefixed axis and metric names, with a domain separator
// between the two lists. Shards and sweep checkpoints embed it so a
// file produced under one schema can never silently merge into
// another.
func SchemaHash(axes, metrics []string) uint64 {
	h := fnv.New64a()
	var n [4]byte
	write := func(names []string) {
		binary.LittleEndian.PutUint32(n[:], uint32(len(names)))
		h.Write(n[:])
		for _, name := range names {
			binary.LittleEndian.PutUint32(n[:], uint32(len(name)))
			h.Write(n[:])
			io.WriteString(h, name)
		}
	}
	write(axes)
	io.WriteString(h, "|")
	write(metrics)
	return h.Sum64()
}

// SchemaHash fingerprints the store's schema (see the package-level
// SchemaHash).
func (s *Store) SchemaHash() uint64 { return SchemaHash(s.axes, s.metrics) }

// ObservedReps returns the replication indices observed so far for
// point id, ascending.
func (s *Store) ObservedReps(id int) ([]int, error) {
	p, ok := s.points[id]
	if !ok {
		return nil, fmt.Errorf("results: undefined point %d", id)
	}
	var reps []int
	for r, seen := range p.seen {
		if seen {
			reps = append(reps, r)
		}
	}
	return reps, nil
}

// Reps returns point id's replication capacity.
func (s *Store) Reps(id int) (int, error) {
	p, ok := s.points[id]
	if !ok {
		return 0, fmt.Errorf("results: undefined point %d", id)
	}
	return p.reps, nil
}

// NumObservations counts the observed (point, replication) cells.
func (s *Store) NumObservations() int {
	n := 0
	for _, p := range s.points {
		for _, seen := range p.seen {
			if seen {
				n++
			}
		}
	}
	return n
}

// WriteShard serializes the store as one binary shard section (see the
// format comment above): schema, every defined point, and every
// observed (point, replication) record, all in canonical order so the
// bytes are a pure function of the store's logical state.
func WriteShard(w io.Writer, s *Store) error {
	var buf bytes.Buffer
	buf.Write(shardMagic[:])
	putU64(&buf, 0) // length, patched below
	putU64(&buf, s.SchemaHash())
	putNames(&buf, s.axes)
	putNames(&buf, s.metrics)
	putU32(&buf, uint32(len(s.ids)))
	for _, id := range s.ids {
		p := s.points[id]
		putU32(&buf, uint32(id))
		putU32(&buf, uint32(p.reps))
		for _, c := range p.coords {
			putU32(&buf, uint32(len(c)))
			buf.WriteString(c)
		}
	}
	records := 0
	for _, p := range s.points {
		for _, seen := range p.seen {
			if seen {
				records++
			}
		}
	}
	putU32(&buf, uint32(records))
	for _, id := range s.ids {
		p := s.points[id]
		for r, seen := range p.seen {
			if !seen {
				continue
			}
			putU32(&buf, uint32(id))
			putU32(&buf, uint32(r))
			for m := range p.cols {
				putU64(&buf, math.Float64bits(p.cols[m][r]))
			}
		}
	}
	b := buf.Bytes()
	binary.LittleEndian.PutUint64(b[8:], uint64(len(b)+4)) // include checksum
	putU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadShard reads one shard section from r and reconstructs its store.
// Any deviation from the format — truncation, a flipped byte, a schema
// hash that does not match the body, duplicate points or records —
// returns an error; a successfully read shard always satisfies every
// Store invariant.
func ReadShard(r io.Reader) (*Store, error) {
	head := make([]byte, 16)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("results: shard header: %w", err)
	}
	if !bytes.Equal(head[:8], shardMagic[:]) {
		return nil, fmt.Errorf("results: bad shard magic %q", head[:8])
	}
	length := binary.LittleEndian.Uint64(head[8:])
	if length < 16+8+4 || length > maxShardSection {
		return nil, fmt.Errorf("results: shard section length %d out of range", length)
	}
	rest, err := io.ReadAll(io.LimitReader(r, int64(length-16)))
	if err != nil {
		return nil, fmt.Errorf("results: shard body: %w", err)
	}
	if uint64(len(rest)) != length-16 {
		return nil, fmt.Errorf("results: shard truncated: %d of %d body bytes", len(rest), length-16)
	}
	body, sum := rest[:len(rest)-4], binary.LittleEndian.Uint32(rest[len(rest)-4:])
	crc := crc32.ChecksumIEEE(head)
	crc = crc32.Update(crc, crc32.IEEETable, body)
	if crc != sum {
		return nil, fmt.Errorf("results: shard checksum mismatch (stored %08x, computed %08x)", sum, crc)
	}
	c := &cursor{b: body}
	schemaHash := c.u64()
	axes := c.names("axis")
	metrics := c.names("metric")
	if c.err != nil {
		return nil, c.err
	}
	if got := SchemaHash(axes, metrics); got != schemaHash {
		return nil, fmt.Errorf("results: shard schema hash %016x does not match declared %016x", got, schemaHash)
	}
	s, err := New(axes, metrics)
	if err != nil {
		return nil, fmt.Errorf("results: shard schema: %w", err)
	}
	nPoints := c.u32()
	for i := uint32(0); i < nPoints && c.err == nil; i++ {
		id := c.u32()
		reps := c.u32()
		coords := make([]string, len(axes))
		for a := range coords {
			coords[a] = c.str("coordinate")
		}
		if c.err != nil {
			break
		}
		if id > math.MaxInt32 || reps > math.MaxInt32 {
			return nil, fmt.Errorf("results: shard point %d/%d out of range", id, reps)
		}
		if err := s.AddPoint(int(id), coords, int(reps)); err != nil {
			return nil, fmt.Errorf("results: shard: %w", err)
		}
	}
	nRecords := c.u32()
	values := make([]float64, len(metrics))
	for i := uint32(0); i < nRecords && c.err == nil; i++ {
		id := c.u32()
		rep := c.u32()
		for m := range values {
			values[m] = math.Float64frombits(c.u64())
		}
		if c.err != nil {
			break
		}
		if id > math.MaxInt32 || rep > math.MaxInt32 {
			return nil, fmt.Errorf("results: shard record %d/%d out of range", id, rep)
		}
		if err := s.Observe(int(id), int(rep), values...); err != nil {
			return nil, fmt.Errorf("results: shard: %w", err)
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("results: shard has %d trailing bytes", len(body)-c.off)
	}
	return s, nil
}

// cursor is a bounds-checked little-endian reader over a shard body;
// the first overrun latches err and zeroes every later read.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) || c.off+n < c.off {
		c.err = fmt.Errorf("results: shard truncated at byte %d", c.off)
		return nil
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) str(what string) string {
	n := c.u32()
	if c.err != nil {
		return ""
	}
	if n > maxShardName {
		c.err = fmt.Errorf("results: shard %s length %d exceeds %d", what, n, maxShardName)
		return ""
	}
	return string(c.take(int(n)))
}

func (c *cursor) names(what string) []string {
	n := c.u32()
	if c.err != nil {
		return nil
	}
	if n > maxShardName {
		c.err = fmt.Errorf("results: shard %s count %d exceeds %d", what, n, maxShardName)
		return nil
	}
	names := make([]string, 0, min(int(n), 1024))
	for i := uint32(0); i < n && c.err == nil; i++ {
		names = append(names, c.str(what))
	}
	return slices.Clip(names)
}

func putU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func putU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func putNames(buf *bytes.Buffer, names []string) {
	putU32(buf, uint32(len(names)))
	for _, n := range names {
		putU32(buf, uint32(len(n)))
		buf.WriteString(n)
	}
}
