package results

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := New([]string{"loss", "protocol"}, []string{"goodput", "redundancy"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreBasics(t *testing.T) {
	s := newStore(t)
	if err := s.AddPoint(0, []string{"0.01", "Coordinated"}, 3); err != nil {
		t.Fatal(err)
	}
	for rep, v := range []float64{2, 4, 6} {
		if err := s.Observe(0, rep, v, 10*v); err != nil {
			t.Fatal(err)
		}
	}
	c, err := s.Cell(0, "goodput")
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 3 || c.Mean != 4 || c.Min != 2 || c.Max != 6 {
		t.Fatalf("cell %+v", c)
	}
	if v := c.Variance(); math.Abs(v-4) > 1e-12 {
		t.Fatalf("variance %v, want 4", v)
	}
	if q := c.Quantile(0.5); q != 4 {
		t.Fatalf("median %v", q)
	}
	sk := c.Sketch()
	if len(sk.Values) != len(SketchProbes) || sk.Values[0] != 2 || sk.Values[len(sk.Values)-1] != 6 {
		t.Fatalf("sketch %+v", sk)
	}
	r, err := s.Cell(0, "redundancy")
	if err != nil || r.Mean != 40 {
		t.Fatalf("redundancy cell %+v err %v", r, err)
	}
}

func TestStoreRejects(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := New([]string{"x"}, []string{"x"}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := New(nil, []string{"a,b"}); err == nil {
		t.Error("comma in column name accepted")
	}
	s := newStore(t)
	if err := s.AddPoint(0, []string{"only-one"}, 2); err == nil {
		t.Error("coordinate arity mismatch accepted")
	}
	if err := s.AddPoint(0, []string{"a", "b"}, 0); err == nil {
		t.Error("zero replication capacity accepted")
	}
	if err := s.AddPoint(0, []string{"a,b", "c"}, 1); err == nil {
		t.Error("comma in coordinate accepted")
	}
	if err := s.AddPoint(0, []string{"a", "b"}, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPoint(0, []string{"a", "b"}, 2); err == nil {
		t.Error("duplicate point accepted")
	}
	if err := s.Observe(1, 0, 1, 2); err == nil {
		t.Error("observe on undefined point accepted")
	}
	if err := s.Observe(0, 2, 1, 2); err == nil {
		t.Error("out-of-range replication accepted")
	}
	if err := s.Observe(0, 0, 1); err == nil {
		t.Error("value arity mismatch accepted")
	}
	if err := s.Observe(0, 0, math.NaN(), 2); err == nil {
		t.Error("NaN observation accepted")
	}
	if err := s.Observe(0, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(0, 0, 1, 2); err == nil {
		t.Error("double observation accepted")
	}
}

// buildReference builds a deterministic observation set: numPoints
// points × reps replications of two metrics, filled sequentially.
func buildReference(t *testing.T, numPoints, reps int) *Store {
	t.Helper()
	ref := newStore(t)
	for id := 0; id < numPoints; id++ {
		if err := ref.AddPoint(id, coordsOf(id), reps); err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < reps; rep++ {
			v1, v2 := valuesOf(id, rep)
			if err := ref.Observe(id, rep, v1, v2); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ref
}

func coordsOf(id int) []string {
	return []string{fmtFloat(0.01 * float64(id+1)), []string{"C", "U", "D"}[id%3]}
}

func valuesOf(id, rep int) (float64, float64) {
	// Irrational-ish values exercise the bit-identity claim harder than
	// small integers would.
	v := math.Sin(float64(id*31+rep*7)) * math.Exp(float64(rep%5))
	return v, v * math.Pi
}

func render(t *testing.T, s *Store) string {
	t.Helper()
	var csv, js bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	return csv.String() + js.String()
}

// TestMergeOrderInvariance is the store's central property test:
// splitting the observation set into shards — by point, by
// replication range, or one shard per observation — and merging them
// in any shuffled order reproduces the sequential store bit for bit
// (CSV and JSON output compared byte-wise).
func TestMergeOrderInvariance(t *testing.T) {
	const numPoints, reps = 7, 9
	ref := buildReference(t, numPoints, reps)
	want := render(t, ref)

	rng := rand.New(rand.NewPCG(42, 99))
	for round := 0; round < 20; round++ {
		// Random sharding: each point's replication range is cut into
		// 1–3 contiguous chunks, each chunk becoming its own shard.
		var shards []*Store
		for id := 0; id < numPoints; id++ {
			cuts := []int{0, reps}
			for n := rng.IntN(3); n > 0; n-- {
				cuts = append(cuts, 1+rng.IntN(reps-1))
			}
			// Deduplicate and sort the cut set.
			seen := map[int]bool{}
			var uniq []int
			for _, c := range cuts {
				if !seen[c] {
					seen[c] = true
					uniq = append(uniq, c)
				}
			}
			for i := 0; i < len(uniq); i++ {
				for j := i + 1; j < len(uniq); j++ {
					if uniq[j] < uniq[i] {
						uniq[i], uniq[j] = uniq[j], uniq[i]
					}
				}
			}
			for ci := 0; ci+1 < len(uniq); ci++ {
				lo, hi := uniq[ci], uniq[ci+1]
				sh := newStore(t)
				if err := sh.AddPoint(id, coordsOf(id), reps); err != nil {
					t.Fatal(err)
				}
				for rep := lo; rep < hi; rep++ {
					v1, v2 := valuesOf(id, rep)
					if err := sh.Observe(id, rep, v1, v2); err != nil {
						t.Fatal(err)
					}
				}
				shards = append(shards, sh)
			}
		}
		rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })

		merged := newStore(t)
		for _, sh := range shards {
			if err := merged.Merge(sh); err != nil {
				t.Fatal(err)
			}
		}
		if got := render(t, merged); got != want {
			t.Fatalf("round %d: merged output differs from sequential reference\n--- got ---\n%s\n--- want ---\n%s",
				round, got, want)
		}
	}
}

func TestMergeRejects(t *testing.T) {
	a := newStore(t)
	b, err := New([]string{"loss"}, []string{"goodput"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Error("schema mismatch merge accepted")
	}
	c := newStore(t)
	if err := a.AddPoint(0, []string{"x", "y"}, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPoint(0, []string{"x", "z"}, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Error("coordinate mismatch merge accepted")
	}
	d := newStore(t)
	if err := d.AddPoint(0, []string{"x", "y"}, 3); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(d); err == nil {
		t.Error("capacity mismatch merge accepted")
	}
	e := newStore(t)
	if err := e.AddPoint(0, []string{"x", "y"}, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(0, 1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(0, 1, 3, 4); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(e); err == nil {
		t.Error("overlapping observation merge accepted")
	}
}

func TestWriteCSVShape(t *testing.T) {
	s := buildReference(t, 2, 2)
	var b bytes.Buffer
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", len(lines), b.String())
	}
	wantHeader := "loss,protocol,goodput_mean,goodput_ci95,goodput_min,goodput_max,goodput_p50,redundancy_mean,redundancy_ci95,redundancy_min,redundancy_max,redundancy_p50"
	if lines[0] != wantHeader {
		t.Fatalf("header\n got %s\nwant %s", lines[0], wantHeader)
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != strings.Count(wantHeader, ",") {
			t.Fatalf("row arity %d vs header %d: %s", got, strings.Count(wantHeader, ","), line)
		}
	}
}

func TestWriteJoinedCSV(t *testing.T) {
	sim := buildReference(t, 3, 2)
	bench, err := New([]string{"loss", "protocol"}, []string{"fair_rate", "gap_mean"})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		if err := bench.AddPoint(id, coordsOf(id), 1); err != nil {
			t.Fatal(err)
		}
		if err := bench.Observe(id, 0, float64(id+1), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	var b bytes.Buffer
	if err := WriteJoinedCSV(&b, sim, bench); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 3 rows:\n%s", b.String())
	}
	if !strings.HasSuffix(lines[0], ",fair_rate,gap_mean") {
		t.Fatalf("joined header missing benchmark columns: %s", lines[0])
	}
	if !strings.HasSuffix(lines[2], ",2,0.5") {
		t.Fatalf("joined row 2 missing benchmark values: %s", lines[2])
	}
	// Mismatched point sets rejected.
	extra := buildReference(t, 4, 2)
	if err := WriteJoinedCSV(&b, extra, bench); err == nil {
		t.Error("joined CSV across different point sets accepted")
	}
}
