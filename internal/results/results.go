// Package results is the columnar result store behind the sweep layer:
// a fixed schema of float metric columns, keyed by sweep-point
// coordinates, filled by one observation per (point, replication) and
// summarized as mean/variance (Welford, in replication order), min/max
// and a deterministic quantile sketch.
//
// The store is mergeable, and merging is bit-identical under any merge
// order: a store's logical state is the *set* of observations indexed
// by (point id, replication index), so shards produced by concurrent
// point workers can be merged as they finish — in whatever order the
// scheduler completes them — and every summary statistic still comes
// out byte-for-byte equal to a sequential single-worker run. This
// extends the netsim runner's worker-count invariance one level up, to
// whole parameter sweeps.
package results

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Store is a columnar, mergeable result table: points (rows, keyed by
// coordinates) × metrics (columns), each cell holding one float per
// replication.
type Store struct {
	axes    []string
	metrics []string
	points  map[int]*point
	ids     []int // ascending; the canonical row order
}

type point struct {
	coords []string
	reps   int
	// cols[m][r] is metric m's observation in replication r; seen[r]
	// records whether replication r has been observed yet.
	cols [][]float64
	seen []bool
}

// New creates an empty store with the given coordinate axes and metric
// columns.
func New(axes, metrics []string) (*Store, error) {
	if len(metrics) == 0 {
		return nil, fmt.Errorf("results: no metric columns")
	}
	names := map[string]bool{}
	for _, lists := range [][]string{axes, metrics} {
		for _, n := range lists {
			if err := checkName(n); err != nil {
				return nil, err
			}
			if names[n] {
				return nil, fmt.Errorf("results: duplicate column %q", n)
			}
			names[n] = true
		}
	}
	return &Store{
		axes:    slices.Clone(axes),
		metrics: slices.Clone(metrics),
		points:  map[int]*point{},
	}, nil
}

func checkName(n string) error {
	if n == "" || strings.ContainsAny(n, ",\"\n\r") {
		return fmt.Errorf("results: bad column name %q", n)
	}
	return nil
}

// Axes returns the coordinate column names.
func (s *Store) Axes() []string { return slices.Clone(s.axes) }

// Metrics returns the metric column names.
func (s *Store) Metrics() []string { return slices.Clone(s.metrics) }

// AddPoint defines a sweep point: its row id (the canonical output
// order is ascending id, so ids carry the sweep's expansion order
// through any merge), its coordinate values, and its replication
// capacity.
func (s *Store) AddPoint(id int, coords []string, reps int) error {
	if id < 0 {
		return fmt.Errorf("results: point id %d", id)
	}
	if _, ok := s.points[id]; ok {
		return fmt.Errorf("results: point %d already defined", id)
	}
	if len(coords) != len(s.axes) {
		return fmt.Errorf("results: point %d has %d coordinates for %d axes", id, len(coords), len(s.axes))
	}
	for _, c := range coords {
		if strings.ContainsAny(c, ",\"\n\r") {
			return fmt.Errorf("results: point %d coordinate %q contains CSV metacharacters", id, c)
		}
	}
	if reps < 1 {
		return fmt.Errorf("results: point %d replication capacity %d", id, reps)
	}
	p := &point{coords: slices.Clone(coords), reps: reps, seen: make([]bool, reps)}
	p.cols = make([][]float64, len(s.metrics))
	for m := range p.cols {
		p.cols[m] = make([]float64, reps)
	}
	s.points[id] = p
	i, _ := slices.BinarySearch(s.ids, id)
	s.ids = slices.Insert(s.ids, i, id)
	return nil
}

// Observe records replication rep of point id: one value per metric
// column, in schema order. Each (point, replication) slot may be filled
// exactly once, and values must be finite — the two invariants that
// make merged stores a well-defined observation set.
func (s *Store) Observe(id, rep int, values ...float64) error {
	p, ok := s.points[id]
	if !ok {
		return fmt.Errorf("results: observe on undefined point %d", id)
	}
	if rep < 0 || rep >= p.reps {
		return fmt.Errorf("results: point %d replication %d out of range [0,%d)", id, rep, p.reps)
	}
	if p.seen[rep] {
		return fmt.Errorf("results: point %d replication %d observed twice", id, rep)
	}
	if len(values) != len(s.metrics) {
		return fmt.Errorf("results: point %d: %d values for %d metrics", id, len(values), len(s.metrics))
	}
	for m, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("results: point %d metric %q = %v", id, s.metrics[m], v)
		}
		p.cols[m][rep] = v
	}
	p.seen[rep] = true
	return nil
}

// Merge folds o into s. Schemas must match exactly; points present in
// both must agree on coordinates and capacity and must not overlap in
// observed replications. Because the merged state is the union of the
// two observation sets (and row order is the id order), any sequence of
// merges over the same shards yields a bit-identical store.
func (s *Store) Merge(o *Store) error {
	if !slices.Equal(s.axes, o.axes) || !slices.Equal(s.metrics, o.metrics) {
		return fmt.Errorf("results: merging mismatched schemas %v/%v vs %v/%v", s.axes, s.metrics, o.axes, o.metrics)
	}
	for _, id := range o.ids {
		op := o.points[id]
		p, ok := s.points[id]
		if !ok {
			if err := s.AddPoint(id, op.coords, op.reps); err != nil {
				return err
			}
			p = s.points[id]
		} else {
			if !slices.Equal(p.coords, op.coords) {
				return fmt.Errorf("results: point %d coordinates %v vs %v", id, p.coords, op.coords)
			}
			if p.reps != op.reps {
				return fmt.Errorf("results: point %d capacity %d vs %d", id, p.reps, op.reps)
			}
		}
		for r, seen := range op.seen {
			if !seen {
				continue
			}
			if p.seen[r] {
				return fmt.Errorf("results: merge observes point %d replication %d twice", id, r)
			}
			for m := range p.cols {
				p.cols[m][r] = op.cols[m][r]
			}
			p.seen[r] = true
		}
	}
	return nil
}

// Points returns the defined point ids in canonical (ascending) order.
func (s *Store) Points() []int { return slices.Clone(s.ids) }

// Coords returns point id's coordinate values.
func (s *Store) Coords(id int) ([]string, error) {
	p, ok := s.points[id]
	if !ok {
		return nil, fmt.Errorf("results: undefined point %d", id)
	}
	return slices.Clone(p.coords), nil
}

// Cell summarizes one (point, metric) column over the replications
// observed so far. All statistics are deterministic functions of the
// observation set: Welford runs in replication-index order and the
// sketch is built from exact order statistics, so a merged store
// summarizes bit-identically to a sequential one.
func (s *Store) Cell(id int, metric string) (Cell, error) {
	p, ok := s.points[id]
	if !ok {
		return Cell{}, fmt.Errorf("results: undefined point %d", id)
	}
	m := slices.Index(s.metrics, metric)
	if m < 0 {
		return Cell{}, fmt.Errorf("results: unknown metric %q", metric)
	}
	var c Cell
	for r := 0; r < p.reps; r++ {
		if !p.seen[r] {
			continue
		}
		v := p.cols[m][r]
		c.observe(v)
		c.sorted = append(c.sorted, v)
	}
	slices.Sort(c.sorted)
	return c, nil
}

// Cell is the finalized summary of one (point, metric) column.
type Cell struct {
	N        int
	Mean     float64
	m2       float64
	Min, Max float64
	sorted   []float64
}

func (c *Cell) observe(v float64) {
	if c.N == 0 {
		c.Min, c.Max = v, v
	} else {
		c.Min = math.Min(c.Min, v)
		c.Max = math.Max(c.Max, v)
	}
	c.N++
	d := v - c.Mean
	c.Mean += d / float64(c.N)
	c.m2 += d * (v - c.Mean)
}

// Variance is the unbiased sample variance (0 below two observations).
func (c Cell) Variance() float64 {
	if c.N < 2 {
		return 0
	}
	return c.m2 / float64(c.N-1)
}

// StdDev is the sample standard deviation.
func (c Cell) StdDev() float64 { return math.Sqrt(c.Variance()) }

// CI95 is the 95% normal-approximation confidence half-width of the
// mean. The operation order matches stats.Accumulator.CI95 bit for bit
// (1.96 times the standard error), so sweep cells reproduce the
// single-scenario runner's numbers exactly.
func (c Cell) CI95() float64 {
	if c.N == 0 {
		return 0
	}
	return 1.96 * (c.StdDev() / math.Sqrt(float64(c.N)))
}

// Quantile returns the nearest-rank order statistic at q in [0, 1]
// (0 with no observations).
func (c Cell) Quantile(q float64) float64 {
	if c.N == 0 {
		return 0
	}
	q = math.Min(math.Max(q, 0), 1)
	i := int(math.Ceil(q*float64(c.N))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// SketchProbes is the fixed probe grid of the quantile sketch.
var SketchProbes = []float64{0.05, 0.25, 0.5, 0.75, 0.95}

// Sketch is a small deterministic quantile sketch: the nearest-rank
// order statistics at the fixed probe grid.
type Sketch struct {
	Probes []float64 `json:"probes"`
	Values []float64 `json:"values"`
}

// Sketch summarizes the cell's distribution at SketchProbes.
func (c Cell) Sketch() Sketch {
	sk := Sketch{Probes: slices.Clone(SketchProbes), Values: make([]float64, len(SketchProbes))}
	for i, q := range sk.Probes {
		sk.Values[i] = c.Quantile(q)
	}
	return sk
}
