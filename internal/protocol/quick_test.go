package protocol

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestQuickLevelAlwaysInRange: under arbitrary event sequences every
// protocol keeps its subscription level in [1, M].
func TestQuickLevelAlwaysInRange(t *testing.T) {
	f := func(events []byte, mRaw uint8) bool {
		m := 1 + int(mRaw%8)
		rng := rand.New(rand.NewPCG(uint64(len(events)), uint64(mRaw)))
		for _, kind := range Kinds() {
			r := NewReceiver(kind, m, rng)
			for _, e := range events {
				switch e % 3 {
				case 0:
					r.OnReceive()
				case 1:
					r.OnCongestion()
				case 2:
					r.OnSignal(1 + int(e/3)%m)
				}
				if r.Level() < 1 || r.Level() > m {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCongestionNeverRaisesLevel and joins never skip levels.
func TestQuickStepSizeOne(t *testing.T) {
	f := func(events []byte, mRaw uint8) bool {
		m := 2 + int(mRaw%7)
		rng := rand.New(rand.NewPCG(uint64(len(events))+7, uint64(mRaw)))
		for _, kind := range Kinds() {
			r := NewReceiver(kind, m, rng)
			prev := r.Level()
			for _, e := range events {
				switch e % 3 {
				case 0:
					r.OnReceive()
				case 1:
					r.OnCongestion()
					if r.Level() > prev {
						return false
					}
				case 2:
					r.OnSignal(1 + int(e/3)%m)
				}
				d := r.Level() - prev
				if d > 1 || d < -1 {
					return false
				}
				prev = r.Level()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
