package protocol

import (
	"math"
	"math/rand/v2"
	"testing"
)

// The netsim engine thins per-crossing Bernoulli(p) loss coins into
// geometric inter-drop gaps, refilled by (a textually inlined copy of)
// SampleGeometricInv with the per-link constant invLog = 1/log(1-p)
// hoisted out of the walk. The tests here pin that batching to the
// exact per-edge law:
//
//   - TestSampleGeometricInvMatchesSampleGeometric locks the precomputed
//     multiply form Log(u)*invLog to SampleGeometric's divide form
//     Log(u)/Log(1-p) draw for draw, on the same uniform stream. Both
//     consume exactly one uniform per gap, so the paired streams stay
//     in lockstep for the whole run — any divergence in draw count or
//     value fails on the spot.
//   - TestSampleGeometricInvBernoulliLaw is the chi-square
//     goodness-of-fit of the thinned gaps against the Geometric(p) pmf
//     p(1-p)^(n-1), i.e. against what independent per-crossing coins
//     produce.
//   - TestSampleGeometricInvKolmogorovSmirnov bounds the KS distance
//     between the empirical gap CDF and 1-(1-p)^n.
//
// All three run on committed PCG seeds, so they are deterministic:
// they guard refactors of the sampler, not the quality of math/rand.

// geomSeeds are the committed RNG seeds the law tests run over.
var geomSeeds = []uint64{1, 7, 42, 0x9e3779b97f4a7c15}

func TestSampleGeometricInvMatchesSampleGeometric(t *testing.T) {
	for _, p := range []float64{0.5, 0.25, 0.1, 0.02, 0.001, 1e-6} {
		invLog := 1 / math.Log(1-p)
		for _, seed := range geomSeeds {
			a := rand.New(rand.NewPCG(seed, seed))
			b := rand.New(rand.NewPCG(seed, seed))
			for i := 0; i < 200_000; i++ {
				want := int64(SampleGeometric(a, p))
				got := SampleGeometricInv(b, invLog)
				if got != want {
					t.Fatalf("p=%v seed=%d draw %d: SampleGeometricInv=%d, SampleGeometric=%d",
						p, seed, i, got, want)
				}
			}
		}
	}
}

// TestSampleGeometricInvBernoulliLaw chi-square-tests gap samples
// against the Geometric(p) pmf. Cells are the gap values 1..k with the
// tail n > k pooled (by the exact tail mass (1-p)^k), k chosen so every
// expected count is comfortably above 5. The statistic is compared to
// the 99.99% chi-square quantile for the cell count — far out in the
// tail, so a correct sampler on these committed seeds passes with huge
// margin while a wrong law (e.g. an off-by-one gap, a clamped tail, or
// p misread as 1-p) blows past it.
func TestSampleGeometricInvBernoulliLaw(t *testing.T) {
	// crit[k] ~ chi-square 0.9999 quantile at k degrees of freedom
	// (k+1 pooled cells).
	crit := map[int]float64{5: 25.7, 10: 35.6, 20: 52.4}
	const n = 500_000
	for _, tc := range []struct {
		p float64
		k int // pooled cells: gaps 1..k plus the > k tail
	}{
		{0.5, 10},
		{0.1, 20},
		{0.02, 20},
		{0.004, 5},
	} {
		invLog := 1 / math.Log(1-tc.p)
		for _, seed := range geomSeeds {
			rng := rand.New(rand.NewPCG(seed, seed))
			obs := make([]int, tc.k+1) // obs[k] pools the tail
			for i := 0; i < n; i++ {
				g := SampleGeometricInv(rng, invLog)
				if g < 1 {
					t.Fatalf("p=%v seed=%d: gap %d < 1", tc.p, seed, g)
				}
				if g > int64(tc.k) {
					obs[tc.k]++
				} else {
					obs[g-1]++
				}
			}
			chi2 := 0.0
			q := 1 - tc.p
			cell := tc.p // P(gap = 1)
			tail := 1.0  // P(gap > 0)
			for v := 0; v < tc.k; v++ {
				exp := float64(n) * cell
				d := float64(obs[v]) - exp
				chi2 += d * d / exp
				tail *= q // P(gap > v+1) = (1-p)^(v+1)
				cell *= q
			}
			exp := float64(n) * tail
			d := float64(obs[tc.k]) - exp
			chi2 += d * d / exp
			if limit := crit[tc.k]; chi2 > limit {
				t.Errorf("p=%v seed=%d: chi-square %.1f over %d cells exceeds %.1f",
					tc.p, seed, chi2, tc.k+1, limit)
			}
		}
	}
}

// TestSampleGeometricInvKolmogorovSmirnov bounds the sup distance
// between the empirical gap CDF and the exact Geometric CDF
// 1-(1-p)^n. The threshold is ~2.2/sqrt(n) — past the 99.99% KS
// quantile for continuous data, and the discrete statistic is
// stochastically smaller still.
func TestSampleGeometricInvKolmogorovSmirnov(t *testing.T) {
	const n = 200_000
	for _, p := range []float64{0.5, 0.1, 0.02} {
		invLog := 1 / math.Log(1-p)
		// Count gaps up to a cutoff holding all but ~1e-9 of the mass.
		cutoff := int(math.Ceil(math.Log(1e-9)/math.Log(1-p))) + 1
		for _, seed := range geomSeeds {
			rng := rand.New(rand.NewPCG(seed, seed))
			counts := make([]int, cutoff+1)
			over := 0
			for i := 0; i < n; i++ {
				if g := SampleGeometricInv(rng, invLog); g <= int64(cutoff) {
					counts[g]++
				} else {
					over++
				}
			}
			ks, cum := 0.0, 0
			for v := 1; v <= cutoff; v++ {
				cum += counts[v]
				exact := 1 - math.Pow(1-p, float64(v))
				if d := math.Abs(float64(cum)/n - exact); d > ks {
					ks = d
				}
			}
			if limit := 2.2 / math.Sqrt(n); ks > limit {
				t.Errorf("p=%v seed=%d: KS distance %.5f exceeds %.5f (tail overflow %d)",
					p, seed, ks, limit, over)
			}
		}
	}
}
