// Package protocol implements the three layered congestion-control
// receiver state machines of Section 4 of Rubenstein/Kurose/Towsley
// (SIGCOMM '99), which differ only in how layer joins are coordinated:
//
//   - Uncoordinated: upon each successfully received packet, the receiver
//     joins an additional layer with a probability chosen so the expected
//     number of packets between join/leave events at level i is 2^(2(i-1)).
//   - Deterministic: the receiver joins after exactly 2^(2(i-1)) packets
//     received without a congestion event since its last join/leave event.
//   - Coordinated: the sender embeds join signals in the data stream on a
//     nested ("binary ruler") schedule; a signal at level s invites every
//     receiver joined up to some layer v <= s to join layer v+1, provided
//     the receiver has seen no congestion since its previous join
//     opportunity. The nesting reproduces the paper's rule that a signal
//     for level i implies one for every level j < i, and the schedule's
//     periods are chosen so the expected packets between events match the
//     other protocols (see sim.SignalLevel).
//
// In every protocol a receiver reacts to a congestion event (a lost or
// marked packet) by leaving its highest joined layer, unless it is joined
// only to the base layer. Subscription levels are therefore always in
// [1, M] — prefixes of the layer stack — exactly the regime in which the
// union of receiver subscriptions on a shared link is the maximum level
// (see the sim package's redundancy accounting).
//
// The layer rates follow the paper's Section 4 choice: the aggregate rate
// of layers 1..i is 2^(i-1) (layering.Exponential).
package protocol

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Kind selects one of the paper's three join-coordination disciplines.
type Kind int

const (
	// Uncoordinated joins probabilistically on each received packet.
	Uncoordinated Kind = iota
	// Deterministic joins after a fixed count of clean received packets.
	Deterministic
	// Coordinated joins only at sender-issued signals.
	Coordinated
)

// String names the protocol as the paper's figures do.
func (k Kind) String() string {
	switch k {
	case Uncoordinated:
		return "Uncoordinated"
	case Deterministic:
		return "Deterministic"
	case Coordinated:
		return "Coordinated"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists all protocols in the paper's plotting order.
func Kinds() []Kind { return []Kind{Coordinated, Uncoordinated, Deterministic} }

// JoinThreshold returns 2^(2(level-1)), the expected number of packets
// received between a join/leave event at the given subscription level and
// the join to the next layer (the paper's Section 4 parameter, following
// Vicisano et al.).
func JoinThreshold(level int) int {
	if level < 1 {
		panic("protocol: level must be >= 1")
	}
	return 1 << (2 * (level - 1))
}

// Receiver is one receiver's protocol state machine. It is driven by the
// simulator through OnReceive, OnCongestion and OnSignal and reports its
// current subscription level (1..M layers joined).
type Receiver struct {
	kind  Kind
	m     int // number of layers
	level int // layers currently joined, in [1, m]

	rng *rand.Rand
	// countdown: Deterministic — clean packets remaining until join;
	// Uncoordinated — geometrically sampled packets until join.
	countdown int
	// clean: Coordinated — no congestion since the last join opportunity
	// at this receiver's level.
	clean bool
}

// NewReceiver creates a receiver using kind over m layers, initially
// joined to the base layer only. rng drives the Uncoordinated protocol's
// sampling; the other protocols never consume randomness.
func NewReceiver(kind Kind, m int, rng *rand.Rand) *Receiver {
	if m < 1 {
		panic("protocol: need at least one layer")
	}
	r := &Receiver{kind: kind, m: m, level: 1, rng: rng}
	r.resetEventState()
	return r
}

// Level returns the number of layers currently joined (1..M).
func (r *Receiver) Level() int { return r.level }

// Kind returns the receiver's protocol.
func (r *Receiver) Kind() Kind { return r.kind }

// resetEventState re-arms the join logic after any join/leave event.
func (r *Receiver) resetEventState() {
	switch r.kind {
	case Deterministic:
		r.countdown = JoinThreshold(r.level)
	case Uncoordinated:
		r.countdown = r.sampleGeometric(1 / float64(JoinThreshold(r.level)))
	case Coordinated:
		r.clean = true
	}
}

// sampleGeometric draws from Geometric(p) on {1, 2, ...} by inversion.
func (r *Receiver) sampleGeometric(p float64) int {
	return SampleGeometric(r.rng, p)
}

// SampleGeometric draws from Geometric(p) on {1, 2, ...} by inversion —
// the number of independent p-trials up to and including the first
// success. It backs the Uncoordinated protocol's join sampling and is
// exported so simulators can thin Bernoulli processes (e.g. per-link
// loss) to one draw per success with exactly this distribution.
func SampleGeometric(rng *rand.Rand, p float64) int {
	if p >= 1 {
		return 1
	}
	u := rng.Float64()
	// Guard against u == 0 (log(0) = -Inf).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	n := int(math.Log(u)/math.Log(1-p)) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// SampleGeometricInv draws from the same Geometric(p) law as
// SampleGeometric, taking the precomputed constant invLog = 1/log(1-p)
// instead of p itself. It exists for batched thinning loops: a caller
// sampling many inter-success gaps against one fixed p hoists the two
// logarithms of the denominator out of the loop and pays one uniform
// draw plus one multiply per gap. The returned value is int64 because
// gaps scale as 1/p and overflow int32 for very small loss rates.
//
// invLog must come from p in (0, 1); the p >= 1 short-circuit of
// SampleGeometric is deliberately absent here (invLog would be -0 and
// the draw consumption would differ).
func SampleGeometricInv(rng *rand.Rand, invLog float64) int64 {
	u := rng.Float64()
	// Guard against u == 0 (log(0) = -Inf).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	n := int64(math.Log(u)*invLog) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// OnCongestion reacts to a lost or congestion-marked packet: leave the
// highest joined layer (unless only the base layer is joined) and reset
// the join state.
func (r *Receiver) OnCongestion() {
	if r.level > 1 {
		r.level--
	}
	r.clean = false // a Coordinated receiver must wait for a clean window
	switch r.kind {
	case Deterministic:
		r.countdown = JoinThreshold(r.level)
	case Uncoordinated:
		r.countdown = r.sampleGeometric(1 / float64(JoinThreshold(r.level)))
	}
}

// OnReceive reacts to a successfully received packet. Uncoordinated and
// Deterministic receivers may join an additional layer.
func (r *Receiver) OnReceive() {
	switch r.kind {
	case Deterministic, Uncoordinated:
		r.countdown--
		if r.countdown <= 0 {
			r.join()
		}
	case Coordinated:
		// Packet arrivals alone never trigger Coordinated joins.
	}
}

// OnSignal reacts to a sender join signal at the given level. Only
// Coordinated receivers respond: a receiver joined up to layer v joins
// layer v+1 iff v <= sigLevel and it has seen no congestion since its
// previous join opportunity. Signals at levels >= the receiver's level
// also open a fresh clean window.
func (r *Receiver) OnSignal(sigLevel int) {
	if r.kind != Coordinated || sigLevel < r.level {
		return
	}
	if r.clean {
		r.join()
		return
	}
	// Missed opportunity; the next window starts now.
	r.clean = true
}

// join adds one layer (bounded by M) and resets the join state.
func (r *Receiver) join() {
	if r.level < r.m {
		r.level++
	}
	r.resetEventState()
}
