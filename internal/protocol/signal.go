package protocol

import "math/bits"

// SignalLevel returns the Coordinated discipline's nested signal level
// for the n-th signal (n >= 1), capped at maxLevel: 1 + trailing zeros
// of n. Signals inviting a join from level v then occur every 2^(v-1)
// base periods, so a receiver at level v (receiving 2^(v-1) packets per
// time unit) sees an expected 2^(2(v-1)) packets between its join
// opportunities — the paper's parameter.
//
// The schedule is shared by every engine driving Coordinated receivers
// (netsim, and the sim facade which re-exports it).
func SignalLevel(n int, maxLevel int) int {
	if n < 1 {
		panic("protocol: signal index starts at 1")
	}
	l := 1 + bits.TrailingZeros(uint(n))
	if l > maxLevel {
		return maxLevel
	}
	return l
}
