package protocol

import (
	"math"
	"math/rand/v2"
	"testing"
)

func newRNG() *rand.Rand { return rand.New(rand.NewPCG(81, 82)) }

func TestJoinThreshold(t *testing.T) {
	want := []int{1, 4, 16, 64, 256}
	for i, w := range want {
		if got := JoinThreshold(i + 1); got != w {
			t.Errorf("JoinThreshold(%d) = %d, want %d", i+1, got, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("level 0 accepted")
		}
	}()
	JoinThreshold(0)
}

func TestKindString(t *testing.T) {
	if Uncoordinated.String() != "Uncoordinated" ||
		Deterministic.String() != "Deterministic" ||
		Coordinated.String() != "Coordinated" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
	if len(Kinds()) != 3 {
		t.Fatal("Kinds() wrong")
	}
}

func TestNewReceiverStartsAtBase(t *testing.T) {
	for _, k := range Kinds() {
		r := NewReceiver(k, 8, newRNG())
		if r.Level() != 1 {
			t.Errorf("%v starts at level %d", k, r.Level())
		}
		if r.Kind() != k {
			t.Errorf("Kind = %v", r.Kind())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("m=0 accepted")
		}
	}()
	NewReceiver(Deterministic, 0, newRNG())
}

func TestDeterministicClimb(t *testing.T) {
	r := NewReceiver(Deterministic, 4, newRNG())
	// Level 1 -> 2 after exactly 1 packet.
	r.OnReceive()
	if r.Level() != 2 {
		t.Fatalf("level = %d after 1 packet, want 2", r.Level())
	}
	// Level 2 -> 3 after exactly 4 more.
	for i := 0; i < 3; i++ {
		r.OnReceive()
		if r.Level() != 2 {
			t.Fatalf("joined early at packet %d", i+2)
		}
	}
	r.OnReceive()
	if r.Level() != 3 {
		t.Fatalf("level = %d, want 3", r.Level())
	}
	// Level 3 -> 4 after 16 more.
	for i := 0; i < 16; i++ {
		r.OnReceive()
	}
	if r.Level() != 4 {
		t.Fatalf("level = %d, want 4", r.Level())
	}
	// At the top, further packets keep it there.
	for i := 0; i < 100; i++ {
		r.OnReceive()
	}
	if r.Level() != 4 {
		t.Fatalf("level = %d, want 4 (capped)", r.Level())
	}
}

func TestCongestionLeavesOneLayer(t *testing.T) {
	for _, k := range Kinds() {
		r := NewReceiver(k, 8, newRNG())
		// Climb a bit first (signals for Coordinated).
		for i := 0; i < 100; i++ {
			r.OnSignal(8)
			r.OnReceive()
		}
		if r.Level() < 3 {
			t.Fatalf("%v failed to climb: level %d", k, r.Level())
		}
		before := r.Level()
		r.OnCongestion()
		if r.Level() != before-1 {
			t.Errorf("%v: level %d -> %d on congestion, want -1", k, before, r.Level())
		}
		// Never below base layer.
		for i := 0; i < 20; i++ {
			r.OnCongestion()
		}
		if r.Level() != 1 {
			t.Errorf("%v: level %d after flood of congestion, want 1", k, r.Level())
		}
	}
}

// TestDeterministicCounterResetOnCongestion: a congestion event restarts
// the clean-packet count.
func TestDeterministicCounterResetOnCongestion(t *testing.T) {
	r := NewReceiver(Deterministic, 4, newRNG())
	r.OnReceive() // threshold 1: -> level 2
	for i := 0; i < 4; i++ {
		r.OnReceive() // threshold 4 at level 2: -> level 3
	}
	if r.Level() != 3 {
		t.Fatalf("setup failed: level %d", r.Level())
	}
	// 15 clean packets, then congestion: must not join at 16 after.
	for i := 0; i < 15; i++ {
		r.OnReceive()
	}
	r.OnCongestion() // -> level 2, counter reset to 4
	if r.Level() != 2 {
		t.Fatalf("level %d", r.Level())
	}
	r.OnReceive()
	r.OnReceive()
	r.OnReceive()
	if r.Level() != 2 {
		t.Fatal("joined before fresh threshold")
	}
	r.OnReceive()
	if r.Level() != 3 {
		t.Fatal("did not join at fresh threshold")
	}
}

// TestUncoordinatedExpectedPackets: the mean number of packets between
// joining level v and v+1 is close to 2^(2(v-1)).
func TestUncoordinatedExpectedPackets(t *testing.T) {
	rng := newRNG()
	for _, level := range []int{2, 3} {
		want := float64(JoinThreshold(level))
		var total float64
		const trials = 3000
		for trial := 0; trial < trials; trial++ {
			r := NewReceiver(Uncoordinated, 8, rng)
			// Climb to the target level.
			for r.Level() < level {
				r.OnReceive()
			}
			count := 0
			for r.Level() == level {
				r.OnReceive()
				count++
			}
			total += float64(count)
		}
		got := total / trials
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("level %d: mean packets to join = %v, want ~%v", level, got, want)
		}
	}
}

func TestCoordinatedOnlyJoinsAtSignals(t *testing.T) {
	r := NewReceiver(Coordinated, 8, newRNG())
	for i := 0; i < 1000; i++ {
		r.OnReceive()
	}
	if r.Level() != 1 {
		t.Fatal("Coordinated joined without a signal")
	}
	r.OnSignal(1)
	if r.Level() != 2 {
		t.Fatalf("clean receiver ignored signal: level %d", r.Level())
	}
	// A signal below the current level is not an opportunity.
	r.OnSignal(1)
	if r.Level() != 2 {
		t.Fatal("joined on a too-low signal")
	}
	// A signal at the level works.
	r.OnSignal(2)
	if r.Level() != 3 {
		t.Fatalf("level %d, want 3", r.Level())
	}
}

func TestCoordinatedCleanWindow(t *testing.T) {
	r := NewReceiver(Coordinated, 8, newRNG())
	r.OnSignal(8) // -> 2, clean
	r.OnCongestion()
	if r.Level() != 1 {
		t.Fatalf("level %d", r.Level())
	}
	// Dirty: first opportunity only re-opens the window.
	r.OnSignal(8)
	if r.Level() != 1 {
		t.Fatal("dirty receiver joined")
	}
	// Clean again: next opportunity joins.
	r.OnSignal(8)
	if r.Level() != 2 {
		t.Fatal("clean receiver did not join")
	}
}

// TestCoordinatedReceiversStaySynchronized: receivers seeing identical
// events keep identical levels — the property that makes sender
// coordination suppress redundancy.
func TestCoordinatedReceiversStaySynchronized(t *testing.T) {
	rng := newRNG()
	a := NewReceiver(Coordinated, 8, rng)
	b := NewReceiver(Coordinated, 8, rng)
	for i := 0; i < 5000; i++ {
		switch rng.IntN(3) {
		case 0:
			a.OnReceive()
			b.OnReceive()
		case 1:
			if rng.IntN(10) == 0 {
				a.OnCongestion()
				b.OnCongestion()
			}
		case 2:
			lvl := 1 + rng.IntN(7)
			a.OnSignal(lvl)
			b.OnSignal(lvl)
		}
		if a.Level() != b.Level() {
			t.Fatalf("desynchronized at step %d: %d vs %d", i, a.Level(), b.Level())
		}
	}
}

// TestDeterministicReceiversStaySynchronized: same property for the
// Deterministic protocol under identical loss patterns (the paper's
// modeling assumption for shared loss).
func TestDeterministicReceiversStaySynchronized(t *testing.T) {
	rng := newRNG()
	a := NewReceiver(Deterministic, 8, rng)
	b := NewReceiver(Deterministic, 8, rng)
	for i := 0; i < 5000; i++ {
		if rng.IntN(20) == 0 {
			a.OnCongestion()
			b.OnCongestion()
		} else {
			a.OnReceive()
			b.OnReceive()
		}
		if a.Level() != b.Level() {
			t.Fatalf("desynchronized at step %d", i)
		}
	}
}

// TestUncoordinatedDesynchronizes: under identical inputs, two
// Uncoordinated receivers drift apart — the redundancy mechanism.
func TestUncoordinatedDesynchronizes(t *testing.T) {
	rng := newRNG()
	a := NewReceiver(Uncoordinated, 8, rng)
	b := NewReceiver(Uncoordinated, 8, rng)
	differed := false
	for i := 0; i < 2000; i++ {
		if rng.IntN(20) == 0 {
			a.OnCongestion()
			b.OnCongestion()
		} else {
			a.OnReceive()
			b.OnReceive()
		}
		if a.Level() != b.Level() {
			differed = true
			break
		}
	}
	if !differed {
		t.Fatal("Uncoordinated receivers never diverged under identical inputs")
	}
}

func TestGeometricSamplerEdge(t *testing.T) {
	r := NewReceiver(Uncoordinated, 2, newRNG())
	// At level 1 the threshold is 1 (p=1): every countdown must be 1.
	for i := 0; i < 50; i++ {
		if n := r.sampleGeometric(1); n != 1 {
			t.Fatalf("sampleGeometric(1) = %d", n)
		}
	}
	// Mean of Geometric(1/4) is 4.
	var total float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		total += float64(r.sampleGeometric(0.25))
	}
	if mean := total / trials; math.Abs(mean-4) > 0.15 {
		t.Fatalf("Geometric(0.25) mean = %v, want ~4", mean)
	}
}
