package fairness

import (
	"math/rand/v2"
	"testing"

	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
)

// randNetwork mirrors the maxmin test generator: random incidence
// networks with configurable session types.
func randNetwork(rng *rand.Rand, forceType *netmodel.SessionType) *netmodel.Network {
	nl := 2 + rng.IntN(5)
	b := netmodel.NewBuilder()
	links := make([]int, nl)
	for i := range links {
		links[i] = b.AddLink(1 + float64(rng.IntN(20)))
	}
	ns := 1 + rng.IntN(4)
	for i := 0; i < ns; i++ {
		typ := netmodel.MultiRate
		if forceType != nil {
			typ = *forceType
		} else if rng.IntN(2) == 0 {
			typ = netmodel.SingleRate
		}
		kappa := netmodel.NoRateCap
		if rng.IntN(3) == 0 {
			kappa = 1 + 10*rng.Float64()
		}
		nr := 1 + rng.IntN(3)
		s := b.AddSession(typ, kappa, nr)
		for k := 0; k < nr; k++ {
			var p []int
			for _, l := range links {
				if rng.IntN(3) == 0 {
					p = append(p, l)
				}
			}
			if len(p) == 0 {
				p = []int{links[rng.IntN(nl)]}
			}
			b.SetPath(s, k, p...)
		}
	}
	return b.MustBuild()
}

// TestTheorem1RandomMultiRate: on random all-multi-rate networks the
// max-min fair allocation satisfies all four fairness properties.
func TestTheorem1RandomMultiRate(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	multi := netmodel.MultiRate
	for trial := 0; trial < 300; trial++ {
		net := randNetwork(rng, &multi)
		res, err := maxmin.Allocate(net)
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		rep := Check(res.Alloc)
		if !rep.AllHold() {
			t.Fatalf("trial %d: Theorem 1 violated: %s\nalloc %s",
				trial, rep.Summary(), res.Alloc)
		}
	}
}

// TestTheorem2RandomMixed: on random mixed networks the max-min fair
// allocation satisfies clauses (a)-(e).
func TestTheorem2RandomMixed(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	for trial := 0; trial < 300; trial++ {
		net := randNetwork(rng, nil)
		res, err := maxmin.Allocate(net)
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		m := CheckTheorem2(res.Alloc)
		if !m.AllHold() {
			t.Fatalf("trial %d: Theorem 2 violated: %s\nalloc %s", trial, m, res.Alloc)
		}
	}
}

// TestTheorem2DetectsViolations: a deliberately unfair allocation
// triggers the checker (guarding against a vacuously-true checker).
func TestTheorem2DetectsViolations(t *testing.T) {
	b := netmodel.NewBuilder()
	l := b.AddLink(10)
	s1 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	s2 := b.AddSession(netmodel.SingleRate, netmodel.NoRateCap, 1)
	b.SetPath(s1, 0, l)
	b.SetPath(s2, 0, l)
	net := b.MustBuild()
	a := netmodel.NewAllocation(net)
	a.SetRate(0, 0, 2) // multi-rate receiver below...
	a.SetRate(1, 0, 8) // ...the single-rate receiver on the same path
	m := CheckTheorem2(a)
	if len(m.E) != 1 {
		t.Fatalf("clause (e) violation not detected: %s", m)
	}
	if m.AllHold() {
		t.Fatal("AllHold must be false")
	}
}

// TestSingleRateOnlyPerSessionHolds: on random all-single-rate networks
// per-session-link-fairness always holds in the max-min fair allocation
// (the Tzeng-Siu consequence noted in Section 2.3).
func TestSingleRateOnlyPerSessionHolds(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	single := netmodel.SingleRate
	for trial := 0; trial < 300; trial++ {
		net := randNetwork(rng, &single)
		res, err := maxmin.Allocate(net)
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		rep := Check(res.Alloc)
		if !rep.PerSessionLinkFair() {
			t.Fatalf("trial %d: per-session-link-fairness failed on single-rate network: %v\nalloc %s",
				trial, rep.PerSessionLinkViolations, res.Alloc)
		}
	}
}

// TestUnicastNetworksSatisfyEverything: with only unicast sessions the
// four properties collapse to the classical unicast ones and all hold.
func TestUnicastNetworksSatisfyEverything(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 38))
	for trial := 0; trial < 200; trial++ {
		nl := 2 + rng.IntN(4)
		b := netmodel.NewBuilder()
		links := make([]int, nl)
		for i := range links {
			links[i] = b.AddLink(1 + float64(rng.IntN(15)))
		}
		ns := 1 + rng.IntN(5)
		for i := 0; i < ns; i++ {
			s := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
			var p []int
			for _, l := range links {
				if rng.IntN(2) == 0 {
					p = append(p, l)
				}
			}
			if len(p) == 0 {
				p = []int{links[0]}
			}
			b.SetPath(s, 0, p...)
		}
		net := b.MustBuild()
		res, err := maxmin.Allocate(net)
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		rep := Check(res.Alloc)
		if !rep.AllHold() {
			t.Fatalf("trial %d: unicast network failed: %s\nalloc %s", trial, rep.Summary(), res.Alloc)
		}
	}
}
