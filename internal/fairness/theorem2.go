package fairness

import (
	"fmt"

	"mlfair/internal/netmodel"
)

// MixedReport records violations of Theorem 2's clauses (a)-(e), the
// guarantees the paper proves for max-min fair allocations of networks
// mixing multi-rate and single-rate sessions.
type MixedReport struct {
	// A: fully-utilized-receiver-fairness fails for a multi-rate receiver.
	A []netmodel.ReceiverID
	// B: per-receiver-link-fairness fails for a multi-rate session's receiver.
	B []netmodel.ReceiverID
	// C: per-session-link-fairness fails for any session.
	C []int
	// D: same-path fairness fails between two multi-rate receivers.
	D []PairViolation
	// E: a multi-rate receiver sharing a data-path with a single-rate
	// receiver is below both its κ and the single-rate receiver's rate.
	E []PairViolation
}

// AllHold reports whether every clause of Theorem 2 holds.
func (m *MixedReport) AllHold() bool {
	return len(m.A) == 0 && len(m.B) == 0 && len(m.C) == 0 && len(m.D) == 0 && len(m.E) == 0
}

// String summarizes the violations per clause.
func (m *MixedReport) String() string {
	return fmt.Sprintf("theorem2{a:%d b:%d c:%d d:%d e:%d}",
		len(m.A), len(m.B), len(m.C), len(m.D), len(m.E))
}

// CheckTheorem2 evaluates clauses (a)-(e) of Theorem 2 on an allocation
// of a mixed-type network. For the max-min fair allocation the report
// must be empty; for other allocations it is diagnostic only.
func CheckTheorem2(a *netmodel.Allocation) *MixedReport {
	net := a.Network()
	m := &MixedReport{}
	ids := net.ReceiverIDs()

	isMulti := func(id netmodel.ReceiverID) bool {
		return net.Session(id.Session).Type == netmodel.MultiRate
	}

	for _, id := range ids {
		if !isMulti(id) {
			continue
		}
		if _, ok := ReceiverFullyUtilizedFair(a, id); !ok {
			m.A = append(m.A, id)
		}
		if _, ok := ReceiverPerReceiverLinkFair(a, id); !ok {
			m.B = append(m.B, id)
		}
	}
	for i := 0; i < net.NumSessions(); i++ {
		if _, ok := SessionPerSessionLinkFair(a, i); !ok {
			m.C = append(m.C, i)
		}
	}
	for x := 0; x < len(ids); x++ {
		for y := x + 1; y < len(ids); y++ {
			rx, ry := ids[x], ids[y]
			if !net.SamePath(rx, ry) {
				continue
			}
			switch {
			case isMulti(rx) && isMulti(ry):
				if !SamePathPairFair(a, rx, ry) {
					m.D = append(m.D, PairViolation{A: rx, B: ry, RateA: a.RateOf(rx), RateB: a.RateOf(ry)})
				}
			case isMulti(rx) != isMulti(ry):
				// Orient so mr is the multi-rate one.
				mr, sr := rx, ry
				if isMulti(ry) {
					mr, sr = ry, rx
				}
				// Clause (e): a_mr = κ or a_mr >= a_sr.
				if !netmodel.Geq(a.RateOf(mr), net.Session(mr.Session).MaxRate) &&
					netmodel.Less(a.RateOf(mr), a.RateOf(sr)) {
					m.E = append(m.E, PairViolation{A: mr, B: sr, RateA: a.RateOf(mr), RateB: a.RateOf(sr)})
				}
			}
		}
	}
	return m
}
