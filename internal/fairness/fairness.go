// Package fairness implements checkers for the four desirable fairness
// properties of Section 2.1 of Rubenstein/Kurose/Towsley (SIGCOMM '99),
// plus the two classical unicast max-min properties they generalize.
//
// All checkers operate on a netmodel.Allocation and use the shared
// tolerance helpers; "fully utilized" means u_j >= c_j - Eps.
//
// Properties (paper numbering):
//
//  1. Fully-utilized-receiver-fairness: each receiver is at its session's
//     κ or crosses a fully utilized link on which no receiver (of any
//     session) receives more than it.
//  2. Same-path-receiver-fairness: receivers with identical data-paths
//     have equal rates unless one is pinned at its κ below the other.
//  3. Per-receiver-link-fairness: each receiver is at κ or crosses a
//     fully utilized link on which its session's link rate is no smaller
//     than any other session's.
//  4. Per-session-link-fairness: each session has all receivers at κ or
//     some fully utilized link on its data-path where its link rate is no
//     smaller than any other session's.
package fairness

import (
	"fmt"

	"mlfair/internal/netmodel"
)

// Witness records why a property holds for one receiver or session: the
// index of a qualifying fully utilized link, or -1 when the property
// holds because the rate is pinned at κ.
type Witness struct {
	// Link is the qualifying fully utilized link, or -1 for a κ witness.
	Link int
}

// PairViolation reports a same-path-receiver-fairness failure: two
// receivers whose data-paths traverse the same link set (the property's
// hypothesis — every pair reported here shares one) ended with
// different rates, neither excused by a κ pin.
type PairViolation struct {
	A, B         netmodel.ReceiverID
	RateA, RateB float64
}

func (v PairViolation) String() string {
	return fmt.Sprintf("same-path pair %v/%v: rates %.4g vs %.4g differ", v.A, v.B, v.RateA, v.RateB)
}

// ReceiverFullyUtilizedFair checks Fairness Property 1 for one receiver:
// a_{i,k} = κ_i, or some fully utilized link l_j on its data-path has
// a_{i',k'} <= a_{i,k} for every receiver crossing l_j.
func ReceiverFullyUtilizedFair(a *netmodel.Allocation, id netmodel.ReceiverID) (Witness, bool) {
	net := a.Network()
	rate := a.RateOf(id)
	if netmodel.Geq(rate, net.Session(id.Session).MaxRate) {
		return Witness{Link: -1}, true
	}
	for _, j := range net.Path(id.Session, id.Receiver) {
		if !a.FullyUtilized(j) {
			continue
		}
		ok := true
		for _, sr := range net.OnLink(j) {
			for _, k := range sr.Receivers {
				if netmodel.Greater(a.Rate(sr.Session, k), rate) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return Witness{Link: j}, true
		}
	}
	return Witness{}, false
}

// ReceiverPerReceiverLinkFair checks the per-receiver clause of Fairness
// Property 3 for one receiver: a_{i,k} = κ_i, or some fully utilized
// link l_j on its data-path has u_{i',j} <= u_{i,j} for every other
// session i'.
func ReceiverPerReceiverLinkFair(a *netmodel.Allocation, id netmodel.ReceiverID) (Witness, bool) {
	net := a.Network()
	if netmodel.Geq(a.RateOf(id), net.Session(id.Session).MaxRate) {
		return Witness{Link: -1}, true
	}
	for _, j := range net.Path(id.Session, id.Receiver) {
		if sessionDominatesLink(a, id.Session, j) {
			return Witness{Link: j}, true
		}
	}
	return Witness{}, false
}

// sessionDominatesLink reports whether l_j is fully utilized and session
// i's link rate there is >= every other session's.
func sessionDominatesLink(a *netmodel.Allocation, i, j int) bool {
	if !a.FullyUtilized(j) {
		return false
	}
	ui := a.SessionLinkRate(i, j)
	for _, sr := range a.Network().OnLink(j) {
		if sr.Session == i {
			continue
		}
		if netmodel.Greater(a.SessionLinkRate(sr.Session, j), ui) {
			return false
		}
	}
	return true
}

// SessionPerSessionLinkFair checks Fairness Property 4 for one session:
// every receiver at κ_i, or some fully utilized link on the session's
// data-path where the session's link rate dominates.
func SessionPerSessionLinkFair(a *netmodel.Allocation, i int) (Witness, bool) {
	net := a.Network()
	allAtKappa := true
	for k := range net.Session(i).Receivers {
		if !netmodel.Geq(a.Rate(i, k), net.Session(i).MaxRate) {
			allAtKappa = false
			break
		}
	}
	if allAtKappa {
		return Witness{Link: -1}, true
	}
	seen := map[int]bool{}
	for k := range net.Session(i).Receivers {
		for _, j := range net.Path(i, k) {
			if seen[j] {
				continue
			}
			seen[j] = true
			if sessionDominatesLink(a, i, j) {
				return Witness{Link: j}, true
			}
		}
	}
	return Witness{}, false
}

// SamePathPairFair checks Fairness Property 2 for one pair of receivers
// with identical data-paths.
func SamePathPairFair(a *netmodel.Allocation, x, y netmodel.ReceiverID) bool {
	net := a.Network()
	rx, ry := a.RateOf(x), a.RateOf(y)
	kx := net.Session(x.Session).MaxRate
	ky := net.Session(y.Session).MaxRate
	if netmodel.Eq(rx, ry) {
		return true
	}
	if netmodel.Geq(rx, kx) && netmodel.Less(rx, ry) {
		return true // a_x = κ_x < a_y
	}
	if netmodel.Geq(ry, ky) && netmodel.Less(ry, rx) {
		return true // a_y = κ_y < a_x
	}
	return false
}

// Report is the outcome of checking all four properties on an allocation.
type Report struct {
	// FullyUtilizedReceiverViolations lists receivers failing Property 1.
	FullyUtilizedReceiverViolations []netmodel.ReceiverID
	// SamePathViolations lists pairs failing Property 2.
	SamePathViolations []PairViolation
	// PerReceiverLinkViolations lists receivers failing Property 3's
	// per-receiver clause (a session fails iff any receiver fails).
	PerReceiverLinkViolations []netmodel.ReceiverID
	// PerSessionLinkViolations lists sessions (indices) failing Property 4.
	PerSessionLinkViolations []int
}

// FullyUtilizedReceiverFair reports Property 1 for the whole allocation.
func (r *Report) FullyUtilizedReceiverFair() bool {
	return len(r.FullyUtilizedReceiverViolations) == 0
}

// SamePathReceiverFair reports Property 2 for the whole allocation.
func (r *Report) SamePathReceiverFair() bool { return len(r.SamePathViolations) == 0 }

// PerReceiverLinkFair reports Property 3 for the whole allocation.
func (r *Report) PerReceiverLinkFair() bool { return len(r.PerReceiverLinkViolations) == 0 }

// PerSessionLinkFair reports Property 4 for the whole allocation.
func (r *Report) PerSessionLinkFair() bool { return len(r.PerSessionLinkViolations) == 0 }

// AllHold reports whether all four properties hold.
func (r *Report) AllHold() bool {
	return r.FullyUtilizedReceiverFair() && r.SamePathReceiverFair() &&
		r.PerReceiverLinkFair() && r.PerSessionLinkFair()
}

// Summary renders a one-line pass/fail table in paper order.
func (r *Report) Summary() string {
	mark := func(ok bool) string {
		if ok {
			return "holds"
		}
		return "FAILS"
	}
	return fmt.Sprintf("fully-utilized-receiver: %s | same-path-receiver: %s | per-receiver-link: %s | per-session-link: %s",
		mark(r.FullyUtilizedReceiverFair()), mark(r.SamePathReceiverFair()),
		mark(r.PerReceiverLinkFair()), mark(r.PerSessionLinkFair()))
}

// Check evaluates all four fairness properties on an allocation.
func Check(a *netmodel.Allocation) *Report {
	net := a.Network()
	rep := &Report{}
	ids := net.ReceiverIDs()
	for _, id := range ids {
		if _, ok := ReceiverFullyUtilizedFair(a, id); !ok {
			rep.FullyUtilizedReceiverViolations = append(rep.FullyUtilizedReceiverViolations, id)
		}
		if _, ok := ReceiverPerReceiverLinkFair(a, id); !ok {
			rep.PerReceiverLinkViolations = append(rep.PerReceiverLinkViolations, id)
		}
	}
	for x := 0; x < len(ids); x++ {
		for y := x + 1; y < len(ids); y++ {
			if !net.SamePath(ids[x], ids[y]) {
				continue
			}
			if !SamePathPairFair(a, ids[x], ids[y]) {
				rep.SamePathViolations = append(rep.SamePathViolations, PairViolation{
					A: ids[x], B: ids[y],
					RateA: a.RateOf(ids[x]), RateB: a.RateOf(ids[y]),
				})
			}
		}
	}
	for i := 0; i < net.NumSessions(); i++ {
		if _, ok := SessionPerSessionLinkFair(a, i); !ok {
			rep.PerSessionLinkViolations = append(rep.PerSessionLinkViolations, i)
		}
	}
	return rep
}
