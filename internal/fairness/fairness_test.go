package fairness

import (
	"strings"
	"testing"

	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
)

// figure1 reconstructs the paper's Figure 1 (see maxmin tests for the
// link layout derivation).
func figure1() *netmodel.Network {
	b := netmodel.NewBuilder()
	l1 := b.AddLink(5)
	l2 := b.AddLink(7)
	l3 := b.AddLink(4)
	l4 := b.AddLink(3)
	s1 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	s2 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
	s3 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
	b.SetPath(s1, 0, l2, l4)
	b.SetPath(s2, 0, l2, l4)
	b.SetPath(s2, 1, l2, l3)
	b.SetPath(s3, 0, l1, l4)
	b.SetPath(s3, 1, l1, l3)
	return b.MustBuild()
}

func figure2(s1Type netmodel.SessionType) *netmodel.Network {
	b := netmodel.NewBuilder()
	l1 := b.AddLink(5)
	l2 := b.AddLink(2)
	l3 := b.AddLink(3)
	l4 := b.AddLink(6)
	s1 := b.AddSession(s1Type, 100, 3)
	s2 := b.AddSession(netmodel.MultiRate, 100, 1)
	b.SetPath(s1, 0, l1, l4)
	b.SetPath(s1, 1, l2)
	b.SetPath(s1, 2, l3)
	b.SetPath(s2, 0, l1, l4)
	return b.MustBuild()
}

func allocate(t *testing.T, net *netmodel.Network) *netmodel.Allocation {
	t.Helper()
	res, err := maxmin.Allocate(net)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	return res.Alloc
}

// TestFigure1AllPropertiesHold: the paper walks through Figure 1 showing
// the multi-rate max-min fair allocation satisfies all four properties.
func TestFigure1AllPropertiesHold(t *testing.T) {
	rep := Check(allocate(t, figure1()))
	if !rep.AllHold() {
		t.Fatalf("Figure 1 properties should all hold: %s", rep.Summary())
	}
}

// TestFigure2SingleRateFailures reproduces Section 2.3: the single-rate
// max-min fair allocation fails properties 1, 2 and 3 but satisfies 4.
func TestFigure2SingleRateFailures(t *testing.T) {
	net := figure2(netmodel.SingleRate)
	rep := Check(allocate(t, net))

	if rep.FullyUtilizedReceiverFair() {
		t.Error("fully-utilized-receiver-fairness should fail")
	}
	// The paper pinpoints r1,3 (our index {0,2}).
	found := false
	for _, id := range rep.FullyUtilizedReceiverViolations {
		if id == (netmodel.ReceiverID{Session: 0, Receiver: 2}) {
			found = true
		}
	}
	if !found {
		t.Errorf("r1,3 should violate property 1; got %v", rep.FullyUtilizedReceiverViolations)
	}

	if rep.SamePathReceiverFair() {
		t.Error("same-path-receiver-fairness should fail")
	}
	if len(rep.SamePathViolations) != 1 {
		t.Fatalf("expected exactly one same-path violation, got %v", rep.SamePathViolations)
	}
	v := rep.SamePathViolations[0]
	if v.A != (netmodel.ReceiverID{Session: 0, Receiver: 0}) || v.B != (netmodel.ReceiverID{Session: 1, Receiver: 0}) {
		t.Errorf("violating pair = %v", v)
	}

	if rep.PerReceiverLinkFair() {
		t.Error("per-receiver-link-fairness should fail")
	}
	// The paper cites the data-paths of r1,1 and r1,3.
	wantViol := map[netmodel.ReceiverID]bool{
		{Session: 0, Receiver: 0}: true,
		{Session: 0, Receiver: 2}: true,
	}
	for _, id := range rep.PerReceiverLinkViolations {
		delete(wantViol, id)
	}
	if len(wantViol) != 0 {
		t.Errorf("missing property-3 violations for %v (got %v)", wantViol, rep.PerReceiverLinkViolations)
	}

	if !rep.PerSessionLinkFair() {
		t.Error("per-session-link-fairness should hold (direct consequence of Tzeng-Siu)")
	}
}

// TestFigure2MultiRateAllHold: with S1 multi-rate, Theorem 1 applies.
func TestFigure2MultiRateAllHold(t *testing.T) {
	rep := Check(allocate(t, figure2(netmodel.MultiRate)))
	if !rep.AllHold() {
		t.Fatalf("multi-rate Figure 2 should satisfy all properties: %s", rep.Summary())
	}
}

// TestFigure4RedundancyBreaksSessionPerspective reproduces Section 3:
// redundancy 2 on the shared link breaks per-session-link-fairness (and
// per-receiver-link-fairness) for S2, while the receiver-perspective
// properties survive.
func TestFigure4RedundancyBreaksSessionPerspective(t *testing.T) {
	b := netmodel.NewBuilder()
	l4 := b.AddLink(6)
	l1 := b.AddLink(5)
	l2 := b.AddLink(2)
	l3 := b.AddLink(3)
	s1 := b.AddSession(netmodel.MultiRate, 100, 3)
	s2 := b.AddSession(netmodel.MultiRate, 100, 1)
	b.SetLinkRate(s1, netmodel.SharedScaledMax(2))
	b.SetPath(s1, 0, l4, l1)
	b.SetPath(s1, 1, l4, l2)
	b.SetPath(s1, 2, l4, l3)
	b.SetPath(s2, 0, l4, l1)
	rep := Check(allocate(t, b.MustBuild()))

	if rep.PerSessionLinkFair() {
		t.Error("per-session-link-fairness should fail for S2")
	}
	if len(rep.PerSessionLinkViolations) != 1 || rep.PerSessionLinkViolations[0] != 1 {
		t.Errorf("violating sessions = %v, want [1]", rep.PerSessionLinkViolations)
	}
	if rep.PerReceiverLinkFair() {
		t.Error("per-receiver-link-fairness should fail for S2")
	}
	if !rep.FullyUtilizedReceiverFair() {
		t.Errorf("fully-utilized-receiver-fairness should survive redundancy: %v",
			rep.FullyUtilizedReceiverViolations)
	}
	if !rep.SamePathReceiverFair() {
		t.Error("same-path-receiver-fairness should survive redundancy")
	}
}

// TestKappaWitness: receivers pinned at κ satisfy properties vacuously.
func TestKappaWitness(t *testing.T) {
	b := netmodel.NewBuilder()
	l := b.AddLink(100)
	s1 := b.AddSession(netmodel.MultiRate, 3, 1)
	s2 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	b.SetPath(s1, 0, l)
	b.SetPath(s2, 0, l)
	a := allocate(t, b.MustBuild())
	// s1 at κ=3, s2 at 97: same path, different rates, still fair.
	rep := Check(a)
	if !rep.AllHold() {
		t.Fatalf("κ-pinned allocation should satisfy all properties: %s", rep.Summary())
	}
	w, ok := ReceiverFullyUtilizedFair(a, netmodel.ReceiverID{Session: 0, Receiver: 0})
	if !ok || w.Link != -1 {
		t.Fatalf("κ witness = %+v, %v", w, ok)
	}
}

func TestSamePathPairFairDirections(t *testing.T) {
	b := netmodel.NewBuilder()
	l := b.AddLink(10)
	s1 := b.AddSession(netmodel.MultiRate, 2, 1)
	s2 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	b.SetPath(s1, 0, l)
	b.SetPath(s2, 0, l)
	net := b.MustBuild()
	x := netmodel.ReceiverID{Session: 0, Receiver: 0}
	y := netmodel.ReceiverID{Session: 1, Receiver: 0}

	set := func(rx, ry float64) *netmodel.Allocation {
		a := netmodel.NewAllocation(net)
		a.SetRate(0, 0, rx)
		a.SetRate(1, 0, ry)
		return a
	}
	if !SamePathPairFair(set(2, 8), x, y) {
		t.Error("κ-pinned below should be fair")
	}
	if !SamePathPairFair(set(3, 3), x, y) {
		t.Error("equal rates should be fair")
	}
	if SamePathPairFair(set(1, 8), x, y) {
		t.Error("below κ and unequal should be unfair")
	}
	if !SamePathPairFair(set(2, 8), y, x) {
		t.Error("argument order must not matter for κ-pinning")
	}
}

func TestReportSummaryFormat(t *testing.T) {
	rep := Check(allocate(t, figure2(netmodel.SingleRate)))
	s := rep.Summary()
	if !strings.Contains(s, "FAILS") || !strings.Contains(s, "holds") {
		t.Fatalf("Summary = %q", s)
	}
	if rep.AllHold() {
		t.Fatal("AllHold should be false")
	}
}

func TestPairViolationString(t *testing.T) {
	v := PairViolation{
		A:     netmodel.ReceiverID{Session: 0, Receiver: 0},
		B:     netmodel.ReceiverID{Session: 1, Receiver: 0},
		RateA: 2, RateB: 3,
	}
	s := v.String()
	if !strings.Contains(s, "r1,1") || !strings.Contains(s, "r2,1") {
		t.Fatalf("String = %q", s)
	}
}
