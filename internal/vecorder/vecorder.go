// Package vecorder implements the min-unfavorable ordering of Definition 2
// in Rubenstein/Kurose/Towsley (SIGCOMM '99): a lexicographic-style partial
// order on ordered (ascending) rate vectors under which the max-min fair
// allocation is the unique maximum among feasible allocations (Lemma 1).
//
// For ordered vectors X and Y of equal length, X ≼_m Y ("X is
// min-unfavorable to Y") iff no index i has x_i > y_i, or every index i
// with x_i > y_i is preceded by some j < i with x_j < y_j. Equivalently
// (as the paper notes) X ≼_m Y iff X = Y or X precedes Y in standard
// lexicographic ("alphabetical") order.
//
// The package also provides the Lemma 2 characterization: X ≺_m Y iff
// there is a threshold x0 such that Y has no more receivers at-or-below
// any rate z < x0 than X, and strictly fewer at-or-below x0 itself.
package vecorder

import (
	"fmt"
	"sort"

	"mlfair/internal/netmodel"
)

// IsOrdered reports whether v is ascending (the precondition of
// Definition 2).
func IsOrdered(v []float64) bool {
	return sort.Float64sAreSorted(v)
}

// Ordered returns an ascending copy of v.
func Ordered(v []float64) []float64 {
	c := append([]float64{}, v...)
	sort.Float64s(c)
	return c
}

// Relation is the outcome of comparing two ordered vectors under ≼_m.
type Relation int

const (
	// Equal means X = Y (componentwise within tolerance).
	Equal Relation = iota
	// MinUnfavorable means X ≺_m Y: Y is strictly "more max-min fair".
	MinUnfavorable
	// MinFavorable means Y ≺_m X.
	MinFavorable
)

// String names the relation from X's perspective.
func (r Relation) String() string {
	switch r {
	case Equal:
		return "equal"
	case MinUnfavorable:
		return "min-unfavorable"
	case MinFavorable:
		return "min-favorable"
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// Compare evaluates X against Y under the min-unfavorable order. Both
// vectors must be ordered (ascending) and of equal length; Compare panics
// otherwise, since comparing unordered vectors silently would corrupt
// every downstream fairness conclusion. Comparisons use the netmodel
// tolerance.
//
// As the paper observes, for any two ordered vectors of equal length at
// least one direction of ≼_m holds, so Compare is total.
func Compare(x, y []float64) Relation {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecorder: length mismatch %d vs %d", len(x), len(y)))
	}
	if !IsOrdered(x) || !IsOrdered(y) {
		panic("vecorder: Compare requires ordered vectors")
	}
	for i := range x {
		if netmodel.Less(x[i], y[i]) {
			return MinUnfavorable
		}
		if netmodel.Greater(x[i], y[i]) {
			return MinFavorable
		}
	}
	return Equal
}

// LessEq reports X ≼_m Y.
func LessEq(x, y []float64) bool {
	return Compare(x, y) != MinFavorable
}

// StrictlyLess reports X ≺_m Y (min-unfavorable and not equal).
func StrictlyLess(x, y []float64) bool {
	return Compare(x, y) == MinUnfavorable
}

// CountAtOrBelow returns |{x_i : x_i <= z}| (within tolerance) for an
// ordered vector.
func CountAtOrBelow(v []float64, z float64) int {
	// Binary search for the first element > z+Eps.
	return sort.Search(len(v), func(i int) bool {
		return netmodel.Greater(v[i], z)
	})
}

// Threshold returns the Lemma 2 witness for X ≺_m Y: a rate x0 such that
// for every z < x0 the count of entries at-or-below z in X is >= the
// count in Y, and the count at-or-below x0 is strictly greater in X.
// The second return is false when X ≺_m Y does not hold.
//
// The witness returned is the first position of disagreement's X-value:
// if i is the first index with x_i != y_i and x_i < y_i, then x0 = x_i
// satisfies both clauses (all earlier entries agree, and X has at least
// one more entry <= x0 than Y).
func Threshold(x, y []float64) (x0 float64, ok bool) {
	if Compare(x, y) != MinUnfavorable {
		return 0, false
	}
	for i := range x {
		if netmodel.Less(x[i], y[i]) {
			return x[i], true
		}
	}
	// Unreachable: StrictlyLess guarantees a strict coordinate.
	return 0, false
}

// VerifyThreshold checks both clauses of Lemma 2 for a candidate x0
// against vectors X and Y: ∀z < x0 (sampled at every distinct entry
// value below x0): |{x <= z}| >= |{y <= z}|, and |{x <= x0}| > |{y <= x0}|.
func VerifyThreshold(x, y []float64, x0 float64) bool {
	if CountAtOrBelow(x, x0) <= CountAtOrBelow(y, x0) {
		return false
	}
	// All distinct values below x0 from either vector are the only points
	// where the counting functions change, so checking them checks all z.
	for _, v := range append(append([]float64{}, x...), y...) {
		if netmodel.Less(v, x0) {
			if CountAtOrBelow(x, v) < CountAtOrBelow(y, v) {
				return false
			}
		}
	}
	return true
}

// Utility computes a scalar utility consistent with ≼_m for vectors whose
// entries lie in [0, bound]: U(A) < U(B) iff A ≺_m B (footnote 4 of the
// paper). It maps the ordered vector to a number in base (bound+1)-like
// positional weighting with the *smallest* entries most significant.
//
// Entries are first quantized to the given resolution; callers comparing
// utilities must use the same bound and resolution for both vectors. With
// q = bound/resolution quantization levels, the construction is
// U = Σ_i digit_i * (q+1)^(len-1-i), exactly the "alphabetization" the
// paper describes. For vectors longer than ~15 entries or very fine
// resolutions this overflows float64 precision; Utility is provided for
// illustration and tests, while Compare is the robust comparison.
func Utility(v []float64, bound, resolution float64) float64 {
	if !IsOrdered(v) {
		panic("vecorder: Utility requires an ordered vector")
	}
	q := bound / resolution
	u := 0.0
	for _, x := range v {
		d := x / resolution
		if d > q {
			d = q
		}
		u = u*(q+1) + d
	}
	return u
}
