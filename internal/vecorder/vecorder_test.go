package vecorder

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		x, y []float64
		want Relation
	}{
		{[]float64{1, 2, 3}, []float64{1, 2, 3}, Equal},
		{[]float64{1, 2, 3}, []float64{1, 2, 4}, MinUnfavorable},
		{[]float64{1, 2, 4}, []float64{1, 2, 3}, MinFavorable},
		{[]float64{0, 5, 5}, []float64{1, 2, 3}, MinUnfavorable},   // first entry dominates
		{[]float64{1, 1, 100}, []float64{1, 2, 3}, MinUnfavorable}, // later large entries irrelevant
		{[]float64{}, []float64{}, Equal},
		{[]float64{2}, []float64{1}, MinFavorable},
	}
	for _, c := range cases {
		if got := Compare(c.x, c.y); got != c.want {
			t.Errorf("Compare(%v, %v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestCompareTotality(t *testing.T) {
	// For any two ordered vectors at least one direction holds.
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(8)
		x := randOrdered(rng, n)
		y := randOrdered(rng, n)
		r := Compare(x, y)
		switch r {
		case Equal:
			if !LessEq(x, y) || !LessEq(y, x) {
				t.Fatal("Equal but LessEq fails")
			}
		case MinUnfavorable:
			if !StrictlyLess(x, y) || StrictlyLess(y, x) {
				t.Fatal("asymmetry violated")
			}
		case MinFavorable:
			if !StrictlyLess(y, x) || StrictlyLess(x, y) {
				t.Fatal("asymmetry violated")
			}
		}
	}
}

func TestCompareTransitive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.IntN(6)
		w, x, y := randOrdered(rng, n), randOrdered(rng, n), randOrdered(rng, n)
		if LessEq(w, x) && LessEq(x, y) && !LessEq(w, y) {
			t.Fatalf("transitivity violated: %v %v %v", w, x, y)
		}
	}
}

func TestComparePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("length mismatch accepted")
			}
		}()
		Compare([]float64{1}, []float64{1, 2})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unordered vector accepted")
			}
		}()
		Compare([]float64{2, 1}, []float64{1, 2})
	}()
}

func TestOrderedHelpers(t *testing.T) {
	v := []float64{3, 1, 2}
	o := Ordered(v)
	if !IsOrdered(o) {
		t.Fatal("Ordered output not sorted")
	}
	if v[0] != 3 {
		t.Fatal("Ordered mutated its input")
	}
	if IsOrdered(v) {
		t.Fatal("IsOrdered wrong on unsorted input")
	}
}

func TestCountAtOrBelow(t *testing.T) {
	v := []float64{1, 2, 2, 3}
	cases := []struct {
		z    float64
		want int
	}{{0.5, 0}, {1, 1}, {2, 3}, {2.5, 3}, {3, 4}, {9, 4}}
	for _, c := range cases {
		if got := CountAtOrBelow(v, c.z); got != c.want {
			t.Errorf("CountAtOrBelow(%v) = %d, want %d", c.z, got, c.want)
		}
	}
}

// TestLemma2 checks both directions of the Lemma 2 characterization on
// random vector pairs: X ≺_m Y iff a valid threshold exists.
func TestLemma2(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	sawStrict := 0
	for trial := 0; trial < 1000; trial++ {
		n := 1 + rng.IntN(7)
		x := randOrdered(rng, n)
		y := randOrdered(rng, n)
		x0, ok := Threshold(x, y)
		if StrictlyLess(x, y) != ok {
			t.Fatalf("Threshold existence mismatch for %v vs %v", x, y)
		}
		if ok {
			sawStrict++
			if !VerifyThreshold(x, y, x0) {
				t.Fatalf("threshold %v fails Lemma 2 clauses for %v vs %v", x0, x, y)
			}
		}
	}
	if sawStrict < 100 {
		t.Fatalf("too few strict cases exercised: %d", sawStrict)
	}
}

// TestLemma2Converse: a valid threshold witness implies X ≺_m Y on
// discrete random vectors (the ⇐ direction).
func TestLemma2Converse(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.IntN(5)
		x := randDiscreteOrdered(rng, n)
		y := randDiscreteOrdered(rng, n)
		// Try every entry of x as candidate threshold.
		for _, x0 := range x {
			if VerifyThreshold(x, y, x0) && !StrictlyLess(x, y) {
				t.Fatalf("witness %v exists but %v not ≺_m %v", x0, x, y)
			}
		}
	}
}

// TestUtilityConsistent checks footnote 4: U(A) < U(B) iff A ≺_m B, on
// small discrete vectors where the positional encoding is exact.
func TestUtilityConsistent(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.IntN(5)
		x := randDiscreteOrdered(rng, n)
		y := randDiscreteOrdered(rng, n)
		ux := Utility(x, 10, 1)
		uy := Utility(y, 10, 1)
		switch Compare(x, y) {
		case Equal:
			if ux != uy {
				t.Fatalf("equal vectors, unequal utility: %v %v", x, y)
			}
		case MinUnfavorable:
			if !(ux < uy) {
				t.Fatalf("X ≺_m Y but U(X)=%v >= U(Y)=%v for %v %v", ux, uy, x, y)
			}
		case MinFavorable:
			if !(ux > uy) {
				t.Fatalf("Y ≺_m X but U(X)=%v <= U(Y)=%v for %v %v", ux, uy, x, y)
			}
		}
	}
}

func TestUtilityPanicsUnordered(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unordered vector accepted by Utility")
		}
	}()
	Utility([]float64{2, 1}, 10, 1)
}

func TestRelationString(t *testing.T) {
	if Equal.String() != "equal" || MinUnfavorable.String() != "min-unfavorable" || MinFavorable.String() != "min-favorable" {
		t.Fatal("Relation strings wrong")
	}
	if Relation(42).String() == "" {
		t.Fatal("unknown relation empty")
	}
}

// Property: adding the same constant to every element preserves order
// relations (quick-check style).
func TestCompareShiftInvariant(t *testing.T) {
	f := func(raw []float64, shiftRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		x := quantize(raw[:n])
		y := quantize(raw[n : 2*n])
		shift := float64(shiftRaw)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = x[i] + shift
			ys[i] = y[i] + shift
		}
		return Compare(x, y) == Compare(xs, ys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// quantize maps arbitrary floats to a sorted, well-behaved grid in [0,8].
func quantize(raw []float64) []float64 {
	out := make([]float64, len(raw))
	for i, r := range raw {
		v := r
		if v < 0 {
			v = -v
		}
		for v > 8 {
			v /= 4
		}
		out[i] = float64(int(v))
	}
	sort.Float64s(out)
	return out
}

func randOrdered(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(int(rng.Float64()*100)) / 10
	}
	sort.Float64s(v)
	return v
}

func randDiscreteOrdered(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(rng.IntN(10))
	}
	sort.Float64s(v)
	return v
}
