package vecorder_test

import (
	"fmt"

	"mlfair/internal/vecorder"
)

// ExampleCompare: the min-unfavorable order cares about the smallest
// entries first — a huge rate later cannot compensate a small one
// earlier.
func ExampleCompare() {
	x := []float64{1, 1, 100}
	y := []float64{1, 2, 3}
	fmt.Println(vecorder.Compare(x, y))
	// Output: min-unfavorable
}

// ExampleThreshold exhibits the Lemma 2 witness for a strict comparison.
func ExampleThreshold() {
	x := []float64{1, 2, 3}
	y := []float64{2, 2, 3}
	x0, ok := vecorder.Threshold(x, y)
	fmt.Println(x0, ok)
	// Output: 1 true
}
