package trace

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "x", "value")
	tb.AddRow("1", "10")
	tb.AddFloatRow(2, 3.14159)
	out := tb.String()
	if !strings.Contains(out, "## Demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "x") || !strings.Contains(out, "value") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Fatalf("missing %%.4g float:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tb := NewTable("", "col", "c")
	tb.AddRow("longvalue", "x")
	out := tb.String()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.Contains(line, "  x") && !strings.HasPrefix(line, "longvalue") {
			t.Fatalf("misaligned row: %q", line)
		}
	}
}

// TestAddRowShapes: over-length rows drop their extra cells,
// under-length rows pad with empty cells, and both still render
// column-aligned — every line (header, rule, data) comes out the same
// width, with the kept cells in their proper columns.
func TestAddRowShapes(t *testing.T) {
	tb := NewTable("", "alpha", "b")
	tb.AddRow("1")                // short: second cell renders empty
	tb.AddRow("1", "22", "drop!") // long: third cell dropped
	tb.AddRow()                   // empty: a fully blank data row
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", tb.NumRows())
	}
	out := tb.String()
	if strings.Contains(out, "drop!") {
		t.Fatalf("extra cell kept:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header, rule, 3 data rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	for i, line := range lines {
		if len(line) != len(lines[0]) {
			t.Fatalf("line %d width %d != header width %d (misaligned padding):\n%s",
				i, len(line), len(lines[0]), out)
		}
	}
	// The long row's surviving cell lands in the second column: same
	// offset as the "b" header.
	if strings.Index(lines[3], "22") != strings.Index(lines[0], "b") {
		t.Fatalf("kept cell out of column:\n%s", out)
	}
	if strings.TrimSpace(lines[4]) != "" {
		t.Fatalf("empty row rendered content: %q", lines[4])
	}
}

func TestWriteSeries(t *testing.T) {
	var b strings.Builder
	err := WriteSeries(&b, "Figure X", "loss", []float64{0.01, 0.02},
		[]Series{{Name: "Coordinated", Y: []float64{1.1, 1.2}}, {Name: "Uncoordinated", Y: []float64{2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure X", "loss", "Coordinated", "Uncoordinated", "0.01", "1.2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestWriteSeriesLengthMismatch(t *testing.T) {
	var b strings.Builder
	err := WriteSeries(&b, "t", "x", []float64{1, 2}, []Series{{Name: "s", Y: []float64{1}}})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestFloat(t *testing.T) {
	if Float(0.123456) != "0.1235" {
		t.Fatalf("Float = %q", Float(0.123456))
	}
}
