package trace

import (
	"strings"
	"testing"
	"time"
)

func TestProgressRewritesInPlace(t *testing.T) {
	var b strings.Builder
	p := &Progress{W: &b, MinInterval: -1}
	p.Update("cells 1/4")
	p.Update("cells 22/44")
	p.Update("short")
	p.Done("done")
	out := b.String()
	if strings.Count(out, "\r") != 4 {
		t.Fatalf("expected 4 carriage returns, got %q", out)
	}
	// The shorter line after a longer one must blank-pad the residue:
	// "cells 22/44" is 11 columns, "short" is 5, so 6 blanks follow.
	if !strings.Contains(out, "\rshort"+strings.Repeat(" ", 6)+"\r") {
		t.Fatalf("short line did not clear previous residue: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("Done did not terminate the line: %q", out)
	}
	// Done resets the renderer: the next phase starts a fresh unpadded
	// line instead of clearing residue that scrolled away.
	p.Update("next phase")
	if got := b.String(); !strings.HasSuffix(got, "\n\rnext phase") {
		t.Fatalf("renderer did not reset after Done: %q", got)
	}
}

func TestProgressThrottles(t *testing.T) {
	var b strings.Builder
	p := &Progress{W: &b, MinInterval: time.Hour}
	p.Update("first")
	p.Update("second") // inside the interval: suppressed
	if got := b.String(); got != "\rfirst" {
		t.Fatalf("throttle failed: %q", got)
	}
	p.Done("final") // Done always renders
	if !strings.Contains(b.String(), "final\n") {
		t.Fatalf("Done suppressed: %q", b.String())
	}
}
