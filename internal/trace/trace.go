// Package trace formats experiment output as fixed-width text tables and
// plot-ready series, the textual equivalent of the paper's figures. Every
// experiment driver prints through this package so `cmd/experiments`
// output is uniform and diffable.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cell counts beyond the header count are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddFloatRow appends a row of floats rendered with %.4g.
func (t *Table) AddFloatRow(cells ...float64) {
	s := make([]string, len(cells))
	for i, c := range cells {
		s[i] = Float(c)
	}
	t.AddRow(s...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i, w := range widths {
		rule[i] = strings.Repeat("-", w)
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		// strings.Builder never errors; keep the invariant explicit.
		panic(err)
	}
	return b.String()
}

// Float renders a value the way the tables do (%.4g).
func Float(x float64) string { return fmt.Sprintf("%.4g", x) }

// Series is one named curve of a figure.
type Series struct {
	Name string
	Y    []float64
}

// WriteSeries renders a figure as a table: one x column and one column
// per curve. All series must have len(Y) == len(x).
func WriteSeries(w io.Writer, title, xLabel string, x []float64, series []Series) error {
	headers := append([]string{xLabel}, make([]string, len(series))...)
	for i, s := range series {
		headers[i+1] = s.Name
	}
	t := NewTable(title, headers...)
	for r := range x {
		cells := make([]float64, 0, 1+len(series))
		cells = append(cells, x[r])
		for _, s := range series {
			if r >= len(s.Y) {
				return fmt.Errorf("trace: series %q has %d points, x has %d", s.Name, len(s.Y), len(x))
			}
			cells = append(cells, s.Y[r])
		}
		t.AddFloatRow(cells...)
	}
	_, err := t.WriteTo(w)
	return err
}
