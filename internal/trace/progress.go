package trace

import (
	"io"
	"strings"
	"sync"
	"time"
)

// Progress renders a single self-rewriting status line (carriage
// return, no scrollback spam) — the terminal half of the -progress
// flag. It is safe for concurrent use; Update calls are throttled to
// MinInterval, Done always renders and finishes the line with a
// newline. Writing to a non-terminal is harmless: each rendered line
// just starts with '\r'.
type Progress struct {
	// W receives the rendered line; typically os.Stderr so status never
	// mixes into piped stdout data.
	W io.Writer
	// MinInterval throttles Update renders; zero means 100ms. Set
	// negative to render every Update (tests).
	MinInterval time.Duration

	mu      sync.Mutex
	last    time.Time
	lastLen int
}

// Update renders line if the throttle interval has passed.
func (p *Progress) Update(line string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	iv := p.MinInterval
	if iv == 0 {
		iv = 100 * time.Millisecond
	}
	if iv > 0 && !p.last.IsZero() && time.Since(p.last) < iv {
		return
	}
	p.last = time.Now()
	p.render(line)
}

// Done renders the final line unconditionally and terminates it with a
// newline, then resets the renderer so a subsequent phase (the next
// sweep of a multi-driver run) starts a fresh line.
func (p *Progress) Done(line string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.render(line)
	io.WriteString(p.W, "\n")
	p.last = time.Time{}
	p.lastLen = 0
}

// render rewrites the status line in place, blank-padding over any
// residue from a longer previous line.
func (p *Progress) render(line string) {
	pad := ""
	if n := p.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	io.WriteString(p.W, "\r"+line+pad)
	p.lastLen = len(line)
}
