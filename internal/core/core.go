// Package core is the public facade of the mlfair library: a compact API
// over the network model, the max-min fair allocator, the fairness
// property checkers, the redundancy analysis, and the layered-protocol
// simulator. Examples and command-line tools program against this
// package; the specialized internal packages remain available for
// fine-grained use.
//
// The three-call quickstart:
//
//	net := core.NewNetworkBuilder().  // describe links and sessions
//		Link(3).                      // capacity 3
//		MultiRateSession(core.Unbounded, core.Path(0)).
//		Build()
//	res, _ := core.MaxMinFair(net)    // allocate
//	rep := core.CheckFairness(res.Alloc) // audit the four properties
package core

import (
	"math"

	"mlfair/internal/capsim"
	"mlfair/internal/fairness"
	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
	"mlfair/internal/protocol"
	"mlfair/internal/redundancy"
	"mlfair/internal/sim"
	"mlfair/internal/treesim"
)

// Unbounded is the κ value for sessions with no maximum desired rate.
var Unbounded = math.Inf(1)

// Re-exported model types. See the netmodel package for full
// documentation.
type (
	// Network is an immutable network: graph, sessions, data-paths.
	Network = netmodel.Network
	// Allocation assigns a rate to every receiver of a network.
	Allocation = netmodel.Allocation
	// Session describes one multicast session.
	Session = netmodel.Session
	// SessionType is single-rate or multi-rate (the paper's Γ).
	SessionType = netmodel.SessionType
	// ReceiverID names receiver r_{i,k} by indices (i, k).
	ReceiverID = netmodel.ReceiverID
	// Graph is an undirected capacitated multigraph.
	Graph = netmodel.Graph
)

// Session type constants.
const (
	SingleRate = netmodel.SingleRate
	MultiRate  = netmodel.MultiRate
)

// AllocResult is a max-min fair allocation with per-receiver bottleneck
// diagnostics.
type AllocResult = maxmin.Result

// MaxMinFair computes the unique max-min fair allocation of a network
// containing any mix of single-rate, multi-rate and unicast sessions
// (the paper's Appendix A algorithm).
func MaxMinFair(net *Network) (*AllocResult, error) { return maxmin.Allocate(net) }

// FairnessReport is the outcome of checking the paper's four fairness
// properties.
type FairnessReport = fairness.Report

// CheckFairness evaluates all four Section 2.1 fairness properties
// (fully-utilized-receiver, same-path-receiver, per-receiver-link,
// per-session-link) on an allocation.
func CheckFairness(a *Allocation) *FairnessReport { return fairness.Check(a) }

// Redundancy measures Definition 3 on an allocation: session i's link
// usage on link j divided by its maximum downstream receiver rate. The
// boolean is false when the session has no positive-rate receiver on the
// link.
func Redundancy(a *Allocation, session, link int) (float64, bool) {
	return redundancy.OfAllocation(a, session, link)
}

// Protocol kinds for the layered congestion-control simulator.
const (
	Uncoordinated = protocol.Uncoordinated
	Deterministic = protocol.Deterministic
	Coordinated   = protocol.Coordinated
)

// SimConfig parameterizes a packet-level protocol simulation on the
// paper's modified-star topology.
type SimConfig = sim.Config

// SimResult summarizes a simulation run.
type SimResult = sim.Result

// Simulate runs the layered multicast congestion-control simulator.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// NetworkBuilder assembles abstract networks fluently. It wraps
// netmodel.Builder with a chainable API; receivers' data-paths are given
// as link-index lists.
type NetworkBuilder struct {
	b        *netmodel.Builder
	sessions int
}

// NewNetworkBuilder returns an empty builder.
func NewNetworkBuilder() *NetworkBuilder {
	return &NetworkBuilder{b: netmodel.NewBuilder()}
}

// Link adds a link with the given capacity; links are numbered 0,1,...
// in call order.
func (nb *NetworkBuilder) Link(capacity float64) *NetworkBuilder {
	nb.b.AddLink(capacity)
	return nb
}

// Links adds several links at once.
func (nb *NetworkBuilder) Links(capacities ...float64) *NetworkBuilder {
	for _, c := range capacities {
		nb.b.AddLink(c)
	}
	return nb
}

// Path is a receiver's data-path: the set of links it crosses.
func Path(links ...int) []int { return links }

// MultiRateSession adds a multi-rate session with maximum desired rate
// maxRate and one receiver per path.
func (nb *NetworkBuilder) MultiRateSession(maxRate float64, paths ...[]int) *NetworkBuilder {
	return nb.session(MultiRate, maxRate, paths)
}

// SingleRateSession adds a single-rate session.
func (nb *NetworkBuilder) SingleRateSession(maxRate float64, paths ...[]int) *NetworkBuilder {
	return nb.session(SingleRate, maxRate, paths)
}

func (nb *NetworkBuilder) session(t SessionType, maxRate float64, paths [][]int) *NetworkBuilder {
	s := nb.b.AddSession(t, maxRate, len(paths))
	for k, p := range paths {
		nb.b.SetPath(s, k, p...)
	}
	nb.sessions++
	return nb
}

// WithRedundancy sets the most recently added session's link-rate
// function to SharedScaledMax(factor): usage factor×max on links shared
// by two or more of its receivers.
func (nb *NetworkBuilder) WithRedundancy(factor float64) *NetworkBuilder {
	nb.b.SetLinkRate(nb.sessions-1, netmodel.SharedScaledMax(factor))
	return nb
}

// Build assembles the network.
func (nb *NetworkBuilder) Build() (*Network, error) { return nb.b.Build() }

// MustBuild assembles the network, panicking on error (for examples and
// fixed test fixtures).
func (nb *NetworkBuilder) MustBuild() *Network {
	n, err := nb.b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

// MaxMinFairWeighted computes the weighted (TCP-style) max-min fair
// allocation: rates proportional to weights wherever unconstrained. nil
// weights mean uniform. See maxmin.Weights.
func MaxMinFairWeighted(net *Network, w Weights) (*AllocResult, error) {
	return maxmin.AllocateWeighted(net, w)
}

// Weights assigns per-receiver weights for MaxMinFairWeighted.
type Weights = maxmin.Weights

// TreeConfig parameterizes a protocol simulation over an arbitrary
// multicast tree (per-link loss, per-link redundancy measurement).
type TreeConfig = treesim.Config

// TreeResult is the tree simulation outcome.
type TreeResult = treesim.Result

// Tree is a rooted multicast distribution tree.
type Tree = treesim.Tree

// SimulateTree runs the layered protocols over a multicast tree and
// measures Definition-3 redundancy on every link.
func SimulateTree(cfg TreeConfig) (*TreeResult, error) { return treesim.Run(cfg) }

// ClosedLoopConfig parameterizes a capacity-coupled simulation in which
// loss emerges from congestion instead of being configured.
type ClosedLoopConfig = capsim.Config

// ClosedLoopResult is the closed-loop outcome.
type ClosedLoopResult = capsim.Result

// ClosedLoopSession describes one session in a closed-loop run.
type ClosedLoopSession = capsim.SessionConfig

// SimulateClosedLoop runs the capacity-coupled simulator.
func SimulateClosedLoop(cfg ClosedLoopConfig) (*ClosedLoopResult, error) { return capsim.Run(cfg) }

// FluidFairRates returns the multi-rate max-min fair rates of a
// closed-loop star configuration — the reference the protocols are
// measured against.
func FluidFairRates(cfg ClosedLoopConfig) [][]float64 { return capsim.FairRates(cfg) }
