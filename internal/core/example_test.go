package core_test

import (
	"fmt"

	"mlfair/internal/core"
)

// ExampleMaxMinFair computes the paper's Figure 2 allocation.
func ExampleMaxMinFair() {
	net := core.NewNetworkBuilder().
		Links(5, 2, 3, 6).
		SingleRateSession(100, core.Path(0, 3), core.Path(1), core.Path(2)).
		MultiRateSession(100, core.Path(0, 3)).
		MustBuild()
	res, _ := core.MaxMinFair(net)
	fmt.Println(res.Alloc)
	// Output: S1[S]: 2 2 2 | S2[M]: 3
}

// ExampleCheckFairness audits the four Section 2.1 properties.
func ExampleCheckFairness() {
	net := core.NewNetworkBuilder().
		Links(10).
		MultiRateSession(core.Unbounded, core.Path(0)).
		MultiRateSession(core.Unbounded, core.Path(0)).
		MustBuild()
	res, _ := core.MaxMinFair(net)
	rep := core.CheckFairness(res.Alloc)
	fmt.Println(rep.AllHold())
	// Output: true
}

// ExampleRedundancy measures Definition 3 on an inefficient session.
func ExampleRedundancy() {
	net := core.NewNetworkBuilder().
		Links(6, 5, 2, 3).
		MultiRateSession(100, core.Path(0, 1), core.Path(0, 2), core.Path(0, 3)).
		WithRedundancy(2).
		MultiRateSession(100, core.Path(0, 1)).
		MustBuild()
	res, _ := core.MaxMinFair(net)
	r, _ := core.Redundancy(res.Alloc, 0, 0)
	fmt.Printf("%.0f\n", r)
	// Output: 2
}
