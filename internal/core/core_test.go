package core

import (
	"testing"

	"mlfair/internal/netmodel"
)

func TestQuickstartFlow(t *testing.T) {
	net := NewNetworkBuilder().
		Links(5, 2, 3, 6).
		SingleRateSession(100, Path(0, 3), Path(1), Path(2)).
		MultiRateSession(100, Path(0, 3)).
		MustBuild()
	res, err := MaxMinFair(net)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2 rates.
	for k := 0; k < 3; k++ {
		if !netmodel.Eq(res.Alloc.Rate(0, k), 2) {
			t.Fatalf("S1 rate = %v, want 2", res.Alloc.Rate(0, k))
		}
	}
	if !netmodel.Eq(res.Alloc.Rate(1, 0), 3) {
		t.Fatalf("S2 rate = %v, want 3", res.Alloc.Rate(1, 0))
	}
	rep := CheckFairness(res.Alloc)
	if rep.AllHold() {
		t.Fatal("single-rate Figure 2 should fail properties")
	}
}

func TestBuilderWithRedundancy(t *testing.T) {
	net := NewNetworkBuilder().
		Links(6, 5, 2, 3).
		MultiRateSession(100, Path(0, 1), Path(0, 2), Path(0, 3)).
		WithRedundancy(2).
		MultiRateSession(100, Path(0, 1)).
		MustBuild()
	res, err := MaxMinFair(net)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := Redundancy(res.Alloc, 0, 0)
	if !ok || !netmodel.Eq(r, 2) {
		t.Fatalf("redundancy = %v (%v), want 2", r, ok)
	}
	rep := CheckFairness(res.Alloc)
	if rep.PerSessionLinkFair() {
		t.Fatal("redundancy should break per-session-link-fairness")
	}
}

func TestBuildError(t *testing.T) {
	_, err := NewNetworkBuilder().
		Link(1).
		MultiRateSession(Unbounded, nil). // empty path
		Build()
	if err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	NewNetworkBuilder().Link(1).MultiRateSession(Unbounded, nil).MustBuild()
}

func TestSimulateFacade(t *testing.T) {
	res, err := Simulate(SimConfig{
		Layers: 4, Receivers: 3, IndependentLoss: 0.02,
		Protocol: Coordinated, Packets: 5000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsSent != 5000 {
		t.Fatalf("sent = %d", res.PacketsSent)
	}
	if res.Redundancy <= 0 {
		t.Fatalf("redundancy = %v", res.Redundancy)
	}
}

func TestWeightedFacade(t *testing.T) {
	net := NewNetworkBuilder().
		Link(12).
		MultiRateSession(Unbounded, Path(0)).
		MultiRateSession(Unbounded, Path(0)).
		MustBuild()
	res, err := MaxMinFairWeighted(net, Weights{{1}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if !netmodel.Eq(res.Alloc.Rate(0, 0), 3) || !netmodel.Eq(res.Alloc.Rate(1, 0), 9) {
		t.Fatalf("weighted rates: %s", res.Alloc)
	}
}

func TestTreeFacade(t *testing.T) {
	res, err := SimulateTree(TreeConfig{
		Tree:   &Tree{Parent: []int{0, 0, 1}, Loss: []float64{0, 0.01, 0.01}, Receivers: []int{2}},
		Layers: 4, Protocol: Coordinated, Packets: 4000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Links) != 2 {
		t.Fatalf("links = %d", len(res.Links))
	}
}

func TestClosedLoopFacade(t *testing.T) {
	cfg := ClosedLoopConfig{
		SharedCapacity: 8, Packets: 4000, Seed: 5,
		Sessions: []ClosedLoopSession{{Protocol: Deterministic, Layers: 4, FanoutCapacities: []float64{4}}},
	}
	res, err := SimulateClosedLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReceiverRates[0][0] <= 0 {
		t.Fatal("no goodput")
	}
	fair := FluidFairRates(cfg)
	if !netmodel.Eq(fair[0][0], 4) {
		t.Fatalf("fluid fair rate = %v", fair[0][0])
	}
}
