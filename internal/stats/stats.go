// Package stats provides the small set of summary statistics the
// experiment harness needs: streaming mean/variance (Welford), standard
// error, and normal-approximation confidence intervals, matching how the
// paper reports simulation results ("each point plotted is the mean of 30
// experiments ... variance less than 1% with 95% confidence").
package stats

import (
	"fmt"
	"math"
)

// Accumulator computes streaming mean and variance using Welford's
// algorithm. The zero value is ready to use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the observation count.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean (0 with no observations).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean under the normal approximation (z = 1.96), appropriate for the
// 30-replication experiments the harness runs.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// Summary is a point estimate with its uncertainty.
type Summary struct {
	Mean  float64
	CI95  float64
	N     int64
	StdEv float64
}

// Summarize reduces a sample to a Summary.
func Summarize(xs []float64) Summary {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return Summary{Mean: a.Mean(), CI95: a.CI95(), N: a.N(), StdEv: a.StdDev()}
}

// String renders "mean ± ci".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean, s.CI95)
}

// Mean returns the mean of a sample (0 for empty input).
func Mean(xs []float64) float64 {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a.Mean()
}
