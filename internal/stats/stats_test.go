package stats

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Fatal("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", a.Mean())
	}
	// Sum of squared deviations = 32; sample variance = 32/7.
	if want := 32.0 / 7.0; math.Abs(a.Variance()-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", a.Variance(), want)
	}
	if math.Abs(a.StdDev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("StdDev = %v", a.StdDev())
	}
	if math.Abs(a.StdErr()-a.StdDev()/math.Sqrt(8)) > 1e-12 {
		t.Fatalf("StdErr = %v", a.StdErr())
	}
	if math.Abs(a.CI95()-1.96*a.StdErr()) > 1e-12 {
		t.Fatalf("CI95 = %v", a.CI95())
	}
}

func TestSingleObservation(t *testing.T) {
	var a Accumulator
	a.Add(3)
	if a.Mean() != 3 || a.Variance() != 0 {
		t.Fatal("single observation mishandled")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	xs := make([]float64, 1000)
	sum := 0.0
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		sum += xs[i]
	}
	mean := sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	naiveVar := ss / float64(len(xs)-1)

	s := Summarize(xs)
	if math.Abs(s.Mean-mean) > 1e-9 {
		t.Fatalf("mean %v vs naive %v", s.Mean, mean)
	}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	if math.Abs(a.Variance()-naiveVar) > 1e-9 {
		t.Fatalf("variance %v vs naive %v", a.Variance(), naiveVar)
	}
}

func TestCI95Coverage(t *testing.T) {
	// The 95% CI should cover the true mean roughly 95% of the time.
	rng := rand.New(rand.NewPCG(73, 74))
	const trials = 400
	covered := 0
	for trial := 0; trial < trials; trial++ {
		var a Accumulator
		for i := 0; i < 30; i++ {
			a.Add(rng.NormFloat64())
		}
		if math.Abs(a.Mean()) <= a.CI95() {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.90 || frac > 0.99 {
		t.Fatalf("CI coverage = %v, want ~0.95", frac)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if !strings.Contains(s.String(), "±") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
}
