// Package markov provides finite continuous-time Markov chains and
// stationary-distribution solvers, plus the two-receiver star models of
// the paper's Section 4 analysis (Figure 7a): exact chains for the
// Uncoordinated, Deterministic and Coordinated layered congestion-control
// protocols under shared and independent Bernoulli loss.
//
// The paper's own Markov models (technical-report Appendix F) are not
// published; these chains are reconstructed from the protocol definitions
// with one standard modeling step — packet and signal event streams are
// Poissonized (exponential inter-event times at the true rates) so the
// joint process is a CTMC. Shared events (a packet crossing the shared
// link, a sender signal) drive both receivers simultaneously, preserving
// exactly the loss correlation the analysis studies. The paper's headline
// analytical finding — redundancy is highest when receivers experience
// the same end-to-end loss rates — is reproduced by these models (see the
// tests and the experiments package).
package markov

import (
	"errors"
	"fmt"
	"math"
)

// Chain is a finite-state continuous-time Markov chain described by its
// off-diagonal transition rates.
type Chain struct {
	n     int
	rates map[int]map[int]float64
}

// NewChain creates a chain with n states and no transitions.
func NewChain(n int) *Chain {
	if n < 1 {
		panic("markov: need at least one state")
	}
	return &Chain{n: n, rates: make(map[int]map[int]float64)}
}

// NumStates returns the state count.
func (c *Chain) NumStates() int { return c.n }

// AddRate accumulates transition rate r from state i to state j.
// Self-loops and non-positive rates are ignored (they do not affect the
// stationary distribution).
func (c *Chain) AddRate(i, j int, r float64) {
	if i < 0 || i >= c.n || j < 0 || j >= c.n {
		panic(fmt.Sprintf("markov: state out of range: %d -> %d (n=%d)", i, j, c.n))
	}
	if i == j || r <= 0 {
		return
	}
	row := c.rates[i]
	if row == nil {
		row = make(map[int]float64)
		c.rates[i] = row
	}
	row[j] += r
}

// Rate returns the accumulated rate from i to j.
func (c *Chain) Rate(i, j int) float64 { return c.rates[i][j] }

// ErrNotIrreducible is returned when the stationary solve fails, which
// for these models indicates a disconnected chain.
var ErrNotIrreducible = errors.New("markov: chain is not irreducible")

// Stationary solves πQ = 0, Σπ = 1 by dense Gaussian elimination with
// partial pivoting. Suitable for chains up to a few thousand states.
func (c *Chain) Stationary() ([]float64, error) {
	n := c.n
	if n == 1 {
		return []float64{1}, nil
	}
	// Build A = Qᵀ with the last equation replaced by Σπ = 1.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
	}
	for i, row := range c.rates {
		var out float64
		for j, r := range row {
			a[j][i] += r // inflow to j from i
			out += r
		}
		a[i][i] -= out
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	a[n-1][n] = 1

	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-14 {
			return nil, ErrNotIrreducible
		}
		a[col], a[piv] = a[piv], a[col]
		inv := 1 / a[col][col]
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col] * inv
			for k := col; k <= n; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	pi := make([]float64, n)
	for i := 0; i < n; i++ {
		pi[i] = a[i][n] / a[i][i]
		if pi[i] < 0 {
			if pi[i] < -1e-9 {
				return nil, ErrNotIrreducible
			}
			pi[i] = 0
		}
	}
	// Renormalize against accumulated round-off.
	sum := 0.0
	for _, p := range pi {
		sum += p
	}
	if sum <= 0 {
		return nil, ErrNotIrreducible
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi, nil
}

// StationaryPower computes the stationary distribution by uniformization
// and power iteration, as an independent cross-check of (and scalable
// alternative to) the direct solve. It iterates until the L1 change is
// below tol or maxIter is reached. The transition structure is flattened
// to index/value arrays once, so each iteration is a sparse
// matrix-vector product.
func (c *Chain) StationaryPower(tol float64, maxIter int) ([]float64, error) {
	n := c.n
	if n == 1 {
		return []float64{1}, nil
	}
	// Uniformization constant: max outflow rate.
	lambda := 0.0
	out := make([]float64, n)
	nnz := 0
	for i, row := range c.rates {
		for _, r := range row {
			out[i] += r
		}
		nnz += len(row)
		if out[i] > lambda {
			lambda = out[i]
		}
	}
	if lambda == 0 {
		return nil, ErrNotIrreducible
	}
	lambda *= 1.05
	// CSR-style flattening.
	src := make([]int32, 0, nnz)
	dst := make([]int32, 0, nnz)
	prob := make([]float64, 0, nnz)
	for i := 0; i < n; i++ {
		for j, r := range c.rates[i] {
			src = append(src, int32(i))
			dst = append(dst, int32(j))
			prob = append(prob, r/lambda)
		}
	}
	stay := make([]float64, n)
	for i := 0; i < n; i++ {
		stay[i] = 1 - out[i]/lambda
	}
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = pi[i] * stay[i]
		}
		for e := range src {
			next[dst[e]] += pi[src[e]] * prob[e]
		}
		diff := 0.0
		for i := range pi {
			diff += math.Abs(next[i] - pi[i])
		}
		pi, next = next, pi
		if diff < tol {
			return pi, nil
		}
	}
	return pi, nil
}

// ReachableFrom returns the set of states reachable from start by
// positive-rate transitions (including start itself).
func (c *Chain) ReachableFrom(start int) []bool {
	if start < 0 || start >= c.n {
		panic("markov: start state out of range")
	}
	seen := make([]bool, c.n)
	seen[start] = true
	queue := []int{start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for j := range c.rates[s] {
			if !seen[j] {
				seen[j] = true
				queue = append(queue, j)
			}
		}
	}
	return seen
}

// Restrict returns the sub-chain induced by the states reachable from
// start, along with the original index of each reduced state. Solving
// the restriction avoids singularities from unreachable states (which
// have stationary probability zero by construction).
func (c *Chain) Restrict(start int) (*Chain, []int) {
	reach := c.ReachableFrom(start)
	orig := make([]int, 0, c.n)
	index := make([]int, c.n)
	for s := 0; s < c.n; s++ {
		index[s] = -1
		if reach[s] {
			index[s] = len(orig)
			orig = append(orig, s)
		}
	}
	r := NewChain(len(orig))
	for s, row := range c.rates {
		if !reach[s] {
			continue
		}
		for j, rate := range row {
			r.AddRate(index[s], index[j], rate)
		}
	}
	return r, orig
}

// StationaryFrom computes the stationary distribution of the process
// started in state start: unreachable states get probability zero, and
// the reachable sub-chain is solved directly (or by power iteration when
// it exceeds denseLimit states).
func (c *Chain) StationaryFrom(start, denseLimit int) ([]float64, error) {
	sub, orig := c.Restrict(start)
	var (
		pi  []float64
		err error
	)
	if sub.NumStates() > denseLimit {
		pi, err = sub.StationaryPower(1e-12, 200000)
	} else {
		pi, err = sub.Stationary()
	}
	if err != nil {
		return nil, err
	}
	full := make([]float64, c.n)
	for i, s := range orig {
		full[s] = pi[i]
	}
	return full, nil
}

// Expectation returns Σ_s π(s)·f(s).
func Expectation(pi []float64, f func(state int) float64) float64 {
	e := 0.0
	for s, p := range pi {
		e += p * f(s)
	}
	return e
}
