package markov

import (
	"fmt"
	"math"

	"mlfair/internal/protocol"
)

// StarParams describes the two-receiver analysis topology of Figure 7(a):
// a shared link with Bernoulli loss rate SharedLoss feeding two fanout
// links with independent loss rates Loss1 and Loss2.
type StarParams struct {
	// Layers is M; the Deterministic model's state space grows as
	// (Σ_v 2^(2(v-1)))², so keep M <= 4 for that protocol.
	Layers int
	// SharedLoss, Loss1, Loss2 are the Bernoulli loss rates p, p1, p2.
	SharedLoss, Loss1, Loss2 float64
	// SignalPeriod is the Coordinated protocol's base signal period
	// (0 means 1.0, matching the simulator).
	SignalPeriod float64
}

func (p StarParams) validate() error {
	if p.Layers < 1 {
		return fmt.Errorf("markov: Layers = %d", p.Layers)
	}
	for _, x := range []float64{p.SharedLoss, p.Loss1, p.Loss2} {
		if x < 0 || x >= 1 {
			return fmt.Errorf("markov: loss rate %v outside [0,1)", x)
		}
	}
	return nil
}

// outcome is one branch of a receiver's reaction to a received packet.
type outcome struct {
	state int
	prob  float64
}

// recvModel is a per-receiver protocol state machine in enumerable form,
// mirroring protocol.Receiver exactly (see the equivalence tests).
type recvModel interface {
	numStates() int
	initial() int
	level(s int) int
	congest(s int) int
	receive(s int) []outcome
	signal(s, sigLevel int) int
}

// --- Uncoordinated: state = level-1. ---

type uncoordModel struct{ m int }

func (u uncoordModel) numStates() int    { return u.m }
func (u uncoordModel) initial() int      { return 0 }
func (u uncoordModel) level(s int) int   { return s + 1 }
func (u uncoordModel) congest(s int) int { return max(0, s-1) }
func (u uncoordModel) receive(s int) []outcome {
	v := s + 1
	if v == u.m {
		return []outcome{{state: s, prob: 1}}
	}
	q := 1 / float64(protocol.JoinThreshold(v))
	if q >= 1 {
		return []outcome{{state: s + 1, prob: 1}}
	}
	return []outcome{{state: s + 1, prob: q}, {state: s, prob: 1 - q}}
}
func (u uncoordModel) signal(s, _ int) int { return s }

// --- Deterministic: state = (level, cleanCount). ---

type determModel struct {
	m      int
	states []struct{ v, c int }
	index  map[[2]int]int
}

func newDetermModel(m int) *determModel {
	d := &determModel{m: m, index: map[[2]int]int{}}
	for v := 1; v <= m; v++ {
		for c := 0; c < protocol.JoinThreshold(v); c++ {
			d.index[[2]int{v, c}] = len(d.states)
			d.states = append(d.states, struct{ v, c int }{v, c})
		}
	}
	return d
}

func (d *determModel) numStates() int  { return len(d.states) }
func (d *determModel) initial() int    { return d.index[[2]int{1, 0}] }
func (d *determModel) level(s int) int { return d.states[s].v }
func (d *determModel) congest(s int) int {
	v := d.states[s].v
	if v > 1 {
		v--
	}
	return d.index[[2]int{v, 0}]
}
func (d *determModel) receive(s int) []outcome {
	v, c := d.states[s].v, d.states[s].c
	if c+1 >= protocol.JoinThreshold(v) {
		nv := v
		if nv < d.m {
			nv++
		}
		return []outcome{{state: d.index[[2]int{nv, 0}], prob: 1}}
	}
	return []outcome{{state: d.index[[2]int{v, c + 1}], prob: 1}}
}
func (d *determModel) signal(s, _ int) int { return s }

// --- Coordinated: state = (level-1)*2 + clean. ---

type coordModel struct{ m int }

func (c coordModel) numStates() int  { return 2 * c.m }
func (c coordModel) initial() int    { return c.enc(1, true) }
func (c coordModel) level(s int) int { return s/2 + 1 }
func (c coordModel) clean(s int) bool {
	return s%2 == 1
}
func (c coordModel) enc(v int, clean bool) int {
	s := (v - 1) * 2
	if clean {
		s++
	}
	return s
}
func (c coordModel) congest(s int) int {
	v := c.level(s)
	if v > 1 {
		v--
	}
	return c.enc(v, false)
}
func (c coordModel) receive(s int) []outcome { return []outcome{{state: s, prob: 1}} }
func (c coordModel) signal(s, sigLevel int) int {
	v := c.level(s)
	if sigLevel < v {
		return s
	}
	if c.clean(s) {
		if v < c.m {
			v++
		}
		return c.enc(v, true)
	}
	return c.enc(v, true)
}

// Model is a solvable two-receiver protocol chain with its measurement
// functions.
type Model struct {
	Chain  *Chain
	kind   protocol.Kind
	prm    StarParams
	rm     recvModel
	size   int // per-receiver state count
	pShare float64
}

// joint combines per-receiver states into a chain state.
func (m *Model) joint(s1, s2 int) int { return s1*m.size + s2 }

// split recovers per-receiver states.
func (m *Model) split(s int) (int, int) { return s / m.size, s % m.size }

// layerRate returns the transmission rate of layer ℓ (1-based) in the
// exponential scheme: r_1 = 1, r_ℓ = 2^(ℓ-2).
func layerRate(l int) float64 {
	if l == 1 {
		return 1
	}
	return math.Exp2(float64(l - 2))
}

// cumulativeRate is 2^(v-1), the aggregate rate at subscription level v.
func cumulativeRate(v int) float64 { return math.Exp2(float64(v - 1)) }

// BuildStar constructs the CTMC for two receivers of the given protocol
// on the Figure 7(a) topology. Packet events are Poissonized at the true
// layer rates; a packet on layer ℓ is a joint event for both subscribed
// receivers (shared loss hits both; fanout losses are independent).
// Coordinated join signals are likewise joint Poisson events at the
// nested schedule's level densities.
func BuildStar(kind protocol.Kind, prm StarParams) (*Model, error) {
	if err := prm.validate(); err != nil {
		return nil, err
	}
	var rm recvModel
	switch kind {
	case protocol.Uncoordinated:
		rm = uncoordModel{m: prm.Layers}
	case protocol.Deterministic:
		if prm.Layers > 4 {
			return nil, fmt.Errorf("markov: Deterministic model limited to 4 layers (state explosion), got %d", prm.Layers)
		}
		rm = newDetermModel(prm.Layers)
	case protocol.Coordinated:
		rm = coordModel{m: prm.Layers}
	default:
		return nil, fmt.Errorf("markov: unknown protocol %v", kind)
	}
	m := &Model{kind: kind, prm: prm, rm: rm, size: rm.numStates(), pShare: prm.SharedLoss}
	m.Chain = NewChain(m.size * m.size)
	losses := [2]float64{prm.Loss1, prm.Loss2}

	for s1 := 0; s1 < m.size; s1++ {
		for s2 := 0; s2 < m.size; s2++ {
			s := m.joint(s1, s2)
			states := [2]int{s1, s2}
			maxV := max(rm.level(s1), rm.level(s2))
			for l := 1; l <= maxV; l++ {
				rate := layerRate(l)
				in1 := rm.level(s1) >= l
				in2 := rm.level(s2) >= l
				// Shared loss: every subscribed receiver congests.
				t1, t2 := s1, s2
				if in1 {
					t1 = rm.congest(s1)
				}
				if in2 {
					t2 = rm.congest(s2)
				}
				m.Chain.AddRate(s, m.joint(t1, t2), rate*prm.SharedLoss)
				// Survived the shared link: independent per-receiver fates.
				d1 := receiverDist(rm, states[0], in1, losses[0])
				d2 := receiverDist(rm, states[1], in2, losses[1])
				for _, o1 := range d1 {
					for _, o2 := range d2 {
						m.Chain.AddRate(s, m.joint(o1.state, o2.state),
							rate*(1-prm.SharedLoss)*o1.prob*o2.prob)
					}
				}
			}
			if kind == protocol.Coordinated && prm.Layers > 1 {
				period := prm.SignalPeriod
				if period == 0 {
					period = 1
				}
				for _, ls := range signalLevels(prm.Layers) {
					m.Chain.AddRate(s,
						m.joint(rm.signal(s1, ls.level), rm.signal(s2, ls.level)),
						ls.density/period)
				}
			}
		}
	}
	return m, nil
}

// receiverDist is one receiver's reaction distribution to a packet that
// survived the shared link.
func receiverDist(rm recvModel, s int, subscribed bool, loss float64) []outcome {
	if !subscribed {
		return []outcome{{state: s, prob: 1}}
	}
	out := []outcome{{state: rm.congest(s), prob: loss}}
	for _, o := range rm.receive(s) {
		out = append(out, outcome{state: o.state, prob: (1 - loss) * o.prob})
	}
	return out
}

// signalLevel couples a signal level with its per-period density in the
// nested "binary ruler" schedule: level ℓ < M-1 has density 2^-ℓ, and
// the capped top level M-1 has density 2^-(M-2).
type signalLevelDensity struct {
	level   int
	density float64
}

func signalLevels(m int) []signalLevelDensity {
	var out []signalLevelDensity
	for l := 1; l <= m-1; l++ {
		d := math.Exp2(-float64(l))
		if l == m-1 {
			d = math.Exp2(-float64(l - 1))
		}
		out = append(out, signalLevelDensity{level: l, density: d})
	}
	return out
}

// Measures holds the stationary performance measures of a model.
type Measures struct {
	// Redundancy is E[shared-link rate] / max goodput (Definition 3).
	Redundancy float64
	// LinkRate is the expected shared-link usage in packets per time.
	LinkRate float64
	// Goodput1, Goodput2 are the receivers' long-run receive rates.
	Goodput1, Goodput2 float64
	// MeanLevel1, MeanLevel2 are expected subscription levels.
	MeanLevel1, MeanLevel2 float64
}

// Solve computes the stationary distribution of the process started
// with both receivers at the base layer, and evaluates the measures.
// Reachable sub-chains beyond ~1500 states (the Deterministic model at
// 4 layers) are solved by power iteration instead of dense elimination.
func (m *Model) Solve() (*Measures, error) {
	start := m.joint(m.rm.initial(), m.rm.initial())
	pi, err := m.Chain.StationaryFrom(start, 1500)
	if err != nil {
		return nil, err
	}
	return m.measuresFrom(pi), nil
}

// SolvePower is Solve using the power-iteration solver (cross-check).
func (m *Model) SolvePower(tol float64, maxIter int) (*Measures, error) {
	pi, err := m.Chain.StationaryPower(tol, maxIter)
	if err != nil {
		return nil, err
	}
	return m.measuresFrom(pi), nil
}

func (m *Model) measuresFrom(pi []float64) *Measures {
	ms := &Measures{}
	ms.LinkRate = Expectation(pi, func(s int) float64 {
		s1, s2 := m.split(s)
		return cumulativeRate(max(m.rm.level(s1), m.rm.level(s2)))
	})
	g := func(which int, loss float64) float64 {
		return Expectation(pi, func(s int) float64 {
			s1, s2 := m.split(s)
			v := m.rm.level(s1)
			if which == 1 {
				v = m.rm.level(s2)
			}
			return cumulativeRate(v) * (1 - m.pShare) * (1 - loss)
		})
	}
	ms.Goodput1 = g(0, m.prm.Loss1)
	ms.Goodput2 = g(1, m.prm.Loss2)
	ms.MeanLevel1 = Expectation(pi, func(s int) float64 { s1, _ := m.split(s); return float64(m.rm.level(s1)) })
	ms.MeanLevel2 = Expectation(pi, func(s int) float64 { _, s2 := m.split(s); return float64(m.rm.level(s2)) })
	if mg := math.Max(ms.Goodput1, ms.Goodput2); mg > 0 {
		ms.Redundancy = ms.LinkRate / mg
	}
	return ms
}
