package markov

import (
	"math"
	"testing"

	"mlfair/internal/protocol"
)

// TestSingleLayerModel: M=1 chains collapse to one reachable state with
// redundancy equal to pure loss inflation.
func TestSingleLayerModel(t *testing.T) {
	for _, k := range protocol.Kinds() {
		ms := solve(t, k, StarParams{Layers: 1, SharedLoss: 0.02, Loss1: 0.05, Loss2: 0.05})
		if ms.MeanLevel1 != 1 || ms.MeanLevel2 != 1 {
			t.Errorf("%v: levels %v %v", k, ms.MeanLevel1, ms.MeanLevel2)
		}
		want := 1 / ((1 - 0.02) * (1 - 0.05))
		if math.Abs(ms.Redundancy-want) > 1e-9 {
			t.Errorf("%v: redundancy %v, want %v", k, ms.Redundancy, want)
		}
	}
}

// TestTwoLayerModel: M=2 chains solve and sit strictly between levels.
func TestTwoLayerModel(t *testing.T) {
	for _, k := range protocol.Kinds() {
		ms := solve(t, k, StarParams{Layers: 2, SharedLoss: 0.01, Loss1: 0.1, Loss2: 0.1})
		if ms.MeanLevel1 <= 1 || ms.MeanLevel1 >= 2 {
			t.Errorf("%v: mean level %v", k, ms.MeanLevel1)
		}
	}
}

// TestRestrictAndReachable: unreachable states get zero stationary mass
// and the restriction preserves the distribution.
func TestRestrictAndReachable(t *testing.T) {
	c := NewChain(4)
	c.AddRate(0, 1, 1)
	c.AddRate(1, 0, 2)
	// States 2, 3 unreachable from 0.
	reach := c.ReachableFrom(0)
	if !reach[0] || !reach[1] || reach[2] || reach[3] {
		t.Fatalf("reach = %v", reach)
	}
	pi, err := c.StationaryFrom(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-2.0/3) > 1e-12 || math.Abs(pi[1]-1.0/3) > 1e-12 {
		t.Fatalf("pi = %v", pi)
	}
	if pi[2] != 0 || pi[3] != 0 {
		t.Fatal("unreachable states have mass")
	}
	sub, orig := c.Restrict(0)
	if sub.NumStates() != 2 || orig[0] != 0 || orig[1] != 1 {
		t.Fatalf("restrict = %d states, orig %v", sub.NumStates(), orig)
	}
}

func TestReachableFromPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range start accepted")
		}
	}()
	NewChain(2).ReachableFrom(5)
}

// TestStationaryFromPowerPath: forcing the power path (denseLimit 0)
// matches the dense result.
func TestStationaryFromPowerPath(t *testing.T) {
	c := NewChain(3)
	c.AddRate(0, 1, 1)
	c.AddRate(1, 2, 1)
	c.AddRate(2, 0, 1)
	dense, err := c.StationaryFrom(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	power, err := c.StationaryFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense {
		if math.Abs(dense[i]-power[i]) > 1e-8 {
			t.Fatalf("solvers disagree: %v vs %v", dense, power)
		}
	}
}

// TestDeterministicFourLayers: the 7k-state Deterministic chain solves
// via the power path and behaves sanely.
func TestDeterministicFourLayers(t *testing.T) {
	if testing.Short() {
		t.Skip("large chain in -short mode")
	}
	m, err := BuildStar(protocol.Deterministic, StarParams{
		Layers: 4, SharedLoss: 0.005, Loss1: 0.05, Loss2: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if ms.Redundancy < 1 || ms.Redundancy > 3 {
		t.Fatalf("redundancy = %v", ms.Redundancy)
	}
	if ms.MeanLevel1 <= 1 || ms.MeanLevel1 >= 4 {
		t.Fatalf("mean level = %v", ms.MeanLevel1)
	}
}
