package markov

import (
	"math"
	"testing"

	"mlfair/internal/protocol"
	"mlfair/internal/sim"
	"mlfair/internal/stats"
)

func solve(t *testing.T, kind protocol.Kind, prm StarParams) *Measures {
	t.Helper()
	m, err := BuildStar(kind, prm)
	if err != nil {
		t.Fatalf("BuildStar: %v", err)
	}
	ms, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return ms
}

func TestBuildStarValidation(t *testing.T) {
	if _, err := BuildStar(protocol.Uncoordinated, StarParams{Layers: 0}); err == nil {
		t.Fatal("zero layers accepted")
	}
	if _, err := BuildStar(protocol.Uncoordinated, StarParams{Layers: 3, SharedLoss: 1}); err == nil {
		t.Fatal("loss 1 accepted")
	}
	if _, err := BuildStar(protocol.Deterministic, StarParams{Layers: 6}); err == nil {
		t.Fatal("oversized Deterministic model accepted")
	}
	if _, err := BuildStar(protocol.Kind(9), StarParams{Layers: 3}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

// TestLosslessTopsOut: without loss every protocol saturates at the top
// level with redundancy 1. (The Deterministic model uses 3 layers to
// keep its counter state space small; see StarParams.)
func TestLosslessTopsOut(t *testing.T) {
	for _, k := range protocol.Kinds() {
		layers := 4
		if k == protocol.Deterministic {
			layers = 3
		}
		ms := solve(t, k, StarParams{Layers: layers})
		if math.Abs(ms.MeanLevel1-float64(layers)) > 0.01 {
			t.Errorf("%v mean level = %v, want %d", k, ms.MeanLevel1, layers)
		}
		if math.Abs(ms.Redundancy-1) > 0.01 {
			t.Errorf("%v lossless redundancy = %v", k, ms.Redundancy)
		}
	}
}

// TestSymmetry: swapping the receivers' loss rates swaps their goodputs
// and preserves redundancy.
func TestSymmetry(t *testing.T) {
	for _, k := range protocol.Kinds() {
		layers := 3
		a := solve(t, k, StarParams{Layers: layers, SharedLoss: 0.01, Loss1: 0.02, Loss2: 0.08})
		b := solve(t, k, StarParams{Layers: layers, SharedLoss: 0.01, Loss1: 0.08, Loss2: 0.02})
		if math.Abs(a.Goodput1-b.Goodput2) > 1e-9 || math.Abs(a.Goodput2-b.Goodput1) > 1e-9 {
			t.Errorf("%v asymmetric under swap: %+v vs %+v", k, a, b)
		}
		if math.Abs(a.Redundancy-b.Redundancy) > 1e-9 {
			t.Errorf("%v redundancy changed under swap", k)
		}
	}
}

// TestLossierReceiverSlower: the receiver behind the lossier fanout link
// achieves lower goodput.
func TestLossierReceiverSlower(t *testing.T) {
	for _, k := range protocol.Kinds() {
		layers := 4
		if k == protocol.Deterministic {
			layers = 3
		}
		ms := solve(t, k, StarParams{Layers: layers, SharedLoss: 0.001, Loss1: 0.01, Loss2: 0.15})
		if !(ms.Goodput1 > ms.Goodput2) {
			t.Errorf("%v: goodputs %v <= %v", k, ms.Goodput1, ms.Goodput2)
		}
	}
}

// TestEqualLossMaximizesRedundancy reproduces the paper's analytical
// headline: holding the loss budget fixed, redundancy peaks when the two
// receivers' independent loss rates are equal.
func TestEqualLossMaximizesRedundancy(t *testing.T) {
	for _, k := range protocol.Kinds() {
		layers := 3
		if k == protocol.Deterministic {
			layers = 3
		}
		const mid = 0.05
		peak := solve(t, k, StarParams{Layers: layers, SharedLoss: 0.001, Loss1: mid, Loss2: mid})
		for _, delta := range []float64{0.02, 0.04} {
			asym := solve(t, k, StarParams{Layers: layers, SharedLoss: 0.001,
				Loss1: mid - delta, Loss2: mid + delta})
			if asym.Redundancy > peak.Redundancy+1e-6 {
				t.Errorf("%v: asymmetric (±%v) redundancy %v exceeds symmetric %v",
					k, delta, asym.Redundancy, peak.Redundancy)
			}
		}
	}
}

// TestUncoordinatedWorstAtEqualLoss: the uncoordinated protocol pays
// more redundancy than the coordinated one in the symmetric setting.
// With only two receivers the gap is small (it widens with session size,
// as Figure 8 shows at 100 receivers), so the operating point uses a
// deeper layer stack where it is clearly resolved.
func TestUncoordinatedWorstAtEqualLoss(t *testing.T) {
	prm := StarParams{Layers: 5, SharedLoss: 0.001, Loss1: 0.05, Loss2: 0.05}
	un := solve(t, protocol.Uncoordinated, prm)
	co := solve(t, protocol.Coordinated, prm)
	if !(un.Redundancy > co.Redundancy) {
		t.Fatalf("Uncoordinated %v should exceed Coordinated %v", un.Redundancy, co.Redundancy)
	}
}

// TestSharedLossOnlyNoRedundancyForCorrelated: pure shared loss keeps
// Deterministic and Coordinated receivers perfectly synchronized, so the
// only "redundancy" left is loss inflation: usage is counted before the
// loss while goodput is counted after, giving exactly 1/(1-p).
func TestSharedLossOnlyNoRedundancyForCorrelated(t *testing.T) {
	const p = 0.05
	for _, k := range []protocol.Kind{protocol.Deterministic, protocol.Coordinated} {
		ms := solve(t, k, StarParams{Layers: 3, SharedLoss: p})
		if math.Abs(ms.Redundancy-1/(1-p)) > 0.01 {
			t.Errorf("%v redundancy = %v under pure shared loss, want %v", k, ms.Redundancy, 1/(1-p))
		}
	}
}

// TestPowerSolverAgrees: both solvers give the same measures on a
// protocol chain.
func TestPowerSolverAgrees(t *testing.T) {
	m, err := BuildStar(protocol.Uncoordinated, StarParams{Layers: 4, SharedLoss: 0.01, Loss1: 0.03, Loss2: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	power, err := m.SolvePower(1e-13, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct.Redundancy-power.Redundancy) > 1e-4 {
		t.Fatalf("solvers disagree: %v vs %v", direct.Redundancy, power.Redundancy)
	}
}

// TestModelMatchesSimulator cross-validates the analytical chain against
// the packet-level simulator on the same two-receiver topology. The
// chain Poissonizes the periodic packet schedule, so agreement is
// approximate; 15% covers the modeling gap at these operating points.
func TestModelMatchesSimulator(t *testing.T) {
	for _, k := range []protocol.Kind{protocol.Uncoordinated, protocol.Deterministic} {
		prm := StarParams{Layers: 4, SharedLoss: 0.005, Loss1: 0.04, Loss2: 0.04}
		ms := solve(t, k, prm)
		reds, err := sim.RunReplicated(sim.Config{
			Layers: 4, Receivers: 2, SharedLoss: prm.SharedLoss,
			IndependentLoss: prm.Loss1, Protocol: k, Packets: 200000, Seed: 97,
		}, 6)
		if err != nil {
			t.Fatal(err)
		}
		simRed := stats.Mean(reds)
		if rel := math.Abs(simRed-ms.Redundancy) / ms.Redundancy; rel > 0.15 {
			t.Errorf("%v: analysis %v vs sim %v (rel %v)", k, ms.Redundancy, simRed, rel)
		}
	}
}

func TestSignalLevels(t *testing.T) {
	// M=4: levels 1,2,3 with densities 1/2, 1/4, 1/4.
	ls := signalLevels(4)
	if len(ls) != 3 {
		t.Fatalf("levels = %v", ls)
	}
	want := []float64{0.5, 0.25, 0.25}
	total := 0.0
	for i, l := range ls {
		if l.level != i+1 || math.Abs(l.density-want[i]) > 1e-12 {
			t.Fatalf("signalLevels(4) = %v", ls)
		}
		total += l.density
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("densities sum to %v, want 1 per period", total)
	}
}

// TestRecvModelsMirrorProtocol: the enumerable state machines agree with
// protocol.Receiver trajectories under identical event sequences.
func TestRecvModelsMirrorProtocol(t *testing.T) {
	const m = 4
	type step struct {
		congest bool
		signal  int // 0 = none
	}
	// A deterministic event script covering joins, leaves and signals.
	script := make([]step, 0, 600)
	for i := 0; i < 600; i++ {
		s := step{}
		switch {
		case i%17 == 16:
			s.congest = true
		case i%5 == 4:
			s.signal = 1 + i%3
		}
		script = append(script, s)
	}
	run := func(kind protocol.Kind, rm recvModel) {
		r := protocol.NewReceiver(kind, m, nil)
		s := initialState(kind, rm)
		for i, st := range script {
			switch {
			case st.congest:
				r.OnCongestion()
				s = rm.congest(s)
			case st.signal > 0:
				r.OnSignal(st.signal)
				s = rm.signal(s, st.signal)
			default:
				r.OnReceive()
				outs := rm.receive(s)
				if len(outs) != 1 {
					// Probabilistic (Uncoordinated): skip trajectory check.
					return
				}
				s = outs[0].state
			}
			if r.Level() != rm.level(s) {
				t.Fatalf("%v diverged at step %d: receiver %d, model %d",
					kind, i, r.Level(), rm.level(s))
			}
		}
	}
	run(protocol.Deterministic, newDetermModel(m))
	run(protocol.Coordinated, coordModel{m: m})
}

func initialState(kind protocol.Kind, rm recvModel) int {
	switch kind {
	case protocol.Coordinated:
		return coordModel{}.enc(1, true)
	default:
		return 0 // level 1, count 0
	}
}
