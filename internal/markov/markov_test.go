package markov

import (
	"math"
	"testing"
)

// TestTwoStateStationary: classic birth-death chain with rates a (0->1)
// and b (1->0): π = (b, a)/(a+b).
func TestTwoStateStationary(t *testing.T) {
	c := NewChain(2)
	c.AddRate(0, 1, 3)
	c.AddRate(1, 0, 1)
	pi, err := c.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.25) > 1e-12 || math.Abs(pi[1]-0.75) > 1e-12 {
		t.Fatalf("pi = %v, want [0.25 0.75]", pi)
	}
}

// TestBirthDeathChain: M/M/1/K-style chain has geometric stationary
// distribution π_i ∝ ρ^i.
func TestBirthDeathChain(t *testing.T) {
	const k = 6
	const lambda, mu = 2.0, 3.0
	c := NewChain(k)
	for i := 0; i < k-1; i++ {
		c.AddRate(i, i+1, lambda)
		c.AddRate(i+1, i, mu)
	}
	pi, err := c.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	norm := 0.0
	for i := 0; i < k; i++ {
		norm += math.Pow(rho, float64(i))
	}
	for i := 0; i < k; i++ {
		want := math.Pow(rho, float64(i)) / norm
		if math.Abs(pi[i]-want) > 1e-10 {
			t.Fatalf("pi[%d] = %v, want %v", i, pi[i], want)
		}
	}
}

func TestStationarySingleState(t *testing.T) {
	pi, err := NewChain(1).Stationary()
	if err != nil || pi[0] != 1 {
		t.Fatalf("pi = %v err = %v", pi, err)
	}
}

func TestDisconnectedChain(t *testing.T) {
	c := NewChain(4)
	c.AddRate(0, 1, 1)
	c.AddRate(1, 0, 1)
	// States 2,3 isolated.
	if _, err := c.Stationary(); err == nil {
		t.Fatal("disconnected chain accepted")
	}
}

func TestPowerMatchesDirect(t *testing.T) {
	c := NewChain(5)
	// Random-ish strongly connected chain.
	rates := [][3]float64{{0, 1, 2}, {1, 2, 1}, {2, 3, 4}, {3, 4, 0.5}, {4, 0, 3}, {2, 0, 1}, {4, 2, 2}}
	for _, r := range rates {
		c.AddRate(int(r[0]), int(r[1]), r[2])
	}
	direct, err := c.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	power, err := c.StationaryPower(1e-12, 200000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if math.Abs(direct[i]-power[i]) > 1e-6 {
			t.Fatalf("solvers disagree at %d: %v vs %v", i, direct[i], power[i])
		}
	}
}

func TestAddRateValidation(t *testing.T) {
	c := NewChain(2)
	c.AddRate(0, 0, 5) // self-loop ignored
	c.AddRate(0, 1, -1)
	if c.Rate(0, 0) != 0 || c.Rate(0, 1) != 0 {
		t.Fatal("ignored rates were stored")
	}
	c.AddRate(0, 1, 2)
	c.AddRate(0, 1, 3)
	if c.Rate(0, 1) != 5 {
		t.Fatal("rates not accumulated")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range state accepted")
		}
	}()
	c.AddRate(0, 7, 1)
}

func TestNewChainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero states accepted")
		}
	}()
	NewChain(0)
}

func TestExpectation(t *testing.T) {
	pi := []float64{0.25, 0.75}
	e := Expectation(pi, func(s int) float64 { return float64(s + 1) })
	if math.Abs(e-1.75) > 1e-12 {
		t.Fatalf("E = %v, want 1.75", e)
	}
}
