package routing

import (
	"testing"

	"mlfair/internal/fairness"
	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
)

// dumbbell: two sender nodes at opposite ends, receivers in between.
//
//	S0 --l0-- A --l1-- B --l2-- S1
func dumbbell() *netmodel.Graph {
	g := netmodel.NewGraph(4)
	g.AddLink(0, 1, 10) // l0
	g.AddLink(1, 2, 10) // l1
	g.AddLink(2, 3, 10) // l2
	return g
}

func TestMultiSenderNearestRouting(t *testing.T) {
	g := dumbbell()
	s := &netmodel.Session{
		Sender: 0, ExtraSenders: []int{3},
		Receivers: []int{1, 2},
		Type:      netmodel.MultiRate, MaxRate: netmodel.NoRateCap,
	}
	paths, servedBy, err := MultiSenderPaths(g, s)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 is one hop from sender 0; node 2 one hop from sender 3.
	if servedBy[0] != 0 || servedBy[1] != 1 {
		t.Fatalf("servedBy = %v, want [0 1]", servedBy)
	}
	if len(paths[0]) != 1 || paths[0][0] != 0 {
		t.Fatalf("path 0 = %v", paths[0])
	}
	if len(paths[1]) != 1 || paths[1][0] != 2 {
		t.Fatalf("path 1 = %v", paths[1])
	}
}

func TestMultiSenderTieBreak(t *testing.T) {
	// Node equidistant from both senders goes to the primary sender.
	g := netmodel.NewGraph(3)
	g.AddLink(0, 1, 1)
	g.AddLink(2, 1, 1)
	s := &netmodel.Session{Sender: 0, ExtraSenders: []int{2},
		Receivers: []int{1}, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	_, servedBy, err := MultiSenderPaths(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if servedBy[0] != 0 {
		t.Fatalf("tie broken toward %d, want primary sender", servedBy[0])
	}
}

func TestMultiSenderUnreachable(t *testing.T) {
	g := netmodel.NewGraph(4)
	g.AddLink(0, 1, 1)
	// Node 3 disconnected.
	s := &netmodel.Session{Sender: 0, ExtraSenders: []int{1},
		Receivers: []int{3}, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	if _, _, err := MultiSenderPaths(g, s); err == nil {
		t.Fatal("unreachable receiver accepted")
	}
}

// TestMultiSenderNetworkFairness: adding a replica sender moves the far
// receiver onto its own access path, raising its max-min fair rate
// without hurting anyone; the receiver-oriented fairness properties hold
// unchanged.
func TestMultiSenderNetworkFairness(t *testing.T) {
	// S0(0) --l0:4-- A(1) --l1:4-- B(2) --l2:4-- S1(3)
	// Session 1: receivers at A and B. Session 2: unicast S0 -> A.
	g := dumbbell()
	single := &netmodel.Session{Sender: 0, Receivers: []int{1, 2},
		Type: netmodel.MultiRate, MaxRate: 100}
	other := &netmodel.Session{Sender: 0, Receivers: []int{1},
		Type: netmodel.MultiRate, MaxRate: 100}
	netSingle, err := BuildMultiSenderNetwork(g, []*netmodel.Session{single, other})
	if err != nil {
		t.Fatal(err)
	}
	resSingle, err := maxmin.Allocate(netSingle)
	if err != nil {
		t.Fatal(err)
	}
	// Both S1 receivers share l0 with S2: u_l0 = max(a11,a12)+a21.
	// Fill to 2 saturates l0 (dumbbell capacities are 10; rebuild with 4).
	_ = resSingle

	g4 := netmodel.NewGraph(4)
	g4.AddLink(0, 1, 4)
	g4.AddLink(1, 2, 4)
	g4.AddLink(2, 3, 4)
	netSingle4, err := BuildMultiSenderNetwork(g4, []*netmodel.Session{single, other})
	if err != nil {
		t.Fatal(err)
	}
	resSingle4, err := maxmin.Allocate(netSingle4)
	if err != nil {
		t.Fatal(err)
	}
	if !netmodel.Eq(resSingle4.Alloc.Rate(0, 1), 2) {
		t.Fatalf("single-sender far receiver = %v, want 2 (%s)", resSingle4.Alloc.Rate(0, 1), resSingle4.Alloc)
	}

	multi := &netmodel.Session{Sender: 0, ExtraSenders: []int{3},
		Receivers: []int{1, 2}, Type: netmodel.MultiRate, MaxRate: 100}
	netMulti, err := BuildMultiSenderNetwork(g4, []*netmodel.Session{multi, other})
	if err != nil {
		t.Fatal(err)
	}
	resMulti, err := maxmin.Allocate(netMulti)
	if err != nil {
		t.Fatal(err)
	}
	// Far receiver now rides l2 alone: rate 4 (up from 2); near receiver
	// still splits l0 with the unicast session.
	if !netmodel.Eq(resMulti.Alloc.Rate(0, 1), 4) {
		t.Fatalf("replica-served receiver = %v, want 4", resMulti.Alloc.Rate(0, 1))
	}
	if !netmodel.Eq(resMulti.Alloc.Rate(0, 0), 2) || !netmodel.Eq(resMulti.Alloc.Rate(1, 0), 2) {
		t.Fatalf("near rates changed: %s", resMulti.Alloc)
	}
	if rep := fairness.CheckTheorem2(resMulti.Alloc); !rep.AllHold() {
		t.Fatalf("multi-sender fairness: %s", rep)
	}
}
