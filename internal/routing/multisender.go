package routing

import (
	"fmt"

	"mlfair/internal/netmodel"
)

// MultiSenderPaths routes one multi-sender session: each receiver is
// served by its nearest sender (fewest hops; ties broken by sender
// order: Sender first, then ExtraSenders in order). It returns the
// per-receiver paths and, for diagnostics, which sender serves each
// receiver (as an index into [Sender, ExtraSenders...]).
//
// This realizes the paper's Section 5 multi-sender extension: the
// receiver-oriented fairness definitions need no change, because each
// receiver still has one data-path; only the session's aggregate
// data-path (and hence R_{i,j}) reflects the multiple sources.
func MultiSenderPaths(g *netmodel.Graph, s *netmodel.Session) (paths [][]int, servedBy []int, err error) {
	senders := append([]int{s.Sender}, s.ExtraSenders...)
	type tree struct {
		parentLink []int
		dist       []int
	}
	trees := make([]tree, len(senders))
	for x, sn := range senders {
		pl, d := bfsTree(g, sn)
		trees[x] = tree{parentLink: pl, dist: d}
	}
	paths = make([][]int, len(s.Receivers))
	servedBy = make([]int, len(s.Receivers))
	for k, node := range s.Receivers {
		best := -1
		for x := range senders {
			if trees[x].dist[node] == -1 {
				continue
			}
			if best == -1 || trees[x].dist[node] < trees[best].dist[node] {
				best = x
			}
		}
		if best == -1 {
			return nil, nil, fmt.Errorf("routing: receiver node %d unreachable from all %d senders", node, len(senders))
		}
		paths[k] = walkBack(g, trees[best].parentLink, senders[best], node)
		servedBy[k] = best
	}
	return paths, servedBy, nil
}

// BuildMultiSenderNetwork routes every session (using MultiSenderPaths
// where a session declares ExtraSenders) and assembles the network.
func BuildMultiSenderNetwork(g *netmodel.Graph, sessions []*netmodel.Session) (*netmodel.Network, error) {
	paths := make([][][]int, len(sessions))
	for i, s := range sessions {
		var (
			p   [][]int
			err error
		)
		if len(s.ExtraSenders) > 0 {
			p, _, err = MultiSenderPaths(g, s)
		} else {
			p, err = SessionPaths(g, s)
		}
		if err != nil {
			return nil, fmt.Errorf("session %d: %w", i, err)
		}
		paths[i] = p
	}
	return netmodel.NewNetwork(g, sessions, paths)
}
