// Package routing computes data-paths for multicast sessions over a
// netmodel.Graph. The paper assumes "the network employs a routing
// algorithm" providing each receiver a link sequence from its sender;
// this package provides the standard choice — shortest-path (minimum
// hop) routing with deterministic tie-breaking — and assembles
// netmodel.Networks from sessions routed that way.
//
// Because all receivers of a session are routed on one BFS tree rooted at
// the sender, each session's data-paths form a proper multicast tree:
// paths to different receivers share exactly their common prefix.
package routing

import (
	"fmt"

	"mlfair/internal/netmodel"
)

// bfsTree computes BFS parent pointers from root. parentLink[n] is the
// link used to reach n, -1 for the root or unreachable nodes (which have
// dist -1). Links are scanned in index order, so the tree — and every
// path derived from it — is deterministic.
func bfsTree(g *netmodel.Graph, root int) (parentLink []int, dist []int) {
	n := g.NumNodes()
	parentLink = make([]int, n)
	dist = make([]int, n)
	for i := range parentLink {
		parentLink[i] = -1
		dist[i] = -1
	}
	dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, j := range g.Incident(cur) {
			nb := g.Other(j, cur)
			if dist[nb] != -1 {
				continue
			}
			dist[nb] = dist[cur] + 1
			parentLink[nb] = j
			queue = append(queue, nb)
		}
	}
	return parentLink, dist
}

// ShortestPath returns the minimum-hop link sequence from "from" to "to",
// or an error if to is unreachable. Ties are broken deterministically by
// link index.
func ShortestPath(g *netmodel.Graph, from, to int) ([]int, error) {
	parentLink, dist := bfsTree(g, from)
	if dist[to] == -1 {
		return nil, fmt.Errorf("routing: node %d unreachable from %d", to, from)
	}
	return walkBack(g, parentLink, from, to), nil
}

func walkBack(g *netmodel.Graph, parentLink []int, root, to int) []int {
	var rev []int
	for cur := to; cur != root; {
		j := parentLink[cur]
		rev = append(rev, j)
		cur = g.Other(j, cur)
	}
	// Reverse to sender-to-receiver order.
	for i, k := 0, len(rev)-1; i < k; i, k = i+1, k-1 {
		rev[i], rev[k] = rev[k], rev[i]
	}
	return rev
}

// SessionPaths routes one session: shortest paths from the sender to each
// receiver, all on a single BFS tree (so the union is a multicast tree).
func SessionPaths(g *netmodel.Graph, s *netmodel.Session) ([][]int, error) {
	parentLink, dist := bfsTree(g, s.Sender)
	paths := make([][]int, len(s.Receivers))
	for k, node := range s.Receivers {
		if dist[node] == -1 {
			return nil, fmt.Errorf("routing: receiver node %d unreachable from sender %d", node, s.Sender)
		}
		paths[k] = walkBack(g, parentLink, s.Sender, node)
	}
	return paths, nil
}

// BuildNetwork routes every session over g and assembles the network.
func BuildNetwork(g *netmodel.Graph, sessions []*netmodel.Session) (*netmodel.Network, error) {
	paths := make([][][]int, len(sessions))
	for i, s := range sessions {
		p, err := SessionPaths(g, s)
		if err != nil {
			return nil, fmt.Errorf("session %d: %w", i, err)
		}
		paths[i] = p
	}
	return netmodel.NewNetwork(g, sessions, paths)
}

// TreeCheck verifies that a session's routed paths form a tree: every
// node reached has a unique parent link, and each receiver's path is the
// tree path. It returns an error describing the first inconsistency.
// Networks built by BuildNetwork always pass; hand-specified paths may
// not (the paper's model does not require tree-ness, since fairness
// depends only on link incidence, but physical IP multicast does).
func TreeCheck(net *netmodel.Network, session int) error {
	g := net.Graph()
	s := net.Session(session)
	parent := make(map[int]int) // node -> parent link
	for k := range s.Receivers {
		cur := s.Sender
		for _, j := range net.Path(session, k) {
			nb := g.Other(j, cur)
			if pj, ok := parent[nb]; ok && pj != j {
				return fmt.Errorf("routing: node %d reached via links %d and %d in session %d",
					nb, pj, j, session)
			}
			parent[nb] = j
			cur = nb
		}
	}
	return nil
}
