package routing

import (
	"testing"

	"mlfair/internal/netmodel"
)

// ladder builds:
//
//	0 --l0-- 1 --l1-- 2
//	 \______l2_______/
func ladder() *netmodel.Graph {
	g := netmodel.NewGraph(3)
	g.AddLink(0, 1, 10) // l0
	g.AddLink(1, 2, 10) // l1
	g.AddLink(0, 2, 10) // l2
	return g
}

func TestShortestPathDirect(t *testing.T) {
	g := ladder()
	p, err := ShortestPath(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One hop via l2 beats two hops via l0,l1.
	if len(p) != 1 || p[0] != 2 {
		t.Fatalf("path = %v, want [2]", p)
	}
}

func TestShortestPathMultiHop(t *testing.T) {
	g := netmodel.NewGraph(4)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	g.AddLink(2, 3, 1)
	p, err := ShortestPath(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	if len(p) != 3 {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := ladder()
	p, err := ShortestPath(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 0 {
		t.Fatalf("self path = %v, want empty", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := netmodel.NewGraph(3)
	g.AddLink(0, 1, 1)
	if _, err := ShortestPath(g, 0, 2); err == nil {
		t.Fatal("unreachable node accepted")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two equal-length routes 0-1-3 (l0,l2) and 0-2-3 (l1,l3); BFS must
	// always pick the one through the lower-indexed first link.
	g := netmodel.NewGraph(4)
	g.AddLink(0, 1, 1) // l0
	g.AddLink(0, 2, 1) // l1
	g.AddLink(1, 3, 1) // l2
	g.AddLink(2, 3, 1) // l3
	for trial := 0; trial < 10; trial++ {
		p, err := ShortestPath(g, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != 2 || p[0] != 0 || p[1] != 2 {
			t.Fatalf("path = %v, want [0 2]", p)
		}
	}
}

func TestSessionPathsFormTree(t *testing.T) {
	// Star-of-chains: sender 0 at the hub, receivers at leaf ends.
	g := netmodel.NewGraph(5)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	g.AddLink(0, 3, 1)
	g.AddLink(3, 4, 1)
	s := &netmodel.Session{Sender: 0, Receivers: []int{2, 4, 1}, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	net, err := BuildNetwork(g, []*netmodel.Session{s})
	if err != nil {
		t.Fatal(err)
	}
	if err := TreeCheck(net, 0); err != nil {
		t.Fatalf("TreeCheck: %v", err)
	}
	// Paths to 2 and to 1 share prefix l0.
	if p := net.Path(0, 0); len(p) != 2 || p[0] != 0 || p[1] != 1 {
		t.Fatalf("path to node 2 = %v", p)
	}
	if p := net.Path(0, 2); len(p) != 1 || p[0] != 0 {
		t.Fatalf("path to node 1 = %v", p)
	}
}

func TestBuildNetworkUnreachable(t *testing.T) {
	g := netmodel.NewGraph(3)
	g.AddLink(0, 1, 1)
	s := &netmodel.Session{Sender: 0, Receivers: []int{2}, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	if _, err := BuildNetwork(g, []*netmodel.Session{s}); err == nil {
		t.Fatal("unreachable receiver accepted")
	}
}

func TestTreeCheckDetectsNonTree(t *testing.T) {
	// Hand-built paths that reach node 2 via two different links.
	g := netmodel.NewGraph(3)
	g.AddLink(0, 1, 1) // l0
	g.AddLink(1, 2, 1) // l1
	g.AddLink(0, 2, 1) // l2
	s := &netmodel.Session{Sender: 0, Receivers: []int{2, 2}, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	// Receivers of a session must be distinct nodes per the paper's τ
	// restriction, but NewNetwork does not police that for abstract use;
	// here we exploit it to construct a non-tree.
	net, err := netmodel.NewNetwork(g, []*netmodel.Session{s}, [][][]int{{{0, 1}, {2}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := TreeCheck(net, 0); err == nil {
		t.Fatal("non-tree paths accepted")
	}
}

func TestBuildNetworkMultiSession(t *testing.T) {
	g := netmodel.NewGraph(3)
	g.AddLink(0, 1, 6)
	g.AddLink(1, 2, 4)
	s1 := &netmodel.Session{Sender: 0, Receivers: []int{2}, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	s2 := &netmodel.Session{Sender: 2, Receivers: []int{0}, Type: netmodel.SingleRate, MaxRate: netmodel.NoRateCap}
	net, err := BuildNetwork(g, []*netmodel.Session{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	// Both sessions cross both links (opposite directions share capacity).
	if net.ReceiversCrossing(0) != 2 || net.ReceiversCrossing(1) != 2 {
		t.Fatalf("crossing counts = %d, %d", net.ReceiversCrossing(0), net.ReceiversCrossing(1))
	}
}
