// Package singlerate implements baselines for choosing the one
// transmission rate of a single-rate multicast session, following the
// inter-receiver fairness line of work the paper discusses in Section 5
// (Jiang, Ammar, Zegura — "Inter-Receiver Fairness: A Novel Performance
// Measure for Multicast ABR Sessions").
//
// Two regimes matter:
//
//   - Feasibility-constrained (the paper's model, its [18] baseline): a
//     single-rate session may not overload any link, so its rate is
//     capped at the slowest receiver's bottleneck — MaxMinFeasibleRate.
//     The library's allocator implements this natively.
//   - Best-effort (the [6] setting): the session may transmit above a
//     branch's capability; that branch then loses packets. We model the
//     surviving goodput of receiver k (bottleneck b_k) at session rate r
//     as Delivered(r, b_k) = r for r <= b_k, else b_k²/r: the bottleneck
//     forwards a b_k/r fraction of an r-rate stream, so useful goodput
//     degrades as the session overshoots. Satisfaction compares
//     delivered against b_k, and the sender picks r to maximize an
//     aggregate of satisfactions — deliberately trading the slowest
//     receivers against the rest, exactly the tension the paper's
//     multi-rate sessions dissolve.
//
// OptimalRate searches the bottleneck values: with the tent-shaped
// satisfactions provided here (rising for r <= b, falling for r > b,
// convex on each segment between consecutive bottlenecks), every
// aggregate's maximum lies at a bottleneck, so the search is exact.
package singlerate

import (
	"math"
	"sort"

	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
)

// Delivered is the best-effort goodput of a receiver with bottleneck b
// when the session transmits at rate r.
func Delivered(r, b float64) float64 {
	if b <= 0 {
		return 0
	}
	if r <= b {
		return r
	}
	return b * b / r
}

// MaxMinFeasibleRate is the feasibility-constrained single rate: the
// slowest receiver's bottleneck (the Tzeng-Siu choice the paper's
// Figure 2 exhibits).
func MaxMinFeasibleRate(bottlenecks []float64) float64 {
	if len(bottlenecks) == 0 {
		panic("singlerate: no receivers")
	}
	m := math.Inf(1)
	for _, b := range bottlenecks {
		if b < m {
			m = b
		}
	}
	return m
}

// Satisfaction maps (delivered, fair) to a per-receiver satisfaction in
// [0, 1]-ish units. Implementations must be non-decreasing in delivered.
type Satisfaction func(delivered, fair float64) float64

// Ratio is delivered/fair — the normalized satisfaction of Jiang et al.
func Ratio(delivered, fair float64) float64 {
	if fair <= 0 {
		return 0
	}
	return delivered / fair
}

// AtLeast returns a satisfaction that is 1 when the receiver gets at
// least frac of its fair rate and 0 otherwise — a "satisfied receivers"
// count.
func AtLeast(frac float64) Satisfaction {
	if frac <= 0 || frac > 1 {
		panic("singlerate: AtLeast fraction must be in (0, 1]")
	}
	return func(delivered, fair float64) float64 {
		if fair <= 0 {
			return 0
		}
		if delivered >= frac*fair-netmodel.Eps {
			return 1
		}
		return 0
	}
}

// Aggregate combines per-receiver satisfactions into a session score.
type Aggregate int

const (
	// MeanSatisfaction maximizes average receiver satisfaction ([6]'s
	// direction; sacrifices slow minorities to serve fast majorities).
	MeanSatisfaction Aggregate = iota
	// MinSatisfaction maximizes the worst receiver's satisfaction. In
	// the best-effort regime this typically lands at an intermediate
	// bottleneck (unlike the feasibility-constrained minimum).
	MinSatisfaction
	// TotalGoodput maximizes Σ_k delivered_k, ignoring fairness.
	TotalGoodput
)

// Score evaluates an aggregate satisfaction at transmission rate r.
func Score(bottlenecks []float64, r float64, s Satisfaction, agg Aggregate) float64 {
	switch agg {
	case MeanSatisfaction:
		t := 0.0
		for _, b := range bottlenecks {
			t += s(Delivered(r, b), b)
		}
		return t / float64(len(bottlenecks))
	case MinSatisfaction:
		m := math.Inf(1)
		for _, b := range bottlenecks {
			if v := s(Delivered(r, b), b); v < m {
				m = v
			}
		}
		return m
	case TotalGoodput:
		t := 0.0
		for _, b := range bottlenecks {
			t += Delivered(r, b)
		}
		return t
	}
	panic("singlerate: unknown aggregate")
}

// OptimalRate returns the best-effort transmission rate maximizing the
// aggregate satisfaction, with its score. Candidates are the bottleneck
// values; ties resolve to the smaller (less wasteful) rate.
func OptimalRate(bottlenecks []float64, s Satisfaction, agg Aggregate) (rate, score float64) {
	if len(bottlenecks) == 0 {
		panic("singlerate: no receivers")
	}
	cands := append([]float64{}, bottlenecks...)
	sort.Float64s(cands)
	best := math.Inf(-1)
	bestRate := 0.0
	for _, r := range cands {
		if sc := Score(bottlenecks, r, s, agg); sc > best+netmodel.Eps {
			best = sc
			bestRate = r
		}
	}
	return bestRate, best
}

// IsolatedFairRates computes each receiver's b_k for session i: its rate
// in the multi-rate max-min fair allocation of the network with session
// i re-typed multi-rate — the "what this receiver's path can fairly
// sustain" reference used by inter-receiver fairness measures.
func IsolatedFairRates(net *netmodel.Network, i int) ([]float64, error) {
	types := make([]netmodel.SessionType, net.NumSessions())
	for x, s := range net.Sessions() {
		types[x] = s.Type
	}
	types[i] = netmodel.MultiRate
	multi, err := net.WithSessionTypes(types)
	if err != nil {
		return nil, err
	}
	res, err := maxmin.Allocate(multi)
	if err != nil {
		return nil, err
	}
	return append([]float64{}, res.Alloc.SessionRates(i)...), nil
}
