package singlerate

import (
	"math"
	"testing"

	"mlfair/internal/netmodel"
	"mlfair/internal/topology"
)

func approx(t *testing.T, got, want float64, what string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

func TestDelivered(t *testing.T) {
	approx(t, Delivered(3, 5), 3, "under")
	approx(t, Delivered(5, 5), 5, "at")
	approx(t, Delivered(10, 5), 2.5, "over") // 25/10
	approx(t, Delivered(1, 0), 0, "zero bottleneck")
}

func TestMaxMinFeasibleRate(t *testing.T) {
	approx(t, MaxMinFeasibleRate([]float64{2, 5, 9}), 2, "min")
	defer func() {
		if recover() == nil {
			t.Fatal("empty accepted")
		}
	}()
	MaxMinFeasibleRate(nil)
}

func TestSatisfactionFunctions(t *testing.T) {
	approx(t, Ratio(2, 4), 0.5, "Ratio")
	approx(t, Ratio(1, 0), 0, "Ratio zero fair")
	at := AtLeast(0.95)
	if at(4, 4) != 1 || at(3.7, 4) != 0 || at(1, 0) != 0 {
		t.Fatal("AtLeast wrong")
	}
	for _, bad := range []float64{0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad fraction accepted")
				}
			}()
			AtLeast(bad)
		}()
	}
}

// TestMinSatisfactionPicksInterior: in the best-effort regime the
// max-min-satisfaction rate is an intermediate bottleneck — unlike the
// feasibility-constrained minimum.
func TestMinSatisfactionPicksInterior(t *testing.T) {
	b := []float64{2, 5, 9}
	rate, score := OptimalRate(b, Ratio, MinSatisfaction)
	// r=2: min(1, 0.4, 2/9) = 2/9; r=5: min(0.4, 1, 5/9) = 0.4;
	// r=9: min(2/9, 25/45... 25/9/5=5/9, 1) = 2/9. Best: r=5.
	approx(t, rate, 5, "rate")
	approx(t, score, 0.4, "score")
	if f := MaxMinFeasibleRate(b); f != 2 {
		t.Fatalf("feasible rate = %v", f)
	}
}

// TestMeanSatisfactionFollowsMajority: the [6]-style mean rule serves
// whichever class dominates.
func TestMeanSatisfactionFollowsMajority(t *testing.T) {
	fastMajority := []float64{1, 10, 10, 10, 10}
	rate, _ := OptimalRate(fastMajority, Ratio, MeanSatisfaction)
	approx(t, rate, 10, "fast-majority rate")

	slowMajority := []float64{1, 1, 1, 1, 10}
	rate, _ = OptimalRate(slowMajority, Ratio, MeanSatisfaction)
	approx(t, rate, 1, "slow-majority rate")
}

// TestAtLeastCountsSatisfied: overshooting a branch destroys its
// satisfaction, so the counting rule keeps the rate at the level that
// fully serves the majority.
func TestAtLeastCountsSatisfied(t *testing.T) {
	b := []float64{2, 2, 2, 8}
	rate, score := OptimalRate(b, AtLeast(0.95), MeanSatisfaction)
	// r=2: three receivers fully served (8-receiver gets 2 < 7.6): 0.75.
	// r=8: slow receivers get 0.5 each (b²/r), fast gets 8: 0.25.
	approx(t, rate, 2, "rate")
	approx(t, score, 0.75, "score")
}

func TestTotalGoodput(t *testing.T) {
	b := []float64{2, 5, 9}
	rate, score := OptimalRate(b, Ratio, TotalGoodput)
	// r=9: 4/9 + 25/9 + 9 = 110/9 ≈ 12.22 beats r=5 (0.8+5+5=10.8).
	approx(t, rate, 9, "rate")
	approx(t, score, 110.0/9, "score")
}

func TestScoreUnknownAggregate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown aggregate accepted")
		}
	}()
	Score([]float64{1}, 1, Ratio, Aggregate(9))
}

func TestOptimalRatePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty bottlenecks accepted")
		}
	}()
	OptimalRate(nil, Ratio, MeanSatisfaction)
}

// TestIsolatedFairRatesFigure2: S1's isolated fair rates are its
// multi-rate allocation (2.5, 2, 3); the feasible single rate is the
// paper's 2, while best-effort satisfaction rules prefer 2.5.
func TestIsolatedFairRatesFigure2(t *testing.T) {
	net := topology.Figure2(netmodel.SingleRate).Network
	b, err := IsolatedFairRates(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.5, 2, 3}
	for k := range want {
		if !netmodel.Eq(b[k], want[k]) {
			t.Fatalf("b = %v, want %v", b, want)
		}
	}
	approx(t, MaxMinFeasibleRate(b), 2, "feasible rate (paper Figure 2)")

	rate, score := OptimalRate(b, Ratio, MinSatisfaction)
	// r=2.5: (1, 2/2.5/2=0.8, 2.5/3) min = 0.8 — the best-effort choice.
	approx(t, rate, 2.5, "min-satisfaction rate")
	approx(t, score, 0.8, "min-satisfaction score")

	rate, _ = OptimalRate(b, Ratio, MeanSatisfaction)
	approx(t, rate, 2.5, "mean-satisfaction rate")
}

// TestTieBreakPrefersSmallerRate: identical bottlenecks resolve cleanly.
func TestTieBreakPrefersSmallerRate(t *testing.T) {
	rate, score := OptimalRate([]float64{4, 4, 4}, Ratio, MeanSatisfaction)
	approx(t, rate, 4, "rate")
	approx(t, score, 1, "score")
}
