//go:build !linux

package obs

// ReadPeakRSS returns 0: peak-RSS accounting is wired up only where
// the getrusage units are well-defined (Linux reports ru_maxrss in
// KiB; other platforms disagree on units or lack the call). Callers
// treat 0 as "not measured".
func ReadPeakRSS() int64 { return 0 }
