package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds named metrics and renders them: Prometheus text
// exposition (WritePrometheus) and a JSON snapshot document
// (Snapshot/WriteJSON) carrying an optional provenance Manifest.
// Metrics are rendered in name order so both forms are deterministic
// for a given registry content.
type Registry struct {
	mu      sync.Mutex
	entries map[string]entry
}

type entry struct {
	help string
	m    any // *Counter | *Gauge | *FloatCounter | *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]entry{}}
}

// validName is the Prometheus metric-name grammar.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Register adds a metric under name. The metric must be one of
// *Counter, *Gauge, *FloatCounter or *Histogram; names must match the
// Prometheus grammar and be unique within the registry.
func (r *Registry) Register(name, help string, m any) error {
	switch m.(type) {
	case *Counter, *Gauge, *FloatCounter, *Histogram:
	default:
		return fmt.Errorf("obs: register %q: unsupported metric type %T", name, m)
	}
	if !validName(name) {
		return fmt.Errorf("obs: invalid metric name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("obs: duplicate metric name %q", name)
	}
	r.entries[name] = entry{help: help, m: m}
	return nil
}

// MustRegister is Register, panicking on error (registration failures
// are programming errors, not runtime conditions).
func (r *Registry) MustRegister(name, help string, m any) {
	if err := r.Register(name, help, m); err != nil {
		panic(err)
	}
}

// sorted returns the registered names in order plus their entries.
func (r *Registry) sorted() ([]string, map[string]entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	entries := make(map[string]entry, len(r.entries))
	for n, e := range r.entries {
		names = append(names, n)
		entries[n] = e
	}
	sort.Strings(names)
	return names, entries
}

// fmtFloat renders a float the shortest-round-trip way ("+Inf" for
// the histogram tail bound, matching Prometheus's le label).
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (# HELP / # TYPE headers, histogram _bucket/_sum/
// _count expansion), metrics in name order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	names, entries := r.sorted()
	var b strings.Builder
	for _, name := range names {
		e := entries[name]
		if e.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, e.help)
		}
		switch m := e.m.(type) {
		case *Counter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, m.Load())
		case *FloatCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %s\n", name, name, fmtFloat(m.Load()))
		case *Gauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, m.Load())
		case *Histogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
			le, cum := m.cumulative()
			for i := range le {
				bound := fmtFloat(le[i])
				if i == len(le)-1 {
					bound = "+Inf"
				}
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, bound, cum[i])
			}
			fmt.Fprintf(&b, "%s_sum %s\n%s_count %d\n", name, fmtFloat(m.Sum()), name, m.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Bucket is one cumulative histogram bucket in a snapshot. LE is the
// upper bound rendered as a string so the +Inf tail survives JSON.
type Bucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// MetricSnapshot is one metric's point-in-time value in a snapshot.
type MetricSnapshot struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Help string `json:"help,omitempty"`
	// Value carries counter and gauge readings (absent for histograms).
	Value *float64 `json:"value,omitempty"`
	// Count/Sum/Buckets carry histogram readings.
	Count   *int64   `json:"count,omitempty"`
	Sum     *float64 `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is the JSON snapshot document: provenance manifest plus
// every registered metric's current value, in name order.
type Snapshot struct {
	Manifest *Manifest        `json:"manifest,omitempty"`
	Metrics  []MetricSnapshot `json:"metrics"`
}

// Snapshot captures the registry's current values with the given
// provenance manifest (nil for none).
func (r *Registry) Snapshot(man *Manifest) Snapshot {
	names, entries := r.sorted()
	snap := Snapshot{Manifest: man, Metrics: make([]MetricSnapshot, 0, len(names))}
	fp := func(v float64) *float64 { return &v }
	ip := func(v int64) *int64 { return &v }
	for _, name := range names {
		e := entries[name]
		ms := MetricSnapshot{Name: name, Help: e.help}
		switch m := e.m.(type) {
		case *Counter:
			ms.Kind = "counter"
			ms.Value = fp(float64(m.Load()))
		case *FloatCounter:
			ms.Kind = "counter"
			ms.Value = fp(m.Load())
		case *Gauge:
			ms.Kind = "gauge"
			ms.Value = fp(float64(m.Load()))
		case *Histogram:
			ms.Kind = "histogram"
			ms.Count = ip(m.Count())
			ms.Sum = fp(m.Sum())
			le, cum := m.cumulative()
			ms.Buckets = make([]Bucket, len(le))
			for i := range le {
				bound := fmtFloat(le[i])
				if i == len(le)-1 {
					bound = "+Inf"
				}
				ms.Buckets[i] = Bucket{LE: bound, Count: cum[i]}
			}
		}
		snap.Metrics = append(snap.Metrics, ms)
	}
	return snap
}

// WriteJSON writes the snapshot document (two-space indented, trailing
// newline — the same stability contract as the scenario encoders).
func (r *Registry) WriteJSON(w io.Writer, man *Manifest) error {
	b, err := json.MarshalIndent(r.Snapshot(man), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
