// Package obs is the runtime observability layer: an allocation-free
// metrics core (atomic counters, gauges, fixed-bucket histograms), a
// registry with Prometheus text exposition and a JSON snapshot writer,
// and a run-provenance Manifest (go version, host, module version, spec
// hash, seed, wall/virtual time) that travels with every snapshot.
//
// The instruments are safe for concurrent use and never allocate after
// construction: Counter.Add, Gauge.Set/SetMax, FloatCounter.Add and
// Histogram.Observe are single atomic operations (a bounded CAS loop
// for the float paths), so they can sit on simulator hot paths and in
// per-replication flush hooks without perturbing the engine's
// allocs/event budget. Registration and exposition take the registry
// lock and may allocate; they are expected once per run, not per event.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (negative deltas are the caller's bug; the counter does
// not police them, keeping Add a single atomic op).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic int64 instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v is larger — the high-water-mark
// operation (lock-free CAS loop).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// FloatCounter is a monotonically increasing atomic float64 metric
// (bit-packed into a uint64; Add is a CAS loop).
type FloatCounter struct {
	bits atomic.Uint64
}

// Add adds d.
func (c *FloatCounter) Add(d float64) {
	for {
		old := c.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Load returns the current value.
func (c *FloatCounter) Load() float64 {
	return math.Float64frombits(c.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram: observation counts
// per upper bound plus an implicit +Inf bucket, with a running sum and
// count. All buckets are allocated at construction; Observe is a
// linear scan over the (small, fixed) bound slice plus three atomic
// adds — no allocation, no lock.
type Histogram struct {
	bounds []float64      // ascending upper bounds, +Inf excluded
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    FloatCounter
	count  Counter
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (the +Inf bucket is implicit). It panics on unsorted,
// duplicate or non-finite bounds — histogram shapes are static
// configuration, not runtime input.
func NewHistogram(bounds ...float64) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram bound %v", b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %v", b))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExpBuckets returns n ascending bounds start, start*factor, ... —
// the usual log-spaced histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Inc()
}

// Count returns the total observation count.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// cumulative returns the bucket upper bounds (last one +Inf) and the
// cumulative counts at each, Prometheus-style.
func (h *Histogram) cumulative() ([]float64, []int64) {
	le := make([]float64, len(h.bounds)+1)
	copy(le, h.bounds)
	le[len(h.bounds)] = math.Inf(1)
	cum := make([]int64, len(h.counts))
	total := int64(0)
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	return le, cum
}

// Quantile returns an upper-bound estimate of the q-quantile (the
// smallest bucket bound whose cumulative count reaches q of the total;
// +Inf when the tail bucket holds it). Useful for progress/summary
// rendering; not exported in snapshots.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	le, cum := h.cumulative()
	rank := int64(math.Ceil(q * float64(total)))
	i := sort.Search(len(cum), func(i int) bool { return cum[i] >= rank })
	if i >= len(le) {
		i = len(le) - 1
	}
	return le[i]
}
