package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestNewManifestFillsEnvironment(t *testing.T) {
	m := NewManifest("obs_test")
	if m.Tool != "obs_test" {
		t.Fatalf("tool = %q", m.Tool)
	}
	if m.GoVersion != runtime.Version() {
		t.Fatalf("go version = %q", m.GoVersion)
	}
	if m.GOOS != runtime.GOOS || m.GOARCH != runtime.GOARCH {
		t.Fatalf("platform = %s/%s", m.GOOS, m.GOARCH)
	}
	if m.NumCPU < 1 {
		t.Fatalf("numCPU = %d", m.NumCPU)
	}
	if m.Timestamp == "" {
		t.Fatal("empty timestamp")
	}
}

func TestManifestSpecAndSeed(t *testing.T) {
	var m Manifest
	m.SetSpec("testdata/spec.json", []byte("{}"))
	if m.SpecPath != "testdata/spec.json" {
		t.Fatalf("spec path = %q", m.SpecPath)
	}
	// sha256("{}")
	if m.SpecSHA256 != "44136fa355b3678a1146ad16f7e8649e94fb4fc21fe77e8310c060f61caaff8a" {
		t.Fatalf("spec hash = %q", m.SpecSHA256)
	}
	m.SetSeed(777)
	if m.Seed == nil || *m.Seed != 777 {
		t.Fatalf("seed = %v", m.Seed)
	}
}

// TestSnapshotGolden pins the JSON snapshot schema byte-for-byte on a
// fully deterministic registry + manifest, so any drift in field names,
// ordering or formatting — the contract CI smoke jobs and external
// dashboards parse — fails loudly.
//
// Regenerate intentionally with:
//
//	UPDATE_GOLDEN=1 go test ./internal/obs -run TestSnapshotGolden
func TestSnapshotGolden(t *testing.T) {
	r := NewRegistry()
	var events Counter
	events.Add(123456)
	var hw Gauge
	hw.Set(42)
	var vt FloatCounter
	vt.Add(625.5)
	h := NewHistogram(ExpBuckets(1, 10, 3)...)
	for _, v := range []float64{0.5, 5, 5000} {
		h.Observe(v)
	}
	var rss Gauge
	rss.Set(2415919104)
	r.MustRegister("netsim_events_total", "engine events processed", &events)
	r.MustRegister("netsim_heap_high_water", "event-queue high-water mark", &hw)
	r.MustRegister("netsim_virtual_time", "simulated time units", &vt)
	r.MustRegister("process_max_rss_bytes", "kernel-reported peak resident set size", &rss)
	r.MustRegister("sweep_cell_seconds", "wall seconds per sweep cell", h)
	seed := uint64(777)
	man := &Manifest{
		Tool:         "golden",
		GoVersion:    "go1.24.0",
		GOOS:         "linux",
		GOARCH:       "amd64",
		NumCPU:       8,
		CPUModel:     "Example CPU @ 3.00GHz",
		Module:       "mlfair",
		Timestamp:    "2026-01-02T03:04:05Z",
		SpecPath:     "testdata/spec.json",
		SpecSHA256:   "44136fa355b3678a1146ad16f7e8649e94fb4fc21fe77e8310c060f61caaff8a",
		Seed:         &seed,
		WallSeconds:  1.5,
		VirtualTime:  625.5,
		MaxRSSBytes:  2415919104,
		HeapSysBytes: 2147483648,
	}
	var got bytes.Buffer
	if err := r.WriteJSON(&got, man); err != nil {
		t.Fatal(err)
	}
	// The document must parse as the Snapshot type it claims to be.
	var back Snapshot
	if err := json.Unmarshal(got.Bytes(), &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if back.Manifest == nil || len(back.Metrics) != 5 {
		t.Fatalf("round-tripped snapshot shape: manifest %v, %d metrics", back.Manifest, len(back.Metrics))
	}
	golden := filepath.Join("testdata", "snapshot.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("snapshot schema drifted from golden.\nGot:\n%s\nWant:\n%s", got.Bytes(), want)
	}
}
