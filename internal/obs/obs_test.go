package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeFloatCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(3)
	if g.Load() != 10 {
		t.Fatalf("gauge = %d", g.Load())
	}
	g.SetMax(5)
	if g.Load() != 10 {
		t.Fatal("SetMax lowered the gauge")
	}
	g.SetMax(99)
	if g.Load() != 99 {
		t.Fatalf("SetMax = %d", g.Load())
	}
	var f FloatCounter
	f.Add(0.5)
	f.Add(1.25)
	if f.Load() != 1.75 {
		t.Fatalf("float counter = %v", f.Load())
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	le, cum := h.cumulative()
	if len(le) != 4 || !math.IsInf(le[3], 1) {
		t.Fatalf("bounds = %v", le)
	}
	// <=1: {0.5, 1}; <=10: +{5, 10}; <=100: +{50}; +Inf: +{1000}.
	want := []int64{2, 4, 5, 6}
	for i := range cum {
		if cum[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", cum, want)
		}
	}
	if h.Count() != 6 || h.Sum() != 1066.5 {
		t.Fatalf("count %d sum %v", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("median bucket bound = %v", q)
	}
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("max bucket bound = %v", q)
	}
	var empty Histogram
	if (&empty).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{
		{2, 1},
		{1, 1},
		{math.NaN()},
		{math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v accepted", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", got)
		}
	}
}

// TestInstrumentsAllocationFree pins the hot-path contract: recording
// into any instrument performs zero allocations.
func TestInstrumentsAllocationFree(t *testing.T) {
	var c Counter
	var g Gauge
	var f FloatCounter
	h := NewHistogram(ExpBuckets(1, 2, 10)...)
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		g.SetMax(c.Load())
		f.Add(0.5)
		h.Observe(7)
	}); n != 0 {
		t.Fatalf("instrument ops allocate %v per run", n)
	}
}

func TestRegistryRegisterValidation(t *testing.T) {
	r := NewRegistry()
	var c Counter
	if err := r.Register("good_name", "", &c); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("good_name", "", &c); err == nil {
		t.Fatal("duplicate name accepted")
	}
	for _, bad := range []string{"", "1leading", "has space", "has-dash"} {
		if err := r.Register(bad, "", &c); err == nil {
			t.Fatalf("bad name %q accepted", bad)
		}
	}
	if err := r.Register("wrong_type", "", 42); err == nil {
		t.Fatal("unsupported metric type accepted")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(5)
	var g Gauge
	g.Set(-3)
	var f FloatCounter
	f.Add(2.5)
	h := NewHistogram(1, 10)
	h.Observe(0.5)
	h.Observe(20)
	r.MustRegister("events_total", "processed events", &c)
	r.MustRegister("heap_high_water", "", &g)
	r.MustRegister("virtual_time_seconds", "simulated time", &f)
	r.MustRegister("window_seconds", "", h)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP events_total processed events",
		"# TYPE events_total counter",
		"events_total 5",
		"# TYPE heap_high_water gauge",
		"heap_high_water -3",
		"virtual_time_seconds 2.5",
		"# TYPE window_seconds histogram",
		`window_seconds_bucket{le="1"} 1`,
		`window_seconds_bucket{le="10"} 1`,
		`window_seconds_bucket{le="+Inf"} 2`,
		"window_seconds_sum 20.5",
		"window_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Name order: events_total before heap_high_water before the rest.
	if strings.Index(out, "events_total") > strings.Index(out, "heap_high_water") {
		t.Fatalf("metrics not in name order:\n%s", out)
	}
}

// TestConcurrentInstruments exercises every instrument from many
// goroutines (meaningful under -race) and checks the totals.
func TestConcurrentInstruments(t *testing.T) {
	var c Counter
	var g Gauge
	var f FloatCounter
	h := NewHistogram(8, 64)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				f.Add(0.25)
				h.Observe(float64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if c.Load() != workers*per {
		t.Fatalf("counter = %d", c.Load())
	}
	if g.Load() != workers*per-1 {
		t.Fatalf("gauge max = %d", g.Load())
	}
	if f.Load() != workers*per*0.25 {
		t.Fatalf("float counter = %v", f.Load())
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d", h.Count())
	}
}
