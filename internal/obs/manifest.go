package obs

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Manifest is the run-provenance block embedded in metrics snapshots
// and benchmark documents: enough environment to tell whether two
// numbers were measured under comparable conditions, and enough input
// identity (spec hash, seed) to reproduce the run.
type Manifest struct {
	// Tool names the producing binary ("netsim", "benchjson", ...).
	Tool string `json:"tool,omitempty"`
	// GoVersion / GOOS / GOARCH / NumCPU describe the build and host.
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"numCPU"`
	// CPUModel is the host CPU model string when the platform exposes
	// one (best-effort; empty elsewhere).
	CPUModel string `json:"cpuModel,omitempty"`
	// Module is the main module path@version from build info;
	// VCSRevision the embedded VCS commit, when stamped.
	Module      string `json:"module,omitempty"`
	VCSRevision string `json:"vcsRevision,omitempty"`
	// Timestamp is the manifest creation instant, RFC3339 UTC.
	Timestamp string `json:"timestamp,omitempty"`
	// SpecPath / SpecSHA256 identify the declarative input file the run
	// executed, when there was one.
	SpecPath   string `json:"specPath,omitempty"`
	SpecSHA256 string `json:"specSHA256,omitempty"`
	// Seed is the base RNG seed, when one governed the run.
	Seed *uint64 `json:"seed,omitempty"`
	// Shard is the distributed-sweep partition this run executed
	// ("i/n"), when the run was sharded.
	Shard string `json:"shard,omitempty"`
	// WallSeconds is the run's wall-clock duration; VirtualTime the
	// total simulated time across all replications.
	WallSeconds float64 `json:"wallSeconds,omitempty"`
	VirtualTime float64 `json:"virtualTime,omitempty"`
	// ShardGroups / ShardSubtrees / CutFrontier record the execution
	// decomposition the run's memory plan chose: independent
	// session-group engines, intra-session subtree shards across those
	// engines, and the cut-edge count of the subtree frontier (equal to
	// ShardSubtrees by construction — one cut edge enters each subtree).
	// All zero when the run was sequential.
	ShardGroups   int `json:"shardGroups,omitempty"`
	ShardSubtrees int `json:"shardSubtrees,omitempty"`
	CutFrontier   int `json:"cutFrontier,omitempty"`
	// MaxRSSBytes is the process's kernel-reported peak resident set
	// size at snapshot time (ReadPeakRSS; 0 = not measured), and
	// HeapSysBytes the Go heap address space obtained from the OS
	// (ReadHeapSys) — the two numbers the planetary-scale memory budget
	// is audited against.
	MaxRSSBytes  int64 `json:"maxRSSBytes,omitempty"`
	HeapSysBytes int64 `json:"heapSysBytes,omitempty"`
}

// NewManifest fills the environment fields: go version, GOOS/GOARCH,
// CPU count and model, module version and VCS revision, timestamp.
// Input-identity fields (spec, seed, durations) are the caller's.
func NewManifest(tool string) Manifest {
	m := Manifest{
		Tool:      tool,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		CPUModel:  cpuModel(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.Module = bi.Main.Path
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			m.Module += "@" + bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				m.VCSRevision = s.Value
			}
		}
	}
	return m
}

// SetSpec records the declarative input file's path and content hash.
// Nil-receiver safe, like SetSeed, so callers can chain off accessors
// that return nil before observability starts.
func (m *Manifest) SetSpec(path string, data []byte) {
	if m == nil {
		return
	}
	sum := sha256.Sum256(data)
	m.SpecPath = path
	m.SpecSHA256 = hex.EncodeToString(sum[:])
}

// SetSeed records the base RNG seed.
func (m *Manifest) SetSeed(seed uint64) {
	if m == nil {
		return
	}
	m.Seed = &seed
}

// SetDecomposition records the engine decomposition the run executed
// under: group engines, subtree shards, and the cut-frontier size.
func (m *Manifest) SetDecomposition(groups, subtrees, cutFrontier int) {
	if m == nil {
		return
	}
	m.ShardGroups = groups
	m.ShardSubtrees = subtrees
	m.CutFrontier = cutFrontier
}

// SetShard records the distributed-sweep partition ("i/n").
func (m *Manifest) SetShard(shard string) {
	if m == nil {
		return
	}
	m.Shard = shard
}

// WriteComment writes the manifest as one "# manifest: {...}" line —
// provenance that rides along inside Prometheus text exposition, whose
// scrapers treat non-HELP/TYPE comment lines as ignorable.
func (m *Manifest) WriteComment(w io.Writer) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "# manifest: %s\n", b)
	return err
}

// cpuModel reads the host CPU model string where the platform exposes
// one (/proc/cpuinfo on Linux); best-effort, "" on any failure.
func cpuModel() string {
	if runtime.GOOS != "linux" {
		return ""
	}
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if k, v, ok := strings.Cut(sc.Text(), ":"); ok {
			if strings.TrimSpace(k) == "model name" {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}
