package obs

import "runtime"

// ReadHeapSys returns the bytes of heap address space the Go runtime
// has obtained from the OS (runtime.MemStats.HeapSys) — the runtime's
// own view of heap footprint, complementing the kernel's peak-RSS
// accounting from ReadPeakRSS. ReadMemStats stops the world briefly, so
// call this at run boundaries, not on hot paths.
func ReadHeapSys() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapSys)
}
