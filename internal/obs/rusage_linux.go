//go:build linux

package obs

import "syscall"

// ReadPeakRSS returns the process's peak resident set size in bytes —
// getrusage(RUSAGE_SELF) ru_maxrss, which Linux reports in KiB — or 0
// when the syscall fails. This is the kernel's high-water mark for the
// whole process, so it bounds every per-run heap estimate (PlanMemory)
// from above and is the metric the planetary memory budget is gated on.
func ReadPeakRSS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return int64(ru.Maxrss) * 1024
}
