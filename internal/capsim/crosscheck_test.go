package capsim

import (
	"math/rand/v2"
	"testing"

	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
)

// buildEquivalentNetwork expresses a capsim Config as a netmodel star so
// the general allocator can serve as reference.
func buildEquivalentNetwork(cfg Config) *netmodel.Network {
	b := netmodel.NewBuilder()
	shared := b.AddLink(cfg.SharedCapacity)
	for _, sc := range cfg.Sessions {
		s := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, len(sc.FanoutCapacities))
		for k, c := range sc.FanoutCapacities {
			fan := b.AddLink(c)
			b.SetPath(s, k, shared, fan)
		}
	}
	return b.MustBuild()
}

// TestFairRatesMatchesGeneralAllocator: the specialized fluid reference
// agrees with the Appendix-A allocator on random star configurations.
func TestFairRatesMatchesGeneralAllocator(t *testing.T) {
	rng := rand.New(rand.NewPCG(401, 402))
	for trial := 0; trial < 100; trial++ {
		cfg := Config{SharedCapacity: 2 + 30*rng.Float64(), Packets: 1}
		ns := 1 + rng.IntN(4)
		for i := 0; i < ns; i++ {
			nr := 1 + rng.IntN(4)
			caps := make([]float64, nr)
			for k := range caps {
				caps[k] = 0.5 + 20*rng.Float64()
			}
			cfg.Sessions = append(cfg.Sessions, SessionConfig{Layers: 8, FanoutCapacities: caps})
		}
		fast := FairRates(cfg)
		res, err := maxmin.Allocate(buildEquivalentNetwork(cfg))
		if err != nil {
			t.Fatal(err)
		}
		for si := range cfg.Sessions {
			for k := range cfg.Sessions[si].FanoutCapacities {
				want := res.Alloc.Rate(si, k)
				got := fast[si][k]
				if !netmodel.Eq(got, want) && (got-want > 1e-6 || want-got > 1e-6) {
					t.Fatalf("trial %d r%d,%d: FairRates %v vs allocator %v\ncfg %+v",
						trial, si+1, k+1, got, want, cfg)
				}
			}
		}
	}
}
