// Package capsim is a capacity-coupled ("closed-loop") variant of the
// packet-level simulator: instead of the paper's exogenous Bernoulli
// loss rates, loss emerges from link capacities — a packet is dropped
// with probability max(0, (D-C)/D) where D is the instantaneous demand
// on the link and C its capacity (the fluid limit of a droptail queue).
//
// This closes the loop the paper leaves open between its two halves:
// Section 2 derives what the max-min fair rates *are*; Section 4 shows
// the layered protocols react sensibly to fixed loss processes. Here the
// protocols generate their own congestion, so we can measure how close
// their long-term average rates come to the multi-rate max-min fair
// allocation of the same topology ("it can be argued that these
// protocols come 'close' to achieving the max-min fair rates", §4).
//
// The topology is the modified star of Figure 7(b), generalized to
// several sessions: every session's sender sits behind one shared link
// of capacity SharedCapacity; receiver k of session i sits behind its
// own fanout link of capacity FanoutCapacity[k]. Each session transmits
// the exponential layer scheme; only layers with at least one subscribed
// receiver consume shared capacity (and a session's shared-link demand
// is the cumulative rate of its maximum subscribed level, since
// subscriptions are layer prefixes).
//
// capsim is a facade over the general engine: NetsimConfig compiles the
// star onto a netmodel graph whose links all run netsim's Capacity
// (fluid droptail-limit) law, and Run re-maps the general result —
// receiver goodputs, the shared link's per-session fluid usage
// (netsim.LinkStats.FluidRate) and its drop accounting — onto the
// star-shaped Result. It owns no event loop; FairRates (the analytic
// fluid reference) is pure progressive filling. The facade regression
// tests pin the translation against direct netsim runs.
package capsim

import (
	"fmt"
	"math"

	"mlfair/internal/netmodel"
	"mlfair/internal/netsim"
	"mlfair/internal/protocol"
	"mlfair/internal/routing"
)

// SessionConfig describes one layered session in the star.
type SessionConfig struct {
	// Protocol is the join-coordination discipline.
	Protocol protocol.Kind
	// Layers is M for this session.
	Layers int
	// FanoutCapacities gives each receiver's access-link capacity in
	// layer-rate units; its length sets the receiver count.
	FanoutCapacities []float64
}

// Config parameterizes one closed-loop run.
type Config struct {
	// SharedCapacity is the shared link's capacity in layer-rate units.
	SharedCapacity float64
	// Sessions share the link.
	Sessions []SessionConfig
	// Packets is the total packet budget across all sessions' senders.
	Packets int
	// SignalPeriod is the Coordinated signal base period (0 = 1.0).
	SignalPeriod float64
	// Seed drives all randomness.
	Seed uint64
}

func (c *Config) validate() error {
	if c.SharedCapacity <= 0 {
		return fmt.Errorf("capsim: SharedCapacity = %v", c.SharedCapacity)
	}
	if len(c.Sessions) == 0 {
		return fmt.Errorf("capsim: no sessions")
	}
	if c.Packets < 1 {
		return fmt.Errorf("capsim: Packets = %d", c.Packets)
	}
	for i, s := range c.Sessions {
		if s.Layers < 1 {
			return fmt.Errorf("capsim: session %d: Layers = %d", i, s.Layers)
		}
		if len(s.FanoutCapacities) == 0 {
			return fmt.Errorf("capsim: session %d has no receivers", i)
		}
		for k, f := range s.FanoutCapacities {
			if f <= 0 {
				return fmt.Errorf("capsim: session %d receiver %d capacity %v", i, k, f)
			}
		}
	}
	return nil
}

// Result summarizes a closed-loop run.
type Result struct {
	// ReceiverRates[i][k] is receiver k of session i's long-run receive
	// rate.
	ReceiverRates [][]float64
	// SessionLinkRates[i] is session i's average shared-link usage.
	SessionLinkRates []float64
	// SharedUtilization is total shared usage over capacity.
	SharedUtilization float64
	// SharedLossRate is the fraction of shared-link packets dropped.
	SharedLossRate float64
	// Duration is the simulated time.
	Duration float64
}

// NetsimConfig compiles the closed-loop star onto the general netsim
// engine: every session's sender sits behind one shared capacity-coupled
// link; each receiver has its own capacity-coupled fanout link. Link 0
// is the shared link.
func NetsimConfig(c Config) (netsim.Config, error) {
	if err := c.validate(); err != nil {
		return netsim.Config{}, err
	}
	nr := 0
	for _, sc := range c.Sessions {
		nr += len(sc.FanoutCapacities)
	}
	g := netmodel.NewGraph(2 + nr)
	const sender, hub = 0, 1
	g.AddLink(sender, hub, c.SharedCapacity)
	sessions := make([]*netmodel.Session, len(c.Sessions))
	sessCfgs := make([]netsim.SessionConfig, len(c.Sessions))
	node := 2
	for i, sc := range c.Sessions {
		receivers := make([]int, len(sc.FanoutCapacities))
		for k, fc := range sc.FanoutCapacities {
			g.AddLink(hub, node, fc)
			receivers[k] = node
			node++
		}
		sessions[i] = &netmodel.Session{Sender: sender, Receivers: receivers, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
		sessCfgs[i] = netsim.SessionConfig{Protocol: sc.Protocol, Layers: sc.Layers}
	}
	net, err := routing.BuildNetwork(g, sessions)
	if err != nil {
		return netsim.Config{}, err
	}
	return netsim.Config{
		Network:      net,
		Links:        netsim.CapacityLinks(net.NumLinks()),
		Sessions:     sessCfgs,
		Packets:      c.Packets,
		SignalPeriod: c.SignalPeriod,
		Seed:         c.Seed,
	}, nil
}

// FromNetsim maps a general-engine result of a NetsimConfig run back
// onto the closed-loop star Result (exported for the facade regression
// tests): SessionLinkRates are the shared link's per-session fluid usage
// rates, SharedLossRate its drop fraction.
func FromNetsim(c Config, r *netsim.Result) *Result {
	res := &Result{
		ReceiverRates:    r.ReceiverRates,
		SessionLinkRates: make([]float64, len(c.Sessions)),
		Duration:         r.Duration,
	}
	totalUsage := 0.0
	crossed, dropped := 0, 0
	for _, ls := range r.Links {
		if ls.Link != 0 {
			continue
		}
		res.SessionLinkRates[ls.Session] = ls.FluidRate
		totalUsage += ls.FluidRate
		crossed += ls.Crossed
		dropped += ls.Dropped
	}
	if r.Duration > 0 {
		res.SharedUtilization = totalUsage / c.SharedCapacity
	}
	if crossed > 0 {
		res.SharedLossRate = float64(dropped) / float64(crossed)
	}
	return res
}

// Run executes one closed-loop simulation on the general engine.
func Run(cfg Config) (*Result, error) {
	nc, err := NetsimConfig(cfg)
	if err != nil {
		return nil, err
	}
	r, err := netsim.Run(nc)
	if err != nil {
		return nil, err
	}
	return FromNetsim(cfg, r), nil
}

// FairRates computes the multi-rate max-min fair rates of the same star
// in the fluid model, for comparing against achieved protocol rates:
// progressive filling where session i's shared-link usage is the maximum
// of its receivers' rates (prefix subscriptions) and each receiver is
// capped by its fanout capacity.
func FairRates(cfg Config) [][]float64 {
	type recv struct{ si, k int }
	var active []recv
	rates := make([][]float64, len(cfg.Sessions))
	for si, s := range cfg.Sessions {
		rates[si] = make([]float64, len(s.FanoutCapacities))
		for k := range s.FanoutCapacities {
			active = append(active, recv{si, k})
		}
	}
	level := 0.0
	for len(active) > 0 {
		// Next κ-style stop: the smallest fanout capacity among active.
		step := math.Inf(1)
		for _, r := range active {
			if c := cfg.Sessions[r.si].FanoutCapacities[r.k] - level; c < step {
				step = c
			}
		}
		// Shared-link stop: usage = Σ_i max(level+t, frozen max of i)
		// grows with slope = #sessions with an active receiver.
		slope := 0
		base := 0.0
		for si := range cfg.Sessions {
			hasActive := false
			frozenMax := 0.0
			for k, r := range rates[si] {
				isActive := false
				for _, a := range active {
					if a.si == si && a.k == k {
						isActive = true
						break
					}
				}
				if isActive {
					hasActive = true
				} else if r > frozenMax {
					frozenMax = r
				}
			}
			if hasActive {
				slope++
				base += level
			} else {
				base += frozenMax
			}
		}
		if slope > 0 {
			if t := (cfg.SharedCapacity - base) / float64(slope); t < step {
				step = t
			}
		}
		if step < 0 {
			step = 0
		}
		level += step
		// Freeze receivers at their fanout caps or on the saturated
		// shared link.
		sharedU := 0.0
		for si := range cfg.Sessions {
			m := 0.0
			for k, r := range rates[si] {
				cur := r
				for _, a := range active {
					if a.si == si && a.k == k {
						cur = level
					}
				}
				if cur > m {
					m = cur
				}
			}
			sharedU += m
		}
		sharedFull := sharedU >= cfg.SharedCapacity-1e-9
		var still []recv
		for _, r := range active {
			rates[r.si][r.k] = level
			if level >= cfg.Sessions[r.si].FanoutCapacities[r.k]-1e-9 || sharedFull {
				continue
			}
			still = append(still, r)
		}
		if len(still) == len(active) {
			// No progress (defensive; cannot happen with finite caps).
			break
		}
		active = still
	}
	return rates
}
