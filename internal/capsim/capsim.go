// Package capsim is a capacity-coupled ("closed-loop") variant of the
// packet-level simulator: instead of the paper's exogenous Bernoulli
// loss rates, loss emerges from link capacities — a packet is dropped
// with probability max(0, (D-C)/D) where D is the instantaneous demand
// on the link and C its capacity (the fluid limit of a droptail queue).
//
// This closes the loop the paper leaves open between its two halves:
// Section 2 derives what the max-min fair rates *are*; Section 4 shows
// the layered protocols react sensibly to fixed loss processes. Here the
// protocols generate their own congestion, so we can measure how close
// their long-term average rates come to the multi-rate max-min fair
// allocation of the same topology ("it can be argued that these
// protocols come 'close' to achieving the max-min fair rates", §4).
//
// The topology is the modified star of Figure 7(b), generalized to
// several sessions: every session's sender sits behind one shared link
// of capacity SharedCapacity; receiver k of session i sits behind its
// own fanout link of capacity FanoutCapacity[k]. Each session transmits
// the exponential layer scheme; only layers with at least one subscribed
// receiver consume shared capacity (and a session's shared-link demand
// is the cumulative rate of its maximum subscribed level, since
// subscriptions are layer prefixes).
//
// capsim is the specialized engine for the capacity-coupled star; the
// netsim package applies the same fluid drop law per link of an
// arbitrary netmodel.Network graph (netsim.FromCapsim lifts a Config
// onto the general engine).
package capsim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"mlfair/internal/layering"
	"mlfair/internal/protocol"
	"mlfair/internal/sim"
)

// SessionConfig describes one layered session in the star.
type SessionConfig struct {
	// Protocol is the join-coordination discipline.
	Protocol protocol.Kind
	// Layers is M for this session.
	Layers int
	// FanoutCapacities gives each receiver's access-link capacity in
	// layer-rate units; its length sets the receiver count.
	FanoutCapacities []float64
}

// Config parameterizes one closed-loop run.
type Config struct {
	// SharedCapacity is the shared link's capacity in layer-rate units.
	SharedCapacity float64
	// Sessions share the link.
	Sessions []SessionConfig
	// Packets is the total packet budget across all sessions' senders.
	Packets int
	// SignalPeriod is the Coordinated signal base period (0 = 1.0).
	SignalPeriod float64
	// Seed drives all randomness.
	Seed uint64
}

func (c *Config) validate() error {
	if c.SharedCapacity <= 0 {
		return fmt.Errorf("capsim: SharedCapacity = %v", c.SharedCapacity)
	}
	if len(c.Sessions) == 0 {
		return fmt.Errorf("capsim: no sessions")
	}
	if c.Packets < 1 {
		return fmt.Errorf("capsim: Packets = %d", c.Packets)
	}
	for i, s := range c.Sessions {
		if s.Layers < 1 {
			return fmt.Errorf("capsim: session %d: Layers = %d", i, s.Layers)
		}
		if len(s.FanoutCapacities) == 0 {
			return fmt.Errorf("capsim: session %d has no receivers", i)
		}
		for k, f := range s.FanoutCapacities {
			if f <= 0 {
				return fmt.Errorf("capsim: session %d receiver %d capacity %v", i, k, f)
			}
		}
	}
	return nil
}

// Result summarizes a closed-loop run.
type Result struct {
	// ReceiverRates[i][k] is receiver k of session i's long-run receive
	// rate.
	ReceiverRates [][]float64
	// SessionLinkRates[i] is session i's average shared-link usage.
	SessionLinkRates []float64
	// SharedUtilization is total shared usage over capacity.
	SharedUtilization float64
	// SharedLossRate is the fraction of shared-link packets dropped.
	SharedLossRate float64
	// Duration is the simulated time.
	Duration float64
}

// session carries one session's runtime state.
type session struct {
	cfg       SessionConfig
	scheme    layering.Scheme
	receivers []*protocol.Receiver
	levels    []int
	maxLev    int
	cnt       []int

	nextTx []float64
	period []float64

	received []int
	crossed  int // packets that entered the shared link
}

func (s *session) syncReceiver(k int) {
	nl := s.receivers[k].Level()
	ol := s.levels[k]
	if nl == ol {
		return
	}
	s.cnt[ol]--
	s.cnt[nl]++
	s.levels[k] = nl
	if nl > s.maxLev {
		s.maxLev = nl
	}
}

func (s *session) maxLevel() int {
	for s.maxLev > 1 && s.cnt[s.maxLev] == 0 {
		s.maxLev--
	}
	return s.maxLev
}

// sharedDemand is the session's instantaneous shared-link demand: the
// cumulative rate of its maximum subscribed level.
func (s *session) sharedDemand() float64 {
	return s.scheme.CumulativeRate(s.maxLevel())
}

// Run executes one closed-loop simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))
	sessions := make([]*session, len(cfg.Sessions))
	for i, sc := range cfg.Sessions {
		s := &session{
			cfg:       sc,
			scheme:    layering.Exponential(sc.Layers),
			receivers: make([]*protocol.Receiver, len(sc.FanoutCapacities)),
			levels:    make([]int, len(sc.FanoutCapacities)),
			cnt:       make([]int, sc.Layers+1),
			nextTx:    make([]float64, sc.Layers),
			period:    make([]float64, sc.Layers),
			received:  make([]int, len(sc.FanoutCapacities)),
		}
		for k := range s.receivers {
			s.receivers[k] = protocol.NewReceiver(sc.Protocol, sc.Layers, rng)
			s.levels[k] = 1
		}
		s.cnt[1] = len(sc.FanoutCapacities)
		s.maxLev = 1
		for l := 0; l < sc.Layers; l++ {
			s.period[l] = 1 / s.scheme.LayerRate(l)
			s.nextTx[l] = s.period[l]
		}
		sessions[i] = s
	}
	signalPeriod := cfg.SignalPeriod
	if signalPeriod == 0 {
		signalPeriod = 1
	}
	nextSignal := math.Inf(1)
	signalIdx := 0
	for _, s := range sessions {
		if s.cfg.Protocol == protocol.Coordinated && s.cfg.Layers > 1 {
			nextSignal = signalPeriod
			break
		}
	}

	// usageIntegral[i] accumulates session i's shared demand over time.
	usageIntegral := make([]float64, len(sessions))
	lastT := 0.0
	now := 0.0
	sent, sharedDropped, sharedEntered := 0, 0, 0

	for sent < cfg.Packets {
		// Earliest event across sessions' layers and the signal clock.
		minSess, minLayer := -1, -1
		minT := math.Inf(1)
		for si, s := range sessions {
			for l := 0; l < s.cfg.Layers; l++ {
				if s.nextTx[l] < minT {
					minT, minSess, minLayer = s.nextTx[l], si, l
				}
			}
		}
		isSignal := nextSignal < minT
		if isSignal {
			minT = nextSignal
		}
		for si, s := range sessions {
			usageIntegral[si] += s.sharedDemand() * (minT - lastT)
		}
		lastT = minT
		now = minT

		if isSignal {
			signalIdx++
			for _, s := range sessions {
				if s.cfg.Protocol != protocol.Coordinated {
					continue
				}
				lvl := sim.SignalLevel(signalIdx, s.cfg.Layers-1)
				for k, r := range s.receivers {
					r.OnSignal(lvl)
					s.syncReceiver(k)
				}
			}
			nextSignal += signalPeriod
			continue
		}

		s := sessions[minSess]
		l := minLayer
		s.nextTx[l] += s.period[l]
		sent++
		if s.maxLevel() <= l {
			continue
		}
		sharedEntered++
		s.crossed++
		// Shared-link drop probability from total instantaneous demand.
		demand := 0.0
		for _, ss := range sessions {
			demand += ss.sharedDemand()
		}
		pShared := 0.0
		if demand > cfg.SharedCapacity {
			pShared = (demand - cfg.SharedCapacity) / demand
		}
		sharedLost := pShared > 0 && rng.Float64() < pShared
		if sharedLost {
			sharedDropped++
		}
		for k, r := range s.receivers {
			if s.levels[k] <= l {
				continue
			}
			if sharedLost {
				r.OnCongestion()
				s.syncReceiver(k)
				continue
			}
			// Fanout drop probability from the receiver's own demand.
			rate := s.scheme.CumulativeRate(s.levels[k])
			pInd := 0.0
			if c := s.cfg.FanoutCapacities[k]; rate > c {
				pInd = (rate - c) / rate
			}
			if pInd > 0 && rng.Float64() < pInd {
				r.OnCongestion()
				s.syncReceiver(k)
				continue
			}
			s.received[k]++
			r.OnReceive()
			s.syncReceiver(k)
		}
	}

	res := &Result{
		ReceiverRates:    make([][]float64, len(sessions)),
		SessionLinkRates: make([]float64, len(sessions)),
		Duration:         now,
	}
	if now > 0 {
		totalUsage := 0.0
		for si, s := range sessions {
			res.ReceiverRates[si] = make([]float64, len(s.received))
			for k, n := range s.received {
				res.ReceiverRates[si][k] = float64(n) / now
			}
			res.SessionLinkRates[si] = usageIntegral[si] / now
			totalUsage += res.SessionLinkRates[si]
		}
		res.SharedUtilization = totalUsage / cfg.SharedCapacity
		if sharedEntered > 0 {
			res.SharedLossRate = float64(sharedDropped) / float64(sharedEntered)
		}
	}
	return res, nil
}

// FairRates computes the multi-rate max-min fair rates of the same star
// in the fluid model, for comparing against achieved protocol rates:
// progressive filling where session i's shared-link usage is the maximum
// of its receivers' rates (prefix subscriptions) and each receiver is
// capped by its fanout capacity.
func FairRates(cfg Config) [][]float64 {
	type recv struct{ si, k int }
	var active []recv
	rates := make([][]float64, len(cfg.Sessions))
	for si, s := range cfg.Sessions {
		rates[si] = make([]float64, len(s.FanoutCapacities))
		for k := range s.FanoutCapacities {
			active = append(active, recv{si, k})
		}
	}
	level := 0.0
	for len(active) > 0 {
		// Next κ-style stop: the smallest fanout capacity among active.
		step := math.Inf(1)
		for _, r := range active {
			if c := cfg.Sessions[r.si].FanoutCapacities[r.k] - level; c < step {
				step = c
			}
		}
		// Shared-link stop: usage = Σ_i max(level+t, frozen max of i)
		// grows with slope = #sessions with an active receiver.
		slope := 0
		base := 0.0
		for si := range cfg.Sessions {
			hasActive := false
			frozenMax := 0.0
			for k, r := range rates[si] {
				isActive := false
				for _, a := range active {
					if a.si == si && a.k == k {
						isActive = true
						break
					}
				}
				if isActive {
					hasActive = true
				} else if r > frozenMax {
					frozenMax = r
				}
			}
			if hasActive {
				slope++
				base += level
			} else {
				base += frozenMax
			}
		}
		if slope > 0 {
			if t := (cfg.SharedCapacity - base) / float64(slope); t < step {
				step = t
			}
		}
		if step < 0 {
			step = 0
		}
		level += step
		// Freeze receivers at their fanout caps or on the saturated
		// shared link.
		sharedU := 0.0
		for si := range cfg.Sessions {
			m := 0.0
			for k, r := range rates[si] {
				cur := r
				for _, a := range active {
					if a.si == si && a.k == k {
						cur = level
					}
				}
				if cur > m {
					m = cur
				}
			}
			sharedU += m
		}
		sharedFull := sharedU >= cfg.SharedCapacity-1e-9
		var still []recv
		for _, r := range active {
			rates[r.si][r.k] = level
			if level >= cfg.Sessions[r.si].FanoutCapacities[r.k]-1e-9 || sharedFull {
				continue
			}
			still = append(still, r)
		}
		if len(still) == len(active) {
			// No progress (defensive; cannot happen with finite caps).
			break
		}
		active = still
	}
	return rates
}
