package capsim

import (
	"math"
	"reflect"
	"testing"

	"mlfair/internal/netsim"
	"mlfair/internal/protocol"
)

// Facade regression suite (folds the former netsim capacity cross-check
// into this package): capsim.Run is netsim.Run of NetsimConfig plus the
// FromNetsim re-mapping, so fixed seeds must agree exactly.

func facadeEqual(t *testing.T, cfg Config) {
	t.Helper()
	got, err := Run(cfg)
	if err != nil {
		t.Fatalf("facade run: %v", err)
	}
	nc, err := NetsimConfig(cfg)
	if err != nil {
		t.Fatalf("NetsimConfig: %v", err)
	}
	nr, err := netsim.Run(nc)
	if err != nil {
		t.Fatalf("direct netsim run: %v", err)
	}
	want := FromNetsim(cfg, nr)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("facade diverged from direct netsim run:\nfacade %+v\nnetsim %+v", got, want)
	}
}

func TestFacadeMatchesNetsimExactly(t *testing.T) {
	for _, kind := range protocol.Kinds() {
		facadeEqual(t, Config{
			SharedCapacity: 24, Packets: 30000, Seed: 41,
			Sessions: []SessionConfig{
				{Protocol: kind, Layers: 8, FanoutCapacities: []float64{2, 8, 64}},
				{Protocol: kind, Layers: 8, FanoutCapacities: []float64{64}},
			},
		})
	}
}

// TestFacadeUsageConsistency pins the fluid-usage mapping: per-session
// shared-link usage rates are the engine's FluidRate on link 0, their
// sum over capacity is the reported utilization, and each session's
// usage is bounded by its full-stack cumulative rate.
func TestFacadeUsageConsistency(t *testing.T) {
	cfg := Config{
		SharedCapacity: 16, Packets: 100000, Seed: 43,
		Sessions: []SessionConfig{
			{Protocol: protocol.Deterministic, Layers: 8, FanoutCapacities: []float64{100, 100}},
			{Protocol: protocol.Deterministic, Layers: 6, FanoutCapacities: []float64{100}},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, u := range res.SessionLinkRates {
		if u <= 0 {
			t.Fatalf("session %d usage %v", i, u)
		}
		top := math.Pow(2, float64(cfg.Sessions[i].Layers-1))
		if u > top {
			t.Fatalf("session %d usage %v above full-stack rate %v", i, u, top)
		}
		sum += u
	}
	if got := sum / cfg.SharedCapacity; math.Abs(got-res.SharedUtilization) > 1e-12 {
		t.Fatalf("utilization %v inconsistent with usage sum %v", res.SharedUtilization, got)
	}
	if res.SharedLossRate <= 0 || res.SharedLossRate >= 1 {
		t.Fatalf("implausible shared loss rate %v for an oversubscribed link", res.SharedLossRate)
	}
}
