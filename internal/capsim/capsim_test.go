package capsim

import (
	"math"
	"testing"

	"mlfair/internal/protocol"
)

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestValidation(t *testing.T) {
	good := Config{SharedCapacity: 8, Packets: 100,
		Sessions: []SessionConfig{{Protocol: protocol.Deterministic, Layers: 4, FanoutCapacities: []float64{4}}}}
	if _, err := Run(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{SharedCapacity: 0, Packets: 100, Sessions: good.Sessions},
		{SharedCapacity: 8, Packets: 0, Sessions: good.Sessions},
		{SharedCapacity: 8, Packets: 100},
		{SharedCapacity: 8, Packets: 100, Sessions: []SessionConfig{{Layers: 0, FanoutCapacities: []float64{1}}}},
		{SharedCapacity: 8, Packets: 100, Sessions: []SessionConfig{{Layers: 4}}},
		{SharedCapacity: 8, Packets: 100, Sessions: []SessionConfig{{Layers: 4, FanoutCapacities: []float64{0}}}},
	}
	for i, c := range bad {
		if _, err := Run(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestFairRatesStar: the fluid reference allocation matches hand
// computation.
func TestFairRatesStar(t *testing.T) {
	cfg := Config{
		SharedCapacity: 10,
		Sessions: []SessionConfig{
			{Layers: 8, FanoutCapacities: []float64{1, 2, 30}},
			{Layers: 8, FanoutCapacities: []float64{30}},
		},
	}
	// Session 1's shared usage = max of its receivers; session 2's = its
	// receiver. Fill: both rise to 5 = shared saturation (5+5=10); fanout
	// caps freeze receivers 0 (1) and 1 (2) early.
	rates := FairRates(cfg)
	want := [][]float64{{1, 2, 5}, {5}}
	for si := range want {
		for k := range want[si] {
			if math.Abs(rates[si][k]-want[si][k]) > 1e-9 {
				t.Fatalf("FairRates = %v, want %v", rates, want)
			}
		}
	}
}

// TestSingleReceiverConvergesToCap: one receiver behind a fanout cap
// between subscription levels oscillates below the cap, achieving a
// substantial fraction of its fair rate.
func TestSingleReceiverConvergesToCap(t *testing.T) {
	for _, k := range protocol.Kinds() {
		res := run(t, Config{
			SharedCapacity: 1000, Packets: 200000, Seed: 5,
			Sessions: []SessionConfig{{Protocol: k, Layers: 8, FanoutCapacities: []float64{5}}},
		})
		rate := res.ReceiverRates[0][0]
		if rate > 5+0.5 {
			t.Errorf("%v: rate %v exceeds the capacity 5", k, rate)
		}
		if rate < 2 {
			t.Errorf("%v: rate %v too far below the fair rate 5", k, rate)
		}
	}
}

// TestInterSessionFairness: two identical sessions sharing a bottleneck
// settle at comparable shared-link usage — fairness emerges from the
// closed loop.
func TestInterSessionFairness(t *testing.T) {
	res := run(t, Config{
		SharedCapacity: 16, Packets: 400000, Seed: 11,
		Sessions: []SessionConfig{
			{Protocol: protocol.Deterministic, Layers: 8, FanoutCapacities: []float64{100, 100}},
			{Protocol: protocol.Deterministic, Layers: 8, FanoutCapacities: []float64{100, 100}},
		},
	})
	u1, u2 := res.SessionLinkRates[0], res.SessionLinkRates[1]
	if u1 <= 0 || u2 <= 0 {
		t.Fatalf("degenerate usages %v %v", u1, u2)
	}
	ratio := u1 / u2
	if ratio < 0.6 || ratio > 1.7 {
		t.Fatalf("inter-session usage ratio %v, want near 1", ratio)
	}
	if res.SharedUtilization > 1.5 {
		t.Fatalf("utilization %v far above capacity", res.SharedUtilization)
	}
}

// TestHeterogeneousReceiversRespectOwnCaps: receivers behind different
// fanout caps converge to distinct rates bounded by their caps — the
// multi-rate promise under closed-loop congestion.
func TestHeterogeneousReceiversRespectOwnCaps(t *testing.T) {
	res := run(t, Config{
		SharedCapacity: 1000, Packets: 400000, Seed: 13,
		Sessions: []SessionConfig{{
			Protocol: protocol.Coordinated, Layers: 8,
			FanoutCapacities: []float64{2, 8, 32},
		}},
	})
	r := res.ReceiverRates[0]
	if !(r[0] < r[1] && r[1] < r[2]) {
		t.Fatalf("rates not ordered by capacity: %v", r)
	}
	for k, cap_ := range []float64{2, 8, 32} {
		if r[k] > cap_*1.1 {
			t.Fatalf("receiver %d rate %v above its cap %v", k, r[k], cap_)
		}
		if r[k] < cap_*0.25 {
			t.Fatalf("receiver %d rate %v too far below its cap %v", k, r[k], cap_)
		}
	}
}

// TestAchievedWithinFairEnvelope: every receiver's achieved rate stays
// below its fluid max-min fair rate (plus noise) — protocols are
// conservative, not over-claiming.
func TestAchievedWithinFairEnvelope(t *testing.T) {
	cfg := Config{
		SharedCapacity: 12, Packets: 400000, Seed: 17,
		Sessions: []SessionConfig{
			{Protocol: protocol.Coordinated, Layers: 8, FanoutCapacities: []float64{2, 100}},
			{Protocol: protocol.Coordinated, Layers: 8, FanoutCapacities: []float64{100}},
		},
	}
	fair := FairRates(cfg)
	res := run(t, cfg)
	for si := range fair {
		for k := range fair[si] {
			got, want := res.ReceiverRates[si][k], fair[si][k]
			if got > want*1.25 {
				t.Errorf("receiver %d,%d achieved %v above fair %v", si, k, got, want)
			}
			if got < want*0.2 {
				t.Errorf("receiver %d,%d achieved %v far below fair %v", si, k, got, want)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{SharedCapacity: 8, Packets: 50000, Seed: 19,
		Sessions: []SessionConfig{{Protocol: protocol.Uncoordinated, Layers: 6, FanoutCapacities: []float64{3, 9}}}}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.ReceiverRates[0][0] != b.ReceiverRates[0][0] || a.SharedLossRate != b.SharedLossRate {
		t.Fatal("same seed, different results")
	}
}

// TestAmpleCapacityNoLoss: when capacity exceeds the full stack, no loss
// occurs and receivers top out.
func TestAmpleCapacityNoLoss(t *testing.T) {
	res := run(t, Config{
		SharedCapacity: 1000, Packets: 100000, Seed: 23,
		Sessions: []SessionConfig{{Protocol: protocol.Deterministic, Layers: 6, FanoutCapacities: []float64{1000}}},
	})
	if res.SharedLossRate != 0 {
		t.Fatalf("loss %v with ample capacity", res.SharedLossRate)
	}
	if res.ReceiverRates[0][0] < 30 {
		t.Fatalf("rate %v, want near 32", res.ReceiverRates[0][0])
	}
}
