package treesim

import (
	"reflect"
	"testing"

	"mlfair/internal/netsim"
	"mlfair/internal/protocol"
)

// Facade regression suite (folds the former netsim tree cross-check
// into this package): treesim.Run is netsim.Run of NetsimConfig plus
// the FromNetsim re-mapping, so fixed seeds must agree exactly.

func facadeEqual(t *testing.T, cfg Config) {
	t.Helper()
	got, err := Run(cfg)
	if err != nil {
		t.Fatalf("facade run: %v", err)
	}
	nc, err := NetsimConfig(cfg)
	if err != nil {
		t.Fatalf("NetsimConfig: %v", err)
	}
	nr, err := netsim.Run(nc)
	if err != nil {
		t.Fatalf("direct netsim run: %v", err)
	}
	want := FromNetsim(cfg.Tree, nr)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("facade diverged from direct netsim run:\nfacade %+v\nnetsim %+v", got, want)
	}
}

func TestFacadeMatchesNetsimExactly(t *testing.T) {
	for _, kind := range protocol.Kinds() {
		facadeEqual(t, Config{Tree: Binary(4, 0.02), Layers: 8,
			Protocol: kind, Packets: 20000, Seed: 31})
	}
	// Interior receivers and a star, the historical crosscheck shapes.
	facadeEqual(t, Config{
		Tree: &Tree{
			Parent:    []int{0, 0, 1, 2},
			Loss:      []float64{0, 0.01, 0.02, 0.03},
			Receivers: []int{1, 3},
		},
		Layers: 6, Protocol: protocol.Coordinated, Packets: 10000, Seed: 33,
	})
	facadeEqual(t, Config{Tree: Star(12, 0.001, 0.05), Layers: 8,
		Protocol: protocol.Deterministic, Packets: 20000, Seed: 35})
}

// TestFacadeLinkMapping pins the Tree->graph translation: node i's
// parent link is graph link i-1 and per-link stats line up through
// NodeForLink, including the downstream receiver counts.
func TestFacadeLinkMapping(t *testing.T) {
	tr := Binary(3, 0.01)
	res, err := Run(Config{Tree: tr, Layers: 4, Protocol: protocol.Deterministic,
		Packets: 5000, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{} // node -> receivers below
	for _, nd := range tr.Receivers {
		for cur := nd; cur != 0; cur = tr.Parent[cur] {
			want[cur]++
		}
	}
	if len(res.Links) != len(want) {
		t.Fatalf("got %d link stats, want %d", len(res.Links), len(want))
	}
	for _, ls := range res.Links {
		if ls.DownstreamReceivers != want[ls.Node] {
			t.Fatalf("node %d: %d downstream receivers, want %d",
				ls.Node, ls.DownstreamReceivers, want[ls.Node])
		}
		if ls.Depth != tr.Depth(ls.Node) {
			t.Fatalf("node %d: depth %d, want %d", ls.Node, ls.Depth, tr.Depth(ls.Node))
		}
	}
}
