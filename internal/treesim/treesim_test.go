package treesim

import (
	"math"
	"testing"

	"mlfair/internal/protocol"
	"mlfair/internal/sim"
	"mlfair/internal/stats"
)

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestTreeValidate(t *testing.T) {
	good := Star(3, 0.01, 0.02)
	if err := good.Validate(); err != nil {
		t.Fatalf("star invalid: %v", err)
	}
	bad := []*Tree{
		{Parent: []int{0}, Loss: []float64{0}},                                     // too small
		{Parent: []int{0, 0}, Loss: []float64{0}},                                  // loss len
		{Parent: []int{0, 1}, Loss: []float64{0, 0}, Receivers: []int{1}},          // parent not < i
		{Parent: []int{0, 0}, Loss: []float64{0, 1.0}, Receivers: []int{1}},        // loss 1
		{Parent: []int{0, 0}, Loss: []float64{0, 0}},                               // no receivers
		{Parent: []int{0, 0}, Loss: []float64{0, 0}, Receivers: []int{0}},          // receiver at root
		{Parent: []int{0, 0, 1}, Loss: []float64{0, 0, 0}, Receivers: []int{2, 2}}, // dup
		{Parent: []int{0, 0, 1}, Loss: []float64{0, 0, -0.1}, Receivers: []int{2}}, // neg loss
		{Parent: []int{0, 0, 1}, Loss: []float64{0, 0, 0}, Receivers: []int{5}},    // out of range
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad tree %d accepted", i)
		}
	}
}

func TestBinaryBuilder(t *testing.T) {
	b := Binary(3, 0.01)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Receivers) != 8 {
		t.Fatalf("leaves = %d", len(b.Receivers))
	}
	if b.Depth(b.Receivers[0]) != 3 {
		t.Fatalf("leaf depth = %d", b.Depth(b.Receivers[0]))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("depth 0 accepted")
		}
	}()
	Binary(0, 0)
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := Run(Config{Tree: Star(2, 0, 0), Layers: 0, Packets: 10}); err == nil {
		t.Fatal("zero layers accepted")
	}
}

// TestStarMatchesFlatSimulator: the tree engine on a star topology
// agrees statistically with the dedicated star simulator.
func TestStarMatchesFlatSimulator(t *testing.T) {
	const shared, ind = 0.001, 0.04
	var treeReds, flatReds []float64
	for seed := uint64(0); seed < 6; seed++ {
		tr := run(t, Config{Tree: Star(30, shared, ind), Layers: 8,
			Protocol: protocol.Deterministic, Packets: 60000, Seed: seed})
		// Shared link = node 1's parent link.
		for _, ls := range tr.Links {
			if ls.Node == 1 {
				treeReds = append(treeReds, ls.Redundancy)
			}
		}
		fr, err := sim.Run(sim.Config{Layers: 8, Receivers: 30, SharedLoss: shared,
			IndependentLoss: ind, Protocol: protocol.Deterministic,
			Packets: 60000, Seed: seed + 100})
		if err != nil {
			t.Fatal(err)
		}
		flatReds = append(flatReds, fr.Redundancy)
	}
	tm, fm := stats.Mean(treeReds), stats.Mean(flatReds)
	if rel := math.Abs(tm-fm) / fm; rel > 0.15 {
		t.Fatalf("tree star %v vs flat star %v (rel %v)", tm, fm, rel)
	}
}

// TestLeafLinksNearEfficient: a leaf link serves one receiver, so its
// redundancy is just loss inflation.
func TestLeafLinksNearEfficient(t *testing.T) {
	res := run(t, Config{Tree: Binary(3, 0.02), Layers: 8,
		Protocol: protocol.Coordinated, Packets: 100000, Seed: 5})
	for _, ls := range res.Links {
		if ls.DownstreamReceivers != 1 {
			continue
		}
		if ls.Redundancy > 1.3 {
			t.Fatalf("leaf link redundancy = %v", ls.Redundancy)
		}
	}
}

// TestRedundancyGrowsTowardRoot: averaging per depth, links closer to
// the root (more downstream receivers) carry more redundancy — the
// protocol-dynamics analogue of Figure 5.
func TestRedundancyGrowsTowardRoot(t *testing.T) {
	byDepth := map[int]*stats.Accumulator{}
	for seed := uint64(0); seed < 4; seed++ {
		res := run(t, Config{Tree: Binary(4, 0.02), Layers: 8,
			Protocol: protocol.Uncoordinated, Packets: 150000, Seed: seed})
		for _, ls := range res.Links {
			if byDepth[ls.Depth] == nil {
				byDepth[ls.Depth] = &stats.Accumulator{}
			}
			byDepth[ls.Depth].Add(ls.Redundancy)
		}
	}
	root := byDepth[1].Mean()
	leaf := byDepth[4].Mean()
	if !(root > leaf*1.1) {
		t.Fatalf("root redundancy %v not above leaf %v", root, leaf)
	}
}

// TestLosslessTreePerfect: without loss every link converges to
// redundancy ~1 and receivers to the top rate.
func TestLosslessTreePerfect(t *testing.T) {
	res := run(t, Config{Tree: Binary(2, 0), Layers: 6,
		Protocol: protocol.Deterministic, Packets: 60000, Seed: 9})
	for k, r := range res.ReceiverRates {
		if r < 28 {
			t.Fatalf("receiver %d rate %v, want near 32", k, r)
		}
	}
	for _, ls := range res.Links {
		if math.Abs(ls.Redundancy-1) > 0.1 {
			t.Fatalf("link %d redundancy %v", ls.Node, ls.Redundancy)
		}
	}
}

// TestSharedPrefixCorrelation: two receivers sharing a lossy trunk stay
// more synchronized (lower trunk redundancy) than two receivers losing
// independently at the same end-to-end rate.
func TestSharedPrefixCorrelation(t *testing.T) {
	// Shared-loss tree: root -trunk(0.05)- hub -clean- r1, r2.
	shared := &Tree{
		Parent:    []int{0, 0, 1, 1},
		Loss:      []float64{0, 0.05, 0, 0},
		Receivers: []int{2, 3},
	}
	// Independent-loss tree: clean trunk, lossy leaves.
	indep := &Tree{
		Parent:    []int{0, 0, 1, 1},
		Loss:      []float64{0, 0, 0.05, 0.05},
		Receivers: []int{2, 3},
	}
	trunkRed := func(tr *Tree) float64 {
		var acc stats.Accumulator
		for seed := uint64(0); seed < 6; seed++ {
			res := run(t, Config{Tree: tr, Layers: 8,
				Protocol: protocol.Deterministic, Packets: 80000, Seed: seed})
			for _, ls := range res.Links {
				if ls.Node == 1 {
					acc.Add(ls.Redundancy)
				}
			}
		}
		return acc.Mean()
	}
	sharedRed, indepRed := trunkRed(shared), trunkRed(indep)
	if !(sharedRed < indepRed) {
		t.Fatalf("shared-loss trunk %v not below independent-loss trunk %v", sharedRed, indepRed)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Tree: Binary(3, 0.03), Layers: 6,
		Protocol: protocol.Uncoordinated, Packets: 20000, Seed: 21}
	a := run(t, cfg)
	b := run(t, cfg)
	for i := range a.Links {
		if a.Links[i].Crossed != b.Links[i].Crossed {
			t.Fatal("same seed, different crossings")
		}
	}
}

// TestInteriorReceiver: receivers need not sit at leaves.
func TestInteriorReceiver(t *testing.T) {
	tr := &Tree{
		Parent:    []int{0, 0, 1, 2},
		Loss:      []float64{0, 0.01, 0.01, 0.01},
		Receivers: []int{1, 3}, // one interior, one deep
	}
	res := run(t, Config{Tree: tr, Layers: 6,
		Protocol: protocol.Coordinated, Packets: 40000, Seed: 23})
	if res.ReceiverRates[0] <= res.ReceiverRates[1] {
		t.Fatalf("shallow receiver (%v) should beat deep receiver (%v)",
			res.ReceiverRates[0], res.ReceiverRates[1])
	}
}
