// Package treesim generalizes the packet-level protocol simulation from
// the paper's modified star (one shared link) to arbitrary multicast
// trees with per-link Bernoulli loss. This matters because the paper's
// Definition 3 redundancy is a *per-link* quantity: on a real
// distribution tree every interior link serves a different receiver
// subset, with loss correlation induced by shared path prefixes.
//
// The model extends sim's idealization: the sender at the root transmits
// the exponential layer scheme; a packet on layer l is forwarded over a
// link iff some subscribed receiver (level > l) lies below it; each link
// drops the packet independently with its loss rate, and every receiver
// below a dropping link observes a congestion event simultaneously —
// so siblings share the losses of their common ancestors, reproducing
// Figure 7's shared/independent split at every branching point.
//
// The headline observation (see the experiments driver): per-link
// redundancy grows toward the root, where more receivers share the link
// — the protocol-dynamics analogue of Figure 5's receiver-count effect.
//
// treesim is the specialized engine for single-session Bernoulli loss
// trees; the netsim package runs the same model over arbitrary
// netmodel.Network graphs (netsim.FromTree lifts a Tree onto the
// general engine) and adds queueing, capacity coupling, churn, and
// multiple sessions.
package treesim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"mlfair/internal/layering"
	"mlfair/internal/protocol"
	"mlfair/internal/sim"
)

// Tree is a rooted multicast distribution tree. Node 0 is the root
// (sender). Every other node has a parent link with a loss rate; link i
// connects Parent[i] to node i (so link indices 1..N-1; index 0 unused).
type Tree struct {
	// Parent[i] is node i's parent; Parent[0] is ignored.
	Parent []int
	// Loss[i] is the Bernoulli loss rate of node i's parent link.
	Loss []float64
	// Receivers lists the nodes hosting receivers (a node may host at
	// most one receiver; interior nodes may host receivers too).
	Receivers []int
}

// Validate checks structural soundness: parents precede children
// (topological numbering), loss rates in [0,1), receivers at distinct
// non-root nodes.
func (t *Tree) Validate() error {
	n := len(t.Parent)
	if n < 2 {
		return fmt.Errorf("treesim: tree needs at least two nodes")
	}
	if len(t.Loss) != n {
		return fmt.Errorf("treesim: %d loss rates for %d nodes", len(t.Loss), n)
	}
	for i := 1; i < n; i++ {
		if t.Parent[i] < 0 || t.Parent[i] >= i {
			return fmt.Errorf("treesim: node %d has parent %d (need topological order)", i, t.Parent[i])
		}
		if t.Loss[i] < 0 || t.Loss[i] >= 1 {
			return fmt.Errorf("treesim: link %d loss %v outside [0,1)", i, t.Loss[i])
		}
	}
	if len(t.Receivers) == 0 {
		return fmt.Errorf("treesim: no receivers")
	}
	seen := map[int]bool{}
	for _, nd := range t.Receivers {
		if nd <= 0 || nd >= n {
			return fmt.Errorf("treesim: receiver node %d out of range", nd)
		}
		if seen[nd] {
			return fmt.Errorf("treesim: duplicate receiver at node %d", nd)
		}
		seen[nd] = true
	}
	return nil
}

// Star builds the paper's Figure 7(b) topology as a tree: root, one hub
// behind the shared link, and n receivers behind independent fanout
// links.
func Star(n int, sharedLoss, fanoutLoss float64) *Tree {
	t := &Tree{
		Parent: make([]int, n+2),
		Loss:   make([]float64, n+2),
	}
	t.Parent[1] = 0
	t.Loss[1] = sharedLoss
	for k := 0; k < n; k++ {
		t.Parent[2+k] = 1
		t.Loss[2+k] = fanoutLoss
		t.Receivers = append(t.Receivers, 2+k)
	}
	return t
}

// Binary builds a complete binary tree of the given depth with uniform
// per-link loss and receivers at the leaves.
func Binary(depth int, linkLoss float64) *Tree {
	if depth < 1 {
		panic("treesim: depth must be >= 1")
	}
	n := 1<<(depth+1) - 1
	t := &Tree{Parent: make([]int, n), Loss: make([]float64, n)}
	for i := 1; i < n; i++ {
		t.Parent[i] = (i - 1) / 2
		t.Loss[i] = linkLoss
	}
	for i := 1<<depth - 1; i < n; i++ {
		t.Receivers = append(t.Receivers, i)
	}
	return t
}

// Depth returns node nd's distance from the root.
func (t *Tree) Depth(nd int) int {
	d := 0
	for nd != 0 {
		nd = t.Parent[nd]
		d++
	}
	return d
}

// Config parameterizes a tree simulation run.
type Config struct {
	Tree         *Tree
	Layers       int
	Protocol     protocol.Kind
	Packets      int
	SignalPeriod float64
	Seed         uint64
}

// LinkStats is the per-link measurement.
type LinkStats struct {
	// Node identifies the link (node's parent link).
	Node int
	// Depth is the link's distance from the root (1 = root link).
	Depth int
	// Crossed counts packets forwarded over the link.
	Crossed int
	// Redundancy is Definition 3 on this link: crossing rate over the
	// best downstream receiver's goodput (0 if no downstream receiver
	// ever received).
	Redundancy float64
	// DownstreamReceivers counts receivers below the link.
	DownstreamReceivers int
}

// Result summarizes a run.
type Result struct {
	// ReceiverRates[k] is the goodput of Tree.Receivers[k].
	ReceiverRates []float64
	// Links holds per-link stats for every link with a downstream
	// receiver, in node order.
	Links []LinkStats
	// Duration is the simulated time.
	Duration float64
}

// engine state.
type eng struct {
	cfg       Config
	t         *Tree
	rng       *rand.Rand
	children  [][]int
	recvAt    map[int]int // node -> receiver index
	receivers []*protocol.Receiver
	levels    []int
	// subMax[node] = max subscription level among receivers at or below
	// the node (0 when none).
	subMax []int
	// downCount[node] = receivers at or below node.
	downCount []int

	crossed  []int // per node (parent link)
	received []int
	// goodBelow[node][k-index...] too heavy; instead per receiver we
	// track goodput and compute per-link max downstream afterwards.
}

// Run executes one tree simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Tree == nil {
		return nil, fmt.Errorf("treesim: nil tree")
	}
	if err := cfg.Tree.Validate(); err != nil {
		return nil, err
	}
	if cfg.Layers < 1 || cfg.Packets < 1 {
		return nil, fmt.Errorf("treesim: Layers=%d Packets=%d", cfg.Layers, cfg.Packets)
	}
	t := cfg.Tree
	n := len(t.Parent)
	e := &eng{
		cfg: cfg, t: t,
		rng:       rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		children:  make([][]int, n),
		recvAt:    map[int]int{},
		subMax:    make([]int, n),
		downCount: make([]int, n),
		crossed:   make([]int, n),
		received:  make([]int, len(t.Receivers)),
	}
	for i := 1; i < n; i++ {
		e.children[t.Parent[i]] = append(e.children[t.Parent[i]], i)
	}
	e.receivers = make([]*protocol.Receiver, len(t.Receivers))
	e.levels = make([]int, len(t.Receivers))
	for k, nd := range t.Receivers {
		e.receivers[k] = protocol.NewReceiver(cfg.Protocol, cfg.Layers, e.rng)
		e.levels[k] = 1
		e.recvAt[nd] = k
		for cur := nd; ; cur = t.Parent[cur] {
			e.downCount[cur]++
			if cur == 0 {
				break
			}
		}
	}
	for k := range e.receivers {
		e.bubble(t.Receivers[k])
	}

	scheme := layering.Exponential(cfg.Layers)
	nextTx := make([]float64, cfg.Layers)
	period := make([]float64, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		period[l] = 1 / scheme.LayerRate(l)
		nextTx[l] = period[l]
	}
	signalPeriod := cfg.SignalPeriod
	if signalPeriod == 0 {
		signalPeriod = 1
	}
	nextSignal := math.Inf(1)
	signalIdx := 0
	if cfg.Protocol == protocol.Coordinated && cfg.Layers > 1 {
		nextSignal = signalPeriod
	}

	sent := 0
	now := 0.0
	for sent < cfg.Packets {
		minLayer, minT := 0, nextTx[0]
		for l := 1; l < cfg.Layers; l++ {
			if nextTx[l] < minT {
				minT, minLayer = nextTx[l], l
			}
		}
		if nextSignal < minT {
			now = nextSignal
			signalIdx++
			lvl := sim.SignalLevel(signalIdx, cfg.Layers-1)
			for k, r := range e.receivers {
				r.OnSignal(lvl)
				e.syncReceiver(k)
			}
			nextSignal += signalPeriod
			continue
		}
		now = minT
		l := minLayer
		nextTx[l] += period[l]
		sent++
		if e.subMax[0] <= l {
			continue
		}
		e.forward(0, l, false)
	}

	res := &Result{ReceiverRates: make([]float64, len(t.Receivers)), Duration: now}
	if now > 0 {
		for k, c := range e.received {
			res.ReceiverRates[k] = float64(c) / now
		}
	}
	// Per-link stats: best downstream goodput per node via post-order.
	bestDown := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		if k, ok := e.recvAt[i]; ok {
			bestDown[i] = res.ReceiverRates[k]
		}
		for _, c := range e.children[i] {
			if bestDown[c] > bestDown[i] {
				bestDown[i] = bestDown[c]
			}
		}
	}
	for i := 1; i < n; i++ {
		if e.downCount[i] == 0 {
			continue
		}
		ls := LinkStats{
			Node: i, Depth: t.Depth(i), Crossed: e.crossed[i],
			DownstreamReceivers: e.downCount[i],
		}
		if now > 0 && bestDown[i] > 0 {
			ls.Redundancy = float64(e.crossed[i]) / now / bestDown[i]
		}
		res.Links = append(res.Links, ls)
	}
	return res, nil
}

// forward recursively pushes a layer-l packet down from node nd.
// lostAbove reports whether some ancestor link already dropped it (the
// packet still consumed those upstream links, and subscribed receivers
// below observe the loss).
func (e *eng) forward(nd, l int, lostAbove bool) {
	if k, ok := e.recvAt[nd]; ok && e.levels[k] > l {
		if lostAbove {
			e.receivers[k].OnCongestion()
		} else {
			e.received[k]++
			e.receivers[k].OnReceive()
		}
		e.syncReceiver(k)
	}
	for _, c := range e.children[nd] {
		if e.subMax[c] <= l {
			continue
		}
		lost := lostAbove
		if !lostAbove {
			// The packet actually reaches this link and consumes its
			// bandwidth (even if the link itself then drops it); links
			// below a drop carry nothing, but subscribed receivers
			// beneath still observe the sequence gap.
			e.crossed[c]++
			if e.t.Loss[c] > 0 && e.rng.Float64() < e.t.Loss[c] {
				lost = true
			}
		}
		e.forward(c, l, lost)
	}
}

// syncReceiver refreshes the level mirror and subtree maxima after a
// protocol callback.
func (e *eng) syncReceiver(k int) {
	nl := e.receivers[k].Level()
	if nl == e.levels[k] {
		return
	}
	e.levels[k] = nl
	e.bubble(e.t.Receivers[k])
}

// bubble recomputes subMax from node nd up to the root.
func (e *eng) bubble(nd int) {
	for cur := nd; ; cur = e.t.Parent[cur] {
		m := 0
		if k, ok := e.recvAt[cur]; ok {
			m = e.levels[k]
		}
		for _, c := range e.children[cur] {
			if e.subMax[c] > m {
				m = e.subMax[c]
			}
		}
		if e.subMax[cur] == m && cur != nd {
			return // no change propagates further
		}
		e.subMax[cur] = m
		if cur == 0 {
			return
		}
	}
}
