// Package treesim generalizes the packet-level protocol simulation from
// the paper's modified star (one shared link) to arbitrary multicast
// trees with per-link Bernoulli loss. This matters because the paper's
// Definition 3 redundancy is a *per-link* quantity: on a real
// distribution tree every interior link serves a different receiver
// subset, with loss correlation induced by shared path prefixes.
//
// The model extends sim's idealization: the sender at the root transmits
// the exponential layer scheme; a packet on layer l is forwarded over a
// link iff some subscribed receiver (level > l) lies below it; each link
// drops the packet independently with its loss rate, and every receiver
// below a dropping link observes a congestion event simultaneously —
// so siblings share the losses of their common ancestors, reproducing
// Figure 7's shared/independent split at every branching point.
//
// The headline observation (see the experiments driver): per-link
// redundancy grows toward the root, where more receivers share the link
// — the protocol-dynamics analogue of Figure 5's receiver-count effect.
//
// treesim is a facade: NetsimConfig compiles a Tree onto the general
// netsim engine (tree node i becomes graph node i; node i's parent link
// becomes graph link i-1, see NodeForLink) and Run re-maps the general
// result onto per-tree-link stats. It owns no event loop; the facade
// regression tests pin the translation against direct netsim runs.
package treesim

import (
	"fmt"

	"mlfair/internal/netmodel"
	"mlfair/internal/netsim"
	"mlfair/internal/protocol"
	"mlfair/internal/routing"
)

// Tree is a rooted multicast distribution tree. Node 0 is the root
// (sender). Every other node has a parent link with a loss rate; link i
// connects Parent[i] to node i (so link indices 1..N-1; index 0 unused).
type Tree struct {
	// Parent[i] is node i's parent; Parent[0] is ignored.
	Parent []int
	// Loss[i] is the Bernoulli loss rate of node i's parent link.
	Loss []float64
	// Receivers lists the nodes hosting receivers (a node may host at
	// most one receiver; interior nodes may host receivers too).
	Receivers []int
}

// Validate checks structural soundness: parents precede children
// (topological numbering), loss rates in [0,1), receivers at distinct
// non-root nodes.
func (t *Tree) Validate() error {
	n := len(t.Parent)
	if n < 2 {
		return fmt.Errorf("treesim: tree needs at least two nodes")
	}
	if len(t.Loss) != n {
		return fmt.Errorf("treesim: %d loss rates for %d nodes", len(t.Loss), n)
	}
	for i := 1; i < n; i++ {
		if t.Parent[i] < 0 || t.Parent[i] >= i {
			return fmt.Errorf("treesim: node %d has parent %d (need topological order)", i, t.Parent[i])
		}
		if t.Loss[i] < 0 || t.Loss[i] >= 1 {
			return fmt.Errorf("treesim: link %d loss %v outside [0,1)", i, t.Loss[i])
		}
	}
	if len(t.Receivers) == 0 {
		return fmt.Errorf("treesim: no receivers")
	}
	seen := map[int]bool{}
	for _, nd := range t.Receivers {
		if nd <= 0 || nd >= n {
			return fmt.Errorf("treesim: receiver node %d out of range", nd)
		}
		if seen[nd] {
			return fmt.Errorf("treesim: duplicate receiver at node %d", nd)
		}
		seen[nd] = true
	}
	return nil
}

// Star builds the paper's Figure 7(b) topology as a tree: root, one hub
// behind the shared link, and n receivers behind independent fanout
// links.
func Star(n int, sharedLoss, fanoutLoss float64) *Tree {
	t := &Tree{
		Parent: make([]int, n+2),
		Loss:   make([]float64, n+2),
	}
	t.Parent[1] = 0
	t.Loss[1] = sharedLoss
	for k := 0; k < n; k++ {
		t.Parent[2+k] = 1
		t.Loss[2+k] = fanoutLoss
		t.Receivers = append(t.Receivers, 2+k)
	}
	return t
}

// Binary builds a complete binary tree of the given depth with uniform
// per-link loss and receivers at the leaves.
func Binary(depth int, linkLoss float64) *Tree {
	if depth < 1 {
		panic("treesim: depth must be >= 1")
	}
	n := 1<<(depth+1) - 1
	t := &Tree{Parent: make([]int, n), Loss: make([]float64, n)}
	for i := 1; i < n; i++ {
		t.Parent[i] = (i - 1) / 2
		t.Loss[i] = linkLoss
	}
	for i := 1<<depth - 1; i < n; i++ {
		t.Receivers = append(t.Receivers, i)
	}
	return t
}

// Depth returns node nd's distance from the root.
func (t *Tree) Depth(nd int) int {
	d := 0
	for nd != 0 {
		nd = t.Parent[nd]
		d++
	}
	return d
}

// Config parameterizes a tree simulation run.
type Config struct {
	Tree         *Tree
	Layers       int
	Protocol     protocol.Kind
	Packets      int
	SignalPeriod float64
	Seed         uint64
}

// LinkStats is the per-link measurement.
type LinkStats struct {
	// Node identifies the link (node's parent link).
	Node int
	// Depth is the link's distance from the root (1 = root link).
	Depth int
	// Crossed counts packets forwarded over the link.
	Crossed int
	// Redundancy is Definition 3 on this link: crossing rate over the
	// best downstream receiver's goodput (0 if no downstream receiver
	// ever received).
	Redundancy float64
	// DownstreamReceivers counts receivers below the link.
	DownstreamReceivers int
}

// Result summarizes a run.
type Result struct {
	// ReceiverRates[k] is the goodput of Tree.Receivers[k].
	ReceiverRates []float64
	// Links holds per-link stats for every link with a downstream
	// receiver, in node order.
	Links []LinkStats
	// Duration is the simulated time.
	Duration float64
}

// NodeForLink maps a NetsimConfig graph link index back to the tree node
// whose parent link it mirrors.
func NodeForLink(link int) int { return link + 1 }

// NetsimConfig compiles a tree Config onto the general netsim engine
// with per-link Bernoulli loss. Graph node i mirrors tree node i; tree
// node i's parent link becomes graph link i-1, so per-link stats line up
// with netsim.Result.Links via NodeForLink.
func NetsimConfig(c Config) (netsim.Config, error) {
	if c.Tree == nil {
		return netsim.Config{}, fmt.Errorf("treesim: nil tree")
	}
	if err := c.Tree.Validate(); err != nil {
		return netsim.Config{}, err
	}
	if c.Layers < 1 || c.Packets < 1 {
		return netsim.Config{}, fmt.Errorf("treesim: Layers=%d Packets=%d", c.Layers, c.Packets)
	}
	t := c.Tree
	n := len(t.Parent)
	g := netmodel.NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddLink(t.Parent[i], i, 1)
	}
	s := &netmodel.Session{
		Sender:    0,
		Receivers: append([]int{}, t.Receivers...),
		Type:      netmodel.MultiRate,
		MaxRate:   netmodel.NoRateCap,
	}
	net, err := routing.BuildNetwork(g, []*netmodel.Session{s})
	if err != nil {
		return netsim.Config{}, err
	}
	specs := make([]netsim.LinkSpec, net.NumLinks())
	for i := 1; i < n; i++ {
		specs[i-1] = netsim.LinkSpec{Kind: netsim.Bernoulli, Loss: t.Loss[i]}
	}
	return netsim.Config{
		Network:      net,
		Links:        specs,
		Sessions:     []netsim.SessionConfig{{Protocol: c.Protocol, Layers: c.Layers}},
		Packets:      c.Packets,
		SignalPeriod: c.SignalPeriod,
		Seed:         c.Seed,
	}, nil
}

// FromNetsim maps a general-engine result of a NetsimConfig run back
// onto tree-shaped stats (exported for the facade regression tests).
func FromNetsim(t *Tree, r *netsim.Result) *Result {
	res := &Result{
		ReceiverRates: r.ReceiverRates[0],
		Duration:      r.Duration,
	}
	for _, ls := range r.Links {
		nd := NodeForLink(ls.Link)
		res.Links = append(res.Links, LinkStats{
			Node: nd, Depth: t.Depth(nd), Crossed: ls.Crossed,
			Redundancy:          ls.Redundancy,
			DownstreamReceivers: ls.DownstreamReceivers,
		})
	}
	return res
}

// Run executes one tree simulation on the general engine.
func Run(cfg Config) (*Result, error) {
	nc, err := NetsimConfig(cfg)
	if err != nil {
		return nil, err
	}
	r, err := netsim.Run(nc)
	if err != nil {
		return nil, err
	}
	return FromNetsim(cfg.Tree, r), nil
}
