package sim

import (
	"testing"

	"mlfair/internal/layering"
	"mlfair/internal/protocol"
	"mlfair/internal/stats"
)

func TestDropPolicyString(t *testing.T) {
	if UniformDrop.String() != "uniform" || PriorityDrop.String() != "priority" {
		t.Fatal("policy strings wrong")
	}
	if DropPolicy(9).String() == "" {
		t.Fatal("unknown policy empty")
	}
}

func TestExtensionValidation(t *testing.T) {
	base := Config{Layers: 4, Receivers: 2, Packets: 100}
	bad := base
	bad.LeaveLatency = -1
	if _, err := Run(bad); err == nil {
		t.Fatal("negative latency accepted")
	}
	bad = base
	bad.Drop = DropPolicy(7)
	if _, err := Run(bad); err == nil {
		t.Fatal("unknown drop policy accepted")
	}
}

// TestLeaveLatencyZeroIsIdentity: LeaveLatency affects only shared-link
// accounting, so latency 0 equals the baseline exactly at equal seed.
func TestLeaveLatencyZeroIsIdentity(t *testing.T) {
	cfg := Config{Layers: 8, Receivers: 20, IndependentLoss: 0.04,
		Protocol: protocol.Deterministic, Packets: 30000, Seed: 9}
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LeaveLatency = 0
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.PacketsCrossed != again.PacketsCrossed || base.Redundancy != again.Redundancy {
		t.Fatal("latency 0 changed the run")
	}
}

// TestLeaveLatencyMonotone: because receiver dynamics are identical at
// equal seeds, shared-link usage (and hence redundancy) is
// non-decreasing in the leave latency.
func TestLeaveLatencyMonotone(t *testing.T) {
	prev := -1
	prevRed := 0.0
	for _, latency := range []float64{0, 1, 4, 16} {
		res, err := Run(Config{Layers: 8, Receivers: 20, IndependentLoss: 0.05,
			Protocol: protocol.Deterministic, Packets: 40000, Seed: 15,
			LeaveLatency: latency})
		if err != nil {
			t.Fatal(err)
		}
		if res.PacketsCrossed < prev {
			t.Fatalf("crossed decreased with latency %v", latency)
		}
		if res.Redundancy < prevRed {
			t.Fatalf("redundancy decreased with latency %v", latency)
		}
		prev, prevRed = res.PacketsCrossed, res.Redundancy
	}
}

// TestLeaveLatencyHurts: a substantial latency visibly inflates
// redundancy — the paper's Section 5 prediction ("long leave latencies
// will also increase redundancy").
func TestLeaveLatencyHurts(t *testing.T) {
	point := func(latency float64) float64 {
		reds, err := RunReplicated(Config{Layers: 8, Receivers: 20,
			IndependentLoss: 0.05, Protocol: protocol.Coordinated,
			Packets: 40000, Seed: 21, LeaveLatency: latency}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(reds)
	}
	if ideal, slow := point(0), point(16); slow < ideal*1.05 {
		t.Fatalf("latency-16 redundancy %v not above ideal %v", slow, ideal)
	}
}

// TestPriorityDropProtectsBaseLayer: under priority dropping, base-layer
// packets are the safest, so receivers sustain higher goodput at equal
// configured loss.
func TestPriorityDropProtectsBaseLayer(t *testing.T) {
	cfg := Config{Layers: 8, Receivers: 20, IndependentLoss: 0.08,
		Protocol: protocol.Deterministic, Packets: 40000, Seed: 27}
	uni, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Drop = PriorityDrop
	pri, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pri.Redundancy < 0.9 || pri.MeanLevel < 1 {
		t.Fatalf("implausible priority run: %+v", pri)
	}
	// Both runs must be internally consistent; the comparison itself is
	// reported by the experiments driver. Sanity: priority dropping must
	// change the outcome.
	if pri.Redundancy == uni.Redundancy && pri.PacketsCrossed == uni.PacketsCrossed {
		t.Fatal("priority dropping had no effect")
	}
}

func TestPriorityFactorMeanIsOne(t *testing.T) {
	// The traffic-weighted mean multiplier is 1 by construction.
	scheme := layering.Exponential(8)
	num, den := 0.0, 0.0
	for l := 0; l < 8; l++ {
		num += priorityFactor(scheme, l) * scheme.LayerRate(l)
		den += scheme.LayerRate(l)
	}
	if mean := num / den; mean < 0.999 || mean > 1.001 {
		t.Fatalf("traffic-weighted mean factor = %v, want 1", mean)
	}
	// Monotone in layer.
	for l := 1; l < 8; l++ {
		if priorityFactor(scheme, l) <= priorityFactor(scheme, l-1) {
			t.Fatal("priority factor not increasing in layer")
		}
	}
}

func TestLayerLossCap(t *testing.T) {
	if layerLoss(2.5) >= 1 {
		t.Fatal("loss not capped below 1")
	}
	if layerLoss(0.3) != 0.3 {
		t.Fatal("cap changed a valid probability")
	}
}
