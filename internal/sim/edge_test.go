package sim

import (
	"math"
	"testing"

	"mlfair/internal/protocol"
)

// TestSingleLayerSession: Layers=1 degenerates gracefully — everyone
// stays at the base layer, no joins, redundancy ~1/(1-loss).
func TestSingleLayerSession(t *testing.T) {
	for _, k := range protocol.Kinds() {
		res, err := Run(Config{Layers: 1, Receivers: 5, SharedLoss: 0.02,
			IndependentLoss: 0.05, Protocol: k, Packets: 20000, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.MeanLevel != 1 {
			t.Errorf("%v: mean level %v, want exactly 1", k, res.MeanLevel)
		}
		want := 1 / ((1 - 0.02) * (1 - 0.05))
		if math.Abs(res.Redundancy-want) > 0.05 {
			t.Errorf("%v: redundancy %v, want ~%v", k, res.Redundancy, want)
		}
	}
}

// TestTwoLayers: the minimal layered configuration still oscillates and
// measures sensibly.
func TestTwoLayers(t *testing.T) {
	res, err := Run(Config{Layers: 2, Receivers: 10, IndependentLoss: 0.1,
		Protocol: protocol.Coordinated, Packets: 20000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLevel <= 1 || res.MeanLevel >= 2 {
		t.Fatalf("mean level %v, want strictly between 1 and 2", res.MeanLevel)
	}
}

// TestSignalPeriodSlowsJoins: a Coordinated session with a much longer
// signal period climbs more slowly, ending at a lower mean level over a
// fixed horizon.
func TestSignalPeriodSlowsJoins(t *testing.T) {
	level := func(period float64) float64 {
		res, err := Run(Config{Layers: 8, Receivers: 5, IndependentLoss: 0.03,
			Protocol: protocol.Coordinated, Packets: 20000, Seed: 7,
			SignalPeriod: period})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLevel
	}
	fast, slow := level(1), level(50)
	if !(slow < fast) {
		t.Fatalf("period 50 level %v not below period 1 level %v", slow, fast)
	}
}

// TestManyReceiversRedundancySaturates: Figure 8's "negligible changes
// beyond 100 receivers" — doubling the session from 100 to 200
// receivers moves redundancy by far less than the doubling itself.
// Averaged over seeds the shift is ~16% on this operating point (for
// both the legacy engine and the netsim facade; the old single-seed
// 12% bound only held by seed luck), so the guard averages four seeds
// against a 20% ceiling.
func TestManyReceiversRedundancySaturates(t *testing.T) {
	point := func(n int) float64 {
		sum := 0.0
		const seeds = 4
		for seed := uint64(11); seed < 11+seeds; seed++ {
			res, err := Run(Config{Layers: 8, Receivers: n, SharedLoss: 0.0001,
				IndependentLoss: 0.04, Protocol: protocol.Uncoordinated,
				Packets: 100000, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Redundancy
		}
		return sum / seeds
	}
	r100, r200 := point(100), point(200)
	if rel := math.Abs(r200-r100) / r100; rel > 0.2 {
		t.Fatalf("redundancy moved %v%% from 100 to 200 receivers (%v -> %v)",
			rel*100, r100, r200)
	}
}

// TestZeroLossZeroSharedExactAccounting: without any loss the crossed
// count equals the sent count once some receiver subscribes to the top
// layer, minus the climb transient.
func TestZeroLossZeroSharedExactAccounting(t *testing.T) {
	res, err := Run(Config{Layers: 4, Receivers: 3,
		Protocol: protocol.Deterministic, Packets: 30000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsCrossed > res.PacketsSent {
		t.Fatal("crossed > sent")
	}
	// The climb to level 4 takes ~21 packets; everything after crosses.
	if res.PacketsSent-res.PacketsCrossed > 100 {
		t.Fatalf("too many pruned packets without loss: sent %d crossed %d",
			res.PacketsSent, res.PacketsCrossed)
	}
}
