// Package sim is a discrete-event, packet-level simulator for layered
// multicast congestion control over the paper's modified-star topologies
// (Figure 7): a sender behind one shared link feeding any number of
// receivers through independent fanout links.
//
// The model is exactly the paper's Section 4 idealization:
//
//   - The sender splits data over M layers with the exponential scheme
//     (aggregate rate of layers 1..i equal to 2^(i-1) packets per time
//     unit); each layer emits equal-size packets periodically.
//   - Packet loss (equivalently, congestion marking) is Bernoulli: one
//     draw per packet on the shared link — a shared loss is observed by
//     every subscribed receiver simultaneously — and an independent
//     per-receiver draw on each fanout link.
//   - Propagation delays and leave latencies are negligible: reactions
//     take effect instantly, so receivers seeing identical loss patterns
//     hold identical layer subscriptions (the paper's coordination
//     assumption).
//   - A packet traverses the shared link iff at least one receiver is
//     subscribed to its layer at transmission time (idealized multicast
//     pruning). Because subscriptions are always layer prefixes, the
//     session's shared-link rate at any instant is the cumulative rate of
//     the maximum subscribed level.
//
// The measured output is the Definition 3 redundancy of the session on
// the shared link: packets crossing the link per unit time, divided by
// the largest per-receiver long-run receive rate.
//
// sim is the specialized (and fastest) engine for this one topology; the
// netsim package runs the same protocols over arbitrary
// netmodel.Network graphs and cross-checks against sim on the modified
// star (netsim.FromSim lifts a Config onto the general engine).
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"

	"mlfair/internal/layering"
	"mlfair/internal/protocol"
)

// Config parameterizes one simulation run.
type Config struct {
	// Layers is M, the number of layers (the paper uses 8).
	Layers int
	// Receivers is the session size (the paper uses 100).
	Receivers int
	// SharedLoss is the Bernoulli loss rate of the shared link.
	SharedLoss float64
	// IndependentLoss is the loss rate of every fanout link. For
	// heterogeneous receivers set IndependentLosses instead.
	IndependentLoss float64
	// IndependentLosses, when non-nil, gives per-receiver fanout loss
	// rates and overrides IndependentLoss. Length must equal Receivers.
	IndependentLosses []float64
	// Protocol selects the join-coordination discipline.
	Protocol protocol.Kind
	// Packets is the total number of packets the sender transmits across
	// all layers (the paper uses 100,000 per experiment).
	Packets int
	// SignalPeriod is the base period of the Coordinated protocol's
	// level-1 join signals, in time units. Zero means 1.0, which makes
	// the expected packets between joins match the other protocols.
	SignalPeriod float64
	// LeaveLatency models slow IGMP-style leave processing (a Section 5
	// concern of the paper): after a receiver leaves a layer, the shared
	// link keeps carrying that layer for this many time units even if no
	// receiver wants it. Zero (the paper's idealization) means leaves
	// take effect instantly. Latency changes only the shared-link usage
	// accounting, never receiver dynamics, so runs with equal seeds are
	// comparable across latencies.
	LeaveLatency float64
	// Drop selects the router drop policy; see DropPolicy.
	Drop DropPolicy
	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
}

// DropPolicy is the router's choice of which packets congestion kills,
// following Bajaj/Breslau/Shenker ("Uniform versus Priority Dropping for
// Layered Video"), which the paper cites when asking whether priority
// dropping might reduce redundancy by increasing receiver coordination.
type DropPolicy int

const (
	// UniformDrop loses every packet with the configured probability
	// regardless of layer — the paper's Bernoulli model.
	UniformDrop DropPolicy = iota
	// PriorityDrop biases losses toward higher (enhancement) layers,
	// preserving the traffic-weighted mean loss rate: a packet on layer
	// l is lost with probability p·(l+1)/E[layer+1], so base-layer
	// packets are the safest. Receivers near the same level then see
	// losses on the same layers, increasing their correlation.
	PriorityDrop
)

// String names the policy.
func (d DropPolicy) String() string {
	switch d {
	case UniformDrop:
		return "uniform"
	case PriorityDrop:
		return "priority"
	}
	return fmt.Sprintf("DropPolicy(%d)", int(d))
}

func (c *Config) validate() error {
	if c.Layers < 1 {
		return fmt.Errorf("sim: Layers = %d", c.Layers)
	}
	if c.Receivers < 1 {
		return fmt.Errorf("sim: Receivers = %d", c.Receivers)
	}
	if c.Packets < 1 {
		return fmt.Errorf("sim: Packets = %d", c.Packets)
	}
	if c.SharedLoss < 0 || c.SharedLoss >= 1 {
		return fmt.Errorf("sim: SharedLoss = %v", c.SharedLoss)
	}
	if c.IndependentLosses != nil && len(c.IndependentLosses) != c.Receivers {
		return fmt.Errorf("sim: %d IndependentLosses for %d receivers", len(c.IndependentLosses), c.Receivers)
	}
	for _, p := range c.lossSlice() {
		if p < 0 || p >= 1 {
			return fmt.Errorf("sim: independent loss %v out of [0,1)", p)
		}
	}
	if c.LeaveLatency < 0 {
		return fmt.Errorf("sim: LeaveLatency = %v", c.LeaveLatency)
	}
	if c.Drop != UniformDrop && c.Drop != PriorityDrop {
		return fmt.Errorf("sim: unknown drop policy %v", c.Drop)
	}
	return nil
}

// priorityFactor returns the per-layer loss multiplier of PriorityDrop:
// (l+1)/E[layer index+1], with the expectation taken over the traffic
// mix of the exponential scheme so the aggregate loss volume matches
// UniformDrop at the full stack.
func priorityFactor(scheme layering.Scheme, l int) float64 {
	num := 0.0
	den := 0.0
	for x := 0; x < scheme.NumLayers(); x++ {
		num += float64(x+1) * scheme.LayerRate(x)
		den += scheme.LayerRate(x)
	}
	mean := num / den
	return float64(l+1) / mean
}

func (c *Config) lossSlice() []float64 {
	if c.IndependentLosses != nil {
		return c.IndependentLosses
	}
	ls := make([]float64, c.Receivers)
	for i := range ls {
		ls[i] = c.IndependentLoss
	}
	return ls
}

// Result summarizes one run.
type Result struct {
	// Redundancy is shared-link packets per time over the maximum
	// receiver rate (Definition 3 measured on the shared link).
	Redundancy float64
	// LinkRate is the long-run shared-link usage in packets per time
	// unit (u_{i,shared}).
	LinkRate float64
	// ReceiverRates are per-receiver long-run receive rates (packets per
	// time unit, after losses).
	ReceiverRates []float64
	// MeanLevel is the time-average subscription level averaged across
	// receivers (diagnostic).
	MeanLevel float64
	// PacketsSent / PacketsCrossed count sender transmissions and
	// shared-link traversals.
	PacketsSent, PacketsCrossed int
	// Duration is the simulated time.
	Duration float64
}

// SignalLevel returns the Coordinated protocol's nested signal level for
// the n-th signal (n >= 1), capped at maxLevel: 1 + trailing zeros of n.
// Signals inviting a join from level v then occur every 2^(v-1) base
// periods, so a receiver at level v (receiving 2^(v-1) packets per time
// unit) sees an expected 2^(2(v-1)) packets between its join
// opportunities — the paper's parameter.
func SignalLevel(n int, maxLevel int) int {
	if n < 1 {
		panic("sim: signal index starts at 1")
	}
	l := 1 + bits.TrailingZeros(uint(n))
	if l > maxLevel {
		return maxLevel
	}
	return l
}

// engine carries the mutable run state, tracking receiver levels
// incrementally so per-packet work is O(subscribers), and packets on
// layers above the maximum subscribed level skip receiver processing
// entirely.
type engine struct {
	cfg       Config
	rng       *rand.Rand
	receivers []*protocol.Receiver
	indLoss   []float64
	lossIn    []int // deliveries until next independent loss (0 = never)

	levels   []int // mirror of receiver levels
	cnt      []int // cnt[v] = receivers at level v
	sumLevel int
	maxLev   int

	// linger[l] is the time until which layer l still occupies the
	// shared link after its last subscriber left (LeaveLatency > 0).
	linger []float64
	// Per-layer loss multipliers under PriorityDrop (nil for uniform).
	prioFactor []float64
}

func newEngine(cfg Config) *engine {
	e := &engine{
		cfg:       cfg,
		rng:       rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		indLoss:   cfg.lossSlice(),
		receivers: make([]*protocol.Receiver, cfg.Receivers),
		levels:    make([]int, cfg.Receivers),
		cnt:       make([]int, cfg.Layers+1),
		lossIn:    make([]int, cfg.Receivers),
	}
	for i := range e.receivers {
		e.receivers[i] = protocol.NewReceiver(cfg.Protocol, cfg.Layers, e.rng)
		e.levels[i] = 1
	}
	e.cnt[1] = cfg.Receivers
	e.sumLevel = cfg.Receivers
	e.maxLev = 1
	if cfg.LeaveLatency > 0 {
		e.linger = make([]float64, cfg.Layers)
	}
	if cfg.Drop == PriorityDrop {
		scheme := layering.Exponential(cfg.Layers)
		e.prioFactor = make([]float64, cfg.Layers)
		for l := range e.prioFactor {
			e.prioFactor[l] = priorityFactor(scheme, l)
		}
	} else {
		// Geometric countdowns are only valid when the per-delivery loss
		// probability is layer-independent.
		for i := range e.lossIn {
			e.drawLoss(i)
		}
	}
	return e
}

// layerLoss caps a probability at just under 1.
func layerLoss(p float64) float64 {
	if p >= 0.999 {
		return 0.999
	}
	return p
}

// drawLoss samples the geometric countdown to receiver i's next
// independent loss.
func (e *engine) drawLoss(i int) {
	p := e.indLoss[i]
	if p <= 0 {
		e.lossIn[i] = 0
		return
	}
	u := e.rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	n := int(math.Log(u)/math.Log(1-p)) + 1
	if n < 1 {
		n = 1
	}
	e.lossIn[i] = n
}

// sync reconciles the level mirror after a protocol callback on
// receiver i at simulated time now, recording layer linger on leaves.
func (e *engine) sync(i int, now float64) {
	nl := e.receivers[i].Level()
	ol := e.levels[i]
	if nl == ol {
		return
	}
	e.cnt[ol]--
	e.cnt[nl]++
	e.sumLevel += nl - ol
	e.levels[i] = nl
	if nl > e.maxLev {
		e.maxLev = nl
	}
	if nl < ol && e.linger != nil {
		until := now + e.cfg.LeaveLatency
		for lay := nl; lay < ol; lay++ {
			if e.linger[lay] < until {
				e.linger[lay] = until
			}
		}
	}
}

// maxLevel returns the highest subscribed level, fixing up lazily after
// leaves.
func (e *engine) maxLevel() int {
	for e.maxLev > 1 && e.cnt[e.maxLev] == 0 {
		e.maxLev--
	}
	return e.maxLev
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	scheme := layering.Exponential(cfg.Layers)
	e := newEngine(cfg)

	// Next transmission time per layer; linear scan (M is tiny).
	nextTx := make([]float64, cfg.Layers)
	period := make([]float64, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		period[l] = 1 / scheme.LayerRate(l)
		nextTx[l] = period[l]
	}
	signalPeriod := cfg.SignalPeriod
	if signalPeriod == 0 {
		signalPeriod = 1
	}
	nextSignal := math.Inf(1)
	signalIdx := 0
	if cfg.Protocol == protocol.Coordinated && cfg.Layers > 1 {
		nextSignal = signalPeriod
	}

	received := make([]int, cfg.Receivers)
	levelTime := 0.0 // integral of sum-of-levels dt
	lastT := 0.0
	sent, crossed := 0, 0
	now := 0.0

	for sent < cfg.Packets {
		minLayer := 0
		minT := nextTx[0]
		for l := 1; l < cfg.Layers; l++ {
			if nextTx[l] < minT {
				minT, minLayer = nextTx[l], l
			}
		}
		isSignal := nextSignal < minT
		if isSignal {
			minT = nextSignal
		}
		levelTime += float64(e.sumLevel) * (minT - lastT)
		lastT = minT
		now = minT

		if isSignal {
			signalIdx++
			lvl := SignalLevel(signalIdx, cfg.Layers-1)
			for i, r := range e.receivers {
				r.OnSignal(lvl)
				e.sync(i, now)
			}
			nextSignal += signalPeriod
			continue
		}

		l := minLayer
		nextTx[l] += period[l]
		sent++
		// Packets on layers nobody subscribes to never enter the shared
		// link (idealized pruning) — unless a slow leave is still being
		// processed, in which case the packet wastes shared-link
		// bandwidth but reaches no receiver.
		if e.maxLevel() <= l {
			if e.linger != nil && e.linger[l] > now {
				crossed++
			}
			continue
		}
		crossed++
		pShared := cfg.SharedLoss
		if e.prioFactor != nil {
			pShared = layerLoss(pShared * e.prioFactor[l])
		}
		sharedLost := pShared > 0 && e.rng.Float64() < pShared
		for i, r := range e.receivers {
			if e.levels[i] <= l {
				continue
			}
			if sharedLost {
				r.OnCongestion()
				e.sync(i, now)
				continue
			}
			if e.prioFactor != nil {
				// Layer-dependent loss: direct Bernoulli draw.
				pInd := layerLoss(e.indLoss[i] * e.prioFactor[l])
				if pInd > 0 && e.rng.Float64() < pInd {
					r.OnCongestion()
					e.sync(i, now)
					continue
				}
			} else if e.lossIn[i] > 0 {
				e.lossIn[i]--
				if e.lossIn[i] == 0 {
					r.OnCongestion()
					e.sync(i, now)
					e.drawLoss(i)
					continue
				}
			}
			received[i]++
			r.OnReceive()
			e.sync(i, now)
		}
	}

	res := &Result{
		ReceiverRates:  make([]float64, cfg.Receivers),
		PacketsSent:    sent,
		PacketsCrossed: crossed,
		Duration:       now,
	}
	if now > 0 {
		res.LinkRate = float64(crossed) / now
		maxRate := 0.0
		for i, n := range received {
			res.ReceiverRates[i] = float64(n) / now
			if res.ReceiverRates[i] > maxRate {
				maxRate = res.ReceiverRates[i]
			}
		}
		if maxRate > 0 {
			res.Redundancy = res.LinkRate / maxRate
		}
		res.MeanLevel = levelTime / now / float64(cfg.Receivers)
	}
	return res, nil
}

// RunReplicated executes n runs with seeds seed, seed+1, ... and returns
// the per-run redundancies (for summary by the stats package).
func RunReplicated(cfg Config, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: replications = %d", n)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		out[i] = r.Redundancy
	}
	return out, nil
}
