// Package sim is the layered multicast congestion-control simulator for
// the paper's modified-star topologies (Figure 7): a sender behind one
// shared link feeding any number of receivers through independent
// fanout links.
//
// The model is exactly the paper's Section 4 idealization:
//
//   - The sender splits data over M layers with the exponential scheme
//     (aggregate rate of layers 1..i equal to 2^(i-1) packets per time
//     unit); each layer emits equal-size packets periodically.
//   - Packet loss (equivalently, congestion marking) is Bernoulli: one
//     draw per packet on the shared link — a shared loss is observed by
//     every subscribed receiver simultaneously — and an independent
//     per-receiver draw on each fanout link.
//   - Propagation delays and leave latencies are negligible: reactions
//     take effect instantly, so receivers seeing identical loss patterns
//     hold identical layer subscriptions (the paper's coordination
//     assumption).
//   - A packet traverses the shared link iff at least one receiver is
//     subscribed to its layer at transmission time (idealized multicast
//     pruning). Because subscriptions are always layer prefixes, the
//     session's shared-link rate at any instant is the cumulative rate of
//     the maximum subscribed level.
//
// The measured output is the Definition 3 redundancy of the session on
// the shared link: packets crossing the link per unit time, divided by
// the largest per-receiver long-run receive rate.
//
// sim is a facade: it compiles the star Config onto the general netsim
// engine (NetsimConfig) and re-maps the general Result onto the
// star-shaped one. It owns no event loop — the Section 5 extensions it
// historically carried (leave latency, priority dropping, the
// time-average subscription level) are first-class netsim features
// (Config.LeaveLatency, LinkSpec.LayerLoss, Result.MeanLevels). The
// facade regression tests in this package pin the translation against
// direct netsim runs, seed for seed.
package sim

import (
	"fmt"

	"mlfair/internal/layering"
	"mlfair/internal/netsim"
	"mlfair/internal/protocol"
)

// Config parameterizes one simulation run.
type Config struct {
	// Layers is M, the number of layers (the paper uses 8).
	Layers int
	// Receivers is the session size (the paper uses 100).
	Receivers int
	// SharedLoss is the Bernoulli loss rate of the shared link.
	SharedLoss float64
	// IndependentLoss is the loss rate of every fanout link. For
	// heterogeneous receivers set IndependentLosses instead.
	IndependentLoss float64
	// IndependentLosses, when non-nil, gives per-receiver fanout loss
	// rates and overrides IndependentLoss. Length must equal Receivers.
	IndependentLosses []float64
	// Protocol selects the join-coordination discipline.
	Protocol protocol.Kind
	// Packets is the total number of packets the sender transmits across
	// all layers (the paper uses 100,000 per experiment).
	Packets int
	// SignalPeriod is the base period of the Coordinated protocol's
	// level-1 join signals, in time units. Zero means 1.0, which makes
	// the expected packets between joins match the other protocols.
	SignalPeriod float64
	// LeaveLatency models slow IGMP-style leave processing (a Section 5
	// concern of the paper): after a receiver leaves a layer, the shared
	// link keeps carrying that layer for this many time units even if no
	// receiver wants it. Zero (the paper's idealization) means leaves
	// take effect instantly. Latency changes only the shared-link usage
	// accounting, never receiver dynamics, so runs with equal seeds are
	// comparable across latencies.
	LeaveLatency float64
	// Drop selects the router drop policy; see DropPolicy.
	Drop DropPolicy
	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
}

// DropPolicy is the router's choice of which packets congestion kills,
// following Bajaj/Breslau/Shenker ("Uniform versus Priority Dropping for
// Layered Video"), which the paper cites when asking whether priority
// dropping might reduce redundancy by increasing receiver coordination.
type DropPolicy int

const (
	// UniformDrop loses every packet with the configured probability
	// regardless of layer — the paper's Bernoulli model.
	UniformDrop DropPolicy = iota
	// PriorityDrop biases losses toward higher (enhancement) layers,
	// preserving the traffic-weighted mean loss rate: a packet on layer
	// l is lost with probability p·(l+1)/E[layer+1], so base-layer
	// packets are the safest. Receivers near the same level then see
	// losses on the same layers, increasing their correlation.
	PriorityDrop
)

// String names the policy.
func (d DropPolicy) String() string {
	switch d {
	case UniformDrop:
		return "uniform"
	case PriorityDrop:
		return "priority"
	}
	return fmt.Sprintf("DropPolicy(%d)", int(d))
}

func (c *Config) validate() error {
	if c.Layers < 1 {
		return fmt.Errorf("sim: Layers = %d", c.Layers)
	}
	if c.Receivers < 1 {
		return fmt.Errorf("sim: Receivers = %d", c.Receivers)
	}
	if c.Packets < 1 {
		return fmt.Errorf("sim: Packets = %d", c.Packets)
	}
	if c.SharedLoss < 0 || c.SharedLoss >= 1 {
		return fmt.Errorf("sim: SharedLoss = %v", c.SharedLoss)
	}
	if c.IndependentLosses != nil && len(c.IndependentLosses) != c.Receivers {
		return fmt.Errorf("sim: %d IndependentLosses for %d receivers", len(c.IndependentLosses), c.Receivers)
	}
	for _, p := range c.lossSlice() {
		if p < 0 || p >= 1 {
			return fmt.Errorf("sim: independent loss %v out of [0,1)", p)
		}
	}
	if c.LeaveLatency < 0 {
		return fmt.Errorf("sim: LeaveLatency = %v", c.LeaveLatency)
	}
	if c.Drop != UniformDrop && c.Drop != PriorityDrop {
		return fmt.Errorf("sim: unknown drop policy %v", c.Drop)
	}
	return nil
}

// priorityFactor returns the per-layer loss multiplier of PriorityDrop:
// (l+1)/E[layer index+1], with the expectation taken over the traffic
// mix of the exponential scheme so the aggregate loss volume matches
// UniformDrop at the full stack.
func priorityFactor(scheme layering.Scheme, l int) float64 {
	num := 0.0
	den := 0.0
	for x := 0; x < scheme.NumLayers(); x++ {
		num += float64(x+1) * scheme.LayerRate(x)
		den += scheme.LayerRate(x)
	}
	mean := num / den
	return float64(l+1) / mean
}

func (c *Config) lossSlice() []float64 {
	if c.IndependentLosses != nil {
		return c.IndependentLosses
	}
	ls := make([]float64, c.Receivers)
	for i := range ls {
		ls[i] = c.IndependentLoss
	}
	return ls
}

// Result summarizes one run.
type Result struct {
	// Redundancy is shared-link packets per time over the maximum
	// receiver rate (Definition 3 measured on the shared link).
	Redundancy float64
	// LinkRate is the long-run shared-link usage in packets per time
	// unit (u_{i,shared}).
	LinkRate float64
	// ReceiverRates are per-receiver long-run receive rates (packets per
	// time unit, after losses).
	ReceiverRates []float64
	// MeanLevel is the time-average subscription level averaged across
	// receivers (diagnostic).
	MeanLevel float64
	// PacketsSent / PacketsCrossed count sender transmissions and
	// shared-link traversals.
	PacketsSent, PacketsCrossed int
	// Duration is the simulated time.
	Duration float64
}

// SignalLevel returns the Coordinated protocol's nested signal level for
// the n-th signal (n >= 1), capped at maxLevel: 1 + trailing zeros of n.
// It delegates to protocol.SignalLevel, the schedule the engine runs.
func SignalLevel(n int, maxLevel int) int {
	if n < 1 {
		panic("sim: signal index starts at 1")
	}
	return protocol.SignalLevel(n, maxLevel)
}

// NetsimConfig compiles a star Config onto the general netsim engine:
// shared link 0 and fanout links 1..Receivers, heterogeneous losses
// honored, PriorityDrop expressed as per-layer loss tables, and
// LeaveLatency as the engine's linger accounting. Run is exactly
// netsim.Run of this config plus the Result re-mapping.
func NetsimConfig(c Config) (netsim.Config, error) {
	if err := c.validate(); err != nil {
		return netsim.Config{}, err
	}
	cfg, err := netsim.Star(c.Receivers, c.SharedLoss, c.IndependentLoss,
		netsim.SessionConfig{Protocol: c.Protocol, Layers: c.Layers}, c.Packets, c.Seed)
	if err != nil {
		return netsim.Config{}, err
	}
	losses := c.lossSlice()
	for k, p := range losses {
		cfg.Links[1+k].Loss = p
	}
	if c.Drop == PriorityDrop {
		scheme := layering.Exponential(c.Layers)
		factor := make([]float64, c.Layers)
		for l := range factor {
			factor[l] = priorityFactor(scheme, l)
		}
		table := func(p float64) []float64 {
			t := make([]float64, c.Layers)
			for l := range t {
				t[l] = layerLoss(p * factor[l])
			}
			return t
		}
		cfg.Links[0].LayerLoss = table(c.SharedLoss)
		for k, p := range losses {
			cfg.Links[1+k].LayerLoss = table(p)
		}
	}
	cfg.SignalPeriod = c.SignalPeriod
	cfg.LeaveLatency = c.LeaveLatency
	return cfg, nil
}

// layerLoss caps a probability at just under 1.
func layerLoss(p float64) float64 {
	if p >= 0.999 {
		return 0.999
	}
	return p
}

// FromNetsim maps a general-engine result of a NetsimConfig run back
// onto the star-shaped Result (the facade's other half, exported so the
// regression tests can pin the translation).
func FromNetsim(r *netsim.Result) *Result {
	res := &Result{
		ReceiverRates: r.ReceiverRates[0],
		MeanLevel:     r.MeanLevels[0],
		PacketsSent:   r.PacketsSent,
		Duration:      r.Duration,
	}
	for _, ls := range r.Links {
		if ls.Link == 0 && ls.Session == 0 {
			res.PacketsCrossed = ls.Crossed
			res.LinkRate = ls.Rate
			res.Redundancy = ls.Redundancy
			break
		}
	}
	return res
}

// Run executes one simulation on the general engine.
func Run(cfg Config) (*Result, error) {
	nc, err := NetsimConfig(cfg)
	if err != nil {
		return nil, err
	}
	r, err := netsim.Run(nc)
	if err != nil {
		return nil, err
	}
	return FromNetsim(r), nil
}

// RunReplicated executes n runs with seeds seed, seed+1, ... and returns
// the per-run redundancies (for summary by the stats package).
func RunReplicated(cfg Config, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: replications = %d", n)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		out[i] = r.Redundancy
	}
	return out, nil
}
