package sim

import (
	"math"
	"reflect"
	"testing"

	"mlfair/internal/layering"
	"mlfair/internal/netsim"
	"mlfair/internal/protocol"
)

// This file is the facade regression suite, folding the former
// netsim/crosscheck_test.go into this package: sim.Run is defined to be
// netsim.Run of NetsimConfig plus the FromNetsim re-mapping, so for
// fixed seeds the two must agree exactly (the documented cross-check
// tolerance is now zero). If a future change reintroduces a divergence
// between the facade and a direct netsim run, these tests catch it
// field by field.

// facadeEqual runs cfg both through the facade and directly through
// netsim and requires bit-identical results.
func facadeEqual(t *testing.T, cfg Config) {
	t.Helper()
	got, err := Run(cfg)
	if err != nil {
		t.Fatalf("facade run: %v", err)
	}
	nc, err := NetsimConfig(cfg)
	if err != nil {
		t.Fatalf("NetsimConfig: %v", err)
	}
	nr, err := netsim.Run(nc)
	if err != nil {
		t.Fatalf("direct netsim run: %v", err)
	}
	want := FromNetsim(nr)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("facade diverged from direct netsim run:\nfacade %+v\nnetsim %+v", got, want)
	}
}

func TestFacadeMatchesNetsimExactly(t *testing.T) {
	for _, kind := range protocol.Kinds() {
		facadeEqual(t, Config{
			Layers: 8, Receivers: 23, SharedLoss: 0.001, IndependentLoss: 0.04,
			Protocol: kind, Packets: 20000, Seed: 7,
		})
	}
}

func TestFacadeHeterogeneousAndExtensions(t *testing.T) {
	losses := []float64{0.001, 0.02, 0.1, 0, 0.05}
	for _, cfg := range []Config{
		{Layers: 6, Receivers: 5, SharedLoss: 0.01, IndependentLosses: losses,
			Protocol: protocol.Deterministic, Packets: 15000, Seed: 21},
		{Layers: 8, Receivers: 10, IndependentLoss: 0.05, LeaveLatency: 4,
			Protocol: protocol.Coordinated, Packets: 15000, Seed: 22},
		{Layers: 8, Receivers: 10, SharedLoss: 0.0001, IndependentLoss: 0.06,
			Drop: PriorityDrop, Protocol: protocol.Uncoordinated, Packets: 15000, Seed: 23},
	} {
		facadeEqual(t, cfg)
	}
}

// TestLeaveLatencyDynamicsInvariant pins the engine's linger contract:
// latency changes only link-usage accounting, so receiver dynamics
// (rates, mean level) at equal seed are bit-identical across latencies
// — including fanouts above the engine's wide-node threshold (16),
// where the walk switches to the counting-sorted child enumeration.
func TestLeaveLatencyDynamicsInvariant(t *testing.T) {
	for _, n := range []int{10, 40} { // narrow and wide hub fan-out
		base := Config{Layers: 8, Receivers: n, IndependentLoss: 0.05,
			Protocol: protocol.Deterministic, Packets: 30000, Seed: 9}
		a, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		lat := base
		lat.LeaveLatency = 1e-300 // open linger windows of measure ~zero
		b, err := Run(lat)
		if err != nil {
			t.Fatal(err)
		}
		if a.MeanLevel != b.MeanLevel {
			t.Fatalf("n=%d: latency changed mean level: %v vs %v", n, a.MeanLevel, b.MeanLevel)
		}
		for k := range a.ReceiverRates {
			if a.ReceiverRates[k] != b.ReceiverRates[k] {
				t.Fatalf("n=%d: latency changed receiver %d dynamics: %v vs %v",
					n, k, a.ReceiverRates[k], b.ReceiverRates[k])
			}
		}
		if b.PacketsCrossed < a.PacketsCrossed {
			t.Fatalf("n=%d: crossings decreased under latency", n)
		}
	}
}

// TestFacadeStarShape pins the NetsimConfig translation itself: link 0
// is the shared link, links 1..n the fanouts with per-receiver losses,
// and the engine extensions map onto the intended netsim knobs.
func TestFacadeStarShape(t *testing.T) {
	cfg := Config{
		Layers: 4, Receivers: 3, SharedLoss: 0.01,
		IndependentLosses: []float64{0.1, 0.2, 0.3},
		Protocol:          protocol.Deterministic, Packets: 100,
		LeaveLatency: 2.5, Drop: PriorityDrop, Seed: 9,
	}
	nc, err := NetsimConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nc.Network.NumLinks() != 4 || nc.Network.NumSessions() != 1 {
		t.Fatalf("star shape wrong: %d links, %d sessions", nc.Network.NumLinks(), nc.Network.NumSessions())
	}
	if nc.LeaveLatency != 2.5 {
		t.Fatalf("leave latency not forwarded: %v", nc.LeaveLatency)
	}
	if nc.Links[0].Loss != 0.01 || nc.Links[2].Loss != 0.2 {
		t.Fatalf("losses not forwarded: %+v", nc.Links)
	}
	scheme := nc.Links[0].LayerLoss
	if len(scheme) != cfg.Layers {
		t.Fatalf("priority drop table missing: %v", scheme)
	}
	for l := 1; l < len(scheme); l++ {
		if scheme[l] <= scheme[l-1] {
			t.Fatalf("priority drop table not increasing: %v", scheme)
		}
	}
	if math.Abs(scheme[0]-0.01*priorityFactor(layering.Exponential(cfg.Layers), 0)) > 1e-12 {
		t.Fatalf("base-layer loss %v inconsistent with priority factor", scheme[0])
	}
}
