package sim

import (
	"math"
	"testing"

	"mlfair/internal/protocol"
	"mlfair/internal/stats"
)

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	good := Config{Layers: 4, Receivers: 2, Packets: 100}
	bad := []Config{
		{Layers: 0, Receivers: 2, Packets: 100},
		{Layers: 4, Receivers: 0, Packets: 100},
		{Layers: 4, Receivers: 2, Packets: 0},
		{Layers: 4, Receivers: 2, Packets: 100, SharedLoss: 1.0},
		{Layers: 4, Receivers: 2, Packets: 100, SharedLoss: -0.1},
		{Layers: 4, Receivers: 2, Packets: 100, IndependentLoss: 1.5},
		{Layers: 4, Receivers: 2, Packets: 100, IndependentLosses: []float64{0.1}},
	}
	if _, err := Run(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	for i, c := range bad {
		if _, err := Run(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSignalLevelRuler(t *testing.T) {
	want := []int{1, 2, 1, 3, 1, 2, 1, 4, 1, 2, 1, 3, 1, 2, 1, 5}
	for i, w := range want {
		if got := SignalLevel(i+1, 7); got != w {
			t.Fatalf("SignalLevel(%d) = %d, want %d", i+1, got, w)
		}
	}
	if got := SignalLevel(64, 3); got != 3 {
		t.Fatalf("cap failed: %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("index 0 accepted")
		}
	}()
	SignalLevel(0, 3)
}

// TestNoLossClimbsToTop: without loss, every protocol drives all
// receivers to the full layer stack and redundancy 1.
func TestNoLossClimbsToTop(t *testing.T) {
	for _, k := range protocol.Kinds() {
		res := run(t, Config{
			Layers: 6, Receivers: 10, Protocol: k, Packets: 60000, Seed: 1,
		})
		// Cumulative top rate is 2^5 = 32 packets/unit; long-run receive
		// rate approaches it.
		for i, rate := range res.ReceiverRates {
			if rate < 25 {
				t.Errorf("%v receiver %d rate = %v, want near 32", k, i, rate)
			}
		}
		if res.Redundancy > 1.3 {
			t.Errorf("%v lossless redundancy = %v, want near 1", k, res.Redundancy)
		}
		if res.MeanLevel < 5 {
			t.Errorf("%v mean level = %v, want near 6", k, res.MeanLevel)
		}
	}
}

// TestDeterminism: equal seeds give identical results; different seeds
// differ (for stochastic configs).
func TestDeterminism(t *testing.T) {
	cfg := Config{Layers: 8, Receivers: 20, IndependentLoss: 0.02, SharedLoss: 0.001,
		Protocol: protocol.Uncoordinated, Packets: 20000, Seed: 7}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Redundancy != b.Redundancy || a.PacketsCrossed != b.PacketsCrossed {
		t.Fatal("same seed, different results")
	}
	cfg.Seed = 8
	c := run(t, cfg)
	if a.Redundancy == c.Redundancy {
		t.Fatal("different seeds produced identical redundancy (suspicious)")
	}
}

// TestHighLossKeepsLevelsLow: heavy independent loss pins receivers near
// the base layer.
func TestHighLossKeepsLevelsLow(t *testing.T) {
	res := run(t, Config{Layers: 8, Receivers: 10, IndependentLoss: 0.5,
		Protocol: protocol.Deterministic, Packets: 30000, Seed: 3})
	if res.MeanLevel > 2.5 {
		t.Fatalf("mean level = %v under 50%% loss", res.MeanLevel)
	}
}

// TestSharedLossOnlyKeepsCorrelatedProtocolsEfficient: with loss only on
// the shared link, Deterministic and Coordinated receivers see identical
// events and stay synchronized: redundancy stays near 1.
func TestSharedLossOnlyKeepsCorrelatedProtocolsEfficient(t *testing.T) {
	for _, k := range []protocol.Kind{protocol.Deterministic, protocol.Coordinated} {
		res := run(t, Config{Layers: 8, Receivers: 50, SharedLoss: 0.05,
			Protocol: k, Packets: 50000, Seed: 11})
		if res.Redundancy > 1.4 {
			t.Errorf("%v shared-only redundancy = %v, want near 1", k, res.Redundancy)
		}
	}
}

// TestIndependentLossCreatesRedundancy: uncorrelated loss desynchronizes
// receivers; the uncoordinated protocols pay redundancy well above 1.
func TestIndependentLossCreatesRedundancy(t *testing.T) {
	res := run(t, Config{Layers: 8, Receivers: 50, SharedLoss: 0.0001,
		IndependentLoss: 0.05, Protocol: protocol.Uncoordinated,
		Packets: 100000, Seed: 13})
	if res.Redundancy < 1.5 {
		t.Fatalf("Uncoordinated redundancy = %v, want well above 1", res.Redundancy)
	}
}

// TestCoordinationReducesRedundancy is the paper's headline Figure 8
// comparison at one operating point: Coordinated beats Uncoordinated
// and stays below the paper's 2.5 bound. (Deterministic tracks
// Coordinated closely in the idealized zero-delay model because
// same-level receivers count identical packet streams; see DESIGN.md.)
func TestCoordinationReducesRedundancy(t *testing.T) {
	point := func(k protocol.Kind) float64 {
		reds, err := RunReplicated(Config{Layers: 8, Receivers: 50,
			SharedLoss: 0.0001, IndependentLoss: 0.04, Protocol: k,
			Packets: 50000, Seed: 17}, 5)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(reds)
	}
	co, un := point(protocol.Coordinated), point(protocol.Uncoordinated)
	if !(co < un) {
		t.Errorf("Coordinated (%v) should beat Uncoordinated (%v)", co, un)
	}
	// Paper: sender coordination keeps redundancy below 2.5.
	if co > 2.5 {
		t.Errorf("Coordinated redundancy = %v, paper bound 2.5", co)
	}
}

// TestCorrelatedLossAmplifiesCoordinationBenefit: Figure 8(b)'s setting —
// with high shared (fully correlated) loss and no independent loss,
// coordination-friendly protocols stay near 1 while Uncoordinated pays
// heavily ("coordinated joins reduce redundancy most significantly when
// the correlation in loss among receivers is high").
func TestCorrelatedLossAmplifiesCoordinationBenefit(t *testing.T) {
	point := func(k protocol.Kind) float64 {
		reds, err := RunReplicated(Config{Layers: 8, Receivers: 50,
			SharedLoss: 0.05, IndependentLoss: 0, Protocol: k,
			Packets: 50000, Seed: 43}, 5)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(reds)
	}
	co, un := point(protocol.Coordinated), point(protocol.Uncoordinated)
	if co > 1.3 {
		t.Errorf("Coordinated redundancy under pure shared loss = %v, want near 1", co)
	}
	if un < 1.8*co {
		t.Errorf("Uncoordinated (%v) should pay far more than Coordinated (%v) under correlated loss", un, co)
	}
}

// TestHeterogeneousLosses: per-receiver loss rates are honored — the
// lossier receiver ends with a lower rate.
func TestHeterogeneousLosses(t *testing.T) {
	res := run(t, Config{Layers: 8, Receivers: 2,
		IndependentLosses: []float64{0.001, 0.2},
		Protocol:          protocol.Deterministic, Packets: 60000, Seed: 19})
	if !(res.ReceiverRates[0] > 2*res.ReceiverRates[1]) {
		t.Fatalf("rates = %v, want clean receiver much faster", res.ReceiverRates)
	}
}

// TestCrossedNeverExceedsSent and basic accounting invariants.
func TestAccountingInvariants(t *testing.T) {
	res := run(t, Config{Layers: 6, Receivers: 8, IndependentLoss: 0.03,
		SharedLoss: 0.01, Protocol: protocol.Uncoordinated, Packets: 20000, Seed: 23})
	if res.PacketsSent != 20000 {
		t.Fatalf("sent = %d", res.PacketsSent)
	}
	if res.PacketsCrossed > res.PacketsSent {
		t.Fatal("crossed > sent")
	}
	if res.Duration <= 0 {
		t.Fatal("non-positive duration")
	}
	if res.Redundancy < 1-0.05 {
		t.Fatalf("redundancy = %v < 1", res.Redundancy)
	}
	for _, rate := range res.ReceiverRates {
		if rate < 0 || rate > res.LinkRate+1e-9 {
			t.Fatalf("receiver rate %v outside [0, link rate %v]", rate, res.LinkRate)
		}
	}
}

// TestSingleReceiverEfficient: one receiver can produce no redundancy
// beyond loss inflation.
func TestSingleReceiverEfficient(t *testing.T) {
	res := run(t, Config{Layers: 8, Receivers: 1, IndependentLoss: 0.02,
		Protocol: protocol.Deterministic, Packets: 50000, Seed: 29})
	if math.Abs(res.Redundancy-1) > 0.1 {
		t.Fatalf("single-receiver redundancy = %v, want ~1 (loss inflation only)", res.Redundancy)
	}
}

func TestRunReplicated(t *testing.T) {
	cfg := Config{Layers: 4, Receivers: 5, IndependentLoss: 0.05,
		Protocol: protocol.Uncoordinated, Packets: 5000, Seed: 31}
	reds, err := RunReplicated(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reds) != 4 {
		t.Fatalf("got %d replications", len(reds))
	}
	if reds[0] == reds[1] && reds[1] == reds[2] && reds[2] == reds[3] {
		t.Fatal("replications identical (seeds not advanced?)")
	}
	if _, err := RunReplicated(cfg, 0); err == nil {
		t.Fatal("zero replications accepted")
	}
}

// TestMeanLevelBounds: the time-average level lies in [1, M].
func TestMeanLevelBounds(t *testing.T) {
	res := run(t, Config{Layers: 5, Receivers: 10, IndependentLoss: 0.08,
		Protocol: protocol.Coordinated, Packets: 20000, Seed: 37})
	if res.MeanLevel < 1 || res.MeanLevel > 5 {
		t.Fatalf("mean level = %v outside [1,5]", res.MeanLevel)
	}
}
