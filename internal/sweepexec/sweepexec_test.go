package sweepexec

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mlfair/internal/scenario"
)

// testSweep is a small benchmark-enabled sweep: 4 points x 3
// replications = 12 simulated cells plus 4 benchmark rows, enough
// structure to exercise every crash window cheaply.
func testSweep() *scenario.Sweep {
	return &scenario.Sweep{
		Base: scenario.Spec{
			Topology:     scenario.TopologySpec{Kind: "star", Receivers: 3},
			Sessions:     []scenario.SessionSpec{{Protocol: "deterministic", Layers: 4}},
			DefaultLink:  &scenario.LinkSpec{Kind: "bernoulli", Loss: 0.02},
			Packets:      800,
			Seed:         77,
			Replications: scenario.ReplicationSpec{N: 3, Workers: 2},
		},
		Axes: []scenario.Axis{
			{Field: "defaultLink.loss", Values: []any{0.01, 0.05}},
			{Field: "sessions.layers", Values: []any{2.0, 4.0}},
		},
		Outputs:   []string{"goodput", "best_rate"},
		Benchmark: true,
	}
}

// render gives the result's full deterministic fingerprint: CSV + JSON.
func render(t *testing.T, res *Result) string {
	t.Helper()
	var csv, js bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	return csv.String() + js.String()
}

// golden runs the sweep through scenario.RunSweep — the single-process
// reference every distributed execution shape must reproduce bitwise.
func golden(t *testing.T, sw *scenario.Sweep) string {
	t.Helper()
	res, err := scenario.RunSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	var csv, js bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	return csv.String() + js.String()
}

// TestRunMatchesRunSweep: the sweepexec scheduler, unsharded and
// without checkpointing, reproduces scenario.RunSweep byte for byte.
func TestRunMatchesRunSweep(t *testing.T) {
	want := golden(t, testSweep())
	res, err := Run(testSweep(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := render(t, res); got != want {
		t.Fatalf("sweepexec output differs from scenario.RunSweep:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestCheckpointedRunMatches: checkpointing on (both flush
// granularities) changes nothing about the output.
func TestCheckpointedRunMatches(t *testing.T) {
	want := golden(t, testSweep())
	for _, flush := range []int{0, 1, 3} {
		dir := t.TempDir()
		res, err := Run(testSweep(), Options{CheckpointDir: dir, FlushCells: flush})
		if err != nil {
			t.Fatal(err)
		}
		if got := render(t, res); got != want {
			t.Fatalf("flush=%d: checkpointed output differs from golden", flush)
		}
		if _, err := LoadCheckpoint(dir); err != nil {
			t.Fatalf("flush=%d: no readable checkpoint after run: %v", flush, err)
		}
	}
}

// errCrash is the injected failure the crash tests kill the scheduler
// with.
var errCrash = errors.New("injected crash")

// crashAfter returns an AfterCell hook that lets k cells complete and
// then kills the run.
func crashAfter(k int) func(int) error {
	return func(done int) error {
		if done > k {
			return errCrash
		}
		return nil
	}
}

// TestCrashInjectionResume is the headline property test: for every
// crash point K in {0 .. all cells} and every commit granularity, kill
// the scheduler after K completed cells, resume from the checkpoint
// directory, and require CSV + JSON output byte-identical to an
// uninterrupted run. Replication rows are pure functions and the store
// is merge-order invariant, so no failure point may leak into the
// output.
func TestCrashInjectionResume(t *testing.T) {
	sw := testSweep()
	totalCells := 12 // 4 points x 3 replications
	want := golden(t, sw)
	for _, flush := range []int{0, 1} {
		for k := 0; k <= totalCells; k++ {
			t.Run(fmt.Sprintf("flush=%d/K=%d", flush, k), func(t *testing.T) {
				dir := t.TempDir()
				_, err := Run(testSweep(), Options{
					CheckpointDir: dir,
					FlushCells:    flush,
					AfterCell:     crashAfter(k),
				})
				if k < totalCells {
					if !errors.Is(err, errCrash) {
						t.Fatalf("crashed run returned %v, want injected crash", err)
					}
				} else if err != nil {
					// K = all cells: the hook never fires mid-run; the
					// run completes.
					t.Fatal(err)
				}
				res, err := Run(testSweep(), Options{CheckpointDir: dir, Resume: true, FlushCells: flush})
				if err != nil {
					t.Fatalf("resume after K=%d: %v", k, err)
				}
				if got := render(t, res); got != want {
					t.Fatalf("resume after K=%d not byte-identical:\n--- got ---\n%s\n--- want ---\n%s", k, got, want)
				}
			})
		}
	}
}

// TestCrashInjectionResumeRandomized drives the same property with
// randomized crash points, parallel workers, and repeated
// crash-resume-crash chains — the shape the -race run exercises.
func TestCrashInjectionResumeRandomized(t *testing.T) {
	sw := testSweep()
	want := golden(t, sw)
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 6; trial++ {
		dir := t.TempDir()
		resume := false
		// A chain of up to three crashes before the final clean resume.
		for c := 0; c < 3; c++ {
			k := rng.Intn(13)
			_, err := Run(testSweep(), Options{
				Workers:       4,
				CheckpointDir: dir,
				Resume:        resume,
				FlushCells:    rng.Intn(3),
				AfterCell:     crashAfter(k),
			})
			resume = true
			if err != nil && !errors.Is(err, errCrash) {
				t.Fatalf("trial %d: unexpected error %v", trial, err)
			}
		}
		res, err := Run(testSweep(), Options{Workers: 4, CheckpointDir: dir, Resume: true})
		if err != nil {
			t.Fatalf("trial %d: final resume: %v", trial, err)
		}
		if got := render(t, res); got != want {
			t.Fatalf("trial %d: resumed output not byte-identical", trial)
		}
	}
}

// TestShardedMergeMatchesSingle: three independent shard runs merge to
// the single-process golden, byte for byte — the CI smoke's in-process
// twin.
func TestShardedMergeMatchesSingle(t *testing.T) {
	sw := testSweep()
	want := golden(t, sw)
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 3; i++ {
		res, err := Run(testSweep(), Options{ShardIndex: i, ShardCount: 3})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.shard", i))
		if err := res.WriteShardFile(path); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	merged, err := MergeFiles(sw, paths)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(t, merged); got != want {
		t.Fatalf("3-shard merge differs from single process:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// Dropping a shard must fail completeness, not silently emit holes.
	if _, err := MergeFiles(sw, paths[:2]); err == nil {
		t.Fatal("merge of 2 of 3 shards accepted")
	}
	// Merging a shard twice must hit the store's duplicate-cell guard.
	if _, err := MergeFiles(sw, []string{paths[0], paths[0], paths[1], paths[2]}); err == nil {
		t.Fatal("double merge of one shard accepted")
	}
}

// TestResumeValidation: a checkpoint can only resume the exact sweep,
// shard, and schema it was taken under.
func TestResumeValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(testSweep(), Options{CheckpointDir: dir, FlushCells: 1, AfterCell: crashAfter(4)}); !errors.Is(err, errCrash) {
		t.Fatalf("seed crash run: %v", err)
	}

	edited := testSweep()
	edited.Base.Packets++
	if _, err := Run(edited, Options{CheckpointDir: dir, Resume: true}); err == nil {
		t.Fatal("resume accepted an edited sweep definition")
	}
	if _, err := Run(testSweep(), Options{CheckpointDir: dir, Resume: true, ShardIndex: 0, ShardCount: 2}); err == nil {
		t.Fatal("resume accepted a different shard split")
	}
	if _, err := Run(testSweep(), Options{CheckpointDir: dir}); err == nil {
		t.Fatal("fresh run over an existing checkpoint accepted")
	}
	if _, err := Run(testSweep(), Options{Resume: true}); err == nil {
		t.Fatal("resume without a checkpoint directory accepted")
	}
	if _, err := Run(testSweep(), Options{ShardIndex: 3, ShardCount: 3}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}

	// Resuming an empty directory is a fresh start, not an error: the
	// previous attempt may have died before its first commit.
	res, err := Run(testSweep(), Options{CheckpointDir: t.TempDir(), Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedCells != 0 {
		t.Fatalf("fresh resume restored %d cells", res.ResumedCells)
	}
}

// TestOrphanSpillIgnored: a crash between the spill rename and the
// checkpoint rename leaves a spill file beyond the checkpoint's count;
// a resume must ignore it and still converge to the golden output.
func TestOrphanSpillIgnored(t *testing.T) {
	sw := testSweep()
	want := golden(t, sw)
	dir := t.TempDir()
	if _, err := Run(testSweep(), Options{CheckpointDir: dir, FlushCells: 2, AfterCell: crashAfter(6)}); !errors.Is(err, errCrash) {
		t.Fatal("seed crash run did not crash")
	}
	ck, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Forge the orphan: a stray spill file one past the committed count.
	orphan := spillPath(dir, ck.Spills, "sim")
	if err := os.WriteFile(orphan, []byte("not a shard at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Run(testSweep(), Options{CheckpointDir: dir, Resume: true, FlushCells: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := render(t, res); got != want {
		t.Fatal("resume with orphan spill not byte-identical")
	}
}

// TestStreamingLargeSweep: a grid beyond the old 4096-point cap
// expands lazily, completes, and its cells match direct scenario.Run
// of the same specs — the streaming scheduler changes scheduling,
// never numbers.
func TestStreamingLargeSweep(t *testing.T) {
	sw := &scenario.Sweep{
		Base: scenario.Spec{
			Topology:     scenario.TopologySpec{Kind: "star", Receivers: 2},
			Sessions:     []scenario.SessionSpec{{Protocol: "deterministic", Layers: 2}},
			DefaultLink:  &scenario.LinkSpec{Kind: "bernoulli", Loss: 0.02},
			Packets:      60,
			Seed:         1,
			Replications: scenario.ReplicationSpec{N: 1},
		},
		Axes:    []scenario.Axis{{Field: "seed", Range: &scenario.RangeSpec{From: 1, To: 4200, Step: 1}}},
		Outputs: []string{"goodput"},
	}
	res, err := Run(sw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Sim.Points()); got != 4200 {
		t.Fatalf("expanded %d points, want 4200", got)
	}
	for _, id := range []int{0, 1777, 4199} {
		spec := sw.Base
		spec.Seed = uint64(id + 1)
		direct, err := scenario.Run(&spec)
		if err != nil {
			t.Fatal(err)
		}
		cell, err := res.Sim.Cell(id, "goodput")
		if err != nil {
			t.Fatal(err)
		}
		if cell.Mean != direct.Goodput.Mean {
			t.Fatalf("point %d goodput %v, direct run %v", id, cell.Mean, direct.Goodput.Mean)
		}
	}
}
