package sweepexec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"

	"mlfair/internal/results"
	"mlfair/internal/scenario"
)

// WriteShardFile writes the shard's final result as one shard file:
// the simulated store's section, followed by the benchmark store's
// when the sweep's Benchmark stage ran. The counterpart of MergeFiles.
func (r *Result) WriteShardFile(path string) error {
	var buf bytes.Buffer
	if err := results.WriteShard(&buf, r.Sim); err != nil {
		return err
	}
	if r.Bench != nil {
		if err := results.WriteShard(&buf, r.Bench); err != nil {
			return err
		}
	}
	return writeFileAtomic(path, buf.Bytes())
}

// WriteCSV renders the result exactly as scenario.SweepResult would —
// a merged full-sweep result is byte-identical to the single-process
// table.
func (r *Result) WriteCSV(w io.Writer) error {
	return r.sweepResult().WriteCSV(w)
}

// WriteJSON renders the result as scenario.SweepResult's JSON document.
func (r *Result) WriteJSON(w io.Writer) error {
	return r.sweepResult().WriteJSON(w)
}

func (r *Result) sweepResult() *scenario.SweepResult {
	return &scenario.SweepResult{Sweep: r.Sweep, Sim: r.Sim, Bench: r.Bench}
}

// ReadShardFile reads one shard file: a simulated section, optionally
// followed by a benchmark section, with nothing after.
func ReadShardFile(path string) (sim, bench *results.Store, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	if sim, err = results.ReadShard(f); err != nil {
		return nil, nil, fmt.Errorf("sweepexec: %s: %w", path, err)
	}
	bench, err = results.ReadShard(f)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return sim, nil, nil
		}
		return nil, nil, fmt.Errorf("sweepexec: %s: %w", path, err)
	}
	// Nothing may follow the benchmark section.
	var trail [1]byte
	if n, _ := f.Read(trail[:]); n != 0 {
		return nil, nil, fmt.Errorf("sweepexec: %s: trailing bytes after benchmark section", path)
	}
	return sim, bench, nil
}

// MergeFiles merges per-shard result files into the full sweep result
// and verifies completeness: the merged stores must define and fully
// observe every one of the sweep's points (and, when the Benchmark
// stage is on, carry every point's benchmark row). The merged output
// is byte-identical to a single-process run of the same sweep.
func MergeFiles(sw *scenario.Sweep, paths []string) (*Result, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("sweepexec: no shard files to merge")
	}
	e, err := sw.Expander()
	if err != nil {
		return nil, err
	}
	axes, outs := sw.AxisFields(), sw.OutputColumns()
	sim, err := results.New(axes, outs)
	if err != nil {
		return nil, err
	}
	var bench *results.Store
	if sw.Benchmark {
		if bench, err = results.New(axes, scenario.BenchmarkColumns); err != nil {
			return nil, err
		}
	}
	for _, path := range paths {
		s, b, err := ReadShardFile(path)
		if err != nil {
			return nil, err
		}
		if err := sim.Merge(s); err != nil {
			return nil, fmt.Errorf("sweepexec: %s: %w", path, err)
		}
		switch {
		case bench != nil && b == nil:
			return nil, fmt.Errorf("sweepexec: %s has no benchmark section but the sweep's benchmark stage is on", path)
		case bench == nil && b != nil:
			return nil, fmt.Errorf("sweepexec: %s has a benchmark section but the sweep's benchmark stage is off", path)
		case b != nil:
			if err := bench.Merge(b); err != nil {
				return nil, fmt.Errorf("sweepexec: %s: %w", path, err)
			}
		}
	}
	total := e.Len()
	for id := 0; id < total; id++ {
		reps, err := sim.Reps(id)
		if err != nil {
			return nil, fmt.Errorf("sweepexec: merged shards are missing point %d of %d", id, total)
		}
		observed, err := sim.ObservedReps(id)
		if err != nil {
			return nil, err
		}
		if len(observed) != reps {
			return nil, fmt.Errorf("sweepexec: merged shards observe %d of %d replications for point %d", len(observed), reps, id)
		}
		if bench != nil {
			if observed, err := bench.ObservedReps(id); err != nil || len(observed) != 1 {
				return nil, fmt.Errorf("sweepexec: merged shards are missing point %d's benchmark row", id)
			}
		}
	}
	return &Result{Sweep: sw, Sim: sim, Bench: bench}, nil
}
