package sweepexec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"mlfair/internal/results"
	"mlfair/internal/scenario"
)

// The checkpoint file records a sweep shard's durable progress: which
// (point, replication) cells have been committed, and how many spill
// shards hold their rows. Commits follow a crash-safe protocol — the
// spill shard(s) are renamed into place first, then the checkpoint is
// rewritten (temp file + atomic rename). A crash between the two
// leaves an orphan spill beyond the checkpoint's Spills count, which a
// resume ignores and the next commit overwrites, so the checkpoint's
// cell list always describes exactly the union of spills 0..Spills-1.
//
// Layout (all integers little-endian):
//
//	magic       [8]byte  "MLFCKPT1"
//	length      uint64   whole-section byte count, magic through checksum
//	schemaHash  uint64   results.SchemaHash of the sweep's axes/outputs
//	sweepHash   uint64   SweepHash of the sweep definition
//	shardIndex  uint32   this process's shard
//	shardCount  uint32   total shards (>= 1)
//	totalPoints uint64   the sweep's full point count
//	nSpills     uint32   committed spill shards
//	nCells      uint32   then per cell: pointID uint32, rep uint32
//	checksum    uint32   CRC-32 (IEEE) of every preceding section byte
//
// ReadCheckpoint rejects — with an error, never a panic — truncation,
// flipped bytes, out-of-range headers, duplicate cells, and cells
// outside the declared point range or shard.

// checkpointMagic identifies (and versions) the checkpoint format.
var checkpointMagic = [8]byte{'M', 'L', 'F', 'C', 'K', 'P', 'T', '1'}

const (
	// checkpointFile is the checkpoint's name inside its directory.
	checkpointFile = "sweep.ckpt"
	// maxCheckpointSection bounds a declared section length.
	maxCheckpointSection = 1 << 31
	// minCheckpointSection is the encoded size of an empty checkpoint.
	minCheckpointSection = 16 + 8 + 8 + 4 + 4 + 8 + 4 + 4 + 4
)

// Cell identifies one (point, replication) observation.
type Cell struct {
	Point int
	Rep   int
}

// Checkpoint is a sweep shard's decoded durable state.
type Checkpoint struct {
	// SchemaHash fingerprints the result schema (axes and output
	// metrics); SweepHash fingerprints the whole sweep definition. Both
	// must match before a resume may reuse spilled rows.
	SchemaHash uint64
	SweepHash  uint64
	// ShardIndex / ShardCount name the point partition this checkpoint
	// covers (point id mod ShardCount == ShardIndex).
	ShardIndex int
	ShardCount int
	// TotalPoints is the sweep's full (all-shard) point count.
	TotalPoints int
	// Spills counts committed spill shard files; the checkpoint covers
	// spill-000000 .. spill-(Spills-1) and nothing beyond.
	Spills int
	// Cells lists every committed (point, replication) cell — exactly
	// the union of the covered spill shards' observations.
	Cells []Cell
}

// SweepHash fingerprints a sweep definition: FNV-1a over its canonical
// encoding. A checkpoint taken under one sweep can never resume under
// an edited one.
func SweepHash(sw *scenario.Sweep) (uint64, error) {
	var buf bytes.Buffer
	if err := sw.Encode(&buf); err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return h.Sum64(), nil
}

// encode serializes the checkpoint (see the format comment above).
func (c *Checkpoint) encode() []byte {
	var buf bytes.Buffer
	buf.Write(checkpointMagic[:])
	putU64(&buf, 0) // length, patched below
	putU64(&buf, c.SchemaHash)
	putU64(&buf, c.SweepHash)
	putU32(&buf, uint32(c.ShardIndex))
	putU32(&buf, uint32(c.ShardCount))
	putU64(&buf, uint64(c.TotalPoints))
	putU32(&buf, uint32(c.Spills))
	putU32(&buf, uint32(len(c.Cells)))
	for _, cell := range c.Cells {
		putU32(&buf, uint32(cell.Point))
		putU32(&buf, uint32(cell.Rep))
	}
	b := buf.Bytes()
	binary.LittleEndian.PutUint64(b[8:], uint64(len(b)+4)) // include checksum
	putU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes()
}

// ReadCheckpoint reads and validates one checkpoint. Any deviation
// from the format — truncation, a flipped byte, duplicate cells, cells
// outside the declared point range or shard — returns an error; it
// never panics and never yields a checkpoint that could silently merge
// wrong state.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	head := make([]byte, 16)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("sweepexec: checkpoint header: %w", err)
	}
	if !bytes.Equal(head[:8], checkpointMagic[:]) {
		return nil, fmt.Errorf("sweepexec: bad checkpoint magic %q", head[:8])
	}
	length := binary.LittleEndian.Uint64(head[8:])
	if length < minCheckpointSection || length > maxCheckpointSection {
		return nil, fmt.Errorf("sweepexec: checkpoint length %d out of range", length)
	}
	rest, err := io.ReadAll(io.LimitReader(r, int64(length-16)))
	if err != nil {
		return nil, fmt.Errorf("sweepexec: checkpoint body: %w", err)
	}
	if uint64(len(rest)) != length-16 {
		return nil, fmt.Errorf("sweepexec: checkpoint truncated: %d of %d body bytes", len(rest), length-16)
	}
	body, sum := rest[:len(rest)-4], binary.LittleEndian.Uint32(rest[len(rest)-4:])
	crc := crc32.ChecksumIEEE(head)
	crc = crc32.Update(crc, crc32.IEEETable, body)
	if crc != sum {
		return nil, fmt.Errorf("sweepexec: checkpoint checksum mismatch (stored %08x, computed %08x)", sum, crc)
	}
	c := &cursor{b: body}
	ck := &Checkpoint{
		SchemaHash: c.u64(),
		SweepHash:  c.u64(),
	}
	shardIndex := c.u32()
	shardCount := c.u32()
	totalPoints := c.u64()
	spills := c.u32()
	nCells := c.u32()
	if c.err != nil {
		return nil, c.err
	}
	if shardCount < 1 || shardIndex >= shardCount {
		return nil, fmt.Errorf("sweepexec: checkpoint shard %d/%d invalid", shardIndex, shardCount)
	}
	if totalPoints > math.MaxInt32 {
		return nil, fmt.Errorf("sweepexec: checkpoint point count %d out of range", totalPoints)
	}
	ck.ShardIndex, ck.ShardCount = int(shardIndex), int(shardCount)
	ck.TotalPoints = int(totalPoints)
	ck.Spills = int(spills)
	seen := make(map[Cell]bool, min(int(nCells), 4096))
	ck.Cells = make([]Cell, 0, min(int(nCells), 4096))
	for i := uint32(0); i < nCells && c.err == nil; i++ {
		point := c.u32()
		rep := c.u32()
		if c.err != nil {
			break
		}
		if uint64(point) >= totalPoints {
			return nil, fmt.Errorf("sweepexec: checkpoint cell references point %d of %d", point, totalPoints)
		}
		if point%shardCount != shardIndex {
			return nil, fmt.Errorf("sweepexec: checkpoint cell point %d outside shard %d/%d", point, shardIndex, shardCount)
		}
		if rep > math.MaxInt32 {
			return nil, fmt.Errorf("sweepexec: checkpoint cell replication %d out of range", rep)
		}
		cell := Cell{Point: int(point), Rep: int(rep)}
		if seen[cell] {
			return nil, fmt.Errorf("sweepexec: checkpoint records cell (%d, %d) twice", cell.Point, cell.Rep)
		}
		seen[cell] = true
		ck.Cells = append(ck.Cells, cell)
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("sweepexec: checkpoint has %d trailing bytes", len(body)-c.off)
	}
	return ck, nil
}

// LoadCheckpoint reads dir's checkpoint file.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	f, err := os.Open(filepath.Join(dir, checkpointFile))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// restore merges the checkpoint's covered spill shards into sim (and
// bench, when non-nil) and cross-checks the restored observation set
// against the checkpoint's cell list — a spill/checkpoint disagreement
// means a corrupt directory and must not silently resume.
func restore(dir string, ck *Checkpoint, sim, bench *results.Store) error {
	for n := 0; n < ck.Spills; n++ {
		if err := mergeSpill(spillPath(dir, n, "sim"), sim); err != nil {
			return err
		}
		if bench != nil {
			if err := mergeSpill(spillPath(dir, n, "bench"), bench); err != nil {
				return err
			}
		}
	}
	if got := sim.NumObservations(); got != len(ck.Cells) {
		return fmt.Errorf("sweepexec: checkpoint records %d cells but spills carry %d", len(ck.Cells), got)
	}
	seen := map[Cell]bool{}
	for _, id := range sim.Points() {
		reps, err := sim.ObservedReps(id)
		if err != nil {
			return err
		}
		for _, r := range reps {
			seen[Cell{Point: id, Rep: r}] = true
		}
	}
	for _, cell := range ck.Cells {
		if !seen[cell] {
			return fmt.Errorf("sweepexec: checkpoint cell (%d, %d) missing from spill shards", cell.Point, cell.Rep)
		}
	}
	return nil
}

func mergeSpill(path string, dst *results.Store) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sh, err := results.ReadShard(f)
	if err != nil {
		return fmt.Errorf("sweepexec: %s: %w", path, err)
	}
	if err := dst.Merge(sh); err != nil {
		return fmt.Errorf("sweepexec: %s: %w", path, err)
	}
	return nil
}

func spillPath(dir string, n int, kind string) string {
	return filepath.Join(dir, fmt.Sprintf("spill-%06d.%s.shard", n, kind))
}

// checkpointer accumulates not-yet-durable observations and commits
// them: spill shard(s) first, checkpoint last, each via temp file +
// atomic rename. Callers serialize access (the scheduler lock).
type checkpointer struct {
	dir        string
	ck         Checkpoint
	axes, outs []string
	bench      bool
	tr         *scenario.Tracker

	pendSim   *results.Store
	pendBench *results.Store
	pendCells []Cell
}

func newCheckpointer(dir string, ck Checkpoint, axes, outs []string, bench bool, tr *scenario.Tracker) (*checkpointer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &checkpointer{dir: dir, ck: ck, axes: axes, outs: outs, bench: bench, tr: tr}
	tr.Checkpointed(len(ck.Cells))
	return c, c.resetPending()
}

func (c *checkpointer) resetPending() error {
	var err error
	if c.pendSim, err = results.New(c.axes, c.outs); err != nil {
		return err
	}
	c.pendBench = nil
	if c.bench {
		if c.pendBench, err = results.New(c.axes, scenario.BenchmarkColumns); err != nil {
			return err
		}
	}
	c.pendCells = c.pendCells[:0]
	return nil
}

// pending counts not-yet-committed simulated cells.
func (c *checkpointer) pending() int { return len(c.pendCells) }

// observe stages one simulated cell for the next commit.
func (c *checkpointer) observe(id int, coords []string, reps, rep int, row []float64) error {
	if _, err := c.pendSim.Reps(id); err != nil {
		if err := c.pendSim.AddPoint(id, coords, reps); err != nil {
			return err
		}
	}
	if err := c.pendSim.Observe(id, rep, row...); err != nil {
		return err
	}
	c.pendCells = append(c.pendCells, Cell{Point: id, Rep: rep})
	return nil
}

// benchRow stages one point's benchmark row for the next commit.
func (c *checkpointer) benchRow(id int, coords []string, row []float64) error {
	if _, err := c.pendBench.Reps(id); err != nil {
		if err := c.pendBench.AddPoint(id, coords, 1); err != nil {
			return err
		}
	}
	return c.pendBench.Observe(id, 0, row...)
}

// commit makes the pending observations durable (a no-op when nothing
// is pending): spill rename(s) first, checkpoint rename last, so a
// crash at any instant leaves either the previous durable state or the
// new one — never a checkpoint describing cells it cannot restore.
func (c *checkpointer) commit() error {
	if len(c.pendCells) == 0 && (c.pendBench == nil || c.pendBench.NumObservations() == 0) {
		return nil
	}
	var buf bytes.Buffer
	if err := results.WriteShard(&buf, c.pendSim); err != nil {
		return err
	}
	if err := writeFileAtomic(spillPath(c.dir, c.ck.Spills, "sim"), buf.Bytes()); err != nil {
		return err
	}
	if c.bench {
		buf.Reset()
		if err := results.WriteShard(&buf, c.pendBench); err != nil {
			return err
		}
		if err := writeFileAtomic(spillPath(c.dir, c.ck.Spills, "bench"), buf.Bytes()); err != nil {
			return err
		}
	}
	c.ck.Spills++
	c.ck.Cells = append(c.ck.Cells, c.pendCells...)
	if err := writeFileAtomic(filepath.Join(c.dir, checkpointFile), c.ck.encode()); err != nil {
		return err
	}
	c.tr.Spill()
	c.tr.Checkpointed(len(c.ck.Cells))
	return c.resetPending()
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// cursor is a bounds-checked little-endian reader over a checkpoint
// body; the first overrun latches err and zeroes every later read.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) || c.off+n < c.off {
		c.err = fmt.Errorf("sweepexec: checkpoint truncated at byte %d", c.off)
		return nil
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func putU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func putU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}
