package sweepexec

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
)

func testCheckpoint() *Checkpoint {
	return &Checkpoint{
		SchemaHash:  0x1122334455667788,
		SweepHash:   0x8877665544332211,
		ShardIndex:  1,
		ShardCount:  3,
		TotalPoints: 10,
		Spills:      2,
		Cells:       []Cell{{Point: 1, Rep: 0}, {Point: 1, Rep: 2}, {Point: 4, Rep: 1}},
	}
}

// TestCheckpointRoundTrip: encode → decode is the identity.
func TestCheckpointRoundTrip(t *testing.T) {
	ck := testCheckpoint()
	got, err := ReadCheckpoint(bytes.NewReader(ck.encode()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("round trip changed the checkpoint:\n got %+v\nwant %+v", got, ck)
	}
}

// reseal recomputes a mutated checkpoint's trailing checksum.
func resealCk(raw []byte) []byte {
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], crc32.ChecksumIEEE(raw[:len(raw)-4]))
	return raw
}

// TestCheckpointRejectsCorruption: truncation at any boundary, any
// flipped byte, and resealed semantic corruption (duplicate cells,
// out-of-shard cells, out-of-range points) all error, never panic.
func TestCheckpointRejectsCorruption(t *testing.T) {
	raw := testCheckpoint().encode()

	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(raw); n++ {
			if _, err := ReadCheckpoint(bytes.NewReader(raw[:n])); err == nil {
				t.Fatalf("accepted %d of %d bytes", n, len(raw))
			}
		}
	})
	t.Run("flipped byte", func(t *testing.T) {
		for i := range raw {
			mut := bytes.Clone(raw)
			mut[i] ^= 0x10
			if _, err := ReadCheckpoint(bytes.NewReader(mut)); err == nil {
				t.Fatalf("accepted flipped byte %d", i)
			}
		}
	})

	seal := func(mut func(ck *Checkpoint)) []byte {
		ck := testCheckpoint()
		mut(ck)
		return resealCk(ck.encode())
	}
	t.Run("duplicate cell", func(t *testing.T) {
		raw := seal(func(ck *Checkpoint) { ck.Cells = append(ck.Cells, ck.Cells[0]) })
		if _, err := ReadCheckpoint(bytes.NewReader(raw)); err == nil {
			t.Fatal("accepted duplicate cell")
		}
	})
	t.Run("cell outside shard", func(t *testing.T) {
		raw := seal(func(ck *Checkpoint) { ck.Cells[0].Point = 2 }) // 2 mod 3 != 1
		if _, err := ReadCheckpoint(bytes.NewReader(raw)); err == nil {
			t.Fatal("accepted cell outside its shard")
		}
	})
	t.Run("cell past point count", func(t *testing.T) {
		raw := seal(func(ck *Checkpoint) { ck.Cells[0].Point = 13 })
		if _, err := ReadCheckpoint(bytes.NewReader(raw)); err == nil {
			t.Fatal("accepted cell past the point count")
		}
	})
	t.Run("invalid shard header", func(t *testing.T) {
		raw := seal(func(ck *Checkpoint) { ck.ShardIndex, ck.ShardCount = 3, 3 })
		if _, err := ReadCheckpoint(bytes.NewReader(raw)); err == nil {
			t.Fatal("accepted shardIndex == shardCount")
		}
	})
}

// FuzzReadCheckpoint: no input may panic the decoder, and any accepted
// checkpoint must re-encode to a decodable fixed point.
func FuzzReadCheckpoint(f *testing.F) {
	valid := testCheckpoint().encode()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte("MLFCKPT1"))
	f.Add([]byte{})
	mut := bytes.Clone(valid)
	mut[30] ^= 0xFF
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		enc := ck.encode()
		again, err := ReadCheckpoint(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("accepted checkpoint fails to re-decode: %v", err)
		}
		if !bytes.Equal(enc, again.encode()) {
			t.Fatal("canonical encoding not a fixed point")
		}
	})
}
