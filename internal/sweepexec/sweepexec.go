// Package sweepexec runs parameter sweeps as distributed, resumable
// jobs. It layers three things over scenario's point executor:
//
//   - a streaming scheduler that walks the sweep grid lazily (point
//     ids resolve one at a time, so grids far beyond the old in-memory
//     expansion are fine),
//   - sharding: `-shard i/n` partitions points by id mod n, so n
//     independent processes each run a disjoint slice whose final
//     shard files merge — bit-identically — into the single-process
//     result, and
//   - checkpoint/resume: completed (point, replication) cells spill to
//     binary shard files under a checkpoint directory, and a resumed
//     run restores them and simulates only what is missing.
//
// Every replication row is a pure function of (sweep point,
// replication index) and the result store is merge-order invariant, so
// any execution shape — one process, n shards, or a run crashed and
// resumed at an arbitrary cell boundary — produces byte-identical CSV
// and JSON output.
package sweepexec

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mlfair/internal/results"
	"mlfair/internal/scenario"
)

// Options shape one sweep execution.
type Options struct {
	// Workers is the total worker budget, split between point-level and
	// replication-level parallelism; 0 falls back to the sweep's own
	// replications.workers (and from there to GOMAXPROCS).
	Workers int
	// ShardIndex / ShardCount select this process's point partition
	// (point id mod ShardCount == ShardIndex). A zero ShardCount means
	// unsharded (one process runs everything).
	ShardIndex int
	ShardCount int
	// CheckpointDir, when set, enables durable progress: completed
	// cells spill to shard files there under a crash-safe commit
	// protocol. Empty disables checkpointing.
	CheckpointDir string
	// Resume restores CheckpointDir's previous progress (validating
	// schema, sweep definition, shard and point-count fingerprints) and
	// simulates only the missing cells.
	Resume bool
	// FlushCells is the commit granularity when checkpointing: every N
	// observed cells (plus always at each point's end); 0 commits per
	// point only.
	FlushCells int
	// AfterCell, when non-nil, is called under the scheduler lock after
	// each observed cell (and after any commit that cell triggered)
	// with the number of cells observed so far in this run. An error
	// return aborts the run without a final commit — the crash-injection
	// hook the resume tests drive.
	AfterCell func(done int) error
	// Observe is the optional observability attachment (engine stats
	// sink and progress snapshots, including checkpoint counters).
	Observe *scenario.Observe
}

// Result is one shard's completed sweep slice.
type Result struct {
	Sweep *scenario.Sweep
	// Sim and Bench mirror scenario.SweepResult's stores, restricted to
	// this shard's points (Bench is nil unless the sweep's Benchmark
	// stage is on).
	Sim   *results.Store
	Bench *results.Store
	// ResumedCells counts cells restored from the checkpoint rather
	// than simulated.
	ResumedCells int
}

// Run executes sw's points belonging to this shard, honoring
// checkpoint/resume, and returns the shard's result slice.
func Run(sw *scenario.Sweep, opts Options) (*Result, error) {
	shardIndex, shardCount := opts.ShardIndex, opts.ShardCount
	if shardCount == 0 {
		shardCount = 1
	}
	if shardCount < 1 || shardIndex < 0 || shardIndex >= shardCount {
		return nil, fmt.Errorf("sweepexec: invalid shard %d/%d", shardIndex, shardCount)
	}
	if opts.Resume && opts.CheckpointDir == "" {
		return nil, fmt.Errorf("sweepexec: Resume requires a checkpoint directory")
	}

	exec, err := scenario.NewPointExecutor(sw)
	if err != nil {
		return nil, err
	}
	if opts.Observe != nil && opts.Observe.Stats != nil {
		exec.SetStats(opts.Observe.Stats)
	}
	e, err := sw.Expander()
	if err != nil {
		return nil, err
	}
	total := e.Len()
	axes, outs := sw.AxisFields(), sw.OutputColumns()
	swHash, err := SweepHash(sw)
	if err != nil {
		return nil, err
	}

	sim, err := results.New(axes, outs)
	if err != nil {
		return nil, err
	}
	var bench *results.Store
	if sw.Benchmark {
		if bench, err = results.New(axes, scenario.BenchmarkColumns); err != nil {
			return nil, err
		}
	}

	// This shard's slice of the grid, and its cell total for progress.
	nMine, totalCells := 0, 0
	for id := shardIndex; id < total; id += shardCount {
		reps, err := e.RepsAt(id)
		if err != nil {
			return nil, err
		}
		nMine++
		totalCells += reps
	}

	// Durable state: restore a previous run's cells, or start fresh.
	ck := Checkpoint{
		SchemaHash:  results.SchemaHash(axes, outs),
		SweepHash:   swHash,
		ShardIndex:  shardIndex,
		ShardCount:  shardCount,
		TotalPoints: total,
	}
	resumed := 0
	if opts.CheckpointDir != "" {
		if opts.Resume {
			loaded, err := LoadCheckpoint(opts.CheckpointDir)
			if os.IsNotExist(err) {
				// The previous run died before its first commit; a
				// resume of nothing is a fresh start.
				loaded = nil
			} else if err != nil {
				return nil, err
			}
			if loaded != nil {
				if err := validateResume(loaded, &ck); err != nil {
					return nil, err
				}
				if err := restore(opts.CheckpointDir, loaded, sim, bench); err != nil {
					return nil, err
				}
				ck = *loaded
				resumed = len(ck.Cells)
			}
		} else if _, err := os.Stat(filepath.Join(opts.CheckpointDir, checkpointFile)); err == nil {
			return nil, fmt.Errorf("sweepexec: %s already holds a checkpoint (resume it, or clear the directory)", opts.CheckpointDir)
		}
	}
	budget := opts.Workers
	if budget <= 0 {
		budget = sw.Base.Replications.Workers
	}
	pointWorkers, inner := scenario.SweepWorkerSplit(budget, nMine)
	tr := scenario.NewTracker(opts.Observe, nMine, totalCells, pointWorkers)
	tr.SkipCells(resumed)

	r := &runner{
		exec:  exec,
		e:     e,
		sim:   sim,
		bench: bench,
		inner: inner,
		flush: opts.FlushCells,
		after: opts.AfterCell,
		tr:    tr,
		errs:  map[int]error{},
	}
	if opts.CheckpointDir != "" {
		if r.ck, err = newCheckpointer(opts.CheckpointDir, ck, axes, outs, sw.Benchmark, tr); err != nil {
			return nil, err
		}
	}

	idCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pointWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for id := range idCh {
				tr.PointStart(w)
				err := r.point(id)
				tr.PointEnd(w)
				if err != nil {
					r.mu.Lock()
					r.errs[id] = err
					r.mu.Unlock()
				}
			}
		}(w)
	}
	for id := shardIndex; id < total; id += shardCount {
		r.mu.Lock()
		stop := r.stopErr != nil || len(r.errs) > 0
		r.mu.Unlock()
		if stop {
			break
		}
		idCh <- id
	}
	close(idCh)
	wg.Wait()
	tr.Finish()

	// A crash injection aborts before any error bookkeeping: the run
	// ends with whatever the checkpoint committed, exactly like a kill.
	if r.stopErr != nil {
		return nil, r.stopErr
	}
	if len(r.errs) > 0 {
		first := -1
		for id := range r.errs {
			if first < 0 || id < first {
				first = id
			}
		}
		return nil, r.errs[first]
	}
	return &Result{Sweep: sw, Sim: sim, Bench: bench, ResumedCells: resumed}, nil
}

// validateResume checks a loaded checkpoint against the fingerprints
// of the run about to resume it.
func validateResume(loaded, want *Checkpoint) error {
	switch {
	case loaded.SchemaHash != want.SchemaHash:
		return fmt.Errorf("sweepexec: checkpoint schema hash %016x does not match the sweep's %016x", loaded.SchemaHash, want.SchemaHash)
	case loaded.SweepHash != want.SweepHash:
		return fmt.Errorf("sweepexec: checkpoint was taken under a different sweep definition (hash %016x vs %016x)", loaded.SweepHash, want.SweepHash)
	case loaded.ShardIndex != want.ShardIndex || loaded.ShardCount != want.ShardCount:
		return fmt.Errorf("sweepexec: checkpoint covers shard %d/%d, not %d/%d", loaded.ShardIndex, loaded.ShardCount, want.ShardIndex, want.ShardCount)
	case loaded.TotalPoints != want.TotalPoints:
		return fmt.Errorf("sweepexec: checkpoint covers %d points, sweep expands to %d", loaded.TotalPoints, want.TotalPoints)
	}
	return nil
}

// runner is one Run invocation's shared scheduler state; mu guards
// everything below it.
type runner struct {
	exec  *scenario.PointExecutor
	e     *scenario.Expander
	inner int
	flush int
	after func(int) error
	tr    *scenario.Tracker

	mu      sync.Mutex
	sim     *results.Store
	bench   *results.Store
	ck      *checkpointer
	done    int
	stopErr error
	errs    map[int]error
}

// point executes one sweep point, skipping whatever a resume already
// restored: fully complete points return immediately, partially
// complete ones re-emit only the missing replications (the executor
// re-simulates skipped replications only when the benchmark stage
// needs their receiver rates).
func (r *runner) point(id int) error {
	p, err := r.e.PointAt(id)
	if err != nil {
		return err
	}
	n := p.Spec.Replications.N

	r.mu.Lock()
	if r.stopErr != nil {
		r.mu.Unlock()
		return nil
	}
	var skip []bool
	restored := 0
	if _, err := r.sim.Reps(id); err != nil {
		if err := r.sim.AddPoint(id, p.Coords, n); err != nil {
			r.mu.Unlock()
			return err
		}
	} else {
		reps, err := r.sim.ObservedReps(id)
		if err != nil {
			r.mu.Unlock()
			return err
		}
		if restored = len(reps); restored > 0 {
			skip = make([]bool, n)
			for _, rep := range reps {
				if rep >= n {
					r.mu.Unlock()
					return fmt.Errorf("sweepexec: point %d restored replication %d of %d", id, rep, n)
				}
				skip[rep] = true
			}
		}
	}
	benchDone := false
	if r.bench != nil {
		if _, err := r.bench.Reps(id); err != nil {
			if err := r.bench.AddPoint(id, p.Coords, 1); err != nil {
				r.mu.Unlock()
				return err
			}
		} else if reps, _ := r.bench.ObservedReps(id); len(reps) == 1 {
			benchDone = true
		}
	}
	r.mu.Unlock()

	if restored == n && (r.bench == nil || benchDone) {
		return nil // fully restored from the checkpoint
	}

	c, err := r.exec.Compile(p)
	if err != nil {
		return err
	}
	benchRow, err := r.exec.ExecutePoint(p, c, skip, r.inner, func(rep int, row []float64, events int64) error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.stopErr != nil {
			return r.stopErr
		}
		if err := r.sim.Observe(id, rep, row...); err != nil {
			return err
		}
		if r.ck != nil {
			if err := r.ck.observe(id, p.Coords, n, rep, row); err != nil {
				return err
			}
		}
		r.done++
		r.tr.Cell(events)
		if r.ck != nil && r.flush > 0 && r.ck.pending() >= r.flush {
			if err := r.ck.commit(); err != nil {
				return err
			}
		}
		if r.after != nil {
			if err := r.after(r.done); err != nil {
				r.stopErr = err
				return err
			}
		}
		return nil
	})
	if err != nil {
		r.mu.Lock()
		stopped := r.stopErr != nil
		r.mu.Unlock()
		if stopped {
			return nil // the abort is already recorded globally
		}
		return err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopErr != nil {
		return nil
	}
	if benchRow != nil && !benchDone {
		if err := r.bench.Observe(id, 0, benchRow...); err != nil {
			return err
		}
		if r.ck != nil {
			if err := r.ck.benchRow(id, p.Coords, benchRow); err != nil {
				return err
			}
		}
	}
	if r.ck != nil {
		return r.ck.commit() // point-end flush
	}
	return nil
}
