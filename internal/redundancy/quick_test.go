package redundancy

import (
	"testing"
	"testing/quick"

	"mlfair/internal/netmodel"
)

// sanitizeRates maps fuzz input into (0, 1] receiver rates for a
// unit-rate layer.
func sanitizeRates(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, r := range raw {
		if r != r { // NaN
			continue
		}
		if r < 0 {
			r = -r
		}
		for r > 1 {
			r /= 2
		}
		if r < 0.01 {
			r = 0.01
		}
		out = append(out, r)
	}
	if len(out) > 20 {
		out = out[:20]
	}
	return out
}

// TestQuickRedundancyBounds: 1 <= redundancy <= Λ/max for any rate set.
func TestQuickRedundancyBounds(t *testing.T) {
	f := func(raw []float64) bool {
		rates := sanitizeRates(raw)
		if len(rates) == 0 {
			return true
		}
		r := SingleLayer(rates, 1)
		return r >= 1-netmodel.Eps && r <= UpperBound(rates, 1)+netmodel.Eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRedundancyMonotoneInReceivers: adding a receiver with a rate
// no larger than the current maximum never decreases E[U] and never
// decreases redundancy.
func TestQuickRedundancyMonotoneInReceivers(t *testing.T) {
	f := func(raw []float64, extraRaw float64) bool {
		rates := sanitizeRates(raw)
		if len(rates) == 0 {
			return true
		}
		extra := sanitizeRates([]float64{extraRaw})
		if len(extra) == 0 {
			return true
		}
		// Clamp the newcomer below the current max so max(rates) is
		// unchanged and redundancy must not drop.
		maxR := 0.0
		for _, r := range rates {
			if r > maxR {
				maxR = r
			}
		}
		add := extra[0]
		if add > maxR {
			add = maxR
		}
		before := SingleLayer(rates, 1)
		after := SingleLayer(append(append([]float64{}, rates...), add), 1)
		return after >= before-netmodel.Eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMultiLayerNeverAboveSingle: the Appendix E reconstruction —
// splitting the same total rate across layers never increases
// redundancy, for arbitrary rate populations.
func TestQuickMultiLayerNeverAboveSingle(t *testing.T) {
	scheme := []float64{0.25, 0.25, 0.5}
	f := func(raw []float64) bool {
		rates := sanitizeRates(raw)
		if len(rates) == 0 {
			return true
		}
		return MultiLayer(rates, scheme) <= SingleLayer(rates, 1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLayerDemandsPartition: greedy demands sum to min(rate, total
// scheme rate) and never exceed per-layer rates.
func TestQuickLayerDemandsPartition(t *testing.T) {
	scheme := []float64{1, 1, 2, 4}
	f := func(rateRaw float64) bool {
		rate := rateRaw
		if rate != rate || rate < 0 {
			rate = -rate
		}
		if rate != rate {
			rate = 1
		}
		for rate > 100 {
			rate /= 8
		}
		d := LayerDemands(rate, scheme)
		sum := 0.0
		for l, x := range d {
			if x < -netmodel.Eps || x > scheme[l]+netmodel.Eps {
				return false
			}
			sum += x
		}
		want := rate
		if want > 8 {
			want = 8
		}
		return netmodel.Eq(sum, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
