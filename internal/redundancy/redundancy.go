// Package redundancy implements the paper's Definition 3 redundancy
// measure and its analytical consequences: the Appendix B expected link
// rate under uncoordinated random joins (the source of Figure 5), the
// multi-layer extension (technical-report Appendix E, reconstructed), and
// the Section 3.1 closed form for the impact of redundancy on constrained
// fair rates (Figure 6).
//
// Redundancy of link l_j for session S_i is
//
//	u_{i,j} / max{a_{i,k} : r_{i,k} ∈ R_{i,j}}
//
// the ratio of bandwidth the session actually uses on the link to the
// theoretical minimum needed to deliver the downstream receivers' rates.
// A session is "efficient" on a link when its redundancy is 1.
package redundancy

import (
	"math"
	"math/rand/v2"

	"mlfair/internal/netmodel"
)

// ExpectedLinkRate returns E[U_{i,j}] for a single layer of transmission
// rate layerRate crossed by receivers that each independently pick their
// packets uniformly at random within a quantum (Appendix B):
//
//	E[U] = Λ (1 - Π_t (1 - a_t/Λ))
//
// rates must satisfy 0 <= a_t <= layerRate; layerRate must be positive.
func ExpectedLinkRate(rates []float64, layerRate float64) float64 {
	if layerRate <= 0 {
		panic("redundancy: non-positive layer rate")
	}
	miss := 1.0
	for _, a := range rates {
		if a < 0 || a > layerRate+netmodel.Eps {
			panic("redundancy: receiver rate outside [0, layer rate]")
		}
		miss *= 1 - a/layerRate
	}
	return layerRate * (1 - miss)
}

// SingleLayer returns the redundancy of a single random-join layer:
// ExpectedLinkRate(rates, layerRate) / max(rates). It panics if all rates
// are zero (redundancy is undefined with no downstream demand).
func SingleLayer(rates []float64, layerRate float64) float64 {
	m := maxRate(rates)
	if m == 0 {
		panic("redundancy: undefined for all-zero rates")
	}
	return ExpectedLinkRate(rates, layerRate) / m
}

// UpperBound returns the paper's asymptotic bound Λ/max(rates): the
// redundancy a single layer approaches as the number of receivers grows.
func UpperBound(rates []float64, layerRate float64) float64 {
	m := maxRate(rates)
	if m == 0 {
		panic("redundancy: undefined for all-zero rates")
	}
	return layerRate / m
}

func maxRate(rates []float64) float64 {
	m := 0.0
	for _, a := range rates {
		if a > m {
			m = a
		}
	}
	return m
}

// MonteCarloLinkRate estimates E[U_{i,j}] by direct simulation of the
// Appendix B experiment: each quantum transmits packetsPerQuantum packets
// on the layer; receiver t picks round(a_t/Λ · P) of them uniformly at
// random; a packet crosses the link if any receiver picked it. The
// estimate is the average crossing rate over quanta, scaled to layer
// units. It cross-checks ExpectedLinkRate.
func MonteCarloLinkRate(rates []float64, layerRate float64, packetsPerQuantum, quanta int, rng *rand.Rand) float64 {
	if packetsPerQuantum <= 0 || quanta <= 0 {
		panic("redundancy: non-positive Monte Carlo size")
	}
	picked := make([]bool, packetsPerQuantum)
	perm := make([]int, packetsPerQuantum)
	for i := range perm {
		perm[i] = i
	}
	total := 0
	for q := 0; q < quanta; q++ {
		for i := range picked {
			picked[i] = false
		}
		for _, a := range rates {
			need := int(math.Round(a / layerRate * float64(packetsPerQuantum)))
			// Partial Fisher-Yates: choose 'need' distinct packets.
			for i := 0; i < need; i++ {
				j := i + rng.IntN(packetsPerQuantum-i)
				perm[i], perm[j] = perm[j], perm[i]
				picked[perm[i]] = true
			}
		}
		for _, p := range picked {
			if p {
				total++
			}
		}
	}
	return layerRate * float64(total) / float64(packetsPerQuantum*quanta)
}

// LayerDemands splits a receiver's aggregate rate greedily across a
// cumulative layer scheme: full lower layers, a partial top layer. It is
// the technical report's Appendix E receiver model.
func LayerDemands(rate float64, layerRates []float64) []float64 {
	d := make([]float64, len(layerRates))
	remaining := rate
	for l, lr := range layerRates {
		take := math.Min(remaining, lr)
		if take < 0 {
			take = 0
		}
		d[l] = take
		remaining -= take
	}
	return d
}

// MultiLayerExpectedLinkRate returns the expected total link usage when
// receivers with the given aggregate rates subscribe greedily to a
// multi-layer scheme (layerRates are per-layer, not cumulative) and pick
// packets at random within each partially-used layer. A layer fully
// demanded by some receiver is fully used (deterministically).
func MultiLayerExpectedLinkRate(rates []float64, layerRates []float64) float64 {
	total := 0.0
	for l, lr := range layerRates {
		perLayer := make([]float64, len(rates))
		for t, a := range rates {
			perLayer[t] = LayerDemands(a, layerRates)[l]
		}
		if lr > 0 {
			total += ExpectedLinkRate(perLayer, lr)
		}
	}
	return total
}

// MultiLayer returns the redundancy of a multi-layer random-join scheme.
func MultiLayer(rates []float64, layerRates []float64) float64 {
	m := maxRate(rates)
	if m == 0 {
		panic("redundancy: undefined for all-zero rates")
	}
	return MultiLayerExpectedLinkRate(rates, layerRates) / m
}

// ConstrainedFairRate is the Section 3.1 scenario: n sessions constrained
// by one link of capacity c, m of them multi-rate with redundancy v and
// the rest efficient. All receivers' max-min fair rates are
//
//	c / ((n-m) + m·v)
func ConstrainedFairRate(c float64, n, m int, v float64) float64 {
	if n <= 0 || m < 0 || m > n {
		panic("redundancy: need 0 <= m <= n, n > 0")
	}
	if v < 1 {
		panic("redundancy: redundancy below 1")
	}
	return c / (float64(n-m) + float64(m)*v)
}

// NormalizedFairRate is ConstrainedFairRate normalized by the efficient
// fair share c/n, as plotted in Figure 6:
//
//	1 / ((1-β) + β·v),  β = m/n
func NormalizedFairRate(beta, v float64) float64 {
	if beta < 0 || beta > 1 {
		panic("redundancy: β must be in [0,1]")
	}
	if v < 1 {
		panic("redundancy: redundancy below 1")
	}
	return 1 / ((1 - beta) + beta*v)
}

// OfAllocation measures Definition 3 on an allocation: session i's
// redundancy on link j, u_{i,j} / max downstream rate. The second return
// is false when the session has no receiver on the link or all downstream
// rates are zero.
func OfAllocation(a *netmodel.Allocation, i, j int) (float64, bool) {
	var rates []float64
	for _, sr := range a.Network().OnLink(j) {
		if sr.Session != i {
			continue
		}
		for _, k := range sr.Receivers {
			rates = append(rates, a.Rate(i, k))
		}
	}
	m := maxRate(rates)
	if len(rates) == 0 || m == 0 {
		return 0, false
	}
	return a.SessionLinkRate(i, j) / m, true
}
