package redundancy_test

import (
	"fmt"

	"mlfair/internal/redundancy"
)

// ExampleExpectedLinkRate evaluates the Appendix B formula: two
// receivers each taking half the layer's packets at random use 75% of
// the layer on a shared link.
func ExampleExpectedLinkRate() {
	fmt.Println(redundancy.ExpectedLinkRate([]float64{0.5, 0.5}, 1))
	// Output: 0.75
}

// ExampleSingleLayer shows the Figure 5 "All 0.5" point at two
// receivers: E[U]/max = 0.75/0.5.
func ExampleSingleLayer() {
	fmt.Println(redundancy.SingleLayer([]float64{0.5, 0.5}, 1))
	// Output: 1.5
}

// ExampleNormalizedFairRate reproduces a Figure 6 point: with all
// sessions multi-rate (β=1) at redundancy 2, fair rates halve.
func ExampleNormalizedFairRate() {
	fmt.Println(redundancy.NormalizedFairRate(1, 2))
	// Output: 0.5
}
