package redundancy

import (
	"math"
	"math/rand/v2"
	"testing"

	"mlfair/internal/netmodel"
	"mlfair/internal/topology"
)

func TestExpectedLinkRateBasics(t *testing.T) {
	// Single receiver: E[U] = its own rate (no redundancy possible).
	if got := ExpectedLinkRate([]float64{0.3}, 1); !netmodel.Eq(got, 0.3) {
		t.Fatalf("single receiver E[U] = %v, want 0.3", got)
	}
	// Receiver needing the whole layer forces full usage.
	if got := ExpectedLinkRate([]float64{1, 0.2}, 1); !netmodel.Eq(got, 1) {
		t.Fatalf("full-rate receiver E[U] = %v, want 1", got)
	}
	// Two receivers at 0.5: E[U] = 1-(0.5)^2 = 0.75.
	if got := ExpectedLinkRate([]float64{0.5, 0.5}, 1); !netmodel.Eq(got, 0.75) {
		t.Fatalf("E[U] = %v, want 0.75", got)
	}
	// No receivers: zero usage.
	if got := ExpectedLinkRate(nil, 1); got != 0 {
		t.Fatalf("empty E[U] = %v, want 0", got)
	}
	// Scaling the layer rate scales the absolute usage.
	if got := ExpectedLinkRate([]float64{1, 1}, 2); !netmodel.Eq(got, 1.5) {
		t.Fatalf("Λ=2 E[U] = %v, want 1.5", got)
	}
}

func TestExpectedLinkRatePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero layer rate": func() { ExpectedLinkRate([]float64{0.5}, 0) },
		"rate above Λ":    func() { ExpectedLinkRate([]float64{2}, 1) },
		"negative rate":   func() { ExpectedLinkRate([]float64{-0.1}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

// TestFigure5Shape verifies the qualitative findings the paper draws from
// Figure 5.
func TestFigure5Shape(t *testing.T) {
	allSame := func(z float64, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = z
		}
		return v
	}

	// (1) Redundancy grows with the receiver count.
	prev := 0.0
	for _, n := range []int{1, 2, 5, 10, 50, 100} {
		r := SingleLayer(allSame(0.1, n), 1)
		if r < prev {
			t.Fatalf("redundancy decreased with receivers: %v -> %v at n=%d", prev, r, n)
		}
		prev = r
	}

	// (2) It approaches but never exceeds Λ/max = 10 for "All 0.1".
	r100 := SingleLayer(allSame(0.1, 100), 1)
	if r100 > UpperBound(allSame(0.1, 100), 1)+netmodel.Eps {
		t.Fatalf("redundancy %v exceeds bound", r100)
	}
	if r100 < 9.9 {
		t.Fatalf("All-0.1 redundancy at 100 receivers = %v, want near 10", r100)
	}

	// (3) One receiver = 1 (efficient).
	if r := SingleLayer([]float64{0.1}, 1); !netmodel.Eq(r, 1) {
		t.Fatalf("single receiver redundancy = %v, want 1", r)
	}

	// (4) Equal rates maximize redundancy for a fixed efficient link rate:
	// "1st .5 rest .1" stays below "All 0.5" pointwise.
	for _, n := range []int{2, 5, 20, 100} {
		mixed := allSame(0.1, n)
		mixed[0] = 0.5
		if SingleLayer(mixed, 1) > SingleLayer(allSame(0.5, n), 1)+netmodel.Eps {
			t.Fatalf("mixed rates exceed equal rates at n=%d", n)
		}
	}

	// (5) "1st .9 rest .1" stays close to 1 (bound 1/0.9 ≈ 1.11).
	mixed := allSame(0.1, 100)
	mixed[0] = 0.9
	if r := SingleLayer(mixed, 1); r > 1.0/0.9+netmodel.Eps {
		t.Fatalf("1st-.9 redundancy = %v, exceeds 1.11 bound", r)
	}
}

// TestMonteCarloMatchesClosedForm cross-checks Appendix B against
// direct simulation.
func TestMonteCarloMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	cases := [][]float64{
		{0.5, 0.5},
		{0.1, 0.1, 0.1, 0.1},
		{0.9, 0.1},
		{0.25, 0.5, 0.75},
	}
	for _, rates := range cases {
		want := ExpectedLinkRate(rates, 1)
		got := MonteCarloLinkRate(rates, 1, 1000, 400, rng)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("rates %v: MC=%v closed=%v", rates, got, want)
		}
	}
}

func TestMonteCarloPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero quanta accepted")
		}
	}()
	MonteCarloLinkRate([]float64{0.5}, 1, 0, 0, rand.New(rand.NewPCG(1, 1)))
}

func TestLayerDemands(t *testing.T) {
	// Layers 1,1,2 (cumulative 1,2,4); rate 2.5 -> demands (1,1,0.5).
	d := LayerDemands(2.5, []float64{1, 1, 2})
	want := []float64{1, 1, 0.5}
	for i := range want {
		if !netmodel.Eq(d[i], want[i]) {
			t.Fatalf("LayerDemands = %v, want %v", d, want)
		}
	}
	// Rate exceeding the scheme saturates all layers.
	d = LayerDemands(9, []float64{1, 1, 2})
	if !netmodel.Eq(d[0]+d[1]+d[2], 4) {
		t.Fatalf("saturated demands = %v", d)
	}
	// Zero rate.
	for _, x := range LayerDemands(0, []float64{1, 2}) {
		if x != 0 {
			t.Fatal("zero rate produced demand")
		}
	}
}

// TestMultiLayerNeverWorse: adding layers never increases redundancy
// beyond the single-layer scheme of the same total rate (the technical
// report's Appendix E headline).
func TestMultiLayerNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 54))
	schemes := [][]float64{
		{0.25, 0.25, 0.25, 0.25},
		{0.5, 0.5},
		{0.1, 0.2, 0.3, 0.4},
		{0.5, 0.25, 0.125, 0.125},
	}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.IntN(20)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 0.05 + 0.95*rng.Float64()
		}
		single := SingleLayer(rates, 1)
		for _, scheme := range schemes {
			multi := MultiLayer(rates, scheme)
			if multi > single+1e-9 {
				t.Fatalf("multi-layer %v redundancy %v > single %v for rates %v",
					scheme, multi, single, rates)
			}
		}
	}
}

// TestMultiLayerSubstantialReduction: the reduction can be large — with
// many receivers at matched layer boundaries, multi-layer is near 1 while
// single-layer is near the bound.
func TestMultiLayerSubstantialReduction(t *testing.T) {
	rates := make([]float64, 100)
	for i := range rates {
		rates[i] = 0.25
	}
	single := SingleLayer(rates, 1)
	multi := MultiLayer(rates, []float64{0.25, 0.25, 0.25, 0.25})
	if !netmodel.Eq(multi, 1) {
		t.Fatalf("boundary-matched multi-layer redundancy = %v, want 1", multi)
	}
	if single < 3 {
		t.Fatalf("single-layer redundancy = %v, want near 4", single)
	}
}

// TestFigure6Formula checks the Section 3.1 closed form and the shape of
// Figure 6.
func TestFigure6Formula(t *testing.T) {
	// v=1 is the efficient baseline: normalized rate 1 at any β.
	for _, beta := range []float64{0, 0.01, 0.1, 1} {
		if got := NormalizedFairRate(beta, 1); !netmodel.Eq(got, 1) {
			t.Fatalf("NormalizedFairRate(%v, 1) = %v, want 1", beta, got)
		}
	}
	// β=1: normalized rate is 1/v.
	if got := NormalizedFairRate(1, 4); !netmodel.Eq(got, 0.25) {
		t.Fatalf("NormalizedFairRate(1,4) = %v, want 0.25", got)
	}
	// Monotone decreasing in v, and higher β hurts more.
	for _, beta := range []float64{0.01, 0.05, 0.1, 1} {
		prev := math.Inf(1)
		for v := 1.0; v <= 10; v++ {
			r := NormalizedFairRate(beta, v)
			if r > prev {
				t.Fatalf("not decreasing at β=%v v=%v", beta, v)
			}
			prev = r
		}
	}
	if NormalizedFairRate(0.05, 10) < NormalizedFairRate(0.5, 10) {
		t.Fatal("smaller multi-rate share should suffer less")
	}
	// Absolute form agrees with the normalized one.
	c, n, m, v := 30.0, 10, 3, 2.5
	abs := ConstrainedFairRate(c, n, m, v)
	norm := NormalizedFairRate(float64(m)/float64(n), v)
	if !netmodel.Eq(abs, norm*c/float64(n)) {
		t.Fatalf("forms disagree: %v vs %v", abs, norm*c/float64(n))
	}
}

func TestFormulaPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"m > n":        func() { ConstrainedFairRate(1, 2, 3, 1) },
		"v < 1":        func() { ConstrainedFairRate(1, 2, 1, 0.5) },
		"β > 1":        func() { NormalizedFairRate(2, 1) },
		"norm v < 1":   func() { NormalizedFairRate(0.5, 0.2) },
		"zero rates":   func() { SingleLayer([]float64{0, 0}, 1) },
		"bound zeros":  func() { UpperBound([]float64{0}, 1) },
		"ml zero rate": func() { MultiLayer([]float64{0}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

// TestOfAllocationFigure4: the measured Definition 3 redundancy on the
// Figure 4 allocation is 2 on the shared link and 1 elsewhere.
func TestOfAllocationFigure4(t *testing.T) {
	f := topology.Figure4(2)
	a, err := netmodel.AllocationFromRates(f.Network, [][]float64{{2, 2, 2}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := OfAllocation(a, 0, f.LinkIndex("l4")); !ok || !netmodel.Eq(r, 2) {
		t.Fatalf("redundancy on l4 = %v (%v), want 2", r, ok)
	}
	if r, ok := OfAllocation(a, 0, f.LinkIndex("l1")); !ok || !netmodel.Eq(r, 1) {
		t.Fatalf("redundancy on l1 = %v (%v), want 1", r, ok)
	}
	// Session 2 is efficient everywhere it appears.
	if r, ok := OfAllocation(a, 1, f.LinkIndex("l4")); !ok || !netmodel.Eq(r, 1) {
		t.Fatalf("S2 redundancy = %v (%v), want 1", r, ok)
	}
	// No receivers of S2 on l2.
	if _, ok := OfAllocation(a, 1, f.LinkIndex("l2")); ok {
		t.Fatal("OfAllocation should report absence")
	}
}
