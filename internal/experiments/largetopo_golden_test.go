package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// largeTopoGoldenOptions pins the large-topology scenarios to a fixed,
// CI-sized configuration. Everything downstream — topology generation,
// replication seeds, the engine's event order — is a pure function of
// these values, so the output is byte-stable across platforms (Go
// float64 arithmetic and formatting are deterministic).
func largeTopoGoldenOptions() NetsimOptions {
	return NetsimOptions{Packets: 20000, Trials: 4, Workers: 3, Seed: 20260730}
}

// TestLargeTopologyGolden locks the scale-free and fat-tree scenario
// outputs byte for byte, the netsim analogue of TestAnalyticGolden: it
// pins the generated topologies, the engine's determinism contract
// (including worker-count independence — Workers is deliberately a
// divisor-unfriendly 3), and the streamed aggregation. Regenerate after
// an intentional engine or scenario change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestLargeTopologyGolden
func TestLargeTopologyGolden(t *testing.T) {
	var b strings.Builder
	o := largeTopoGoldenOptions()
	if err := NetsimScaleFree(&b, o); err != nil {
		t.Fatal(err)
	}
	if err := NetsimFatTree(&b, o); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", "largetopo.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("large-topology output drifted from golden file.\nFirst difference near byte %d.\nRun UPDATE_GOLDEN=1 go test ./internal/experiments -run TestLargeTopologyGolden if intentional.",
			firstDiff(got, string(want)))
	}
}
