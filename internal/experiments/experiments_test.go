package experiments

import (
	"strings"
	"testing"

	"mlfair/internal/protocol"
)

func capture(t *testing.T, f func(w *strings.Builder) error) string {
	t.Helper()
	var b strings.Builder
	if err := f(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestFigure1Driver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return Figure1(b) })
	for _, want := range []string{
		"Figure 1", "S1[M]: 1 | S2[M]: 1 2 | S3[M]: 1 2",
		"l3", "l4", "true",
		"per-session-link: holds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure2Driver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return Figure2(b) })
	if !strings.Contains(out, "S1[S]: 2 2 2 | S2[M]: 3") {
		t.Errorf("single-rate allocation missing:\n%s", out)
	}
	if !strings.Contains(out, "S1[M]: 2.5 2 3 | S2[M]: 2.5") {
		t.Errorf("multi-rate allocation missing:\n%s", out)
	}
	if !strings.Contains(out, "FAILS") {
		t.Error("single-rate failures not reported")
	}
}

func TestFigure3Driver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return Figure3(b) })
	for _, want := range []string{"Figure 3(a)", "Figure 3(b)", "r3,2", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// 3(a) numbers.
	for _, want := range []string{"8", "6", "3", "5"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing rate %q", want)
		}
	}
}

func TestFigure4Driver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return Figure4(b) })
	if !strings.Contains(out, "redundancy of S1 on l4: 2") {
		t.Errorf("redundancy not reported:\n%s", out)
	}
	if !strings.Contains(out, "per-session-link: FAILS") {
		t.Error("property failure not reported")
	}
}

func TestSection3Driver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return Section3Example(b) })
	if !strings.Contains(out, "exists: false") {
		t.Errorf("nonexistence not reported:\n%s", out)
	}
	// All seven feasible rows present, none max-min fair.
	if got := strings.Count(out, "false"); got < 7 {
		t.Errorf("expected 7+ 'false' cells, got %d:\n%s", got, out)
	}
}

func TestFigure5Driver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return Figure5(b) })
	for _, want := range []string{"All 0.1", "All 0.5", "1st .5 rest .1", "All 0.9", "1st .9 rest .1", "10"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFigure6Driver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return Figure6(b) })
	for _, want := range []string{"m/n=0.01", "m/n=1", "0.5263"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestMarkovAnalysisDriver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return MarkovAnalysis(b) })
	for _, want := range []string{"Coordinated", "Uncoordinated", "Deterministic", "0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFigure8PointAndQuickPanel(t *testing.T) {
	o := Figure8Options{Receivers: 10, Packets: 4000, Trials: 2, Seed: 3}
	s, err := Figure8Point(protocol.Coordinated, 0.001, 0.02, o)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean < 0.9 || s.Mean > 6 {
		t.Fatalf("implausible redundancy %v", s.Mean)
	}
	var b strings.Builder
	if err := Figure8(&b, 0.001, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 8 (shared loss 0.001)") {
		t.Errorf("panel title missing:\n%s", b.String())
	}
}

func TestOptionsPresets(t *testing.T) {
	p := PaperFigure8Options()
	if p.Receivers != 100 || p.Packets != 100000 || p.Trials != 30 {
		t.Fatalf("paper options = %+v", p)
	}
	q := QuickFigure8Options()
	if q.Packets >= p.Packets || q.Trials >= p.Trials {
		t.Fatal("quick options not smaller than paper options")
	}
}

func TestRateHelpers(t *testing.T) {
	u := uniformRates(0.3)(4)
	for _, x := range u {
		if x != 0.3 {
			t.Fatal("uniformRates wrong")
		}
	}
	f := firstRest(0.9, 0.1)(3)
	if f[0] != 0.9 || f[1] != 0.1 || f[2] != 0.1 {
		t.Fatalf("firstRest = %v", f)
	}
}
