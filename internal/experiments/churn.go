package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"mlfair/internal/dynamics"
	"mlfair/internal/stats"
	"mlfair/internal/topology"
	"mlfair/internal/trace"
)

// Churn quantifies the Section 2.5 / Section 5 observation at scale:
// replaying long random arrival/departure/removal timelines, how often
// does an event that *frees* resources (a departure or removal)
// nevertheless lower some surviving receiver's max-min fair rate? The
// Figure 3 networks show it can happen; this measures how often.
func Churn(w io.Writer, seed uint64) error {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	opts := topology.DefaultRandomOptions()
	opts.Sessions = 6

	type agg struct {
		events          int
		withLosers      int
		winners, losers stats.Accumulator
		maxSwing        stats.Accumulator
	}
	byKind := map[dynamics.EventKind]*agg{}
	for _, k := range []dynamics.EventKind{dynamics.SessionArrival, dynamics.SessionDeparture, dynamics.ReceiverRemoval} {
		byKind[k] = &agg{}
	}

	const timelines = 20
	for tli := 0; tli < timelines; tli++ {
		pop := topology.RandomNetwork(rng, opts)
		active := make([]bool, pop.NumSessions())
		removed := make([]int, pop.NumSessions())
		var events []dynamics.Event
		for step := 0; step < 40; step++ {
			i := rng.IntN(pop.NumSessions())
			switch {
			case !active[i]:
				events = append(events, dynamics.Event{Kind: dynamics.SessionArrival, Session: i})
				active[i] = true
				removed[i] = 0
			case rng.IntN(3) == 0 && pop.Session(i).NumReceivers()-removed[i] > 1:
				events = append(events, dynamics.Event{
					Kind: dynamics.ReceiverRemoval, Session: i,
					Receiver: pop.Session(i).NumReceivers() - 1 - removed[i],
				})
				removed[i]++
			default:
				events = append(events, dynamics.Event{Kind: dynamics.SessionDeparture, Session: i})
				active[i] = false
			}
		}
		reps, err := dynamics.Replay(&dynamics.Timeline{Population: pop, Events: events})
		if err != nil {
			return err
		}
		for _, r := range reps {
			a := byKind[r.Event.Kind]
			a.events++
			if r.Losers > 0 {
				a.withLosers++
			}
			a.winners.Add(float64(r.Winners))
			a.losers.Add(float64(r.Losers))
			a.maxSwing.Add(r.MaxSwing)
		}
	}

	t := trace.NewTable(
		"Extension: session churn — effect of events on surviving receivers' max-min fair rates",
		"event", "count", "mean winners", "mean losers", "events with losers", "mean max swing")
	for _, k := range []dynamics.EventKind{dynamics.SessionArrival, dynamics.SessionDeparture, dynamics.ReceiverRemoval} {
		a := byKind[k]
		frac := 0.0
		if a.events > 0 {
			frac = float64(a.withLosers) / float64(a.events)
		}
		t.AddRow(k.String(), fmt.Sprintf("%d", a.events),
			trace.Float(a.winners.Mean()), trace.Float(a.losers.Mean()),
			fmt.Sprintf("%.0f%%", frac*100), trace.Float(a.maxSwing.Mean()))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "departures and removals free capacity, yet a fraction of them still")
	fmt.Fprintln(w, "lower some surviving receiver's rate — the paper's §2.5 non-monotonicity")
	fmt.Fprintln(w)
	return nil
}
