package experiments

import (
	"fmt"
	"io"

	"mlfair/internal/protocol"
	"mlfair/internal/stats"
	"mlfair/internal/trace"
	"mlfair/internal/treesim"
)

// TreeRedundancy measures Definition 3 on every level of a binary
// distribution tree: per-link redundancy versus depth, for the three
// protocols. Links near the root serve more receivers and accumulate
// more uncoordination — the protocol-dynamics analogue of Figure 5's
// receiver-count effect, and the generalization of Figure 8 from the
// star's single shared link to a whole tree.
func TreeRedundancy(w io.Writer, o ExtensionOptions) error {
	const depth = 4
	const linkLoss = 0.02
	kinds := protocol.Kinds()
	series := make([]trace.Series, len(kinds))
	xs := make([]float64, depth)
	for d := 0; d < depth; d++ {
		xs[d] = float64(d + 1)
	}
	for ki, k := range kinds {
		byDepth := make([]*stats.Accumulator, depth+1)
		for d := range byDepth {
			byDepth[d] = &stats.Accumulator{}
		}
		for trial := 0; trial < o.Trials; trial++ {
			res, err := treesim.Run(treesim.Config{
				Tree: treesim.Binary(depth, linkLoss), Layers: 8,
				Protocol: k, Packets: o.Packets * 2, Seed: o.Seed + uint64(trial),
			})
			if err != nil {
				return err
			}
			for _, ls := range res.Links {
				byDepth[ls.Depth].Add(ls.Redundancy)
			}
		}
		ys := make([]float64, depth)
		for d := 1; d <= depth; d++ {
			ys[d-1] = byDepth[d].Mean()
		}
		series[ki] = trace.Series{Name: k.String(), Y: ys}
	}
	if err := trace.WriteSeries(w,
		fmt.Sprintf("Extension: per-link redundancy vs tree depth (binary tree, depth %d, link loss %g)",
			depth, linkLoss),
		"depth", xs, series); err != nil {
		return err
	}
	fmt.Fprintln(w, "depth 1 = root link (16 downstream receivers), depth 4 = leaf links (1)")
	fmt.Fprintln(w)
	return nil
}
