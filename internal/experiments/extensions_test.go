package experiments

import (
	"strings"
	"testing"
)

func tinyExtOptions() ExtensionOptions {
	return ExtensionOptions{Receivers: 8, Packets: 4000, Trials: 2, Seed: 7}
}

func TestWeightedFairnessDriver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return WeightedFairness(b) })
	for _, want := range []string{"weighted", "rate/weight", "r4,2", "0.3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// All unpinned receivers share the normalized level 0.3 (12 / 40 total weight).
	if got := strings.Count(out, "0.3"); got < 5 {
		t.Errorf("expected five 0.3 normalized rates, found %d:\n%s", got, out)
	}
}

func TestLeaveLatencyDriver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return LeaveLatency(b, tinyExtOptions()) })
	for _, want := range []string{"leave latency", "Coordinated", "16"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestPriorityDropDriver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return PriorityDrop(b, tinyExtOptions()) })
	for _, want := range []string{"priority dropping", "uniform", "change", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultExtensionOptions(t *testing.T) {
	o := DefaultExtensionOptions()
	if o.Receivers < 10 || o.Trials < 2 || o.Packets < 10000 {
		t.Fatalf("implausible defaults %+v", o)
	}
}

func TestConvergenceDriver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return Convergence(b, tinyExtOptions()) })
	for _, want := range []string{"Convergence", "fair rate", "r1,1", "r2,1", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestTreeRedundancyDriver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return TreeRedundancy(b, tinyExtOptions()) })
	for _, want := range []string{"tree depth", "depth", "Coordinated", "leaf links"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestChurnDriver(t *testing.T) {
	out := capture(t, func(b *strings.Builder) error { return Churn(b, 7) })
	for _, want := range []string{"session churn", "arrival", "departure", "receiver-removal", "events with losers"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}
