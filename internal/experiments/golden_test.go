package experiments

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// analyticOutput concatenates every fully deterministic driver's output
// (no simulation, no RNG) — the regression anchor for the paper's
// analytic artifacts.
func analyticOutput(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for _, f := range []func(io.Writer) error{
		Figure1, Figure2, Figure3, Figure4, Section3Example, Figure5, Figure6, MarkovAnalysis,
	} {
		if err := f(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestAnalyticGolden locks the analytic figure outputs byte for byte.
// Regenerate after an intentional change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestAnalyticGolden
func TestAnalyticGolden(t *testing.T) {
	got := analyticOutput(t)
	path := filepath.Join("testdata", "analytic.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("analytic output drifted from golden file.\nFirst difference near byte %d.\nRun UPDATE_GOLDEN=1 go test ./internal/experiments -run TestAnalyticGolden if intentional.",
			firstDiff(got, string(want)))
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
