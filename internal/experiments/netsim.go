package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"mlfair/internal/netmodel"
	"mlfair/internal/netsim"
	"mlfair/internal/protocol"
	"mlfair/internal/sim"
	"mlfair/internal/stats"
	"mlfair/internal/topology"
	"mlfair/internal/trace"
	"mlfair/internal/treesim"
)

// NetsimOptions sizes the general-engine scenario drivers.
type NetsimOptions struct {
	Receivers int
	Packets   int
	Trials    int
	// Workers bounds the replication pool (0 = GOMAXPROCS).
	Workers int
	Seed    uint64
}

// DefaultNetsimOptions resolves the scenario effects in a few seconds.
func DefaultNetsimOptions() NetsimOptions {
	return NetsimOptions{Receivers: 50, Packets: 50000, Trials: 8, Seed: 777}
}

// NetsimStar runs the paper's modified star on the general engine next
// to the specialized sim package — the special-case cross-check as a
// readable artifact: both columns must agree within confidence bounds.
func NetsimStar(w io.Writer, o NetsimOptions) error {
	t := trace.NewTable(
		fmt.Sprintf("netsim vs sim on the modified star: %d receivers, shared loss 1e-4, independent loss 0.04, %d packets, %d trials",
			o.Receivers, o.Packets, o.Trials),
		"protocol", "netsim redundancy", "ci95", "sim redundancy", "ci95")
	for _, kind := range protocol.Kinds() {
		simCfg := sim.Config{
			Layers: 8, Receivers: o.Receivers, SharedLoss: 0.0001, IndependentLoss: 0.04,
			Protocol: kind, Packets: o.Packets, Seed: o.Seed,
		}
		reds, err := sim.RunReplicated(simCfg, o.Trials)
		if err != nil {
			return err
		}
		simS := stats.Summarize(reds)
		cfg, err := netsim.FromSim(simCfg)
		if err != nil {
			return err
		}
		sums, err := netsim.SummarizeReplications(cfg, o.Trials, o.Workers, netsim.LinkRedundancyMetric(0, 0))
		if err != nil {
			return err
		}
		netS := sums[0]
		t.AddRow(kind.String(), trace.Float(netS.Mean), trace.Float(netS.CI95),
			trace.Float(simS.Mean), trace.Float(simS.CI95))
	}
	_, err := t.WriteTo(w)
	return err
}

// NetsimTree measures per-depth Definition 3 redundancy on a binary
// loss tree with the general engine (treesim's scenario).
func NetsimTree(w io.Writer, o NetsimOptions) error {
	const depth = 4
	const linkLoss = 0.02
	tr := treesim.Binary(depth, linkLoss)
	kinds := protocol.Kinds()
	xs := make([]float64, depth)
	for d := 0; d < depth; d++ {
		xs[d] = float64(d + 1)
	}
	series := make([]trace.Series, len(kinds))
	for ki, k := range kinds {
		cfg, err := netsim.FromTree(tr, netsim.SessionConfig{Protocol: k, Layers: 8}, o.Packets, o.Seed)
		if err != nil {
			return err
		}
		// Stream the replications: per-depth accumulation happens in
		// replication order without retaining any result.
		byDepth := make([]stats.Accumulator, depth+1)
		err = netsim.StreamReplications(cfg, o.Trials, o.Workers, func(_ int, res *netsim.Result) error {
			for _, ls := range res.Links {
				byDepth[tr.Depth(netsim.NodeForLink(ls.Link))].Add(ls.Redundancy)
			}
			return nil
		})
		if err != nil {
			return err
		}
		ys := make([]float64, depth)
		for d := 1; d <= depth; d++ {
			ys[d-1] = byDepth[d].Mean()
		}
		series[ki] = trace.Series{Name: k.String(), Y: ys}
	}
	if err := trace.WriteSeries(w,
		fmt.Sprintf("netsim: per-link redundancy vs tree depth (binary tree, depth %d, link loss %g)",
			depth, linkLoss),
		"depth", xs, series); err != nil {
		return err
	}
	fmt.Fprintln(w, "depth 1 = root link (16 downstream receivers); redundancy grows toward the root")
	fmt.Fprintln(w)
	return nil
}

// NetsimMesh runs several sessions through one capacity-coupled
// backbone — the multi-session scenario none of the specialized
// simulators covers: sessions generate each other's congestion and the
// engine reports how the backbone's bandwidth splits.
func NetsimMesh(w io.Writer, o NetsimOptions) error {
	const sessions, perSession = 3, 4
	cfg, bb, err := netsim.Mesh(sessions, perSession,
		netsim.LinkSpec{Kind: netsim.Capacity, Capacity: 24}, 0.01,
		netsim.SessionConfig{Protocol: protocol.Coordinated, Layers: 8},
		o.Packets*2, o.Seed)
	if err != nil {
		return err
	}
	metrics := make([]netsim.Metric, 0, 2*sessions)
	for i := 0; i < sessions; i++ {
		i := i
		metrics = append(metrics, func(r *netsim.Result) float64 {
			m := 0.0
			for _, v := range r.ReceiverRates[i] {
				if v > m {
					m = v
				}
			}
			return m
		}, netsim.LinkRedundancyMetric(bb, i))
	}
	sums, err := netsim.SummarizeReplications(cfg, o.Trials, o.Workers, metrics...)
	if err != nil {
		return err
	}
	t := trace.NewTable(
		fmt.Sprintf("netsim mesh: %d sessions x %d receivers over one capacity-24 backbone, access loss 0.01",
			sessions, perSession),
		"session", "best receiver rate", "ci95", "backbone redundancy", "ci95")
	for i := 0; i < sessions; i++ {
		best, red := sums[2*i], sums[2*i+1]
		t.AddRow(fmt.Sprintf("S%d", i+1), trace.Float(best.Mean), trace.Float(best.CI95),
			trace.Float(red.Mean), trace.Float(red.CI95))
	}
	_, err = t.WriteTo(w)
	return err
}

// NetsimChurn compares a stable star session against one under periodic
// membership churn: departures prune layers off the shared link, and
// fresh joins restart at the base layer, dragging goodput down while
// redundancy stays put.
func NetsimChurn(w io.Writer, o NetsimOptions) error {
	t := trace.NewTable(
		fmt.Sprintf("netsim churn: modified star, %d receivers, leave/rejoin round-robin, %d trials",
			o.Receivers, o.Trials),
		"scenario", "mean receiver rate", "ci95", "shared redundancy", "ci95")
	for _, churny := range []bool{false, true} {
		cfg, err := netsim.Star(o.Receivers, 0.0001, 0.04,
			netsim.SessionConfig{Protocol: protocol.Deterministic, Layers: 8}, o.Packets, o.Seed)
		if err != nil {
			return err
		}
		name := "stable"
		if churny {
			name = "churning"
			horizon := float64(o.Packets) / 128 // approximate run duration
			cfg.Churn = netsim.UniformChurn(cfg.Network, horizon/float64(2*o.Receivers), horizon/20, horizon)
		}
		sums, err := netsim.SummarizeReplications(cfg, o.Trials, o.Workers,
			netsim.MeanReceiverRateMetric(), netsim.LinkRedundancyMetric(0, 0))
		if err != nil {
			return err
		}
		rate, red := sums[0], sums[1]
		t.AddRow(name, trace.Float(rate.Mean), trace.Float(rate.CI95),
			trace.Float(red.Mean), trace.Float(red.CI95))
	}
	_, err := t.WriteTo(w)
	return err
}

// NetsimBackground sweeps constant cross-traffic on a droptail
// bottleneck shared with the layered session — the TCP-over-ABR/UBR
// competition scenario: as background load eats the queue's service
// rate, the session's achievable rate collapses along with it.
func NetsimBackground(w io.Writer, o NetsimOptions) error {
	const capacity = 32.0
	t := trace.NewTable(
		fmt.Sprintf("netsim background traffic: droptail bottleneck capacity %g, buffer 16, %d receivers",
			capacity, o.Receivers),
		"background load", "best receiver rate", "ci95", "shared redundancy", "ci95")
	for _, bg := range []float64{0, 8, 16, 24, 28} {
		cfg, err := netsim.Star(o.Receivers, 0, 0.02,
			netsim.SessionConfig{Protocol: protocol.Deterministic, Layers: 8}, o.Packets, o.Seed)
		if err != nil {
			return err
		}
		cfg.Links[0] = netsim.LinkSpec{Kind: netsim.DropTail, Capacity: capacity, Buffer: 16, Delay: 0.01, Background: bg}
		sums, err := netsim.SummarizeReplications(cfg, o.Trials, o.Workers,
			func(r *netsim.Result) float64 { return r.MaxReceiverRate() },
			netsim.LinkRedundancyMetric(0, 0))
		if err != nil {
			return err
		}
		best, red := sums[0], sums[1]
		t.AddRow(trace.Float(bg), trace.Float(best.Mean), trace.Float(best.CI95),
			trace.Float(red.Mean), trace.Float(red.CI95))
	}
	_, err := t.WriteTo(w)
	return err
}

// largeTopoRows summarizes one large-topology scenario: streamed
// replications, capacity-coupled links, and three aggregates — mean
// receiver goodput, mean per-session root redundancy, and the maximum
// Definition 3 redundancy over all (link, session) pairs.
func largeTopoRows(w io.Writer, title string, net *netmodel.Network, o NetsimOptions) error {
	cfg := netsim.Config{
		Network:  net,
		Links:    netsim.CapacityLinks(net.NumLinks()),
		Sessions: make([]netsim.SessionConfig, net.NumSessions()),
		Packets:  o.Packets,
		Seed:     o.Seed,
	}
	// Alternate protocols across sessions so coordination disciplines
	// compete on shared links.
	kinds := protocol.Kinds()
	for i := range cfg.Sessions {
		cfg.Sessions[i] = netsim.SessionConfig{Protocol: kinds[i%len(kinds)], Layers: 8}
	}
	sums, err := netsim.SummarizeReplications(cfg, o.Trials, o.Workers,
		netsim.MeanReceiverRateMetric(),
		func(r *netsim.Result) float64 {
			sum := 0.0
			for i := range r.ReceiverRates {
				sum += r.SessionRedundancy(i)
			}
			return sum / float64(len(r.ReceiverRates))
		},
		func(r *netsim.Result) float64 {
			m := 0.0
			for _, ls := range r.Links {
				if ls.Redundancy > m {
					m = ls.Redundancy
				}
			}
			return m
		})
	if err != nil {
		return err
	}
	t := trace.NewTable(title, "metric", "mean", "ci95")
	t.AddRow("receiver goodput", trace.Float(sums[0].Mean), trace.Float(sums[0].CI95))
	t.AddRow("session root redundancy", trace.Float(sums[1].Mean), trace.Float(sums[1].CI95))
	t.AddRow("max link redundancy", trace.Float(sums[2].Mean), trace.Float(sums[2].CI95))
	_, err = t.WriteTo(w)
	return err
}

// NetsimScaleFree runs dozens of mixed-protocol sessions over a random
// power-law (preferential-attachment) graph with capacity-coupled
// links — the heavy-tailed regime where hub links carry many competing
// sessions at once. The topology itself is deterministic in the seed.
func NetsimScaleFree(w io.Writer, o NetsimOptions) error {
	topo := topology.DefaultScaleFreeOptions()
	net, err := topology.ScaleFree(rand.New(rand.NewPCG(o.Seed, o.Seed^0xd1b54a32d192ed03)), topo)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("netsim scale-free: %d nodes, %d links, %d sessions (mixed protocols), %d packets, %d trials",
		net.Graph().NumNodes(), net.NumLinks(), net.NumSessions(), o.Packets, o.Trials)
	return largeTopoRows(w, title, net, o)
}

// NetsimFatTree runs dozens of mixed-protocol sessions across a k-ary
// fat-tree fabric with a mildly oversubscribed core — the multipath
// data-center scenario collapsed onto per-session BFS trees.
func NetsimFatTree(w io.Writer, o NetsimOptions) error {
	topo := topology.DefaultFatTreeOptions()
	net, err := topology.FatTree(rand.New(rand.NewPCG(o.Seed, o.Seed^0x9e6c63d0876a9a47)), topo)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("netsim fat-tree: k=%d (%d hosts, %d links), %d sessions (mixed protocols), %d packets, %d trials",
		topo.K, topo.K*topo.K*topo.K/4, net.NumLinks(), net.NumSessions(), o.Packets, o.Trials)
	return largeTopoRows(w, title, net, o)
}
