package experiments

import (
	"fmt"
	"io"

	"mlfair/internal/netsim"
	"mlfair/internal/protocol"
	"mlfair/internal/scenario"
	"mlfair/internal/stats"
	"mlfair/internal/trace"
)

// Every driver in this file is declarative: it builds a scenario.Spec,
// compiles it through the scenario layer, and either runs the built-in
// metric stages (scenario.RunCompiled) or streams the compiled netsim
// config through driver-specific aggregation. The same specs, written
// as JSON, drive `cmd/netsim -spec` — see docs/SCENARIOS.md.

// NetsimOptions sizes the general-engine scenario drivers.
type NetsimOptions struct {
	Receivers int
	Packets   int
	Trials    int
	// Workers bounds the replication pool (0 = GOMAXPROCS).
	Workers int
	Seed    uint64
}

// DefaultNetsimOptions resolves the scenario effects in a few seconds.
func DefaultNetsimOptions() NetsimOptions {
	return NetsimOptions{Receivers: 50, Packets: 50000, Trials: 8, Seed: 777}
}

// mixedSessions is the session slot list that cycles the three
// protocols across a generated topology's sessions in the paper's
// plotting order.
func mixedSessions() []scenario.SessionSpec {
	kinds := protocol.Kinds()
	out := make([]scenario.SessionSpec, len(kinds))
	for i, k := range kinds {
		out[i] = scenario.SessionSpec{Protocol: k.String(), Layers: 8}
	}
	return out
}

// starSpec declares the paper's modified star (Figure 7b) in the loss
// domain: shared Bernoulli link 0, fanout links 1..n.
func starSpec(o NetsimOptions, kind protocol.Kind, sharedLoss, fanoutLoss float64) *scenario.Spec {
	return &scenario.Spec{
		Topology:     scenario.TopologySpec{Kind: "star", Receivers: o.Receivers},
		Sessions:     []scenario.SessionSpec{{Protocol: kind.String(), Layers: 8}},
		DefaultLink:  &scenario.LinkSpec{Kind: "bernoulli", Loss: fanoutLoss},
		Links:        []scenario.LinkOverride{{Link: 0, LinkSpec: scenario.LinkSpec{Kind: "bernoulli", Loss: sharedLoss}}},
		Packets:      o.Packets,
		Seed:         o.Seed,
		Replications: scenario.ReplicationSpec{N: o.Trials, Workers: o.Workers},
	}
}

// NetsimStar runs the paper's modified star through the scenario layer
// for each protocol: shared-link redundancy (= the star's root
// redundancy) and mean receiver goodput, replication-aggregated.
func NetsimStar(w io.Writer, o NetsimOptions) error {
	t := trace.NewTable(
		fmt.Sprintf("netsim star: %d receivers, shared loss 1e-4, independent loss 0.04, %d packets, %d trials",
			o.Receivers, o.Packets, o.Trials),
		"protocol", "shared redundancy", "ci95", "receiver goodput", "ci95")
	for _, kind := range protocol.Kinds() {
		res, err := scenario.Run(starSpec(o, kind, 0.0001, 0.04))
		if err != nil {
			return err
		}
		t.AddRow(kind.String(),
			trace.Float(res.RootRedundancy.Mean), trace.Float(res.RootRedundancy.CI95),
			trace.Float(res.Goodput.Mean), trace.Float(res.Goodput.CI95))
	}
	_, err := t.WriteTo(w)
	return err
}

// NetsimTree measures per-depth Definition 3 redundancy on a binary
// loss tree: the scenario layer compiles the topology, the driver
// streams the replications and buckets link redundancy by depth.
func NetsimTree(w io.Writer, o NetsimOptions) error {
	const depth = 4
	const linkLoss = 0.02
	kinds := protocol.Kinds()
	xs := make([]float64, depth)
	for d := 0; d < depth; d++ {
		xs[d] = float64(d + 1)
	}
	// Link i leads into node i+1; depth via the binary-heap parent walk.
	depthOf := func(link int) int {
		d := 0
		for nd := link + 1; nd != 0; nd = (nd - 1) / 2 {
			d++
		}
		return d
	}
	series := make([]trace.Series, len(kinds))
	for ki, k := range kinds {
		spec := &scenario.Spec{
			Topology:     scenario.TopologySpec{Kind: "binarytree", Depth: depth},
			Sessions:     []scenario.SessionSpec{{Protocol: k.String(), Layers: 8}},
			DefaultLink:  &scenario.LinkSpec{Kind: "bernoulli", Loss: linkLoss},
			Packets:      o.Packets,
			Seed:         o.Seed,
			Replications: scenario.ReplicationSpec{N: o.Trials, Workers: o.Workers},
		}
		c, err := scenario.Compile(spec)
		if err != nil {
			return err
		}
		// Stream the replications: per-depth accumulation happens in
		// replication order without retaining any result.
		byDepth := make([]stats.Accumulator, depth+1)
		err = netsim.StreamReplications(c.Cfg, o.Trials, o.Workers, func(_ int, res *netsim.Result) error {
			for _, ls := range res.Links {
				byDepth[depthOf(ls.Link)].Add(ls.Redundancy)
			}
			return nil
		})
		if err != nil {
			return err
		}
		ys := make([]float64, depth)
		for d := 1; d <= depth; d++ {
			ys[d-1] = byDepth[d].Mean()
		}
		series[ki] = trace.Series{Name: k.String(), Y: ys}
	}
	if err := trace.WriteSeries(w,
		fmt.Sprintf("netsim: per-link redundancy vs tree depth (binary tree, depth %d, link loss %g)",
			depth, linkLoss),
		"depth", xs, series); err != nil {
		return err
	}
	fmt.Fprintln(w, "depth 1 = root link (16 downstream receivers); redundancy grows toward the root")
	fmt.Fprintln(w)
	return nil
}

// NetsimMesh runs several sessions through one capacity-coupled
// backbone — the multi-session scenario: sessions generate each other's
// congestion and the driver reports how the backbone's bandwidth
// splits.
func NetsimMesh(w io.Writer, o NetsimOptions) error {
	const sessions, perSession = 3, 4
	spec := &scenario.Spec{
		Topology: scenario.TopologySpec{Kind: "mesh", Sessions: sessions, Receivers: perSession},
		Sessions: []scenario.SessionSpec{{Protocol: "Coordinated", Layers: 8}},
		// Lossless sender access links, a capacity-24 backbone, and
		// Bernoulli receiver access links.
		DefaultLink: &scenario.LinkSpec{Kind: "bernoulli", Loss: 0.01},
		Links: []scenario.LinkOverride{
			{Link: 0, LinkSpec: scenario.LinkSpec{Kind: "perfect"}},
			{Link: 1, LinkSpec: scenario.LinkSpec{Kind: "perfect"}},
			{Link: 2, LinkSpec: scenario.LinkSpec{Kind: "perfect"}},
			{Link: sessions, LinkSpec: scenario.LinkSpec{Kind: "capacity", Capacity: 24}},
		},
		Packets:      o.Packets * 2,
		Seed:         o.Seed,
		Replications: scenario.ReplicationSpec{N: o.Trials, Workers: o.Workers},
	}
	c, err := scenario.Compile(spec)
	if err != nil {
		return err
	}
	const bb = sessions // backbone link index in the mesh layout
	accBest := make([]stats.Accumulator, sessions)
	accRed := make([]stats.Accumulator, sessions)
	err = netsim.StreamReplications(c.Cfg, o.Trials, o.Workers, func(_ int, r *netsim.Result) error {
		for i := 0; i < sessions; i++ {
			m := 0.0
			for _, v := range r.ReceiverRates[i] {
				if v > m {
					m = v
				}
			}
			accBest[i].Add(m)
			accRed[i].Add(r.LinkRedundancy(bb, i))
		}
		return nil
	})
	if err != nil {
		return err
	}
	t := trace.NewTable(
		fmt.Sprintf("netsim mesh: %d sessions x %d receivers over one capacity-24 backbone, access loss 0.01",
			sessions, perSession),
		"session", "best receiver rate", "ci95", "backbone redundancy", "ci95")
	for i := 0; i < sessions; i++ {
		t.AddRow(fmt.Sprintf("S%d", i+1),
			trace.Float(accBest[i].Mean()), trace.Float(accBest[i].CI95()),
			trace.Float(accRed[i].Mean()), trace.Float(accRed[i].CI95()))
	}
	_, err = t.WriteTo(w)
	return err
}

// NetsimChurn compares a stable star session against one under periodic
// membership churn: departures prune layers off the shared link, and
// fresh joins restart at the base layer, dragging goodput down while
// redundancy stays put.
func NetsimChurn(w io.Writer, o NetsimOptions) error {
	t := trace.NewTable(
		fmt.Sprintf("netsim churn: modified star, %d receivers, leave/rejoin round-robin, %d trials",
			o.Receivers, o.Trials),
		"scenario", "mean receiver rate", "ci95", "shared redundancy", "ci95")
	for _, churny := range []bool{false, true} {
		spec := starSpec(o, protocol.Deterministic, 0.0001, 0.04)
		name := "stable"
		if churny {
			name = "churning"
			horizon := float64(o.Packets) / 128 // approximate run duration
			spec.Churn = &scenario.ChurnSpec{
				Interval: horizon / float64(2*o.Receivers),
				Downtime: horizon / 20,
				Horizon:  horizon,
			}
		}
		res, err := scenario.Run(spec)
		if err != nil {
			return err
		}
		t.AddRow(name, trace.Float(res.Goodput.Mean), trace.Float(res.Goodput.CI95),
			trace.Float(res.RootRedundancy.Mean), trace.Float(res.RootRedundancy.CI95))
	}
	_, err := t.WriteTo(w)
	return err
}

// NetsimBackground sweeps constant cross-traffic on a droptail
// bottleneck shared with the layered session — the TCP-over-ABR/UBR
// competition scenario: as background load eats the queue's service
// rate, the session's achievable rate collapses along with it.
func NetsimBackground(w io.Writer, o NetsimOptions) error {
	const capacity = 32.0
	t := trace.NewTable(
		fmt.Sprintf("netsim background traffic: droptail bottleneck capacity %g, buffer 16, %d receivers",
			capacity, o.Receivers),
		"background load", "best receiver rate", "ci95", "shared redundancy", "ci95")
	for _, bg := range []float64{0, 8, 16, 24, 28} {
		spec := starSpec(o, protocol.Deterministic, 0, 0.02)
		spec.Links = []scenario.LinkOverride{{Link: 0, LinkSpec: scenario.LinkSpec{
			Kind: "droptail", Capacity: capacity, Buffer: 16, Delay: 0.01, Background: bg,
		}}}
		c, err := scenario.Compile(spec)
		if err != nil {
			return err
		}
		var accBest, accRed stats.Accumulator
		err = netsim.StreamReplications(c.Cfg, o.Trials, o.Workers, func(_ int, r *netsim.Result) error {
			accBest.Add(r.MaxReceiverRate())
			accRed.Add(r.LinkRedundancy(0, 0))
			return nil
		})
		if err != nil {
			return err
		}
		t.AddRow(trace.Float(bg), trace.Float(accBest.Mean()), trace.Float(accBest.CI95()),
			trace.Float(accRed.Mean()), trace.Float(accRed.CI95()))
	}
	_, err := t.WriteTo(w)
	return err
}

// NetsimAudit is the end-to-end "simulate, then audit against the
// paper's fair allocation" pipeline on a capacity-coupled star with
// heterogeneous receivers: one spec selects the rates, max-min
// benchmark, fairness-property and gap stages, and the report shows the
// achieved rates tracking their analytic max-min fair counterparts.
func NetsimAudit(w io.Writer, o NetsimOptions) error {
	res, err := scenario.Run(AuditSpec(o))
	if err != nil {
		return err
	}
	if err := res.WriteReport(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "gap = achieved/fair; the layered sawtooth keeps protocols below but")
	fmt.Fprintln(w, "tracking their max-min fair rates (the paper's closing claim, audited)")
	return nil
}

// AuditSpec is NetsimAudit's declarative input (exported so the test
// suite can pin its JSON round-trip alongside cmd/netsim -spec).
func AuditSpec(o NetsimOptions) *scenario.Spec {
	return &scenario.Spec{
		Name: fmt.Sprintf("netsim audit: capacity star, fanouts 2/8/32 + a 64-wide peer, %d packets, %d trials",
			o.Packets, o.Trials),
		Topology: scenario.TopologySpec{
			Kind:             "star",
			SharedCapacity:   24,
			FanoutCapacities: []float64{2, 8, 32, 64},
		},
		Sessions:     []scenario.SessionSpec{{Protocol: "Coordinated", Layers: 8}},
		DefaultLink:  &scenario.LinkSpec{Kind: "capacity"},
		Packets:      o.Packets * 2,
		Seed:         o.Seed,
		Replications: scenario.ReplicationSpec{N: o.Trials, Workers: o.Workers},
		Metrics: []string{
			scenario.MetricRates, scenario.MetricMaxMin,
			scenario.MetricFairness, scenario.MetricGap,
		},
	}
}

// largeTopoSpec assembles the shared shape of the two large-topology
// scenarios: capacity-coupled links, mixed protocols cycled across
// sessions, and the goodput + redundancy stages.
func largeTopoSpec(o NetsimOptions, topo scenario.TopologySpec) *scenario.Spec {
	return &scenario.Spec{
		Topology:     topo,
		Sessions:     mixedSessions(),
		DefaultLink:  &scenario.LinkSpec{Kind: "capacity"},
		Packets:      o.Packets,
		Seed:         o.Seed,
		Replications: scenario.ReplicationSpec{N: o.Trials, Workers: o.Workers},
	}
}

// NetsimScaleFree runs dozens of mixed-protocol sessions over a random
// power-law (preferential-attachment) graph with capacity-coupled
// links — the heavy-tailed regime where hub links carry many competing
// sessions at once. The topology itself is deterministic in the seed.
func NetsimScaleFree(w io.Writer, o NetsimOptions) error {
	c, err := scenario.Compile(largeTopoSpec(o, scenario.TopologySpec{Kind: "scalefree"}))
	if err != nil {
		return err
	}
	c.Spec.Name = fmt.Sprintf("netsim scale-free: %d nodes, %d links, %d sessions (mixed protocols), %d packets, %d trials",
		c.Net.Graph().NumNodes(), c.Net.NumLinks(), c.Net.NumSessions(), o.Packets, o.Trials)
	res, err := scenario.RunCompiled(c)
	if err != nil {
		return err
	}
	return res.WriteReport(w)
}

// NetsimFatTree runs dozens of mixed-protocol sessions across a k-ary
// fat-tree fabric with a mildly oversubscribed core — the multipath
// data-center scenario collapsed onto per-session BFS trees.
func NetsimFatTree(w io.Writer, o NetsimOptions) error {
	const k = 6
	c, err := scenario.Compile(largeTopoSpec(o, scenario.TopologySpec{Kind: "fattree", K: k}))
	if err != nil {
		return err
	}
	c.Spec.Name = fmt.Sprintf("netsim fat-tree: k=%d (%d hosts, %d links), %d sessions (mixed protocols), %d packets, %d trials",
		k, k*k*k/4, c.Net.NumLinks(), c.Net.NumSessions(), o.Packets, o.Trials)
	res, err := scenario.RunCompiled(c)
	if err != nil {
		return err
	}
	return res.WriteReport(w)
}
