package experiments

import (
	"fmt"
	"io"
	"strconv"

	"mlfair/internal/netsim"
	"mlfair/internal/protocol"
	"mlfair/internal/scenario"
	"mlfair/internal/stats"
	"mlfair/internal/trace"
)

// Every driver in this file is declarative: it builds a scenario.Spec
// or scenario.Sweep, compiles it through the scenario layer, and
// either runs the built-in stages (scenario.RunCompiled /
// scenario.RunSweep) or streams the compiled netsim config through
// driver-specific aggregation. The same specs and sweeps, written as
// JSON, drive `cmd/netsim -spec` and `cmd/netsim -sweep` — see
// docs/SCENARIOS.md and docs/SWEEPS.md; the committed sweep files
// under cmd/netsim/testdata/sweeps are pinned to the builders here.

// NetsimOptions sizes the general-engine scenario drivers.
type NetsimOptions struct {
	Receivers int
	Packets   int
	Trials    int
	// Workers bounds the replication pool (0 = GOMAXPROCS).
	Workers int
	Seed    uint64
	// Observe optionally attaches the observability layer (engine stats
	// sink, progress reporting) to every scenario and sweep the drivers
	// execute. Nil is fully inert; results are identical either way.
	Observe *scenario.Observe
}

// engineConfig applies the observability attachment to a compiled
// config for drivers that stream replications directly.
func (o NetsimOptions) engineConfig(cfg netsim.Config) netsim.Config {
	if o.Observe != nil && o.Observe.Stats != nil {
		cfg.Stats = o.Observe.Stats
	}
	return cfg
}

// DefaultNetsimOptions resolves the scenario effects in a few seconds.
func DefaultNetsimOptions() NetsimOptions {
	return NetsimOptions{Receivers: 50, Packets: 50000, Trials: 8, Seed: 777}
}

// Validate rejects degenerate sizing up front, so the sweep builders
// return errors instead of letting invalid point or replication counts
// panic somewhere inside the pipeline (the same contract as the
// error-returning topology generators).
func (o NetsimOptions) Validate() error {
	if o.Receivers < 1 || o.Packets < 1 || o.Trials < 1 {
		return fmt.Errorf("experiments: invalid netsim options: receivers %d, packets %d, trials %d (all must be >= 1)",
			o.Receivers, o.Packets, o.Trials)
	}
	if o.Workers < 0 {
		return fmt.Errorf("experiments: invalid netsim options: workers %d", o.Workers)
	}
	return nil
}

// protocolValues is the protocol axis of the sweeps, in the paper's
// plotting order.
func protocolValues() []any {
	kinds := protocol.Kinds()
	out := make([]any, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

// writeSweepSeries renders a two-axis sweep — series axis first (e.g.
// protocol), numeric x axis second — as a trace series table of one
// output metric's per-point mean.
func writeSweepSeries(w io.Writer, res *scenario.SweepResult, title, xLabel, metric string) error {
	pts := res.Points
	if len(pts) == 0 || len(pts[0].Coords) < 2 {
		return fmt.Errorf("experiments: series rendering needs a two-axis sweep (have %d axes)", len(res.Sweep.Axes))
	}
	nx := 0
	for _, p := range pts {
		if p.Coords[0] != pts[0].Coords[0] {
			break
		}
		nx++
	}
	if nx == 0 || len(pts)%nx != 0 {
		return fmt.Errorf("experiments: sweep is not a series grid (%d points, first block %d)", len(pts), nx)
	}
	xs := make([]float64, nx)
	for i := 0; i < nx; i++ {
		x, err := strconv.ParseFloat(pts[i].Coords[1], 64)
		if err != nil {
			return fmt.Errorf("experiments: non-numeric x coordinate %q", pts[i].Coords[1])
		}
		xs[i] = x
	}
	series := make([]trace.Series, len(pts)/nx)
	for s := range series {
		ys := make([]float64, nx)
		for i := range ys {
			cell, err := res.Cell(pts[s*nx+i].ID, metric)
			if err != nil {
				return err
			}
			ys[i] = cell.Mean
		}
		series[s] = trace.Series{Name: pts[s*nx].Coords[0], Y: ys}
	}
	return trace.WriteSeries(w, title, xLabel, xs, series)
}

// mixedSessions is the session slot list that cycles the three
// protocols across a generated topology's sessions in the paper's
// plotting order.
func mixedSessions() []scenario.SessionSpec {
	kinds := protocol.Kinds()
	out := make([]scenario.SessionSpec, len(kinds))
	for i, k := range kinds {
		out[i] = scenario.SessionSpec{Protocol: k.String(), Layers: 8}
	}
	return out
}

// starSpec declares the paper's modified star (Figure 7b) in the loss
// domain: shared Bernoulli link 0, fanout links 1..n.
func starSpec(o NetsimOptions, kind protocol.Kind, sharedLoss, fanoutLoss float64) *scenario.Spec {
	return &scenario.Spec{
		Topology:     scenario.TopologySpec{Kind: "star", Receivers: o.Receivers},
		Sessions:     []scenario.SessionSpec{{Protocol: kind.String(), Layers: 8}},
		DefaultLink:  &scenario.LinkSpec{Kind: "bernoulli", Loss: fanoutLoss},
		Links:        []scenario.LinkOverride{{Link: 0, LinkSpec: scenario.LinkSpec{Kind: "bernoulli", Loss: sharedLoss}}},
		Packets:      o.Packets,
		Seed:         o.Seed,
		Replications: scenario.ReplicationSpec{N: o.Trials, Workers: o.Workers},
	}
}

// StarProtocolSweep declares the paper's modified star comparison as a
// sweep: one axis cycling the three protocols over the loss-domain
// star (Figure 7b).
func StarProtocolSweep(o NetsimOptions) (*scenario.Sweep, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return &scenario.Sweep{
		Name: fmt.Sprintf("netsim star: %d receivers, shared loss 1e-4, independent loss 0.04, %d packets, %d trials",
			o.Receivers, o.Packets, o.Trials),
		Base:    *starSpec(o, protocol.Deterministic, 0.0001, 0.04),
		Axes:    []scenario.Axis{{Field: "sessions.protocol", Values: protocolValues()}},
		Outputs: []string{"root_redundancy", "goodput"},
	}, nil
}

// NetsimStar runs StarProtocolSweep and tabulates shared-link
// redundancy (= the star's root redundancy) and mean receiver goodput
// per protocol, replication-aggregated.
func NetsimStar(w io.Writer, o NetsimOptions) error {
	sw, err := StarProtocolSweep(o)
	if err != nil {
		return err
	}
	res, err := scenario.RunSweepObserved(sw, o.Observe)
	if err != nil {
		return err
	}
	t := trace.NewTable(sw.Name, "protocol", "shared redundancy", "ci95", "receiver goodput", "ci95")
	for _, p := range res.Points {
		red, err := res.Cell(p.ID, "root_redundancy")
		if err != nil {
			return err
		}
		good, err := res.Cell(p.ID, "goodput")
		if err != nil {
			return err
		}
		t.AddRow(p.Coords[0],
			trace.Float(red.Mean), trace.Float(red.CI95()),
			trace.Float(good.Mean), trace.Float(good.CI95()))
	}
	_, err = t.WriteTo(w)
	return err
}

// Figure8Sweep re-expresses the paper's Figure 8 panel as a netsim
// sweep: protocol × independent (fanout) loss at a fixed shared-link
// loss, reporting shared-link redundancy per point.
func Figure8Sweep(o NetsimOptions, sharedLoss float64) (*scenario.Sweep, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if sharedLoss < 0 || sharedLoss >= 1 {
		return nil, fmt.Errorf("experiments: shared loss %v outside [0, 1)", sharedLoss)
	}
	return &scenario.Sweep{
		Name: fmt.Sprintf("netsim figure 8 (shared loss %g): redundancy vs independent loss — %d receivers, 8 layers, %d packets × %d trials",
			sharedLoss, o.Receivers, o.Packets, o.Trials),
		Base: *starSpec(o, protocol.Deterministic, sharedLoss, 0),
		Axes: []scenario.Axis{
			{Field: "sessions.protocol", Values: protocolValues()},
			{Field: "defaultLink.loss", Values: []any{0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1}},
		},
		Outputs: []string{"root_redundancy"},
	}, nil
}

// NetsimFigure8 runs the Figure 8 sweep at the paper's low shared-loss
// operating point and renders the per-protocol redundancy curves.
func NetsimFigure8(w io.Writer, o NetsimOptions) error {
	sw, err := Figure8Sweep(o, 0.0001)
	if err != nil {
		return err
	}
	res, err := scenario.RunSweepObserved(sw, o.Observe)
	if err != nil {
		return err
	}
	return writeSweepSeries(w, res, sw.Name, "ind. loss", "root_redundancy")
}

// LeaveLatencySweep declares the Section 5 leave-latency extension as
// a netsim sweep: protocol × IGMP-style slow-leave latency on the
// modified star, reporting shared-link redundancy inflation.
func LeaveLatencySweep(o NetsimOptions) (*scenario.Sweep, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return &scenario.Sweep{
		Name: fmt.Sprintf("netsim leave latency: redundancy vs leave latency (ind. loss 0.04, %d receivers, %d packets × %d trials)",
			o.Receivers, o.Packets, o.Trials),
		Base: *starSpec(o, protocol.Deterministic, 0.0001, 0.04),
		Axes: []scenario.Axis{
			{Field: "sessions.protocol", Values: protocolValues()},
			{Field: "leaveLatency", Values: []any{0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}},
		},
		Outputs: []string{"root_redundancy"},
	}, nil
}

// NetsimLeaveLatency runs the leave-latency sweep and renders the
// per-protocol redundancy-vs-latency curves.
func NetsimLeaveLatency(w io.Writer, o NetsimOptions) error {
	sw, err := LeaveLatencySweep(o)
	if err != nil {
		return err
	}
	res, err := scenario.RunSweepObserved(sw, o.Observe)
	if err != nil {
		return err
	}
	return writeSweepSeries(w, res, sw.Name, "latency", "root_redundancy")
}

// NetsimTree measures per-depth Definition 3 redundancy on a binary
// loss tree: the scenario layer compiles the topology, the driver
// streams the replications and buckets link redundancy by depth.
func NetsimTree(w io.Writer, o NetsimOptions) error {
	const depth = 4
	const linkLoss = 0.02
	kinds := protocol.Kinds()
	xs := make([]float64, depth)
	for d := 0; d < depth; d++ {
		xs[d] = float64(d + 1)
	}
	// Link i leads into node i+1; depth via the binary-heap parent walk.
	depthOf := func(link int) int {
		d := 0
		for nd := link + 1; nd != 0; nd = (nd - 1) / 2 {
			d++
		}
		return d
	}
	series := make([]trace.Series, len(kinds))
	for ki, k := range kinds {
		spec := &scenario.Spec{
			Topology:     scenario.TopologySpec{Kind: "binarytree", Depth: depth},
			Sessions:     []scenario.SessionSpec{{Protocol: k.String(), Layers: 8}},
			DefaultLink:  &scenario.LinkSpec{Kind: "bernoulli", Loss: linkLoss},
			Packets:      o.Packets,
			Seed:         o.Seed,
			Replications: scenario.ReplicationSpec{N: o.Trials, Workers: o.Workers},
		}
		c, err := scenario.Compile(spec)
		if err != nil {
			return err
		}
		// Stream the replications: per-depth accumulation happens in
		// replication order without retaining any result.
		byDepth := make([]stats.Accumulator, depth+1)
		err = netsim.StreamReplications(o.engineConfig(c.Cfg), o.Trials, o.Workers, func(_ int, res *netsim.Result) error {
			for _, ls := range res.Links {
				byDepth[depthOf(ls.Link)].Add(ls.Redundancy)
			}
			return nil
		})
		if err != nil {
			return err
		}
		ys := make([]float64, depth)
		for d := 1; d <= depth; d++ {
			ys[d-1] = byDepth[d].Mean()
		}
		series[ki] = trace.Series{Name: k.String(), Y: ys}
	}
	if err := trace.WriteSeries(w,
		fmt.Sprintf("netsim: per-link redundancy vs tree depth (binary tree, depth %d, link loss %g)",
			depth, linkLoss),
		"depth", xs, series); err != nil {
		return err
	}
	fmt.Fprintln(w, "depth 1 = root link (16 downstream receivers); redundancy grows toward the root")
	fmt.Fprintln(w)
	return nil
}

// NetsimMesh runs several sessions through one capacity-coupled
// backbone — the multi-session scenario: sessions generate each other's
// congestion and the driver reports how the backbone's bandwidth
// splits.
func NetsimMesh(w io.Writer, o NetsimOptions) error {
	const sessions, perSession = 3, 4
	spec := &scenario.Spec{
		Topology: scenario.TopologySpec{Kind: "mesh", Sessions: sessions, Receivers: perSession},
		Sessions: []scenario.SessionSpec{{Protocol: "Coordinated", Layers: 8}},
		// Lossless sender access links, a capacity-24 backbone, and
		// Bernoulli receiver access links.
		DefaultLink: &scenario.LinkSpec{Kind: "bernoulli", Loss: 0.01},
		Links: []scenario.LinkOverride{
			{Link: 0, LinkSpec: scenario.LinkSpec{Kind: "perfect"}},
			{Link: 1, LinkSpec: scenario.LinkSpec{Kind: "perfect"}},
			{Link: 2, LinkSpec: scenario.LinkSpec{Kind: "perfect"}},
			{Link: sessions, LinkSpec: scenario.LinkSpec{Kind: "capacity", Capacity: 24}},
		},
		Packets:      o.Packets * 2,
		Seed:         o.Seed,
		Replications: scenario.ReplicationSpec{N: o.Trials, Workers: o.Workers},
	}
	c, err := scenario.Compile(spec)
	if err != nil {
		return err
	}
	const bb = sessions // backbone link index in the mesh layout
	accBest := make([]stats.Accumulator, sessions)
	accRed := make([]stats.Accumulator, sessions)
	err = netsim.StreamReplications(o.engineConfig(c.Cfg), o.Trials, o.Workers, func(_ int, r *netsim.Result) error {
		for i := 0; i < sessions; i++ {
			m := 0.0
			for _, v := range r.ReceiverRates[i] {
				if v > m {
					m = v
				}
			}
			accBest[i].Add(m)
			accRed[i].Add(r.LinkRedundancy(bb, i))
		}
		return nil
	})
	if err != nil {
		return err
	}
	t := trace.NewTable(
		fmt.Sprintf("netsim mesh: %d sessions x %d receivers over one capacity-24 backbone, access loss 0.01",
			sessions, perSession),
		"session", "best receiver rate", "ci95", "backbone redundancy", "ci95")
	for i := 0; i < sessions; i++ {
		t.AddRow(fmt.Sprintf("S%d", i+1),
			trace.Float(accBest[i].Mean()), trace.Float(accBest[i].CI95()),
			trace.Float(accRed[i].Mean()), trace.Float(accRed[i].CI95()))
	}
	_, err = t.WriteTo(w)
	return err
}

// ChurnSweep declares the stable-versus-churning comparison as a sweep
// over the churn interval: interval 0 disables the round-robin
// leave/rejoin schedule entirely (the stable point), the second point
// churns every receiver twice over the run's horizon.
func ChurnSweep(o NetsimOptions) (*scenario.Sweep, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	base := starSpec(o, protocol.Deterministic, 0.0001, 0.04)
	horizon := float64(o.Packets) / 128 // approximate run duration
	base.Churn = &scenario.ChurnSpec{Downtime: horizon / 20, Horizon: horizon}
	return &scenario.Sweep{
		Name: fmt.Sprintf("netsim churn: modified star, %d receivers, leave/rejoin round-robin, %d trials",
			o.Receivers, o.Trials),
		Base:    *base,
		Axes:    []scenario.Axis{{Field: "churn.interval", Values: []any{0.0, horizon / float64(2*o.Receivers)}}},
		Outputs: []string{"goodput", "root_redundancy"},
	}, nil
}

// NetsimChurn runs ChurnSweep: departures prune layers off the shared
// link, and fresh joins restart at the base layer, dragging goodput
// down while redundancy stays put.
func NetsimChurn(w io.Writer, o NetsimOptions) error {
	sw, err := ChurnSweep(o)
	if err != nil {
		return err
	}
	res, err := scenario.RunSweepObserved(sw, o.Observe)
	if err != nil {
		return err
	}
	t := trace.NewTable(sw.Name, "scenario", "mean receiver rate", "ci95", "shared redundancy", "ci95")
	for _, p := range res.Points {
		name := "churning"
		if p.Coords[0] == "0" {
			name = "stable"
		}
		good, err := res.Cell(p.ID, "goodput")
		if err != nil {
			return err
		}
		red, err := res.Cell(p.ID, "root_redundancy")
		if err != nil {
			return err
		}
		t.AddRow(name, trace.Float(good.Mean), trace.Float(good.CI95()),
			trace.Float(red.Mean), trace.Float(red.CI95()))
	}
	_, err = t.WriteTo(w)
	return err
}

// BackgroundSweep declares the TCP-over-ABR/UBR-style cross-traffic
// competition as a sweep over the droptail bottleneck's constant
// background load.
func BackgroundSweep(o NetsimOptions) (*scenario.Sweep, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	const capacity = 32.0
	base := starSpec(o, protocol.Deterministic, 0, 0.02)
	base.Links = []scenario.LinkOverride{{Link: 0, LinkSpec: scenario.LinkSpec{
		Kind: "droptail", Capacity: capacity, Buffer: 16, Delay: 0.01,
	}}}
	return &scenario.Sweep{
		Name: fmt.Sprintf("netsim background traffic: droptail bottleneck capacity %g, buffer 16, %d receivers",
			capacity, o.Receivers),
		Base:    *base,
		Axes:    []scenario.Axis{{Field: "links[0].background", Values: []any{0.0, 8.0, 16.0, 24.0, 28.0}}},
		Outputs: []string{"best_rate", "shared_redundancy"},
	}, nil
}

// NetsimBackground runs BackgroundSweep: as background load eats the
// queue's service rate, the session's achievable rate collapses along
// with it.
func NetsimBackground(w io.Writer, o NetsimOptions) error {
	sw, err := BackgroundSweep(o)
	if err != nil {
		return err
	}
	res, err := scenario.RunSweepObserved(sw, o.Observe)
	if err != nil {
		return err
	}
	t := trace.NewTable(sw.Name, "background load", "best receiver rate", "ci95", "shared redundancy", "ci95")
	for _, p := range res.Points {
		best, err := res.Cell(p.ID, "best_rate")
		if err != nil {
			return err
		}
		red, err := res.Cell(p.ID, "shared_redundancy")
		if err != nil {
			return err
		}
		bg, err := strconv.ParseFloat(p.Coords[0], 64)
		if err != nil {
			return err
		}
		t.AddRow(trace.Float(bg), trace.Float(best.Mean), trace.Float(best.CI95()),
			trace.Float(red.Mean), trace.Float(red.CI95()))
	}
	_, err = t.WriteTo(w)
	return err
}

// ConvergenceSweep declares the time-domain question — how fast does
// each protocol converge to the max-min fair allocation, with and
// without membership churn — as a sweep: the capacity-coupled audit
// star with probe windows, protocol × churn-interval axes, and the
// convergence outputs (time-to-within-ε-of-fair, fraction-of-time-
// fair, post-convergence oscillation) computed per replication against
// the epoch-incremental fair-rate timeline.
func ConvergenceSweep(o NetsimOptions) (*scenario.Sweep, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	// One 8-layer session sends 128 packets per time unit, so the run
	// lasts about o.Packets/128; churn spans it with one leave/rejoin
	// round every eighth of the horizon.
	horizon := float64(o.Packets) / 128
	window := o.Packets / 128
	if window < 1 {
		window = 1
	}
	base := scenario.Spec{
		Topology: scenario.TopologySpec{
			Kind:             "star",
			SharedCapacity:   24,
			FanoutCapacities: []float64{2, 8, 32, 64},
		},
		Sessions:     []scenario.SessionSpec{{Protocol: "Deterministic", Layers: 8}},
		DefaultLink:  &scenario.LinkSpec{Kind: "capacity"},
		Packets:      o.Packets,
		Seed:         o.Seed,
		Probe:        &scenario.ProbeSpec{PacketWindow: window},
		Churn:        &scenario.ChurnSpec{Downtime: horizon / 20, Horizon: horizon},
		Replications: scenario.ReplicationSpec{N: o.Trials, Workers: o.Workers},
	}
	return &scenario.Sweep{
		Name: fmt.Sprintf("netsim convergence: time-to-fair vs protocol and churn (capacity star 2/8/32/64 behind 24, %d packets, %d trials)",
			o.Packets, o.Trials),
		Base: base,
		Axes: []scenario.Axis{
			{Field: "sessions.protocol", Values: protocolValues()},
			{Field: "churn.interval", Values: []any{0.0, horizon / 8}},
		},
		Outputs: []string{"time_to_fair", "frac_time_fair", "oscillation"},
	}, nil
}

// NetsimConvergence runs ConvergenceSweep and tabulates the
// per-protocol convergence metrics for the stable and churning points.
func NetsimConvergence(w io.Writer, o NetsimOptions) error {
	sw, err := ConvergenceSweep(o)
	if err != nil {
		return err
	}
	res, err := scenario.RunSweepObserved(sw, o.Observe)
	if err != nil {
		return err
	}
	t := trace.NewTable(sw.Name,
		"protocol", "scenario", "time to fair", "ci95", "frac time fair", "oscillation")
	for _, p := range res.Points {
		name := "churning"
		if p.Coords[1] == "0" {
			name = "stable"
		}
		ttf, err := res.Cell(p.ID, "time_to_fair")
		if err != nil {
			return err
		}
		frac, err := res.Cell(p.ID, "frac_time_fair")
		if err != nil {
			return err
		}
		osc, err := res.Cell(p.ID, "oscillation")
		if err != nil {
			return err
		}
		t.AddRow(p.Coords[0], name,
			trace.Float(ttf.Mean), trace.Float(ttf.CI95()),
			trace.Float(frac.Mean), trace.Float(osc.Mean))
	}
	_, err = t.WriteTo(w)
	return err
}

// NetsimAudit is the end-to-end "simulate, then audit against the
// paper's fair allocation" pipeline on a capacity-coupled star with
// heterogeneous receivers: one spec selects the rates, max-min
// benchmark, fairness-property and gap stages, and the report shows the
// achieved rates tracking their analytic max-min fair counterparts.
func NetsimAudit(w io.Writer, o NetsimOptions) error {
	res, err := scenario.RunObserved(AuditSpec(o), o.Observe)
	if err != nil {
		return err
	}
	if err := res.WriteReport(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "gap = achieved/fair; the layered sawtooth keeps protocols below but")
	fmt.Fprintln(w, "tracking their max-min fair rates (the paper's closing claim, audited)")
	return nil
}

// AuditSpec is NetsimAudit's declarative input (exported so the test
// suite can pin its JSON round-trip alongside cmd/netsim -spec).
func AuditSpec(o NetsimOptions) *scenario.Spec {
	return &scenario.Spec{
		Name: fmt.Sprintf("netsim audit: capacity star, fanouts 2/8/32 + a 64-wide peer, %d packets, %d trials",
			o.Packets, o.Trials),
		Topology: scenario.TopologySpec{
			Kind:             "star",
			SharedCapacity:   24,
			FanoutCapacities: []float64{2, 8, 32, 64},
		},
		Sessions:     []scenario.SessionSpec{{Protocol: "Coordinated", Layers: 8}},
		DefaultLink:  &scenario.LinkSpec{Kind: "capacity"},
		Packets:      o.Packets * 2,
		Seed:         o.Seed,
		Replications: scenario.ReplicationSpec{N: o.Trials, Workers: o.Workers},
		Metrics: []string{
			scenario.MetricRates, scenario.MetricMaxMin,
			scenario.MetricFairness, scenario.MetricGap,
		},
	}
}

// largeTopoSpec assembles the shared shape of the two large-topology
// scenarios: capacity-coupled links, mixed protocols cycled across
// sessions, and the goodput + redundancy stages.
func largeTopoSpec(o NetsimOptions, topo scenario.TopologySpec) *scenario.Spec {
	return &scenario.Spec{
		Topology:     topo,
		Sessions:     mixedSessions(),
		DefaultLink:  &scenario.LinkSpec{Kind: "capacity"},
		Packets:      o.Packets,
		Seed:         o.Seed,
		Replications: scenario.ReplicationSpec{N: o.Trials, Workers: o.Workers},
	}
}

// NetsimScaleFree runs dozens of mixed-protocol sessions over a random
// power-law (preferential-attachment) graph with capacity-coupled
// links — the heavy-tailed regime where hub links carry many competing
// sessions at once. The topology itself is deterministic in the seed.
func NetsimScaleFree(w io.Writer, o NetsimOptions) error {
	c, err := scenario.Compile(largeTopoSpec(o, scenario.TopologySpec{Kind: "scalefree"}))
	if err != nil {
		return err
	}
	c.Spec.Name = fmt.Sprintf("netsim scale-free: %d nodes, %d links, %d sessions (mixed protocols), %d packets, %d trials",
		c.Net.Graph().NumNodes(), c.Net.NumLinks(), c.Net.NumSessions(), o.Packets, o.Trials)
	res, err := scenario.RunCompiledObserved(c, o.Observe)
	if err != nil {
		return err
	}
	return res.WriteReport(w)
}

// NetsimFatTree runs dozens of mixed-protocol sessions across a k-ary
// fat-tree fabric with a mildly oversubscribed core — the multipath
// data-center scenario collapsed onto per-session BFS trees.
func NetsimFatTree(w io.Writer, o NetsimOptions) error {
	const k = 6
	c, err := scenario.Compile(largeTopoSpec(o, scenario.TopologySpec{Kind: "fattree", K: k}))
	if err != nil {
		return err
	}
	c.Spec.Name = fmt.Sprintf("netsim fat-tree: k=%d (%d hosts, %d links), %d sessions (mixed protocols), %d packets, %d trials",
		k, k*k*k/4, c.Net.NumLinks(), c.Net.NumSessions(), o.Packets, o.Trials)
	res, err := scenario.RunCompiledObserved(c, o.Observe)
	if err != nil {
		return err
	}
	return res.WriteReport(w)
}
