package experiments

import (
	"strings"
	"testing"
)

func tinyNetsimOptions() NetsimOptions {
	return NetsimOptions{Receivers: 8, Packets: 6000, Trials: 2, Workers: 2, Seed: 31}
}

func TestNetsimStarDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimStar(w, tinyNetsimOptions()) })
	for _, want := range []string{"netsim star", "Coordinated", "Deterministic", "shared redundancy"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestNetsimAuditDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimAudit(w, tinyNetsimOptions()) })
	for _, want := range []string{
		"netsim audit", "max-min fair rate", "fairness gap",
		"max-min benchmark properties", "simulated-rate properties",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Theorem 1 sanity: the analytic benchmark of an all-multi-rate
	// network must satisfy all four properties.
	if !strings.Contains(out, "max-min benchmark properties: fully-utilized-receiver: holds") {
		t.Errorf("benchmark audit should hold all properties:\n%s", out)
	}
}

func TestNetsimTreeDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimTree(w, tinyNetsimOptions()) })
	for _, want := range []string{"per-link redundancy vs tree depth", "depth 1 = root link"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestNetsimMeshDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimMesh(w, tinyNetsimOptions()) })
	for _, want := range []string{"netsim mesh", "S1", "S3", "backbone redundancy"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestNetsimChurnDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimChurn(w, tinyNetsimOptions()) })
	for _, want := range []string{"netsim churn", "stable", "churning"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestNetsimBackgroundDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimBackground(w, tinyNetsimOptions()) })
	for _, want := range []string{"background traffic", "droptail bottleneck"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultNetsimOptions(t *testing.T) {
	o := DefaultNetsimOptions()
	if o.Receivers < 1 || o.Packets < 1 || o.Trials < 1 {
		t.Fatalf("bad defaults %+v", o)
	}
}

func TestNetsimScaleFreeDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimScaleFree(w, tinyNetsimOptions()) })
	for _, want := range []string{"netsim scale-free", "receiver goodput", "max link redundancy"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestNetsimFatTreeDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimFatTree(w, tinyNetsimOptions()) })
	for _, want := range []string{"netsim fat-tree", "receiver goodput", "session root redundancy"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}
