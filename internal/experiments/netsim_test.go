package experiments

import (
	"strings"
	"testing"

	"mlfair/internal/scenario"
)

func tinyNetsimOptions() NetsimOptions {
	return NetsimOptions{Receivers: 8, Packets: 6000, Trials: 2, Workers: 2, Seed: 31}
}

func TestNetsimStarDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimStar(w, tinyNetsimOptions()) })
	for _, want := range []string{"netsim star", "Coordinated", "Deterministic", "shared redundancy"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestNetsimAuditDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimAudit(w, tinyNetsimOptions()) })
	for _, want := range []string{
		"netsim audit", "max-min fair rate", "fairness gap",
		"max-min benchmark properties", "simulated-rate properties",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Theorem 1 sanity: the analytic benchmark of an all-multi-rate
	// network must satisfy all four properties.
	if !strings.Contains(out, "max-min benchmark properties: fully-utilized-receiver: holds") {
		t.Errorf("benchmark audit should hold all properties:\n%s", out)
	}
}

func TestNetsimTreeDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimTree(w, tinyNetsimOptions()) })
	for _, want := range []string{"per-link redundancy vs tree depth", "depth 1 = root link"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestNetsimMeshDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimMesh(w, tinyNetsimOptions()) })
	for _, want := range []string{"netsim mesh", "S1", "S3", "backbone redundancy"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestNetsimChurnDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimChurn(w, tinyNetsimOptions()) })
	for _, want := range []string{"netsim churn", "stable", "churning"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestNetsimBackgroundDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimBackground(w, tinyNetsimOptions()) })
	for _, want := range []string{"background traffic", "droptail bottleneck"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultNetsimOptions(t *testing.T) {
	o := DefaultNetsimOptions()
	if o.Receivers < 1 || o.Packets < 1 || o.Trials < 1 {
		t.Fatalf("bad defaults %+v", o)
	}
}

func TestNetsimScaleFreeDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimScaleFree(w, tinyNetsimOptions()) })
	for _, want := range []string{"netsim scale-free", "receiver goodput", "max link redundancy"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestNetsimFatTreeDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimFatTree(w, tinyNetsimOptions()) })
	for _, want := range []string{"netsim fat-tree", "receiver goodput", "session root redundancy"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestNetsimFigure8Driver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimFigure8(w, tinyNetsimOptions()) })
	for _, want := range []string{"netsim figure 8", "ind. loss", "Coordinated", "Deterministic"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestNetsimLeaveLatencyDriver(t *testing.T) {
	out := capture(t, func(w *strings.Builder) error { return NetsimLeaveLatency(w, tinyNetsimOptions()) })
	for _, want := range []string{"netsim leave latency", "latency", "Uncoordinated"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// TestSweepBuildersRejectInvalidCounts: the sweep builders return
// errors — never panic — on degenerate point or replication counts.
func TestSweepBuildersRejectInvalidCounts(t *testing.T) {
	bad := []NetsimOptions{
		{Receivers: 0, Packets: 1000, Trials: 2},
		{Receivers: 5, Packets: 0, Trials: 2},
		{Receivers: 5, Packets: 1000, Trials: 0},
		{Receivers: 5, Packets: 1000, Trials: 2, Workers: -1},
	}
	for _, o := range bad {
		if _, err := StarProtocolSweep(o); err == nil {
			t.Errorf("StarProtocolSweep accepted %+v", o)
		}
		if _, err := Figure8Sweep(o, 0.0001); err == nil {
			t.Errorf("Figure8Sweep accepted %+v", o)
		}
		if _, err := BackgroundSweep(o); err == nil {
			t.Errorf("BackgroundSweep accepted %+v", o)
		}
		if _, err := LeaveLatencySweep(o); err == nil {
			t.Errorf("LeaveLatencySweep accepted %+v", o)
		}
		if _, err := ChurnSweep(o); err == nil {
			t.Errorf("ChurnSweep accepted %+v", o)
		}
	}
	if _, err := Figure8Sweep(DefaultNetsimOptions(), 1.5); err == nil {
		t.Error("Figure8Sweep accepted shared loss 1.5")
	}
	if _, err := Figure8Sweep(DefaultNetsimOptions(), -0.1); err == nil {
		t.Error("Figure8Sweep accepted negative shared loss")
	}
}

// TestWriteSweepSeriesNeedsTwoAxes: the series renderer errors — not
// panics — on a one-axis sweep.
func TestWriteSweepSeriesNeedsTwoAxes(t *testing.T) {
	sw, err := BackgroundSweep(tinyNetsimOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.RunSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := writeSweepSeries(&b, res, "t", "x", "best_rate"); err == nil {
		t.Fatal("one-axis sweep accepted by series renderer")
	}
}
