package experiments

import (
	"fmt"
	"io"

	"mlfair/internal/capsim"
	"mlfair/internal/protocol"
	"mlfair/internal/trace"
)

// Convergence closes the loop between the paper's theory (Section 2) and
// protocols (Section 4): on a capacity-constrained star where loss
// emerges from congestion rather than being configured, it compares each
// receiver's achieved long-term average rate against the fluid
// multi-rate max-min fair allocation of the same topology. The paper
// argues the protocols come "close" to the max-min fair rates; the table
// quantifies how close, per protocol.
func Convergence(w io.Writer, o ExtensionOptions) error {
	base := capsim.Config{
		SharedCapacity: 24,
		Sessions: []capsim.SessionConfig{
			{Layers: 8, FanoutCapacities: []float64{2, 8, 64}},
			{Layers: 8, FanoutCapacities: []float64{64}},
		},
		Packets: o.Packets * 8,
		Seed:    o.Seed,
	}
	fair := capsim.FairRates(base)

	t := trace.NewTable(
		fmt.Sprintf("Convergence to max-min fairness under closed-loop congestion (shared capacity %g)",
			base.SharedCapacity),
		"receiver", "fair rate", "Coordinated", "Uncoordinated", "Deterministic")
	achieved := map[protocol.Kind]*capsim.Result{}
	for _, k := range protocol.Kinds() {
		cfg := base
		cfg.Sessions = make([]capsim.SessionConfig, len(base.Sessions))
		copy(cfg.Sessions, base.Sessions)
		for i := range cfg.Sessions {
			cfg.Sessions[i].Protocol = k
		}
		res, err := capsim.Run(cfg)
		if err != nil {
			return err
		}
		achieved[k] = res
	}
	for si := range base.Sessions {
		for k := range base.Sessions[si].FanoutCapacities {
			row := []string{
				fmt.Sprintf("r%d,%d", si+1, k+1),
				trace.Float(fair[si][k]),
			}
			for _, kind := range protocol.Kinds() {
				got := achieved[kind].ReceiverRates[si][k]
				row = append(row, fmt.Sprintf("%s (%.0f%%)", trace.Float(got), got/fair[si][k]*100))
			}
			t.AddRow(row...)
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "percentages are achieved/fair; layered sawtooth dynamics keep")
	fmt.Fprintln(w, "protocols below but tracking their max-min fair rates")
	fmt.Fprintln(w)
	return nil
}
