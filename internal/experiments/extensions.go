package experiments

import (
	"fmt"
	"io"

	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
	"mlfair/internal/protocol"
	"mlfair/internal/sim"
	"mlfair/internal/stats"
	"mlfair/internal/trace"
)

// The drivers in this file cover the paper's Section 5 ("related / future
// work") directions that this library implements beyond the published
// evaluation: leave latency, priority dropping, and weighted (TCP-style)
// max-min fairness. DESIGN.md lists them as extensions; they are not
// figures of the paper.

// ExtensionOptions sizes the extension simulations.
type ExtensionOptions struct {
	Receivers int
	Packets   int
	Trials    int
	Seed      uint64
}

// DefaultExtensionOptions returns a configuration that resolves the
// effects clearly in a few seconds.
func DefaultExtensionOptions() ExtensionOptions {
	return ExtensionOptions{Receivers: 50, Packets: 50000, Trials: 8, Seed: 555}
}

// LeaveLatency sweeps IGMP-style leave-processing latency and reports
// its inflation of shared-link redundancy, quantifying the paper's
// prediction that "long leave latencies will also increase redundancy".
func LeaveLatency(w io.Writer, o ExtensionOptions) error {
	latencies := []float64{0, 0.5, 1, 2, 4, 8, 16}
	kinds := protocol.Kinds()
	series := make([]trace.Series, len(kinds))
	for ki, k := range kinds {
		ys := make([]float64, len(latencies))
		for li, lat := range latencies {
			reds, err := sim.RunReplicated(sim.Config{
				Layers: 8, Receivers: o.Receivers, SharedLoss: 0.0001,
				IndependentLoss: 0.04, Protocol: k, Packets: o.Packets,
				Seed: o.Seed, LeaveLatency: lat,
			}, o.Trials)
			if err != nil {
				return err
			}
			ys[li] = stats.Mean(reds)
		}
		series[ki] = trace.Series{Name: k.String(), Y: ys}
	}
	return trace.WriteSeries(w,
		fmt.Sprintf("Extension: redundancy vs leave latency (ind. loss 0.04, %d receivers)", o.Receivers),
		"latency", latencies, series)
}

// PriorityDrop compares uniform and priority dropping at equal mean loss
// rates, answering the paper's open question of whether priority
// dropping "might aid in reducing redundancy by increasing coordination
// among receivers".
func PriorityDrop(w io.Writer, o ExtensionOptions) error {
	losses := []float64{0.02, 0.04, 0.08}
	t := trace.NewTable(
		fmt.Sprintf("Extension: uniform vs priority dropping (%d receivers, shared loss 0.0001)", o.Receivers),
		"ind. loss", "protocol", "uniform", "priority", "change")
	for _, loss := range losses {
		for _, k := range protocol.Kinds() {
			point := func(policy sim.DropPolicy) (float64, error) {
				reds, err := sim.RunReplicated(sim.Config{
					Layers: 8, Receivers: o.Receivers, SharedLoss: 0.0001,
					IndependentLoss: loss, Protocol: k, Packets: o.Packets,
					Seed: o.Seed, Drop: policy,
				}, o.Trials)
				if err != nil {
					return 0, err
				}
				return stats.Mean(reds), nil
			}
			uni, err := point(sim.UniformDrop)
			if err != nil {
				return err
			}
			pri, err := point(sim.PriorityDrop)
			if err != nil {
				return err
			}
			t.AddRow(trace.Float(loss), k.String(), trace.Float(uni), trace.Float(pri),
				fmt.Sprintf("%+.0f%%", (pri/uni-1)*100))
		}
	}
	_, err := t.WriteTo(w)
	return err
}

// WeightedFairness demonstrates the Section 5 TCP-fairness extension:
// three same-path sessions weighted by inverse RTT split a bottleneck in
// proportion to their weights, and a multicast session's usage follows
// its fastest weighted receiver.
func WeightedFairness(w io.Writer) error {
	b := netmodel.NewBuilder()
	bottleneck := b.AddLink(12)
	tail := b.AddLink(100)
	// Three unicast "TCP-like" sessions with RTTs 200ms, 100ms, 66ms.
	rtts := []float64{0.2, 0.1, 1.0 / 15}
	for range rtts {
		s := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
		b.SetPath(s, 0, bottleneck)
	}
	// One multicast session with a near and a far receiver.
	m := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
	b.SetPath(m, 0, bottleneck)
	b.SetPath(m, 1, bottleneck, tail)
	net, err := b.Build()
	if err != nil {
		return err
	}
	weights := maxmin.Weights{{1 / rtts[0]}, {1 / rtts[1]}, {1 / rtts[2]}, {10, 5}}
	res, err := maxmin.AllocateWeighted(net, weights)
	if err != nil {
		return err
	}
	t := trace.NewTable("Extension: weighted (TCP-style) max-min fairness on a 12-unit bottleneck",
		"receiver", "weight (1/RTT)", "rate", "rate/weight")
	for _, id := range net.ReceiverIDs() {
		wgt := weights[id.Session][id.Receiver]
		rate := res.Alloc.RateOf(id)
		t.AddRow(id.String(), trace.Float(wgt), trace.Float(rate), trace.Float(rate/wgt))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "equal rate/weight across unpinned receivers = weighted max-min fair")
	fmt.Fprintln(w)
	return nil
}
