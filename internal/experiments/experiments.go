// Package experiments contains one driver per figure and table of the
// paper's evaluation. Each driver regenerates its artifact as a text
// table (via the trace package) and returns the underlying data, so the
// same code backs `cmd/experiments`, the benchmark suite, and
// EXPERIMENTS.md.
//
// Absolute numbers from the protocol simulations depend on our
// reconstructed substrate (see DESIGN.md); the drivers exist to verify
// the paper's *shapes*: who wins, by what factor, and where the
// crossovers fall.
package experiments

import (
	"fmt"
	"io"

	"mlfair/internal/fairness"
	"mlfair/internal/layering"
	"mlfair/internal/markov"
	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
	"mlfair/internal/protocol"
	"mlfair/internal/redundancy"
	"mlfair/internal/sim"
	"mlfair/internal/stats"
	"mlfair/internal/topology"
	"mlfair/internal/trace"
)

// allocReport prints a network's max-min fair allocation, session link
// rates on named links, and the four-property fairness report.
func allocReport(w io.Writer, title string, n *topology.Named, linkOrder []string) error {
	res, err := maxmin.Allocate(n.Network)
	if err != nil {
		return err
	}
	a := res.Alloc
	fmt.Fprintf(w, "## %s\n", title)
	fmt.Fprintf(w, "allocation: %s\n", a)

	t := trace.NewTable("", append([]string{"link", "capacity", "u_j", "full"},
		sessionHeaders(n.Network)...)...)
	for _, label := range linkOrder {
		j := n.LinkIndex(label)
		cells := []string{label, trace.Float(n.Network.Capacity(j)), trace.Float(a.LinkRate(j)),
			fmt.Sprintf("%v", a.FullyUtilized(j))}
		for i := 0; i < n.Network.NumSessions(); i++ {
			cells = append(cells, trace.Float(a.SessionLinkRate(i, j)))
		}
		t.AddRow(cells...)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	rep := fairness.Check(a)
	fmt.Fprintf(w, "properties: %s\n\n", rep.Summary())
	return nil
}

func sessionHeaders(net *netmodel.Network) []string {
	h := make([]string, net.NumSessions())
	for i := range h {
		h[i] = fmt.Sprintf("u_%d,j", i+1)
	}
	return h
}

// Figure1 regenerates the Figure 1 walk-through: the multi-rate max-min
// fair allocation and its link annotations, with all four properties
// holding.
func Figure1(w io.Writer) error {
	return allocReport(w, "Figure 1: sample multi-rate network", topology.Figure1(),
		[]string{"l1", "l2", "l3", "l4"})
}

// Figure2 regenerates the Section 2.3 comparison: the single-rate
// max-min fair allocation failing three properties, then the multi-rate
// replacement satisfying all four.
func Figure2(w io.Writer) error {
	if err := allocReport(w, "Figure 2: S1 single-rate (three properties fail)",
		topology.Figure2(netmodel.SingleRate), []string{"l1", "l2", "l3", "l4"}); err != nil {
		return err
	}
	return allocReport(w, "Figure 2': S1 replaced by an identical multi-rate session (Theorem 1)",
		topology.Figure2(netmodel.MultiRate), []string{"l1", "l2", "l3", "l4"})
}

// Figure3 regenerates the receiver-removal examples: rates before and
// after removing r3,2, shifting in opposite directions in (a) and (b).
func Figure3(w io.Writer) error {
	for _, c := range []struct {
		name string
		net  *topology.Named
	}{{"Figure 3(a): removal decreases r3,1, increases r1,1", topology.Figure3a()},
		{"Figure 3(b): removal increases r3,1, decreases r1,1", topology.Figure3b()}} {
		before, err := maxmin.Allocate(c.net.Network)
		if err != nil {
			return err
		}
		afterNet, err := c.net.Network.RemoveReceiver(netmodel.ReceiverID{Session: 2, Receiver: 1})
		if err != nil {
			return err
		}
		after, err := maxmin.Allocate(afterNet)
		if err != nil {
			return err
		}
		t := trace.NewTable(c.name, "receiver", "before", "after")
		t.AddRow("r1,1", trace.Float(before.Alloc.Rate(0, 0)), trace.Float(after.Alloc.Rate(0, 0)))
		t.AddRow("r2,1", trace.Float(before.Alloc.Rate(1, 0)), trace.Float(after.Alloc.Rate(1, 0)))
		t.AddRow("r3,1", trace.Float(before.Alloc.Rate(2, 0)), trace.Float(after.Alloc.Rate(2, 0)))
		t.AddRow("r3,2", trace.Float(before.Alloc.Rate(2, 1)), "-")
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure4 regenerates the redundancy example: a multi-rate session with
// redundancy 2 on the shared link breaks the session-perspective
// properties.
func Figure4(w io.Writer) error {
	n := topology.Figure4(2)
	if err := allocReport(w, "Figure 4: redundancy 2 on the shared link l4",
		n, []string{"l4", "l1", "l2", "l3"}); err != nil {
		return err
	}
	res, err := maxmin.Allocate(n.Network)
	if err != nil {
		return err
	}
	r, _ := redundancy.OfAllocation(res.Alloc, 0, n.LinkIndex("l4"))
	fmt.Fprintf(w, "measured Definition-3 redundancy of S1 on l4: %s\n\n", trace.Float(r))
	return nil
}

// Section3Example regenerates the fixed-layer nonexistence example: the
// seven feasible allocations and the absence of a max-min fair one.
func Section3Example(w io.Writer) error {
	const c = 6.0
	net := topology.SingleLink(c).Network
	schemes := []layering.Scheme{layering.Uniform(3, c/3), layering.Uniform(2, c/2)}
	feasible, err := layering.FixedLayerAllocations(net, schemes)
	if err != nil {
		return err
	}
	t := trace.NewTable(
		"Section 3 example: fixed layers (c/3 ×3 vs c/2 ×2) on one link of capacity c=6",
		"a1", "a2", "max-min fair?")
	for _, a := range feasible {
		t.AddRow(trace.Float(a.Rate(0, 0)), trace.Float(a.Rate(1, 0)),
			fmt.Sprintf("%v", layering.IsMaxMinOver(a, feasible)))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	_, exists, err := layering.FindMaxMinFixed(net, schemes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "max-min fair allocation exists: %v (paper: none exists)\n\n", exists)
	return nil
}

// Figure5 regenerates the single-layer random-join redundancy curves:
// redundancy versus the number of receivers sharing the link, for the
// paper's five rate configurations (layer rate Λ = 1).
func Figure5(w io.Writer) error {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	configs := []struct {
		name  string
		rates func(n int) []float64
	}{
		{"All 0.1", uniformRates(0.1)},
		{"All 0.5", uniformRates(0.5)},
		{"1st .5 rest .1", firstRest(0.5, 0.1)},
		{"All 0.9", uniformRates(0.9)},
		{"1st .9 rest .1", firstRest(0.9, 0.1)},
	}
	series := make([]trace.Series, len(configs))
	for ci, cfg := range configs {
		ys := make([]float64, len(xs))
		for xi, x := range xs {
			ys[xi] = redundancy.SingleLayer(cfg.rates(int(x)), 1)
		}
		series[ci] = trace.Series{Name: cfg.name, Y: ys}
	}
	return trace.WriteSeries(w, "Figure 5: redundancy of a single layer with random joins",
		"receivers", xs, series)
}

func uniformRates(z float64) func(int) []float64 {
	return func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = z
		}
		return v
	}
}

func firstRest(first, rest float64) func(int) []float64 {
	return func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rest
		}
		v[0] = first
		return v
	}
}

// Figure6 regenerates the normalized constrained fair rate versus
// redundancy v, for the paper's multi-rate session fractions m/n.
func Figure6(w io.Writer) error {
	var xs []float64
	for v := 1.0; v <= 10.0001; v += 0.5 {
		xs = append(xs, v)
	}
	betas := []float64{0.01, 0.05, 0.1, 1}
	series := make([]trace.Series, len(betas))
	for bi, beta := range betas {
		ys := make([]float64, len(xs))
		for xi, v := range xs {
			ys[xi] = redundancy.NormalizedFairRate(beta, v)
		}
		series[bi] = trace.Series{Name: fmt.Sprintf("m/n=%g", beta), Y: ys}
	}
	return trace.WriteSeries(w, "Figure 6: impact of redundancy on fair rates (normalized by c/n)",
		"redundancy", xs, series)
}

// Figure8Options sizes the protocol simulation sweep. The paper's
// configuration is 8 layers, 100 receivers, 100,000 packets and 30
// trials per point; Quick shrinks it for fast regression runs.
type Figure8Options struct {
	Receivers int
	Packets   int
	Trials    int
	Seed      uint64
}

// PaperFigure8Options returns the full-fidelity configuration.
func PaperFigure8Options() Figure8Options {
	return Figure8Options{Receivers: 100, Packets: 100000, Trials: 30, Seed: 1999}
}

// QuickFigure8Options returns a reduced configuration for smoke runs.
func QuickFigure8Options() Figure8Options {
	return Figure8Options{Receivers: 40, Packets: 20000, Trials: 5, Seed: 1999}
}

// Figure8Point runs one sweep point and returns the mean redundancy and
// its 95% confidence half-width.
func Figure8Point(kind protocol.Kind, sharedLoss, indLoss float64, o Figure8Options) (stats.Summary, error) {
	reds, err := sim.RunReplicated(sim.Config{
		Layers: 8, Receivers: o.Receivers,
		SharedLoss: sharedLoss, IndependentLoss: indLoss,
		Protocol: kind, Packets: o.Packets, Seed: o.Seed,
	}, o.Trials)
	if err != nil {
		return stats.Summary{}, err
	}
	return stats.Summarize(reds), nil
}

// Figure8 regenerates one panel of Figure 8: session redundancy on the
// shared link versus independent (fanout) loss, for the three protocols,
// at the given shared-link loss rate (the paper plots 0.0001 and 0.05).
func Figure8(w io.Writer, sharedLoss float64, o Figure8Options) error {
	xs := []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1}
	kinds := protocol.Kinds()
	series := make([]trace.Series, len(kinds))
	for ki, k := range kinds {
		ys := make([]float64, len(xs))
		for xi, x := range xs {
			s, err := Figure8Point(k, sharedLoss, x, o)
			if err != nil {
				return err
			}
			ys[xi] = s.Mean
		}
		series[ki] = trace.Series{Name: k.String(), Y: ys}
	}
	title := fmt.Sprintf("Figure 8 (shared loss %g): redundancy vs independent loss — %d receivers, 8 layers, %d packets × %d trials",
		sharedLoss, o.Receivers, o.Packets, o.Trials)
	return trace.WriteSeries(w, title, "ind. loss", xs, series)
}

// MarkovAnalysis regenerates the Section 4 analytical finding on the
// two-receiver star (Figure 7a): sweeping the split of a fixed
// independent-loss budget between the receivers, redundancy peaks when
// the receivers' loss rates are equal.
func MarkovAnalysis(w io.Writer) error {
	const budget = 0.1
	splits := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	kinds := protocol.Kinds()
	series := make([]trace.Series, len(kinds))
	for ki, k := range kinds {
		layers := 4
		if k == protocol.Deterministic {
			layers = 3
		}
		ys := make([]float64, len(splits))
		for si, s := range splits {
			m, err := markov.BuildStar(k, markov.StarParams{
				Layers: layers, SharedLoss: 0.001,
				Loss1: budget * s, Loss2: budget * (1 - s),
			})
			if err != nil {
				return err
			}
			ms, err := m.Solve()
			if err != nil {
				return err
			}
			ys[si] = ms.Redundancy
		}
		series[ki] = trace.Series{Name: k.String(), Y: ys}
	}
	return trace.WriteSeries(w,
		"Markov analysis (Fig 7a): redundancy vs split of a 0.1 loss budget (0.5 = equal loss)",
		"share at r1", splits, series)
}

// RunAll regenerates every artifact. quick selects the reduced Figure 8
// configuration.
func RunAll(w io.Writer, quick bool) error {
	steps := []func(io.Writer) error{
		Figure1, Figure2, Figure3, Figure4, Section3Example, Figure5, Figure6, MarkovAnalysis,
	}
	for _, f := range steps {
		if err := f(w); err != nil {
			return err
		}
	}
	o := PaperFigure8Options()
	if quick {
		o = QuickFigure8Options()
	}
	for _, shared := range []float64{0.0001, 0.05} {
		if err := Figure8(w, shared, o); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
