package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"

	"mlfair/internal/netsim"
	"mlfair/internal/protocol"
	"mlfair/internal/stats"
	"mlfair/internal/topology"
)

// planetaryOptions derives the planetary topology sizing from the
// requested receiver count: the region/core/receivers-per-PoP shape is
// fixed at the 1M preset's and only the PoP count scales, so
// -receivers 1048576 reproduces topology.PlanetaryOptions1M exactly and
// -receivers 10485760 reproduces PlanetaryOptions10M.
func planetaryOptions(receivers int) topology.PlanetaryOptions {
	o := topology.PlanetaryOptions1M()
	pops := receivers / (o.Regions * o.ReceiversPerPoP)
	if pops < 1 {
		pops = 1
	}
	o.PoPs = pops
	return o
}

// NetsimPlanetary is the planetary-scale single-run scenario (ROADMAP
// item 2 at intra-run scale): one run over Regions link-disjoint
// regional backbones — capacity-coupled preferential-attachment cores
// with PoP fan-out and up to 10^7 receivers — executed with
// session-sharded event loops (Config.Shards) and a memory plan logged
// up front. Because regions share no link, every region is its own
// shard group; the Result is invariant in the shard count, so the
// summary CSV is deterministic in (receivers, packets, trials, seed)
// regardless of the host's core count.
func NetsimPlanetary(w io.Writer, o NetsimOptions) error {
	if err := o.Validate(); err != nil {
		return err
	}
	po := planetaryOptions(o.Receivers)
	rng := rand.New(rand.NewPCG(o.Seed, o.Seed^0x9e3779b97f4a7c15))
	net, firstAccess, err := topology.Planetary(rng, po)
	if err != nil {
		return err
	}
	// Core links ride the capacity model (they are where sessions would
	// couple if regions shared links); access links are perfect — the
	// 64 receivers behind each PoP already share fate on the core path.
	links := make([]netsim.LinkSpec, net.NumLinks())
	for j := 0; j < firstAccess; j++ {
		links[j] = netsim.LinkSpec{Kind: netsim.Capacity}
	}
	kinds := protocol.Kinds()
	sess := make([]netsim.SessionConfig, net.NumSessions())
	for i := range sess {
		sess[i] = netsim.SessionConfig{Protocol: kinds[i%len(kinds)], Layers: 8}
	}
	cfg := o.engineConfig(netsim.Config{
		Network:  net,
		Links:    links,
		Sessions: sess,
		Packets:  o.Packets,
		Seed:     o.Seed,
		Shards:   runtime.NumCPU(),
		// The access links are the Sreenivasan bottleneck boundary:
		// cutting them shards each region's delivery fan-out across
		// cores as per-PoP subtrees, while the thin core prefix stays
		// one short sequential walk per engine. Results stay invariant
		// in the shard and worker counts, so the golden output is
		// machine-independent.
		CutLinks: topology.PlanetaryCutFrontier(firstAccess, net.NumLinks()),
	})
	plan, err := netsim.PlanMemory(cfg)
	if err != nil {
		return err
	}
	if o.Observe != nil {
		o.Observe.Manifest.SetDecomposition(plan.Groups, plan.Subtrees, plan.CutFrontier)
	}
	fmt.Fprintf(w, "netsim planetary: %d regions x %d PoPs x %d receivers = %d receivers, %d links, %d packets, %d trials\n",
		po.Regions, po.PoPs, po.ReceiversPerPoP, po.NumReceivers(), net.NumLinks(), o.Packets, o.Trials)
	fmt.Fprintf(w, "%s\n", plan)
	accMean := make([]stats.Accumulator, po.Regions)
	accBest := make([]stats.Accumulator, po.Regions)
	err = netsim.StreamReplications(cfg, o.Trials, o.Workers, func(_ int, r *netsim.Result) error {
		for i := 0; i < po.Regions; i++ {
			sum, best := 0.0, 0.0
			for _, v := range r.ReceiverRates[i] {
				sum += v
				if v > best {
					best = v
				}
			}
			accMean[i].Add(sum / float64(len(r.ReceiverRates[i])))
			accBest[i].Add(best)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "region,protocol,receivers,mean_rate,ci95,best_rate")
	for i := 0; i < po.Regions; i++ {
		fmt.Fprintf(w, "%d,%s,%d,%.6f,%.6f,%.6f\n",
			i, kinds[i%len(kinds)], po.PoPs*po.ReceiversPerPoP,
			accMean[i].Mean(), accMean[i].CI95(), accBest[i].Mean())
	}
	return nil
}
