package topology

import (
	"math/rand/v2"
	"testing"

	"mlfair/internal/fairness"
	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
	"mlfair/internal/routing"
)

func allocate(t *testing.T, net *netmodel.Network) *netmodel.Allocation {
	t.Helper()
	res, err := maxmin.Allocate(net)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	return res.Alloc
}

func wantRate(t *testing.T, a *netmodel.Allocation, i, k int, want float64) {
	t.Helper()
	if got := a.Rate(i, k); !netmodel.Eq(got, want) {
		t.Errorf("a[%d][%d] = %v, want %v (%s)", i, k, got, want, a)
	}
}

// TestFigure1GraphForm: the graph-built Figure 1 reproduces the paper's
// rates and annotations, and its sessions are proper multicast trees.
func TestFigure1GraphForm(t *testing.T) {
	f := Figure1()
	a := allocate(t, f.Network)
	wantRate(t, a, 0, 0, 1)
	wantRate(t, a, 1, 0, 1)
	wantRate(t, a, 1, 1, 2)
	wantRate(t, a, 2, 0, 1)
	wantRate(t, a, 2, 1, 2)
	for i := 0; i < 3; i++ {
		if err := routing.TreeCheck(f.Network, i); err != nil {
			t.Errorf("session %d not a tree: %v", i, err)
		}
	}
	if got := a.SessionLinkRate(2, f.LinkIndex("l1")); !netmodel.Eq(got, 2) {
		t.Errorf("u_{3,l1} = %v, want 2", got)
	}
	if !a.FullyUtilized(f.LinkIndex("l4")) || !a.FullyUtilized(f.LinkIndex("l3")) {
		t.Error("l3 and l4 should be fully utilized")
	}
	if rep := fairness.Check(a); !rep.AllHold() {
		t.Errorf("Figure 1 fairness: %s", rep.Summary())
	}
}

func TestFigure2BothTypes(t *testing.T) {
	aS := allocate(t, Figure2(netmodel.SingleRate).Network)
	for k := 0; k < 3; k++ {
		wantRate(t, aS, 0, k, 2)
	}
	wantRate(t, aS, 1, 0, 3)

	aM := allocate(t, Figure2(netmodel.MultiRate).Network)
	wantRate(t, aM, 0, 0, 2.5)
	wantRate(t, aM, 0, 1, 2)
	wantRate(t, aM, 0, 2, 3)
	wantRate(t, aM, 1, 0, 2.5)
}

func TestFigure4LinkAnnotation(t *testing.T) {
	f := Figure4(2)
	a := allocate(t, f.Network)
	for k := 0; k < 3; k++ {
		wantRate(t, a, 0, k, 2)
	}
	wantRate(t, a, 1, 0, 2)
	l4 := f.LinkIndex("l4")
	if got := a.SessionLinkRate(0, l4); !netmodel.Eq(got, 4) {
		t.Errorf("u_{1,l4} = %v, want 4", got)
	}
	rep := fairness.Check(a)
	if rep.PerSessionLinkFair() {
		t.Error("per-session-link-fairness should fail in Figure 4")
	}
}

// TestFigure3aRemovalShifts reproduces the Figure 3(a) phenomenon:
// removing r3,2 decreases r3,1 and increases r1,1.
func TestFigure3aRemovalShifts(t *testing.T) {
	f := Figure3a()
	before := allocate(t, f.Network)
	wantRate(t, before, 0, 0, 3)
	wantRate(t, before, 1, 0, 2)
	wantRate(t, before, 2, 0, 8)
	wantRate(t, before, 2, 1, 2)

	afterNet, err := f.Network.RemoveReceiver(netmodel.ReceiverID{Session: 2, Receiver: 1})
	if err != nil {
		t.Fatal(err)
	}
	after := allocate(t, afterNet)
	wantRate(t, after, 0, 0, 5) // r1,1 increased 3 -> 5
	wantRate(t, after, 1, 0, 4)
	wantRate(t, after, 2, 0, 6) // r3,1 decreased 8 -> 6
}

// TestFigure3bRemovalShifts reproduces Figure 3(b): removing r3,2
// increases r3,1 and decreases r1,1.
func TestFigure3bRemovalShifts(t *testing.T) {
	f := Figure3b()
	before := allocate(t, f.Network)
	wantRate(t, before, 0, 0, 5)
	wantRate(t, before, 1, 0, 2)
	wantRate(t, before, 2, 0, 7)
	wantRate(t, before, 2, 1, 2)

	afterNet, err := f.Network.RemoveReceiver(netmodel.ReceiverID{Session: 2, Receiver: 1})
	if err != nil {
		t.Fatal(err)
	}
	after := allocate(t, afterNet)
	wantRate(t, after, 0, 0, 3.5) // r1,1 decreased 5 -> 3.5
	wantRate(t, after, 1, 0, 3.5)
	wantRate(t, after, 2, 0, 8.5) // r3,1 increased 7 -> 8.5
}

func TestSingleLink(t *testing.T) {
	f := SingleLink(6)
	a := allocate(t, f.Network)
	wantRate(t, a, 0, 0, 3)
	wantRate(t, a, 1, 0, 3)
}

func TestStar(t *testing.T) {
	st := Star(netmodel.MultiRate, 10, []float64{1, 2, 30})
	a := allocate(t, st.Network)
	// Fanout caps bind receivers 0 and 1; receiver 2 is bound by its
	// share of the shared link: 10 - 1 - ... shared link carries session
	// max = a of fastest receiver only (multi-rate, one session):
	// u_shared = max(1,2,a3) <= 10 -> receiver 2 gets 10.
	wantRate(t, a, 0, 0, 1)
	wantRate(t, a, 0, 1, 2)
	wantRate(t, a, 0, 2, 10)
}

func TestStarSingleRate(t *testing.T) {
	st := Star(netmodel.SingleRate, 10, []float64{1, 2, 30})
	a := allocate(t, st.Network)
	for k := 0; k < 3; k++ {
		wantRate(t, a, 0, k, 1)
	}
}

func TestChain(t *testing.T) {
	ch := Chain(netmodel.MultiRate, []float64{5, 3, 8})
	a := allocate(t, ch.Network)
	// Receiver k is bound by the min capacity on links 0..k.
	wantRate(t, a, 0, 0, 5)
	wantRate(t, a, 0, 1, 3)
	wantRate(t, a, 0, 2, 3)
}

func TestBinaryTree(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	tr := BinaryTree(netmodel.MultiRate, 3, 1, 10, rng)
	if tr.Network.Session(0).NumReceivers() != 8 {
		t.Fatalf("depth-3 tree has %d leaves, want 8", tr.Network.Session(0).NumReceivers())
	}
	a := allocate(t, tr.Network)
	if err := a.Feasible(); err != nil {
		t.Fatal(err)
	}
	if err := routing.TreeCheck(tr.Network, 0); err != nil {
		t.Fatal(err)
	}
	// Multi-rate, single session: every receiver is bound by the min
	// capacity on its own root-to-leaf path.
	for k := 0; k < 8; k++ {
		min := netmodel.NoRateCap
		for _, j := range tr.Network.Path(0, k) {
			if c := tr.Network.Capacity(j); c < min {
				min = c
			}
		}
		if !netmodel.Eq(a.Rate(0, k), min) {
			t.Errorf("leaf %d rate %v, want path min %v", k, a.Rate(0, k), min)
		}
	}
}

func TestRandomNetworkProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 44))
	opts := DefaultRandomOptions()
	for trial := 0; trial < 50; trial++ {
		net := RandomNetwork(rng, opts)
		if net.NumSessions() != opts.Sessions {
			t.Fatalf("session count %d", net.NumSessions())
		}
		res, err := maxmin.Allocate(net)
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		if err := res.Alloc.Feasible(); err != nil {
			t.Fatalf("infeasible: %v", err)
		}
		// Sessions are routed on BFS trees.
		for i := 0; i < net.NumSessions(); i++ {
			if err := routing.TreeCheck(net, i); err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
		}
		// τ restriction: distinct member nodes per session.
		for i := 0; i < net.NumSessions(); i++ {
			seen := map[int]bool{}
			for _, nd := range net.Session(i).Receivers {
				if seen[nd] {
					t.Fatal("duplicate receiver node within session")
				}
				seen[nd] = true
			}
		}
	}
}

func TestRandomNetworkDeterministic(t *testing.T) {
	o := DefaultRandomOptions()
	n1 := RandomNetwork(rand.New(rand.NewPCG(7, 7)), o)
	n2 := RandomNetwork(rand.New(rand.NewPCG(7, 7)), o)
	if n1.NumLinks() != n2.NumLinks() || n1.NumReceivers() != n2.NumReceivers() {
		t.Fatal("same seed produced different networks")
	}
	a1 := allocate(t, n1)
	a2 := allocate(t, n2)
	v1, v2 := a1.OrderedVector(), a2.OrderedVector()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("same seed produced different allocations")
		}
	}
}

func TestLinkIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown label accepted")
		}
	}()
	Figure1().LinkIndex("nope")
}

func TestGeneratorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty star":    func() { Star(netmodel.MultiRate, 1, nil) },
		"empty chain":   func() { Chain(netmodel.MultiRate, nil) },
		"tree depth 0":  func() { BinaryTree(netmodel.MultiRate, 0, 1, 2, rand.New(rand.NewPCG(1, 1))) },
		"bad rand opts": func() { RandomNetwork(rand.New(rand.NewPCG(1, 1)), RandomOptions{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}
