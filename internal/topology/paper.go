// Package topology provides the concrete networks of the paper's figures
// and parameterized topology generators (stars, chains, trees, random
// networks) used by the experiment harness, tests and benchmarks.
//
// Figure networks are reconstructed from the paper's link annotations;
// DESIGN.md documents the reconstruction. Each returns a Named wrapper
// exposing link indices by their paper names (l1..l4) so experiments read
// like the text.
package topology

import (
	"mlfair/internal/netmodel"
	"mlfair/internal/routing"
)

// Named is a network with paper-style link names attached.
type Named struct {
	*netmodel.Network
	// Links maps a paper label ("l1") to the link index.
	Links map[string]int
}

// LinkIndex returns the index for a paper link label, panicking on
// unknown labels (these are fixed fixtures; a typo is a programming
// error).
func (n *Named) LinkIndex(label string) int {
	j, ok := n.Links[label]
	if !ok {
		panic("topology: unknown link label " + label)
	}
	return j
}

// Figure1 builds the sample network of Figure 1: three multi-rate
// sessions on a five-node graph.
//
//	SA(X1,X2) --l2:7-- J --l4:3-- E(r1,1 r2,1 r3,1)
//	SB(X3)    --l1:5-- J --l3:4-- F(r2,2 r3,2)
//
// The multi-rate max-min fair allocation is a1=(1), a2=(1,2), a3=(1,2)
// with session link rates l1=(0:0:2), l2=(1:2:0), l3=(0:2:2),
// l4=(1:1:1), matching the figure's annotations.
func Figure1() *Named {
	const (
		sa = iota // X1, X2
		sb        // X3
		j         // junction
		e         // r1,1 r2,1 r3,1
		f         // r2,2 r3,2
	)
	g := netmodel.NewGraph(5)
	l1 := g.AddLink(sb, j, 5)
	l2 := g.AddLink(sa, j, 7)
	l3 := g.AddLink(j, f, 4)
	l4 := g.AddLink(j, e, 3)
	sessions := []*netmodel.Session{
		{Sender: sa, Receivers: []int{e}, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap},
		{Sender: sa, Receivers: []int{e, f}, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap},
		{Sender: sb, Receivers: []int{e, f}, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap},
	}
	net, err := routing.BuildNetwork(g, sessions)
	if err != nil {
		panic("topology: Figure1: " + err.Error())
	}
	return &Named{Network: net, Links: map[string]int{"l1": l1, "l2": l2, "l3": l3, "l4": l4}}
}

// Figure2 builds the network of Figure 2: S1 (three receivers, typed by
// the argument) and the unicast S2 whose receiver shares r1,1's
// data-path.
//
//	S(X1,X2) --l1:5-- A --l4:6-- B(r1,1 r2,1)
//	S        --l2:2-- C(r1,2)
//	S        --l3:3-- D(r1,3)
//
// With S1 single-rate the max-min fair allocation is a1=(2,2,2), a2=3 —
// the configuration of Section 2.3 in which three of the four fairness
// properties fail. With S1 multi-rate it is a1=(2.5,2,3), a2=2.5.
// κ values are 100 as in the paper ("large enough not to bind").
func Figure2(s1Type netmodel.SessionType) *Named {
	const (
		s = iota
		a
		bNode
		c
		d
	)
	g := netmodel.NewGraph(5)
	l1 := g.AddLink(s, a, 5)
	l2 := g.AddLink(s, c, 2)
	l3 := g.AddLink(s, d, 3)
	l4 := g.AddLink(a, bNode, 6)
	sessions := []*netmodel.Session{
		{Sender: s, Receivers: []int{bNode, c, d}, Type: s1Type, MaxRate: 100},
		{Sender: s, Receivers: []int{bNode}, Type: netmodel.MultiRate, MaxRate: 100},
	}
	net, err := routing.BuildNetwork(g, sessions)
	if err != nil {
		panic("topology: Figure2: " + err.Error())
	}
	return &Named{Network: net, Links: map[string]int{"l1": l1, "l2": l2, "l3": l3, "l4": l4}}
}

// Figure4 builds the network of Figure 4: the Figure 2 population
// rearranged so every S1 receiver crosses the shared first-hop l4, with
// S1 multi-rate but carrying redundancy "factor" on links shared by two
// or more of its receivers (the paper uses factor 2).
//
//	S(X1,X2) --l4:6-- A --l1:5-- B(r1,1 r2,1)
//	                  A --l2:2-- C(r1,2)
//	                  A --l3:3-- D(r1,3)
//
// With factor 2 the max-min fair rates are all 2 and u on l4 is (4:2),
// fully utilizing it; per-session-link-fairness fails for S2.
func Figure4(factor float64) *Named {
	const (
		s = iota
		a
		bNode
		c
		d
	)
	g := netmodel.NewGraph(5)
	l4 := g.AddLink(s, a, 6)
	l1 := g.AddLink(a, bNode, 5)
	l2 := g.AddLink(a, c, 2)
	l3 := g.AddLink(a, d, 3)
	sessions := []*netmodel.Session{
		{Sender: s, Receivers: []int{bNode, c, d}, Type: netmodel.MultiRate, MaxRate: 100,
			LinkRate: netmodel.SharedScaledMax(factor)},
		{Sender: s, Receivers: []int{bNode}, Type: netmodel.MultiRate, MaxRate: 100},
	}
	net, err := routing.BuildNetwork(g, sessions)
	if err != nil {
		panic("topology: Figure4: " + err.Error())
	}
	return &Named{Network: net, Links: map[string]int{"l1": l1, "l2": l2, "l3": l3, "l4": l4}}
}

// Figure3a builds a network exhibiting Figure 3(a)'s phenomenon: removing
// receiver r3,2 *decreases* its session peer r3,1 and increases r1,1.
// (The paper's own capacities are not fully legible in the archival copy;
// this reconstruction reproduces the phenomenon exactly — see DESIGN.md.)
//
// Abstract incidence: lA(c=4):{r2,1 r3,2}, lB(c=10):{r2,1 r3,1},
// lD(c=5):{r1,1 r3,2}.
//
// Max-min fair rates before removal: a1=3, a2=2, a3=(8,2);
// after removing r3,2: a1=5, a2=4, a3=(6).
func Figure3a() *Named {
	b := netmodel.NewBuilder()
	lA := b.AddLink(4)
	lB := b.AddLink(10)
	lD := b.AddLink(5)
	s1 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	s2 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	s3 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
	b.SetPath(s1, 0, lD)
	b.SetPath(s2, 0, lA, lB)
	b.SetPath(s3, 0, lB)
	b.SetPath(s3, 1, lA, lD)
	return &Named{Network: b.MustBuild(), Links: map[string]int{"lA": lA, "lB": lB, "lD": lD}}
}

// Figure3b builds a network exhibiting Figure 3(b)'s phenomenon: removing
// r3,2 *increases* its session peer r3,1 and decreases r1,1.
//
// Abstract incidence: lA(c=4):{r2,1 r3,2}, lB(c=7):{r2,1 r1,1},
// lD(c=12):{r1,1 r3,1}.
//
// Max-min fair rates before removal: a1=5, a2=2, a3=(7,2);
// after removing r3,2: a1=3.5, a2=3.5, a3=(8.5).
func Figure3b() *Named {
	b := netmodel.NewBuilder()
	lA := b.AddLink(4)
	lB := b.AddLink(7)
	lD := b.AddLink(12)
	s1 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	s2 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	s3 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
	b.SetPath(s1, 0, lB, lD)
	b.SetPath(s2, 0, lA, lB)
	b.SetPath(s3, 0, lD)
	b.SetPath(s3, 1, lA)
	return &Named{Network: b.MustBuild(), Links: map[string]int{"lA": lA, "lB": lB, "lD": lD}}
}

// SingleLink builds the Section 3 example substrate: one link of
// capacity c crossed by two unicast layered sessions. The fixed-layer
// rate sets (c/3 per layer × 3 vs c/2 per layer × 2) live in the
// layering package; this provides the network.
func SingleLink(c float64) *Named {
	b := netmodel.NewBuilder()
	l := b.AddLink(c)
	s1 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	s2 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	b.SetPath(s1, 0, l)
	b.SetPath(s2, 0, l)
	return &Named{Network: b.MustBuild(), Links: map[string]int{"l": l}}
}
