package topology

import (
	"math/rand/v2"
	"testing"
)

func planetaryTestOptions() PlanetaryOptions {
	return PlanetaryOptions{
		Regions: 3, CoreNodes: 16, PoPs: 8, ReceiversPerPoP: 4,
		CoreCap: 4096, AccessCap: 64,
	}
}

// TestPlanetaryShape pins the generator's counts and layered link
// order: per region CoreNodes-1 core links then one access link per
// PoP, with firstAccess at the boundary, and one session per region
// holding PoPs x ReceiversPerPoP receivers.
func TestPlanetaryShape(t *testing.T) {
	o := planetaryTestOptions()
	net, firstAccess, err := Planetary(rand.New(rand.NewPCG(7, 7)), o)
	if err != nil {
		t.Fatal(err)
	}
	wantCore := o.Regions * (o.CoreNodes - 1)
	if firstAccess != wantCore {
		t.Fatalf("firstAccess = %d, want %d", firstAccess, wantCore)
	}
	if got, want := net.NumLinks(), wantCore+o.Regions*o.PoPs; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
	if net.NumSessions() != o.Regions {
		t.Fatalf("sessions = %d, want %d", net.NumSessions(), o.Regions)
	}
	total := 0
	for i := 0; i < net.NumSessions(); i++ {
		total += net.Session(i).NumReceivers()
	}
	if total != o.NumReceivers() {
		t.Fatalf("receivers = %d, want %d", total, o.NumReceivers())
	}
	for j := 0; j < net.NumLinks(); j++ {
		want := o.AccessCap
		if j < firstAccess {
			want = o.CoreCap
		}
		if net.Capacity(j) != want {
			t.Fatalf("link %d capacity %v, want %v", j, net.Capacity(j), want)
		}
	}
}

// TestPlanetaryRegionsLinkDisjoint: no link is crossed by more than one
// session — the property that makes every region an independent shard
// group for netsim's session-sharded execution.
func TestPlanetaryRegionsLinkDisjoint(t *testing.T) {
	net, _, err := Planetary(rand.New(rand.NewPCG(7, 7)), planetaryTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int, net.NumLinks())
	for j := range owner {
		owner[j] = -1
	}
	for i := 0; i < net.NumSessions(); i++ {
		ns := net.Session(i)
		for k := range ns.Receivers {
			for _, j := range net.Path(i, k) {
				if owner[j] >= 0 && owner[j] != i {
					t.Fatalf("link %d crossed by sessions %d and %d", j, owner[j], i)
				}
				owner[j] = i
			}
		}
	}
}

// TestPlanetaryPathsAliasPerPoP: all receivers of one PoP share one
// path slice (the aliasing that keeps generation and indexing linear in
// PoPs rather than receivers), and every path walks sender to receiver.
func TestPlanetaryPathsAliasPerPoP(t *testing.T) {
	o := planetaryTestOptions()
	net, _, err := Planetary(rand.New(rand.NewPCG(7, 7)), o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.NumSessions(); i++ {
		ns := net.Session(i)
		for pp := 0; pp < o.PoPs; pp++ {
			base := pp * o.ReceiversPerPoP
			p0 := net.Path(i, base)
			for x := 1; x < o.ReceiversPerPoP; x++ {
				px := net.Path(i, base+x)
				if &p0[0] != &px[0] || len(p0) != len(px) {
					t.Fatalf("session %d PoP %d: receiver paths not aliased", i, pp)
				}
			}
			// The shared path must be a sender-to-PoP walk.
			g := net.Graph()
			cur := ns.Sender
			for _, j := range p0 {
				cur = g.Other(j, cur)
			}
			if cur != ns.Receivers[base] {
				t.Fatalf("session %d PoP %d: path ends at node %d, not receiver node %d", i, pp, cur, ns.Receivers[base])
			}
		}
	}
}

// TestPlanetaryDeterministic: equal seeds give byte-equal topologies;
// different seeds differ.
func TestPlanetaryDeterministic(t *testing.T) {
	o := planetaryTestOptions()
	a, fa, err := Planetary(rand.New(rand.NewPCG(7, 7)), o)
	if err != nil {
		t.Fatal(err)
	}
	b, fb, err := Planetary(rand.New(rand.NewPCG(7, 7)), o)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatalf("firstAccess %d vs %d", fa, fb)
	}
	for i := 0; i < a.NumSessions(); i++ {
		for k := range a.Session(i).Receivers {
			pa, pb := a.Path(i, k), b.Path(i, k)
			if len(pa) != len(pb) {
				t.Fatalf("session %d receiver %d: path lengths differ", i, k)
			}
			for x := range pa {
				if pa[x] != pb[x] {
					t.Fatalf("session %d receiver %d: paths differ", i, k)
				}
			}
		}
	}
	c, _, err := Planetary(rand.New(rand.NewPCG(8, 8)), o)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; same && i < a.NumSessions(); i++ {
		for k := range a.Session(i).Receivers {
			pa, pc := a.Path(i, k), c.Path(i, k)
			if len(pa) != len(pc) {
				same = false
				break
			}
			for x := range pa {
				if pa[x] != pc[x] {
					same = false
					break
				}
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical topologies")
	}
}

// TestPlanetaryValidate rejects each degenerate option.
func TestPlanetaryValidate(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, o := range []PlanetaryOptions{
		{Regions: 0, CoreNodes: 16, PoPs: 8, ReceiversPerPoP: 4, CoreCap: 1, AccessCap: 1},
		{Regions: 1, CoreNodes: 1, PoPs: 8, ReceiversPerPoP: 4, CoreCap: 1, AccessCap: 1},
		{Regions: 1, CoreNodes: 16, PoPs: 0, ReceiversPerPoP: 4, CoreCap: 1, AccessCap: 1},
		{Regions: 1, CoreNodes: 16, PoPs: 8, ReceiversPerPoP: 0, CoreCap: 1, AccessCap: 1},
		{Regions: 1, CoreNodes: 16, PoPs: 8, ReceiversPerPoP: 4, CoreCap: 0, AccessCap: 1},
		{Regions: 1, CoreNodes: 16, PoPs: 8, ReceiversPerPoP: 4, CoreCap: 1, AccessCap: 0},
	} {
		if _, _, err := Planetary(rng, o); err == nil {
			t.Fatalf("options %+v accepted", o)
		}
	}
}

// TestPlanetaryPresets pins the preset receiver counts the ROADMAP and
// benchmark names promise.
func TestPlanetaryPresets(t *testing.T) {
	if n := PlanetaryOptions1M().NumReceivers(); n != 1048576 {
		t.Fatalf("1M preset = %d receivers", n)
	}
	if n := PlanetaryOptions10M().NumReceivers(); n != 10485760 {
		t.Fatalf("10M preset = %d receivers", n)
	}
}
