package topology

import (
	"fmt"
	"math/rand/v2"

	"mlfair/internal/netmodel"
	"mlfair/internal/routing"
)

// Star builds a one-session star network: a sender behind a shared link
// of capacity sharedCap feeding a hub, with one fanout link per receiver
// (capacities fanoutCaps). This is the capacity-domain analogue of the
// paper's Figure 7 loss topologies.
//
//	sender --shared-- hub --fanout[k]-- receiver k
func Star(t netmodel.SessionType, sharedCap float64, fanoutCaps []float64) *Named {
	n := len(fanoutCaps)
	if n == 0 {
		panic("topology: star needs at least one receiver")
	}
	g := netmodel.NewGraph(2 + n)
	const sender, hub = 0, 1
	shared := g.AddLink(sender, hub, sharedCap)
	links := map[string]int{"shared": shared}
	receivers := make([]int, n)
	for k := 0; k < n; k++ {
		node := 2 + k
		j := g.AddLink(hub, node, fanoutCaps[k])
		links[fmt.Sprintf("fanout%d", k)] = j
		receivers[k] = node
	}
	s := &netmodel.Session{Sender: sender, Receivers: receivers, Type: t, MaxRate: netmodel.NoRateCap}
	net, err := routing.BuildNetwork(g, []*netmodel.Session{s})
	if err != nil {
		panic("topology: Star: " + err.Error())
	}
	return &Named{Network: net, Links: links}
}

// Chain builds a one-session chain network: the sender at one end,
// receivers at every subsequent node, link k having capacity caps[k].
// Receiver k's data-path is links 0..k — the canonical setting where
// multi-rate sessions deliver each receiver exactly its own bottleneck.
func Chain(t netmodel.SessionType, caps []float64) *Named {
	n := len(caps)
	if n == 0 {
		panic("topology: chain needs at least one link")
	}
	g := netmodel.NewGraph(n + 1)
	links := map[string]int{}
	receivers := make([]int, n)
	for k := 0; k < n; k++ {
		j := g.AddLink(k, k+1, caps[k])
		links[fmt.Sprintf("hop%d", k)] = j
		receivers[k] = k + 1
	}
	s := &netmodel.Session{Sender: 0, Receivers: receivers, Type: t, MaxRate: netmodel.NoRateCap}
	net, err := routing.BuildNetwork(g, []*netmodel.Session{s})
	if err != nil {
		panic("topology: Chain: " + err.Error())
	}
	return &Named{Network: net, Links: links}
}

// BinaryTree builds a one-session complete binary tree of the given
// depth, sender at the root, receivers at the leaves. Link capacities are
// drawn uniformly from [capMin, capMax] using rng (pass a fixed-seed rng
// for reproducibility).
func BinaryTree(t netmodel.SessionType, depth int, capMin, capMax float64, rng *rand.Rand) *Named {
	if depth < 1 {
		panic("topology: tree depth must be >= 1")
	}
	numNodes := 1<<(depth+1) - 1
	g := netmodel.NewGraph(numNodes)
	links := map[string]int{}
	for child := 1; child < numNodes; child++ {
		parent := (child - 1) / 2
		c := capMin + (capMax-capMin)*rng.Float64()
		j := g.AddLink(parent, child, c)
		links[fmt.Sprintf("edge%d", child)] = j
	}
	firstLeaf := 1<<depth - 1
	receivers := make([]int, 0, 1<<depth)
	for n := firstLeaf; n < numNodes; n++ {
		receivers = append(receivers, n)
	}
	s := &netmodel.Session{Sender: 0, Receivers: receivers, Type: t, MaxRate: netmodel.NoRateCap}
	net, err := routing.BuildNetwork(g, []*netmodel.Session{s})
	if err != nil {
		panic("topology: BinaryTree: " + err.Error())
	}
	return &Named{Network: net, Links: links}
}

// RandomOptions parameterizes RandomNetwork.
type RandomOptions struct {
	Nodes          int     // graph nodes (>= 2)
	ExtraLinks     int     // links beyond the spanning tree
	Sessions       int     // session count (>= 1)
	MaxReceivers   int     // receivers per session drawn from [1, MaxReceivers]
	CapMin, CapMax float64 // uniform link capacities
	SingleRateProb float64 // probability a session is single-rate
	KappaProb      float64 // probability a session has a finite κ
	KappaMax       float64 // finite κ drawn from (0, KappaMax]
}

// DefaultRandomOptions returns moderate settings for property testing:
// 12 nodes, 4 extra links, 4 sessions of up to 4 receivers.
func DefaultRandomOptions() RandomOptions {
	return RandomOptions{
		Nodes: 12, ExtraLinks: 4, Sessions: 4, MaxReceivers: 4,
		CapMin: 1, CapMax: 20, SingleRateProb: 0.5, KappaProb: 0.3, KappaMax: 10,
	}
}

// RandomNetwork generates a connected random graph (uniform random
// spanning tree plus ExtraLinks random chords) and populates it with
// randomly placed sessions, routed by shortest path. Determinism follows
// the rng seed.
func RandomNetwork(rng *rand.Rand, o RandomOptions) *netmodel.Network {
	if o.Nodes < 2 || o.Sessions < 1 || o.MaxReceivers < 1 {
		panic("topology: invalid RandomOptions")
	}
	g := netmodel.NewGraph(o.Nodes)
	cap_ := func() float64 { return o.CapMin + (o.CapMax-o.CapMin)*rng.Float64() }
	// Random spanning tree: attach each node to a random earlier node.
	perm := rng.Perm(o.Nodes)
	for x := 1; x < o.Nodes; x++ {
		g.AddLink(perm[x], perm[rng.IntN(x)], cap_())
	}
	for e := 0; e < o.ExtraLinks; e++ {
		a, b := rng.IntN(o.Nodes), rng.IntN(o.Nodes)
		if a == b {
			continue
		}
		g.AddLink(a, b, cap_())
	}
	sessions := make([]*netmodel.Session, o.Sessions)
	for i := range sessions {
		t := netmodel.MultiRate
		if rng.Float64() < o.SingleRateProb {
			t = netmodel.SingleRate
		}
		kappa := netmodel.NoRateCap
		if rng.Float64() < o.KappaProb {
			kappa = o.KappaMax * (0.1 + 0.9*rng.Float64())
		}
		sender := rng.IntN(o.Nodes)
		nr := 1 + rng.IntN(o.MaxReceivers)
		// Distinct receiver nodes, none equal to the sender (the τ
		// restriction: no two members of one session share a node).
		nodes := rng.Perm(o.Nodes)
		receivers := make([]int, 0, nr)
		for _, nd := range nodes {
			if nd == sender {
				continue
			}
			receivers = append(receivers, nd)
			if len(receivers) == nr {
				break
			}
		}
		sessions[i] = &netmodel.Session{Sender: sender, Receivers: receivers, Type: t, MaxRate: kappa}
	}
	net, err := routing.BuildNetwork(g, sessions)
	if err != nil {
		// The spanning tree guarantees connectivity; routing cannot fail.
		panic("topology: RandomNetwork: " + err.Error())
	}
	return net
}
