package topology

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"mlfair/internal/netmodel"
	"mlfair/internal/routing"
)

// TestScaleFreeStructure: the generator yields a connected graph of the
// requested size with Attach links per arriving node, valid sessions,
// and per-session multicast trees (routing's BFS contract).
func TestScaleFreeStructure(t *testing.T) {
	o := DefaultScaleFreeOptions()
	net, err := ScaleFree(rand.New(rand.NewPCG(5, 5)), o)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph()
	if g.NumNodes() != o.Nodes {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), o.Nodes)
	}
	// 1 seed link + Attach per node beyond the first two (clamped only
	// when t < Attach, impossible here since Attach = 2).
	wantLinks := 1 + (o.Nodes-2)*o.Attach
	if g.NumLinks() != wantLinks {
		t.Fatalf("links = %d, want %d", g.NumLinks(), wantLinks)
	}
	if net.NumSessions() != o.Sessions {
		t.Fatalf("sessions = %d, want %d", net.NumSessions(), o.Sessions)
	}
	for i := 0; i < net.NumSessions(); i++ {
		if err := routing.TreeCheck(net, i); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	for j := 0; j < g.NumLinks(); j++ {
		if c := g.Capacity(j); c < o.CapMin || c > o.CapMax {
			t.Fatalf("link %d capacity %v outside [%v, %v]", j, c, o.CapMin, o.CapMax)
		}
	}
}

// TestScaleFreeHubs: preferential attachment must actually produce a
// heavy tail — the maximum degree should far exceed the mean.
func TestScaleFreeHubs(t *testing.T) {
	o := DefaultScaleFreeOptions()
	net, err := ScaleFree(rand.New(rand.NewPCG(7, 7)), o)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph()
	maxDeg := 0
	for nd := 0; nd < g.NumNodes(); nd++ {
		if d := len(g.Incident(nd)); d > maxDeg {
			maxDeg = d
		}
	}
	meanDeg := 2 * float64(g.NumLinks()) / float64(g.NumNodes())
	if float64(maxDeg) < 3*meanDeg {
		t.Fatalf("max degree %d not a hub (mean %.1f)", maxDeg, meanDeg)
	}
}

// TestFatTreeStructure: node and link counts match the closed forms of
// the k-ary fat-tree, every session routes as a tree, and every host
// hangs off exactly one edge switch.
func TestFatTreeStructure(t *testing.T) {
	o := DefaultFatTreeOptions()
	net, err := FatTree(rand.New(rand.NewPCG(9, 9)), o)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph()
	k := o.K
	h := k / 2
	wantNodes := h*h + k*h + k*h + k*h*h
	if g.NumNodes() != wantNodes {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), wantNodes)
	}
	// Per pod: h agg switches x h core links + h x h bipartite + h x h
	// host links.
	wantLinks := k * (h*h + h*h + h*h)
	if g.NumLinks() != wantLinks {
		t.Fatalf("links = %d, want %d", g.NumLinks(), wantLinks)
	}
	for i := 0; i < net.NumSessions(); i++ {
		if err := routing.TreeCheck(net, i); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		s := net.Session(i)
		seen := map[int]bool{s.Sender: true}
		for _, r := range s.Receivers {
			if seen[r] {
				t.Fatalf("session %d reuses node %d", i, r)
			}
			seen[r] = true
		}
	}
	// Hosts are the last k*h*h nodes and must have degree 1.
	for nd := wantNodes - k*h*h; nd < wantNodes; nd++ {
		if d := len(g.Incident(nd)); d != 1 {
			t.Fatalf("host %d degree %d, want 1", nd, d)
		}
	}
}

// TestGeneratorsDeterministic: equal seeds reproduce identical
// networks; different seeds differ.
func TestGeneratorsDeterministic(t *testing.T) {
	o := ScaleFreeOptions{Nodes: 40, Attach: 2, Sessions: 6, MaxReceivers: 4, CapMin: 1, CapMax: 8}
	a, err := ScaleFree(rand.New(rand.NewPCG(1, 2)), o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleFree(rand.New(rand.NewPCG(1, 2)), o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Graph().Capacities(), b.Graph().Capacities()) {
		t.Fatal("equal seeds produced different scale-free graphs")
	}
	c, err := ScaleFree(rand.New(rand.NewPCG(3, 4)), o)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Graph().Capacities(), c.Graph().Capacities()) {
		t.Fatal("different seeds produced identical scale-free graphs")
	}

	fo := FatTreeOptions{K: 4, Sessions: 5, MaxReceivers: 3, HostCap: 8, EdgeAggCap: 8, AggCoreCap: 8}
	fa, err := FatTree(rand.New(rand.NewPCG(1, 2)), fo)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := FatTree(rand.New(rand.NewPCG(1, 2)), fo)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fa.NumSessions(); i++ {
		if !reflect.DeepEqual(fa.Session(i).Receivers, fb.Session(i).Receivers) {
			t.Fatalf("equal seeds placed session %d differently", i)
		}
	}
}

// TestGeneratorOptionValidation: malformed options return errors, never
// panic.
func TestGeneratorOptionValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	sfBad := []ScaleFreeOptions{
		{},
		{Nodes: 1, Attach: 1, Sessions: 1, MaxReceivers: 1, CapMin: 1, CapMax: 1},
		{Nodes: 5, Attach: 0, Sessions: 1, MaxReceivers: 1, CapMin: 1, CapMax: 1},
		{Nodes: 5, Attach: 5, Sessions: 1, MaxReceivers: 1, CapMin: 1, CapMax: 1},
		{Nodes: 5, Attach: 1, Sessions: 0, MaxReceivers: 1, CapMin: 1, CapMax: 1},
		{Nodes: 5, Attach: 1, Sessions: 1, MaxReceivers: 1, CapMin: 0, CapMax: 1},
		{Nodes: 5, Attach: 1, Sessions: 1, MaxReceivers: 1, CapMin: 2, CapMax: 1},
	}
	for i, o := range sfBad {
		if _, err := ScaleFree(rng, o); err == nil {
			t.Errorf("scale-free case %d: invalid options accepted", i)
		}
	}
	ftBad := []FatTreeOptions{
		{},
		{K: 3, Sessions: 1, MaxReceivers: 1, HostCap: 1, EdgeAggCap: 1, AggCoreCap: 1},
		{K: 42, Sessions: 1, MaxReceivers: 1, HostCap: 1, EdgeAggCap: 1, AggCoreCap: 1},
		{K: 4, Sessions: 0, MaxReceivers: 1, HostCap: 1, EdgeAggCap: 1, AggCoreCap: 1},
		{K: 4, Sessions: 1, MaxReceivers: 16, HostCap: 1, EdgeAggCap: 1, AggCoreCap: 1},
		{K: 4, Sessions: 1, MaxReceivers: 1, HostCap: 0, EdgeAggCap: 1, AggCoreCap: 1},
	}
	for i, o := range ftBad {
		if _, err := FatTree(rng, o); err == nil {
			t.Errorf("fat-tree case %d: invalid options accepted", i)
		}
	}
}

// TestLargeTopologiesSimulable: generated networks satisfy the netsim
// preconditions end to end (concrete senders, tree-forming paths) — a
// cheap structural stand-in asserted here so topology failures surface
// near their source rather than inside the engine.
func TestLargeTopologiesSimulable(t *testing.T) {
	net, err := ScaleFree(rand.New(rand.NewPCG(11, 11)), DefaultScaleFreeOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range net.Sessions() {
		if s.Sender < 0 {
			t.Fatalf("session %d abstract", i)
		}
		for k := range s.Receivers {
			if len(net.Path(i, k)) == 0 && s.Receivers[k] != s.Sender {
				t.Fatalf("session %d receiver %d unrouted", i, k)
			}
		}
	}
	_ = netmodel.NoRateCap
}
