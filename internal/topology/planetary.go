package topology

import (
	"fmt"
	"math/rand/v2"

	"mlfair/internal/netmodel"
)

// PlanetaryOptions parameterizes Planetary: the intra-run-scale
// workload (ROADMAP item 2) of a planet-wide CDN-style deployment —
// several link-disjoint regional backbones, each a scale-free core tree
// with point-of-presence (PoP) fan-out, and a large fixed receiver
// population parked at every PoP. Receiver counts reach 10^7 while
// links and sessions stay in the 10^4-10^5 range, which is exactly the
// regime the engine's memory plan is written for.
type PlanetaryOptions struct {
	// Regions is the number of link-disjoint regional backbones (>= 1).
	// Each region carries one session rooted at its core; because
	// regions share no link, they are independent shard groups for
	// netsim's session-sharded execution.
	Regions int
	// CoreNodes is each region's backbone size (>= 2). The core grows as
	// a Barabási–Albert preferential-attachment tree, so hub routers
	// with power-law degrees emerge naturally (the Sreenivasan et al.
	// bottleneck regime) and every sender-to-PoP path is unique.
	CoreNodes int
	// PoPs is the number of access points per region (>= 1); each
	// attaches to a core router chosen preferentially by current degree,
	// concentrating access fan-in on the hubs.
	PoPs int
	// ReceiversPerPoP is the receiver population parked at each PoP
	// (>= 1). Receivers at one PoP share its access link and data-path
	// (the paths alias one slice), so per-receiver cost stays flat.
	ReceiversPerPoP int
	// CoreCap and AccessCap are the core and access link capacities
	// (> 0), in packets per time unit.
	CoreCap, AccessCap float64
}

// PlanetaryOptions1M is the 1,048,576-receiver preset: 8 regions x
// 2048 PoPs x 64 receivers on 128-router cores.
func PlanetaryOptions1M() PlanetaryOptions {
	return PlanetaryOptions{
		Regions: 8, CoreNodes: 128, PoPs: 2048, ReceiversPerPoP: 64,
		CoreCap: 4096, AccessCap: 64,
	}
}

// PlanetaryOptions10M is the 10,485,760-receiver preset: 8 regions x
// 20480 PoPs x 64 receivers on 128-router cores.
func PlanetaryOptions10M() PlanetaryOptions {
	return PlanetaryOptions{
		Regions: 8, CoreNodes: 128, PoPs: 20480, ReceiversPerPoP: 64,
		CoreCap: 4096, AccessCap: 64,
	}
}

func (o PlanetaryOptions) validate() error {
	if o.Regions < 1 {
		return fmt.Errorf("topology: planetary needs >= 1 region, have %d", o.Regions)
	}
	if o.CoreNodes < 2 {
		return fmt.Errorf("topology: planetary core needs >= 2 nodes, have %d", o.CoreNodes)
	}
	if o.PoPs < 1 || o.ReceiversPerPoP < 1 {
		return fmt.Errorf("topology: planetary needs PoPs and receivers")
	}
	if !(o.CoreCap > 0) || !(o.AccessCap > 0) {
		return fmt.Errorf("topology: planetary capacities must be positive")
	}
	return nil
}

// NumReceivers returns the total receiver count the options produce.
func (o PlanetaryOptions) NumReceivers() int {
	return o.Regions * o.PoPs * o.ReceiversPerPoP
}

// PlanetaryCutFrontier returns the access links — [firstAccess,
// numLinks) in Planetary's layered link order — as an explicit subtree
// cut frontier for netsim.Config.CutLinks. Cutting every access link
// partitions each region's tree into its per-PoP receiver subtrees
// below the thin scale-free core, which is exactly the bottleneck
// boundary the Sreenivasan et al. analysis predicts: nearly all
// delivery work lands below the frontier and fans out across cores,
// while the core prefix stays one short sequential walk.
func PlanetaryCutFrontier(firstAccess, numLinks int) []int {
	cut := make([]int, 0, numLinks-firstAccess)
	for j := firstAccess; j < numLinks; j++ {
		cut = append(cut, j)
	}
	return cut
}

// Planetary builds the planetary-scale network: per region, a
// preferential-attachment core tree rooted at the region's first
// router, PoPs attached to degree-preferential core routers, and
// ReceiversPerPoP receivers hosted at every PoP, all served by one
// session per region sent from the core root. Paths are constructed
// directly from the trees (no routing pass), and all receivers of a PoP
// alias one path slice, so generation is linear in PoPs, not receivers.
//
// Link order is layered: every core link of every region first, then
// every access link. The returned firstAccess is the boundary — links
// j < firstAccess are core, the rest access — so callers can give the
// two classes different netsim.LinkSpec models without touching
// per-link state. Determinism follows the rng seed.
func Planetary(rng *rand.Rand, o PlanetaryOptions) (*netmodel.Network, int, error) {
	if err := o.validate(); err != nil {
		return nil, 0, err
	}
	nodesPerRegion := o.CoreNodes + o.PoPs
	g := netmodel.NewGraph(o.Regions * nodesPerRegion)
	// Pass 1: all core links, region by region. endpoints repeats each
	// core router once per incident link, so uniform sampling is
	// degree-preferential attachment; corePath[r][c] is the link path
	// from the region root to core router c.
	endpoints := make([][]int, o.Regions)
	corePath := make([][][]int, o.Regions)
	for r := 0; r < o.Regions; r++ {
		base := r * nodesPerRegion
		endpoints[r] = append(make([]int, 0, o.CoreNodes+o.PoPs), 0)
		corePath[r] = make([][]int, o.CoreNodes)
		corePath[r][0] = []int{}
		for c := 1; c < o.CoreNodes; c++ {
			tgt := endpoints[r][rng.IntN(len(endpoints[r]))]
			j := g.AddLink(base+c, base+tgt, o.CoreCap)
			endpoints[r] = append(endpoints[r], c, tgt)
			corePath[r][c] = append(append(make([]int, 0, len(corePath[r][tgt])+1), corePath[r][tgt]...), j)
		}
	}
	firstAccess := g.NumLinks()
	// Pass 2: access links and sessions. Each PoP's access attachment
	// also feeds the endpoints list (core side only), so later PoPs
	// preferentially pile onto already-popular hubs.
	sessions := make([]*netmodel.Session, o.Regions)
	paths := make([][][]int, o.Regions)
	for r := 0; r < o.Regions; r++ {
		base := r * nodesPerRegion
		nR := o.PoPs * o.ReceiversPerPoP
		receivers := make([]int, nR)
		rpaths := make([][]int, nR)
		for pp := 0; pp < o.PoPs; pp++ {
			tgt := endpoints[r][rng.IntN(len(endpoints[r]))]
			pop := base + o.CoreNodes + pp
			j := g.AddLink(pop, base+tgt, o.AccessCap)
			endpoints[r] = append(endpoints[r], tgt)
			popPath := append(append(make([]int, 0, len(corePath[r][tgt])+1), corePath[r][tgt]...), j)
			for x := 0; x < o.ReceiversPerPoP; x++ {
				k := pp*o.ReceiversPerPoP + x
				receivers[k] = pop
				rpaths[k] = popPath
			}
		}
		sessions[r] = &netmodel.Session{
			Sender: base, Receivers: receivers,
			Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap,
		}
		paths[r] = rpaths
	}
	net, err := netmodel.NewNetwork(g, sessions, paths)
	if err != nil {
		return nil, 0, err
	}
	return net, firstAccess, nil
}
