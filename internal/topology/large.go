package topology

import (
	"fmt"
	"math/rand/v2"

	"mlfair/internal/netmodel"
	"mlfair/internal/routing"
)

// This file holds the large-topology generators used to exercise the
// simulators beyond the paper's stars and trees: random power-law
// (scale-free) graphs in the spirit of Barabási–Albert preferential
// attachment, and k-ary fat-trees (the standard data-center fabric).
// Both return errors instead of panicking so they can be driven by
// fuzzers on arbitrary inputs; both route sessions with
// routing.BuildNetwork, whose per-sender BFS trees guarantee every
// session's data-paths form a multicast tree (the netsim contract).

// ScaleFreeOptions parameterizes ScaleFree.
type ScaleFreeOptions struct {
	// Nodes is the graph size (>= 2).
	Nodes int
	// Attach is the number of links each newly arriving node creates to
	// existing nodes, chosen preferentially by degree (1 <= Attach <
	// Nodes). Attach = 1 grows a tree; higher values add chords.
	Attach int
	// Sessions is the session count (>= 1); each session gets a random
	// sender and 1..MaxReceivers distinct receiver nodes.
	Sessions int
	// MaxReceivers bounds receivers per session (>= 1).
	MaxReceivers int
	// CapMin, CapMax bound the uniform link capacities (0 < CapMin <=
	// CapMax).
	CapMin, CapMax float64
}

// DefaultScaleFreeOptions sizes a scenario at hundreds of links times
// dozens of sessions: 150 nodes with 2 preferential links each
// (~300 links), 24 sessions of up to 8 receivers.
func DefaultScaleFreeOptions() ScaleFreeOptions {
	return ScaleFreeOptions{
		Nodes: 150, Attach: 2, Sessions: 24, MaxReceivers: 8,
		CapMin: 4, CapMax: 64,
	}
}

func (o ScaleFreeOptions) validate() error {
	if o.Nodes < 2 {
		return fmt.Errorf("topology: scale-free needs >= 2 nodes, have %d", o.Nodes)
	}
	if o.Attach < 1 || o.Attach >= o.Nodes {
		return fmt.Errorf("topology: scale-free attach %d outside [1, %d)", o.Attach, o.Nodes)
	}
	if o.Sessions < 1 || o.MaxReceivers < 1 {
		return fmt.Errorf("topology: scale-free needs sessions and receivers")
	}
	if !(o.CapMin > 0) || o.CapMax < o.CapMin {
		return fmt.Errorf("topology: scale-free capacities [%v, %v] invalid", o.CapMin, o.CapMax)
	}
	return nil
}

// ScaleFree generates a connected power-law graph by preferential
// attachment — node t attaches to Attach distinct earlier nodes with
// probability proportional to their current degree — and populates it
// with randomly placed sessions routed by shortest path. Hubs emerge
// naturally, concentrating many sessions on few links, the regime
// where scale-free studies (Sreenivasan et al.) found fairness
// conclusions diverge from regular topologies. Determinism follows the
// rng seed.
func ScaleFree(rng *rand.Rand, o ScaleFreeOptions) (*netmodel.Network, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	g := netmodel.NewGraph(o.Nodes)
	capf := func() float64 { return o.CapMin + (o.CapMax-o.CapMin)*rng.Float64() }
	// endpoints repeats each node once per incident link; sampling it
	// uniformly is degree-preferential attachment.
	endpoints := make([]int, 0, 2*o.Nodes*o.Attach)
	g.AddLink(0, 1, capf())
	endpoints = append(endpoints, 0, 1)
	for t := 2; t < o.Nodes; t++ {
		m := o.Attach
		if m > t {
			m = t
		}
		chosen := map[int]bool{}
		for len(chosen) < m {
			tgt := endpoints[rng.IntN(len(endpoints))]
			if tgt != t && !chosen[tgt] { // t's own stubs are already in endpoints
				chosen[tgt] = true
				g.AddLink(t, tgt, capf())
				endpoints = append(endpoints, t, tgt)
			}
		}
	}
	sessions := make([]*netmodel.Session, o.Sessions)
	for i := range sessions {
		sender := rng.IntN(o.Nodes)
		nr := 1 + rng.IntN(o.MaxReceivers)
		// Distinct receiver nodes, none equal to the sender (the τ
		// restriction: no two members of one session share a node).
		nodes := rng.Perm(o.Nodes)
		receivers := make([]int, 0, nr)
		for _, nd := range nodes {
			if nd == sender {
				continue
			}
			receivers = append(receivers, nd)
			if len(receivers) == nr {
				break
			}
		}
		sessions[i] = &netmodel.Session{
			Sender: sender, Receivers: receivers,
			Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap,
		}
	}
	return routing.BuildNetwork(g, sessions)
}

// FatTreeOptions parameterizes FatTree.
type FatTreeOptions struct {
	// K is the fat-tree arity: K pods, each with K/2 edge and K/2
	// aggregation switches, (K/2)^2 core switches, and K^2/4 hosts per
	// pod. K must be even and >= 2. K = 4 gives 16 hosts and 48 links;
	// K = 6 gives 54 hosts and 162 links.
	K int
	// Sessions is the session count (>= 1); senders and receivers are
	// placed on distinct hosts.
	Sessions int
	// MaxReceivers bounds receivers per session (>= 1, < total hosts).
	MaxReceivers int
	// HostCap, EdgeAggCap, AggCoreCap are the capacities of
	// host-to-edge, edge-to-aggregation, and aggregation-to-core links
	// (all > 0). The classic fat-tree is non-blocking when they are
	// equal.
	HostCap, EdgeAggCap, AggCoreCap float64
}

// DefaultFatTreeOptions returns a k=6 fabric (54 hosts, 45 switches,
// 162 links) with a mildly oversubscribed core and 24 sessions.
func DefaultFatTreeOptions() FatTreeOptions {
	return FatTreeOptions{
		K: 6, Sessions: 24, MaxReceivers: 8,
		HostCap: 16, EdgeAggCap: 16, AggCoreCap: 12,
	}
}

func (o FatTreeOptions) validate() error {
	if o.K < 2 || o.K%2 != 0 {
		return fmt.Errorf("topology: fat-tree arity %d must be even and >= 2", o.K)
	}
	if o.K > 40 {
		return fmt.Errorf("topology: fat-tree arity %d unreasonably large", o.K)
	}
	if o.Sessions < 1 || o.MaxReceivers < 1 {
		return fmt.Errorf("topology: fat-tree needs sessions and receivers")
	}
	hosts := o.K * o.K * o.K / 4
	if o.MaxReceivers >= hosts {
		return fmt.Errorf("topology: fat-tree with %d hosts cannot place %d receivers", hosts, o.MaxReceivers)
	}
	if !(o.HostCap > 0) || !(o.EdgeAggCap > 0) || !(o.AggCoreCap > 0) {
		return fmt.Errorf("topology: fat-tree capacities must be positive")
	}
	return nil
}

// FatTree builds the standard k-ary fat-tree fabric: (K/2)^2 core
// switches; K pods of K/2 aggregation and K/2 edge switches connected
// as a full bipartite graph within the pod; aggregation switch j of
// every pod connecting to core group j; and K/2 hosts per edge switch.
// Sessions are placed on distinct random hosts and routed by shortest
// path (BFS with deterministic tie-breaking collapses the fabric's
// multipath into per-session trees). Determinism follows the rng seed.
func FatTree(rng *rand.Rand, o FatTreeOptions) (*netmodel.Network, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	h := o.K / 2
	numCore := h * h
	numAgg := o.K * h
	numEdge := o.K * h
	numHosts := o.K * h * h
	core := func(c int) int { return c }
	agg := func(pod, j int) int { return numCore + pod*h + j }
	edge := func(pod, j int) int { return numCore + numAgg + pod*h + j }
	host := func(pod, j, x int) int { return numCore + numAgg + numEdge + (pod*h+j)*h + x }
	g := netmodel.NewGraph(numCore + numAgg + numEdge + numHosts)
	for pod := 0; pod < o.K; pod++ {
		for j := 0; j < h; j++ {
			// Aggregation j serves core group j: cores j*h .. j*h+h-1.
			for x := 0; x < h; x++ {
				g.AddLink(agg(pod, j), core(j*h+x), o.AggCoreCap)
			}
			// Pod-internal bipartite aggregation-edge mesh.
			for x := 0; x < h; x++ {
				g.AddLink(agg(pod, j), edge(pod, x), o.EdgeAggCap)
			}
			// Hosts under edge switch j.
			for x := 0; x < h; x++ {
				g.AddLink(edge(pod, j), host(pod, j, x), o.HostCap)
			}
		}
	}
	hostIDs := make([]int, 0, numHosts)
	for pod := 0; pod < o.K; pod++ {
		for j := 0; j < h; j++ {
			for x := 0; x < h; x++ {
				hostIDs = append(hostIDs, host(pod, j, x))
			}
		}
	}
	sessions := make([]*netmodel.Session, o.Sessions)
	for i := range sessions {
		perm := rng.Perm(numHosts)
		nr := 1 + rng.IntN(o.MaxReceivers)
		sender := hostIDs[perm[0]]
		receivers := make([]int, nr)
		for x := 0; x < nr; x++ {
			receivers[x] = hostIDs[perm[1+x]]
		}
		sessions[i] = &netmodel.Session{
			Sender: sender, Receivers: receivers,
			Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap,
		}
	}
	return routing.BuildNetwork(g, sessions)
}
