package topology

import (
	"math"
	"math/rand/v2"
	"testing"

	"mlfair/internal/routing"
)

// FuzzScaleFree drives raw options through the scale-free generator:
// arbitrary inputs must either be rejected with an error or produce a
// well-formed network — correct node count, positive finite capacities,
// sessions with distinct on-graph members, and tree-forming routes.
//
// Explore beyond the stored corpus with:
//
//	go test -fuzz FuzzScaleFree ./internal/topology
func FuzzScaleFree(f *testing.F) {
	f.Add(uint16(150), uint8(2), uint8(24), uint8(8), 4.0, 64.0, uint64(5))
	f.Add(uint16(2), uint8(1), uint8(1), uint8(1), 1.0, 1.0, uint64(0))
	f.Add(uint16(0), uint8(0), uint8(0), uint8(0), 0.0, 0.0, uint64(1))
	f.Add(uint16(40), uint8(39), uint8(3), uint8(40), math.NaN(), math.Inf(1), uint64(9))
	f.Fuzz(func(t *testing.T, nodes uint16, attach, sessions, maxRecv uint8, capMin, capMax float64, seed uint64) {
		o := ScaleFreeOptions{
			Nodes: int(nodes), Attach: int(attach), Sessions: int(sessions),
			MaxReceivers: int(maxRecv), CapMin: capMin, CapMax: capMax,
		}
		rng := rand.New(rand.NewPCG(seed, seed))
		net, err := ScaleFree(rng, o)
		if err != nil {
			return
		}
		g := net.Graph()
		if g.NumNodes() != o.Nodes {
			t.Fatalf("nodes = %d, want %d", g.NumNodes(), o.Nodes)
		}
		for j := 0; j < g.NumLinks(); j++ {
			c := g.Capacity(j)
			if !(c > 0) || math.IsInf(c, 0) {
				t.Fatalf("link %d capacity %v", j, c)
			}
		}
		for i := 0; i < net.NumSessions(); i++ {
			if err := routing.TreeCheck(net, i); err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			s := net.Session(i)
			seen := map[int]bool{s.Sender: true}
			for _, r := range s.Receivers {
				if r < 0 || r >= g.NumNodes() || seen[r] {
					t.Fatalf("session %d bad receiver node %d", i, r)
				}
				seen[r] = true
			}
		}
	})
}

// FuzzFatTree is FuzzScaleFree's analogue for the fat-tree generator,
// additionally checking the fabric's closed-form node count.
func FuzzFatTree(f *testing.F) {
	f.Add(uint8(4), uint8(5), uint8(3), 8.0, 8.0, 8.0, uint64(1))
	f.Add(uint8(6), uint8(24), uint8(8), 16.0, 16.0, 12.0, uint64(2))
	f.Add(uint8(0), uint8(0), uint8(0), 0.0, -1.0, math.NaN(), uint64(3))
	f.Add(uint8(255), uint8(1), uint8(1), 1.0, 1.0, 1.0, uint64(4))
	f.Fuzz(func(t *testing.T, k, sessions, maxRecv uint8, hostCap, eaCap, acCap float64, seed uint64) {
		o := FatTreeOptions{
			K: int(k), Sessions: int(sessions), MaxReceivers: int(maxRecv),
			HostCap: hostCap, EdgeAggCap: eaCap, AggCoreCap: acCap,
		}
		rng := rand.New(rand.NewPCG(seed, seed^1))
		net, err := FatTree(rng, o)
		if err != nil {
			return
		}
		g := net.Graph()
		h := o.K / 2
		if want := h*h + 2*o.K*h + o.K*h*h; g.NumNodes() != want {
			t.Fatalf("nodes = %d, want %d", g.NumNodes(), want)
		}
		for i := 0; i < net.NumSessions(); i++ {
			if err := routing.TreeCheck(net, i); err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
		}
	})
}
