package cliutil

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"mlfair/internal/obs"
)

func TestRegisterObservabilityFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := RegisterObservability(fs, "testtool")
	err := fs.Parse([]string{
		"-cpuprofile", "cpu.pprof", "-memprofile", "mem.pprof",
		"-trace", "trace.out", "-metrics", "m.json", "-progress",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.CPUProfile != "cpu.pprof" || o.MemProfile != "mem.pprof" ||
		o.TracePath != "trace.out" || o.Metrics != "m.json" || !o.Progress {
		t.Fatalf("parsed observability flags %+v", o)
	}
}

// TestObservabilityArtifacts: a full Start→run→Stop cycle writes every
// requested artifact: a non-empty CPU profile, a heap profile, an
// execution trace, and a JSON metrics snapshot whose manifest carries
// the spec provenance and whose metrics include the engine counters.
func TestObservabilityArtifacts(t *testing.T) {
	dir := t.TempDir()
	specPath := writeFile(t, "spec.json", testSpec)
	o := &Observability{
		Tool:       "testtool",
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		TracePath:  filepath.Join(dir, "trace.out"),
		Metrics:    filepath.Join(dir, "metrics.json"),
		Progress:   true,
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	o.Manifest().SetSeed(11)
	var b strings.Builder
	d := &Declarative{Spec: specPath}
	if ran, err := d.RunObserved(&b, o); !ran || err != nil {
		t.Fatalf("observed spec run: ran=%v err=%v", ran, err)
	}
	if err := o.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{o.CPUProfile, o.MemProfile, o.TracePath, o.Metrics} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("missing artifact: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("empty artifact %s", p)
		}
	}
	var snap obs.Snapshot
	data, err := os.ReadFile(o.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics snapshot does not parse: %v", err)
	}
	m := snap.Manifest
	if m == nil || m.Tool != "testtool" || m.SpecPath != specPath || m.SpecSHA256 == "" {
		t.Fatalf("manifest = %+v", m)
	}
	if m.Seed == nil || *m.Seed != 11 {
		t.Fatalf("manifest seed = %v", m.Seed)
	}
	if m.WallSeconds <= 0 || m.VirtualTime <= 0 {
		t.Fatalf("durations: wall %v virtual %v", m.WallSeconds, m.VirtualTime)
	}
	byName := map[string]obs.MetricSnapshot{}
	for _, ms := range snap.Metrics {
		byName[ms.Name] = ms
	}
	runs, ok := byName["netsim_runs_total"]
	if !ok || runs.Value == nil || *runs.Value != 2 { // replications.n = 2
		t.Fatalf("netsim_runs_total = %+v", runs)
	}
	events := byName["netsim_events_total"]
	if events.Value == nil || *events.Value <= 0 {
		t.Fatalf("netsim_events_total = %+v", events)
	}
	// Process-memory accounting: on Linux both the manifest fields and
	// the registry gauges must report real byte counts; elsewhere peak
	// RSS may legitimately read 0 (not measured).
	heapSys := byName["process_heap_sys_bytes"]
	if heapSys.Value == nil || *heapSys.Value <= 0 || m.HeapSysBytes <= 0 {
		t.Fatalf("process_heap_sys_bytes = %+v, manifest %d", heapSys, m.HeapSysBytes)
	}
	maxRSS, ok := byName["process_max_rss_bytes"]
	if !ok || maxRSS.Value == nil {
		t.Fatalf("process_max_rss_bytes missing: %+v", maxRSS)
	}
	if runtime.GOOS == "linux" && (*maxRSS.Value <= 0 || m.MaxRSSBytes <= 0) {
		t.Fatalf("peak RSS not measured on linux: gauge %v, manifest %d", *maxRSS.Value, m.MaxRSSBytes)
	}
}

// TestObservabilityPromFormat: a .prom metrics path selects Prometheus
// text exposition with the manifest riding as a comment line.
func TestObservabilityPromFormat(t *testing.T) {
	o := &Observability{Tool: "testtool", Metrics: filepath.Join(t.TempDir(), "metrics.prom")}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	o.Stats().Events.Add(42)
	if err := o.Stop(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{
		"# manifest: {", `"tool":"testtool"`,
		"# TYPE netsim_events_total counter", "netsim_events_total 42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, out)
		}
	}
}

// TestObservabilityNilSafety: every accessor used by the cmd binaries
// tolerates a nil *Observability (the tests' plain-run path).
func TestObservabilityNilSafety(t *testing.T) {
	var o *Observability
	if o.Observe() != nil {
		t.Fatal("nil Observability produced an Observe")
	}
	if o.Stats() != nil || o.Manifest() != nil {
		t.Fatal("nil Observability exposed instruments")
	}
	o.NoteSpec("x.json")
	o.Manifest().SetSeed(1) // nil *Manifest must also be inert
}

// TestObservabilityStopBare: Stop without artifacts requested (and
// after a Start) is a no-op that errors nowhere.
func TestObservabilityStopBare(t *testing.T) {
	o := &Observability{Tool: "bare"}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if err := o.Stop(); err != nil {
		t.Fatal(err)
	}
}
