package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"mlfair/internal/netsim"
	"mlfair/internal/obs"
	"mlfair/internal/scenario"
	"mlfair/internal/trace"
)

// Observability is the shared -cpuprofile/-memprofile/-trace/-metrics/
// -progress flag set plus the run-scoped artifacts behind them: a
// pprof CPU profile and execution trace bracketing the run, a heap
// profile and an engine metrics snapshot (with run-provenance
// manifest) written on Stop. One Observability serves a whole binary
// invocation: Start it after flag.Parse, thread Observe() into the
// scenario layer, Stop it on every exit path.
type Observability struct {
	Tool       string
	CPUProfile string
	MemProfile string
	TracePath  string
	Metrics    string
	Progress   bool

	reg      *obs.Registry
	stats    *netsim.EngineStats
	man      *obs.Manifest
	maxRSS   *obs.Gauge
	heapSys  *obs.Gauge
	start    time.Time
	cpuFile  *os.File
	trcFile  *os.File
	progress *trace.Progress
}

// RegisterObservability registers the observability flags on fs. tool
// names the binary in the run manifest.
func RegisterObservability(fs *flag.FlagSet, tool string) *Observability {
	o := &Observability{Tool: tool}
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.StringVar(&o.TracePath, "trace", "", "write a runtime execution trace to this file")
	fs.StringVar(&o.Metrics, "metrics", "",
		"write an engine metrics snapshot with run manifest to this file on exit (.prom selects Prometheus text exposition, anything else JSON)")
	fs.BoolVar(&o.Progress, "progress", false,
		"stream a live cells/throughput/ETA status line to stderr while scenarios and sweeps run")
	return o
}

// Start opens the profiling sinks and the metrics registry. Call once
// after flag parsing; every Start must be paired with Stop.
func (o *Observability) Start() error {
	o.start = time.Now()
	man := obs.NewManifest(o.Tool)
	o.man = &man
	o.stats = &netsim.EngineStats{}
	o.reg = obs.NewRegistry()
	o.stats.MustRegister(o.reg)
	o.maxRSS = &obs.Gauge{}
	o.heapSys = &obs.Gauge{}
	o.reg.MustRegister("process_max_rss_bytes", "kernel-reported peak resident set size (0 = not measured)", o.maxRSS)
	o.reg.MustRegister("process_heap_sys_bytes", "Go heap address space obtained from the OS", o.heapSys)
	if o.Progress {
		o.progress = &trace.Progress{W: os.Stderr}
	}
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		o.cpuFile = f
	}
	if o.TracePath != "" {
		f, err := os.Create(o.TracePath)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			return fmt.Errorf("-trace: %w", err)
		}
		o.trcFile = f
	}
	return nil
}

// Stop finalizes every requested artifact: it stops the CPU profile
// and execution trace, writes the heap profile, and writes the metrics
// snapshot with the completed manifest. Safe to call when Start failed
// partway (only the opened sinks are closed).
func (o *Observability) Stop() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if o.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(o.cpuFile.Close())
		o.cpuFile = nil
	}
	if o.trcFile != nil {
		rtrace.Stop()
		keep(o.trcFile.Close())
		o.trcFile = nil
	}
	if o.MemProfile != "" {
		runtime.GC() // settle live-heap accounting before the snapshot
		f, err := os.Create(o.MemProfile)
		if err != nil {
			keep(fmt.Errorf("-memprofile: %w", err))
		} else {
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	if o.Metrics != "" && o.man != nil {
		o.man.WallSeconds = time.Since(o.start).Seconds()
		o.man.VirtualTime = o.stats.VirtualTime.Load()
		o.man.MaxRSSBytes = obs.ReadPeakRSS()
		o.man.HeapSysBytes = obs.ReadHeapSys()
		o.maxRSS.Set(o.man.MaxRSSBytes)
		o.heapSys.Set(o.man.HeapSysBytes)
		keep(o.writeMetrics())
	}
	return firstErr
}

// writeMetrics renders the snapshot: Prometheus text exposition for
// .prom/.txt paths (manifest as a leading comment), JSON otherwise.
func (o *Observability) writeMetrics() error {
	f, err := os.Create(o.Metrics)
	if err != nil {
		return fmt.Errorf("-metrics: %w", err)
	}
	werr := func() error {
		if strings.HasSuffix(o.Metrics, ".prom") || strings.HasSuffix(o.Metrics, ".txt") {
			if err := o.man.WriteComment(f); err != nil {
				return err
			}
			return o.reg.WritePrometheus(f)
		}
		return o.reg.WriteJSON(f, o.man)
	}()
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("-metrics: %w", werr)
	}
	return nil
}

// Observe assembles the scenario-layer attachment: the shared engine
// stats sink plus, under -progress, a stderr status-line renderer.
// Valid to pass even when no observability flag was set — an inert
// sink costs one atomic flush per replication.
func (o *Observability) Observe() *scenario.Observe {
	if o == nil {
		return nil
	}
	ob := &scenario.Observe{Stats: o.stats, Manifest: o.man}
	if o.progress != nil {
		pr := o.progress
		ob.Progress = func(p scenario.SweepProgress) {
			if p.Done {
				pr.Done(p.String())
			} else {
				pr.Update(p.String())
			}
		}
	}
	return ob
}

// Stats exposes the engine sink (nil before Start).
func (o *Observability) Stats() *netsim.EngineStats {
	if o == nil {
		return nil
	}
	return o.stats
}

// Manifest exposes the run manifest (nil before Start) so drivers can
// note seeds and other provenance.
func (o *Observability) Manifest() *obs.Manifest {
	if o == nil {
		return nil
	}
	return o.man
}

// NoteSpec records the declarative input file in the manifest: its
// path always, its sha256 when readable.
func (o *Observability) NoteSpec(path string) {
	if o == nil || o.man == nil {
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		o.man.SpecPath = path
		return
	}
	o.man.SetSpec(path, data)
}
