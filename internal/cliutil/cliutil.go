// Package cliutil deduplicates the flag plumbing the simulator
// binaries used to copy from each other: the declarative
// -spec/-sweep/-format trio (every binary runs the same scenario and
// sweep files the same way) and the replication sizing flags
// (-receivers, -packets, -trials, -workers, -seed, -quick) with
// per-binary defaults.
package cliutil

import (
	"flag"
	"fmt"
	"io"

	"mlfair/internal/scenario"
)

// Declarative is the -spec/-sweep/-format flag trio.
type Declarative struct {
	Spec   string
	Sweep  string
	Format string
}

// RegisterDeclarative registers -spec, -sweep and -format on fs.
func RegisterDeclarative(fs *flag.FlagSet) *Declarative {
	d := &Declarative{}
	fs.StringVar(&d.Spec, "spec", "", "run a declarative scenario.Spec JSON file (docs/SCENARIOS.md)")
	fs.StringVar(&d.Sweep, "sweep", "", "run a declarative scenario.Sweep JSON file and emit its result table (docs/SWEEPS.md)")
	fs.StringVar(&d.Format, "format", "csv", "-sweep output format: csv | json")
	return d
}

// Run executes the selected declarative input, if any, and reports
// whether one ran (the caller returns afterwards instead of running
// its own drivers). Errors are the caller's to report.
func (d *Declarative) Run(w io.Writer) (bool, error) {
	return d.RunObserved(w, nil)
}

// RunObserved is Run with an optional Observability attachment: the
// spec path lands in the run manifest and the scenario layer gets the
// stats sink and progress reporter. A nil o is exactly Run.
func (d *Declarative) RunObserved(w io.Writer, o *Observability) (bool, error) {
	if d.Spec != "" && d.Sweep != "" {
		return true, fmt.Errorf("-spec and -sweep are mutually exclusive")
	}
	var ob *scenario.Observe
	note := func(path string) {
		if o != nil {
			o.NoteSpec(path)
			ob = o.Observe()
		}
	}
	switch {
	case d.Spec != "":
		if d.Format != "" && d.Format != "csv" {
			return true, fmt.Errorf("-format applies to -sweep only (a -spec run emits its text report)")
		}
		note(d.Spec)
		return true, scenario.RunFileObserved(w, d.Spec, ob)
	case d.Sweep != "":
		note(d.Sweep)
		return true, scenario.RunSweepFileObserved(w, d.Sweep, d.Format, ob)
	}
	return false, nil
}

// SimDefaults parameterizes RegisterSim per binary: sizing defaults,
// and whether the binary exposes -workers and -quick at all.
type SimDefaults struct {
	Receivers int
	Packets   int
	Trials    int
	Seed      uint64
	Workers   bool
	Quick     bool
}

// SimFlags carries the shared simulator flags after parsing.
type SimFlags struct {
	*Declarative
	Receivers int
	Packets   int
	Trials    int
	Workers   int
	Seed      uint64
	Quick     bool
}

// RegisterSim registers the declarative trio plus the shared
// replication sizing flags on fs.
func RegisterSim(fs *flag.FlagSet, def SimDefaults) *SimFlags {
	f := &SimFlags{Declarative: RegisterDeclarative(fs)}
	fs.IntVar(&f.Receivers, "receivers", def.Receivers, "receivers per session")
	fs.IntVar(&f.Packets, "packets", def.Packets, "sender packet budget per trial")
	fs.IntVar(&f.Trials, "trials", def.Trials, "independent replications (mean ± 95% CI reported)")
	if def.Workers {
		fs.IntVar(&f.Workers, "workers", 0, "parallel replication workers (0 = GOMAXPROCS)")
	}
	fs.Uint64Var(&f.Seed, "seed", def.Seed, "base RNG seed (replication seeds derived deterministically)")
	if def.Quick {
		fs.BoolVar(&f.Quick, "quick", false, "reduced sizes for smoke runs")
	}
	return f
}

// ApplyQuick shrinks the sizing to the given smoke-run values when
// -quick was set.
func (f *SimFlags) ApplyQuick(receivers, packets, trials int) {
	if f.Quick {
		f.Receivers, f.Packets, f.Trials = receivers, packets, trials
	}
}
