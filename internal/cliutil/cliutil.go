// Package cliutil deduplicates the flag plumbing the simulator
// binaries used to copy from each other: the declarative
// -spec/-sweep/-format trio (every binary runs the same scenario and
// sweep files the same way), the distributed sweep-execution flags
// (-workers, -shard, -checkpoint, -resume, -shardfile, -merge), and
// the replication sizing flags (-receivers, -packets, -trials, -seed,
// -quick) with per-binary defaults.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mlfair/internal/scenario"
	"mlfair/internal/sweepexec"
)

// Declarative is the -spec/-sweep/-format flag trio plus the
// distributed sweep-execution flags.
type Declarative struct {
	Spec   string
	Sweep  string
	Format string
	// Workers is the parallel worker budget shared by the scenario
	// drivers and the sweep schedulers (0 = GOMAXPROCS).
	Workers int
	// Shard ("i/n") restricts a -sweep run to points with id mod n == i,
	// so n independent processes cover the grid; each writes its slice
	// with -shardfile and one -merge invocation joins them.
	Shard string
	// Checkpoint names a directory for durable sweep progress; Resume
	// restores it and simulates only the missing cells.
	Checkpoint string
	Resume     bool
	// ShardFile writes the run's result slice as a binary shard file
	// (instead of a CSV/JSON table on stdout).
	ShardFile string
	// Merge joins comma-separated shard files from a completed
	// distributed run into the full result table.
	Merge string
}

// RegisterDeclarative registers -spec, -sweep, -format, -workers and
// the distributed sweep flags on fs.
func RegisterDeclarative(fs *flag.FlagSet) *Declarative {
	d := &Declarative{}
	fs.StringVar(&d.Spec, "spec", "", "run a declarative scenario.Spec JSON file (docs/SCENARIOS.md)")
	fs.StringVar(&d.Sweep, "sweep", "", "run a declarative scenario.Sweep JSON file and emit its result table (docs/SWEEPS.md)")
	fs.StringVar(&d.Format, "format", "csv", "-sweep output format: csv | json")
	fs.IntVar(&d.Workers, "workers", 0, "parallel workers (0 = GOMAXPROCS)")
	fs.StringVar(&d.Shard, "shard", "", "with -sweep: run only shard i of n, as \"i/n\" (see docs/SWEEPS.md, Distributed execution)")
	fs.StringVar(&d.Checkpoint, "checkpoint", "", "with -sweep: directory for durable progress (crash-safe spill shards + checkpoint file)")
	fs.BoolVar(&d.Resume, "resume", false, "with -sweep -checkpoint: restore the directory's progress and run only the missing cells")
	fs.StringVar(&d.ShardFile, "shardfile", "", "with -sweep: write the run's result slice as a binary shard file instead of a table")
	fs.StringVar(&d.Merge, "merge", "", "with -sweep: merge comma-separated shard files into the full result table instead of simulating")
	return d
}

// distributed reports whether any distributed sweep-execution flag is
// in play, routing the -sweep run through sweepexec instead of the
// in-process scheduler.
func (d *Declarative) distributed() bool {
	return d.Shard != "" || d.Checkpoint != "" || d.Resume || d.ShardFile != "" || d.Merge != ""
}

// parseShard parses "i/n".
func parseShard(s string) (index, count int, err error) {
	i, n, ok := strings.Cut(s, "/")
	if ok {
		var ei, en error
		index, ei = strconv.Atoi(i)
		count, en = strconv.Atoi(n)
		ok = ei == nil && en == nil && count >= 1 && index >= 0 && index < count
	}
	if !ok {
		return 0, 0, fmt.Errorf("-shard %q: want \"i/n\" with 0 <= i < n", s)
	}
	return index, count, nil
}

// Run executes the selected declarative input, if any, and reports
// whether one ran (the caller returns afterwards instead of running
// its own drivers). Errors are the caller's to report.
func (d *Declarative) Run(w io.Writer) (bool, error) {
	return d.RunObserved(w, nil)
}

// RunObserved is Run with an optional Observability attachment: the
// spec path lands in the run manifest and the scenario layer gets the
// stats sink and progress reporter. A nil o is exactly Run.
func (d *Declarative) RunObserved(w io.Writer, o *Observability) (bool, error) {
	if d.Spec != "" && d.Sweep != "" {
		return true, fmt.Errorf("-spec and -sweep are mutually exclusive")
	}
	if d.distributed() && d.Sweep == "" {
		return true, fmt.Errorf("-shard/-checkpoint/-resume/-shardfile/-merge require -sweep")
	}
	var ob *scenario.Observe
	note := func(path string) {
		if o != nil {
			o.NoteSpec(path)
			ob = o.Observe()
		}
	}
	switch {
	case d.Spec != "":
		if d.Format != "" && d.Format != "csv" {
			return true, fmt.Errorf("-format applies to -sweep only (a -spec run emits its text report)")
		}
		note(d.Spec)
		return true, scenario.RunFileObserved(w, d.Spec, ob)
	case d.Sweep != "" && d.distributed():
		note(d.Sweep)
		return true, d.runDistributed(w, o, ob)
	case d.Sweep != "":
		note(d.Sweep)
		return true, scenario.RunSweepFileObserved(w, d.Sweep, d.Format, ob)
	}
	return false, nil
}

// runDistributed drives the sweepexec paths: merging shard files, or
// executing this process's (possibly sharded, possibly checkpointed)
// slice of the sweep. The sweep file is loaded through the scenario
// loader, so malformed JSON reports with file:line:col here exactly as
// it does for a plain -sweep run.
func (d *Declarative) runDistributed(w io.Writer, o *Observability, ob *scenario.Observe) error {
	if d.Format != "" && d.Format != "csv" && d.Format != "json" {
		return fmt.Errorf("unknown sweep output format %q (want csv or json)", d.Format)
	}
	sw, err := scenario.LoadSweepFile(d.Sweep)
	if err != nil {
		return err
	}
	if d.Merge != "" {
		if d.Shard != "" || d.Checkpoint != "" || d.Resume || d.ShardFile != "" {
			return fmt.Errorf("-merge runs no simulation; it only takes -sweep and -format")
		}
		res, err := sweepexec.MergeFiles(sw, strings.Split(d.Merge, ","))
		if err != nil {
			return err
		}
		return d.writeResult(w, res)
	}
	opts := sweepexec.Options{
		Workers:       d.Workers,
		CheckpointDir: d.Checkpoint,
		Resume:        d.Resume,
		Observe:       ob,
	}
	if d.Shard != "" {
		if opts.ShardIndex, opts.ShardCount, err = parseShard(d.Shard); err != nil {
			return err
		}
		if o != nil {
			o.Manifest().SetShard(d.Shard)
		}
	}
	res, err := sweepexec.Run(sw, opts)
	if err != nil {
		return err
	}
	if d.ShardFile != "" {
		return res.WriteShardFile(d.ShardFile)
	}
	if opts.ShardCount > 1 {
		return fmt.Errorf("-shard %s ran %d points but has nowhere to put them: a shard's slice is not the full table, write it with -shardfile and join the shards with -merge", d.Shard, len(res.Sim.Points()))
	}
	return d.writeResult(w, res)
}

func (d *Declarative) writeResult(w io.Writer, res *sweepexec.Result) error {
	if d.Format == "json" {
		return res.WriteJSON(w)
	}
	return res.WriteCSV(w)
}

// SimDefaults parameterizes RegisterSim per binary: sizing defaults,
// and whether the binary exposes -quick at all.
type SimDefaults struct {
	Receivers int
	Packets   int
	Trials    int
	Seed      uint64
	Quick     bool
}

// SimFlags carries the shared simulator flags after parsing. Workers
// is promoted from the embedded Declarative — one -workers flag serves
// the scenario drivers and the sweep schedulers alike.
type SimFlags struct {
	*Declarative
	Receivers int
	Packets   int
	Trials    int
	Seed      uint64
	Quick     bool
}

// RegisterSim registers the declarative trio plus the shared
// replication sizing flags on fs.
func RegisterSim(fs *flag.FlagSet, def SimDefaults) *SimFlags {
	f := &SimFlags{Declarative: RegisterDeclarative(fs)}
	fs.IntVar(&f.Receivers, "receivers", def.Receivers, "receivers per session")
	fs.IntVar(&f.Packets, "packets", def.Packets, "sender packet budget per trial")
	fs.IntVar(&f.Trials, "trials", def.Trials, "independent replications (mean ± 95% CI reported)")
	fs.Uint64Var(&f.Seed, "seed", def.Seed, "base RNG seed (replication seeds derived deterministically)")
	if def.Quick {
		fs.BoolVar(&f.Quick, "quick", false, "reduced sizes for smoke runs")
	}
	return f
}

// ApplyQuick shrinks the sizing to the given smoke-run values when
// -quick was set.
func (f *SimFlags) ApplyQuick(receivers, packets, trials int) {
	if f.Quick {
		f.Receivers, f.Packets, f.Trials = receivers, packets, trials
	}
}
