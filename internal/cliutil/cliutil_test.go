package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegisterSimDefaultsAndQuick(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterSim(fs, SimDefaults{Receivers: 50, Packets: 50000, Trials: 8, Seed: 777, Workers: true, Quick: true})
	if err := fs.Parse([]string{"-trials", "4", "-workers", "2", "-quick"}); err != nil {
		t.Fatal(err)
	}
	if f.Receivers != 50 || f.Packets != 50000 || f.Trials != 4 || f.Workers != 2 || f.Seed != 777 {
		t.Fatalf("parsed flags %+v", f)
	}
	f.ApplyQuick(10, 10000, 3)
	if f.Receivers != 10 || f.Packets != 10000 || f.Trials != 3 {
		t.Fatalf("quick sizes not applied: %+v", f)
	}
	// Without -quick, ApplyQuick leaves the sizing alone.
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	f2 := RegisterSim(fs2, SimDefaults{Receivers: 100, Packets: 100000, Trials: 30, Seed: 1999})
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	f2.ApplyQuick(10, 10000, 3)
	if f2.Receivers != 100 || f2.Packets != 100000 || f2.Trials != 30 {
		t.Fatalf("sizing changed without -quick: %+v", f2)
	}
	// -workers and -quick are only registered when asked for.
	if fs2.Lookup("workers") != nil || fs2.Lookup("quick") != nil {
		t.Fatal("workers/quick registered without being requested")
	}
}

const testSpec = `{
  "topology": {"kind": "star", "receivers": 3},
  "defaultLink": {"kind": "bernoulli", "loss": 0.05},
  "packets": 1500,
  "replications": {"n": 2, "workers": 2},
  "seed": 11
}
`

const testSweep = `{
  "base": {
    "topology": {"kind": "star", "receivers": 3},
    "defaultLink": {"kind": "bernoulli", "loss": 0.05},
    "packets": 1500,
    "replications": {"n": 2, "workers": 2},
    "seed": 11
  },
  "axes": [{"field": "defaultLink.loss", "values": [0.01, 0.05]}]
}
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDeclarativeRun(t *testing.T) {
	specPath := writeFile(t, "spec.json", testSpec)
	sweepPath := writeFile(t, "sweep.json", testSweep)

	var b strings.Builder
	d := &Declarative{}
	if ran, err := d.Run(&b); ran || err != nil {
		t.Fatalf("empty flags ran: %v %v", ran, err)
	}

	d = &Declarative{Spec: specPath}
	ran, err := d.Run(&b)
	if !ran || err != nil {
		t.Fatalf("spec run: ran=%v err=%v", ran, err)
	}
	if !strings.Contains(b.String(), "receiver goodput") {
		t.Errorf("spec output missing report:\n%s", b.String())
	}

	b.Reset()
	d = &Declarative{Sweep: sweepPath, Format: "csv"}
	ran, err = d.Run(&b)
	if !ran || err != nil {
		t.Fatalf("sweep run: ran=%v err=%v", ran, err)
	}
	if !strings.HasPrefix(b.String(), "defaultLink.loss,goodput_mean") {
		t.Errorf("sweep CSV missing header:\n%s", b.String())
	}
	if got := strings.Count(b.String(), "\n"); got != 3 {
		t.Errorf("sweep CSV has %d lines, want 3:\n%s", got, b.String())
	}

	// Mutually exclusive flags are an error that counts as handled.
	d = &Declarative{Spec: specPath, Sweep: sweepPath}
	if ran, err := d.Run(&b); !ran || err == nil {
		t.Fatalf("spec+sweep: ran=%v err=%v", ran, err)
	}
	// Errors propagate.
	d = &Declarative{Sweep: specPath} // a Spec file is not a Sweep
	if ran, err := d.Run(&b); !ran || err == nil {
		t.Fatalf("bad sweep file: ran=%v err=%v", ran, err)
	}
}

func TestDeclarativeSpecRejectsFormat(t *testing.T) {
	specPath := writeFile(t, "spec.json", testSpec)
	var b strings.Builder
	d := &Declarative{Spec: specPath, Format: "json"}
	if ran, err := d.Run(&b); !ran || err == nil {
		t.Fatalf("-spec with -format json: ran=%v err=%v", ran, err)
	}
	// The registered default ("csv") stays accepted.
	d = &Declarative{Spec: specPath, Format: "csv"}
	if ran, err := d.Run(&b); !ran || err != nil {
		t.Fatalf("-spec with default format: ran=%v err=%v", ran, err)
	}
}
