package cliutil

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegisterSimDefaultsAndQuick(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterSim(fs, SimDefaults{Receivers: 50, Packets: 50000, Trials: 8, Seed: 777, Quick: true})
	if err := fs.Parse([]string{"-trials", "4", "-workers", "2", "-quick"}); err != nil {
		t.Fatal(err)
	}
	if f.Receivers != 50 || f.Packets != 50000 || f.Trials != 4 || f.Workers != 2 || f.Seed != 777 {
		t.Fatalf("parsed flags %+v", f)
	}
	f.ApplyQuick(10, 10000, 3)
	if f.Receivers != 10 || f.Packets != 10000 || f.Trials != 3 {
		t.Fatalf("quick sizes not applied: %+v", f)
	}
	// Without -quick, ApplyQuick leaves the sizing alone.
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	f2 := RegisterSim(fs2, SimDefaults{Receivers: 100, Packets: 100000, Trials: 30, Seed: 1999})
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	f2.ApplyQuick(10, 10000, 3)
	if f2.Receivers != 100 || f2.Packets != 100000 || f2.Trials != 30 {
		t.Fatalf("sizing changed without -quick: %+v", f2)
	}
	// -quick is only registered when asked for; -workers always exists
	// (every declarative binary's sweep path takes a worker budget).
	if fs2.Lookup("quick") != nil {
		t.Fatal("quick registered without being requested")
	}
	if fs2.Lookup("workers") == nil {
		t.Fatal("workers not registered")
	}
}

const testSpec = `{
  "topology": {"kind": "star", "receivers": 3},
  "defaultLink": {"kind": "bernoulli", "loss": 0.05},
  "packets": 1500,
  "replications": {"n": 2, "workers": 2},
  "seed": 11
}
`

const testSweep = `{
  "base": {
    "topology": {"kind": "star", "receivers": 3},
    "defaultLink": {"kind": "bernoulli", "loss": 0.05},
    "packets": 1500,
    "replications": {"n": 2, "workers": 2},
    "seed": 11
  },
  "axes": [{"field": "defaultLink.loss", "values": [0.01, 0.05]}]
}
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDeclarativeRun(t *testing.T) {
	specPath := writeFile(t, "spec.json", testSpec)
	sweepPath := writeFile(t, "sweep.json", testSweep)

	var b strings.Builder
	d := &Declarative{}
	if ran, err := d.Run(&b); ran || err != nil {
		t.Fatalf("empty flags ran: %v %v", ran, err)
	}

	d = &Declarative{Spec: specPath}
	ran, err := d.Run(&b)
	if !ran || err != nil {
		t.Fatalf("spec run: ran=%v err=%v", ran, err)
	}
	if !strings.Contains(b.String(), "receiver goodput") {
		t.Errorf("spec output missing report:\n%s", b.String())
	}

	b.Reset()
	d = &Declarative{Sweep: sweepPath, Format: "csv"}
	ran, err = d.Run(&b)
	if !ran || err != nil {
		t.Fatalf("sweep run: ran=%v err=%v", ran, err)
	}
	if !strings.HasPrefix(b.String(), "defaultLink.loss,goodput_mean") {
		t.Errorf("sweep CSV missing header:\n%s", b.String())
	}
	if got := strings.Count(b.String(), "\n"); got != 3 {
		t.Errorf("sweep CSV has %d lines, want 3:\n%s", got, b.String())
	}

	// Mutually exclusive flags are an error that counts as handled.
	d = &Declarative{Spec: specPath, Sweep: sweepPath}
	if ran, err := d.Run(&b); !ran || err == nil {
		t.Fatalf("spec+sweep: ran=%v err=%v", ran, err)
	}
	// Errors propagate.
	d = &Declarative{Sweep: specPath} // a Spec file is not a Sweep
	if ran, err := d.Run(&b); !ran || err == nil {
		t.Fatalf("bad sweep file: ran=%v err=%v", ran, err)
	}
}

func TestDeclarativeSpecRejectsFormat(t *testing.T) {
	specPath := writeFile(t, "spec.json", testSpec)
	var b strings.Builder
	d := &Declarative{Spec: specPath, Format: "json"}
	if ran, err := d.Run(&b); !ran || err == nil {
		t.Fatalf("-spec with -format json: ran=%v err=%v", ran, err)
	}
	// The registered default ("csv") stays accepted.
	d = &Declarative{Spec: specPath, Format: "csv"}
	if ran, err := d.Run(&b); !ran || err != nil {
		t.Fatalf("-spec with default format: ran=%v err=%v", ran, err)
	}
}

// TestDeclarativeDistributed drives the sweepexec CLI paths: a sharded
// 3-process run whose merged table matches the in-process run byte for
// byte, checkpoint/resume plumbing, and flag validation.
func TestDeclarativeDistributed(t *testing.T) {
	sweepPath := writeFile(t, "sweep.json", testSweep)

	var single strings.Builder
	if ran, err := (&Declarative{Sweep: sweepPath, Format: "csv"}).Run(&single); !ran || err != nil {
		t.Fatalf("single run: ran=%v err=%v", ran, err)
	}

	dir := t.TempDir()
	var shards []string
	for i := 0; i < 3; i++ {
		path := filepath.Join(dir, fmt.Sprintf("s%d.shard", i))
		d := &Declarative{Sweep: sweepPath, Format: "csv", Shard: fmt.Sprintf("%d/3", i), ShardFile: path}
		var b strings.Builder
		if ran, err := d.Run(&b); !ran || err != nil {
			t.Fatalf("shard %d: ran=%v err=%v", i, ran, err)
		}
		if b.Len() != 0 {
			t.Fatalf("shard %d wrote a table to stdout:\n%s", i, b.String())
		}
		shards = append(shards, path)
	}
	var merged strings.Builder
	d := &Declarative{Sweep: sweepPath, Format: "csv", Merge: strings.Join(shards, ",")}
	if ran, err := d.Run(&merged); !ran || err != nil {
		t.Fatalf("merge: ran=%v err=%v", ran, err)
	}
	if merged.String() != single.String() {
		t.Fatalf("merged table differs from single run:\n--- merged ---\n%s--- single ---\n%s", merged.String(), single.String())
	}

	// Checkpoint + resume round trip through the flags.
	ckdir := filepath.Join(t.TempDir(), "ck")
	var b strings.Builder
	if ran, err := (&Declarative{Sweep: sweepPath, Format: "csv", Checkpoint: ckdir}).Run(&b); !ran || err != nil {
		t.Fatalf("checkpointed run: ran=%v err=%v", ran, err)
	}
	if b.String() != single.String() {
		t.Fatal("checkpointed run differs from single run")
	}
	b.Reset()
	if ran, err := (&Declarative{Sweep: sweepPath, Format: "csv", Checkpoint: ckdir, Resume: true}).Run(&b); !ran || err != nil {
		t.Fatalf("resume: ran=%v err=%v", ran, err)
	}
	if b.String() != single.String() {
		t.Fatal("resumed run differs from single run")
	}

	// Validation: distributed flags without -sweep; bad -shard syntax;
	// a sharded table run with nowhere to write its slice.
	if ran, err := (&Declarative{Shard: "0/3"}).Run(&b); !ran || err == nil {
		t.Fatalf("-shard without -sweep: ran=%v err=%v", ran, err)
	}
	for _, bad := range []string{"3", "a/b", "3/3", "-1/3", "0/0"} {
		if _, err := (&Declarative{Sweep: sweepPath, Shard: bad}).Run(&b); err == nil {
			t.Fatalf("-shard %q accepted", bad)
		}
	}
	if _, err := (&Declarative{Sweep: sweepPath, Shard: "0/3"}).Run(&b); err == nil {
		t.Fatal("sharded run without -shardfile accepted")
	}
}

// TestDistributedSweepLoadError: malformed sweep JSON reaching the
// shard/checkpoint path reports with the loader's file:line:col
// prefix, same as a plain -sweep run.
func TestDistributedSweepLoadError(t *testing.T) {
	bad := writeFile(t, "bad.json", "{\n  \"base\": {},\n  \"axes\": [,]\n}\n")
	var b strings.Builder
	_, err := (&Declarative{Sweep: bad, Shard: "0/2", ShardFile: filepath.Join(t.TempDir(), "s.shard")}).Run(&b)
	if err == nil {
		t.Fatal("malformed sweep accepted")
	}
	if !strings.Contains(err.Error(), "bad.json:3:13:") {
		t.Fatalf("error lacks file:line:col: %v", err)
	}
}
