package netsim

import (
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"mlfair/internal/protocol"
)

// Intra-session subtree sharding (Config.Shards >= 1, single-session
// shard groups).
//
// Session-group sharding (shard.go) cannot help a group that holds one
// giant session: a 1M-receiver planetary region is still one sequential
// event loop. But inside such a tree almost all work lives below a thin
// bottleneck core (the Sreenivasan et al. scale-free regime): the fan-out
// subtrees hanging off the core are pairwise link-disjoint, so — exactly
// like shard groups — they can only interact through the shared core
// prefix above them. The engine therefore partitions the DFS-ordered CSR
// tree at a cut frontier and splits every transmission walk into three
// phases:
//
//  1. Core (sequential). forwardCore walks the shared prefix with the
//     engine's own RNG stream, exactly like the plain walk, except that a
//     cut edge is not descended: its crossing is counted and its
//     admission outcome fixed here — sequentially, in DFS order — and an
//     admitted packet is recorded as an arrival for the subtree below.
//     Fixing cut-edge outcomes in the core phase is what makes the fan-out
//     phase embarrassingly parallel: nothing a subtree does can change
//     whether a sibling's packet was admitted.
//
//  2. Fan-out (parallel). Each arrived subtree runs the ordinary fused
//     walk over its own edges, drawing from its own PCG stream (seeded
//     from the group seed and the subtree index — never from Shards or
//     the worker schedule) and mutating only subtree-owned state: its
//     receivers' protocol arrays, its edges' counters, its nodes'
//     subscription rows, and a per-subtree level-accounting partition.
//     Level changes propagate only up to the subtree root; the cut edge
//     itself is left untouched (phase 3 owns it). Work is distributed by
//     an atomic cursor — the schedule affects wall-clock only, never
//     state, because subtrees are disjoint.
//
//  3. Rollup (sequential). For each arrival, in ascending subtree order,
//     the deferred cut-edge bookkeeping runs if the subtree root's
//     maximum moved: fluid-integral advance, edgeSub, capacity demand
//     (exact — the scheme's cumulative rates are integer-valued, so the
//     telescoped delta equals the sum of the intermediate deltas), child
//     re-bucketing in the core parent, then the ordinary upward
//     propagation through the core.
//
// Determinism: phases 1 and 3 are sequential with a fixed order; phase 2
// consumes per-subtree streams whose draw order is fixed by the
// arrival sequence (itself fixed by phase 1). The Result is therefore a
// pure function of the Config — every Shards >= 1 yields the identical
// Result, and GOMAXPROCS/worker count never leak into output. Like
// multi-group sharding, the decomposed run is a different (equally
// valid) realization than the Shards == 0 sequential engine: subtree
// streams replace slices of the sequential stream.
//
// Between transmissions everything is sequential, so churn, signal
// delivery, and probe flushes run on globally consistent state with the
// engine's own stream; level changes from those paths go through the
// full applyLevelChange (straight through the cut edge) and re-sync the
// subtree's rollup snapshot.

// subtreeSalt decorrelates per-subtree seeds from both the replication
// fan-out (ReplicationSeed(seed, i)) and the shard-group fan-out
// (shardSeed — ReplicationSeed(seed^shardSalt, g)).
const subtreeSalt = 0x6a09e667f3bcc909

// subtreeSeed derives subtree j's RNG seed from the owning engine's
// (group) seed. Unlike shardSeed, subtree 0 does not inherit the group
// seed: the core prefix keeps it, so every subtree needs a fresh stream.
func subtreeSeed(base uint64, j int) uint64 {
	return ReplicationSeed(base^subtreeSalt, j+1)
}

// Auto-frontier policy (Config.CutLinks empty): aim for about
// autoCutTargetSubtrees subtrees by cutting the maximal nodes whose
// subtree holds at most ceil-ish nR/target receivers. The guards reject
// decompositions that cannot pay for the phase barriers: tiny sessions,
// frontiers covering less than half the receivers (the core would stay
// the bottleneck), and splinter frontiers of near-empty subtrees (a
// star's leaf edges — no parallelism to extract).
const (
	autoCutTargetSubtrees  = 64
	autoCutMinReceivers    = 4096
	autoCutMinAvgReceivers = 32
)

// treePartition is the engine-side decomposition of one session's tree.
// Built only for single-session shard groups (see newTreePartition for
// the eligibility rules); nil on every other engine, costing the
// sequential paths one predictable nil check at non-hot call sites.
type treePartition struct {
	numSub int
	// subRoot[j] is subtree j's root node (the cut edge's child) and
	// cutEid[j] the cut edge entering it; subtree indices ascend in DFS
	// pre-order of their roots. subOfNode maps every tree node to its
	// owning subtree, -1 for the core prefix.
	subRoot   []int32
	cutEid    []int32
	subOfNode []int32
	// prevRootMax[j] is subMax[subRoot[j]] as of the last rollup — the
	// comparison that detects deferred cut-edge work. Sequential level
	// changes that run straight through the cut edge re-sync it.
	prevRootMax []int32
	// rngs[j] is subtree j's private PCG stream.
	rngs []*rand.Rand

	// Per-subtree level-accounting partition: the session totals are the
	// sessState scalars plus these rows summed. Parallel-phase changes
	// land here (the owner's row, contention-free); sequential-phase
	// changes keep using the sessState scalars — each delta lands in
	// exactly one accumulator, so sums (and the piecewise-lazy level
	// integral) stay exact. Individual entries may go negative.
	mrow     int32 // row stride: Layers+1
	nAtLevel []int32
	sumLevel []int64
	levelInt []float64
	levelT   []float64

	// arrivals lists the subtrees the current packet reached, in DFS
	// (ascending) order — phase 2's work list and phase 3's merge order.
	arrivals []int32

	// Worker pool. workers is fixed by runSharded (never by the
	// schedule); goroutines are spawned lazily on the first parallel
	// round and stopped by runSharded after the run. stacks[w] is worker
	// w's reusable DFS stack (index 0 belongs to the engine goroutine).
	workers  int
	maxStack int
	layer    int32
	chunk    int64
	cursor   atomic.Int64
	wg       sync.WaitGroup
	wake     []chan struct{}
	stacks   [][]int32
	spawned  bool
}

// newTreePartition decides whether — and how — the engine's single
// session is decomposed, returning nil when subtree sharding does not
// apply. Eligibility is a pure function of the Config (never of Shards'
// value beyond being >= 1, and never of worker counts): the tree must
// carry no DropTail edge (queue state and delayed-delivery events are
// global), the run must have no leave-latency regime (linger windows
// couple edges across the frontier), and the frontier must yield at
// least two subtrees. Explicit Config.CutLinks are honored as given
// (nested cuts collapse into the outermost); the auto frontier
// additionally applies the quality guards above.
func newTreePartition(e *engine, s *sessState, seed uint64) *treePartition {
	if e.leaveLatency > 0 {
		return nil
	}
	for eid := range s.hot {
		if int8(s.hot[eid].meta&metaKindMask) == ekDropTail {
			return nil
		}
	}
	treeN := len(s.subMax)
	nR := len(s.levels)
	if treeN < 3 || nR == 0 {
		return nil // a single-edge tree has no interior to cut
	}
	// Subtree receiver counts by reverse pre-order accumulation (every
	// node's parent has a smaller pre-order id).
	counts := make([]int32, treeN)
	for nd := 0; nd < treeN; nd++ {
		counts[nd] = s.recvStart[nd+1] - s.recvStart[nd]
	}
	for nd := int32(treeN - 1); nd > 0; nd-- {
		counts[s.parent[nd]] += counts[nd]
	}
	explicit := len(e.cfg.CutLinks) > 0
	var isCut func(nd int32) bool
	if explicit {
		cut := make(map[int32]bool, len(e.cfg.CutLinks))
		for _, j := range e.cfg.CutLinks {
			cut[int32(j)] = true
		}
		isCut = func(nd int32) bool { return cut[s.hot[s.parentEdge[nd]].link] }
	} else {
		if nR < autoCutMinReceivers {
			return nil
		}
		c := int32(nR / autoCutTargetSubtrees)
		if c < 1 {
			c = 1
		}
		// Maximal nodes with at most c receivers below them: counts are
		// monotone down the tree, so "parent above the threshold" is
		// exactly "no ancestor is cut".
		isCut = func(nd int32) bool { return counts[nd] <= c && counts[s.parent[nd]] > c }
	}
	subOfNode := make([]int32, treeN)
	subOfNode[0] = -1
	var subRoot, cutEid []int32
	cutRecv := 0
	for nd := int32(1); nd < int32(treeN); nd++ {
		own := subOfNode[s.parent[nd]]
		if own < 0 && isCut(nd) {
			own = int32(len(subRoot))
			subRoot = append(subRoot, nd)
			cutEid = append(cutEid, s.parentEdge[nd])
			cutRecv += int(counts[nd])
		}
		subOfNode[nd] = own
	}
	numSub := len(subRoot)
	if numSub < 2 {
		return nil
	}
	if !explicit {
		if cutRecv*2 < nR || numSub*autoCutMinAvgReceivers > cutRecv {
			return nil
		}
	}
	// Node-count accumulation sizes the per-worker DFS stacks: a subtree
	// walk holds at most one entry per subtree-interior edge.
	sizes := make([]int32, treeN)
	for nd := range sizes {
		sizes[nd] = 1
	}
	for nd := int32(treeN - 1); nd > 0; nd-- {
		sizes[s.parent[nd]] += sizes[nd]
	}
	maxStack := 0
	for _, r := range subRoot {
		if n := int(sizes[r]) - 1; n > maxStack {
			maxStack = n
		}
	}
	for _, eid := range cutEid {
		s.hot[eid].meta |= metaCut
	}
	p := &treePartition{
		numSub:      numSub,
		subRoot:     subRoot,
		cutEid:      cutEid,
		subOfNode:   subOfNode,
		prevRootMax: make([]int32, numSub),
		rngs:        make([]*rand.Rand, numSub),
		mrow:        s.m + 1,
		nAtLevel:    make([]int32, numSub*int(s.m+1)),
		sumLevel:    make([]int64, numSub),
		levelInt:    make([]float64, numSub),
		levelT:      make([]float64, numSub),
		arrivals:    make([]int32, 0, numSub),
		workers:     1,
		maxStack:    maxStack,
	}
	for j, r := range subRoot {
		// Construction bring-up already ran through the full sequential
		// machinery; snapshot its outcome as the rollup baseline.
		p.prevRootMax[j] = s.subMax[r]
		sd := subtreeSeed(seed, j)
		p.rngs[j] = rand.New(rand.NewPCG(sd, sd^0x9e3779b97f4a7c15))
	}
	return p
}

// setWorkers fixes the fan-out width before the run (clamped to the
// subtree count; at most one goroutine per subtree is ever useful).
// Purely a throughput knob: output is identical for every value.
func (p *treePartition) setWorkers(w int) {
	if w > p.numSub {
		w = p.numSub
	}
	if w < 1 {
		w = 1
	}
	p.workers = w
}

// ensure lazily allocates the stacks and spawns the worker goroutines.
func (p *treePartition) ensure(e *engine, s *sessState) {
	p.spawned = true
	p.stacks = make([][]int32, p.workers)
	for w := range p.stacks {
		p.stacks[w] = make([]int32, 0, p.maxStack)
	}
	p.wake = make([]chan struct{}, p.workers)
	for w := 1; w < p.workers; w++ {
		ch := make(chan struct{}, 1)
		p.wake[w] = ch
		go func(w int, ch chan struct{}) {
			for range ch {
				p.drain(e, s, w)
				p.wg.Done()
			}
		}(w, ch)
	}
}

// stop terminates the worker goroutines (idempotent; safe when none
// were ever spawned).
func (p *treePartition) stop() {
	if !p.spawned {
		return
	}
	for w := 1; w < p.workers; w++ {
		close(p.wake[w])
	}
	p.spawned = false
}

// runPhase2 fans the current arrivals out to the workers and waits for
// the barrier. Small rounds run inline: waking workers costs more than
// a handful of subtree walks.
func (p *treePartition) runPhase2(e *engine, s *sessState, layer int32) {
	n := len(p.arrivals)
	if n == 0 {
		return
	}
	if !p.spawned {
		p.ensure(e, s)
	}
	if p.workers <= 1 || n < 2*p.workers {
		st := p.stacks[0]
		for _, j := range p.arrivals {
			st = e.walkSubtree(s, p, int(j), layer, st)
		}
		p.stacks[0] = st
		return
	}
	p.layer = layer
	chunk := int64(n / (4 * p.workers))
	if chunk < 1 {
		chunk = 1
	}
	p.chunk = chunk
	p.cursor.Store(0)
	p.wg.Add(p.workers - 1)
	for w := 1; w < p.workers; w++ {
		p.wake[w] <- struct{}{}
	}
	p.drain(e, s, 0)
	p.wg.Wait()
}

// drain is one worker's share of a phase-2 round: grab arrival chunks
// off the atomic cursor until the list is exhausted. The grab order is
// a race on purpose — subtrees are disjoint, so the schedule cannot
// influence any output.
func (p *treePartition) drain(e *engine, s *sessState, w int) {
	st := p.stacks[w]
	n := int64(len(p.arrivals))
	layer := p.layer
	for {
		i := p.cursor.Add(p.chunk) - p.chunk
		if i >= n {
			break
		}
		hi := i + p.chunk
		if hi > n {
			hi = n
		}
		for _, j := range p.arrivals[i:hi] {
			st = e.walkSubtree(s, p, int(j), layer, st)
		}
	}
	p.stacks[w] = st
}

// forwardSubtree is the decomposed transmission: core prefix, parallel
// fan-out, deterministic rollup. It replaces forward on partitioned
// engines (runShard routes here).
func (e *engine) forwardSubtree(s *sessState, layer int32) {
	e.forwardCore(s, layer)
	p := e.part
	p.runPhase2(e, s, layer)
	for _, j := range p.arrivals {
		e.rollupSubtree(s, int(j))
	}
}

// forwardCore walks the shared core prefix from the sender exactly like
// forward, except at cut edges: the crossing is counted and the
// admission outcome fixed here with the engine's stream (a drop
// congests the subtree's receivers immediately, through the full
// sequential machinery), and an admitted packet becomes an arrival —
// the descent into the subtree is deferred to phase 2. DropTail never
// occurs on partitioned trees, so no events are scheduled.
func (e *engine) forwardCore(s *sessState, layer int32) {
	p := e.part
	p.arrivals = p.arrivals[:0]
	countJoins := s.cfg.Protocol != protocol.Coordinated
	for x := s.recvStart[0]; x < s.recvStart[1]; x++ {
		k := s.recvList[x]
		if s.levels[k] > layer {
			s.received[k]++
			if countJoins {
				s.countdown[k]--
				if s.countdown[k] <= 0 {
					e.joinReceiver(s, int(k))
				}
			}
		}
	}
	st := e.fwdStack[:0]
	if s.wide[0] {
		for q := s.gt[layer] - 1; q >= 0; q-- {
			st = append(st, s.order[q])
		}
	} else {
		for ceid := s.edgeStart[1] - 1; ceid >= 0; ceid-- {
			if s.edgeSub[ceid] > layer {
				st = append(st, ceid)
			}
		}
	}
	for len(st) > 0 {
		eid := st[len(st)-1]
		st = st[:len(st)-1]
	descend:
		ed := &s.hot[eid]
		s.crossed[eid]++
		dropped := false
		switch int8(ed.meta & metaKindMask) {
		case ekAlways:
		case ekBernoulli:
			gap := s.lossGap[eid]
			if gap == 0 {
				// protocol.SampleGeometricInv, textually inlined (the
				// call costs ~2% on loss-heavy walks; the property
				// suite pins the equivalence draw for draw).
				u := e.rng.Float64()
				if u <= 0 {
					u = math.SmallestNonzeroFloat64
				}
				gap = int64(math.Log(u)*s.cold[eid].invLog) + 1
				if gap < 1 {
					gap = 1
				}
			}
			gap--
			s.lossGap[eid] = gap
			dropped = gap == 0
		case ekLayerLoss:
			ll := e.linkLayerLoss[ed.link]
			pr := ll[len(ll)-1]
			if int(layer) < len(ll) {
				pr = ll[layer]
			}
			dropped = pr > 0 && e.rng.Float64() < pr
		default: // ekCapacity; ekDropTail is excluded by partition eligibility
			cd := &e.capDem[ed.capIdx]
			d := cd.dem + cd.bg
			dropped = d > cd.cap && e.rng.Float64()*d < d-cd.cap
		}
		if ed.meta&metaCut != 0 {
			if dropped {
				s.cold[eid].drops++
				e.notifyLoss(s, layer, eid)
				continue
			}
			p.arrivals = append(p.arrivals, p.subOfNode[ed.gtOff>>s.rowShift])
			continue
		}
		if dropped {
			s.cold[eid].drops++
			e.notifyLoss(s, layer, eid)
			continue
		}
		for x := ed.recvLo; x < ed.recvHi; x++ {
			k := s.recvList[x]
			if s.levels[k] > layer {
				s.received[k]++
				if countJoins {
					s.countdown[k]--
					if s.countdown[k] <= 0 {
						e.joinReceiver(s, int(k))
					}
				}
			}
		}
		if ed.meta&metaWide != 0 {
			if cn := s.gt[ed.gtOff+layer]; cn > 0 {
				cb := ed.edgeLo
				for q := cn - 1; q >= 1; q-- {
					st = append(st, s.order[cb+q])
				}
				eid = s.order[cb]
				goto descend
			}
		} else {
			first := int32(-1)
			for ceid := ed.edgeHi - 1; ceid >= ed.edgeLo; ceid-- {
				if s.edgeSub[ceid] > layer {
					if first >= 0 {
						st = append(st, first)
					}
					first = ceid
				}
			}
			if first >= 0 {
				eid = first
				goto descend
			}
		}
	}
	e.fwdStack = st[:0]
}

// walkSubtree delivers one admitted packet through subtree j: the
// ordinary fused walk, starting with the delivery at the subtree root
// (the cut edge's crossing and admission already happened in the core
// phase), drawing only from the subtree's stream and mutating only
// subtree-owned state. Runs concurrently with walks of other subtrees.
func (e *engine) walkSubtree(s *sessState, p *treePartition, j int, layer int32, st []int32) []int32 {
	rng := p.rngs[j]
	node := p.subRoot[j]
	countJoins := s.cfg.Protocol != protocol.Coordinated
	for x := s.recvStart[node]; x < s.recvStart[node+1]; x++ {
		k := s.recvList[x]
		if s.levels[k] > layer {
			s.received[k]++
			if countJoins {
				s.countdown[k]--
				if s.countdown[k] <= 0 {
					e.joinReceiverSub(s, p, j, int(k), rng)
				}
			}
		}
	}
	st = st[:0]
	if s.wide[node] {
		base := s.edgeStart[node]
		for q := s.gt[(node<<s.rowShift)+layer] - 1; q >= 0; q-- {
			st = append(st, s.order[base+q])
		}
	} else {
		for ceid := s.edgeStart[node+1] - 1; ceid >= s.edgeStart[node]; ceid-- {
			if s.edgeSub[ceid] > layer {
				st = append(st, ceid)
			}
		}
	}
	for len(st) > 0 {
		eid := st[len(st)-1]
		st = st[:len(st)-1]
	descend:
		ed := &s.hot[eid]
		s.crossed[eid]++
		dropped := false
		switch int8(ed.meta & metaKindMask) {
		case ekAlways:
		case ekBernoulli:
			gap := s.lossGap[eid]
			if gap == 0 {
				// protocol.SampleGeometricInv, textually inlined, against
				// the subtree's stream.
				u := rng.Float64()
				if u <= 0 {
					u = math.SmallestNonzeroFloat64
				}
				gap = int64(math.Log(u)*s.cold[eid].invLog) + 1
				if gap < 1 {
					gap = 1
				}
			}
			gap--
			s.lossGap[eid] = gap
			dropped = gap == 0
		case ekLayerLoss:
			ll := e.linkLayerLoss[ed.link]
			pr := ll[len(ll)-1]
			if int(layer) < len(ll) {
				pr = ll[layer]
			}
			dropped = pr > 0 && rng.Float64() < pr
		default: // ekCapacity (subtree-owned demand row); ekDropTail excluded
			cd := &e.capDem[ed.capIdx]
			d := cd.dem + cd.bg
			dropped = d > cd.cap && rng.Float64()*d < d-cd.cap
		}
		if dropped {
			s.cold[eid].drops++
			// notifyLoss, bounded: an in-subtree edge's downstream
			// receivers all live in the subtree.
			for _, k := range s.downRecv[s.downStart[eid]:s.downStart[eid+1]] {
				if s.levels[k] > layer {
					e.congestReceiverSub(s, p, j, int(k), rng)
				}
			}
			continue
		}
		for x := ed.recvLo; x < ed.recvHi; x++ {
			k := s.recvList[x]
			if s.levels[k] > layer {
				s.received[k]++
				if countJoins {
					s.countdown[k]--
					if s.countdown[k] <= 0 {
						e.joinReceiverSub(s, p, j, int(k), rng)
					}
				}
			}
		}
		if ed.meta&metaWide != 0 {
			if cn := s.gt[ed.gtOff+layer]; cn > 0 {
				cb := ed.edgeLo
				for q := cn - 1; q >= 1; q-- {
					st = append(st, s.order[cb+q])
				}
				eid = s.order[cb]
				goto descend
			}
		} else {
			first := int32(-1)
			for ceid := ed.edgeHi - 1; ceid >= ed.edgeLo; ceid-- {
				if s.edgeSub[ceid] > layer {
					if first >= 0 {
						st = append(st, first)
					}
					first = ceid
				}
			}
			if first >= 0 {
				eid = first
				goto descend
			}
		}
	}
	return st[:0]
}

// levelChangeSub is applyLevelChange bounded to subtree j, for the
// parallel phase: accounting lands in the subtree's partition row, and
// propagation stops at the subtree root — the cut edge's bookkeeping is
// deferred to rollupSubtree. The sentinel capacity row is shared across
// subtrees, so (unlike the sequential path's blind branch-free write)
// the demand update skips non-Capacity edges.
func (e *engine) levelChangeSub(s *sessState, p *treePartition, j, k int, nl int32) {
	a := s.levels[k]
	if nl == a {
		return
	}
	p.levelInt[j] += float64(p.sumLevel[j]) * (e.now - p.levelT[j])
	p.levelT[j] = e.now
	p.sumLevel[j] += int64(nl - a)
	s.levels[k] = nl
	row := j * int(p.mrow)
	p.nAtLevel[row+int(a)]--
	p.nAtLevel[row+int(nl)]++
	nd := s.recvNode[k]
	b := nl
	root := p.subRoot[j]
	for {
		om := s.subMax[nd]
		var nm int32
		if s.solo[nd] {
			nm = b
		} else {
			crow := nd << s.rowShift
			if a > 0 {
				s.lvlCnt[crow+a]--
			}
			if b > 0 {
				s.lvlCnt[crow+b]++
			}
			nm = om
			if b > om {
				nm = b
			} else if a == om && s.lvlCnt[crow+om] == 0 {
				for nm--; nm > 0 && s.lvlCnt[crow+nm] == 0; nm-- {
				}
			}
		}
		if nm == om {
			return
		}
		s.subMax[nd] = nm
		if nd == root {
			return // cut-edge bookkeeping is rollupSubtree's
		}
		eid := s.parentEdge[nd]
		s.fluidInt[eid] += s.cum[om] * (e.now - s.fluidT[eid])
		s.fluidT[eid] = e.now
		s.edgeSub[eid] = nm
		if e.trackDemand {
			if ci := s.hot[eid].capIdx; ci != e.capSentinel {
				e.capDem[ci].dem += s.cum[nm] - s.cum[om]
			}
		}
		pnd := s.parent[nd]
		if s.wide[pnd] {
			s.reorder(eid, pnd, om, nm)
		}
		a, b = om, nm
		nd = pnd
	}
}

// armReceiverSub is armReceiver against the subtree's stream.
func (e *engine) armReceiverSub(s *sessState, k int, lv int32, rng *rand.Rand) {
	switch s.cfg.Protocol {
	case protocol.Deterministic:
		s.countdown[k] = int64(protocol.JoinThreshold(int(lv)))
	case protocol.Uncoordinated:
		s.countdown[k] = int64(protocol.SampleGeometric(rng, 1/float64(protocol.JoinThreshold(int(lv)))))
	case protocol.Coordinated:
		s.clean[k] = true
	}
}

// joinReceiverSub is joinReceiver bounded to subtree j.
func (e *engine) joinReceiverSub(s *sessState, p *treePartition, j, k int, rng *rand.Rand) {
	lv := s.levels[k]
	if lv < s.m {
		lv++
		e.levelChangeSub(s, p, j, k, lv)
	}
	e.armReceiverSub(s, k, lv, rng)
}

// congestReceiverSub is congestReceiver bounded to subtree j.
func (e *engine) congestReceiverSub(s *sessState, p *treePartition, j, k int, rng *rand.Rand) {
	lv := s.levels[k]
	if lv > 1 {
		lv--
		e.levelChangeSub(s, p, j, k, lv)
	}
	s.clean[k] = false
	switch s.cfg.Protocol {
	case protocol.Deterministic:
		s.countdown[k] = int64(protocol.JoinThreshold(int(lv)))
	case protocol.Uncoordinated:
		s.countdown[k] = int64(protocol.SampleGeometric(rng, 1/float64(protocol.JoinThreshold(int(lv)))))
	}
}

// rollupSubtree performs subtree j's deferred cut-edge work after a
// fan-out round: if the root's maximum moved, advance the cut edge's
// fluid integral, publish the new edgeSub, apply the (telescoped, exact)
// capacity-demand delta, re-bucket the cut edge in its core parent, and
// propagate the contribution change up the core — precisely what the
// sequential walk would have done at the cut edge, just batched.
func (e *engine) rollupSubtree(s *sessState, j int) {
	p := e.part
	root := p.subRoot[j]
	nm := s.subMax[root]
	om := p.prevRootMax[j]
	if nm == om {
		return
	}
	p.prevRootMax[j] = nm
	eid := p.cutEid[j]
	s.fluidInt[eid] += s.cum[om] * (e.now - s.fluidT[eid])
	s.fluidT[eid] = e.now
	s.edgeSub[eid] = nm
	if e.trackDemand {
		e.capDem[s.hot[eid].capIdx].dem += s.cum[nm] - s.cum[om]
	}
	pnd := s.parent[root]
	if s.wide[pnd] {
		s.reorder(eid, pnd, om, nm)
	}
	e.propagateFrom(s, pnd, om, nm)
}

// sessionLevelIntegral is the session's level integral at time now:
// the sessState scalars plus, on partitioned engines, the per-subtree
// accumulators (each lazily advanced to now).
func (e *engine) sessionLevelIntegral(s *sessState, now float64) float64 {
	li := s.levelInt + float64(s.sumLevel)*(now-s.levelT)
	if p := e.part; p != nil {
		for j := range p.sumLevel {
			li += p.levelInt[j] + float64(p.sumLevel[j])*(now-p.levelT[j])
		}
	}
	return li
}

// levelPopulated reports whether any receiver of s currently sits at
// level v: the sessState count plus the partition rows. Individual
// accumulators may be negative; only the sum is meaningful.
func (e *engine) levelPopulated(s *sessState, v int32) bool {
	n := s.nAtLevel[v]
	if p := e.part; p != nil {
		stride := int(p.mrow)
		for j := 0; j < p.numSub; j++ {
			n += p.nAtLevel[j*stride+int(v)]
		}
	}
	return n > 0
}
