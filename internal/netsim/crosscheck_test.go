package netsim

import (
	"math"
	"testing"

	"mlfair/internal/capsim"
	"mlfair/internal/protocol"
	"mlfair/internal/sim"
	"mlfair/internal/stats"
	"mlfair/internal/treesim"
)

// close95 reports whether two Monte-Carlo estimates agree within a
// relative slack plus both confidence half-widths.
//
// Tolerance rationale: the two estimators simulate the same process
// with different RNG streams, so the difference of means is centered at
// the (small) modeling discrepancy between the engines and scattered
// with standard error ~ sqrt(se_a^2 + se_b^2) < CI95_a + CI95_b. The
// CI terms shrink as 1/sqrt(replications); the rel term is the
// allowance for genuine modeling differences (instant-feedback
// idealization vs. per-packet accounting) and is what the replication
// count cannot shrink. With the rewritten engine ~5x faster, the
// replication counts below are 32 instead of the original 12, so the
// CI terms are ~1.6x tighter and the rel slacks are cut roughly in
// half versus the pre-rewrite suite — any systematic divergence the
// old tolerances would have absorbed now fails.
func close95(a, b stats.Summary, rel float64) bool {
	return math.Abs(a.Mean-b.Mean) <= rel*math.Abs(a.Mean)+a.CI95+b.CI95
}

// TestStarCrossCheckSim: the general engine reproduces sim's session
// redundancy on the modified star for all three protocols, within
// Monte-Carlo tolerance — positioning sim as a special case of netsim.
func TestStarCrossCheckSim(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo cross-check")
	}
	for _, kind := range protocol.Kinds() {
		simCfg := sim.Config{
			Layers: 8, Receivers: 50, SharedLoss: 0.0001, IndependentLoss: 0.04,
			Protocol: kind, Packets: 50000, Seed: 7,
		}
		const reps = 32 // see close95: 32 reps halve the old 12-rep slack
		reds, err := sim.RunReplicated(simCfg, reps)
		if err != nil {
			t.Fatal(err)
		}
		simS := stats.Summarize(reds)

		cfg, err := FromSim(simCfg)
		if err != nil {
			t.Fatal(err)
		}
		sums, err := SummarizeReplications(cfg, reps, 0, LinkRedundancyMetric(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		netS := sums[0]
		if !close95(simS, netS, 0.03) {
			t.Errorf("%v: sim redundancy %v vs netsim %v", kind, simS, netS)
		}
	}
}

// TestTreeCrossCheckTreesim: per-link Definition 3 redundancy matches
// treesim on a 2-level binary tree, link by link.
func TestTreeCrossCheckTreesim(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo cross-check")
	}
	tr := treesim.Binary(2, 0.03)
	const reps, packets = 32, 50000 // see close95 for the tolerance rationale
	nodes := len(tr.Parent)
	accT := make([]stats.Accumulator, nodes)
	accN := make([]stats.Accumulator, nodes)
	for rep := 0; rep < reps; rep++ {
		tres, err := treesim.Run(treesim.Config{
			Tree: tr, Layers: 8, Protocol: protocol.Deterministic,
			Packets: packets, Seed: 100 + uint64(rep),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, ls := range tres.Links {
			accT[ls.Node].Add(ls.Redundancy)
		}
		cfg, err := FromTree(tr, SessionConfig{Protocol: protocol.Deterministic, Layers: 8},
			packets, ReplicationSeed(55, rep))
		if err != nil {
			t.Fatal(err)
		}
		nres, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, ls := range nres.Links {
			accN[NodeForLink(ls.Link)].Add(ls.Redundancy)
		}
	}
	sum := func(a stats.Accumulator) stats.Summary {
		return stats.Summary{Mean: a.Mean(), CI95: a.CI95(), N: a.N()}
	}
	for nd := 1; nd < nodes; nd++ {
		ts, ns := sum(accT[nd]), sum(accN[nd])
		if ts.N == 0 {
			continue
		}
		if !close95(ts, ns, 0.02) {
			t.Errorf("node %d: treesim redundancy %v vs netsim %v", nd, ts, ns)
		}
	}
	// The headline tree effect must survive the translation: redundancy
	// grows toward the root, where more receivers share the link.
	if accN[1].Mean() <= accN[3].Mean() {
		t.Errorf("root-link redundancy %v not above leaf-link %v", accN[1].Mean(), accN[3].Mean())
	}
}

// TestCapacityCrossCheckCapsim: the capacity-coupled link model
// reproduces capsim's closed-loop receiver rates on a two-session star.
func TestCapacityCrossCheckCapsim(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo cross-check")
	}
	cc := capsim.Config{
		SharedCapacity: 24, Packets: 50000,
		Sessions: []capsim.SessionConfig{
			{Protocol: protocol.Coordinated, Layers: 8, FanoutCapacities: []float64{2, 8, 64}},
			{Protocol: protocol.Coordinated, Layers: 8, FanoutCapacities: []float64{64}},
		},
	}
	type rid struct{ i, k int }
	rids := []rid{{0, 0}, {0, 1}, {0, 2}, {1, 0}}
	const reps = 32 // see close95 for the tolerance rationale
	accC := make([]stats.Accumulator, len(rids))
	accN := make([]stats.Accumulator, len(rids))
	for rep := 0; rep < reps; rep++ {
		c := cc
		c.Seed = 1000 + uint64(rep)
		r, err := capsim.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		nc, err := FromCapsim(c)
		if err != nil {
			t.Fatal(err)
		}
		nr, err := Run(nc)
		if err != nil {
			t.Fatal(err)
		}
		for x, id := range rids {
			accC[x].Add(r.ReceiverRates[id.i][id.k])
			accN[x].Add(nr.ReceiverRates[id.i][id.k])
		}
	}
	for x, id := range rids {
		cs := stats.Summary{Mean: accC[x].Mean(), CI95: accC[x].CI95(), N: accC[x].N()}
		ns := stats.Summary{Mean: accN[x].Mean(), CI95: accN[x].CI95(), N: accN[x].N()}
		if !close95(cs, ns, 0.05) {
			t.Errorf("r%d,%d: capsim rate %v vs netsim %v", id.i+1, id.k+1, cs, ns)
		}
	}
}
