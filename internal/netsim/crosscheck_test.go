package netsim

import (
	"math"
	"testing"

	"mlfair/internal/capsim"
	"mlfair/internal/protocol"
	"mlfair/internal/sim"
	"mlfair/internal/stats"
	"mlfair/internal/treesim"
)

// close95 reports whether two Monte-Carlo estimates agree within a
// relative slack plus both confidence half-widths.
func close95(a, b stats.Summary, rel float64) bool {
	return math.Abs(a.Mean-b.Mean) <= rel*math.Abs(a.Mean)+a.CI95+b.CI95
}

// TestStarCrossCheckSim: the general engine reproduces sim's session
// redundancy on the modified star for all three protocols, within
// Monte-Carlo tolerance — positioning sim as a special case of netsim.
func TestStarCrossCheckSim(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo cross-check")
	}
	for _, kind := range protocol.Kinds() {
		simCfg := sim.Config{
			Layers: 8, Receivers: 50, SharedLoss: 0.0001, IndependentLoss: 0.04,
			Protocol: kind, Packets: 50000, Seed: 7,
		}
		reds, err := sim.RunReplicated(simCfg, 12)
		if err != nil {
			t.Fatal(err)
		}
		simS := stats.Summarize(reds)

		cfg, err := FromSim(simCfg)
		if err != nil {
			t.Fatal(err)
		}
		results, err := RunReplications(cfg, 12, 0)
		if err != nil {
			t.Fatal(err)
		}
		netS := Summarize(results, LinkRedundancyMetric(0, 0))
		if !close95(simS, netS, 0.06) {
			t.Errorf("%v: sim redundancy %v vs netsim %v", kind, simS, netS)
		}
	}
}

// TestTreeCrossCheckTreesim: per-link Definition 3 redundancy matches
// treesim on a 2-level binary tree, link by link.
func TestTreeCrossCheckTreesim(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo cross-check")
	}
	tr := treesim.Binary(2, 0.03)
	const reps, packets = 12, 50000
	nodes := len(tr.Parent)
	accT := make([]stats.Accumulator, nodes)
	accN := make([]stats.Accumulator, nodes)
	for rep := 0; rep < reps; rep++ {
		tres, err := treesim.Run(treesim.Config{
			Tree: tr, Layers: 8, Protocol: protocol.Deterministic,
			Packets: packets, Seed: 100 + uint64(rep),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, ls := range tres.Links {
			accT[ls.Node].Add(ls.Redundancy)
		}
		cfg, err := FromTree(tr, SessionConfig{Protocol: protocol.Deterministic, Layers: 8},
			packets, ReplicationSeed(55, rep))
		if err != nil {
			t.Fatal(err)
		}
		nres, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, ls := range nres.Links {
			accN[NodeForLink(ls.Link)].Add(ls.Redundancy)
		}
	}
	sum := func(a stats.Accumulator) stats.Summary {
		return stats.Summary{Mean: a.Mean(), CI95: a.CI95(), N: a.N()}
	}
	for nd := 1; nd < nodes; nd++ {
		ts, ns := sum(accT[nd]), sum(accN[nd])
		if ts.N == 0 {
			continue
		}
		if !close95(ts, ns, 0.03) {
			t.Errorf("node %d: treesim redundancy %v vs netsim %v", nd, ts, ns)
		}
	}
	// The headline tree effect must survive the translation: redundancy
	// grows toward the root, where more receivers share the link.
	if accN[1].Mean() <= accN[3].Mean() {
		t.Errorf("root-link redundancy %v not above leaf-link %v", accN[1].Mean(), accN[3].Mean())
	}
}

// TestCapacityCrossCheckCapsim: the capacity-coupled link model
// reproduces capsim's closed-loop receiver rates on a two-session star.
func TestCapacityCrossCheckCapsim(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo cross-check")
	}
	cc := capsim.Config{
		SharedCapacity: 24, Packets: 50000,
		Sessions: []capsim.SessionConfig{
			{Protocol: protocol.Coordinated, Layers: 8, FanoutCapacities: []float64{2, 8, 64}},
			{Protocol: protocol.Coordinated, Layers: 8, FanoutCapacities: []float64{64}},
		},
	}
	type rid struct{ i, k int }
	rids := []rid{{0, 0}, {0, 1}, {0, 2}, {1, 0}}
	const reps = 12
	accC := make([]stats.Accumulator, len(rids))
	accN := make([]stats.Accumulator, len(rids))
	for rep := 0; rep < reps; rep++ {
		c := cc
		c.Seed = 1000 + uint64(rep)
		r, err := capsim.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		nc, err := FromCapsim(c)
		if err != nil {
			t.Fatal(err)
		}
		nr, err := Run(nc)
		if err != nil {
			t.Fatal(err)
		}
		for x, id := range rids {
			accC[x].Add(r.ReceiverRates[id.i][id.k])
			accN[x].Add(nr.ReceiverRates[id.i][id.k])
		}
	}
	for x, id := range rids {
		cs := stats.Summary{Mean: accC[x].Mean(), CI95: accC[x].CI95(), N: accC[x].N()}
		ns := stats.Summary{Mean: accN[x].Mean(), CI95: accN[x].CI95(), N: accN[x].N()}
		if !close95(cs, ns, 0.08) {
			t.Errorf("r%d,%d: capsim rate %v vs netsim %v", id.i+1, id.k+1, cs, ns)
		}
	}
}
