package netsim

import (
	"math"
	"math/rand/v2"
	"testing"

	"mlfair/internal/protocol"
	"mlfair/internal/topology"
)

// TestBatchedLossMatchesBernoulliLaw pins the engine's geometric-gap
// loss thinning (lossGap counters refilled by the inlined
// protocol.SampleGeometricInv) to the per-edge Bernoulli law it
// amortizes: on every Bernoulli edge, each crossing must behave as an
// independent Loss-probability coin, so a link's observed drops are
// Binomial(Crossed, Loss). The test runs committed seeds through a
// lossy star and bounds each link's drop-rate z-score, plus the
// all-link aggregate (which would expose a systematic bias an
// individual link's noise could hide), at 5 sigma — deterministic for
// the committed seeds, and far beyond what an off-by-one gap, a
// missing refill, or a draw-order slip produces.
//
// The sampler itself is chi-square/KS-tested against the geometric law
// in internal/protocol; this test closes the loop through the engine's
// walk, where the counters are decremented and consumed.
func TestBatchedLossMatchesBernoulliLaw(t *testing.T) {
	const shared, fanout = 0.03, 0.08
	for _, seed := range []uint64{3, 19, 77} {
		cfg := starCfg(t, 24, shared, fanout, protocol.Uncoordinated, 120000, seed)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		totDev, totVar := 0.0, 0.0
		checked := 0
		for _, ls := range res.Links {
			p := fanout
			if ls.Link == 0 {
				p = shared
			}
			n := float64(ls.Crossed)
			if n < 2000 {
				continue // too little traffic for a tight bound
			}
			dev := float64(ls.Dropped) - n*p
			sigma := math.Sqrt(n * p * (1 - p))
			if z := math.Abs(dev) / sigma; z > 5 {
				t.Errorf("seed %d link %d: %d drops over %d crossings (p=%v), z=%.1f",
					seed, ls.Link, ls.Dropped, ls.Crossed, p, z)
			}
			totDev += dev
			totVar += n * p * (1 - p)
			checked++
		}
		if checked < 10 {
			t.Fatalf("seed %d: only %d links carried enough traffic", seed, checked)
		}
		if z := math.Abs(totDev) / math.Sqrt(totVar); z > 5 {
			t.Errorf("seed %d: aggregate drop deviation z=%.1f across %d links",
				seed, z, checked)
		}
	}
}

// TestBatchedLossBernoulliLawIrregular repeats the Bernoulli-law check
// on random scale-free graphs — the irregular, hub-dominated shape the
// specialized walks were built for, where wide counting-sorted hubs
// and narrow scanned chains mix on one path and sessions overlap on
// high-betweenness links. Per-link traffic is thinner than the star's,
// so only the aggregate z-score is bounded (links are independent
// Bernoulli processes, so deviations sum in variance).
func TestBatchedLossBernoulliLawIrregular(t *testing.T) {
	const p = 0.05
	for _, seed := range []uint64{5, 23} {
		opts := topology.DefaultScaleFreeOptions()
		opts.Sessions = 8
		net, err := topology.ScaleFree(rand.New(rand.NewPCG(seed, seed)), opts)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Network:  net,
			Links:    make([]LinkSpec, net.NumLinks()),
			Sessions: make([]SessionConfig, net.NumSessions()),
			Packets:  80000,
			Seed:     seed,
		}
		for j := range cfg.Links {
			cfg.Links[j] = LinkSpec{Kind: Bernoulli, Loss: p}
		}
		kinds := protocol.Kinds()
		for i := range cfg.Sessions {
			cfg.Sessions[i] = SessionConfig{Protocol: kinds[i%len(kinds)], Layers: 6}
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		totDev, totVar, crossings := 0.0, 0.0, 0
		for _, ls := range res.Links {
			n := float64(ls.Crossed)
			if n == 0 {
				continue
			}
			totDev += float64(ls.Dropped) - n*p
			totVar += n * p * (1 - p)
			crossings += ls.Crossed
		}
		if crossings < 50000 {
			t.Fatalf("seed %d: only %d crossings", seed, crossings)
		}
		if z := math.Abs(totDev) / math.Sqrt(totVar); z > 5 {
			t.Errorf("seed %d: aggregate drop deviation z=%.1f over %d crossings",
				seed, z, crossings)
		}
	}
}
