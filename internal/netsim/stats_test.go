package netsim

import (
	"reflect"
	"testing"

	"mlfair/internal/obs"
	"mlfair/internal/protocol"
)

// TestStatsDoNotPerturbDynamics: enabling the stats sink changes no
// Result field — instrumentation is pure measurement, like probing.
func TestStatsDoNotPerturbDynamics(t *testing.T) {
	base := probeStarConfig(t, 20000)
	base.Churn = []ChurnEvent{
		{Time: 30, Session: 0, Receiver: 2, Join: false},
		{Time: 90, Session: 0, Receiver: 2, Join: true},
	}
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Stats = &EngineStats{}
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stats sink perturbed the run:\n got %+v\nwant %+v", got, want)
	}
}

// TestStatsMatchResult: the flushed counters agree with the Result's
// own cumulative accounting.
func TestStatsMatchResult(t *testing.T) {
	cfg := probeStarConfig(t, 20000)
	cfg.Churn = []ChurnEvent{{Time: 25, Session: 0, Receiver: 1, Join: false}}
	cfg.Probe = &ProbeConfig{PacketWindow: 128, MaxSamples: 32}
	st := &EngineStats{}
	cfg.Stats = st
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs.Load() != 1 {
		t.Fatalf("runs = %d", st.Runs.Load())
	}
	if st.Transmissions.Load() != int64(res.PacketsSent) {
		t.Fatalf("transmissions = %d, packets sent = %d", st.Transmissions.Load(), res.PacketsSent)
	}
	if st.Events.Load() != res.Events {
		t.Fatalf("events = %d, result events = %d", st.Events.Load(), res.Events)
	}
	var delivered, crossed, dropped int64
	for i := range res.ReceiverPackets {
		for _, n := range res.ReceiverPackets[i] {
			delivered += int64(n)
		}
	}
	for _, ls := range res.Links {
		crossed += int64(ls.Crossed)
		dropped += int64(ls.Dropped)
	}
	if st.Deliveries.Load() != delivered {
		t.Fatalf("deliveries = %d, want %d", st.Deliveries.Load(), delivered)
	}
	if st.Crossings.Load() != crossed {
		t.Fatalf("crossings = %d, want %d", st.Crossings.Load(), crossed)
	}
	if st.Drops.Load() != dropped {
		t.Fatalf("drops = %d, want %d", st.Drops.Load(), dropped)
	}
	if st.ChurnEvents.Load() != 1 {
		t.Fatalf("churn events = %d", st.ChurnEvents.Load())
	}
	if st.VirtualTime.Load() != res.Duration {
		t.Fatalf("virtual time = %v, duration = %v", st.VirtualTime.Load(), res.Duration)
	}
	wantWindows := int64(res.Probe.NumSamples() + res.Probe.Dropped)
	if st.ProbeWindows.Load() != wantWindows {
		t.Fatalf("probe windows = %d, want %d", st.ProbeWindows.Load(), wantWindows)
	}
	if st.ProbeDropped.Load() != int64(res.Probe.Dropped) {
		t.Fatalf("probe dropped = %d, want %d", st.ProbeDropped.Load(), res.Probe.Dropped)
	}
	if st.CalendarTicks.Load() < 1 || st.CalendarTicks.Load() > st.Transmissions.Load() {
		t.Fatalf("calendar ticks = %d (transmissions %d)", st.CalendarTicks.Load(), st.Transmissions.Load())
	}
}

// TestStatsSharedAcrossReplications: one sink fed by the parallel
// runner accumulates exactly the per-replication sums (atomic
// instruments make the sharing race-free; run under -race in CI).
func TestStatsSharedAcrossReplications(t *testing.T) {
	cfg := probeStarConfig(t, 8000)
	st := &EngineStats{}
	cfg.Stats = st
	const n = 8
	var events int64
	var virtual float64
	err := StreamReplications(cfg, n, 4, func(_ int, r *Result) error {
		events += r.Events
		virtual += r.Duration
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs.Load() != n {
		t.Fatalf("runs = %d, want %d", st.Runs.Load(), n)
	}
	if st.Events.Load() != events {
		t.Fatalf("events = %d, want %d", st.Events.Load(), events)
	}
	if st.VirtualTime.Load() != virtual {
		t.Fatalf("virtual time = %v, want %v", st.VirtualTime.Load(), virtual)
	}
}

// TestStatsHeapHighWater: DropTail delay queues schedule delivery
// events, so the high-water mark must be positive there and zero on a
// pure loss star under the Deterministic protocol (no scheduled
// events at all).
func TestStatsHeapHighWater(t *testing.T) {
	cfg := probeStarConfig(t, 5000)
	st := &EngineStats{}
	cfg.Stats = st
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if hw := st.HeapHighWater.Load(); hw != 0 {
		t.Fatalf("loss-only deterministic star heap high-water = %d, want 0", hw)
	}

	dt, err := Star(8, 0, 0, SessionConfig{Protocol: protocol.Deterministic, Layers: 4}, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for j := range dt.Links {
		dt.Links[j] = LinkSpec{Kind: DropTail, Capacity: 100, Buffer: 16, Delay: 0.5}
	}
	st2 := &EngineStats{}
	dt.Stats = st2
	if _, err := Run(dt); err != nil {
		t.Fatal(err)
	}
	if st2.HeapHighWater.Load() < 1 {
		t.Fatalf("droptail heap high-water = %d, want >= 1", st2.HeapHighWater.Load())
	}
	if st2.ForwardEvents.Load() < 1 {
		t.Fatal("droptail run popped no delayed deliveries")
	}
}

// TestStatsRegister: the full stat set registers cleanly and exposes
// through the registry.
func TestStatsRegister(t *testing.T) {
	st := &EngineStats{}
	reg := obs.NewRegistry()
	st.MustRegister(reg)
	snap := reg.Snapshot(nil)
	if len(snap.Metrics) != 14 {
		t.Fatalf("registered %d metrics", len(snap.Metrics))
	}
	for _, m := range snap.Metrics {
		if m.Kind == "" || m.Name == "" {
			t.Fatalf("malformed metric snapshot %+v", m)
		}
	}
}
