package netsim

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"mlfair/internal/netmodel"
	"mlfair/internal/protocol"
	"mlfair/internal/routing"
)

// disjointCfg builds a config with three link-disjoint star sessions —
// three independent shard groups — covering the three protocols and
// three link models (Bernoulli, Capacity, DropTail shared links), plus
// churn on session 1. Receivers: n per session.
func disjointCfg(t *testing.T, n, packets int, seed uint64) Config {
	t.Helper()
	g := netmodel.NewGraph(3 * (2 + n))
	sessions := make([]*netmodel.Session, 3)
	var specs []LinkSpec
	shared := []LinkSpec{
		{Kind: Bernoulli, Loss: 0.02},
		{Kind: Capacity, Capacity: 24},
		{Kind: DropTail, Capacity: 32, Buffer: 8, Delay: 0.01},
	}
	kinds := protocol.Kinds()
	for i := 0; i < 3; i++ {
		base := i * (2 + n)
		sender, hub := base, base+1
		g.AddLink(sender, hub, 1)
		specs = append(specs, shared[i])
		receivers := make([]int, n)
		for k := 0; k < n; k++ {
			g.AddLink(hub, base+2+k, 1)
			specs = append(specs, LinkSpec{Kind: Bernoulli, Loss: 0.04})
			receivers[k] = base + 2 + k
		}
		sessions[i] = &netmodel.Session{Sender: sender, Receivers: receivers,
			Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	}
	net, err := routing.BuildNetwork(g, sessions)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Network: net,
		Links:   specs,
		Sessions: []SessionConfig{
			{Protocol: kinds[0], Layers: 8},
			{Protocol: kinds[1], Layers: 6},
			{Protocol: kinds[2], Layers: 8},
		},
		Packets: packets,
		Seed:    seed,
	}
	cfg.Churn = []ChurnEvent{
		{Time: 2, Session: 1, Receiver: 0, Join: false},
		{Time: 5, Session: 1, Receiver: 0, Join: true},
		{Time: 3, Session: 1, Receiver: n - 1, Join: false},
	}
	return cfg
}

// TestShardCountInvariance is the sharding contract's property test:
// on a multi-group topology, every Shards >= 1 yields the identical
// Result — the shard count tunes parallelism, never output. The config
// spans all three protocols, Bernoulli/Capacity/DropTail links, and
// churn, so every event family crosses the per-group engines.
func TestShardCountInvariance(t *testing.T) {
	cfg := disjointCfg(t, 12, 30000, 11)
	cfg.Shards = 1
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.PacketsSent == 0 || want.Events == 0 {
		t.Fatalf("degenerate reference run: %+v", want)
	}
	for shards := 2; shards <= 5; shards++ {
		cfg.Shards = shards
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Shards=%d diverged from Shards=1", shards)
		}
	}
}

// TestShardInvarianceAcrossSeeds re-runs the invariance check over
// several seeds so a lucky event ordering can't hide a merge bug.
func TestShardInvarianceAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := disjointCfg(t, 6, 12000, seed)
		cfg.Shards = 1
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Shards = 4
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: Shards=4 diverged from Shards=1", seed)
		}
	}
}

// TestSingleGroupShardedMatchesSequential: when the whole topology is
// one link-connectivity component (a shared backbone couples every
// session), the sharded path runs the one group with the base seed and
// must reproduce the sequential engine's Result exactly — the sharded
// runner costs nothing in reproducibility when there is nothing to
// shard.
func TestSingleGroupShardedMatchesSequential(t *testing.T) {
	cfg, _, err := Mesh(3, 5, LinkSpec{Kind: Capacity, Capacity: 24}, 0.01,
		SessionConfig{Protocol: protocol.Coordinated, Layers: 8}, 30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		cfg.Shards = shards
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, seq) {
			t.Fatalf("single-group Shards=%d diverged from the sequential engine", shards)
		}
	}
}

// TestShardedStatsMerge: a sharded run flushes EngineStats once — one
// Runs increment, counters summed across groups, and the events total
// agreeing with Result.Events.
func TestShardedStatsMerge(t *testing.T) {
	cfg := disjointCfg(t, 8, 15000, 3)
	cfg.Shards = 3
	cfg.Stats = &EngineStats{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Stats.Runs.Load(); got != 1 {
		t.Fatalf("Runs = %d, want 1", got)
	}
	if got := cfg.Stats.Events.Load(); got != res.Events {
		t.Fatalf("stats events %d != result events %d", got, res.Events)
	}
	if cfg.Stats.VirtualTime.Load() != res.Duration {
		t.Fatalf("virtual time %v != duration %v", cfg.Stats.VirtualTime.Load(), res.Duration)
	}
}

// TestShardedProbeMatchesSequential: on a single-component topology
// (one shard group, base seed) a probed sharded run must reproduce the
// sequential probed Result byte-for-byte — ProbeSeries included. This
// is the satellite contract for lifting the old probe + Shards
// rejection: probing stays pure measurement in sharded mode too.
func TestShardedProbeMatchesSequential(t *testing.T) {
	cfg, _, err := Mesh(3, 5, LinkSpec{Kind: Capacity, Capacity: 24}, 0.01,
		SessionConfig{Protocol: protocol.Coordinated, Layers: 8}, 30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []*ProbeConfig{
		{Window: 8, MaxSamples: 32},
		{PacketWindow: 1000},
	} {
		cfg.Probe = probe
		cfg.Shards = 0
		seq, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Probe == nil || seq.Probe.NumSamples() == 0 {
			t.Fatal("no probe samples in the sequential reference")
		}
		for _, shards := range []int{1, 3} {
			cfg.Shards = shards
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, seq) {
				t.Fatalf("probed single-group Shards=%d diverged from sequential (%+v)", shards, probe)
			}
		}
	}
}

// TestShardedProbeMultiGroup: with several shard groups, time-window
// probes merge into one global ProbeSeries — invariant in the shard
// count, window grid aligned across groups, and the windowed deltas
// summing back to the Result's cumulative counters.
func TestShardedProbeMultiGroup(t *testing.T) {
	cfg := disjointCfg(t, 8, 15000, 5)
	cfg.Probe = &ProbeConfig{Window: 10, MaxSamples: 256}
	cfg.Shards = 1
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps := want.Probe
	if ps == nil || ps.NumSamples() < 2 || ps.Dropped != 0 {
		t.Fatalf("probe series: %+v", ps)
	}
	for shards := 2; shards <= 4; shards++ {
		cfg.Shards = shards
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("probed Shards=%d diverged from Shards=1", shards)
		}
	}
	// The windows partition the run: start[0] = 0, contiguous
	// boundaries, final close at Duration.
	n := ps.NumSamples()
	if ps.Starts[0] != 0 || ps.Times[n-1] != want.Duration {
		t.Fatalf("window grid [%v, %v] does not span [0, %v]", ps.Starts[0], ps.Times[n-1], want.Duration)
	}
	for s := 1; s < n; s++ {
		if ps.Starts[s] != ps.Times[s-1] {
			t.Fatalf("sample %d start %v != previous close %v", s, ps.Starts[s], ps.Times[s-1])
		}
	}
	// Deliveries summed over windows equal the cumulative counters.
	for i := range want.ReceiverPackets {
		for k, totPkts := range want.ReceiverPackets[i] {
			sum := 0
			for s := 0; s < n; s++ {
				sum += ps.ReceiverDelivered(i, k, s)
			}
			if sum != totPkts {
				t.Fatalf("receiver (%d,%d): windows sum to %d, result says %d", i, k, sum, totPkts)
			}
		}
	}
	// Link crossings likewise (all sessions fold into one per-link sum).
	crossed := make(map[int]int)
	for _, ls := range want.Links {
		crossed[ls.Link] += ls.Crossed
	}
	for j := 0; j < ps.NumLinks(); j++ {
		sum := 0
		for s := 0; s < n; s++ {
			sum += ps.LinkCrossed(j, s)
		}
		if sum != crossed[j] {
			t.Fatalf("link %d: windows sum to %d, result says %d", j, sum, crossed[j])
		}
	}
}

// TestShardsRejectMultiGroupPacketProbe: packet-window boundaries count
// transmissions across all sessions in one global order, which no group
// engine can see — multi-group packet probing is a clear error, while
// the same probe on a single-component topology is accepted.
func TestShardsRejectMultiGroupPacketProbe(t *testing.T) {
	cfg := disjointCfg(t, 4, 1000, 1)
	cfg.Shards = 2
	cfg.Probe = &ProbeConfig{PacketWindow: 64}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "packet-window probing") {
		t.Fatalf("multi-group packet-window probe accepted: %v", err)
	}
}

// TestSessionGroupsOf pins the grouping itself: disjoint stars get one
// group per session, a shared backbone collapses everything to one.
func TestSessionGroupsOf(t *testing.T) {
	cfg := disjointCfg(t, 4, 1000, 1)
	groupOf, n := sessionGroupsOf(cfg)
	if n != 3 {
		t.Fatalf("disjoint stars: %d groups, want 3", n)
	}
	// Group ids are assigned in order of lowest session index.
	for i, g := range groupOf {
		if g != i {
			t.Fatalf("groupOf = %v, want identity", groupOf)
		}
	}
	mesh, _, err := Mesh(3, 4, LinkSpec{Kind: Capacity, Capacity: 24}, 0.01,
		SessionConfig{Protocol: protocol.Deterministic, Layers: 8}, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, n := sessionGroupsOf(mesh); n != 1 {
		t.Fatalf("shared backbone: %d groups, want 1", n)
	}
}

// TestPlanMemoryAccounting: the plan's arithmetic invariants, plus a
// live-measurement sanity check — the bytes actually allocated by a
// sequential run land within a factor of two of the plan's accounting
// (the plan tracks every slab the engine carves, so a big mismatch
// means a formula drifted from newEngineFor).
func TestPlanMemoryAccounting(t *testing.T) {
	cfg := starCfg(t, 5000, 0.0001, 0.04, protocol.Deterministic, 100, 1)
	plan, err := PlanMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Receivers != 5000 || plan.Links != 5001 || plan.Sessions != 1 || plan.Groups != 1 {
		t.Fatalf("plan shape: %+v", plan)
	}
	peak := plan.ScratchBytes
	if plan.ResultBytes > peak {
		peak = plan.ResultBytes
	}
	if plan.Total != plan.SessionBytes+plan.FixedBytes+peak {
		t.Fatalf("plan total %d inconsistent with parts: %+v", plan.Total, plan)
	}
	if plan.BytesPerReceiver <= 0 || plan.BytesPerReceiver > 4096 {
		t.Fatalf("bytes/receiver = %v", plan.BytesPerReceiver)
	}
	planned := plan.SessionBytes + plan.FixedBytes + plan.ScratchBytes + plan.ResultBytes
	measured := allocatedBytes(t, cfg)
	if measured < planned/2 || measured > planned*2 {
		t.Fatalf("run allocated %d bytes, plan accounts for %d (off by more than 2x)", measured, planned)
	}
}

// allocatedBytes measures the heap bytes one Run allocates (engine +
// result, not the prebuilt network), single-threaded and GC-settled.
func allocatedBytes(t *testing.T, cfg Config) int64 {
	t.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return int64(after.TotalAlloc - before.TotalAlloc)
}

// TestPlanMemoryCountsShardGroups: under sharding the per-engine fixed
// state multiplies by the group count, so a sharded plan is never
// smaller than the sequential one.
func TestPlanMemoryCountsShardGroups(t *testing.T) {
	cfg := disjointCfg(t, 16, 1000, 1)
	seq, err := PlanMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	sh, err := PlanMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Groups != 3 {
		t.Fatalf("sharded plan groups = %d, want 3", sh.Groups)
	}
	if sh.Total < seq.Total {
		t.Fatalf("sharded plan %d < sequential plan %d", sh.Total, seq.Total)
	}
}

// TestMemBudgetFailFast: a budget below the plan fails before any
// engine allocation with an error naming both numbers; a budget at the
// plan runs.
func TestMemBudgetFailFast(t *testing.T) {
	cfg := starCfg(t, 200, 0.0001, 0.04, protocol.Deterministic, 1000, 1)
	plan, err := PlanMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MemBudget = plan.Total - 1
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "exceeds MemBudget") {
		t.Fatalf("under-budget run accepted: %v", err)
	}
	cfg.MemBudget = plan.Total
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}
