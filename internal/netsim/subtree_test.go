package netsim

import (
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"mlfair/internal/netmodel"
	"mlfair/internal/protocol"
	"mlfair/internal/routing"
	"mlfair/internal/topology"
)

// planetaryOneCfg builds a single-region planetary config — one giant
// session, so session-group sharding alone cannot parallelize it and
// every Shards >= 1 run exercises the intra-session subtree path.
// Capacity core links keep demand tracking live across the frontier;
// Bernoulli access links put RNG draws inside the parallel subtrees.
func planetaryOneCfg(t *testing.T, packets int, seed uint64) (Config, int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(5, 5))
	net, firstAccess, err := topology.Planetary(rng, topology.PlanetaryOptions{
		Regions: 1, CoreNodes: 32, PoPs: 256, ReceiversPerPoP: 32,
		CoreCap: 64, AccessCap: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]LinkSpec, net.NumLinks())
	for j := range specs {
		if j < firstAccess {
			specs[j] = LinkSpec{Kind: Capacity, Capacity: 64}
		} else {
			specs[j] = LinkSpec{Kind: Bernoulli, Loss: 0.01}
		}
	}
	return Config{
		Network:  net,
		Links:    specs,
		Sessions: []SessionConfig{{Protocol: protocol.Uncoordinated, Layers: 8}},
		Packets:  packets,
		Seed:     seed,
	}, firstAccess
}

// scaleFreeCfg builds a single-session scale-free config with churn so
// the sequential phases interleave with the parallel fan-out. ScaleFree
// draws each session's receiver count uniformly in 1..MaxReceivers, so
// the helper walks deterministic topology seeds until the draw is large
// (expected a handful of tries). The shallow BA shortest-path tree
// splinters the automatic frontier — hub children are mostly
// single-receiver leaves, so the avg-receivers guard declines it (see
// TestSubtreeShardInvarianceScaleFree, which pins that) — and the
// config instead cuts every distinct depth-2 tree link explicitly,
// which also stresses the work-stealing fan-out with wildly unequal
// subtree sizes.
func scaleFreeCfg(t *testing.T, packets int, seed uint64) Config {
	t.Helper()
	o := topology.DefaultScaleFreeOptions()
	o.Nodes = 6000
	o.Sessions = 1
	o.MaxReceivers = 5900
	var net *netmodel.Network
	for ts := uint64(3); ; ts++ {
		n, err := topology.ScaleFree(rand.New(rand.NewPCG(ts, ts)), o)
		if err != nil {
			t.Fatal(err)
		}
		if len(n.Session(0).Receivers) >= 4500 {
			net = n
			break
		}
		if ts > 40 {
			t.Fatal("no scale-free seed drew >= 4500 receivers")
		}
	}
	seen := make(map[int]bool)
	var cut []int
	for k := range net.Session(0).Receivers {
		if p := net.Path(0, k); len(p) >= 2 && !seen[p[1]] {
			seen[p[1]] = true
			cut = append(cut, p[1])
		}
	}
	specs := make([]LinkSpec, net.NumLinks())
	for j := range specs {
		specs[j] = LinkSpec{Kind: Bernoulli, Loss: 0.02}
	}
	cfg := Config{
		Network:  net,
		Links:    specs,
		Sessions: []SessionConfig{{Protocol: protocol.Coordinated, Layers: 8}},
		Packets:  packets,
		Seed:     seed,
		CutLinks: cut,
	}
	cfg.Churn = []ChurnEvent{
		{Time: 2, Session: 0, Receiver: 7, Join: false},
		{Time: 4, Session: 0, Receiver: 7, Join: true},
		{Time: 3, Session: 0, Receiver: 4400, Join: false},
	}
	return cfg
}

// partitionOf builds the (single-group) shard engine for cfg and
// returns its subtree partition, nil if sharding declined to cut.
func partitionOf(t *testing.T, cfg Config) *treePartition {
	t.Helper()
	e, err := newEngineFor(cfg, []int{0}, nil, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return e.part
}

// TestSubtreeShardInvariance is the tentpole contract on the planetary
// shape: a single-session tree is decomposed (auto frontier) and every
// Shards >= 1 — sequential fan-out, fewer workers than subtrees, more
// workers than the machine has cores — yields the byte-identical
// Result. Run under -race in CI, so the phase-2 disjointness claim is
// machine-checked, not just argued.
func TestSubtreeShardInvariance(t *testing.T) {
	cfg, _ := planetaryOneCfg(t, 20000, 9)
	cfg.Shards = 1
	if p := partitionOf(t, cfg); p == nil {
		t.Fatal("auto frontier declined to cut the planetary tree")
	} else if p.numSub < 2 {
		t.Fatalf("numSub = %d", p.numSub)
	}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.PacketsSent != 20000 || want.Events == 0 {
		t.Fatalf("degenerate reference run: sent=%d events=%d", want.PacketsSent, want.Events)
	}
	for _, shards := range []int{2, 3, 4, 8} {
		cfg.Shards = shards
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Shards=%d diverged from Shards=1", shards)
		}
	}
}

// TestSubtreeShardInvarianceScaleFree repeats the invariance check on a
// generic scale-free tree (explicit depth-2 frontier with wildly
// unequal subtree sizes, Coordinated signals and churn interleaving the
// sequential phases) across seeds. It also pins the auto policy on this
// shape: the shallow BA tree splinters into near-empty subtrees, so
// with CutLinks unset the avg-receivers guard must decline to cut.
func TestSubtreeShardInvarianceScaleFree(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := scaleFreeCfg(t, 8000, seed)
		cfg.Shards = 1
		auto := cfg
		auto.CutLinks = nil
		if p := partitionOf(t, auto); p != nil {
			t.Fatalf("auto frontier cut a splinter-prone BA tree into %d subtrees", p.numSub)
		}
		if p := partitionOf(t, cfg); p == nil {
			t.Fatal("explicit depth-2 frontier declined to cut the scale-free tree")
		} else if p.numSub < 2 {
			t.Fatalf("numSub = %d", p.numSub)
		}
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Shards = 4
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: Shards=4 diverged from Shards=1", seed)
		}
	}
}

// TestSubtreeExplicitCutFrontier drives the planetary access-link
// frontier through Config.CutLinks: the partition must cut exactly one
// subtree per PoP, and the Result must again be invariant in Shards.
// The explicit and auto frontiers are different decompositions, so
// their Results legitimately differ — each must only be
// self-consistent across shard counts.
func TestSubtreeExplicitCutFrontier(t *testing.T) {
	cfg, firstAccess := planetaryOneCfg(t, 12000, 11)
	cfg.CutLinks = topology.PlanetaryCutFrontier(firstAccess, cfg.Network.NumLinks())
	cfg.Shards = 1
	p := partitionOf(t, cfg)
	if p == nil {
		t.Fatal("explicit frontier declined to cut")
	}
	if p.numSub != 256 { // one subtree per PoP
		t.Fatalf("numSub = %d, want 256", p.numSub)
	}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 6} {
		cfg.Shards = shards
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Shards=%d diverged from Shards=1", shards)
		}
	}
}

// starOfStarsCfg is a tiny three-hub tree: sender -> 3 hubs -> leaves.
// The hub links (0, 1, 2 in construction order) make a natural explicit
// frontier of exactly three subtrees.
func starOfStarsCfg(t *testing.T, leaves, packets int, seed uint64) Config {
	t.Helper()
	g := netmodel.NewGraph(1 + 3 + 3*leaves)
	var specs []LinkSpec
	receivers := make([]int, 0, 3*leaves)
	for h := 0; h < 3; h++ {
		g.AddLink(0, 1+h, 1)
		specs = append(specs, LinkSpec{Kind: Bernoulli, Loss: 0.02})
	}
	for h := 0; h < 3; h++ {
		for x := 0; x < leaves; x++ {
			nd := 4 + h*leaves + x
			g.AddLink(1+h, nd, 1)
			specs = append(specs, LinkSpec{Kind: Bernoulli, Loss: 0.04})
			receivers = append(receivers, nd)
		}
	}
	sess := []*netmodel.Session{{Sender: 0, Receivers: receivers,
		Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}}
	net, err := routing.BuildNetwork(g, sess)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Network:  net,
		Links:    specs,
		Sessions: []SessionConfig{{Protocol: protocol.Deterministic, Layers: 6}},
		Packets:  packets,
		Seed:     seed,
	}
}

// TestSubtreeShardsExceedSubtrees: more Shards than subtrees leaves
// workers idle and changes nothing — the worker count is clamped and
// the Result stays identical across every Shards >= 1.
func TestSubtreeShardsExceedSubtrees(t *testing.T) {
	cfg := starOfStarsCfg(t, 10, 6000, 5)
	cfg.CutLinks = []int{0, 1, 2}
	cfg.Shards = 1
	p := partitionOf(t, cfg)
	if p == nil || p.numSub != 3 {
		t.Fatalf("partition = %+v, want 3 subtrees", p)
	}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 8} {
		cfg.Shards = shards
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Shards=%d diverged (3 subtrees)", shards)
		}
	}
}

// TestSubtreeDegenerateTrees: shapes the partition must decline — a
// single-edge tree (no interior to cut) and a frontier that swallows
// the whole tree in one subtree — fall back to the plain single-group
// engine, whose group 0 keeps the base seed: the sharded Result is then
// byte-identical to the sequential Shards == 0 run.
func TestSubtreeDegenerateTrees(t *testing.T) {
	// Single edge: sender -> one receiver.
	g := netmodel.NewGraph(2)
	g.AddLink(0, 1, 1)
	sess := []*netmodel.Session{{Sender: 0, Receivers: []int{1},
		Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}}
	net, err := routing.BuildNetwork(g, sess)
	if err != nil {
		t.Fatal(err)
	}
	single := Config{
		Network:  net,
		Links:    []LinkSpec{{Kind: Bernoulli, Loss: 0.05}},
		Sessions: []SessionConfig{{Protocol: protocol.Deterministic, Layers: 4}},
		Packets:  2000,
		Seed:     3,
	}
	// Whole-tree frontier: cutting the root's hub links... on a chain,
	// cutting the root edge makes the entire tree one subtree.
	chain := starOfStarsCfg(t, 8, 4000, 7)
	chainCut := chain
	chainCut.CutLinks = []int{0} // one cut edge -> numSub == 1 -> decline
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"single-edge", single},
		{"whole-tree-one-subtree", chainCut},
	} {
		seq, err := Run(tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		sh := tc.cfg
		sh.Shards = 4
		if p := partitionOf(t, sh); p != nil {
			t.Fatalf("%s: partition engaged (%d subtrees), want decline", tc.name, p.numSub)
		}
		got, err := Run(sh)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, seq) {
			t.Fatalf("%s: degenerate sharded run diverged from sequential", tc.name)
		}
	}
}

// TestSubtreeAutoFrontierDeclinesSmall: below the receiver floor the
// auto frontier must not cut (the barriers would cost more than the
// fan-out wins), and the sharded single-group run then matches the
// sequential engine exactly.
func TestSubtreeAutoFrontierDeclinesSmall(t *testing.T) {
	cfg := starOfStarsCfg(t, 20, 3000, 2) // 60 receivers < autoCutMinReceivers
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 2
	if p := partitionOf(t, cfg); p != nil {
		t.Fatalf("auto frontier cut a %d-receiver tree", 60)
	}
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, seq) {
		t.Fatal("small-tree sharded run diverged from sequential")
	}
}

// TestSubtreeProbedInvariance extends the invariance contract to probed
// runs: the full Result including the ProbeSeries (ring contents,
// window grid, levels) must be identical for every Shards >= 1 on a
// partitioned single-session tree.
func TestSubtreeProbedInvariance(t *testing.T) {
	cfg, _ := planetaryOneCfg(t, 12000, 13)
	cfg.Probe = &ProbeConfig{Window: 4, MaxSamples: 64}
	cfg.Shards = 1
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Probe == nil || want.Probe.NumSamples() == 0 {
		t.Fatal("no probe samples")
	}
	for _, shards := range []int{2, 4} {
		cfg.Shards = shards
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("probed Shards=%d diverged from Shards=1", shards)
		}
	}
	// Packet windows shard fine in a single group (the global
	// transmission order is the group's own).
	cfg.Probe = &ProbeConfig{PacketWindow: 500}
	cfg.Shards = 1
	want, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 3
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("packet-window probed run diverged across Shards")
	}
}

// TestSubtreeWorkerCountInvariantUnderGOMAXPROCS: setWorkers is a pure
// throughput knob even when it exceeds the subtree count or the
// machine's cores; forcing the partition's worker count directly (as
// runSharded would on a many-core box) must not change the Result.
func TestSubtreeWorkerCountInvariantUnderGOMAXPROCS(t *testing.T) {
	cfg, _ := planetaryOneCfg(t, 8000, 21)
	cfg.Shards = 1
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shards=64 on one group -> 64 workers (clamped to subtree count).
	cfg.Shards = 64
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("worker flood changed the Result")
	}
}

// TestSubtreeRejectsUnsupportedShapes: DropTail edges and LeaveLatency
// runs must decline the partition (queue events and linger windows
// couple subtrees) and still produce the plain single-group result.
func TestSubtreeRejectsUnsupportedShapes(t *testing.T) {
	dt := starOfStarsCfg(t, 10, 3000, 4)
	dt.Links[0] = LinkSpec{Kind: DropTail, Capacity: 32, Buffer: 8, Delay: 0.01}
	dt.CutLinks = []int{0, 1, 2}
	dt.Shards = 2
	if p := partitionOf(t, dt); p != nil {
		t.Fatal("partition engaged on a DropTail tree")
	}
	ll := starOfStarsCfg(t, 10, 3000, 4)
	ll.LeaveLatency = 0.5
	ll.CutLinks = []int{0, 1, 2}
	ll.Shards = 2
	if p := partitionOf(t, ll); p != nil {
		t.Fatal("partition engaged under LeaveLatency")
	}
}

// TestPlanMemoryCountsSubtrees: PlanMemory replays the same frontier
// policy newTreePartition applies, so the planned subtree count must
// match the engine's exactly — auto frontier, explicit planetary
// frontier, and explicit scale-free frontier alike — and the plan must
// decline exactly where the engine declines.
func TestPlanMemoryCountsSubtrees(t *testing.T) {
	auto, firstAccess := planetaryOneCfg(t, 100, 1)
	auto.Shards = 2
	explicit := auto
	explicit.CutLinks = topology.PlanetaryCutFrontier(firstAccess, auto.Network.NumLinks())
	sf := scaleFreeCfg(t, 100, 1)
	sf.Shards = 2
	small := starOfStarsCfg(t, 20, 100, 2)
	small.Shards = 2
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"planetary-auto", auto},
		{"planetary-explicit", explicit},
		{"scale-free-explicit", sf},
		{"small-declined", small},
	} {
		plan, err := PlanMemory(tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if p := partitionOf(t, tc.cfg); p != nil {
			want = p.numSub
		}
		if plan.Subtrees != want || plan.CutFrontier != want {
			t.Fatalf("%s: plan subtrees = %d (frontier %d), engine built %d",
				tc.name, plan.Subtrees, plan.CutFrontier, want)
		}
		if want > 0 && !strings.Contains(plan.String(), "subtree shard") {
			t.Fatalf("%s: plan string omits the partition: %s", tc.name, plan)
		}
	}
}

// TestCutLinksValidate pins the CutLinks range check.
func TestCutLinksValidate(t *testing.T) {
	cfg := starOfStarsCfg(t, 4, 100, 1)
	cfg.Shards = 2
	cfg.CutLinks = []int{cfg.Network.NumLinks()}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "CutLinks") {
		t.Fatalf("out-of-range CutLinks accepted: %v", err)
	}
}
