package netsim

import (
	"fmt"
	"math"
)

// LinkKind selects the loss/queue discipline of one link.
type LinkKind int

const (
	// Perfect links never lose packets and add no delay.
	Perfect LinkKind = iota
	// Bernoulli links drop each entering packet independently with
	// probability Loss — the paper's exogenous Section 4 loss model,
	// identical to the sim and treesim packages.
	Bernoulli
	// Capacity links drop with probability max(0, (D-C)/D) where D is the
	// instantaneous fluid demand of all sessions (plus background load) on
	// the link and C its capacity — capsim's closed-loop model on a
	// general graph.
	Capacity
	// DropTail links model a finite FIFO queue served at rate Capacity
	// with Buffer waiting slots and propagation delay Delay: a packet
	// arriving to a full buffer is dropped; otherwise it departs one
	// service time after the previous departure (or after its arrival)
	// and reaches the far end Delay later.
	DropTail
)

// String names the kind.
func (k LinkKind) String() string {
	switch k {
	case Perfect:
		return "perfect"
	case Bernoulli:
		return "bernoulli"
	case Capacity:
		return "capacity"
	case DropTail:
		return "droptail"
	}
	return fmt.Sprintf("LinkKind(%d)", int(k))
}

// LinkSpec configures one link's model. The zero value is a Perfect link.
type LinkSpec struct {
	Kind LinkKind
	// Loss is the Bernoulli drop probability (Bernoulli only).
	Loss float64
	// LayerLoss, when non-nil, gives layer-dependent Bernoulli drop
	// probabilities (Bernoulli only; overrides Loss): a layer-l packet is
	// dropped with probability LayerLoss[l], clamped to the last entry
	// for deeper layers. This is the priority-dropping lever (Bajaj/
	// Breslau/Shenker): rising tables sacrifice enhancement layers to
	// protect the base layer.
	LayerLoss []float64
	// Capacity is the service/fluid rate in packets per time unit
	// (Capacity and DropTail). Zero means "use the graph's link
	// capacity".
	Capacity float64
	// Buffer is the DropTail waiting-room size in packets (the packet in
	// service does not occupy a slot). Zero means 16.
	Buffer int
	// Delay is the propagation delay in time units (DropTail only; the
	// other kinds deliver instantly, matching the paper's idealization).
	Delay float64
	// Background is a constant competing load in packets per time unit —
	// cross traffic à la the TCP-over-ABR/UBR studies. It inflates the
	// fluid demand of Capacity links and steals service rate from
	// DropTail links. Ignored by Perfect and Bernoulli links.
	Background float64
}

func (s LinkSpec) validate(j int, graphCap float64) error {
	// Comparisons are written so NaN fails them: a NaN loss, capacity,
	// delay, or background must be rejected, not silently admitted (the
	// fuzz targets drive raw float bits through here).
	switch s.Kind {
	case Perfect:
	case Bernoulli:
		if !(s.Loss >= 0 && s.Loss < 1) {
			return fmt.Errorf("netsim: link %d loss %v outside [0,1)", j, s.Loss)
		}
		for l, p := range s.LayerLoss {
			if !(p >= 0 && p < 1) {
				return fmt.Errorf("netsim: link %d layer-%d loss %v outside [0,1)", j, l, p)
			}
		}
	case Capacity, DropTail:
		if c := s.effCapacity(graphCap); !(c > 0) || math.IsInf(c, 0) {
			return fmt.Errorf("netsim: link %d needs a positive finite capacity, has %v", j, c)
		}
		if s.Buffer < 0 {
			return fmt.Errorf("netsim: link %d buffer %d", j, s.Buffer)
		}
		if !(s.Delay >= 0) || math.IsInf(s.Delay, 0) {
			return fmt.Errorf("netsim: link %d delay %v", j, s.Delay)
		}
	default:
		return fmt.Errorf("netsim: link %d has unknown kind %v", j, s.Kind)
	}
	if s.LayerLoss != nil && s.Kind != Bernoulli {
		return fmt.Errorf("netsim: link %d sets LayerLoss on a %v link (Bernoulli only)", j, s.Kind)
	}
	if s.LayerLoss != nil && len(s.LayerLoss) == 0 {
		return fmt.Errorf("netsim: link %d has an empty LayerLoss table", j)
	}
	if !(s.Background >= 0) || math.IsInf(s.Background, 0) {
		return fmt.Errorf("netsim: link %d background %v", j, s.Background)
	}
	return nil
}

func (s LinkSpec) effCapacity(graphCap float64) float64 {
	if s.Capacity > 0 {
		return s.Capacity
	}
	return graphCap
}

// CapacityLinks returns an all-Capacity spec slice for n links, each
// using its graph capacity.
func CapacityLinks(n int) []LinkSpec {
	specs := make([]LinkSpec, n)
	for j := range specs {
		specs[j] = LinkSpec{Kind: Capacity}
	}
	return specs
}

// capDemand is one link's capacity-admission row: the engine keeps
// these in a dense slice (engine.capDem) indexed by link, plus one
// sentinel row with infinite capacity that non-Capacity edges alias,
// so the admission test and the incremental demand maintenance each
// touch a single 24-byte record.
type capDemand struct {
	dem float64 // current fluid demand of all sessions on the link
	bg  float64 // constant background load (LinkSpec.Background)
	cap float64 // resolved capacity
}

// linkState is one link's mutable run state. The engine keeps all links
// in one flat value slice (only DropTail links hold an extra ring
// allocation), so admission touches contiguous memory.
type linkState struct {
	spec LinkSpec
	cap  float64 // resolved capacity (graph fallback applied)
	buf  int     // resolved DropTail buffer (zero-default applied)

	// DropTail queue: departure time of the most recent admitted packet
	// and the number of admitted packets not yet departed.
	lastDepart float64
	queued     int
	departures []float64 // ring of pending departure times
	head       int
}

// admitQueue decides the fate of a packet entering a DropTail link at
// time now: either it is dropped at a full buffer, or it departs one
// service time after the previous departure (or its arrival) and
// reaches the far end Delay later — fully deterministic, no randomness.
// The instant link kinds (Perfect, Bernoulli, Capacity) are decided
// inline on the engine's forwarding fast path and never reach here.
func (l *linkState) admitQueue(now float64) (exit float64, dropped bool) {
	// Expire departures that happened before this arrival.
	for l.queued > 0 && l.departures[l.head] <= now {
		l.head = (l.head + 1) % len(l.departures)
		l.queued--
	}
	if l.queued > l.buf {
		return now, true
	}
	rate := l.cap - l.spec.Background
	if rate <= 0 {
		// Background saturates the server: nothing gets through.
		return now, true
	}
	depart := now + 1/rate
	if l.lastDepart+1/rate > depart {
		depart = l.lastDepart + 1/rate
	}
	l.lastDepart = depart
	tail := (l.head + l.queued) % len(l.departures)
	l.departures[tail] = depart
	l.queued++
	return depart + l.spec.Delay, false
}

func newLinkState(spec LinkSpec, graphCap float64) linkState {
	l := linkState{spec: spec, cap: spec.effCapacity(graphCap)}
	if spec.Kind == DropTail {
		l.buf = spec.Buffer
		if l.buf == 0 {
			l.buf = 16
		}
		// One service slot + buffer waiting slots + slack so the ring
		// never wraps onto live entries.
		l.departures = make([]float64, l.buf+2)
	}
	return l
}
