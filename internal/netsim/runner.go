package netsim

import (
	"fmt"
	"runtime"
	"sync"

	"mlfair/internal/stats"
)

// ReplicationSeed derives the RNG seed of replication i from a base
// seed with a splitmix64 finalizer, so replications are decorrelated
// even for adjacent base seeds and the mapping is stable across runs
// (the contract the parallel runner's determinism rests on).
func ReplicationSeed(base uint64, i int) uint64 {
	z := base + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Metric extracts one scalar from a run result, for aggregation across
// replications.
type Metric func(*Result) float64

// StreamReplications executes n independent replications of cfg —
// seeds ReplicationSeed(cfg.Seed, 0..n-1) — on a pool of workers
// goroutines (workers <= 0 means GOMAXPROCS) and hands each result to
// consume exactly once, in replication order, on the calling
// goroutine. Because every replication is deterministic in its seed
// and consume sees the identical sequence regardless of scheduling,
// any aggregate computed in consume is bit-identical for every worker
// count, including workers == 1.
//
// Unlike collecting []*Result, at most ~2x workers results are
// retained at any moment (finished results waiting for their turn),
// so replication counts can grow without the runner's memory growing
// with them. A consume error stops dispatch and drains the pool.
func StreamReplications(cfg Config, n, workers int, consume func(i int, r *Result) error) error {
	if n < 1 {
		return fmt.Errorf("netsim: replications = %d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			c := cfg
			c.Seed = ReplicationSeed(cfg.Seed, i)
			r, err := Run(c)
			if err != nil {
				return err
			}
			if err := consume(i, r); err != nil {
				return err
			}
		}
		return nil
	}

	type item struct {
		i   int
		r   *Result
		err error
	}
	// The dispatch window bounds outstanding (unconsumed) replications:
	// a slot is taken before an index is dispatched and released once
	// its result has been consumed.
	window := 2 * workers
	slots := make(chan struct{}, window)
	idx := make(chan int)
	out := make(chan item, window)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				c := cfg
				c.Seed = ReplicationSeed(cfg.Seed, i)
				r, err := Run(c)
				out <- item{i: i, r: r, err: err}
			}
		}()
	}
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case slots <- struct{}{}:
			case <-stop:
				return
			}
			select {
			case idx <- i:
			case <-stop:
				return
			}
		}
	}()

	pending := make(map[int]*Result, window)
	var firstErr error
	next := 0
	consumed := 0
	for consumed < n && firstErr == nil {
		it := <-out
		if it.err != nil {
			firstErr = it.err
			break
		}
		pending[it.i] = it.r
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			<-slots
			if err := consume(next, r); err != nil {
				firstErr = err
				break
			}
			next++
			consumed++
		}
	}
	// Shut down: stop dispatching, then drain whatever the workers
	// still produce so none block on out.
	close(stop)
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-out:
		case <-done:
			return firstErr
		}
	}
}

// RunReplications executes n replications (see StreamReplications) and
// returns the per-replication results in replication order. Prefer
// StreamReplications or SummarizeReplications when only aggregates are
// needed — they do not retain all n results.
func RunReplications(cfg Config, n, workers int) ([]*Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("netsim: replications = %d", n)
	}
	results := make([]*Result, n)
	err := StreamReplications(cfg, n, workers, func(i int, r *Result) error {
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SummarizeReplications streams n replications through the given
// metrics and returns one Summary per metric, accumulated in
// replication order — bit-identical for any worker count, with O(1)
// memory per metric instead of retaining every result.
func SummarizeReplications(cfg Config, n, workers int, metrics ...Metric) ([]stats.Summary, error) {
	accs := make([]stats.Accumulator, len(metrics))
	err := StreamReplications(cfg, n, workers, func(_ int, r *Result) error {
		for mi, m := range metrics {
			accs[mi].Add(m(r))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sums := make([]stats.Summary, len(metrics))
	for mi := range accs {
		sums[mi] = stats.Summary{Mean: accs[mi].Mean(), CI95: accs[mi].CI95(), N: accs[mi].N(), StdEv: accs[mi].StdDev()}
	}
	return sums, nil
}

// Summarize aggregates a metric over replication results in replication
// order (so parallel and sequential runs summarize bit-identically).
func Summarize(results []*Result, m Metric) stats.Summary {
	xs := make([]float64, len(results))
	for i, r := range results {
		xs[i] = m(r)
	}
	return stats.Summarize(xs)
}

// SessionRedundancyMetric measures a session's root-link redundancy.
func SessionRedundancyMetric(session int) Metric {
	return func(r *Result) float64 { return r.SessionRedundancy(session) }
}

// LinkRedundancyMetric measures one session's Definition 3 redundancy on
// one link.
func LinkRedundancyMetric(link, session int) Metric {
	return func(r *Result) float64 { return r.LinkRedundancy(link, session) }
}

// ReceiverRateMetric measures one receiver's long-run goodput.
func ReceiverRateMetric(session, receiver int) Metric {
	return func(r *Result) float64 { return r.ReceiverRates[session][receiver] }
}

// MeanReceiverRateMetric averages goodput across all receivers of all
// sessions.
func MeanReceiverRateMetric() Metric {
	return func(r *Result) float64 {
		sum, n := 0.0, 0
		for _, rs := range r.ReceiverRates {
			for _, v := range rs {
				sum += v
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
}
