package netsim

import (
	"fmt"
	"runtime"
	"sync"

	"mlfair/internal/stats"
)

// ReplicationSeed derives the RNG seed of replication i from a base
// seed with a splitmix64 finalizer, so replications are decorrelated
// even for adjacent base seeds and the mapping is stable across runs
// (the contract the parallel runner's determinism rests on).
func ReplicationSeed(base uint64, i int) uint64 {
	z := base + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Metric extracts one scalar from a run result, for aggregation across
// replications.
type Metric func(*Result) float64

// RunReplications executes n independent replications of cfg — seeds
// ReplicationSeed(cfg.Seed, 0..n-1) — on a pool of workers goroutines
// (workers <= 0 means GOMAXPROCS) and returns the per-replication
// results in replication order. Because every replication is
// deterministic in its seed and results are stored by index, the output
// is bit-identical for any worker count, including workers == 1.
func RunReplications(cfg Config, n, workers int) ([]*Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("netsim: replications = %d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]*Result, n)
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			c := cfg
			c.Seed = ReplicationSeed(cfg.Seed, i)
			results[i], errs[i] = Run(c)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					c := cfg
					c.Seed = ReplicationSeed(cfg.Seed, i)
					results[i], errs[i] = Run(c)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Summarize aggregates a metric over replication results in replication
// order (so parallel and sequential runs summarize bit-identically).
func Summarize(results []*Result, m Metric) stats.Summary {
	xs := make([]float64, len(results))
	for i, r := range results {
		xs[i] = m(r)
	}
	return stats.Summarize(xs)
}

// SessionRedundancyMetric measures a session's root-link redundancy.
func SessionRedundancyMetric(session int) Metric {
	return func(r *Result) float64 { return r.SessionRedundancy(session) }
}

// LinkRedundancyMetric measures one session's Definition 3 redundancy on
// one link.
func LinkRedundancyMetric(link, session int) Metric {
	return func(r *Result) float64 { return r.LinkRedundancy(link, session) }
}

// ReceiverRateMetric measures one receiver's long-run goodput.
func ReceiverRateMetric(session, receiver int) Metric {
	return func(r *Result) float64 { return r.ReceiverRates[session][receiver] }
}

// MeanReceiverRateMetric averages goodput across all receivers of all
// sessions.
func MeanReceiverRateMetric() Metric {
	return func(r *Result) float64 {
		sum, n := 0.0, 0
		for _, rs := range r.ReceiverRates {
			for _, v := range rs {
				sum += v
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
}
