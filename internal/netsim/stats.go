package netsim

import "mlfair/internal/obs"

// EngineStats is the engine's optional runtime-observability sink:
// cumulative counters over every Run executed with Config.Stats
// pointing at it. All fields are atomic obs instruments, so one
// EngineStats can be shared by concurrent replications (the parallel
// runner's workers) and scraped live by another goroutine.
//
// Instrumentation is free on the hot path by construction: the engine
// already maintains every underlying quantity (transmission and pop
// counts, per-edge crossing/drop counters, per-receiver deliveries),
// so enabling stats adds exactly one flush of atomic adds at the end
// of each run — dynamics, RNG consumption and all Result fields are
// byte-identical with stats on or off, and the allocs/event budget is
// unaffected (the flush allocates nothing).
type EngineStats struct {
	// Runs counts completed engine runs (replications).
	Runs obs.Counter
	// Transmissions counts sender packet transmissions; CalendarTicks
	// counts dyadic transmit-calendar ticks (each tick fires the
	// contiguous due-layer range, so Transmissions >= CalendarTicks).
	Transmissions obs.Counter
	CalendarTicks obs.Counter
	// ForwardEvents / ChurnEvents / SignalEvents split the scheduled
	// event-queue pops by kind: delayed DropTail deliveries, membership
	// churn, and the Coordinated signal clock.
	ForwardEvents obs.Counter
	ChurnEvents   obs.Counter
	SignalEvents  obs.Counter
	// Crossings counts packets entering links (bandwidth consumed);
	// Drops the packets links discarded; Deliveries the packets that
	// reached subscribed receivers.
	Crossings  obs.Counter
	Drops      obs.Counter
	Deliveries obs.Counter
	// Events is the engine's throughput currency (Result.Events summed:
	// transmissions + pops + crossings + deliveries).
	Events obs.Counter
	// HeapHighWater is the largest scheduled-event-queue occupancy seen
	// in any run (the calendar keeps sender transmissions out of it, so
	// this tracks only delayed deliveries, churn and the signal clock).
	HeapHighWater obs.Gauge
	// ProbeWindows counts streaming-probe window flushes; ProbeDropped
	// the windows lost to ring overwrites (see ProbeConfig.MaxSamples).
	ProbeWindows obs.Counter
	ProbeDropped obs.Counter
	// VirtualTime accumulates simulated duration across runs.
	VirtualTime obs.FloatCounter
}

// MustRegister registers every stat on reg under the netsim_ prefix
// (Prometheus-convention names; counters end in _total).
func (st *EngineStats) MustRegister(reg *obs.Registry) {
	reg.MustRegister("netsim_runs_total", "completed engine runs (replications)", &st.Runs)
	reg.MustRegister("netsim_transmissions_total", "sender packet transmissions", &st.Transmissions)
	reg.MustRegister("netsim_calendar_ticks_total", "dyadic transmit-calendar ticks fired", &st.CalendarTicks)
	reg.MustRegister("netsim_forward_events_total", "delayed-delivery event pops", &st.ForwardEvents)
	reg.MustRegister("netsim_churn_events_total", "membership churn event pops", &st.ChurnEvents)
	reg.MustRegister("netsim_signal_events_total", "coordinated signal-clock ticks", &st.SignalEvents)
	reg.MustRegister("netsim_crossings_total", "packets entering links (bandwidth consumed)", &st.Crossings)
	reg.MustRegister("netsim_drops_total", "packets dropped by links", &st.Drops)
	reg.MustRegister("netsim_deliveries_total", "packets delivered to subscribed receivers", &st.Deliveries)
	reg.MustRegister("netsim_events_total", "engine events processed (throughput currency)", &st.Events)
	reg.MustRegister("netsim_heap_high_water", "peak scheduled-event-queue occupancy", &st.HeapHighWater)
	reg.MustRegister("netsim_probe_windows_total", "streaming-probe window flushes", &st.ProbeWindows)
	reg.MustRegister("netsim_probe_dropped_total", "probe windows lost to ring overwrites", &st.ProbeDropped)
	reg.MustRegister("netsim_virtual_time", "simulated time units across runs", &st.VirtualTime)
}

// flushStats publishes one finished run into cfg.Stats. Called once
// from result(); every quantity is either an engine counter that was
// maintained anyway or a sum the result fold already walks.
func (e *engine) flushStats(res *Result) {
	st := e.cfg.Stats
	if st == nil {
		return
	}
	st.Runs.Inc()
	st.Transmissions.Add(int64(e.sent))
	st.CalendarTicks.Add(e.ticksFired)
	st.ForwardEvents.Add(e.popForward)
	st.ChurnEvents.Add(e.popChurn)
	st.SignalEvents.Add(e.popSignal)
	var crossed, drops, delivered int64
	for i := range e.sess {
		s := &e.sess[i]
		for eid := range s.hot {
			crossed += s.crossed[eid]
			drops += s.cold[eid].drops
		}
		for _, n := range s.received {
			delivered += int64(n)
		}
	}
	st.Crossings.Add(crossed)
	st.Drops.Add(drops)
	st.Deliveries.Add(delivered)
	st.Events.Add(res.Events)
	st.HeapHighWater.SetMax(int64(e.heapHW))
	if e.probe != nil {
		st.ProbeWindows.Add(int64(e.probe.count))
		if dropped := e.probe.count - e.probe.cap; dropped > 0 {
			st.ProbeDropped.Add(int64(dropped))
		}
	}
	st.VirtualTime.Add(e.now)
}
