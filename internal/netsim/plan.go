package netsim

import (
	"fmt"
	"unsafe"
)

// MemoryPlan is PlanMemory's prediction of an engine's peak heap, in
// bytes, as a closed-form function of the compiled topology — receiver,
// link and session counts plus tree shapes — with no dependence on the
// run's dynamics: the engine allocates everything it will ever own
// before the first event and never grows during the run.
//
// The plan covers the engine (and, under Shards >= 1, all group
// engines): per-session width-segregated slabs, per-engine link rows,
// calendars and event arenas, the construction-time scratch that is
// live only while trees are discovered, and the result-fold buffers
// allocated after the run. It does not count the netmodel.Network the
// caller already built to produce the Config.
type MemoryPlan struct {
	// Receivers, Links, Sessions summarize the topology the plan was
	// computed for; Groups is the number of independent engines (1
	// sequential, the link-connectivity component count when sharded).
	Receivers, Links, Sessions, Groups int
	// Subtrees is the total intra-session subtree count across every
	// group engine that decomposes its single session's tree (see
	// newTreePartition — the plan replays the same eligibility rules and
	// frontier policy), zero when no engine partitions. CutFrontier is
	// the total cut-edge count; exactly one cut edge enters each
	// subtree, so the two are equal by construction and reported
	// separately only so logs read naturally.
	Subtrees, CutFrontier int
	// SessionBytes is the sum of every session's slab footprint: the
	// CSR tree, receiver protocol arrays, subscription rows, and
	// downstream-receiver lists.
	SessionBytes int64
	// FixedBytes is the per-engine state outside any session: capacity
	// rows, DropTail queue state, loss tables, transmit calendars, the
	// event arena, and the forwarding stack.
	FixedBytes int64
	// ScratchBytes is construction-time scratch (global-id tree
	// discovery), dead once the engine is built.
	ScratchBytes int64
	// ResultBytes is the result-time fold: per-receiver output arrays,
	// the dense (session, link) scatter rows, and the LinkStats slice.
	ResultBytes int64
	// Total is the planned peak: steady state plus the larger of the
	// construction scratch and the result fold (they are never live
	// together).
	Total int64
	// BytesPerReceiver is the steady-state engine footprint
	// (SessionBytes + FixedBytes) per receiver — the scale metric the
	// planetary budget is written against.
	BytesPerReceiver float64
}

// PlanMemory predicts the engine's peak heap for cfg without building
// it. Run enforces cfg.MemBudget against this plan before any large
// allocation happens.
func PlanMemory(cfg Config) (*MemoryPlan, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	net := cfg.Network
	g := net.Graph()
	nn := g.NumNodes()
	nL := net.NumLinks()
	S := net.NumSessions()
	p := &MemoryPlan{Links: nL, Sessions: S, Groups: 1}

	const (
		szHot   = int64(unsafe.Sizeof(hotEdge{}))
		szCold  = int64(unsafe.Sizeof(coldEdge{}))
		szEvent = int64(unsafe.Sizeof(event{}))
		szCap   = int64(unsafe.Sizeof(capDemand{}))
		szLink  = int64(unsafe.Sizeof(linkState{}))
		szLS    = int64(unsafe.Sizeof(LinkStats{}))
	)

	// Shard groups are a pure function of the topology; computed up
	// front because the per-session subtree replay below needs to know
	// which sessions run alone in their group.
	var groupOf []int
	if cfg.Shards > 0 {
		groupOf, p.Groups = sessionGroupsOf(cfg)
	}
	groupSize := make([]int, p.Groups)
	if groupOf != nil {
		for _, gp := range groupOf {
			groupSize[gp]++
		}
	}
	var cutSet map[int]bool
	if len(cfg.CutLinks) > 0 {
		cutSet = make(map[int]bool, len(cfg.CutLinks))
		for _, j := range cfg.CutLinks {
			cutSet[j] = true
		}
	}

	// Per-session slabs: replay the discovery walk with an epoch-stamped
	// visited array to size each tree (distinct nodes reached by the
	// session's paths) without building it. Sessions that run alone in
	// their shard group additionally replay newTreePartition's frontier
	// policy — same eligibility rules, same guards — so the plan carries
	// the partition slabs and the subtree counts the engines will build.
	visited := make([]int32, nn)
	var cnt, visitB, rootMark, nodesCnt []int32
	var partFixed, partScratch int64
	maxEdges, maxTreeN, totR := 0, 0, 0
	for i := 0; i < S; i++ {
		ns := net.Session(i)
		L := cfg.Sessions[i].Layers
		epoch := int32(i + 1)
		doPart := groupOf != nil && groupSize[groupOf[i]] == 1 && cfg.LeaveLatency == 0
		if doPart && cnt == nil {
			cnt = make([]int32, nn)
			visitB = make([]int32, nn)
			rootMark = make([]int32, nn)
			nodesCnt = make([]int32, nn)
		}
		if doPart {
			cnt[ns.Sender] = 0
		}
		hasDT := false
		visited[ns.Sender] = epoch
		nE := 0
		sumDepth := 0
		for k := range ns.Receivers {
			cur := ns.Sender
			path := net.Path(i, k)
			sumDepth += len(path)
			for _, j := range path {
				nb := g.Other(j, cur)
				if visited[nb] != epoch {
					visited[nb] = epoch
					if doPart {
						cnt[nb] = 0
					}
					nE++
				}
				if doPart {
					cnt[nb]++
					if cfg.Links[j].Kind == DropTail {
						hasDT = true
					}
				}
				cur = nb
			}
		}
		treeN := 1 + nE
		nR := ns.NumReceivers()
		totR += nR
		if doPart && !hasDT && treeN >= 3 && nR > 0 &&
			(cutSet != nil || nR >= autoCutMinReceivers) {
			// Frontier replay: walk each receiver path once more, cutting
			// at the first frontier edge (explicit membership, or the
			// auto threshold on the receiver counts gathered above —
			// first-cut-wins is exactly newTreePartition's outermost
			// collapse). Distinct roots give the subtree count, stamped
			// node discovery the per-subtree sizes for the DFS stacks.
			cnt[ns.Sender] = int32(nR)
			c := int32(nR / autoCutTargetSubtrees)
			if c < 1 {
				c = 1
			}
			numSub, cutRecv := 0, 0
			var roots []int32
			visitB[ns.Sender] = epoch
			for k := range ns.Receivers {
				cur := ns.Sender
				root := int32(-1)
				for _, j := range net.Path(i, k) {
					nb := g.Other(j, cur)
					if root < 0 {
						isCut := false
						if cutSet != nil {
							isCut = cutSet[j]
						} else {
							isCut = cnt[nb] <= c && cnt[cur] > c
						}
						if isCut {
							root = int32(nb)
							if rootMark[nb] != epoch {
								rootMark[nb] = epoch
								nodesCnt[nb] = 0
								numSub++
								cutRecv += int(cnt[nb])
								roots = append(roots, int32(nb))
							}
						}
					}
					if visitB[nb] != epoch {
						visitB[nb] = epoch
						if root >= 0 {
							nodesCnt[root]++
						}
					}
					cur = nb
				}
			}
			ok := numSub >= 2
			if cutSet == nil && ok {
				ok = cutRecv*2 >= nR && numSub*autoCutMinAvgReceivers <= cutRecv
			}
			if ok {
				maxStack := 0
				for _, r := range roots {
					if n := int(nodesCnt[r]) - 1; n > maxStack {
						maxStack = n
					}
				}
				W := cfg.Shards / p.Groups
				if W < 1 {
					W = 1
				}
				if W > numSub {
					W = numSub
				}
				p.Subtrees += numSub
				p.CutFrontier += numSub
				partFixed += 4*int64(treeN) + // subOfNode
					// subRoot/cutEid/prevRootMax, the per-subtree level
					// rows, arrivals, and the rng slice + PCG states.
					int64(numSub)*(12+4*int64(L+1)+24+4+8+64) +
					int64(W)*(8+4*int64(maxStack)) // per-worker DFS stacks
				partScratch += 8 * int64(treeN) // counts + sizes
			}
		}
		rowShift := 1
		for 1<<rowShift < L+1 {
			rowShift++
		}
		rowLen := treeN << rowShift
		n32 := 3*nR + (L + 1) + 3*treeN + 2*(treeN+1) + 2*rowLen + 4*nE + 1
		n64 := nR + 2*nE
		nf := 2*L + 1 + 2*nE
		if cfg.LeaveLatency > 0 {
			nf += nE << rowShift
		}
		nb := nR + 2*treeN
		p.SessionBytes += 4*int64(n32) + 8*int64(n64) + 8*int64(nf) + int64(nb) +
			8*int64(nR) + // received
			szHot*int64(nE) + szCold*int64(nE) +
			4*int64(sumDepth) // downRecv
		if nE > maxEdges {
			maxEdges = nE
		}
		if treeN > maxTreeN {
			maxTreeN = treeN
		}
	}
	p.Receivers = totR

	// Per-engine fixed state, gated exactly like newEngineFor.
	anyDropTail, anyLayerLoss, numCap := false, false, 0
	ringSlots := 0
	for j := range cfg.Links {
		switch cfg.Links[j].Kind {
		case DropTail:
			anyDropTail = true
			buf := cfg.Links[j].Buffer
			if buf == 0 {
				buf = 16
			}
			ringSlots += buf + 2
		case Capacity:
			numCap++
		}
		if cfg.Links[j].LayerLoss != nil {
			anyLayerLoss = true
		}
	}
	perEngineLinks := szCap * int64(numCap+1)
	if numCap > 0 {
		perEngineLinks += 4 * int64(nL) // capRemap
	}
	if anyDropTail {
		perEngineLinks += szLink*int64(nL) + 8*int64(ringSlots)
	}
	if anyLayerLoss {
		perEngineLinks += 24 * int64(nL) // slice headers aliasing the specs
	}
	p.FixedBytes = perEngineLinks*int64(p.Groups) +
		8*int64(S) + // txCal (partitioned across groups)
		szEvent*int64(len(cfg.Churn)+1+64+int(p.Groups)*64) + // event arenas
		4*int64(maxEdges)*int64(p.Groups) + // fwdStack per engine (worst case)
		partFixed // subtree partitions of single-session groups

	// Construction scratch: global-id discovery arrays plus the largest
	// session's child lists and pre-order worklists; sharded runs build
	// engines sequentially, so one copy is live at a time.
	p.ScratchBytes = int64(nn)*(4+4+4+24) + int64(maxEdges)*int64(unsafe.Sizeof(buildEdge{})) + 16*int64(maxTreeN) +
		partScratch // newTreePartition's counts + sizes accumulators

	// Result fold: per-receiver outputs, the dense (session, link)
	// scatter rows, and the LinkStats backing.
	totalLS := 0
	for j := 0; j < nL; j++ {
		totalLS += len(net.OnLink(j))
	}
	p.ResultBytes = int64(totR)*(8+8+8) + int64(S)*int64(nL)*(8+8+8) + szLS*int64(totalLS)

	peakTransient := p.ScratchBytes
	if p.ResultBytes > peakTransient {
		peakTransient = p.ResultBytes
	}
	p.Total = p.SessionBytes + p.FixedBytes + peakTransient
	if totR > 0 {
		p.BytesPerReceiver = float64(p.SessionBytes+p.FixedBytes) / float64(totR)
	}
	return p, nil
}

// String renders the plan the way the planetary driver logs it.
func (p *MemoryPlan) String() string {
	s := fmt.Sprintf("plan: %d receivers, %d links, %d sessions, %d group(s): %d B steady (%.1f B/receiver) + max(%d B scratch, %d B result) = %d B peak",
		p.Receivers, p.Links, p.Sessions, p.Groups, p.SessionBytes+p.FixedBytes, p.BytesPerReceiver, p.ScratchBytes, p.ResultBytes, p.Total)
	if p.Subtrees > 0 {
		s += fmt.Sprintf(", %d subtree shard(s) over a %d-edge cut frontier", p.Subtrees, p.CutFrontier)
	}
	return s
}
