package netsim

import (
	"fmt"
	"unsafe"
)

// MemoryPlan is PlanMemory's prediction of an engine's peak heap, in
// bytes, as a closed-form function of the compiled topology — receiver,
// link and session counts plus tree shapes — with no dependence on the
// run's dynamics: the engine allocates everything it will ever own
// before the first event and never grows during the run.
//
// The plan covers the engine (and, under Shards >= 1, all group
// engines): per-session width-segregated slabs, per-engine link rows,
// calendars and event arenas, the construction-time scratch that is
// live only while trees are discovered, and the result-fold buffers
// allocated after the run. It does not count the netmodel.Network the
// caller already built to produce the Config.
type MemoryPlan struct {
	// Receivers, Links, Sessions summarize the topology the plan was
	// computed for; Groups is the number of independent engines (1
	// sequential, the link-connectivity component count when sharded).
	Receivers, Links, Sessions, Groups int
	// SessionBytes is the sum of every session's slab footprint: the
	// CSR tree, receiver protocol arrays, subscription rows, and
	// downstream-receiver lists.
	SessionBytes int64
	// FixedBytes is the per-engine state outside any session: capacity
	// rows, DropTail queue state, loss tables, transmit calendars, the
	// event arena, and the forwarding stack.
	FixedBytes int64
	// ScratchBytes is construction-time scratch (global-id tree
	// discovery), dead once the engine is built.
	ScratchBytes int64
	// ResultBytes is the result-time fold: per-receiver output arrays,
	// the dense (session, link) scatter rows, and the LinkStats slice.
	ResultBytes int64
	// Total is the planned peak: steady state plus the larger of the
	// construction scratch and the result fold (they are never live
	// together).
	Total int64
	// BytesPerReceiver is the steady-state engine footprint
	// (SessionBytes + FixedBytes) per receiver — the scale metric the
	// planetary budget is written against.
	BytesPerReceiver float64
}

// PlanMemory predicts the engine's peak heap for cfg without building
// it. Run enforces cfg.MemBudget against this plan before any large
// allocation happens.
func PlanMemory(cfg Config) (*MemoryPlan, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	net := cfg.Network
	g := net.Graph()
	nn := g.NumNodes()
	nL := net.NumLinks()
	S := net.NumSessions()
	p := &MemoryPlan{Links: nL, Sessions: S, Groups: 1}

	const (
		szHot   = int64(unsafe.Sizeof(hotEdge{}))
		szCold  = int64(unsafe.Sizeof(coldEdge{}))
		szEvent = int64(unsafe.Sizeof(event{}))
		szCap   = int64(unsafe.Sizeof(capDemand{}))
		szLink  = int64(unsafe.Sizeof(linkState{}))
		szLS    = int64(unsafe.Sizeof(LinkStats{}))
	)

	// Per-session slabs: replay the discovery walk with an epoch-stamped
	// visited array to size each tree (distinct nodes reached by the
	// session's paths) without building it.
	visited := make([]int32, nn)
	maxEdges, maxTreeN, totR := 0, 0, 0
	for i := 0; i < S; i++ {
		ns := net.Session(i)
		L := cfg.Sessions[i].Layers
		epoch := int32(i + 1)
		visited[ns.Sender] = epoch
		nE := 0
		sumDepth := 0
		for k := range ns.Receivers {
			cur := ns.Sender
			path := net.Path(i, k)
			sumDepth += len(path)
			for _, j := range path {
				nb := g.Other(j, cur)
				if visited[nb] != epoch {
					visited[nb] = epoch
					nE++
				}
				cur = nb
			}
		}
		treeN := 1 + nE
		nR := ns.NumReceivers()
		totR += nR
		rowShift := 1
		for 1<<rowShift < L+1 {
			rowShift++
		}
		rowLen := treeN << rowShift
		n32 := 3*nR + (L + 1) + 3*treeN + 2*(treeN+1) + 2*rowLen + 4*nE + 1
		n64 := nR + 2*nE
		nf := 2*L + 1 + 2*nE
		if cfg.LeaveLatency > 0 {
			nf += nE << rowShift
		}
		nb := nR + 2*treeN
		p.SessionBytes += 4*int64(n32) + 8*int64(n64) + 8*int64(nf) + int64(nb) +
			8*int64(nR) + // received
			szHot*int64(nE) + szCold*int64(nE) +
			4*int64(sumDepth) // downRecv
		if nE > maxEdges {
			maxEdges = nE
		}
		if treeN > maxTreeN {
			maxTreeN = treeN
		}
	}
	p.Receivers = totR

	// Per-engine fixed state, gated exactly like newEngineFor.
	anyDropTail, anyLayerLoss, numCap := false, false, 0
	ringSlots := 0
	for j := range cfg.Links {
		switch cfg.Links[j].Kind {
		case DropTail:
			anyDropTail = true
			buf := cfg.Links[j].Buffer
			if buf == 0 {
				buf = 16
			}
			ringSlots += buf + 2
		case Capacity:
			numCap++
		}
		if cfg.Links[j].LayerLoss != nil {
			anyLayerLoss = true
		}
	}
	perEngineLinks := szCap * int64(numCap+1)
	if numCap > 0 {
		perEngineLinks += 4 * int64(nL) // capRemap
	}
	if anyDropTail {
		perEngineLinks += szLink*int64(nL) + 8*int64(ringSlots)
	}
	if anyLayerLoss {
		perEngineLinks += 24 * int64(nL) // slice headers aliasing the specs
	}
	if cfg.Shards > 0 {
		_, p.Groups = sessionGroupsOf(cfg)
	}
	p.FixedBytes = perEngineLinks*int64(p.Groups) +
		8*int64(S) + // txCal (partitioned across groups)
		szEvent*int64(len(cfg.Churn)+1+64+int(p.Groups)*64) + // event arenas
		4*int64(maxEdges)*int64(p.Groups) // fwdStack per engine (worst case)

	// Construction scratch: global-id discovery arrays plus the largest
	// session's child lists and pre-order worklists; sharded runs build
	// engines sequentially, so one copy is live at a time.
	p.ScratchBytes = int64(nn)*(4+4+4+24) + int64(maxEdges)*int64(unsafe.Sizeof(buildEdge{})) + 16*int64(maxTreeN)

	// Result fold: per-receiver outputs, the dense (session, link)
	// scatter rows, and the LinkStats backing.
	totalLS := 0
	for j := 0; j < nL; j++ {
		totalLS += len(net.OnLink(j))
	}
	p.ResultBytes = int64(totR)*(8+8+8) + int64(S)*int64(nL)*(8+8+8) + szLS*int64(totalLS)

	peakTransient := p.ScratchBytes
	if p.ResultBytes > peakTransient {
		peakTransient = p.ResultBytes
	}
	p.Total = p.SessionBytes + p.FixedBytes + peakTransient
	if totR > 0 {
		p.BytesPerReceiver = float64(p.SessionBytes+p.FixedBytes) / float64(totR)
	}
	return p, nil
}

// String renders the plan the way the planetary driver logs it.
func (p *MemoryPlan) String() string {
	return fmt.Sprintf("plan: %d receivers, %d links, %d sessions, %d group(s): %d B steady (%.1f B/receiver) + max(%d B scratch, %d B result) = %d B peak",
		p.Receivers, p.Links, p.Sessions, p.Groups, p.SessionBytes+p.FixedBytes, p.BytesPerReceiver, p.ScratchBytes, p.ResultBytes, p.Total)
}
