package netsim

import (
	"reflect"
	"testing"

	"mlfair/internal/protocol"
)

func runnerCfg(t *testing.T) Config {
	t.Helper()
	cfg, err := Star(10, 0.001, 0.03, SessionConfig{Protocol: protocol.Uncoordinated, Layers: 6}, 8000, 77)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestParallelMatchesSequential: the worker pool returns bit-identical
// results and aggregates for any worker count.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := runnerCfg(t)
	seq, err := RunReplications(cfg, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := RunReplications(cfg, 8, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: parallel results differ from sequential", workers)
		}
		a := Summarize(seq, LinkRedundancyMetric(0, 0))
		b := Summarize(par, LinkRedundancyMetric(0, 0))
		if a != b {
			t.Fatalf("workers=%d: aggregate %v vs sequential %v", workers, b, a)
		}
	}
}

// TestRunnerDefaultsAndErrors covers the GOMAXPROCS default, worker
// clamping, and bad inputs.
func TestRunnerDefaultsAndErrors(t *testing.T) {
	cfg := runnerCfg(t)
	if _, err := RunReplications(cfg, 0, 1); err == nil {
		t.Fatal("zero replications accepted")
	}
	if _, err := RunReplications(cfg, -1, 1); err == nil {
		t.Fatal("negative replications accepted")
	}
	res, err := RunReplications(cfg, 2, 0) // default workers, clamped to n
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0] == nil || res[1] == nil {
		t.Fatalf("bad result slice %v", res)
	}
	bad := cfg
	bad.Packets = 0
	if _, err := RunReplications(bad, 3, 2); err == nil {
		t.Fatal("invalid config accepted by runner")
	}
}

// TestReplicationSeed: the seed stream is deterministic, decorrelated
// across replications, and distinct from the naive base+i stream.
func TestReplicationSeed(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := ReplicationSeed(9, i)
		if seen[s] {
			t.Fatalf("seed collision at replication %d", i)
		}
		seen[s] = true
		if s == 9+uint64(i) {
			t.Fatalf("replication %d seed equals naive stream", i)
		}
	}
	if ReplicationSeed(9, 5) != ReplicationSeed(9, 5) {
		t.Fatal("seed derivation is not stable")
	}
}

func TestMetrics(t *testing.T) {
	cfg := runnerCfg(t)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := SessionRedundancyMetric(0)(res); got != res.SessionRedundancy(0) {
		t.Errorf("SessionRedundancyMetric %v", got)
	}
	if got := ReceiverRateMetric(0, 3)(res); got != res.ReceiverRates[0][3] {
		t.Errorf("ReceiverRateMetric %v", got)
	}
	mean := MeanReceiverRateMetric()(res)
	sum := 0.0
	for _, v := range res.ReceiverRates[0] {
		sum += v
	}
	if want := sum / float64(len(res.ReceiverRates[0])); mean != want {
		t.Errorf("MeanReceiverRateMetric %v, want %v", mean, want)
	}
	// The session's busiest link is the shared link on a star.
	if res.SessionRedundancy(0) != res.LinkRedundancy(0, 0) {
		t.Errorf("SessionRedundancy %v != shared-link redundancy %v",
			res.SessionRedundancy(0), res.LinkRedundancy(0, 0))
	}
	if res.LinkRedundancy(0, 5) != 0 {
		t.Errorf("redundancy for absent session should be 0")
	}
}
