package netsim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"mlfair/internal/netmodel"
	"mlfair/internal/protocol"
)

func starCfg(t *testing.T, n int, sharedLoss, fanoutLoss float64, kind protocol.Kind, packets int, seed uint64) Config {
	t.Helper()
	cfg, err := Star(n, sharedLoss, fanoutLoss, SessionConfig{Protocol: kind, Layers: 8}, packets, seed)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestPerfectLinksRedundancyOne: with lossless links every receiver
// climbs to the full stack and receives every packet that crosses, so
// Definition 3 redundancy is 1 on every link and receiver goodput
// approaches the full cumulative rate 2^(M-1).
func TestPerfectLinksRedundancyOne(t *testing.T) {
	cfg, err := Star(5, 0, 0, SessionConfig{Protocol: protocol.Deterministic, Layers: 6}, 40000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for j := range cfg.Links {
		cfg.Links[j] = LinkSpec{} // Perfect
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range res.Links {
		if math.Abs(ls.Redundancy-1) > 1e-9 {
			t.Errorf("link %d redundancy %v, want 1", ls.Link, ls.Redundancy)
		}
	}
	full := 32.0 // cumulative rate of 6 exponential layers
	for _, rate := range res.ReceiverRates[0] {
		if rate < 0.9*full || rate > full+1e-9 {
			t.Errorf("receiver rate %v, want near %v", rate, full)
		}
	}
}

// TestLossDrivesRedundancyAboveOne: independent fanout loss decorrelates
// receivers, so the shared link carries more than the best receiver gets.
func TestLossDrivesRedundancyAboveOne(t *testing.T) {
	cfg := starCfg(t, 30, 0.0001, 0.05, protocol.Uncoordinated, 60000, 11)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	red := res.LinkRedundancy(0, 0)
	if red <= 1.1 {
		t.Fatalf("shared-link redundancy %v, want clearly above 1", red)
	}
	if res.PacketsSent != cfg.Packets {
		t.Fatalf("sent %d, want %d", res.PacketsSent, cfg.Packets)
	}
}

// TestDeterminism: equal seeds give identical results, field for field,
// on a config exercising churn, droptail queues, and capacity links.
func TestDeterminism(t *testing.T) {
	cfg, bb, err := Mesh(2, 3, LinkSpec{Kind: DropTail, Capacity: 40, Buffer: 8, Delay: 0.01},
		0.02, SessionConfig{Protocol: protocol.Deterministic, Layers: 6}, 30000, 42)
	if err != nil {
		t.Fatal(err)
	}
	_ = bb
	cfg.Churn = UniformChurn(cfg.Network, 25, 10, 400)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different results")
	}
	cfg.Seed = 43
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical results")
	}
}

// TestChurnStopsDelivery: a receiver that leaves stops accumulating
// goodput; after it rejoins it resumes from the base layer.
func TestChurnStopsDelivery(t *testing.T) {
	cfg := starCfg(t, 2, 0, 0, protocol.Deterministic, 40000, 9)
	// Receiver 1 leaves early and stays out.
	cfg.Churn = []ChurnEvent{{Time: 10, Session: 0, Receiver: 1, Join: false}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReceiverRates[0][1] >= 0.2*res.ReceiverRates[0][0] {
		t.Fatalf("departed receiver rate %v vs staying receiver %v", res.ReceiverRates[0][1], res.ReceiverRates[0][0])
	}
	// Its fanout link (link 2) must carry almost nothing after the leave
	// thanks to pruning.
	var stay, gone int
	for _, ls := range res.Links {
		switch ls.Link {
		case 1:
			stay = ls.Crossed
		case 2:
			gone = ls.Crossed
		}
	}
	if gone >= stay/4 {
		t.Fatalf("pruning failed: departed fanout crossed %d vs staying %d", gone, stay)
	}
}

// TestChurnRejoinRestartsAtBase: immediately after a rejoin the receiver
// is subscribed to the base layer only, so the pruned fanout link's
// instantaneous demand restarts from 1 (observed via total crossings
// being far below an always-on receiver's).
func TestChurnRejoinRestartsAtBase(t *testing.T) {
	cfg := starCfg(t, 2, 0, 0, protocol.Deterministic, 30000, 9)
	cfg.Churn = []ChurnEvent{
		{Time: 50, Session: 0, Receiver: 1, Join: false},
		{Time: 200, Session: 0, Receiver: 1, Join: true},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := res.ReceiverRates[0][0], res.ReceiverRates[0][1]
	if r1 <= 0 {
		t.Fatal("rejoined receiver never received")
	}
	if r1 >= r0 {
		t.Fatalf("rejoined receiver rate %v not below always-on %v", r1, r0)
	}
}

// TestDropTailCapsThroughput: a droptail bottleneck at rate C keeps the
// receiver's goodput at or below C even though the full stack demands
// far more.
func TestDropTailCapsThroughput(t *testing.T) {
	cfg := starCfg(t, 1, 0, 0, protocol.Deterministic, 60000, 5)
	cfg.Links[0] = LinkSpec{Kind: DropTail, Capacity: 10, Buffer: 4, Delay: 0.05}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := res.ReceiverRates[0][0]
	if rate > 10+1e-9 {
		t.Fatalf("goodput %v exceeds service rate 10", rate)
	}
	if rate < 4 {
		t.Fatalf("goodput %v implausibly low for a rate-10 bottleneck", rate)
	}
}

// TestBackgroundStealsCapacity: background cross-traffic on a
// capacity-coupled bottleneck lowers the session's achieved rates.
func TestBackgroundStealsCapacity(t *testing.T) {
	base := starCfg(t, 3, 0, 0, protocol.Deterministic, 60000, 21)
	for j := range base.Links {
		base.Links[j] = LinkSpec{Kind: Capacity, Capacity: 1000}
	}
	base.Links[0] = LinkSpec{Kind: Capacity, Capacity: 20}
	free, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	loaded := base
	loaded.Links = append([]LinkSpec{}, base.Links...)
	loaded.Links[0].Background = 15
	busy, err := Run(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if busy.MaxReceiverRate() >= 0.8*free.MaxReceiverRate() {
		t.Fatalf("background load did not bite: free %v vs loaded %v",
			free.MaxReceiverRate(), busy.MaxReceiverRate())
	}
}

// TestSaturatedDropTailDeliversNothing: background at or above the
// service rate starves the link completely.
func TestSaturatedDropTailDeliversNothing(t *testing.T) {
	cfg := starCfg(t, 1, 0, 0, protocol.Deterministic, 5000, 5)
	cfg.Links[0] = LinkSpec{Kind: DropTail, Capacity: 10, Background: 10}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReceiverRates[0][0] != 0 {
		t.Fatalf("goodput %v through a saturated link", res.ReceiverRates[0][0])
	}
}

func TestValidation(t *testing.T) {
	good := starCfg(t, 2, 0.01, 0.02, protocol.Deterministic, 100, 1)
	cases := []struct {
		name string
		mut  func(c *Config)
		want string
	}{
		{"nil network", func(c *Config) { c.Network = nil }, "nil network"},
		{"session count", func(c *Config) { c.Sessions = nil }, "session configs"},
		{"link count", func(c *Config) { c.Links = c.Links[:1] }, "link specs"},
		{"packets", func(c *Config) { c.Packets = 0 }, "Packets"},
		{"layers", func(c *Config) { c.Sessions = []SessionConfig{{Layers: 0}} }, "Layers"},
		{"loss range", func(c *Config) { c.Links[0].Loss = 1.5 }, "loss"},
		{"churn session", func(c *Config) { c.Churn = []ChurnEvent{{Session: 9}} }, "out of range"},
		{"churn receiver", func(c *Config) { c.Churn = []ChurnEvent{{Receiver: 9}} }, "out of range"},
		{"churn time", func(c *Config) { c.Churn = []ChurnEvent{{Time: -1}} }, "negative time"},
		{"signal period", func(c *Config) { c.SignalPeriod = -1 }, "SignalPeriod"},
	}
	for _, tc := range cases {
		c := good
		c.Links = append([]LinkSpec{}, good.Links...)
		tc.mut(&c)
		_, err := Run(c)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestAbstractNetworkRejected: Builder networks have no concrete nodes
// to forward over.
func TestAbstractNetworkRejected(t *testing.T) {
	b := netmodel.NewBuilder()
	l := b.AddLink(4)
	s := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	b.SetPath(s, 0, l)
	cfg := Config{
		Network:  b.MustBuild(),
		Sessions: []SessionConfig{{Protocol: protocol.Deterministic, Layers: 2}},
		Packets:  10,
	}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "abstract") {
		t.Fatalf("abstract network accepted: %v", err)
	}
}

// TestNonTreePathsRejected: two receivers reaching one node over
// different links cannot be served by a single multicast tree.
func TestNonTreePathsRejected(t *testing.T) {
	g := netmodel.NewGraph(4)
	a := g.AddLink(0, 1, 1)
	b := g.AddLink(0, 2, 1)
	c := g.AddLink(1, 3, 1)
	d := g.AddLink(2, 3, 1)
	s := &netmodel.Session{Sender: 0, Receivers: []int{3, 3}, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	net, err := netmodel.NewNetwork(g, []*netmodel.Session{s}, [][][]int{{{a, c}, {b, d}}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Network:  net,
		Sessions: []SessionConfig{{Protocol: protocol.Deterministic, Layers: 2}},
		Packets:  10,
	}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "tree") {
		t.Fatalf("non-tree paths accepted: %v", err)
	}
}

func TestLinkKindString(t *testing.T) {
	for k, want := range map[LinkKind]string{
		Perfect: "perfect", Bernoulli: "bernoulli", Capacity: "capacity",
		DropTail: "droptail", LinkKind(9): "LinkKind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}
