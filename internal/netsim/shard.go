package netsim

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Session-sharded execution (Config.Shards >= 1).
//
// Sessions whose multicast trees share no link cannot interact: they
// touch disjoint link state, observe disjoint losses, and the engine's
// event order only couples them through the global packet budget and
// the shared RNG stream. Grouping sessions by link-connectivity
// (union-find over the links their data-paths traverse) therefore
// splits one replication into independent sub-simulations — each group
// gets its own engine, its own calendar and event queue, and its own
// PCG stream derived from the replication seed — which run concurrently
// on up to Shards goroutines and are merged into one Result afterwards.
//
// Determinism argument, piece by piece:
//
//   - Budget. The sequential engine stops at exactly Packets
//     transmissions, interleaving sessions by (earliest calendar entry,
//     lowest session index). That interleaving is a pure function of
//     the sessions' layer counts — calendars never depend on event
//     outcomes — so a cheap calendar-only replay (groupBudgets)
//     computes, up front, how many of the Packets transmissions belong
//     to each group and the time T of the final transmission. Each
//     group engine then runs against its own budget and matches the
//     sequential cut exactly, including a budget that runs out midway
//     through a tick's due-layer range.
//
//   - Horizon. The sequential engine processes a scheduled event iff it
//     precedes some transmission: time < T, or time == T with
//     packet priority (signals yield to same-instant transmissions).
//     After its budget is spent, a group engine drains its queue by
//     that exact rule and then sets its clock to T, so time-integrated
//     outputs (MeanLevels, FluidRate, rates) integrate over the same
//     duration the sequential engine would.
//
//   - Signals. The Coordinated signal clock ticks at fixed multiples of
//     SignalPeriod and consumes no randomness, so per-group clocks fire
//     at identical instants with identical signal indices; a group
//     without Coordinated sessions skips the clock, which is an exact
//     no-op for it (signal delivery only touches a group's own
//     sessions).
//
//   - RNG. Group g draws from shardSeed(Seed, g), a pure function of
//     the replication seed and the (topology-determined) group number —
//     never of Shards. Shards therefore only caps goroutine
//     concurrency: every Shards >= 1 produces the identical Result.
//     Group 0 keeps the replication seed itself, so a network whose
//     sessions all share one component (every committed benchmark
//     topology) produces the byte-identical Result in sharded and
//     sequential mode alike.
//
// What sharded mode deliberately does not reproduce is the sequential
// engine's RNG interleaving ACROSS link-sharing groups: a multi-group
// run's Result differs from the Shards == 0 run the way two different
// seeds differ, while remaining a pure function of the Config.

// shardSalt decorrelates per-group seeds from the replication-seed
// sequence (ReplicationSeed(seed, i) is already used for replication
// fan-out; group fan-out must not collide with it).
const shardSalt = 0x7c15d1a55eed5a17

// shardSeed derives group g's RNG seed. Group 0 inherits the
// replication seed unchanged — the single-group case is then
// stream-identical to the sequential engine.
func shardSeed(base uint64, g int) uint64 {
	if g == 0 {
		return base
	}
	return ReplicationSeed(base^shardSalt, g)
}

// sessionGroupsOf partitions cfg's sessions into link-connectivity
// components: two sessions share a group iff their data-paths share a
// link, transitively. Union-find over links plus one element per
// session; group numbers are assigned in order of each component's
// lowest session index, so the numbering is a pure function of the
// topology — never of Shards.
func sessionGroupsOf(cfg Config) (groupOf []int, numGroups int) {
	net := cfg.Network
	nL, S := net.NumLinks(), net.NumSessions()
	// Element i < nL is link i; element nL+i is session i.
	parent := make([]int32, nL+S)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i := 0; i < S; i++ {
		si := int32(nL + i)
		ns := net.Session(i)
		for k := range ns.Receivers {
			for _, j := range net.Path(i, k) {
				union(si, int32(j))
			}
		}
	}
	groupOf = make([]int, S)
	gid := make([]int, nL+S)
	for i := range gid {
		gid[i] = -1
	}
	for i := 0; i < S; i++ {
		r := find(int32(nL + i))
		if gid[r] < 0 {
			gid[r] = numGroups
			numGroups++
		}
		groupOf[i] = gid[r]
	}
	return groupOf, numGroups
}

// groupBudgets replays the transmit calendar alone — no events, no
// RNG — to split the global packet budget across groups and find the
// horizon T: the instant of the run's final sender transmission, which
// is where the sequential engine's clock stops. The replay duplicates
// the engine's tick arithmetic exactly (same float products, same
// lowest-index tie-break), so the cut is bit-faithful.
func groupBudgets(cfg Config, groupOf []int, numGroups int) (budgets []int, horizon float64) {
	S := cfg.Network.NumSessions()
	budgets = make([]int, numGroups)
	tick := make([]uint64, S)
	tickDt := make([]float64, S)
	mOf := make([]int32, S)
	txCal := make([]float64, S)
	for i := 0; i < S; i++ {
		m := cfg.Sessions[i].Layers
		mOf[i] = int32(m)
		// period[M-1] = 1/LayerRate(M-1); the scheme's finest layer rate
		// is 2^(M-2) for M >= 2 and 1 for M == 1, exactly as
		// layering.Exponential constructs it.
		rate := 1.0
		if m >= 2 {
			rate = float64(uint64(1) << uint(m-2))
		}
		tickDt[i] = 1 / rate
		txCal[i] = tickDt[i]
	}
	sent := 0
	for sent < cfg.Packets {
		ts := math.Inf(1)
		si := -1
		for i, tx := range txCal {
			if tx < ts {
				ts = tx
				si = i
			}
		}
		n := tick[si] + 1
		lo := mOf[si] - 1 - int32(bits.TrailingZeros64(n))
		if lo <= 1 {
			lo = 0
		}
		fire := int(mOf[si] - lo)
		if sent+fire > cfg.Packets {
			fire = cfg.Packets - sent
		}
		budgets[groupOf[si]] += fire
		sent += fire
		horizon = ts
		tick[si] = n
		txCal[si] = float64(n+1) * tickDt[si]
	}
	return budgets, horizon
}

// runShard executes one group engine against its transmission budget,
// then drains the scheduled events the sequential engine would have
// processed before the global horizon and parks the clock there. The
// main loop is the sequential Run loop verbatim (modulo the budget),
// including the probe hooks: every group flushes the same time-window
// boundary grid (boundaries are multiples of Window below the shared
// horizon), so per-group rings merge window-by-window at result time.
// Transmissions route through forwardSubtree on engines whose single
// session was partitioned (e.part non-nil).
func (e *engine) runShard(budget int, horizon float64) {
	for e.sent < budget {
		var ts float64
		var si int
		if e.calUniform {
			si = e.calCursor
			ts = e.txCal[si]
		} else {
			ts = math.Inf(1)
			si = -1
			for i, tx := range e.txCal {
				if tx < ts {
					ts = tx
					si = i
				}
			}
		}
		for len(e.q.a) > 0 {
			top := &e.q.a[0]
			if top.time > ts || (top.time == ts && top.key >= prioSignal) {
				break
			}
			ev := e.q.pop()
			if e.probe != nil {
				e.probe.advanceTime(e, ev.time)
			}
			e.now = ev.time
			e.pops++
			switch ev.kind {
			case evForward:
				e.popForward++
				e.dispatch(&e.sess[ev.sess], ev.layer, ev.node, e.now)
			case evChurn:
				e.popChurn++
				e.applyChurn(e.churn[ev.node])
			case evSignal:
				e.popSignal++
				e.signal()
			}
		}
		if e.probe != nil {
			e.probe.advanceTime(e, ts)
		}
		e.now = ts
		s := &e.sess[si]
		n := s.tick + 1
		lo := s.m - 1 - int32(bits.TrailingZeros64(n))
		if lo <= 1 {
			lo = 0
		}
		for l := lo; l < s.m && e.sent < budget; l++ {
			e.sent++
			if s.linger != nil {
				e.forwardLinger(s, l, 0, ts)
			} else if s.subMax[0] > l {
				if e.part != nil {
					e.forwardSubtree(s, l)
				} else {
					e.forward(s, l, 0, ts)
				}
			}
			if e.probe != nil {
				e.probe.advancePackets(e, ts)
			}
		}
		s.tick = n
		e.txCal[si] = float64(n+1) * s.tickDt
		e.ticksFired++
		if e.calUniform {
			if e.calCursor++; e.calCursor == len(e.sess) {
				e.calCursor = 0
			}
		}
	}
	// Post-budget drain: exactly the events that precede some later
	// transmission of another group — time < T, or time == T with
	// packet priority. Everything else dies in the queue, as it would
	// have in the sequential engine.
	for len(e.q.a) > 0 {
		top := &e.q.a[0]
		if top.time > horizon || (top.time == horizon && top.key >= prioSignal) {
			break
		}
		ev := e.q.pop()
		if e.probe != nil {
			e.probe.advanceTime(e, ev.time)
		}
		e.now = ev.time
		e.pops++
		switch ev.kind {
		case evForward:
			e.popForward++
			e.dispatch(&e.sess[ev.sess], ev.layer, ev.node, e.now)
		case evChurn:
			e.popChurn++
			e.applyChurn(e.churn[ev.node])
		case evSignal:
			e.popSignal++
			e.signal()
		}
	}
	// Flush every window boundary strictly below the shared horizon, so
	// group rings line up sample-for-sample regardless of when each
	// group's own activity stopped; finish() then adds the common tail.
	if e.probe != nil {
		e.probe.advanceTime(e, horizon)
	}
	e.now = horizon
}

// runSharded is Run's Shards >= 1 path: partition, replay the calendar
// for budgets, build one engine per group, run them on at most
// cfg.Shards goroutines, merge.
func runSharded(cfg Config) (*Result, error) {
	net := cfg.Network
	S := net.NumSessions()
	if S == 0 {
		// Match the sequential engine's diagnosis for a run that can
		// never transmit.
		return nil, fmt.Errorf("netsim: event queue drained before packet budget")
	}
	groupOf, numGroups := sessionGroupsOf(cfg)
	if cfg.Probe != nil && cfg.Probe.PacketWindow > 0 && numGroups > 1 {
		// Packet-window boundaries count transmissions across ALL
		// sessions in one global order; group engines only see their own
		// budgets, so the windows cannot be reconstructed after the
		// split. Time windows shard fine (the boundary grid is global).
		return nil, fmt.Errorf("netsim: packet-window probing is not supported across %d shard groups (packet boundaries interleave all sessions); use a time Window or Shards on a single-component topology", numGroups)
	}
	budgets, horizon := groupBudgets(cfg, groupOf, numGroups)
	groups := make([][]int, numGroups)
	for i := 0; i < S; i++ {
		groups[groupOf[i]] = append(groups[groupOf[i]], i)
	}
	localIdx := make([]int, S)
	for _, ids := range groups {
		for li, gi := range ids {
			localIdx[gi] = li
		}
	}
	churnFor := make([][]ChurnEvent, numGroups)
	for _, ev := range cfg.Churn {
		g := groupOf[ev.Session]
		lev := ev
		lev.Session = localIdx[ev.Session]
		churnFor[g] = append(churnFor[g], lev)
	}
	engines := make([]*engine, numGroups)
	for g := range engines {
		e, err := newEngineFor(cfg, groups[g], churnFor[g], shardSeed(cfg.Seed, g))
		if err != nil {
			return nil, err
		}
		engines[g] = e
	}
	workers := cfg.Shards
	if workers > numGroups {
		workers = numGroups
	}
	// Partitioned engines (single giant session) spend the rest of the
	// Shards budget on intra-session fan-out workers. Purely a
	// parallelism split: worker counts never reach any output.
	wPer := cfg.Shards / numGroups
	if wPer < 1 {
		wPer = 1
	}
	for _, e := range engines {
		if e.part != nil {
			e.part.setWorkers(wPer)
		}
	}
	if workers <= 1 {
		for g, e := range engines {
			e.runShard(budgets[g], horizon)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for g := range engines {
			wg.Add(1)
			sem <- struct{}{}
			go func(g int) {
				defer wg.Done()
				engines[g].runShard(budgets[g], horizon)
				<-sem
			}(g)
		}
		wg.Wait()
	}
	for _, e := range engines {
		if e.part != nil {
			e.part.stop()
		}
	}
	if numGroups == 1 {
		// The single group owns every session under the replication
		// seed: result() already produces the sequential engine's exact
		// output (gsess is the identity).
		return engines[0].result(), nil
	}
	return mergedResult(cfg, engines, horizon), nil
}

// mergedResult assembles the global Result from the group engines'
// state, in global session order, with every derived quantity computed
// the way the sequential result() computes it.
func mergedResult(cfg Config, engines []*engine, horizon float64) *Result {
	net := cfg.Network
	S := net.NumSessions()
	res := &Result{
		ReceiverRates:   make([][]float64, S),
		ReceiverPackets: make([][]int, S),
		FinalLevels:     make([][]int, S),
		MeanLevels:      make([]float64, S),
		Duration:        horizon,
	}
	totR := 0
	for i := 0; i < S; i++ {
		totR += net.Session(i).NumReceivers()
	}
	if cfg.Probe != nil {
		for _, e := range engines {
			e.probe.finish(e)
		}
		res.Probe = mergedProbeSeries(cfg, engines)
	}
	rateBuf := make([]float64, totR)
	pktBuf := make([]int, totR)
	lvlBuf := make([]int, totR)
	off := 0
	offOf := make([]int, S)
	for i := 0; i < S; i++ {
		nR := net.Session(i).NumReceivers()
		offOf[i] = off
		res.ReceiverRates[i] = rateBuf[off : off+nR : off+nR]
		res.ReceiverPackets[i] = pktBuf[off : off+nR : off+nR]
		res.FinalLevels[i] = lvlBuf[off : off+nR : off+nR]
		off += nR
	}
	nL := net.NumLinks()
	linkCrossed := make([]int, S*nL)
	linkDropped := make([]int, S*nL)
	linkFluid := make([]float64, S*nL)
	for _, e := range engines {
		res.PacketsSent += e.sent
		res.Events += int64(e.sent) + e.pops
		for li := range e.sess {
			s := &e.sess[li]
			gi := e.gsess[li]
			for _, n := range s.crossed {
				res.Events += n
			}
			if horizon > 0 && len(s.received) > 0 {
				levelInt := e.sessionLevelIntegral(s, horizon)
				res.MeanLevels[gi] = levelInt / horizon / float64(len(s.received))
			}
			for k, n := range s.received {
				res.ReceiverPackets[gi][k] = n
				res.FinalLevels[gi][k] = int(s.levels[k])
				res.Events += int64(n)
				if horizon > 0 {
					res.ReceiverRates[gi][k] = float64(n) / horizon
				}
			}
			base := gi * nL
			for eid := range s.hot {
				j := base + int(s.hot[eid].link)
				linkCrossed[j] = int(s.crossed[eid])
				linkDropped[j] = int(s.cold[eid].drops)
				if horizon > 0 {
					fluid := s.fluidInt[eid] + s.cum[s.edgeSub[eid]]*(horizon-s.fluidT[eid])
					linkFluid[j] = fluid / horizon
				}
			}
		}
	}
	total := 0
	for j := 0; j < nL; j++ {
		total += len(net.OnLink(j))
	}
	res.Links = make([]LinkStats, 0, total)
	for j := 0; j < nL; j++ {
		for _, sr := range net.OnLink(j) {
			at := sr.Session*nL + j
			ls := LinkStats{
				Link: j, Session: sr.Session,
				Crossed:             linkCrossed[at],
				Dropped:             linkDropped[at],
				FluidRate:           linkFluid[at],
				DownstreamReceivers: len(sr.Receivers),
			}
			if horizon > 0 {
				ls.Rate = float64(ls.Crossed) / horizon
				best := 0.0
				for _, k := range sr.Receivers {
					if r := res.ReceiverRates[sr.Session][k]; r > best {
						best = r
					}
				}
				if best > 0 {
					ls.Redundancy = ls.Rate / best
				}
			}
			res.Links = append(res.Links, ls)
		}
	}
	mergedFlushStats(cfg.Stats, engines, res, horizon)
	return res
}

// mergedFlushStats publishes one sharded run into cfg.Stats: counter
// sums over the group engines, one Runs increment for the one logical
// run, and the shared horizon added to virtual time once.
func mergedFlushStats(st *EngineStats, engines []*engine, res *Result, horizon float64) {
	if st == nil {
		return
	}
	st.Runs.Inc()
	var sent, ticks, fwd, churn, sig int64
	var crossed, drops, delivered int64
	heapHW := 0
	for _, e := range engines {
		sent += int64(e.sent)
		ticks += e.ticksFired
		fwd += e.popForward
		churn += e.popChurn
		sig += e.popSignal
		for i := range e.sess {
			s := &e.sess[i]
			for eid := range s.hot {
				crossed += s.crossed[eid]
				drops += s.cold[eid].drops
			}
			for _, n := range s.received {
				delivered += int64(n)
			}
		}
		if e.heapHW > heapHW {
			heapHW = e.heapHW
		}
	}
	st.Transmissions.Add(sent)
	st.CalendarTicks.Add(ticks)
	st.ForwardEvents.Add(fwd)
	st.ChurnEvents.Add(churn)
	st.SignalEvents.Add(sig)
	st.Crossings.Add(crossed)
	st.Drops.Add(drops)
	st.Deliveries.Add(delivered)
	st.Events.Add(res.Events)
	st.HeapHighWater.SetMax(int64(heapHW))
	st.VirtualTime.Add(horizon)
}
