package netsim

import (
	"math"
	"math/rand/v2"
	"testing"

	"mlfair/internal/netmodel"
	"mlfair/internal/protocol"
	"mlfair/internal/routing"
	"mlfair/internal/topology"
)

// FuzzConfigValidation drives raw, unclamped values through Config
// validation and — when a config survives — a short run. The contract
// under fuzz: never panic; reject malformed configs (NaN/Inf floats,
// out-of-range layers, bad churn) with an error; on acceptance, spend
// the packet budget exactly and keep every invariant checkInvariants
// asserts.
//
// Run the stored corpus with the normal test suite, or explore with:
//
//	go test -fuzz FuzzConfigValidation ./internal/netsim
func FuzzConfigValidation(f *testing.F) {
	f.Add(uint8(8), uint8(2), uint8(3), uint8(3), int16(8), uint8(1), 0.05, 10.0, uint16(2000), uint64(7), false)
	f.Add(uint8(2), uint8(1), uint8(1), uint8(1), int16(1), uint8(0), 0.0, 1.0, uint16(1), uint64(0), false)
	f.Add(uint8(30), uint8(3), uint8(6), uint8(4), int16(10), uint8(2), 0.5, 64.0, uint16(5000), uint64(99), true)
	f.Add(uint8(12), uint8(1), uint8(2), uint8(2), int16(33), uint8(3), math.NaN(), math.Inf(1), uint16(100), uint64(3), false)
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), int16(-1), uint8(9), -1.0, -5.0, uint16(0), uint64(1), true)
	f.Fuzz(func(t *testing.T, nodes, attach, sessions, maxRecv uint8, layers int16, kindSel uint8, loss, capacity float64, packets uint16, seed uint64, churn bool) {
		rng := rand.New(rand.NewPCG(seed, seed^0xabcd))
		net, err := topology.ScaleFree(rng, topology.ScaleFreeOptions{
			Nodes: int(nodes), Attach: int(attach), Sessions: int(sessions),
			MaxReceivers: int(maxRecv), CapMin: 1, CapMax: 32,
		})
		if err != nil {
			return // generator rejected the shape; nothing to simulate
		}
		cfg := Config{
			Network:  net,
			Links:    make([]LinkSpec, net.NumLinks()),
			Sessions: make([]SessionConfig, net.NumSessions()),
			Packets:  int(packets),
			Seed:     seed,
		}
		for j := range cfg.Links {
			switch kindSel % 5 {
			case 0:
				cfg.Links[j] = LinkSpec{}
			case 1:
				cfg.Links[j] = LinkSpec{Kind: Bernoulli, Loss: loss}
			case 2:
				cfg.Links[j] = LinkSpec{Kind: Capacity, Capacity: capacity, Background: loss}
			case 3:
				cfg.Links[j] = LinkSpec{Kind: DropTail, Capacity: capacity, Buffer: int(attach), Delay: loss}
			case 4:
				cfg.Links[j] = LinkSpec{Kind: LinkKind(kindSel)} // possibly unknown kind
			}
		}
		for i := range cfg.Sessions {
			cfg.Sessions[i] = SessionConfig{
				Protocol: protocol.Kind(int(kindSel) % 3),
				Layers:   int(layers),
			}
		}
		if churn {
			cfg.Churn = UniformChurn(net, 2, 3, 40)
		}
		res, err := Run(cfg)
		if err != nil {
			return // rejected with a clean error: the accepted outcome
		}
		if res.PacketsSent != cfg.Packets {
			t.Fatalf("sent %d, budget %d", res.PacketsSent, cfg.Packets)
		}
		checkInvariants(t, cfg, res)
	})
}

// FuzzStarBuilder fuzzes the Star builder's parameter validation and a
// short run on acceptance: no panics on arbitrary sizes and loss rates.
func FuzzStarBuilder(f *testing.F) {
	f.Add(int16(10), 0.001, 0.05, int16(6), uint16(2000), uint64(1))
	f.Add(int16(0), -1.0, 2.0, int16(0), uint16(0), uint64(0))
	f.Add(int16(300), math.NaN(), math.Inf(-1), int16(40), uint16(65535), uint64(42))
	f.Fuzz(func(t *testing.T, n int16, sharedLoss, fanoutLoss float64, layers int16, packets uint16, seed uint64) {
		cfg, err := Star(int(n), sharedLoss, fanoutLoss,
			SessionConfig{Protocol: protocol.Deterministic, Layers: int(layers)}, int(packets), seed)
		if err != nil {
			return
		}
		res, err := Run(cfg)
		if err != nil {
			return
		}
		if res.PacketsSent != cfg.Packets {
			t.Fatalf("sent %d, budget %d", res.PacketsSent, cfg.Packets)
		}
	})
}

// FuzzHandPaths fuzzes the engine's tree-assembly validation with
// hand-built (non-routed) data-paths: arbitrary path shapes must either
// be rejected ("do not form a tree") or simulate cleanly.
func FuzzHandPaths(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(2), uint16(500))
	f.Add(uint64(9), uint8(8), uint8(5), uint16(100))
	f.Fuzz(func(t *testing.T, seed uint64, nodes, links uint8, packets uint16) {
		nn := 2 + int(nodes%12)
		nl := 1 + int(links%24)
		rng := rand.New(rand.NewPCG(seed, 17))
		g := netmodel.NewGraph(nn)
		for j := 0; j < nl; j++ {
			a, b := rng.IntN(nn), rng.IntN(nn)
			if a == b {
				continue
			}
			g.AddLink(a, b, 1+rng.Float64()*8)
		}
		if g.NumLinks() == 0 {
			return
		}
		// Random walks from a sender; they may or may not form a tree.
		sender := rng.IntN(nn)
		nr := 1 + rng.IntN(3)
		receivers := make([]int, 0, nr)
		paths := make([][]int, 0, nr)
		for r := 0; r < nr; r++ {
			cur := sender
			var p []int
			seen := map[int]bool{}
			for hop := 0; hop < 6; hop++ {
				inc := g.Incident(cur)
				if len(inc) == 0 {
					break
				}
				j := inc[rng.IntN(len(inc))]
				if seen[j] {
					break
				}
				seen[j] = true
				p = append(p, j)
				cur = g.Other(j, cur)
			}
			if cur == sender {
				return // receiver at sender with a cyclic walk; skip
			}
			receivers = append(receivers, cur)
			paths = append(paths, p)
		}
		s := &netmodel.Session{Sender: sender, Receivers: receivers, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
		net, err := netmodel.NewNetwork(g, []*netmodel.Session{s}, [][][]int{paths})
		if err != nil {
			return
		}
		cfg := Config{
			Network:  net,
			Sessions: []SessionConfig{{Protocol: protocol.Coordinated, Layers: 4}},
			Packets:  1 + int(packets%2000),
			Seed:     seed,
		}
		res, err := Run(cfg)
		if err != nil {
			return // non-tree paths rejected with a clean error
		}
		if res.PacketsSent != cfg.Packets {
			t.Fatalf("sent %d, budget %d", res.PacketsSent, cfg.Packets)
		}
		// Routed check must agree with the engine's acceptance.
		if err := routing.TreeCheck(net, 0); err != nil {
			t.Fatalf("engine accepted non-tree paths: %v", err)
		}
	})
}
