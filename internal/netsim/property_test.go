package netsim

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"mlfair/internal/protocol"
	"mlfair/internal/topology"
)

// randomConfig builds a random but valid engine config over a random
// connected topology: random link models (all four kinds), random
// per-session protocols and layer depths, and sometimes churn. It is
// the generator behind the invariant suite and mirrors what the fuzz
// targets explore.
func randomConfig(rng *rand.Rand) Config {
	o := topology.DefaultRandomOptions()
	o.Nodes = 6 + rng.IntN(18)
	o.ExtraLinks = rng.IntN(5)
	o.Sessions = 1 + rng.IntN(5)
	o.MaxReceivers = 1 + rng.IntN(5)
	o.SingleRateProb = 0 // session Type is irrelevant to the engine
	net := topology.RandomNetwork(rng, o)
	cfg := Config{
		Network:  net,
		Links:    make([]LinkSpec, net.NumLinks()),
		Sessions: make([]SessionConfig, net.NumSessions()),
		Packets:  2000 + rng.IntN(4000),
		Seed:     rng.Uint64(),
	}
	for j := range cfg.Links {
		switch rng.IntN(4) {
		case 0:
			cfg.Links[j] = LinkSpec{} // Perfect
		case 1:
			cfg.Links[j] = LinkSpec{Kind: Bernoulli, Loss: rng.Float64() * 0.2}
		case 2:
			cfg.Links[j] = LinkSpec{Kind: Capacity, Capacity: 1 + rng.Float64()*40, Background: rng.Float64() * 4}
		case 3:
			cfg.Links[j] = LinkSpec{Kind: DropTail, Capacity: 1 + rng.Float64()*40,
				Buffer: rng.IntN(12), Delay: rng.Float64() * 0.05, Background: rng.Float64() * 2}
		}
	}
	for i := range cfg.Sessions {
		cfg.Sessions[i] = SessionConfig{
			Protocol: protocol.Kinds()[rng.IntN(3)],
			Layers:   1 + rng.IntN(10),
		}
	}
	if rng.IntN(2) == 0 {
		cfg.SignalPeriod = 0.25 + rng.Float64()
	}
	if rng.IntN(2) == 0 {
		cfg.Churn = UniformChurn(net, 1+rng.Float64()*4, 1+rng.Float64()*4, 60)
	}
	return cfg
}

// checkInvariants asserts the engine's conservation laws on one result:
//
//   - the packet budget is spent exactly;
//   - a receiver never gets more packets than its session pushed across
//     any link on its data-path (packets delivered <= packets sent);
//   - per-link crossings never exceed the session's transmissions, and
//     Rate is exactly Crossed over the duration;
//   - Definition 3 redundancy sits in [0, PacketsSent];
//   - final subscription levels sit in [1, M] for joined receivers, 0
//     only for churned-out ones.
func checkInvariants(t *testing.T, cfg Config, res *Result) {
	t.Helper()
	if res.PacketsSent != cfg.Packets {
		t.Fatalf("sent %d, budget %d", res.PacketsSent, cfg.Packets)
	}
	for i := range res.ReceiverPackets {
		for k, got := range res.ReceiverPackets[i] {
			for _, j := range cfg.Network.Path(i, k) {
				crossed := 0
				for _, ls := range res.Links {
					if ls.Link == j && ls.Session == i {
						crossed = ls.Crossed
					}
				}
				if got > crossed {
					t.Fatalf("receiver %d,%d delivered %d > %d crossings of path link %d", i, k, got, crossed, j)
				}
			}
			if rate := res.ReceiverRates[i][k]; res.Duration > 0 {
				want := float64(got) / res.Duration
				if rate != want {
					t.Fatalf("receiver %d,%d rate %v != packets/duration %v", i, k, rate, want)
				}
			}
		}
	}
	hasChurn := len(cfg.Churn) > 0
	for i, lv := range res.FinalLevels {
		m := cfg.Sessions[i].Layers
		for k, v := range lv {
			if v < 0 || v > m {
				t.Fatalf("receiver %d,%d final level %d outside [0, %d]", i, k, v, m)
			}
			if v == 0 && !hasChurn {
				t.Fatalf("receiver %d,%d departed without churn", i, k)
			}
		}
	}
	for _, ls := range res.Links {
		if ls.Crossed < 0 || ls.Crossed > res.PacketsSent {
			t.Fatalf("link %d session %d crossed %d outside [0, %d]", ls.Link, ls.Session, ls.Crossed, res.PacketsSent)
		}
		if res.Duration > 0 && ls.Rate != float64(ls.Crossed)/res.Duration {
			t.Fatalf("link %d rate %v inconsistent with crossings", ls.Link, ls.Rate)
		}
		if ls.Redundancy < 0 || ls.Redundancy > float64(res.PacketsSent) {
			t.Fatalf("link %d session %d redundancy %v outside [0, sent]", ls.Link, ls.Session, ls.Redundancy)
		}
		if math.IsNaN(ls.Redundancy) || math.IsInf(ls.Redundancy, 0) {
			t.Fatalf("link %d session %d redundancy %v not finite", ls.Link, ls.Session, ls.Redundancy)
		}
	}
}

// TestEngineInvariants drives the engine over a population of random
// topologies, link models, protocols, and churn schedules, asserting
// the conservation laws on every run. Run under -race in CI.
func TestEngineInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 7))
	n := 40
	if testing.Short() {
		n = 8
	}
	for trial := 0; trial < n; trial++ {
		cfg := randomConfig(rng)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkInvariants(t, cfg, res)
	}
}

// TestSubscriptionLevelsWithinBounds: on a churn-free run every
// receiver's level stays in [1, M]; FinalLevels is the observable
// witness, and the perfect-star run guarantees every layer is exercised
// up to M.
func TestSubscriptionLevelsWithinBounds(t *testing.T) {
	cfg, err := Star(12, 0, 0, SessionConfig{Protocol: protocol.Deterministic, Layers: 5}, 20000, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.FinalLevels[0] {
		if v < 1 || v > 5 {
			t.Fatalf("final level %d outside [1, 5]", v)
		}
	}
	// Lossless links must drive everyone to the full stack.
	for k, v := range res.FinalLevels[0] {
		if v != 5 {
			t.Fatalf("receiver %d stuck at level %d on lossless links", k, v)
		}
	}
}

// TestRunnerWorkerBitIdentity: replication results and streamed
// aggregates are bit-identical for 1, 4, and 8 workers — the
// determinism contract the parallel runner advertises. Run under -race
// in CI.
func TestRunnerWorkerBitIdentity(t *testing.T) {
	cfg, err := Star(20, 0.0001, 0.05, SessionConfig{Protocol: protocol.Uncoordinated, Layers: 6}, 8000, 23)
	if err != nil {
		t.Fatal(err)
	}
	const reps = 10
	metrics := []Metric{LinkRedundancyMetric(0, 0), MeanReceiverRateMetric()}
	baseResults, err := RunReplications(cfg, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	baseSums, err := SummarizeReplications(cfg, reps, 1, metrics...)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		results, err := RunReplications(cfg, reps, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(baseResults, results) {
			t.Fatalf("results differ between 1 and %d workers", workers)
		}
		sums, err := SummarizeReplications(cfg, reps, workers, metrics...)
		if err != nil {
			t.Fatal(err)
		}
		// Bitwise equality, not approximate: the accumulation order is
		// pinned to replication order regardless of scheduling.
		if !reflect.DeepEqual(baseSums, sums) {
			t.Fatalf("summaries differ between 1 and %d workers: %v vs %v", workers, baseSums, sums)
		}
	}
}

// TestStreamReplicationsOrderAndError: consume sees indices 0..n-1 in
// order, and its error aborts the stream.
func TestStreamReplicationsOrderAndError(t *testing.T) {
	cfg, err := Star(5, 0, 0.02, SessionConfig{Protocol: protocol.Deterministic, Layers: 4}, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	err = StreamReplications(cfg, 12, 5, func(i int, r *Result) error {
		seen = append(seen, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("out-of-order consumption: %v", seen)
		}
	}
	if len(seen) != 12 {
		t.Fatalf("consumed %d of 12", len(seen))
	}
	wantErr := errSentinel{}
	err = StreamReplications(cfg, 12, 5, func(i int, r *Result) error {
		if i == 3 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("consume error not propagated: %v", err)
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }
