package netsim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"mlfair/internal/protocol"
)

func probeStarConfig(t *testing.T, packets int) Config {
	t.Helper()
	cfg, err := Star(12, 0.001, 0.03,
		SessionConfig{Protocol: protocol.Deterministic, Layers: 6}, packets, 7)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestProbeDoesNotPerturbDynamics: probing is pure measurement — every
// non-Probe Result field is bit-identical with probes on or off, for
// both window modes.
func TestProbeDoesNotPerturbDynamics(t *testing.T) {
	base := probeStarConfig(t, 20000)
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range []*ProbeConfig{
		{Window: 7.5},
		{PacketWindow: 256},
		{Window: 3, MaxSamples: 8},
	} {
		cfg := base
		cfg.Probe = pc
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Probe == nil {
			t.Fatalf("probe %+v produced no series", *pc)
		}
		stripped := *got
		stripped.Probe = nil
		if !reflect.DeepEqual(&stripped, want) {
			t.Fatalf("probe %+v perturbed the run:\n got %+v\nwant %+v", *pc, &stripped, want)
		}
	}
}

// TestProbeFoldsToTotals: with no ring overflow, the windows partition
// the run — per-receiver deliveries and per-link crossings summed over
// samples equal the Result's cumulative counters, windows are
// contiguous, and the final sample closes at Duration.
func TestProbeFoldsToTotals(t *testing.T) {
	for _, pc := range []ProbeConfig{
		{Window: 11, MaxSamples: 1 << 14},
		{PacketWindow: 300, MaxSamples: 1 << 14},
		// Layers-6 config: duration is exactly 20000/32 = 625, so this
		// window puts a boundary precisely at the run end — the final
		// tick's deliveries must still land in the tail sample.
		{Window: 156.25, MaxSamples: 1 << 14},
	} {
		cfg := probeStarConfig(t, 20000)
		cfg.Probe = &pc
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := res.Probe
		if p.Dropped != 0 {
			t.Fatalf("unexpected overflow: %d dropped", p.Dropped)
		}
		n := p.NumSamples()
		if n < 2 {
			t.Fatalf("expected several samples, got %d", n)
		}
		if p.Starts[0] != 0 {
			t.Fatalf("first window starts at %v", p.Starts[0])
		}
		for s := 1; s < n; s++ {
			if p.Starts[s] != p.Times[s-1] {
				t.Fatalf("window %d not contiguous: start %v, previous close %v", s, p.Starts[s], p.Times[s-1])
			}
		}
		if p.Times[n-1] != res.Duration {
			t.Fatalf("final sample closes at %v, duration %v", p.Times[n-1], res.Duration)
		}
		for i := range res.ReceiverPackets {
			for k, want := range res.ReceiverPackets[i] {
				sum := 0
				for s := 0; s < n; s++ {
					sum += p.ReceiverDelivered(i, k, s)
				}
				if sum != want {
					t.Fatalf("receiver r%d,%d: windows sum to %d, total %d", i+1, k+1, sum, want)
				}
			}
		}
		linkTotals := map[int]int{}
		for _, ls := range res.Links {
			linkTotals[ls.Link] += ls.Crossed
		}
		for j, want := range linkTotals {
			sum := 0
			for s := 0; s < n; s++ {
				sum += p.LinkCrossed(j, s)
			}
			if sum != want {
				t.Fatalf("link %d: windows sum to %d, total %d", j, sum, want)
			}
		}
	}
}

// TestProbeWindowedRates: a windowed rate is the window's deliveries
// over its duration, and link utilization is the crossing rate over
// capacity.
func TestProbeWindowedRates(t *testing.T) {
	cfg := probeStarConfig(t, 20000)
	cfg.Probe = &ProbeConfig{Window: 16}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Probe
	for s := 0; s < p.NumSamples(); s++ {
		w := p.Times[s] - p.Starts[s]
		if w <= 0 {
			continue
		}
		got := p.ReceiverRate(0, 0, s)
		want := float64(p.ReceiverDelivered(0, 0, s)) / w
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("sample %d: rate %v, want %v", s, got, want)
		}
		if u := p.LinkUtilization(0, s); math.Abs(u-p.LinkRate(0, s)/1.0) > 1e-12 {
			t.Fatalf("sample %d: utilization %v vs rate %v over capacity 1", s, u, p.LinkRate(0, s))
		}
	}
}

// TestProbeRingOverflow: past MaxSamples the ring keeps the newest
// windows, in chronological order, and counts the dropped prefix.
func TestProbeRingOverflow(t *testing.T) {
	cfg := probeStarConfig(t, 20000)
	cfg.Probe = &ProbeConfig{PacketWindow: 100, MaxSamples: 16}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Probe
	if p.NumSamples() != 16 {
		t.Fatalf("retained %d samples, want 16", p.NumSamples())
	}
	if p.Dropped == 0 {
		t.Fatal("expected dropped samples")
	}
	for s := 1; s < p.NumSamples(); s++ {
		if p.Times[s] <= p.Times[s-1] {
			t.Fatalf("retained samples out of order at %d: %v then %v", s, p.Times[s-1], p.Times[s])
		}
	}
	if p.Times[p.NumSamples()-1] != res.Duration {
		t.Fatal("newest sample should close at the run end")
	}
}

// TestProbeRingOverflowExactAccounting: the capped ring's Dropped
// count equals total windows minus retained (measured against an
// uncapped run of the same config), the retained suffix is exactly
// the uncapped run's newest windows, and an attached stats sink sees
// every window flush — overwritten ones included.
func TestProbeRingOverflowExactAccounting(t *testing.T) {
	full := probeStarConfig(t, 20000)
	full.Probe = &ProbeConfig{PacketWindow: 100}
	fres, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	total := fres.Probe.NumSamples()
	if total <= 16 {
		t.Fatalf("uncapped run produced only %d windows; overflow test needs more", total)
	}

	capped := probeStarConfig(t, 20000)
	capped.Probe = &ProbeConfig{PacketWindow: 100, MaxSamples: 16}
	var st EngineStats
	capped.Stats = &st
	cres, err := Run(capped)
	if err != nil {
		t.Fatal(err)
	}
	p := cres.Probe
	if p.Dropped != total-16 {
		t.Fatalf("Dropped = %d, want %d (total %d - retained 16)", p.Dropped, total-16, total)
	}
	for s := 0; s < p.NumSamples(); s++ {
		if p.Times[s] != fres.Probe.Times[total-16+s] {
			t.Fatalf("retained sample %d closes at %v, uncapped suffix has %v",
				s, p.Times[s], fres.Probe.Times[total-16+s])
		}
	}
	if got := st.ProbeWindows.Load(); got != int64(total) {
		t.Fatalf("stats ProbeWindows = %d, want every flush (%d)", got, total)
	}
	if got := st.ProbeDropped.Load(); got != int64(p.Dropped) {
		t.Fatalf("stats ProbeDropped = %d, want %d", got, p.Dropped)
	}
}

// TestProbeLevelsTrackChurn: a churned-out receiver reads level 0 in
// samples taken while it is away.
func TestProbeLevelsTrackChurn(t *testing.T) {
	cfg := probeStarConfig(t, 20000)
	cfg.Churn = []ChurnEvent{{Time: 50, Session: 0, Receiver: 3, Join: false}}
	cfg.Probe = &ProbeConfig{Window: 10}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Probe
	sawZero, sawJoined := false, false
	for s := 0; s < p.NumSamples(); s++ {
		lv := p.Level(0, 3, s)
		if p.Times[s] > 50 && lv == 0 {
			sawZero = true
		}
		if p.Times[s] <= 50 && lv > 0 {
			sawJoined = true
		}
	}
	if !sawJoined || !sawZero {
		t.Fatalf("level series does not track churn (joined before: %v, zero after: %v)", sawJoined, sawZero)
	}
}

// TestProbeValidation: malformed probe configs are rejected.
func TestProbeValidation(t *testing.T) {
	for _, pc := range []ProbeConfig{
		{},                               // neither window
		{Window: 2, PacketWindow: 10},    // both
		{Window: -1},                     // negative
		{Window: math.Inf(1)},            // infinite
		{PacketWindow: -5},               // negative
		{Window: 1, MaxSamples: -1},      // negative cap
		{Window: math.NaN()},             // NaN
		{PacketWindow: 10, Window: -0.5}, // negative + packet
	} {
		cfg := probeStarConfig(t, 1000)
		cfg.Probe = &pc
		if _, err := Run(cfg); err == nil {
			t.Errorf("probe config %+v accepted", pc)
		}
	}
}

// TestProbeZeroWidthWindowError: the zero-width-window rejection names
// the contract (exactly one positive window), a run that fails probe
// validation publishes nothing into an attached stats sink, and
// MaxSamples alone cannot stand in for a window.
func TestProbeZeroWidthWindowError(t *testing.T) {
	for _, pc := range []ProbeConfig{
		{Window: 0, PacketWindow: 0},
		{MaxSamples: 8},
	} {
		cfg := probeStarConfig(t, 1000)
		var st EngineStats
		cfg.Stats = &st
		cfg.Probe = &pc
		_, err := Run(cfg)
		if err == nil {
			t.Fatalf("zero-width probe config %+v accepted", pc)
		}
		if !strings.Contains(err.Error(), "exactly one of Window") {
			t.Fatalf("error %q does not name the window contract", err)
		}
		if st.Runs.Load() != 0 || st.Events.Load() != 0 {
			t.Fatalf("rejected run flushed stats: runs=%d events=%d",
				st.Runs.Load(), st.Events.Load())
		}
	}
}
