package netsim

import (
	"fmt"
	"math"
)

// DefaultProbeMaxSamples is the ring capacity used when
// ProbeConfig.MaxSamples is zero.
const DefaultProbeMaxSamples = 1024

// ProbeConfig turns on the engine's streaming observation windows: the
// run is cut into sampling windows (by virtual time or by sender
// packet count) and at each window close the engine records, into
// preallocated ring buffers, every receiver's delivered-packet count
// and subscription level plus every link's crossing count for the
// window. Probing is pure measurement: it draws no randomness,
// schedules no events and allocates nothing on the hot path, so a
// Config's dynamics — and every non-Probe Result field — are
// bit-identical with probes on or off.
//
// Window convention: a sample closing at time b covers (start, b] —
// events at exactly b count in the window closing at b (the boundary
// is flushed when the engine first advances strictly past it, or at
// the end of the run). The final sample is the partial tail window
// closing at Duration, so the windows always partition the run: the
// per-receiver deliveries and per-link crossings summed over samples
// equal the Result's cumulative counters exactly (when nothing was
// dropped by the ring). Windowed rates are always computed against
// the window's actual duration, so the tail sample needs no special
// handling downstream.
type ProbeConfig struct {
	// Window closes a sample at every multiple of this virtual-time
	// period. Exactly one of Window and PacketWindow must be positive.
	Window float64
	// PacketWindow closes a sample every this many sender transmissions
	// (counted across all sessions).
	PacketWindow int
	// MaxSamples caps the retained samples (0 = DefaultProbeMaxSamples).
	// When the run produces more windows than this, the ring keeps the
	// most recent MaxSamples and ProbeSeries.Dropped counts the rest.
	MaxSamples int
}

func (p *ProbeConfig) validate() error {
	if p.Window < 0 || math.IsNaN(p.Window) || math.IsInf(p.Window, 0) {
		return fmt.Errorf("netsim: probe window = %v", p.Window)
	}
	if p.PacketWindow < 0 {
		return fmt.Errorf("netsim: probe packet window = %d", p.PacketWindow)
	}
	if (p.Window > 0) == (p.PacketWindow > 0) {
		return fmt.Errorf("netsim: probe needs exactly one of Window (%v) and PacketWindow (%d) positive", p.Window, p.PacketWindow)
	}
	if p.MaxSamples < 0 {
		return fmt.Errorf("netsim: probe max samples = %d", p.MaxSamples)
	}
	return nil
}

// probeState is the engine-side probe: all buffers are preallocated in
// newEngine (ring slots for cap samples over R receivers and L links,
// plus last-flush snapshots), so a window flush performs zero
// allocations — it only diffs the engine's cumulative counters against
// the previous flush.
type probeState struct {
	timeWindow float64
	pktWindow  int
	next       float64 // next time-mode boundary
	nextPkt    int     // next packet-mode boundary (sender transmissions)

	cap      int
	count    int     // total samples flushed (ring wraps past cap)
	lastTime float64 // close time of the previous sample

	numRecv  int
	numLinks int
	recvOff  []int32 // [session] flat receiver offset

	// Ring storage, slot = sample % cap.
	times     []float64
	starts    []float64
	recvDelta []int64 // [cap*R] delivered in window
	levels    []int32 // [cap*R] subscription level at window close
	linkDelta []int64 // [cap*L] crossings in window

	// Cumulative snapshots at the last flush.
	lastRecv []int64 // [R]
	lastLink []int64 // [L]
	linkCum  []int64 // [L] scratch for the current totals
}

func newProbeState(cfg *ProbeConfig, e *engine) *probeState {
	p := &probeState{
		timeWindow: cfg.Window,
		pktWindow:  cfg.PacketWindow,
		next:       cfg.Window,
		nextPkt:    cfg.PacketWindow,
		cap:        cfg.MaxSamples,
		numLinks:   e.net.NumLinks(),
		recvOff:    make([]int32, len(e.sess)),
	}
	if p.cap == 0 {
		p.cap = DefaultProbeMaxSamples
	}
	if p.pktWindow > 0 {
		// Packet-mode sample count is known up front (boundaries plus the
		// tail flush); a ring that never wraps can be sized exactly.
		if need := e.cfg.Packets/p.pktWindow + 2; need < p.cap {
			p.cap = need
		}
	}
	off := int32(0)
	for i := range e.sess {
		p.recvOff[i] = off
		off += int32(len(e.sess[i].received))
	}
	p.numRecv = int(off)
	p.times = make([]float64, p.cap)
	p.starts = make([]float64, p.cap)
	p.recvDelta = make([]int64, p.cap*p.numRecv)
	p.levels = make([]int32, p.cap*p.numRecv)
	p.linkDelta = make([]int64, p.cap*p.numLinks)
	p.lastRecv = make([]int64, p.numRecv)
	p.lastLink = make([]int64, p.numLinks)
	p.linkCum = make([]int64, p.numLinks)
	return p
}

// advanceTime flushes every time-mode boundary strictly before t.
// Called before the engine applies the event (or transmissions) at t,
// so a window closing at b contains exactly the events in (start, b]
// — events at the boundary itself are applied after this call and
// flush with the NEXT advance (or with the end-of-run tail), never
// silently between windows.
func (p *probeState) advanceTime(e *engine, t float64) {
	for p.timeWindow > 0 && p.next < t {
		p.flush(e, p.next)
		p.next += p.timeWindow
	}
}

// advancePackets flushes a packet-mode boundary once the sender
// transmission counter reaches it. Called after each transmission.
func (p *probeState) advancePackets(e *engine, t float64) {
	if p.pktWindow > 0 && e.sent >= p.nextPkt {
		p.flush(e, t)
		p.nextPkt += p.pktWindow
	}
}

// finish flushes the tail window. Because advanceTime only flushes
// boundaries strictly below the engine's time, the last flush always
// lies strictly before e.now when any transmission fired after it, so
// the tail flush picks up the final tick's deliveries even when the
// run ends exactly on a window boundary.
func (p *probeState) finish(e *engine) {
	if e.now > p.lastTime || p.count == 0 {
		p.flush(e, e.now)
	}
}

// flush closes one window at time t: records, into the next ring slot,
// the deltas of every cumulative engine counter since the previous
// flush. Allocation-free.
func (p *probeState) flush(e *engine, t float64) {
	slot := p.count % p.cap
	p.times[slot] = t
	p.starts[slot] = p.lastTime
	rBase := slot * p.numRecv
	for i := range e.sess {
		s := &e.sess[i]
		off := int(p.recvOff[i])
		for k := range s.received {
			cur := int64(s.received[k])
			p.recvDelta[rBase+off+k] = cur - p.lastRecv[off+k]
			p.lastRecv[off+k] = cur
			p.levels[rBase+off+k] = s.levels[k]
		}
	}
	cum := p.linkCum
	for j := range cum {
		cum[j] = 0
	}
	for i := range e.sess {
		s := &e.sess[i]
		for eid := range s.hot {
			cum[s.hot[eid].link] += s.crossed[eid]
		}
	}
	lBase := slot * p.numLinks
	for j := range cum {
		p.linkDelta[lBase+j] = cum[j] - p.lastLink[j]
		p.lastLink[j] = cum[j]
	}
	p.count++
	p.lastTime = t
}

// series materializes the ring into a chronological ProbeSeries (the
// one allocation probing performs, at result time).
func (p *probeState) series(e *engine) *ProbeSeries {
	n := p.count
	if n > p.cap {
		n = p.cap
	}
	ps := &ProbeSeries{
		Times:     make([]float64, n),
		Starts:    make([]float64, n),
		Dropped:   p.count - n,
		numLinks:  p.numLinks,
		numRecv:   p.numRecv,
		recvOff:   p.recvOff,
		recvDelta: make([]int64, n*p.numRecv),
		levels:    make([]int32, n*p.numRecv),
		linkDelta: make([]int64, n*p.numLinks),
		caps:      make([]float64, p.numLinks),
	}
	for j := 0; j < p.numLinks; j++ {
		ps.caps[j] = e.net.Capacity(j)
	}
	first := p.count - n // oldest retained sample
	for s := 0; s < n; s++ {
		slot := (first + s) % p.cap
		ps.Times[s] = p.times[slot]
		ps.Starts[s] = p.starts[slot]
		copy(ps.recvDelta[s*p.numRecv:(s+1)*p.numRecv], p.recvDelta[slot*p.numRecv:(slot+1)*p.numRecv])
		copy(ps.levels[s*p.numRecv:(s+1)*p.numRecv], p.levels[slot*p.numRecv:(slot+1)*p.numRecv])
		copy(ps.linkDelta[s*p.numLinks:(s+1)*p.numLinks], p.linkDelta[slot*p.numLinks:(slot+1)*p.numLinks])
	}
	return ps
}

// mergedProbeSeries assembles the global ProbeSeries from the group
// engines' probe rings. Every group flushed the identical time-window
// boundary grid (runShard advances each probe to the shared horizon
// before finish adds the common tail), so the rings align
// sample-for-sample: sample s covers the same (start, close] interval
// in every group. Receivers are scattered into global session offsets
// (each receiver lives in exactly one group); link crossings are summed
// across groups (each link is crossed by at most one group's sessions,
// the rest contribute zeros).
func mergedProbeSeries(cfg Config, engines []*engine) *ProbeSeries {
	net := cfg.Network
	S := net.NumSessions()
	base := engines[0].probe
	n := base.count
	if n > base.cap {
		n = base.cap
	}
	recvOff := make([]int32, S)
	off := int32(0)
	for i := 0; i < S; i++ {
		recvOff[i] = off
		off += int32(net.Session(i).NumReceivers())
	}
	numRecv := int(off)
	nL := net.NumLinks()
	ps := &ProbeSeries{
		Times:     make([]float64, n),
		Starts:    make([]float64, n),
		Dropped:   base.count - n,
		numLinks:  nL,
		numRecv:   numRecv,
		recvOff:   recvOff,
		recvDelta: make([]int64, n*numRecv),
		levels:    make([]int32, n*numRecv),
		linkDelta: make([]int64, n*nL),
		caps:      make([]float64, nL),
	}
	for j := 0; j < nL; j++ {
		ps.caps[j] = net.Capacity(j)
	}
	first := base.count - n // oldest retained sample, identical per group
	for s := 0; s < n; s++ {
		slot := (first + s) % base.cap
		ps.Times[s] = base.times[slot]
		ps.Starts[s] = base.starts[slot]
	}
	for _, e := range engines {
		p := e.probe
		for s := 0; s < n; s++ {
			slot := (first + s) % p.cap
			rBase := slot * p.numRecv
			gBase := s * numRecv
			for li := range e.sess {
				gi := e.gsess[li]
				lo := rBase + int(p.recvOff[li])
				gl := gBase + int(recvOff[gi])
				cnt := len(e.sess[li].received)
				copy(ps.recvDelta[gl:gl+cnt], p.recvDelta[lo:lo+cnt])
				copy(ps.levels[gl:gl+cnt], p.levels[lo:lo+cnt])
			}
			lBase := slot * p.numLinks
			gl := s * nL
			for j := 0; j < nL; j++ {
				ps.linkDelta[gl+j] += p.linkDelta[lBase+j]
			}
		}
	}
	return ps
}

// ProbeSeries is the run's retained observation windows in
// chronological order — the time-resolved view the timeseries and
// convergence stages consume. Sample s covers [Starts[s], Times[s]).
type ProbeSeries struct {
	// Times[s] is sample s's window close time; Starts[s] its start.
	Times  []float64
	Starts []float64
	// Dropped counts the oldest windows the ring overwrote (0 unless the
	// run produced more than MaxSamples windows).
	Dropped int

	numLinks  int
	numRecv   int
	recvOff   []int32
	recvDelta []int64
	levels    []int32
	linkDelta []int64
	caps      []float64
}

// NumSamples returns the retained window count.
func (p *ProbeSeries) NumSamples() int { return len(p.Times) }

// NumSessions returns the probed run's session count.
func (p *ProbeSeries) NumSessions() int { return len(p.recvOff) }

// NumReceivers returns session i's receiver count.
func (p *ProbeSeries) NumReceivers(i int) int {
	if i+1 < len(p.recvOff) {
		return int(p.recvOff[i+1] - p.recvOff[i])
	}
	return p.numRecv - int(p.recvOff[i])
}

// NumLinks returns the probed run's link count.
func (p *ProbeSeries) NumLinks() int { return p.numLinks }

// window returns sample s's duration (0 for degenerate same-instant
// windows, whose rates read as 0).
func (p *ProbeSeries) window(s int) float64 { return p.Times[s] - p.Starts[s] }

func (p *ProbeSeries) rid(i, k int) int { return int(p.recvOff[i]) + k }

// ReceiverDelivered returns receiver r_{i,k}'s delivered-packet count
// in sample s.
func (p *ProbeSeries) ReceiverDelivered(i, k, s int) int {
	return int(p.recvDelta[s*p.numRecv+p.rid(i, k)])
}

// ReceiverRate returns r_{i,k}'s windowed goodput in sample s
// (packets per time unit).
func (p *ProbeSeries) ReceiverRate(i, k, s int) float64 {
	w := p.window(s)
	if w <= 0 {
		return 0
	}
	return float64(p.recvDelta[s*p.numRecv+p.rid(i, k)]) / w
}

// Level returns r_{i,k}'s subscription level at sample s's close
// (0 while departed by churn).
func (p *ProbeSeries) Level(i, k, s int) int {
	return int(p.levels[s*p.numRecv+p.rid(i, k)])
}

// LinkCrossed returns link j's crossing count (all sessions, admitted
// or dropped — bandwidth consumed) in sample s.
func (p *ProbeSeries) LinkCrossed(j, s int) int {
	return int(p.linkDelta[s*p.numLinks+j])
}

// LinkRate returns link j's windowed crossing rate in sample s.
func (p *ProbeSeries) LinkRate(j, s int) float64 {
	w := p.window(s)
	if w <= 0 {
		return 0
	}
	return float64(p.linkDelta[s*p.numLinks+j]) / w
}

// LinkUtilization returns link j's windowed crossing rate over its
// capacity (0 for infinite-capacity links).
func (p *ProbeSeries) LinkUtilization(j, s int) float64 {
	c := p.caps[j]
	if c <= 0 || math.IsInf(c, 1) {
		return 0
	}
	return p.LinkRate(j, s) / c
}
